package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestUnknownExperimentRejected(t *testing.T) {
	err := run(io.Discard, "fig99", 42, "", 3, 1, "medium", "8192", "1000", "")
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
	if !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("error should carry the usage line, got: %v", err)
	}
}

func TestInvalidIntensityRejected(t *testing.T) {
	err := run(io.Discard, "chaos", 42, "", 3, 1, "apocalyptic", "8192", "1000", "")
	if err == nil {
		t.Fatal("invalid intensity should error")
	}
	if !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("error should carry the usage line, got: %v", err)
	}
}

func TestInvalidParallelRejected(t *testing.T) {
	err := run(io.Discard, "table1", 42, "", 3, 0, "medium", "8192", "1000", "")
	if err == nil {
		t.Fatal("non-positive -parallel should error")
	}
	if !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("error should carry the usage line, got: %v", err)
	}
}

func TestInvalidMktCacheRejected(t *testing.T) {
	for _, bad := range []string{"lots", "12.5", "", "-1"} {
		err := run(io.Discard, "table1", 42, "", 3, 1, "medium", bad, "1000", "")
		if err == nil {
			t.Fatalf("-mktcache %q should error", bad)
		}
		if !strings.Contains(err.Error(), "usage:") {
			t.Fatalf("error should carry the usage line, got: %v", err)
		}
	}
}

func TestInvalidFleetSizesRejected(t *testing.T) {
	for _, bad := range []string{"0", "-5", "many", "1000,", "1000,0", "12.5", ""} {
		err := run(io.Discard, "fleet", 42, "", 3, 1, "medium", "8192", bad, "")
		if err == nil {
			t.Fatalf("-fleet %q should error", bad)
		}
		if !strings.Contains(err.Error(), "usage:") {
			t.Fatalf("error should carry the usage line, got: %v", err)
		}
	}
}

// TestFleetSizesOnlyValidatedForFleet keeps the flag inert elsewhere: a
// bad -fleet value must not break experiments that never read it.
func TestFleetSizesOnlyValidatedForFleet(t *testing.T) {
	if err := run(io.Discard, "table1", 42, "", 3, 1, "medium", "8192", "bogus", ""); err != nil {
		t.Fatalf("table1 should ignore -fleet: %v", err)
	}
}

func TestInvalidFleetShardsRejected(t *testing.T) {
	for _, bad := range []string{"0", "-2", "two", "1.5", "1,2"} {
		err := run(io.Discard, "fleet", 42, "", 3, 1, "medium", "8192", "50", bad)
		if err == nil {
			t.Fatalf("-fleet-shards %q should error", bad)
		}
		if !strings.Contains(err.Error(), "usage:") {
			t.Fatalf("error should carry the usage line, got: %v", err)
		}
	}
}

// TestFleetShardsOnlyValidatedForFleet mirrors the -fleet contract: a
// bad shard count must not break experiments that never read it.
func TestFleetShardsOnlyValidatedForFleet(t *testing.T) {
	if err := run(io.Discard, "table1", 42, "", 3, 1, "medium", "8192", "1000", "zero"); err != nil {
		t.Fatalf("table1 should ignore -fleet-shards: %v", err)
	}
}

// TestFleetShardsByteIdentical pins the sharded engine's contract at
// the CLI surface: the sweep table must not depend on how each fleet
// run is partitioned, including shard counts above the fleet size.
func TestFleetShardsByteIdentical(t *testing.T) {
	render := func(shards string) string {
		var buf bytes.Buffer
		if err := run(&buf, "fleet", 42, "", 3, 2, "medium", "8192", "100,200", shards); err != nil {
			t.Fatalf("fleet with -fleet-shards %s: %v", shards, err)
		}
		return buf.String()
	}
	want := render("1")
	if want == "" {
		t.Fatal("fleet rendered no output")
	}
	for _, shards := range []string{"2", "8", "256", ""} {
		if got := render(shards); got != want {
			t.Fatalf("fleet output with -fleet-shards %s differs from -fleet-shards 1", shards)
		}
	}
}

func TestRunFleetSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fleet", 42, "", 3, 1, "medium", "8192", "50,100", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"single-region", "skypilot", "Fleet-scale sweep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetParallelByteIdentical pins the fleet sweep's determinism
// across worker counts — and, since -fleet-shards defaults to the
// -parallel value, across shard counts at the same time; under
// `go test -race` it doubles as the data race stress for the sharded
// fleet path.
func TestFleetParallelByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		var buf bytes.Buffer
		if err := run(&buf, "fleet", 42, "", 3, parallel, "medium", "8192", "200,400", ""); err != nil {
			t.Fatalf("fleet with -parallel %d: %v", parallel, err)
		}
		return buf.String()
	}
	want := render(1)
	if want == "" {
		t.Fatal("fleet rendered no output")
	}
	for _, parallel := range []int{4, 8} {
		if got := render(parallel); got != want {
			t.Fatalf("fleet output with -parallel %d differs from -parallel 1", parallel)
		}
	}
}

// TestMktCacheByteIdentical pins the snapshot-sharing contract at the
// CLI surface: fig3 runs the same seed under two strategies (a shared
// snapshot with the cache on), and its bytes must not depend on the
// cache being on, off, or absurdly small (which forces store eviction
// and segment replay mid-run).
func TestMktCacheByteIdentical(t *testing.T) {
	render := func(mktcache string) string {
		var buf bytes.Buffer
		if err := run(&buf, "fig3", 42, "", 3, 2, "medium", mktcache, "1000", ""); err != nil {
			t.Fatalf("fig3 with -mktcache %s: %v", mktcache, err)
		}
		return buf.String()
	}
	want := render("0")
	if want == "" {
		t.Fatal("fig3 rendered no output")
	}
	for _, mktcache := range []string{"8192", "8"} {
		if got := render(mktcache); got != want {
			t.Fatalf("fig3 output with -mktcache %s differs from -mktcache 0", mktcache)
		}
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(io.Discard, "table1", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig9(t *testing.T) {
	if err := run(io.Discard, "fig9", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrials(t *testing.T) {
	if err := run(io.Discard, "trials", 42, "", 1, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig3(t *testing.T) {
	if err := run(io.Discard, "fig3", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4(t *testing.T) {
	if err := run(io.Discard, "fig4", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable4(t *testing.T) {
	if err := run(io.Discard, "table4", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, "fig2", 42, dir, 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig2_prices.csv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("csv missing: %v %v", matches, err)
	}
}

func TestRunFig7WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, "fig7", 42, dir, 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig7_standard_single.csv", "fig7_standard_spotverse.csv",
		"fig7_checkpoint_single.csv", "fig7_checkpoint_spotverse.csv",
	} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunFig4WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, "fig4", 42, dir, 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig4_metrics.csv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("csv missing: %v %v", matches, err)
	}
}

func TestRunFig8(t *testing.T) {
	if err := run(io.Discard, "fig8", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig10(t *testing.T) {
	if err := run(io.Discard, "fig10", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensions(t *testing.T) {
	if err := run(io.Discard, "ext", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaos(t *testing.T) {
	if err := run(io.Discard, "chaos", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrash(t *testing.T) {
	if err := run(io.Discard, "crash", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
		t.Fatal(err)
	}
}

// TestAllParallelByteIdentical is the harness's determinism contract:
// the full -exp all sweep must render the same bytes whether it runs
// on one worker (the sequential reference path) or fans out across 4
// or 8. A single experiment (table1) is additionally checked so the
// single-runner path is covered too.
func TestAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is too slow for -short")
	}
	render := func(exp string, parallel int) string {
		var buf bytes.Buffer
		if err := run(&buf, exp, 42, "", 3, parallel, "medium", "8192", "1000", ""); err != nil {
			t.Fatalf("%s with -parallel %d: %v", exp, parallel, err)
		}
		return buf.String()
	}
	for _, exp := range []string{"table1", "all"} {
		want := render(exp, 1)
		if want == "" {
			t.Fatalf("%s rendered no output", exp)
		}
		for _, parallel := range []int{4, 8} {
			if got := render(exp, parallel); got != want {
				t.Fatalf("%s output with -parallel %d differs from -parallel 1", exp, parallel)
			}
		}
	}
}

func TestExpListDeterministicAndComplete(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := run(&buf, "list", 42, "", 3, 1, "medium", "8192", "1000", ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("-exp list output is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	for _, want := range []string{"all", "list", "fig2", "fig10", "table1", "table4", "ext", "chaos", "crash", "trials", "fleet"} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("-exp list missing %q:\n%s", want, a)
		}
	}
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("-exp list output not sorted:\n%s", a)
	}
}

func TestProfilerFlushIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	p, err := startProfiler(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("second flush should be a no-op, got %v", err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestHandleSignalsFlushesAndExits(t *testing.T) {
	dir := t.TempDir()
	mem := filepath.Join(dir, "mem.pprof")
	p, err := startProfiler("", mem)
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	codes := make(chan int, 1)
	var stderr bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		handleSignals(sig, p, &stderr, func(code int) { codes <- code })
	}()
	sig <- syscall.SIGTERM
	select {
	case code := <-codes:
		if code != 143 { // 128 + SIGTERM(15)
			t.Fatalf("exit code %d, want 143", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler never exited")
	}
	<-done
	if info, err := os.Stat(mem); err != nil || info.Size() == 0 {
		t.Fatalf("heap profile not flushed on signal: %v", err)
	}
	if !strings.Contains(stderr.String(), "flushing profiles") {
		t.Fatalf("no flush notice on stderr: %q", stderr.String())
	}
	// A closed channel (signal.Stop on normal exit) must not flush again
	// or exit.
	p2, _ := startProfiler("", "")
	sig2 := make(chan os.Signal)
	close(sig2)
	handleSignals(sig2, p2, &stderr, func(int) { t.Fatal("exit called for closed signal channel") })
}
