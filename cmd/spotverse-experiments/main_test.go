package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentRejected(t *testing.T) {
	err := run("fig99", 42, "", 3, "medium")
	if err == nil {
		t.Fatal("unknown experiment should error")
	}
	if !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("error should carry the usage line, got: %v", err)
	}
}

func TestInvalidIntensityRejected(t *testing.T) {
	err := run("chaos", 42, "", 3, "apocalyptic")
	if err == nil {
		t.Fatal("invalid intensity should error")
	}
	if !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("error should carry the usage line, got: %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	if err := run("table1", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig9(t *testing.T) {
	if err := run("fig9", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrials(t *testing.T) {
	if err := run("trials", 42, "", 1, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig3(t *testing.T) {
	if err := run("fig3", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4(t *testing.T) {
	if err := run("fig4", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable4(t *testing.T) {
	if err := run("table4", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig2", 42, dir, 3, "medium"); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig2_prices.csv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("csv missing: %v %v", matches, err)
	}
}

func TestRunFig7WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig7", 42, dir, 3, "medium"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig7_standard_single.csv", "fig7_standard_spotverse.csv",
		"fig7_checkpoint_single.csv", "fig7_checkpoint_spotverse.csv",
	} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunFig4WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig4", 42, dir, 3, "medium"); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig4_metrics.csv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("csv missing: %v %v", matches, err)
	}
}

func TestRunFig8(t *testing.T) {
	if err := run("fig8", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig10(t *testing.T) {
	if err := run("fig10", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensions(t *testing.T) {
	if err := run("ext", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaos(t *testing.T) {
	if err := run("chaos", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}

func TestRunCrash(t *testing.T) {
	if err := run("crash", 42, "", 3, "medium"); err != nil {
		t.Fatal(err)
	}
}
