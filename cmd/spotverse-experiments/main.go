// Command spotverse-experiments regenerates every table and figure of the
// SpotVerse paper's evaluation on the simulated cloud.
//
// Usage:
//
//	spotverse-experiments [-exp all|fig2|fig3|fig4|fig7|fig8|fig9|fig10|table1|table4|ext|chaos|crash|trials] [-seed N] [-csv dir] [-intensity off|low|medium|severe]
//
// Each experiment prints an ASCII rendering of the corresponding table or
// figure; -csv additionally writes raw series files into the directory.
// -intensity sets the background-fault level for -exp crash (the chaos
// sweep always runs the full intensity ladder).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
)

// usageLine is appended to flag-validation errors so a bad invocation
// prints the accepted values without the caller digging through -h.
const usageLine = "usage: spotverse-experiments [-exp all|fig2|fig3|fig4|fig7|fig8|fig9|fig10|table1|table4|ext|chaos|crash|trials] [-seed N] [-csv dir] [-intensity off|low|medium|severe]"

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run: all, fig2, fig3, fig4, fig7, fig8, fig9, fig10, table1, table4, ext, chaos, crash, trials")
		seed      = flag.Int64("seed", 42, "simulation seed")
		csvDir    = flag.String("csv", "", "directory to write raw CSV series (optional)")
		trials    = flag.Int("trials", 3, "trial count for -exp trials (the paper repeats each experiment 3x)")
		intensity = flag.String("intensity", "medium", "background-fault intensity for -exp crash: off, low, medium, severe")
	)
	flag.Parse()
	if err := run(*exp, *seed, *csvDir, *trials, *intensity); err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, csvDir string, trials int, intensity string) error {
	inten, err := chaos.ParseIntensity(intensity)
	if err != nil {
		return fmt.Errorf("%w\n%s", err, usageLine)
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	runners := map[string]func() error{
		"trials": func() error { return runTrials(seed, trials) },
		"fig2":   func() error { return runFig2(seed, csvDir) },
		"fig3":   func() error { return runFig3(seed) },
		"fig4":   func() error { return runFig4(seed, csvDir) },
		"fig7":   func() error { return runFig7(seed, csvDir) },
		"fig8":   func() error { return runFig8(seed) },
		"fig9":   func() error { return runFig9(seed) },
		"fig10":  func() error { return runFig10(seed) },
		"table1": func() error { return runTable1(seed) },
		"table4": func() error { return runTable4(seed) },
		"ext":    func() error { return runExtensions(seed) },
		"chaos":  func() error { return runChaos(seed) },
		"crash":  func() error { return runCrash(seed, inten) },
	}
	if exp == "all" {
		// crash is deliberately not part of "all": it schedules controller
		// kills and object corruption, so its table is not a paper artifact
		// and "all" output stays comparable across releases.
		for _, name := range []string{"table1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10", "table4", "ext", "chaos"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q\n%s", exp, usageLine)
	}
	return r()
}

func writeCSV(dir, name string, write func(f *os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func runFig2(seed int64, csvDir string) error {
	series, err := experiment.Fig2(seed, 90)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig2(os.Stdout, series); err != nil {
		return err
	}
	return writeCSV(csvDir, "fig2_prices.csv", func(f *os.File) error {
		return experiment.Fig2CSV(f, series)
	})
}

func runFig3(seed int64) error {
	results, err := experiment.Fig3(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig3(os.Stdout, results)
}

func runFig4(seed int64, csvDir string) error {
	heat, avgs, err := experiment.Fig4(seed, 180)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig4(os.Stdout, heat, avgs); err != nil {
		return err
	}
	return writeCSV(csvDir, "fig4_metrics.csv", func(f *os.File) error {
		return experiment.Fig4CSV(f, heat, avgs)
	})
}

func runFig7(seed int64, csvDir string) error {
	results, err := experiment.Fig7(seed)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig7(os.Stdout, results); err != nil {
		return err
	}
	for _, r := range results {
		kind := r.Kind.String()
		if err := writeCSV(csvDir, "fig7_"+kind+"_single.csv", func(f *os.File) error {
			return experiment.SeriesCSV(f, "single-region", r.Single)
		}); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig7_"+kind+"_spotverse.csv", func(f *os.File) error {
			return experiment.SeriesCSV(f, "spotverse", r.SpotVerse)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig8(seed int64) error {
	types, err := experiment.Fig8(seed, experiment.Fig8TypeSet)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig8(os.Stdout, "Figure 8a/8b — instance types (standard general workload)", types); err != nil {
		return err
	}
	sizes, err := experiment.Fig8(seed, experiment.Fig8SizeSet)
	if err != nil {
		return err
	}
	return experiment.RenderFig8(os.Stdout, "Figure 8c/8d — m5 family sizes (standard general workload)", sizes)
}

func runFig9(seed int64) error {
	results, err := experiment.Fig9(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig9(os.Stdout, results)
}

func runFig10(seed int64) error {
	cells, err := experiment.Fig10(seed)
	if err != nil {
		return err
	}
	selection, err := experiment.Table3Selection(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig10(os.Stdout, cells, selection)
}

func runTable1(seed int64) error {
	rows, err := experiment.Table1(seed)
	if err != nil {
		return err
	}
	return experiment.RenderTable1(os.Stdout, rows)
}

func runTable4(seed int64) error {
	res, err := experiment.Table4(seed)
	if err != nil {
		return err
	}
	return experiment.RenderTable4(os.Stdout, res)
}

// runChaos sweeps the fault-injection intensities over the strategy set
// and reports completion, inflation, and the hardening counters.
func runChaos(seed int64) error {
	rows, err := experiment.Resilience(seed)
	if err != nil {
		return err
	}
	return experiment.RenderResilience(os.Stdout, rows)
}

// runCrash runs the crash-restart sweep: controller kills, manifest
// corruption, and bucket losses against the journaled stack and the
// no-journal ablation.
func runCrash(seed int64, intensity chaos.Intensity) error {
	rows, err := experiment.Crash(seed, intensity)
	if err != nil {
		return err
	}
	return experiment.RenderCrash(os.Stdout, rows)
}

// runTrials repeats the Fig. 7 standard-workload comparison across
// seeds and prints mean ± std, the paper's three-trial protocol.
func runTrials(seed int64, n int) error {
	type strategyRun struct {
		name string
		fn   func(trialSeed int64) (*experiment.Result, error)
	}
	runs := []strategyRun{
		{"single-region", func(s int64) (*experiment.Result, error) {
			return experiment.Fig7TrialSingle(s)
		}},
		{"spotverse", func(s int64) (*experiment.Result, error) {
			return experiment.Fig7TrialSpotVerse(s)
		}},
	}
	fmt.Printf("## Fig. 7 standard workload over %d trials (seeds %d..%d)\n", n, seed, seed+int64(n)-1)
	fmt.Printf("%-14s %22s %22s %22s\n", "strategy", "interruptions", "makespan_h", "cost_usd")
	for _, r := range runs {
		summary, err := experiment.Trials(n, seed, r.fn)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %13.1f ± %6.1f %13.1f ± %6.1f %13.2f ± %6.2f\n",
			r.name,
			summary.Interruptions.Mean, summary.Interruptions.Std,
			summary.MakespanHours.Mean, summary.MakespanHours.Std,
			summary.TotalCostUSD.Mean, summary.TotalCostUSD.Std)
	}
	return nil
}

func runExtensions(seed int64) error {
	pred, err := experiment.ExtPredictive(seed, 24)
	if err != nil {
		return err
	}
	ckpt, err := experiment.ExtCheckpointStores(seed, 20)
	if err != nil {
		return err
	}
	scoring, err := experiment.ExtScoringModes(seed, 20)
	if err != nil {
		return err
	}
	return experiment.RenderExtensions(os.Stdout, pred, ckpt, scoring)
}
