// Command spotverse-experiments regenerates every table and figure of the
// SpotVerse paper's evaluation on the simulated cloud.
//
// Usage:
//
//	spotverse-experiments [-exp all|list|fig2|fig3|fig4|fig7|fig8|fig9|fig10|table1|table4|ext|chaos|crash|trials|fleet] [-seed N] [-csv dir] [-intensity off|low|medium|severe] [-parallel N] [-mktcache N] [-fleet sizes] [-fleet-shards N] [-cpuprofile file] [-memprofile file]
//
// Each experiment prints an ASCII rendering of the corresponding table or
// figure; -csv additionally writes raw series files into the directory.
// -intensity sets the background-fault level for -exp crash (the chaos
// sweep always runs the full intensity ladder).
//
// -exp fleet runs the fleet-scale scaling sweep on the flat batched
// FleetState path; -fleet sets its comma-separated workload counts
// (default 1000,10000,50000,100000). -fleet-shards partitions each
// fleet run into that many contiguous shards, each driven by its own
// simulation engine on the worker pool (default: the -parallel value);
// the sweep table is byte-identical for every shard count. The
// deterministic sweep table goes to stdout; wall-clock throughput
// (workloads simulated per second, a machine-dependent quantity) goes
// to stderr.
//
// -parallel bounds the experiment worker pool (default GOMAXPROCS). The
// sweep fans out across independent simulations and renders results in a
// fixed order, so the output is byte-identical for every worker count;
// -parallel 1 forces the fully sequential reference path.
//
// -mktcache sizes the shared market-snapshot store in 2 KiB segments
// (default 8192 ≈ 16 MiB): every strategy arm and worker simulating the
// same (seed, start) reads one materialisation of the market instead of
// regenerating it. 0 disables sharing; the output is byte-identical
// either way.
//
// -cpuprofile and -memprofile write pprof profiles for performance work
// (see `make profile`); samples carry experiment/seed/arm pprof labels,
// so `go tool pprof -tagfocus` isolates one experiment or strategy arm.
//
// SIGINT/SIGTERM mid-sweep flush both profiles and any partial output
// before exiting with the conventional 128+signum code, so an
// interrupted long run still yields a usable profile.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
)

// usageLine is appended to flag-validation errors so a bad invocation
// prints the accepted values without the caller digging through -h.
const usageLine = "usage: spotverse-experiments [-exp all|list|fig2|fig3|fig4|fig7|fig8|fig9|fig10|table1|table4|ext|chaos|crash|trials|fleet] [-seed N] [-csv dir] [-intensity off|low|medium|severe] [-parallel N] [-mktcache N] [-fleet sizes] [-fleet-shards N] [-cpuprofile file] [-memprofile file]"

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run: all, list, fig2, fig3, fig4, fig7, fig8, fig9, fig10, table1, table4, ext, chaos, crash, trials, fleet")
		seed        = flag.Int64("seed", 42, "simulation seed")
		csvDir      = flag.String("csv", "", "directory to write raw CSV series (optional)")
		trials      = flag.Int("trials", 3, "trial count for -exp trials (the paper repeats each experiment 3x)")
		intensity   = flag.String("intensity", "medium", "background-fault intensity for -exp crash: off, low, medium, severe")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool bound for the experiment harness (1 = sequential; output is byte-identical either way)")
		mktcache    = flag.String("mktcache", strconv.Itoa(experiment.DefaultMarketCacheSegments), "market-snapshot store size in 2KiB segments (0 disables sharing; output is byte-identical either way)")
		fleetSizes  = flag.String("fleet", "1000,10000,50000,100000", "comma-separated workload counts for -exp fleet (each must be a positive integer)")
		fleetShards = flag.String("fleet-shards", "", "shard count for -exp fleet runs (default: the -parallel value; output is byte-identical for every shard count)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	prof, err := startProfiler(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-experiments:", err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go handleSignals(sig, prof, os.Stderr, os.Exit)
	err = run(os.Stdout, *exp, *seed, *csvDir, *trials, *parallel, *intensity, *mktcache, *fleetSizes, *fleetShards)
	if ferr := prof.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-experiments:", err)
		os.Exit(1)
	}
}

// profiler owns the optional pprof outputs. Flush is idempotent and
// safe to race between the normal exit path and the signal handler:
// whichever runs first writes the files, the other becomes a no-op.
type profiler struct {
	mu      sync.Mutex
	cpu     *os.File
	memPath string
	done    bool
}

// startProfiler begins CPU profiling (when requested) and remembers
// where the heap profile should land on Flush.
func startProfiler(cpuPath, memPath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		p.cpu = f
	}
	return p, nil
}

// Flush stops the CPU profile and writes the heap profile. The first
// call does the work; later calls return nil immediately.
func (p *profiler) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil
	}
	p.done = true
	var errs []error
	if p.cpu != nil {
		pprof.StopCPUProfile()
		errs = append(errs, p.cpu.Close())
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			errs = append(errs, err)
		} else {
			runtime.GC() // settle allocations so the heap profile reflects live data
			errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
		}
	}
	return errors.Join(errs...)
}

// handleSignals turns the first SIGINT/SIGTERM into a profile + output
// flush and an exit with the conventional 128+signum code, so an
// interrupted sweep still leaves usable artifacts behind. exit is
// injected for tests.
func handleSignals(sig <-chan os.Signal, prof *profiler, stderr io.Writer, exit func(int)) {
	s, ok := <-sig
	if !ok {
		return
	}
	fmt.Fprintf(stderr, "spotverse-experiments: received %v, flushing profiles before exit\n", s)
	if err := prof.Flush(); err != nil {
		fmt.Fprintln(stderr, "spotverse-experiments: profile flush:", err)
	}
	// Partial experiment output went straight to stdout; sync pushes it
	// through any OS buffering before the process dies.
	os.Stdout.Sync()
	code := 128
	if n, ok := s.(syscall.Signal); ok {
		code = 128 + int(n)
	}
	exit(code)
}

func run(w io.Writer, exp string, seed int64, csvDir string, trials, parallel int, intensity, mktcache, fleetSizes, fleetShards string) error {
	inten, err := chaos.ParseIntensity(intensity)
	if err != nil {
		return fmt.Errorf("%w\n%s", err, usageLine)
	}
	if parallel < 1 {
		return fmt.Errorf("invalid -parallel %d (must be >= 1)\n%s", parallel, usageLine)
	}
	// -mktcache is parsed here (not via flag.Int) so a non-integer value
	// gets the same one-line usage error as the other flags instead of
	// the flag package's multi-line dump.
	segments, err := strconv.Atoi(mktcache)
	if err != nil || segments < 0 {
		return fmt.Errorf("invalid -mktcache %q (must be a non-negative integer segment count)\n%s", mktcache, usageLine)
	}
	prev := experiment.SetWorkers(parallel)
	defer experiment.SetWorkers(prev)
	prevCache := experiment.SetMarketCache(segments)
	defer experiment.SetMarketCache(prevCache)
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	runners := map[string]func(w io.Writer) error{
		"trials": func(w io.Writer) error { return runTrials(w, seed, trials) },
		"fig2":   func(w io.Writer) error { return runFig2(w, seed, csvDir) },
		"fig3":   func(w io.Writer) error { return runFig3(w, seed) },
		"fig4":   func(w io.Writer) error { return runFig4(w, seed, csvDir) },
		"fig7":   func(w io.Writer) error { return runFig7(w, seed, csvDir) },
		"fig8":   func(w io.Writer) error { return runFig8(w, seed) },
		"fig9":   func(w io.Writer) error { return runFig9(w, seed) },
		"fig10":  func(w io.Writer) error { return runFig10(w, seed) },
		"table1": func(w io.Writer) error { return runTable1(w, seed) },
		"table4": func(w io.Writer) error { return runTable4(w, seed) },
		"ext":    func(w io.Writer) error { return runExtensions(w, seed) },
		"chaos":  func(w io.Writer) error { return runChaos(w, seed) },
		"crash":  func(w io.Writer) error { return runCrash(w, seed, inten) },
		// -fleet and -fleet-shards are validated here, not up front: only
		// the fleet sweep reads them, so a malformed value must not break
		// other experiments.
		"fleet": func(w io.Writer) error {
			sizes, err := parseFleetSizes(fleetSizes)
			if err != nil {
				return err
			}
			shards, err := parseFleetShards(fleetShards, parallel)
			if err != nil {
				return err
			}
			return runFleetSweep(w, sizes, shards)
		},
	}
	switch exp {
	case "all":
		// crash and fleet are deliberately not part of "all": crash
		// schedules controller kills and object corruption, fleet is a
		// scaling study rather than a paper artifact — and "all" output
		// stays comparable across releases either way.
		return runAll(w, []string{"table1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10", "table4", "ext", "chaos"}, runners)
	case "list":
		return runList(w, runners)
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q\n%s", exp, usageLine)
	}
	return labeled(exp, func() error { return r(w) })
}

// runList prints every accepted -exp value, one per line, in sorted
// order — a stable surface for scripts and shell completion.
func runList(w io.Writer, runners map[string]func(io.Writer) error) error {
	names := make([]string, 0, len(runners)+2)
	for name := range runners {
		names = append(names, name)
	}
	names = append(names, "all", "list")
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintln(w, name); err != nil {
			return err
		}
	}
	return nil
}

// labeled runs fn under a pprof "experiment" label, so -cpuprofile
// samples attribute to the experiment that burned them (the seed and
// strategy-arm labels nest inside).
func labeled(name string, fn func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("experiment", name), func(context.Context) {
		err = fn()
	})
	return err
}

// runAll executes the sweep's experiments. With one worker each
// experiment streams straight to w; with more, experiments run
// concurrently (on top of their own internal fan-out), each rendering
// into its own buffer, and the buffers are flushed in the fixed sweep
// order — so the bytes written are identical for every worker count.
func runAll(w io.Writer, names []string, runners map[string]func(io.Writer) error) error {
	if experiment.Workers() <= 1 {
		for _, name := range names {
			if err := labeled(name, func() error { return runners[name](w) }); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	bufs, err := experiment.Gather(len(names), func(i int) (*bytes.Buffer, error) {
		var buf bytes.Buffer
		if err := labeled(names[i], func() error { return runners[names[i]](&buf) }); err != nil {
			return nil, fmt.Errorf("%s: %w", names[i], err)
		}
		fmt.Fprintln(&buf)
		return &buf, nil
	})
	if err != nil {
		return err
	}
	for _, buf := range bufs {
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir, name string, write func(f *os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func runFig2(w io.Writer, seed int64, csvDir string) error {
	series, err := experiment.Fig2(seed, 90)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig2(w, series); err != nil {
		return err
	}
	return writeCSV(csvDir, "fig2_prices.csv", func(f *os.File) error {
		return experiment.Fig2CSV(f, series)
	})
}

func runFig3(w io.Writer, seed int64) error {
	results, err := experiment.Fig3(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig3(w, results)
}

func runFig4(w io.Writer, seed int64, csvDir string) error {
	heat, avgs, err := experiment.Fig4(seed, 180)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig4(w, heat, avgs); err != nil {
		return err
	}
	return writeCSV(csvDir, "fig4_metrics.csv", func(f *os.File) error {
		return experiment.Fig4CSV(f, heat, avgs)
	})
}

func runFig7(w io.Writer, seed int64, csvDir string) error {
	results, err := experiment.Fig7(seed)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig7(w, results); err != nil {
		return err
	}
	for _, r := range results {
		kind := r.Kind.String()
		if err := writeCSV(csvDir, "fig7_"+kind+"_single.csv", func(f *os.File) error {
			return experiment.SeriesCSV(f, "single-region", r.Single)
		}); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig7_"+kind+"_spotverse.csv", func(f *os.File) error {
			return experiment.SeriesCSV(f, "spotverse", r.SpotVerse)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig8(w io.Writer, seed int64) error {
	types, err := experiment.Fig8(seed, experiment.Fig8TypeSet)
	if err != nil {
		return err
	}
	if err := experiment.RenderFig8(w, "Figure 8a/8b — instance types (standard general workload)", types); err != nil {
		return err
	}
	sizes, err := experiment.Fig8(seed, experiment.Fig8SizeSet)
	if err != nil {
		return err
	}
	return experiment.RenderFig8(w, "Figure 8c/8d — m5 family sizes (standard general workload)", sizes)
}

func runFig9(w io.Writer, seed int64) error {
	results, err := experiment.Fig9(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig9(w, results)
}

func runFig10(w io.Writer, seed int64) error {
	cells, err := experiment.Fig10(seed)
	if err != nil {
		return err
	}
	selection, err := experiment.Table3Selection(seed)
	if err != nil {
		return err
	}
	return experiment.RenderFig10(w, cells, selection)
}

func runTable1(w io.Writer, seed int64) error {
	rows, err := experiment.Table1(seed)
	if err != nil {
		return err
	}
	return experiment.RenderTable1(w, rows)
}

func runTable4(w io.Writer, seed int64) error {
	res, err := experiment.Table4(seed)
	if err != nil {
		return err
	}
	return experiment.RenderTable4(w, res)
}

// runExtensions runs the Section 7 future-work experiments: predictive
// placement, checkpoint-store comparison, and degraded scoring modes.
func runExtensions(w io.Writer, seed int64) error {
	pred, err := experiment.ExtPredictive(seed, 24)
	if err != nil {
		return err
	}
	ckpt, err := experiment.ExtCheckpointStores(seed, 20)
	if err != nil {
		return err
	}
	scoring, err := experiment.ExtScoringModes(seed, 20)
	if err != nil {
		return err
	}
	return experiment.RenderExtensions(w, pred, ckpt, scoring)
}

// runChaos sweeps the fault-injection intensities over the strategy set
// and reports completion, inflation, and the hardening counters.
func runChaos(w io.Writer, seed int64) error {
	rows, err := experiment.Resilience(seed)
	if err != nil {
		return err
	}
	return experiment.RenderResilience(w, rows)
}

// runCrash runs the crash-restart sweep: controller kills, manifest
// corruption, and bucket losses against the journaled stack and the
// no-journal ablation.
func runCrash(w io.Writer, seed int64, intensity chaos.Intensity) error {
	rows, err := experiment.Crash(seed, intensity)
	if err != nil {
		return err
	}
	return experiment.RenderCrash(w, rows)
}

// parseFleetSizes validates the -fleet flag: a comma-separated list of
// positive integer workload counts.
func parseFleetSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -fleet %q (must be comma-separated positive integers)\n%s", s, usageLine)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// parseFleetShards validates the -fleet-shards flag: a positive integer
// shard count, defaulting to the worker-pool bound so a parallel sweep
// shards each fleet run across its workers out of the box.
func parseFleetShards(s string, parallel int) (int, error) {
	if s == "" {
		return parallel, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid -fleet-shards %q (must be a positive integer shard count)\n%s", s, usageLine)
	}
	return n, nil
}

// runFleetSweep runs the fleet-scale scaling sweep. The deterministic
// table streams to w; wall-clock throughput — the one machine-dependent
// number, and the sweep's reason to exist — goes to stderr so stdout
// stays byte-identical across runs, machines, -parallel, and
// -fleet-shards values.
func runFleetSweep(w io.Writer, sizes []int, shards int) error {
	begin := time.Now()
	cells, err := experiment.FleetSweep(sizes, shards)
	if err != nil {
		return err
	}
	elapsed := time.Since(begin)
	if err := experiment.RenderFleet(w, cells); err != nil {
		return err
	}
	total := 0
	for _, c := range cells {
		total += c.Size
	}
	perSec := float64(total) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "fleet sweep: %d cells, %d workloads simulated in %.2fs (%.0f workloads/wall-second)\n",
		len(cells), total, elapsed.Seconds(), perSec)
	return nil
}

// runTrials repeats the Fig. 7 standard-workload comparison across
// seeds and prints mean ± std, the paper's three-trial protocol.
func runTrials(w io.Writer, seed int64, n int) error {
	type strategyRun struct {
		name string
		fn   func(trialSeed int64) (*experiment.Result, error)
	}
	runs := []strategyRun{
		{"single-region", func(s int64) (*experiment.Result, error) {
			return experiment.Fig7TrialSingle(s)
		}},
		{"spotverse", func(s int64) (*experiment.Result, error) {
			return experiment.Fig7TrialSpotVerse(s)
		}},
	}
	fmt.Fprintf(w, "## Fig. 7 standard workload over %d trials (seeds %d..%d)\n", n, seed, seed+int64(n)-1)
	fmt.Fprintf(w, "%-14s %22s %22s %22s\n", "strategy", "interruptions", "makespan_h", "cost_usd")
	for _, r := range runs {
		summary, err := experiment.Trials(n, seed, r.fn)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %13.1f ± %6.1f %13.1f ± %6.1f %13.2f ± %6.2f\n",
			r.name,
			summary.Interruptions.Mean, summary.Interruptions.Std,
			summary.MakespanHours.Mean, summary.MakespanHours.Std,
			summary.TotalCostUSD.Mean, summary.TotalCostUSD.Std)
	}
	return nil
}
