package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMarketgenWritesDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(7, 42, dir); err != nil {
		t.Fatal(err)
	}
	prices, err := os.ReadFile(filepath.Join(dir, "spot_prices.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(prices), "type,az,date,usd_per_hour\n") {
		t.Fatalf("header = %.60q", prices)
	}
	advisor, err := os.ReadFile(filepath.Join(dir, "advisor.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(advisor), "\n")
	// 7 days x (5 types x 16 regions + p3 subset) + header.
	if lines < 7*5*16 {
		t.Fatalf("advisor rows = %d", lines)
	}
}

func TestMarketgenValidation(t *testing.T) {
	if err := run(0, 42, t.TempDir()); err == nil {
		t.Fatal("zero days should error")
	}
}
