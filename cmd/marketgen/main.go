// Command marketgen emits the simulated spot-market dataset as CSV: spot
// prices per (type, AZ), and advisor metrics (Interruption Frequency,
// Stability Score, Spot Placement Score) per (type, region) — a
// SpotLake-style archive for offline analysis.
//
// Usage:
//
//	marketgen [-days 90] [-seed 42] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/report"
	"spotverse/internal/simclock"
)

func main() {
	var (
		days = flag.Int("days", 90, "days of history to generate")
		seed = flag.Int64("seed", 42, "simulation seed")
		out  = flag.String("out", "marketdata", "output directory")
	)
	flag.Parse()
	if err := run(*days, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "marketgen:", err)
		os.Exit(1)
	}
}

func run(days int, seed int64, out string) error {
	if days <= 0 {
		return fmt.Errorf("days must be positive, got %d", days)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	cat := catalog.Default()
	mkt := market.New(cat, seed, simclock.Epoch)

	// Prices per (type, AZ), daily.
	var priceRows [][]string
	for _, t := range cat.InstanceTypes() {
		for _, r := range cat.OfferedRegions(t) {
			for _, az := range cat.Zones(r) {
				hist, err := mkt.PriceHistory(t, az, simclock.Epoch,
					simclock.Epoch.Add(time.Duration(days)*24*time.Hour), 24*time.Hour)
				if err != nil {
					return err
				}
				for _, p := range hist {
					priceRows = append(priceRows, []string{
						string(t), string(az), p.Time.Format("2006-01-02"), report.F(p.USDPerHour, 5),
					})
				}
			}
		}
	}
	if err := writeCSV(filepath.Join(out, "spot_prices.csv"),
		[]string{"type", "az", "date", "usd_per_hour"}, priceRows); err != nil {
		return err
	}

	// Advisor metrics per (type, region), daily.
	var advisorRows [][]string
	for _, t := range cat.InstanceTypes() {
		for d := 0; d < days; d++ {
			at := simclock.Epoch.Add(time.Duration(d) * 24 * time.Hour)
			snapshot, err := mkt.AdvisorSnapshot(t, at)
			if err != nil {
				return err
			}
			for _, e := range snapshot {
				advisorRows = append(advisorRows, []string{
					string(e.Type), string(e.Region), at.Format("2006-01-02"),
					report.F(e.SpotPriceUSD, 5), report.F(e.OnDemandUSD, 5),
					report.F(e.InterruptionFrequency, 4),
					strconv.Itoa(e.StabilityScore), strconv.Itoa(e.PlacementScore),
				})
			}
		}
	}
	if err := writeCSV(filepath.Join(out, "advisor.csv"),
		[]string{"type", "region", "date", "spot_usd", "ondemand_usd", "interruption_frequency", "stability_score", "placement_score"},
		advisorRows); err != nil {
		return err
	}
	fmt.Printf("wrote %d price rows and %d advisor rows to %s\n", len(priceRows), len(advisorRows), out)
	return nil
}

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return report.CSV(f, header, rows)
}
