// Command spotverse-lint runs the determinism lint suite over the
// repository: custom analyzers enforcing that all randomness flows
// through internal/simclock, all time comes from the simulated clock,
// map iteration order never leaks into output, and durability errors
// are never dropped.
//
// Usage:
//
//	spotverse-lint [-only detrand,mapiter] [-list] [packages ...]
//
// Packages default to ./... relative to the current directory. The exit
// code is 0 when clean, 1 when findings were reported, 2 on a driver
// error (bad flags, packages that do not type-check).
//
// Findings print as file:line:col: analyzer: message. A finding can be
// waived with a directive on the line above it (or trailing on its
// line):
//
//	//spotverse:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spotverse/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("spotverse-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spotverse-lint [-only a,b] [-list] [packages ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Position
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spotverse-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
