// Command spotverse-lint runs the determinism lint suite over the
// repository: custom analyzers enforcing that all randomness flows
// through internal/simclock, all time comes from the simulated clock,
// map iteration order never leaks into output, and durability errors
// are never dropped.
//
// Usage:
//
//	spotverse-lint [-only detrand,mapiter] [-list] [-json] [packages ...]
//
// Packages default to ./... relative to the current directory. The exit
// code is 0 when clean, 1 when findings were reported, 2 on a driver
// error (bad flags, packages that do not type-check).
//
// Findings print as file:line:col: analyzer: message. With -json the
// run instead emits one machine-readable object on stdout holding every
// finding and the full suppression inventory (each //spotverse:allow
// directive with its reason and whether it fired); the exit code is
// unchanged, so CI can archive the report and still gate on it. A
// finding can be waived with a directive on the line above it (or
// trailing on its line):
//
//	//spotverse:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spotverse/internal/analysis"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: findings that survived suppression
// plus the complete directive inventory, both in deterministic order.
type jsonReport struct {
	Findings     []jsonFinding          `json:"findings"`
	Suppressions []analysis.Suppression `json:"suppressions"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("spotverse-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings and the suppression inventory as JSON on stdout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spotverse-lint [-only a,b] [-list] [-json] [packages ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
		return 2
	}
	diags, sups, err := analysis.RunDetailed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return name
	}
	if *asJSON {
		report := jsonReport{Findings: []jsonFinding{}, Suppressions: []analysis.Suppression{}}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File:     rel(d.Position.Filename),
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, s := range sups {
			s.File = rel(s.File)
			report.Suppressions = append(report.Suppressions, s)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "spotverse-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			pos := d.Position
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spotverse-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
