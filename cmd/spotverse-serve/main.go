// Command spotverse-serve runs the always-on placement service over a
// simulated SpotVerse deployment, in one of three modes:
//
//	live (default)  serve HTTP on -addr with the wall clock until
//	                SIGTERM/SIGINT, then drain gracefully and exit 0;
//	-replay FILE    drive a recorded JSONL trace through the identical
//	                gate pipeline on the simulation clock and print the
//	                deterministic outcome summary;
//	-gen-trace FILE synthesize a deterministic request trace and exit.
//
// Live servers can record their arrivals with -record FILE, producing a
// trace that -replay accepts — record an incident in production, replay
// it byte-stably in CI.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/serve"
)

const usageLine = `usage: spotverse-serve [flags]

modes:
  (default)            live HTTP server on -addr; SIGTERM/SIGINT drains and exits 0
  -replay FILE         replay a JSONL trace deterministically and print the summary
  -gen-trace FILE      generate a deterministic trace ("-" for stdout) and exit

flags:`

// wallClock is the live daemon's time source. cmd/ is the sanctioned
// wall-clock edge: everything below the HTTP boundary takes time from
// the injected serve.Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// options carries the parsed flag set.
type options struct {
	addr      string
	seed      int64
	intensity string

	workers  int
	queue    int
	rate     float64
	burst    float64
	deadline time.Duration
	drain    time.Duration
	svc      time.Duration
	warm     int

	replayPath string
	verbose    bool
	recordPath string

	genTrace string
	genCount int
	genQPS   float64
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("spotverse-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, usageLine)
		fs.PrintDefaults()
	}
	fs.StringVar(&o.addr, "addr", ":8085", "live mode listen address")
	fs.Int64Var(&o.seed, "seed", 42, "simulation seed (backend, chaos, trace generation)")
	fs.StringVar(&o.intensity, "chaos", "off", "chaos intensity: off, low, medium, severe")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = default)")
	fs.IntVar(&o.queue, "queue", 0, "admission queue depth (0 = default)")
	fs.Float64Var(&o.rate, "rate", 0, "token bucket refill, cost units/s (0 = default)")
	fs.Float64Var(&o.burst, "burst", 0, "token bucket capacity (0 = 2x rate)")
	fs.DurationVar(&o.deadline, "deadline", 0, "per-request deadline (0 = default)")
	fs.DurationVar(&o.drain, "drain", 0, "drain deadline on shutdown (0 = default)")
	fs.DurationVar(&o.svc, "svc", 0, "modeled service time per cost unit (0 = default)")
	fs.IntVar(&o.warm, "warm-attempts", 20, "snapshot warmup retries through injected faults")
	fs.StringVar(&o.replayPath, "replay", "", "replay this JSONL trace instead of serving")
	fs.BoolVar(&o.verbose, "verbose", false, "replay: print one line per request")
	fs.StringVar(&o.recordPath, "record", "", "live: record arrivals to this trace file")
	fs.StringVar(&o.genTrace, "gen-trace", "", "generate a trace to this file and exit (\"-\" = stdout)")
	fs.IntVar(&o.genCount, "gen-count", 1000, "gen-trace: number of requests")
	fs.Float64Var(&o.genQPS, "gen-qps", experiment.DefaultTraceQPS, "gen-trace: mean arrival rate")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

// serveConfig translates flags into a serve.Config (Clock left to the
// mode: wall clock live, engine for replay).
func (o *options) serveConfig() serve.Config {
	return serve.Config{
		Workers:         o.workers,
		QueueDepth:      o.queue,
		RatePerSec:      o.rate,
		Burst:           o.burst,
		Deadline:        o.deadline,
		DrainDeadline:   o.drain,
		ServiceTime:     o.svc,
		BreakerFailures: 0, // defaults
	}
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "spotverse-serve:", err)
		return 2
	}
	switch {
	case o.genTrace != "":
		err = runGenTrace(o, stdout)
	case o.replayPath != "":
		err = runReplay(o, stdout)
	default:
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sig)
		err = runLive(o, stderr, sig, nil)
	}
	if err != nil {
		fmt.Fprintln(stderr, "spotverse-serve:", err)
		return 1
	}
	return 0
}

// runGenTrace writes a deterministic synthetic trace.
func runGenTrace(o *options, stdout io.Writer) error {
	entries := experiment.GenerateServeTrace(o.seed, o.genCount, o.genQPS)
	if o.genTrace == "-" {
		return serve.WriteTrace(stdout, entries)
	}
	f, err := os.Create(o.genTrace)
	if err != nil {
		return err
	}
	if err := serve.WriteTrace(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildSim deploys the simulated environment and a server over it with
// the given clock (nil = the simulation engine), warmed through any
// injected faults.
func buildSim(o *options, clk serve.Clock, cfg serve.Config) (*experiment.ServeSim, *serve.Server, error) {
	intensity, err := chaos.ParseIntensity(o.intensity)
	if err != nil {
		return nil, nil, err
	}
	sim, err := experiment.NewServeSim(o.seed, intensity)
	if err != nil {
		return nil, nil, err
	}
	if clk == nil {
		clk = sim.Env.Engine
	}
	cfg.Clock = clk
	srv, err := serve.New(cfg, sim.Backend)
	if err != nil {
		return nil, nil, err
	}
	if err := sim.Warm(srv, o.warm); err != nil {
		return nil, nil, err
	}
	return sim, srv, nil
}

// runReplay drives a recorded trace deterministically and prints the
// summary.
func runReplay(o *options, stdout io.Writer) error {
	var in io.Reader = os.Stdin
	if o.replayPath != "-" {
		f, err := os.Open(o.replayPath)
		if err != nil {
			return fmt.Errorf("replay: cannot open trace: %w", err)
		}
		defer f.Close()
		in = f
	}
	entries, err := serve.ReadTrace(in)
	if err != nil {
		return fmt.Errorf("replay: %s: %w", o.replayPath, err)
	}
	if len(entries) == 0 {
		// ReadTrace tolerates blank lines and comments, so a file of
		// nothing but those (or zero bytes) parses to an empty trace —
		// replaying it would print an all-zero summary and exit 0, hiding
		// a truncated or wrong -replay argument.
		return fmt.Errorf("replay: %s: trace contains no requests", o.replayPath)
	}
	sim, srv, err := buildSim(o, nil, o.serveConfig())
	if err != nil {
		return err
	}
	_, err = srv.Replay(sim.Env.Engine, entries, serve.ReplayOptions{Out: stdout, Verbose: o.verbose})
	return err
}

// runLive serves HTTP until a signal arrives, then drains gracefully.
// ready, when non-nil, receives the bound address once the listener is
// up (tests bind -addr 127.0.0.1:0 and need the real port).
func runLive(o *options, stderr io.Writer, sig <-chan os.Signal, ready chan<- string) error {
	cfg := o.serveConfig()
	var recFile *os.File
	if o.recordPath != "" {
		f, err := os.Create(o.recordPath)
		if err != nil {
			return err
		}
		recFile = f
	}
	clk := wallClock{}
	if recFile != nil {
		rec := experiment.NewServeTraceRecorder(recFile, clk)
		cfg.Trace = rec
		cfg.OnDrain = append(cfg.OnDrain, rec.Flush, recFile.Sync)
	}
	_, srv, err := buildSim(o, clk, cfg)
	if err != nil {
		if recFile != nil {
			recFile.Close()
		}
		return err
	}
	if recFile != nil {
		defer recFile.Close()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "spotverse-serve: listening on %s (seed=%d chaos=%s)\n", ln.Addr(), o.seed, o.intensity)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "spotverse-serve: received %v, draining\n", s)
	}

	// Drain first: the gate starts refusing new work with 503 +
	// Retry-After while the listener still answers, then in-flight
	// requests settle and the backend flushes. Shutdown then closes the
	// listener and waits for the last response writes.
	drainDeadline := cfg.DrainDeadline
	if drainDeadline <= 0 {
		drainDeadline = serve.DefaultDrainDeadline
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()
	drainErr := srv.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		drainErr = errors.Join(drainErr, err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	st := srv.Stats()
	fmt.Fprintf(stderr, "spotverse-serve: drained clean (requests=%d ok=%d degraded=%d shed=%d deadline=%d errors=%d)\n",
		st.Requests, st.OK, st.Degraded, st.Shed, st.Deadline, st.Errors)
	return nil
}
