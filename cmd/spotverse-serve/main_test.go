package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"spotverse/internal/serve"
)

func testOptions() *options {
	return &options{
		addr:      "127.0.0.1:0",
		seed:      42,
		intensity: "off",
		warm:      20,
		genCount:  200,
		genQPS:    400,
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	gen := func(seed int64, name string) string {
		o := testOptions()
		o.seed = seed
		o.genTrace = filepath.Join(dir, name)
		if err := runGenTrace(o, nil); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(o.genTrace)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := gen(7, "a.jsonl"), gen(7, "b.jsonl")
	if a != b {
		t.Fatal("same seed generated different traces")
	}
	if c := gen(8, "c.jsonl"); a == c {
		t.Fatal("different seeds generated identical traces")
	}
	entries, err := serve.ReadTrace(strings.NewReader(a))
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if len(entries) != 200 {
		t.Fatalf("generated %d entries, want 200", len(entries))
	}
}

func TestGenTraceToStdout(t *testing.T) {
	o := testOptions()
	o.genTrace = "-"
	o.genCount = 10
	var buf bytes.Buffer
	if err := runGenTrace(o, &buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 10 {
		t.Fatalf("stdout trace has %d lines, want 10", n)
	}
}

func TestReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.genTrace = filepath.Join(dir, "trace.jsonl")
	o.genCount = 500
	o.genQPS = 600
	o.intensity = "medium"
	if err := runGenTrace(o, nil); err != nil {
		t.Fatal(err)
	}
	o.replayPath = o.genTrace
	o.verbose = true
	replay := func() string {
		var buf bytes.Buffer
		if err := runReplay(o, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := replay(), replay()
	if a != b {
		t.Fatal("two replays of the same trace diverged")
	}
	if !strings.Contains(a, "replay: requests=500 ") {
		t.Fatalf("summary line missing or wrong:\n%s", a)
	}
	if !strings.Contains(a, "shed: limiter=") {
		t.Fatalf("shed breakdown missing:\n%s", a)
	}
}

func TestReplayRejectsBadIntensity(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.genTrace = filepath.Join(dir, "trace.jsonl")
	o.genCount = 5
	if err := runGenTrace(o, nil); err != nil {
		t.Fatal(err)
	}
	o.replayPath = o.genTrace
	o.intensity = "apocalyptic"
	if err := runReplay(o, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown chaos intensity accepted")
	}
}

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-seed", "7", "-chaos", "low", "-workers", "2", "-deadline", "1s"}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 7 || o.intensity != "low" || o.workers != 2 || o.deadline != time.Second {
		t.Fatalf("flags parsed wrong: %+v", o)
	}
	if _, err := parseFlags([]string{"stray"}, &bytes.Buffer{}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}

func TestLiveServeDrainAndRecord(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.recordPath = filepath.Join(dir, "recorded.jsonl")
	o.deadline = 2 * time.Second
	o.drain = 5 * time.Second
	o.rate = 10000

	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var stderr bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- runLive(o, &stderr, sig, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\nstderr: %s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// A placement round-trips through the live pipeline.
	body := bytes.NewBufferString(`{"workload_id":"wl-live-1"}`)
	resp, err := http.Post(base+"/v1/place", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var place serve.PlaceResponse
	if err := json.NewDecoder(resp.Body).Decode(&place); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place status %d, want 200", resp.StatusCode)
	}
	if len(place.Placements) != 1 {
		t.Fatalf("got %d placements, want 1", len(place.Placements))
	}

	// The advisor answers too, and readyz reports ready.
	resp, err = http.Get(base + "/v1/advisor")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisor status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200", resp.StatusCode)
	}

	// SIGTERM drains cleanly: exit nil, recorded trace flushed and
	// replayable.
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never drained")
	}
	if !strings.Contains(stderr.String(), "drained clean") {
		t.Fatalf("no clean-drain report in stderr:\n%s", stderr.String())
	}
	f, err := os.Open(o.recordPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := serve.ReadTrace(f)
	if err != nil {
		t.Fatalf("recorded trace does not replay: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("recorded %d entries, want 2 (place + advisor)", len(entries))
	}
	if entries[0].Endpoint != serve.EndpointPlace || entries[0].WorkloadID != "wl-live-1" {
		t.Fatalf("first recorded entry wrong: %+v", entries[0])
	}
	if entries[1].Endpoint != serve.EndpointAdvisor {
		t.Fatalf("second recorded entry wrong: %+v", entries[1])
	}
}

func TestRealMainGenTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	var out, errb bytes.Buffer
	if code := realMain([]string{"-gen-trace", path, "-gen-count", "25"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(b, []byte("\n")); n != 25 {
		t.Fatalf("trace has %d lines, want 25", n)
	}
}

// TestReplayBadTraceFiles covers the three ways a -replay argument can
// be wrong — missing, empty, corrupt — and requires each to fail with a
// single usage-style error line and a nonzero exit, never a silent
// all-zero summary.
func TestReplayBadTraceFiles(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	blank := filepath.Join(dir, "blank.jsonl")
	if err := os.WriteFile(blank, []byte("# comment only\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte(`{"at_ms":0,"endpoint":"place"}`+"\n{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, path := range map[string]string{
		"missing": filepath.Join(dir, "nope.jsonl"),
		"empty":   empty,
		"blank":   blank,
		"corrupt": corrupt,
	} {
		var out, errb bytes.Buffer
		code := realMain([]string{"-replay", path}, &out, &errb)
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr %q)", name, code, errb.String())
		}
		msg := strings.TrimSpace(errb.String())
		if msg == "" || strings.Count(msg, "\n") != 0 {
			t.Fatalf("%s: want exactly one error line, got:\n%s", name, errb.String())
		}
		if !strings.HasPrefix(msg, "spotverse-serve: replay:") {
			t.Fatalf("%s: error not usage-style: %q", name, msg)
		}
		if out.Len() != 0 {
			t.Fatalf("%s: wrote a summary despite the bad trace:\n%s", name, out.String())
		}
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUsageMentionsModes(t *testing.T) {
	var errb bytes.Buffer
	if code := realMain([]string{"-h"}, &bytes.Buffer{}, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	for _, want := range []string{"-replay", "-gen-trace", "-record", "-chaos"} {
		if !strings.Contains(errb.String(), want) {
			t.Fatalf("usage missing %s:\n%s", want, errb.String())
		}
	}
}
