// Command spotverse runs a set of workloads on the simulated multi-region
// cloud under a chosen placement strategy and reports interruptions,
// completion time and the differential cost breakdown.
//
// Usage:
//
//	spotverse [-strategy spotverse|single-region|on-demand|skypilot]
//	          [-type m5.xlarge] [-n 40] [-kind standard|checkpoint]
//	          [-threshold 5] [-regions 4] [-start ca-central-1]
//	          [-spread] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/experiment"
	"spotverse/internal/report"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

func main() {
	var (
		strategyName = flag.String("strategy", "spotverse", "spotverse, single-region, on-demand, or skypilot")
		instanceType = flag.String("type", "m5.xlarge", "instance type")
		n            = flag.Int("n", 40, "number of parallel workloads")
		kind         = flag.String("kind", "standard", "standard (restart) or checkpoint (resume)")
		threshold    = flag.Int("threshold", 5, "SpotVerse combined-score threshold")
		maxRegions   = flag.Int("regions", 4, "SpotVerse top-R region fan-out")
		startRegion  = flag.String("start", "ca-central-1", "start region (single-region baseline; SpotVerse unless -spread)")
		spread       = flag.Bool("spread", false, "let SpotVerse spread the initial placement across top regions")
		seed         = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()
	if err := run(*strategyName, *instanceType, *n, *kind, *threshold, *maxRegions, *startRegion, *spread, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "spotverse:", err)
		os.Exit(1)
	}
}

func run(strategyName, instanceType string, n int, kind string, threshold, maxRegions int, startRegion string, spread bool, seed int64) error {
	it := catalog.InstanceType(instanceType)
	env := experiment.NewEnv(seed)
	if _, err := env.Catalog().Spec(it); err != nil {
		return err
	}

	wkind := workload.KindStandard
	if kind == "checkpoint" {
		wkind = workload.KindCheckpoint
	} else if kind != "standard" {
		return fmt.Errorf("unknown workload kind %q", kind)
	}
	ws, err := workload.Generate(simclock.Stream(seed, "cli-workloads"), workload.GenOptions{Kind: wkind, Count: n})
	if err != nil {
		return err
	}

	var strat strategy.Strategy
	disableSweep := false
	switch strategyName {
	case "spotverse":
		cfg := core.Config{InstanceType: it, Threshold: threshold, MaxRegions: maxRegions, Seed: seed}
		if !spread {
			cfg.FixedStartRegion = catalog.Region(startRegion)
		}
		sv, err := core.New(cfg, core.Deps{
			Engine: env.Engine, Market: env.Market, Provider: env.Provider,
			Dynamo: env.Dynamo, Lambda: env.Lambda, Bus: env.Bus,
			CloudWatch: env.CloudWatch, StepFn: env.StepFn,
		})
		if err != nil {
			return err
		}
		strat = sv
		disableSweep = true
	case "single-region":
		strat, err = baselines.NewSingleRegion(env.Catalog(), it, catalog.Region(startRegion))
	case "on-demand":
		strat, err = baselines.NewOnDemand(env.Catalog(), it)
	case "skypilot":
		strat, err = baselines.NewSkyPilotLike(env.Engine, env.Market, it)
	default:
		return fmt.Errorf("unknown strategy %q", strategyName)
	}
	if err != nil {
		return err
	}

	res, err := experiment.Run(env, experiment.RunConfig{
		Workloads:    ws,
		Strategy:     strat,
		InstanceType: it,
		DisableSweep: disableSweep,
	})
	if err != nil {
		return err
	}

	t := report.NewTable(fmt.Sprintf("%s: %d %s workloads on %s", res.StrategyName, n, wkind, it), "metric", "value")
	t.MustAddRow("completed", strconv.Itoa(res.Completed))
	t.MustAddRow("interruptions", strconv.Itoa(res.Interruptions))
	t.MustAddRow("makespan", report.F(res.MakespanHours, 2)+" h")
	t.MustAddRow("mean completion", report.F(res.MeanCompletionHours, 2)+" h")
	t.MustAddRow("instance cost", report.USD(res.InstanceCostUSD))
	t.MustAddRow("service cost", report.USD(res.ServiceCostUSD))
	t.MustAddRow("total cost", report.USD(res.TotalCostUSD))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	t2 := report.NewTable("cost breakdown", "category", "usd")
	for _, item := range res.Breakdown {
		t2.MustAddRow(string(item.Category), fmt.Sprintf("$%.4f", item.USD))
	}
	if err := t2.Render(os.Stdout); err != nil {
		return err
	}

	t3 := report.NewTable("launches and interruptions by region", "region", "launches", "interruptions")
	for _, r := range env.Catalog().Regions() {
		l := res.LaunchesByRegion[r]
		i := res.InterruptionsByRegion[r]
		if l == 0 && i == 0 {
			continue
		}
		t3.MustAddRow(string(r), strconv.Itoa(l), strconv.Itoa(i))
	}
	return t3.Render(os.Stdout)
}
