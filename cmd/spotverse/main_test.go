package main

import "testing"

func TestRunSpotVerse(t *testing.T) {
	if err := run("spotverse", "m5.xlarge", 5, "standard", 5, 4, "ca-central-1", true, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselines(t *testing.T) {
	for _, s := range []string{"single-region", "on-demand", "skypilot"} {
		if err := run(s, "m5.xlarge", 3, "standard", 5, 4, "ca-central-1", false, 42); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestRunCheckpointKind(t *testing.T) {
	if err := run("on-demand", "m5.xlarge", 3, "checkpoint", 5, 4, "ca-central-1", false, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("bogus", "m5.xlarge", 3, "standard", 5, 4, "ca-central-1", false, 42); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if err := run("spotverse", "z9.nano", 3, "standard", 5, 4, "ca-central-1", false, 42); err == nil {
		t.Fatal("unknown type should error")
	}
	if err := run("spotverse", "m5.xlarge", 3, "weird", 5, 4, "ca-central-1", false, 42); err == nil {
		t.Fatal("unknown kind should error")
	}
}
