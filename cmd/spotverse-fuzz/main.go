// Command spotverse-fuzz is the deterministic fault-space fuzzer: it
// generates one composite chaos plan per seed, runs the full SpotVerse
// stack (batch control plane, durable checkpoints, serve replay) under
// each plan, and checks the system-wide invariant catalog after every
// run. A violation is shrunk to a minimal plan and written as
// fuzz-repro-<seed>.json, which -replay re-executes byte-identically.
//
// Everything — plan generation, runs, shrinking, output — is derived
// from explicit seeds, so a campaign prints the same bytes on every
// machine.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"spotverse/internal/fuzz"
)

const usageLine = `usage: spotverse-fuzz [flags]

modes:
  (default)            fuzz campaign: -seeds plans starting at -seed
  -replay FILE         re-execute a repro file twice and verify both runs
                       reproduce its recorded fingerprint and violations
  -list-invariants     print the invariant catalog and exit

flags:`

type options struct {
	seed      int64
	seeds     int
	workloads int
	disable   bool
	out       string
	verbose   bool

	replayPath string
	listInv    bool
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("spotverse-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, usageLine)
		fs.PrintDefaults()
	}
	fs.Int64Var(&o.seed, "seed", 1, "first seed of the campaign")
	fs.IntVar(&o.seeds, "seeds", 50, "number of seeds (plans) to run")
	fs.IntVar(&o.workloads, "workloads", 0, "override workload count per plan (0 = plan decides)")
	fs.BoolVar(&o.disable, "disable-fencing", false, "run the deliberately broken unfenced control plane")
	fs.StringVar(&o.out, "out", ".", "directory for fuzz-repro-<seed>.json files")
	fs.BoolVar(&o.verbose, "v", false, "print one progress line per seed")
	fs.StringVar(&o.replayPath, "replay", "", "verify this repro file instead of fuzzing")
	fs.BoolVar(&o.listInv, "list-invariants", false, "print the invariant catalog and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.replayPath == "" && !o.listInv && o.seeds < 1 {
		return nil, fmt.Errorf("-seeds must be >= 1 (got %d)", o.seeds)
	}
	return o, nil
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "spotverse-fuzz:", err)
		return 2
	}
	switch {
	case o.listInv:
		listInvariants(stdout)
		return 0
	case o.replayPath != "":
		err = runReplay(o, stdout)
	default:
		var violated bool
		violated, err = runCampaign(o, stdout)
		if err == nil && violated {
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "spotverse-fuzz:", err)
		return 1
	}
	return 0
}

// listInvariants prints the catalog, sorted by name (the registry's
// canonical order).
func listInvariants(stdout io.Writer) {
	for _, inv := range fuzz.Registry() {
		fmt.Fprintf(stdout, "%-32s %s\n", inv.Name, inv.Desc)
	}
}

// runReplay re-executes a repro file and verifies byte-identical
// reproduction.
func runReplay(o *options, stdout io.Writer) error {
	f, err := os.Open(o.replayPath)
	if err != nil {
		return err
	}
	r, err := fuzz.ReadRepro(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := fuzz.VerifyRepro(r); err != nil {
		return err
	}
	names := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		names = append(names, v.Invariant)
	}
	fmt.Fprintf(stdout, "repro verified: seed=%d events=%d fingerprint=%s violations=[%s] (2 identical replays)\n",
		r.Plan.Seed, len(r.Plan.Events), r.Fingerprint, strings.Join(dedupe(names), " "))
	return nil
}

func dedupe(in []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// runCampaign fuzzes -seeds plans; the bool reports whether any
// invariant was violated.
func runCampaign(o *options, stdout io.Writer) (bool, error) {
	seeds := make([]int64, o.seeds)
	for i := range seeds {
		seeds[i] = o.seed + int64(i)
	}
	cfg := fuzz.CampaignConfig{
		Seeds:          seeds,
		DisableFencing: o.disable,
		Workloads:      o.workloads,
	}
	if o.verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}
	res, err := fuzz.Campaign(cfg)
	if err != nil {
		return false, err
	}
	if len(res.Failures) == 0 {
		fmt.Fprintf(stdout, "fuzz: %d trials, 0 violations\n", res.Trials)
		return false, nil
	}
	fmt.Fprintf(stdout, "fuzz: %d trials, %d violating seeds\n", res.Trials, len(res.Failures))
	for _, r := range res.Failures {
		path, err := fuzz.SaveRepro(o.out, r)
		if err != nil {
			return true, fmt.Errorf("writing repro for seed %d: %w", r.Plan.Seed, err)
		}
		names := make([]string, 0, len(r.Violations))
		for _, v := range r.Violations {
			names = append(names, v.Invariant)
		}
		fmt.Fprintf(stdout, "  seed %d: [%s] shrunk to %d events in %d runs -> %s\n",
			r.Plan.Seed, strings.Join(dedupe(names), " "), len(r.Plan.Events), r.ShrinkRuns, path)
	}
	return true, nil
}
