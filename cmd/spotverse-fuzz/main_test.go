package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListInvariantsSortedDeterministic(t *testing.T) {
	code, out, _ := run(t, "-list-invariants")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("invariant line missing description: %q", line)
		}
		names = append(names, fields[0])
	}
	if len(names) != 6 {
		t.Fatalf("%d invariants listed, want 6:\n%s", len(names), out)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	_, again, _ := run(t, "-list-invariants")
	if again != out {
		t.Fatal("two listings differ")
	}
}

func TestFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-seeds", "0"},
		{"stray-arg"},
	} {
		code, _, stderr := run(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2 (stderr %q)", args, code, stderr)
		}
		if stderr == "" {
			t.Fatalf("%v: no error message", args)
		}
	}
}

func TestReplayBadFiles(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, path := range map[string]string{
		"missing": filepath.Join(t.TempDir(), "nope.json"),
		"empty":   empty,
		"corrupt": corrupt,
	} {
		code, _, stderr := run(t, "-replay", path)
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1", name, code)
		}
		if lines := strings.Count(strings.TrimSpace(stderr), "\n") + 1; lines != 1 {
			t.Fatalf("%s: %d error lines, want exactly 1:\n%s", name, lines, stderr)
		}
	}
}

func TestCleanCampaign(t *testing.T) {
	dir := t.TempDir()
	code, out, stderr := run(t, "-seeds", "5", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "5 trials, 0 violations") {
		t.Fatalf("unexpected summary: %q", out)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "fuzz-repro-*.json")); len(files) != 0 {
		t.Fatalf("clean campaign wrote repros: %v", files)
	}
}

// TestBrokenFencingCaughtShrunkReplayed is the CLI acceptance path: a
// campaign against the unfenced build exits 1, writes a shrunken repro
// of at most three events, and -replay on that file verifies two
// byte-identical re-executions and exits 0.
func TestBrokenFencingCaughtShrunkReplayed(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	dir := t.TempDir()
	code, out, stderr := run(t, "-seeds", "10", "-seed", "1", "-disable-fencing", "-out", dir)
	if code != 1 {
		t.Fatalf("broken build: exit %d, want 1 (stdout %q stderr %q)", code, out, stderr)
	}
	if !strings.Contains(out, "relaunch-exactly-once") {
		t.Fatalf("summary does not name the split-brain invariant:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fuzz-repro-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no repro written (err %v)", err)
	}
	for _, f := range files {
		code, rout, rerr := run(t, "-replay", f)
		if code != 0 {
			t.Fatalf("replay %s: exit %d, stderr %q", f, code, rerr)
		}
		if !strings.Contains(rout, "repro verified") || !strings.Contains(rout, "2 identical replays") {
			t.Fatalf("replay %s: unexpected output %q", f, rout)
		}
	}
}

// TestCampaignOutputDeterministic runs the same campaign twice and
// requires identical bytes on stdout.
func TestCampaignOutputDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	_, a, _ := run(t, "-seeds", "3", "-v", "-out", dirA)
	_, b, _ := run(t, "-seeds", "3", "-v", "-out", dirB)
	if a != b {
		t.Fatalf("campaign output differs:\n%s\n---\n%s", a, b)
	}
}
