package spotverse

import (
	"testing"
	"time"
)

func TestPublicAdaptiveStrategy(t *testing.T) {
	sim := NewSimulation(11)
	sim.EnableSeasonality()
	strat, err := sim.NewAdaptiveStrategy(M5XLarge, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sim.GenerateWorkloads(WorkloadOptions{Kind: KindStandard, Count: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunConfig{Workloads: ws, Strategy: strat, InstanceType: M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.StrategyName != "predictive" {
		t.Fatalf("strategy = %s", res.StrategyName)
	}
}

func TestPublicOutageInjection(t *testing.T) {
	sim := NewSimulation(12)
	if err := sim.InjectOutage("ca-central-1", sim.Now(), sim.Now().Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectOutage("narnia-1", sim.Now(), sim.Now().Add(time.Hour)); err == nil {
		t.Fatal("unknown region accepted")
	}
	p, err := sim.Market().LaunchSuccessProbability(M5XLarge, "ca-central-1", sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("launch probability %v during outage", p)
	}
}

func TestPublicTraceTimeline(t *testing.T) {
	sim := NewSimulation(13)
	strat, err := sim.NewSingleRegionStrategy(M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sim.GenerateWorkloads(WorkloadOptions{Kind: KindStandard, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunConfig{Workloads: ws, Strategy: strat, InstanceType: M5XLarge, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || res.Timeline.Len() == 0 {
		t.Fatal("no timeline with Trace enabled")
	}
	if problems := res.Timeline.Validate(); len(problems) > 0 {
		t.Fatalf("timeline violations: %v", problems)
	}
}
