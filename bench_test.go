package spotverse

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// re-runs the full experiment per iteration and reports the headline
// numbers as custom metrics; run with
//
//	go test -bench=. -benchmem
//
// The rows the paper reports are printed once per bench via -v logging.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/experiment"
	"spotverse/internal/workload"
)

const benchSeed = 42

func BenchmarkTable1BaselineRegions(b *testing.B) {
	var rows []experiment.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Table1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = experiment.RenderTable1(io.Discard, rows)
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderTable1(w, rows) }))
}

func BenchmarkFig2SpotPriceDiversity(b *testing.B) {
	var series []experiment.Fig2Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiment.Fig2(benchSeed, 90)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(series)), "series")
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig2(w, series) }))
}

func BenchmarkFig3Motivation(b *testing.B) {
	var results []experiment.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiment.Fig3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(results[0].Single.Interruptions), "single_interruptions")
	b.ReportMetric(float64(results[0].Multi.Interruptions), "multi_interruptions")
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig3(w, results) }))
}

func BenchmarkFig4Metrics(b *testing.B) {
	var (
		heat []experiment.Fig4Heatmap
		avgs []experiment.Fig4Averages
	)
	for i := 0; i < b.N; i++ {
		var err error
		heat, avgs, err = experiment.Fig4(benchSeed, 180)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig4(w, heat, avgs) }))
}

func BenchmarkFig7MainComparison(b *testing.B) {
	var results []experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiment.Fig7(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	std := results[0]
	b.ReportMetric(float64(std.Single.Interruptions), "single_interruptions")
	b.ReportMetric(float64(std.SpotVerse.Interruptions), "spotverse_interruptions")
	b.ReportMetric(std.Single.TotalCostUSD, "single_cost_usd")
	b.ReportMetric(std.SpotVerse.TotalCostUSD, "spotverse_cost_usd")
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig7(w, results) }))
}

func BenchmarkFig8TypesAndSizes(b *testing.B) {
	var typeRows, sizeRows []experiment.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		typeRows, err = experiment.Fig8(benchSeed, experiment.Fig8TypeSet)
		if err != nil {
			b.Fatal(err)
		}
		sizeRows, err = experiment.Fig8(benchSeed, experiment.Fig8SizeSet)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s%s",
		renderToString(func(w io.Writer) error {
			return experiment.RenderFig8(w, "Figure 8a/8b — instance types", typeRows)
		}),
		renderToString(func(w io.Writer) error {
			return experiment.RenderFig8(w, "Figure 8c/8d — m5 sizes", sizeRows)
		}))
}

func BenchmarkFig9InitialDistribution(b *testing.B) {
	var results []experiment.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiment.Fig9(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(results[0].FixedStart.Interruptions), "fixed_interruptions")
	b.ReportMetric(float64(results[0].Spread.Interruptions), "spread_interruptions")
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig9(w, results) }))
}

func BenchmarkFig10Thresholds(b *testing.B) {
	var cells []experiment.Fig10Cell
	var selection map[int][]catalog.Region
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiment.Fig10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		selection, err = experiment.Table3Selection(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, c := range cells {
		if c.Threshold == 4 && c.DurationHours == 20 {
			b.ReportMetric(c.NormalizedCost, "t4_20h_normalized")
		}
		if c.Threshold == 6 && c.DurationHours == 10 {
			b.ReportMetric(c.NormalizedCost, "t6_10h_normalized")
		}
	}
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderFig10(w, cells, selection) }))
}

func BenchmarkTable3RegionSelection(b *testing.B) {
	var selection map[int][]catalog.Region
	for i := 0; i < b.N; i++ {
		var err error
		selection, err = experiment.Table3Selection(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("selection: %v", selection)
}

func BenchmarkTable4SkyPilot(b *testing.B) {
	var res *experiment.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Table4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.SpotVerse.Interruptions), "spotverse_interruptions")
	b.ReportMetric(float64(res.SkyPilot.Interruptions), "skypilot_interruptions")
	b.ReportMetric(1-res.SpotVerse.TotalCostUSD/res.SkyPilot.TotalCostUSD, "cost_reduction")
	b.Logf("\n%s", renderToString(func(w io.Writer) error { return experiment.RenderTable4(w, res) }))
}

// --- Ablation benches (DESIGN.md "Design choices called out") ---

// runManaged runs n standard workloads under a SpotVerse config and
// returns the result.
func runManaged(b *testing.B, cfg core.Config, n int, horizon time.Duration) *experiment.Result {
	b.Helper()
	sim := NewSimulation(benchSeed)
	mgr, err := sim.NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := sim.GenerateWorkloads(WorkloadOptions{Kind: workload.KindStandard, Count: n})
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(RunConfig{Workloads: ws, Strategy: mgr, InstanceType: M5XLarge, Horizon: horizon})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationScoreVsPrice isolates the combined-score ranking:
// SpotVerse's score-filtered placement versus the pure price-chasing
// broker over identical workloads.
func BenchmarkAblationScoreVsPrice(b *testing.B) {
	var scoreCost, priceCost float64
	for i := 0; i < b.N; i++ {
		res := runManaged(b, core.Config{InstanceType: M5XLarge, Threshold: 6, Seed: benchSeed}, 20, 0)
		scoreCost = res.TotalCostUSD

		sim := NewSimulation(benchSeed)
		sky, err := sim.NewSkyPilotStrategy(M5XLarge)
		if err != nil {
			b.Fatal(err)
		}
		ws, err := sim.GenerateWorkloads(WorkloadOptions{Kind: workload.KindStandard, Count: 20})
		if err != nil {
			b.Fatal(err)
		}
		resP, err := sim.Run(RunConfig{Workloads: ws, Strategy: sky, InstanceType: M5XLarge})
		if err != nil {
			b.Fatal(err)
		}
		priceCost = resP.TotalCostUSD
	}
	b.StopTimer()
	b.ReportMetric(scoreCost, "score_cost_usd")
	b.ReportMetric(priceCost, "price_cost_usd")
}

// BenchmarkAblationMigrationPolicy compares Algorithm 1's random top-R
// migration pick against always-cheapest.
func BenchmarkAblationMigrationPolicy(b *testing.B) {
	var random, cheapest *experiment.Result
	for i := 0; i < b.N; i++ {
		random = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 5,
			FixedStartRegion: "ca-central-1", Migration: core.PickRandom, Seed: benchSeed,
		}, 20, 0)
		cheapest = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 5,
			FixedStartRegion: "ca-central-1", Migration: core.PickCheapest, Seed: benchSeed,
		}, 20, 0)
	}
	b.StopTimer()
	b.ReportMetric(random.TotalCostUSD, "random_cost_usd")
	b.ReportMetric(cheapest.TotalCostUSD, "cheapest_cost_usd")
	b.ReportMetric(float64(random.Interruptions), "random_interruptions")
	b.ReportMetric(float64(cheapest.Interruptions), "cheapest_interruptions")
}

// BenchmarkAblationInitialSpread measures Fig. 9's lever in isolation.
func BenchmarkAblationInitialSpread(b *testing.B) {
	var fixed, spread *experiment.Result
	for i := 0; i < b.N; i++ {
		fixed = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 5,
			FixedStartRegion: "ca-central-1", Seed: benchSeed,
		}, 20, 0)
		spread = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 6, Seed: benchSeed,
		}, 20, 0)
	}
	b.StopTimer()
	b.ReportMetric(float64(fixed.Interruptions), "fixed_interruptions")
	b.ReportMetric(float64(spread.Interruptions), "spread_interruptions")
}

// BenchmarkAblationOnDemandFallback runs with an unreachable threshold so
// nothing qualifies: with the fallback the fleet rides reliable on-demand
// instances; without it, workloads grind through spot retries in place.
func BenchmarkAblationOnDemandFallback(b *testing.B) {
	var with, without *experiment.Result
	for i := 0; i < b.N; i++ {
		with = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 20, Seed: benchSeed,
		}, 10, 0)
		without = runManaged(b, core.Config{
			InstanceType: M5XLarge, Threshold: 20, DisableOnDemandFallback: true,
			FixedStartRegion: "ca-central-1", Seed: benchSeed,
		}, 10, 30*24*time.Hour)
	}
	b.StopTimer()
	b.ReportMetric(with.MakespanHours, "fallback_makespan_h")
	b.ReportMetric(without.MakespanHours, "no_fallback_makespan_h")
	b.ReportMetric(float64(with.Interruptions), "fallback_interruptions")
	b.ReportMetric(float64(without.Interruptions), "no_fallback_interruptions")
}

// BenchmarkAblationRegionFanout sweeps Algorithm 1's R.
func BenchmarkAblationRegionFanout(b *testing.B) {
	for _, r := range []int{1, 2, 4, 8} {
		r := r
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res = runManaged(b, core.Config{
					InstanceType: M5XLarge, Threshold: 5, MaxRegions: r,
					FixedStartRegion: "ca-central-1", Seed: benchSeed,
				}, 20, 0)
			}
			b.StopTimer()
			b.ReportMetric(res.TotalCostUSD, "cost_usd")
			b.ReportMetric(float64(res.Interruptions), "interruptions")
		})
	}
}

// --- Hot-path benches (PR 3: market caching + parallel harness) ---

// BenchmarkMarketAveragePrice hammers the query Table 1 and every
// baseline-region probe is built from: time-averaged regional spot price
// over a multi-week window. With the prefix-sum cache warm this is O(1)
// per call instead of a rescan of every price step across every AZ.
func BenchmarkMarketAveragePrice(b *testing.B) {
	sim := NewSimulation(benchSeed)
	m := sim.Market()
	regions := sim.Catalog().OfferedRegions(M5XLarge)
	from := sim.Now()
	to := from.Add(28 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range regions {
			if _, err := m.AveragePrice(M5XLarge, r, from, to); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMarketCheapestSpotRegion measures the memoized Table 1
// ranking: first call builds the per-region averages, the rest hit the
// (type, window) memo.
func BenchmarkMarketCheapestSpotRegion(b *testing.B) {
	sim := NewSimulation(benchSeed)
	m := sim.Market()
	from := sim.Now()
	to := from.Add(14 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.CheapestSpotRegion(M5XLarge, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketPriceHistory measures the preallocated 90-day series
// the Fig. 2 CSV export reads.
func BenchmarkMarketPriceHistory(b *testing.B) {
	sim := NewSimulation(benchSeed)
	m := sim.Market()
	az := sim.Catalog().Zones("us-east-1")[0]
	from := sim.Now()
	to := from.Add(90 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PriceHistory(M5XLarge, az, from, to, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialsWorkers runs the three-trial Fig. 7 protocol at
// several worker-pool bounds. On a multi-core host the 4- and 8-worker
// rows shrink toward the slowest single trial; the rendered statistics
// are identical at every setting.
func BenchmarkTrialsWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := SetParallelism(workers)
			defer SetParallelism(prev)
			var summary *experiment.TrialSummary
			for i := 0; i < b.N; i++ {
				var err error
				summary, err = experiment.Trials(3, benchSeed, experiment.Fig7TrialSpotVerse)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(summary.TotalCostUSD.Mean, "mean_cost_usd")
		})
	}
}

func renderToString(render func(io.Writer) error) string {
	var sb stringsBuilder
	if err := render(&sb); err != nil {
		return "render error: " + err.Error()
	}
	return sb.String()
}

// stringsBuilder avoids importing strings solely for the test helper.
type stringsBuilder struct{ buf []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func (s *stringsBuilder) String() string { return string(s.buf) }
