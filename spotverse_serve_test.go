package spotverse

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// serveFacadeRun deploys a manager and server through the public facade
// and replays a generated trace, returning the rendered output and
// summary.
func serveFacadeRun(t *testing.T, seed int64) (string, *ServeReplaySummary) {
	t.Helper()
	sim := NewSimulation(seed)
	mgr, err := sim.NewManager(ManagerConfig{InstanceType: M5XLarge, Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sim.Serve(mgr, ServeConfig{
		Workers:     2,
		QueueDepth:  8,
		RatePerSec:  100000,
		Deadline:    2 * time.Second,
		ServiceTime: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	trace := sim.GenerateServeTrace(400, 300)
	var buf bytes.Buffer
	sum, err := sim.ReplayServe(srv, trace, ServeReplayOptions{Out: &buf, Verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), sum
}

func TestServeFacadeReplayDeterministic(t *testing.T) {
	a, sa := serveFacadeRun(t, 42)
	b, sb := serveFacadeRun(t, 42)
	if a != b || *sa != *sb {
		t.Fatal("facade serve replay is not deterministic")
	}
	if sa.Requests != 400 {
		t.Fatalf("requests = %d, want 400", sa.Requests)
	}
	if got := sa.OK + sa.Degraded + sa.Shed + sa.Deadline + sa.Errors; got != sa.Requests {
		t.Fatalf("outcomes sum to %d, want %d", got, sa.Requests)
	}
	if sa.OK == 0 {
		t.Fatal("no request succeeded through the facade server")
	}
	// 300 QPS of mostly-place traffic against 2 workers at 20ms/unit
	// (~100 units/s) must shed.
	if sa.Shed == 0 {
		t.Fatal("overload trace shed nothing")
	}
}
