package spotverse

// Fleet-scale benchmarks: the sharded fleet engine (RunFleetSharded)
// and the flat batched FleetState path (RunFleet) against the
// per-workload path (Run) on the identical configuration —
// single-region arm, standard workloads, 14-day horizon, seed 42. Two
// metrics matter:
//
//   - workloads/s — simulated workloads per wall-second, the ISSUE 8
//     throughput headline, now swept over shard counts at N=10k and
//     N=100k;
//   - retained_B/wl — bytes of heap the environment plus result pin
//     per workload after the run, the streaming-aggregation memory
//     bound.
//
// Both are reported as custom benchmark metrics so BENCH_N.json diffs
// carry the trajectory.

import (
	"runtime"
	"testing"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/experiment"
	"spotverse/internal/raceflag"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// runFleetBench executes one RunFleet of n standard workloads and
// returns the environment and result (kept reachable by retention
// measurement).
func runFleetBench(n int) (*experiment.Env, *experiment.FleetResult, error) {
	env := experiment.NewEnv(benchSeed)
	single, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, experiment.BaselineRegionM5XLarge)
	if err != nil {
		return nil, nil, err
	}
	f, err := workload.GenerateFleet(simclock.Stream(benchSeed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: n})
	if err != nil {
		return nil, nil, err
	}
	res, err := experiment.RunFleet(env, experiment.FleetRunConfig{
		Fleet:           f,
		Strategy:        single,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
	})
	return env, res, err
}

// runLegacyBench executes the identical run on the per-workload path.
func runLegacyBench(n int) (*experiment.Env, *experiment.Result, error) {
	env := experiment.NewEnv(benchSeed)
	single, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, experiment.BaselineRegionM5XLarge)
	if err != nil {
		return nil, nil, err
	}
	ws, err := workload.Generate(simclock.Stream(benchSeed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: n})
	if err != nil {
		return nil, nil, err
	}
	res, err := experiment.Run(env, experiment.RunConfig{
		Workloads:       ws,
		Strategy:        single,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
	})
	return env, res, err
}

// retainedPerWorkload measures the heap bytes pinned per workload by a
// completed run: heap growth between a settled baseline and a settled
// post-run state with env and result still reachable. The shared market
// snapshot is warmed by the caller, so it cancels out of the delta.
func retainedPerWorkload(b *testing.B, n int, run func() (any, any, error)) float64 {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	env, res, err := run()
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	runtime.KeepAlive(env)
	runtime.KeepAlive(res)
	if retained < 0 {
		retained = 0
	}
	return retained / float64(n)
}

func benchFleetPath(b *testing.B, n int) {
	var last *experiment.FleetResult
	for i := 0; i < b.N; i++ {
		_, res, err := runFleetBench(n)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(n)/perOp, "workloads/s")
	b.ReportMetric(retainedPerWorkload(b, n, func() (any, any, error) {
		env, res, err := runFleetBench(n)
		return env, res, err
	}), "retained_B/wl")
	b.ReportMetric(float64(last.Interruptions), "interruptions")
	b.ReportMetric(float64(last.Completed), "completed")
}

func benchLegacyPath(b *testing.B, n int) {
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		_, res, err := runLegacyBench(n)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(n)/perOp, "workloads/s")
	b.ReportMetric(retainedPerWorkload(b, n, func() (any, any, error) {
		env, res, err := runLegacyBench(n)
		return env, res, err
	}), "retained_B/wl")
	b.ReportMetric(float64(last.Interruptions), "interruptions")
	b.ReportMetric(float64(last.Completed), "completed")
}

// runShardedBench executes one RunFleetSharded of n standard workloads
// over the given shard count (sharded runs own their per-shard
// environments, so only the result survives for retention measurement).
func runShardedBench(n, shards int) (*experiment.FleetResult, error) {
	single := func(env *experiment.Env) (strategy.Strategy, error) {
		return baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, experiment.BaselineRegionM5XLarge)
	}
	f, err := workload.GenerateFleet(simclock.Stream(benchSeed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: n})
	if err != nil {
		return nil, err
	}
	return experiment.RunFleetSharded(benchSeed, experiment.FleetShardedConfig{
		Fleet:           f,
		NewStrategy:     single,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		Shards:          shards,
	})
}

func benchShardedPath(b *testing.B, n, shards int) {
	var last *experiment.FleetResult
	for i := 0; i < b.N; i++ {
		res, err := runShardedBench(n, shards)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(n)/perOp, "workloads/s")
	b.ReportMetric(retainedPerWorkload(b, n, func() (any, any, error) {
		res, err := runShardedBench(n, shards)
		return nil, res, err
	}), "retained_B/wl")
	b.ReportMetric(float64(last.Interruptions), "interruptions")
	b.ReportMetric(float64(last.Completed), "completed")
}

func BenchmarkFleetPath1k(b *testing.B)   { benchFleetPath(b, 1000) }
func BenchmarkFleetPath10k(b *testing.B)  { benchFleetPath(b, 10000) }
func BenchmarkLegacyPath1k(b *testing.B)  { benchLegacyPath(b, 1000) }
func BenchmarkLegacyPath10k(b *testing.B) { benchLegacyPath(b, 10000) }

// Sharded-engine scaling ladder: workloads/s versus shard count at
// N=10k and N=100k. Output is byte-identical at every rung; only the
// wall clock moves.
func BenchmarkFleetSharded10kShards1(b *testing.B)  { benchShardedPath(b, 10000, 1) }
func BenchmarkFleetSharded10kShards2(b *testing.B)  { benchShardedPath(b, 10000, 2) }
func BenchmarkFleetSharded10kShards8(b *testing.B)  { benchShardedPath(b, 10000, 8) }
func BenchmarkFleetSharded100kShards1(b *testing.B) { benchShardedPath(b, 100000, 1) }
func BenchmarkFleetSharded100kShards8(b *testing.B) { benchShardedPath(b, 100000, 8) }

// TestFleetShardedAllocBudget pins the hot-loop allocation rate of the
// sharded fleet path: at N=10k on one shard, at most 33 heap
// allocations per workload — half the ~65/wl the PR 8 path spent.
// Mallocs is a process-global counter, so the assertion is skipped
// under -race (shadow-memory allocations) and takes the best of two
// runs to ride out unrelated background allocation.
func TestFleetShardedAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector allocates shadow memory; alloc budget is meaningless")
	}
	if testing.Short() {
		t.Skip("alloc budget runs full 10k simulations")
	}
	const n = 10000
	const budget = 33.0
	// Warm the shared market snapshot and the worker pool.
	if _, err := runShardedBench(100, 1); err != nil {
		t.Fatal(err)
	}
	measure := func() float64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := runShardedBench(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(res)
		return float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	perWl := measure()
	if second := measure(); second < perWl {
		perWl = second
	}
	t.Logf("sharded fleet path: %.1f allocs/workload at n=%d (budget %.1f)", perWl, n, budget)
	if perWl > budget {
		t.Errorf("sharded fleet path allocates %.1f/workload at n=%d, want <= %.1f", perWl, n, budget)
	}
}

// TestFleetShardedThroughput pins that sharding never costs throughput:
// the sharded path at one shard must stay within 25%% of the PR 8
// RunFleet path on the identical cell (best of two, same treatment for
// both paths). In practice it is faster — the lean notice path and
// pooled fulfill buckets cut per-event work — but the gate only guards
// against regression, leaving headroom for noisy CI boxes.
func TestFleetShardedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput check runs full 10k simulations")
	}
	const n = 10000
	if _, err := runShardedBench(100, 1); err != nil {
		t.Fatal(err)
	}
	timeIt := func(run func() error) float64 {
		best := 0.0
		for i := 0; i < 2; i++ {
			start := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if sec := time.Since(start).Seconds(); i == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	legacySec := timeIt(func() error { _, _, err := runFleetBench(n); return err })
	shardedSec := timeIt(func() error { _, err := runShardedBench(n, 1); return err })
	ratio := shardedSec / legacySec
	t.Logf("n=%d legacy RunFleet %.2fs | sharded(1) %.2fs | ratio %.2fx", n, legacySec, shardedSec, ratio)
	if ratio > 1.25 {
		t.Errorf("sharded path at 1 shard took %.2fx the RunFleet wall clock, want <= 1.25x", ratio)
	}
}

// TestFleetSpeedupAndRetention is the acceptance check behind the
// benchmarks: at N=10k the fleet path must be at least 5x faster and
// retain at least 5x fewer bytes per workload than the per-workload
// path. It runs each path once, so it is cheap enough for the ordinary
// test suite while pinning the regression bar.
func TestFleetSpeedupAndRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet speedup check runs full 10k simulations")
	}
	const n = 10000
	// Warm the shared market snapshot so retention deltas exclude it.
	if _, _, err := runFleetBench(100); err != nil {
		t.Fatal(err)
	}

	measureOnce := func(run func() (any, any, error)) (seconds, retainedPerWl float64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		env, res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		seconds = time.Since(start).Seconds()
		runtime.GC()
		runtime.ReadMemStats(&after)
		retainedPerWl = (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / float64(n)
		runtime.KeepAlive(env)
		runtime.KeepAlive(res)
		return seconds, retainedPerWl
	}
	// Best of two runs per path: the min is the standard noise-robust
	// wall-clock estimator, and both paths get the same treatment.
	measure := func(run func() (any, any, error)) (seconds, retainedPerWl float64) {
		s1, r1 := measureOnce(run)
		s2, r2 := measureOnce(run)
		if s2 < s1 {
			s1 = s2
		}
		if r2 < r1 {
			r1 = r2
		}
		return s1, r1
	}

	slowSec, slowRet := measure(func() (any, any, error) {
		env, res, err := runLegacyBench(n)
		return env, res, err
	})
	fleetSec, fleetRet := measure(func() (any, any, error) {
		env, res, err := runFleetBench(n)
		return env, res, err
	})

	speedup := slowSec / fleetSec
	retRatio := slowRet / fleetRet
	t.Logf("n=%d legacy %.2fs %.0f B/wl | fleet %.2fs %.0f B/wl | speedup %.1fx, retention ratio %.1fx",
		n, slowSec, slowRet, fleetSec, fleetRet, speedup, retRatio)
	if speedup < 5 {
		t.Errorf("fleet path speedup %.2fx at n=%d, want >= 5x", speedup, n)
	}
	if retRatio < 5 {
		t.Errorf("fleet path retains %.0f B/wl vs legacy %.0f (ratio %.2fx), want >= 5x lower", fleetRet, slowRet, retRatio)
	}
}
