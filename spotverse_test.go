package spotverse

import (
	"reflect"
	"testing"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/experiment"
)

func TestPublicQuickPath(t *testing.T) {
	sim := NewSimulation(42)
	mgr, err := sim.NewManager(ManagerConfig{InstanceType: M5XLarge, Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sim.GenerateWorkloads(WorkloadOptions{Kind: KindStandard, Count: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(RunConfig{Workloads: ws, Strategy: mgr, InstanceType: M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.TotalCostUSD <= 0 {
		t.Fatalf("cost = %v", res.TotalCostUSD)
	}
}

func TestPublicBaselines(t *testing.T) {
	sim := NewSimulation(7)
	for _, mk := range []func() (Strategy, error){
		func() (Strategy, error) { return sim.NewSingleRegionStrategy(M5XLarge, "ca-central-1") },
		func() (Strategy, error) { return sim.NewOnDemandStrategy(M5XLarge) },
		func() (Strategy, error) { return sim.NewSkyPilotStrategy(M5XLarge) },
	} {
		if _, err := mk(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicMarketAccess(t *testing.T) {
	sim := NewSimulation(1)
	rows, err := sim.Market().AdvisorSnapshot(M5XLarge, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no advisor rows")
	}
	if len(sim.Catalog().Regions()) != 16 {
		t.Fatal("catalog not exposed")
	}
}

func TestNewSimulationAt(t *testing.T) {
	start := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	sim := NewSimulationAt(5, start)
	if !sim.Now().Equal(start) {
		t.Fatalf("now = %v", sim.Now())
	}
	if !sim.Market().Start().Equal(start) {
		t.Fatalf("market start = %v", sim.Market().Start())
	}
}

// TestPublicRunFleetSharded exercises the sharded fleet entry point
// through the facade: a fleet split over 3 shard engines must produce
// exactly the single-shard result.
func TestPublicRunFleetSharded(t *testing.T) {
	runAt := func(shards int) *FleetResult {
		sim := NewSimulation(42)
		f, err := sim.GenerateFleet(WorkloadOptions{Kind: KindStandard, Count: 40})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunFleetSharded(FleetShardedConfig{
			Fleet: f,
			NewStrategy: func(env *experiment.Env) (Strategy, error) {
				return baselines.NewSingleRegion(env.Catalog(), M5XLarge, "ca-central-1")
			},
			InstanceType:    M5XLarge,
			AllowIncomplete: true,
			Shards:          shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := runAt(1)
	if ref.Completed != 40 {
		t.Fatalf("completed = %d", ref.Completed)
	}
	got := runAt(3)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sharded result differs:\n  1 shard:  %+v\n  3 shards: %+v", ref, got)
	}
}
