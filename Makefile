GO ?= go

.PHONY: build test race vet verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the pre-merge gate: static checks, a clean build, and the
# full test suite under the race detector.
verify: vet build race

experiments:
	$(GO) run ./cmd/spotverse-experiments -exp all
