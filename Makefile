GO ?= go

# PR counter for benchmark snapshots (BENCH_$(PR).json).
PR ?= 10

.PHONY: build test race vet vet-determinism lint verify experiments serve-smoke fleet-smoke fuzz fuzz-soak bench bench-compare profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-determinism runs the two built-in vet passes closest to the
# determinism suite — copylocks and loopclosure — explicitly, so the
# built-in and custom analyzers share the verify entry point.
vet-determinism:
	$(GO) vet -copylocks -loopclosure ./...

# lint builds and runs the spotverse-lint multichecker: the determinism
# analyzers (detrand, mapiter, seedflow, errdrop, locks) plus the
# concurrency & hot-path analyzers (lockorder, goleak, atomicmix,
# hotpath) over every package. Violations — including malformed
# //spotverse:allow and //spotverse:hotpath annotations — fail the
# build; see DESIGN.md "Static analysis & determinism invariants" and
# "Concurrency & hot-path invariants".
lint:
	$(GO) run ./cmd/spotverse-lint ./...

# verify is the pre-merge gate: static checks (vet, the determinism
# lint suite), a clean build, and the full test suite under the race
# detector.
verify: vet vet-determinism lint build race

experiments:
	$(GO) run ./cmd/spotverse-experiments -exp all

# serve-smoke exercises cmd/spotverse-serve end to end: deterministic
# trace replay (byte-identical across runs), an overload burst that
# must shed without errors, and a live SIGTERM drain that must exit 0
# with a flushed, replayable recorded trace.
serve-smoke:
	sh scripts/serve_smoke.sh

# fleet-smoke drives the fleet-scale path end to end: a 10k-workload
# `-exp fleet` sweep under the race detector, byte-identical across
# worker counts, inside a wall-clock budget and an RSS ceiling (see
# scripts/fleet_smoke.sh for the budgets).
fleet-smoke:
	sh scripts/fleet_smoke.sh

# fuzz runs the PR-gate fault-space campaign: 50 fixed-seed composite
# chaos plans through the full stack with every invariant checked. Any
# violation shrinks to a replayable fuzz-repro-<seed>.json and fails
# the target.
fuzz:
	$(GO) run ./cmd/spotverse-fuzz -seeds 50

# fuzz-soak is the nightly-depth campaign: 1000 seeds, verbose
# per-seed progress. Same determinism guarantees — a soak failure
# reproduces byte-identically from its repro file.
fuzz-soak:
	$(GO) run ./cmd/spotverse-fuzz -seeds 1000 -v

# bench snapshots the root-package benchmark suite (experiment drivers,
# market hot paths, worker-pool scaling) into BENCH_$(PR).json. The
# format is plain `go test -bench` text, which benchstat consumes
# directly: `benchstat BENCH_2.json BENCH_3.json`.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 . | tee BENCH_$(PR).json

# bench-compare diffs the current benchmark snapshot against the PR 8
# baseline (override OLD/NEW for other pairs). benchstat gives the full
# statistical treatment when installed; otherwise an awk fallback
# prints mean ns/op per benchmark side by side.
OLD ?= BENCH_8.json
NEW ?= BENCH_$(PR).json

bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(OLD) $(NEW); \
	else \
		echo "benchstat not found; mean ns/op fallback ($(OLD) -> $(NEW))"; \
		awk 'FNR == 1 { file++ } \
			/^Benchmark/ { key = file "/" $$1; sum[key] += $$3; n[key]++; \
				if (file == 2 && !($$1 in seen)) { seen[$$1]; order[++k] = $$1 } } \
			END { for (i = 1; i <= k; i++) { name = order[i]; o = "1/" name; w = "2/" name; \
				if (o in sum) printf "%-55s %14.0f -> %14.0f ns/op (%+.1f%%)\n", \
					name, sum[o]/n[o], sum[w]/n[w], 100*(sum[w]/n[w] - sum[o]/n[o])/(sum[o]/n[o]); \
				else printf "%-55s %14s -> %14.0f ns/op (new)\n", name, "-", sum[w]/n[w]; } }' \
			$(OLD) $(NEW); \
	fi

# profile captures pprof CPU and heap profiles of the full experiment
# sweep; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/spotverse-experiments -exp all -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof"
