GO ?= go

# PR counter for benchmark snapshots (BENCH_$(PR).json).
PR ?= 3

.PHONY: build test race vet vet-determinism lint verify experiments bench profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-determinism runs the two built-in vet passes closest to the
# determinism suite — copylocks and loopclosure — explicitly, so the
# built-in and custom analyzers share the verify entry point.
vet-determinism:
	$(GO) vet -copylocks -loopclosure ./...

# lint builds and runs the spotverse-lint multichecker: the custom
# determinism analyzers (detrand, mapiter, seedflow, errdrop, locks)
# over every package. Violations fail the build; see DESIGN.md "Static
# analysis & determinism invariants".
lint:
	$(GO) run ./cmd/spotverse-lint ./...

# verify is the pre-merge gate: static checks (vet, the determinism
# lint suite), a clean build, and the full test suite under the race
# detector.
verify: vet vet-determinism lint build race

experiments:
	$(GO) run ./cmd/spotverse-experiments -exp all

# bench snapshots the root-package benchmark suite (experiment drivers,
# market hot paths, worker-pool scaling) into BENCH_$(PR).json. The
# format is plain `go test -bench` text, which benchstat consumes
# directly: `benchstat BENCH_2.json BENCH_3.json`.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 . | tee BENCH_$(PR).json

# profile captures pprof CPU and heap profiles of the full experiment
# sweep; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/spotverse-experiments -exp all -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof"
