// NGS checkpoint workload: run the paper's resumable NGS Data
// Preprocessing pipeline under heavy spot interruption pressure and show
// how per-shard checkpoints in DynamoDB plus S3 uploads let new instances
// resume instead of restarting. Also runs the real per-shard Galaxy
// pipeline (FastQC → Cutadapt → quality trim → FastQC → MultiQC) on one
// synthetic shard so the computation behind each simulated shard is
// visible.
package main

import (
	"fmt"
	"log"
	"strings"

	"spotverse"
	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/galaxy"
	"spotverse/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: what one shard actually computes.
	if err := runOneShard(); err != nil {
		return err
	}

	// Part 2: the full checkpoint workload under interruptions, in the
	// riskiest region, managed by SpotVerse.
	fmt.Println("\n-- checkpointed execution under spot interruptions --")
	sim := spotverse.NewSimulation(7)
	mgr, err := sim.NewManager(spotverse.ManagerConfig{
		InstanceType:     spotverse.M5XLarge,
		Threshold:        5,
		FixedStartRegion: "ca-central-1",
	})
	if err != nil {
		return err
	}
	ws, err := sim.GenerateWorkloads(spotverse.WorkloadOptions{
		Kind:  spotverse.KindCheckpoint,
		Count: 12,
		// 1 GiB FastQC dataset in 20 shards, as in the paper.
	})
	if err != nil {
		return err
	}
	res, err := sim.Run(spotverse.RunConfig{
		Workloads:    ws,
		Strategy:     mgr,
		InstanceType: spotverse.M5XLarge,
	})
	if err != nil {
		return err
	}
	fmt.Printf("completed %d/%d workloads, %d interruptions, makespan %.1f h, cost $%.2f\n",
		res.Completed, len(ws), res.Interruptions, res.MakespanHours, res.TotalCostUSD)

	resumed := 0
	for _, w := range ws {
		if w.Attempts > 1 {
			resumed++
			fmt.Printf("  %s: %d attempts, %d interruptions, all %d shards done\n",
				w.Spec.ID, w.Attempts, w.Interruptions, w.ShardsDone)
		}
	}
	if resumed == 0 {
		fmt.Println("  (no interruptions this run — try another seed)")
	}
	for _, item := range res.Breakdown {
		fmt.Printf("  cost %-14s $%.4f\n", item.Category, item.USD)
	}
	return nil
}

func runOneShard() error {
	fmt.Println("-- one shard of the NGS preprocessing pipeline --")
	g := galaxy.New(galaxy.Config{AdminUsers: []string{"admin@x"}, APIKeys: map[string]string{"admin@x": "k"}})
	if err := galaxy.InstallStandardTools(g, "admin@x"); err != nil {
		return err
	}
	rng := simclock.Stream(99, "ngs-example")
	template, err := synth.Genome(rng, 3000)
	if err != nil {
		return err
	}
	reads, err := synth.Reads(rng, template, synth.ReadsOptions{Count: 500, Length: 120, ErrorRate: 0.01})
	if err != nil {
		return err
	}
	inv, err := g.RunWorkflow(galaxy.NGSPreprocessingShardWorkflow(), map[string]galaxy.Dataset{
		"reads": {Name: "shard-000.fastq", Format: "fastq", Data: []byte(fastq.String(reads))},
	}, nil)
	if err != nil {
		return err
	}
	rep, _ := inv.History.Get("p5_multiqc/report")
	for _, line := range strings.Split(strings.TrimSpace(string(rep.Data)), "\n") {
		fmt.Println(" ", line)
	}
	return nil
}
