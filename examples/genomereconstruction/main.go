// Genome reconstruction: deploy a Galaxy instance, install the tool
// suite as an administrator, and drive the paper's 23-step Genome
// Reconstruction workflow through Planemo on synthetic SARS-CoV-2-like
// data — a VCF of nucleotide variations applied against a reference,
// classified into lineages and placed on a neighbour-joining tree.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/galaxy"
	"spotverse/internal/simclock"
)

const (
	admin  = "admin@spotverse.example"
	apiKey = "example-api-key"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Deploy Galaxy with an admin user (the paper's admin_users setting)
	// and install the bioinformatics tool suite.
	g := galaxy.New(galaxy.Config{
		AdminUsers: []string{admin},
		APIKeys:    map[string]string{admin: apiKey},
	})
	if err := galaxy.InstallStandardTools(g, admin); err != nil {
		return err
	}
	fmt.Printf("galaxy deployed with %d tools installed\n", len(g.Tools()))

	// Synthesise the datasets: a reference genome, a viral isolate's VCF,
	// and three lineage references (the isolate descends from B.1.1.7).
	rng := simclock.Stream(2024, "genome-example")
	reference, err := synth.Genome(rng, 8000)
	if err != nil {
		return err
	}
	isolateVCF, err := synth.Mutate(rng, reference, 0.006, 0.001)
	if err != nil {
		return err
	}
	lineages := []fasta.Record{{ID: "B.1.1.7", Description: "alpha", Seq: reference}}
	for _, name := range []string{"B.1.351", "P.1"} {
		other, err := synth.Genome(rng, 8000)
		if err != nil {
			return err
		}
		lineages = append(lineages, fasta.Record{ID: name, Seq: other})
	}
	fmt.Printf("synthesised reference (%d bp) and isolate VCF (%d variants)\n",
		len(reference), len(isolateVCF.Variants))

	inputs := map[string]galaxy.Dataset{
		"reference":     {Name: "reference.fasta", Format: "fasta", Data: []byte(fasta.String([]fasta.Record{{ID: "NC_045512-like", Seq: reference}}))},
		"reference_raw": {Name: "reference.seq", Format: "txt", Data: []byte(reference)},
		"variants":      {Name: "isolate.vcf", Format: "vcf", Data: []byte(vcf.String(isolateVCF))},
		"lineages":      {Name: "lineages.fasta", Format: "fasta", Data: []byte(fasta.String(lineages))},
	}

	// Drive the workflow through Planemo, watching step completion the
	// way the checkpoint integration does.
	planemo, err := galaxy.NewPlanemo(g, apiKey)
	if err != nil {
		return err
	}
	wf := galaxy.GenomeReconstructionWorkflow()
	fmt.Printf("running %q (%d steps) as %s\n", wf.Name, len(wf.Steps), planemo.User())
	steps := 0
	res, err := planemo.Run(wf, inputs, func(stepID string, _ map[string]galaxy.Dataset) {
		steps++
		fmt.Printf("  step %2d/%d  %s\n", steps, len(wf.Steps), stepID)
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nworkflow completed: %v (%d steps)\n", res.Completed, res.Steps)
	names := make([]string, 0, len(res.Outputs))
	for name := range res.Outputs {
		if strings.HasPrefix(name, "s18_") || strings.HasPrefix(name, "s22_") || strings.HasPrefix(name, "s21_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Println("key outputs:", names)
	return nil
}
