// Market explorer: query the simulated spot market the way an operator
// would before committing a fleet — advisor snapshots, price history,
// stability trends, and what Algorithm 1 would select at each threshold.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"spotverse"
	"spotverse/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := spotverse.NewSimulation(42)
	it := spotverse.M5XLarge

	fmt.Printf("Spot Instance Advisor snapshot for %s at %s\n\n", it, sim.Now().Format("2006-01-02"))
	rows, err := sim.Market().AdvisorSnapshot(it, sim.Now())
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %9s %9s %8s %5s %5s %6s\n", "region", "spot$/h", "od$/h", "savings", "IF", "stab", "score")
	for _, r := range rows {
		fmt.Printf("%-16s %9.4f %9.4f %7.0f%% %5.2f %5d %6d\n",
			r.Region, r.SpotPriceUSD, r.OnDemandUSD, r.SavingsOverOnDemand*100,
			r.InterruptionFrequency, r.StabilityScore, r.CombinedScore)
	}

	fmt.Printf("\n30-day price history, ca-central-1a vs eu-north-1a (%s)\n", it)
	for _, az := range []spotverse.AZ{"ca-central-1a", "eu-north-1a"} {
		hist, err := sim.Market().PriceHistory(it, az, sim.Now(), sim.Now().Add(30*24*time.Hour), 5*24*time.Hour)
		if err != nil {
			return err
		}
		var parts []string
		for _, p := range hist {
			parts = append(parts, fmt.Sprintf("%.4f", p.USDPerHour))
		}
		fmt.Printf("  %-16s %s\n", az, strings.Join(parts, " "))
	}

	fmt.Println("\nAlgorithm 1 region selection by threshold:")
	for _, threshold := range []int{4, 5, 6} {
		mgr, err := sim.NewManager(core.Config{
			InstanceType: it,
			Threshold:    threshold,
			Selection:    core.SelectBucket,
			Seed:         int64(threshold),
		})
		if err != nil {
			// One manager per simulation: rebuild for each threshold.
			sim = spotverse.NewSimulation(42)
			mgr, err = sim.NewManager(core.Config{
				InstanceType: it,
				Threshold:    threshold,
				Selection:    core.SelectBucket,
				Seed:         int64(threshold),
			})
			if err != nil {
				return err
			}
		}
		top, err := mgr.Optimizer().TopRegions(nil)
		if err != nil {
			return err
		}
		names := make([]string, len(top))
		for i, r := range top {
			names[i] = string(r)
		}
		fmt.Printf("  T=%d: %s\n", threshold, strings.Join(names, ", "))
		sim = spotverse.NewSimulation(42)
	}
	return nil
}
