// Chaos drill: run the checkpointed NGS workload set under the severe
// control-plane fault schedule — transient DynamoDB/S3/Lambda errors, a
// 12-hour regional brownout, dropped interruption notices, and a starved
// metrics collector — and show the hardened manager completing the batch
// anyway. Prints the injector's fault ledger and the Controller's
// recovery counters so the resilience machinery is visible.
package main

import (
	"fmt"
	"log"
	"time"

	"spotverse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := spotverse.NewSimulation(42)

	// Build the severe fault schedule and install the injector BEFORE
	// deploying the manager, so the Lambda handlers and CloudWatch rules
	// it registers are intercepted too.
	sched := spotverse.ChaosPreset(spotverse.ChaosSevere, sim.Now())
	inj := sim.InjectChaos(sched)
	fmt.Printf("chaos schedule: intensity=%s, %d brownouts, drop-rate %.0f%%\n",
		sched.Intensity, len(sched.Brownouts), sched.DropRate*100)

	mgr, err := sim.NewManager(spotverse.ManagerConfig{
		InstanceType:     spotverse.M5XLarge,
		Threshold:        5,
		FixedStartRegion: "ca-central-1",
		// Degraded-mode settings: discount advisor snapshots as they
		// age, and drop regions whose data is older than two days.
		StaleAfter:  6 * time.Hour,
		StaleCutoff: 48 * time.Hour,
	})
	if err != nil {
		return err
	}

	ws, err := sim.GenerateWorkloads(spotverse.WorkloadOptions{
		Kind:  spotverse.KindCheckpoint,
		Count: 12,
	})
	if err != nil {
		return err
	}
	res, err := sim.Run(spotverse.RunConfig{
		Workloads:    ws,
		Strategy:     mgr,
		InstanceType: spotverse.M5XLarge,
		// Under severe chaos a stranded workload is a finding, not a
		// harness error.
		AllowIncomplete: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\ncompleted %d/%d workloads, %d interruptions, makespan %.1f h, cost $%.2f\n",
		res.Completed, res.Workloads, res.Interruptions, res.MakespanHours, res.TotalCostUSD)

	recoveries, trips, deferred := mgr.Controller().ResilienceStats()
	fmt.Printf("controller: %d sweep recoveries, %d breaker trips, %d executions deferred by open breakers\n",
		recoveries, trips, deferred)

	st := inj.Stats()
	fmt.Printf("\ninjected %d faults, %d dropped deliveries, %d latency spikes:\n",
		st.Total, st.Dropped, st.LatencySpikes)
	for _, k := range st.Keys() {
		fmt.Printf("  %-28s %d\n", k, st.ByKey[k])
	}
	return nil
}
