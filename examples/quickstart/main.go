// Quickstart: run 20 long bioinformatics-style workloads under SpotVerse
// and under the traditional single-region deployment, and compare
// interruptions, completion time, and cost — the paper's Fig. 7 in
// miniature, through the public API only.
package main

import (
	"fmt"
	"log"
	"sort"

	"spotverse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 20

	// Single-region baseline: everything on spot in ca-central-1, the
	// cheapest m5.xlarge region — and the least stable one.
	simA := spotverse.NewSimulation(42)
	single, err := simA.NewSingleRegionStrategy(spotverse.M5XLarge, "ca-central-1")
	if err != nil {
		return err
	}
	wsA, err := simA.GenerateWorkloads(spotverse.WorkloadOptions{Kind: spotverse.KindStandard, Count: n})
	if err != nil {
		return err
	}
	baseline, err := simA.Run(spotverse.RunConfig{
		Workloads:    wsA,
		Strategy:     single,
		InstanceType: spotverse.M5XLarge,
	})
	if err != nil {
		return err
	}

	// SpotVerse: starts in the same region for a fair comparison, then
	// migrates interrupted workloads per Algorithm 1.
	simB := spotverse.NewSimulation(42)
	mgr, err := simB.NewManager(spotverse.ManagerConfig{
		InstanceType:     spotverse.M5XLarge,
		Threshold:        5,
		FixedStartRegion: "ca-central-1",
	})
	if err != nil {
		return err
	}
	wsB, err := simB.GenerateWorkloads(spotverse.WorkloadOptions{Kind: spotverse.KindStandard, Count: n})
	if err != nil {
		return err
	}
	managed, err := simB.Run(spotverse.RunConfig{
		Workloads:    wsB,
		Strategy:     mgr,
		InstanceType: spotverse.M5XLarge,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-16s %13s %12s %10s\n", "strategy", "interruptions", "makespan(h)", "cost")
	fmt.Printf("%-16s %13d %12.1f %9.2f$\n", baseline.StrategyName, baseline.Interruptions, baseline.MakespanHours, baseline.TotalCostUSD)
	fmt.Printf("%-16s %13d %12.1f %9.2f$\n", managed.StrategyName, managed.Interruptions, managed.MakespanHours, managed.TotalCostUSD)
	fmt.Printf("\nSpotVerse: %.0f%% fewer interruptions, %.0f%% faster, %.0f%% cheaper\n",
		100*(1-float64(managed.Interruptions)/float64(baseline.Interruptions)),
		100*(1-managed.MakespanHours/baseline.MakespanHours),
		100*(1-managed.TotalCostUSD/baseline.TotalCostUSD))
	fmt.Println("\nSpotVerse launches by region:")
	regions := make([]spotverse.Region, 0, len(managed.LaunchesByRegion))
	for r := range managed.LaunchesByRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, region := range regions {
		fmt.Printf("  %-16s %d\n", region, managed.LaunchesByRegion[region])
	}
	return nil
}
