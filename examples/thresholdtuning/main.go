// Threshold tuning: sweep SpotVerse's combined-score threshold and the
// workload duration to find where spot instances stop paying off against
// on-demand — the paper's Fig. 10 through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"spotverse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("normalized cost vs cheapest on-demand (<1 means spot saves):")
	fmt.Printf("%-10s %-11s %-10s %-12s %s\n", "threshold", "duration", "spot$", "on-demand$", "normalized")
	for _, threshold := range []int{4, 5, 6} {
		for _, hours := range []int{5, 10, 20} {
			norm, spotCost, odCost, err := cell(threshold, hours)
			if err != nil {
				return err
			}
			marker := ""
			if norm >= 1 {
				marker = "  <-- spot costs MORE than on-demand"
			}
			fmt.Printf("%-10d %-11s $%-9.2f $%-11.2f %.3f%s\n",
				threshold, fmt.Sprintf("%dh", hours), spotCost, odCost, norm, marker)
		}
	}
	fmt.Println("\nthresholds 5-6 keep saving; chasing only the cheapest regions")
	fmt.Println("(threshold 4) loses to on-demand once workloads run long enough.")
	return nil
}

func cell(threshold, hours int) (norm, spotCost, odCost float64, err error) {
	const fleet = 16
	mk := func() (*spotverse.Simulation, []*spotverse.Workload, error) {
		sim := spotverse.NewSimulation(int64(100 + threshold))
		ws, err := sim.GenerateWorkloads(spotverse.WorkloadOptions{
			Kind:        spotverse.KindStandard,
			Count:       fleet,
			MinDuration: time.Duration(hours) * time.Hour,
			MaxDuration: time.Duration(hours) * time.Hour,
		})
		return sim, ws, err
	}

	sim, ws, err := mk()
	if err != nil {
		return 0, 0, 0, err
	}
	mgr, err := sim.NewManager(spotverse.ManagerConfig{
		InstanceType: spotverse.M5XLarge,
		Threshold:    threshold,
		Selection:    spotverse.SelectBucket,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := sim.Run(spotverse.RunConfig{
		Workloads:    ws,
		Strategy:     mgr,
		InstanceType: spotverse.M5XLarge,
		Horizon:      90 * 24 * time.Hour,
	})
	if err != nil {
		return 0, 0, 0, err
	}

	simOD, wsOD, err := mk()
	if err != nil {
		return 0, 0, 0, err
	}
	od, err := simOD.NewOnDemandStrategy(spotverse.M5XLarge)
	if err != nil {
		return 0, 0, 0, err
	}
	resOD, err := simOD.Run(spotverse.RunConfig{Workloads: wsOD, Strategy: od, InstanceType: spotverse.M5XLarge})
	if err != nil {
		return 0, 0, 0, err
	}
	return res.TotalCostUSD / resOD.TotalCostUSD, res.TotalCostUSD, resOD.TotalCostUSD, nil
}
