// Timed workflow: run the 23-step Genome Reconstruction workflow as a
// timed Galaxy job on the simulation clock, then re-run it on a spot
// instance in the riskiest region and watch a real reclaim cancel it
// mid-step — the exact failure mode the paper's standard workloads
// suffer, which is why they must restart from zero.
package main

import (
	"fmt"
	"log"
	"time"

	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/experiment"
	"spotverse/internal/galaxy"
	"spotverse/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildInputs() (map[string]galaxy.Dataset, error) {
	rng := simclock.Stream(77, "timed-example")
	ref, err := synth.Genome(rng, 6000)
	if err != nil {
		return nil, err
	}
	isolate, err := synth.Mutate(rng, ref, 0.006, 0.001)
	if err != nil {
		return nil, err
	}
	lineages := []fasta.Record{{ID: "B.1.1.7", Seq: ref}}
	for _, name := range []string{"B.1.351", "P.1"} {
		g, err := synth.Genome(rng, 6000)
		if err != nil {
			return nil, err
		}
		lineages = append(lineages, fasta.Record{ID: name, Seq: g})
	}
	return map[string]galaxy.Dataset{
		"reference":     {Name: "ref.fasta", Format: "fasta", Data: []byte(fasta.String([]fasta.Record{{ID: "ref", Seq: ref}}))},
		"reference_raw": {Name: "ref.seq", Format: "txt", Data: []byte(ref)},
		"variants":      {Name: "iso.vcf", Format: "vcf", Data: []byte(vcf.String(isolate))},
		"lineages":      {Name: "lineages.fasta", Format: "fasta", Data: []byte(fasta.String(lineages))},
	}, nil
}

func run() error {
	inputs, err := buildInputs()
	if err != nil {
		return err
	}

	// Part 1: a clean timed run.
	env := experiment.NewEnv(77)
	g := galaxy.New(galaxy.Config{AdminUsers: []string{"a@x"}, APIKeys: map[string]string{"a@x": "k"}})
	if err := galaxy.InstallStandardTools(g, "a@x"); err != nil {
		return err
	}
	jr := galaxy.NewJobRunner(env.Engine, g, galaxy.JobOptions{BasePerStep: 25 * time.Minute})
	h, err := jr.Start(galaxy.GenomeReconstructionWorkflow(), inputs, nil)
	if err != nil {
		return err
	}
	if err := env.Engine.Run(time.Time{}); err != nil {
		return err
	}
	fmt.Printf("clean run: %d/%d steps in %.1f simulated hours\n",
		h.StepsCompleted(), h.TotalSteps(), h.Elapsed().Hours())

	// Part 2: the same job on a spot instance in ca-central-1, where a
	// reclaim will eventually land mid-workflow.
	env2 := experiment.NewEnv(78)
	jr2 := galaxy.NewJobRunner(env2.Engine, g, galaxy.JobOptions{BasePerStep: 25 * time.Minute})
	var jobs []*galaxy.JobHandle
	env2.Provider.OnLaunch(func(inst *cloud.Instance) {
		job, err := jr2.Start(galaxy.GenomeReconstructionWorkflow(), inputs, nil)
		if err != nil {
			return
		}
		jobs = append(jobs, job)
		fmt.Printf("  %s launched in %s, workflow started\n", inst.ID, inst.Region)
	})
	env2.Provider.OnTerminate(func(inst *cloud.Instance, interrupted bool) {
		if !interrupted {
			return
		}
		for i := len(jobs) - 1; i >= 0; i-- {
			if jobs[i].State() == galaxy.JobRunning {
				jobs[i].Cancel()
				fmt.Printf("  %s reclaimed after %.1fh: workflow cancelled at step %d/%d — restart from zero\n",
					inst.ID, env2.Engine.Since(inst.LaunchedAt).Hours(), jobs[i].StepsCompleted(), jobs[i].TotalSteps())
				return
			}
		}
	})
	for i := 0; i < 6; i++ {
		if _, err := env2.Provider.RequestSpot(catalog.M5XLarge, "ca-central-1", "wf"); err != nil {
			return err
		}
	}
	sweep := env2.Engine.Every(15*time.Minute, "sweep", func(time.Time) { env2.Provider.EvaluateOpenRequests() })
	defer sweep.Stop()
	if err := env2.Engine.Run(env2.Engine.Now().Add(15 * time.Hour)); err != nil {
		return err
	}
	var done, cancelled int
	for _, j := range jobs {
		switch j.State() {
		case galaxy.JobCompleted:
			done++
		case galaxy.JobCancelled:
			cancelled++
		}
	}
	fmt.Printf("after 15h in the risky region: %d workflows finished, %d killed mid-run\n", done, cancelled)
	return nil
}
