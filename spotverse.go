// Package spotverse is the public API of the SpotVerse reproduction: a
// multi-region spot-instance manager for long-running (bioinformatics)
// workloads, together with the simulated cloud substrate it is evaluated
// on.
//
// The package re-exports the library's main types and wires them together
// behind two entry points:
//
//   - NewSimulation builds a deterministic simulated cloud (regions, spot
//     markets, EC2-like provider, S3/DynamoDB/Lambda/EventBridge/
//     CloudWatch/Step Functions substrates).
//   - Simulation.NewManager deploys SpotVerse (Monitor + Optimizer +
//     Controller) onto it; Simulation.Run executes a workload set under
//     any Strategy and reports interruptions, completion times, and the
//     differential cost model.
//
// A minimal comparison looks like:
//
//	sim := spotverse.NewSimulation(42)
//	mgr, _ := sim.NewManager(spotverse.ManagerConfig{InstanceType: spotverse.M5XLarge})
//	ws, _ := sim.GenerateWorkloads(spotverse.WorkloadOptions{Kind: spotverse.KindStandard, Count: 40})
//	res, _ := sim.Run(spotverse.RunConfig{Workloads: ws, Strategy: mgr, InstanceType: spotverse.M5XLarge})
//	fmt.Println(res.Interruptions, res.TotalCostUSD)
package spotverse

import (
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/cloud"
	"spotverse/internal/core"
	"spotverse/internal/durable"
	"spotverse/internal/experiment"
	"spotverse/internal/fuzz"
	"spotverse/internal/market"
	"spotverse/internal/predict"
	"spotverse/internal/serve"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// Re-exported identity types.
type (
	// Region identifies a cloud region.
	Region = catalog.Region
	// AZ identifies an availability zone.
	AZ = catalog.AZ
	// InstanceType identifies an instance type.
	InstanceType = catalog.InstanceType
	// Catalog is the static cloud inventory.
	Catalog = catalog.Catalog
	// Market is the spot-market model.
	Market = market.Model
	// AdvisorEntry is one Spot-Instance-Advisor row.
	AdvisorEntry = market.AdvisorEntry
	// Provider is the EC2-like IaaS provider.
	Provider = cloud.Provider
	// Strategy decides workload placement.
	Strategy = strategy.Strategy
	// Placement is a (region, lifecycle) decision.
	Placement = strategy.Placement
	// Manager is the SpotVerse manager (Monitor+Optimizer+Controller).
	Manager = core.SpotVerse
	// ManagerConfig parameterises a Manager.
	ManagerConfig = core.Config
	// Workload tracks one workload's progress.
	Workload = workload.State
	// WorkloadSpec describes a workload.
	WorkloadSpec = workload.Spec
	// WorkloadOptions tunes workload generation.
	WorkloadOptions = workload.GenOptions
	// RunConfig parameterises an experiment run.
	RunConfig = experiment.RunConfig
	// Result aggregates a run's metrics.
	Result = experiment.Result
	// WorkloadFleet is the flat struct-of-arrays workload state for
	// fleet-scale runs (see RunFleet).
	WorkloadFleet = workload.FleetState
	// FleetRunConfig parameterises a fleet-scale run.
	FleetRunConfig = experiment.FleetRunConfig
	// FleetShardedConfig parameterises a sharded fleet-scale run (see
	// Simulation.RunFleetSharded).
	FleetShardedConfig = experiment.FleetShardedConfig
	// FleetResult aggregates a fleet-scale run's streamed metrics.
	FleetResult = experiment.FleetResult
	// Timeline is the structured event log (RunConfig.Trace).
	Timeline = experiment.Timeline
	// AdaptiveConfig tunes the learning strategy.
	AdaptiveConfig = predict.Config
	// ChaosSchedule declares what a chaos injector injects.
	ChaosSchedule = chaos.Schedule
	// ChaosIntensity grades a chaos schedule.
	ChaosIntensity = chaos.Intensity
	// ChaosInjector injects deterministic control-plane faults.
	ChaosInjector = chaos.Injector
	// ChaosStats summarises what an injector injected.
	ChaosStats = chaos.Stats
	// ControllerKill schedules a control-plane crash-restart.
	ControllerKill = chaos.ControllerKill
	// ObjectCorruption bit-flips S3 reads under a key prefix.
	ObjectCorruption = chaos.ObjectCorruption
	// BucketLoss wipes a whole S3 bucket at an instant.
	BucketLoss = chaos.BucketLoss
	// Partition cuts the network to regions for a window.
	Partition = chaos.Partition
	// SplitBrain runs a rival controller incarnation for a window.
	SplitBrain = chaos.SplitBrain
	// FuzzPlan is one seed-derived composite fault scenario.
	FuzzPlan = fuzz.Plan
	// FuzzEvent is one fault in a FuzzPlan.
	FuzzEvent = fuzz.Event
	// FuzzInvariant is one system-wide property checked after a trial.
	FuzzInvariant = fuzz.Invariant
	// FuzzViolation is one invariant breach.
	FuzzViolation = fuzz.Violation
	// FuzzRepro is a shrunken, byte-identically replayable failure.
	FuzzRepro = fuzz.Repro
	// FuzzCampaignConfig parameterises a fuzz campaign.
	FuzzCampaignConfig = fuzz.CampaignConfig
	// FuzzCampaignResult summarises a fuzz campaign.
	FuzzCampaignResult = fuzz.CampaignResult
	// DurabilityMode selects how runs persist checkpoint manifests.
	DurabilityMode = experiment.DurabilityMode
	// DurabilityStats summarises the durable store's activity.
	DurabilityStats = durable.Stats
	// Server is the always-on placement service (cmd/spotverse-serve).
	Server = serve.Server
	// ServeConfig parameterises a Server: worker pool, admission
	// control, rate limit, deadlines, drain, breaker, clock.
	ServeConfig = serve.Config
	// ServeStats snapshots a Server's outcome counters.
	ServeStats = serve.Stats
	// ServeTraceEntry is one recorded request arrival (JSONL traces).
	ServeTraceEntry = serve.TraceEntry
	// ServeReplayOptions tunes trace replay output.
	ServeReplayOptions = serve.ReplayOptions
	// ServeReplaySummary aggregates a deterministic trace replay.
	ServeReplaySummary = serve.ReplaySummary
)

// Re-exported chaos intensities for ChaosPreset.
const (
	ChaosOff    = chaos.Off
	ChaosLow    = chaos.Low
	ChaosMedium = chaos.Medium
	ChaosSevere = chaos.Severe
)

// ChaosPreset returns the canonical fault schedule for an intensity,
// with windowed events anchored at start.
func ChaosPreset(i ChaosIntensity, start time.Time) ChaosSchedule {
	return chaos.Preset(i, start)
}

// ChaosPartitioned is the sentinel error a partitioned service call
// fails with (errors.Is-able through injected fault wrapping).
var ChaosPartitioned = chaos.Partitioned

// FuzzGenerate derives one fault plan from a seed, deterministically.
func FuzzGenerate(seed int64) FuzzPlan { return fuzz.Generate(seed) }

// FuzzInvariants returns the invariant catalog, sorted by name.
func FuzzInvariants() []FuzzInvariant { return fuzz.Registry() }

// FuzzCampaign runs one plan per seed through the full stack, checks
// every invariant, and shrinks each failure into a replayable repro.
func FuzzCampaign(cfg FuzzCampaignConfig) (*FuzzCampaignResult, error) {
	return fuzz.Campaign(cfg)
}

// FuzzVerifyRepro re-executes a repro twice and errors unless both runs
// reproduce its recorded fingerprint and violation set byte-identically.
func FuzzVerifyRepro(r *FuzzRepro) error { return fuzz.VerifyRepro(r) }

// Re-exported instance types (the paper's evaluation set).
const (
	M5Large   = catalog.M5Large
	M5XLarge  = catalog.M5XLarge
	M52XLarge = catalog.M52XLarge
	C52XLarge = catalog.C52XLarge
	R52XLarge = catalog.R52XLarge
	P32XLarge = catalog.P32XLarge
)

// Re-exported workload kinds.
const (
	// KindStandard workloads restart from zero on interruption.
	KindStandard = workload.KindStandard
	// KindCheckpoint workloads resume from their last completed shard.
	KindCheckpoint = workload.KindCheckpoint
)

// Re-exported selection modes for ManagerConfig.Selection.
const (
	// SelectAtLeast keeps regions scoring >= threshold (Algorithm 1).
	SelectAtLeast = core.SelectAtLeast
	// SelectBucket keeps regions scoring == threshold (threshold study).
	SelectBucket = core.SelectBucket
)

// Re-exported durability modes for RunConfig.Durability. Durability is
// off by default: manifest writes change the rendered cost totals, so
// runs opt in (pair DurabilityReplicated with ManagerConfig.Journal for
// the full crash-tolerant stack).
const (
	// DurabilityOff keeps the seed's legacy checkpoint accounting.
	DurabilityOff = experiment.DurabilityOff
	// DurabilitySingle writes unverified single-bucket manifests.
	DurabilitySingle = experiment.DurabilitySingle
	// DurabilityReplicated writes CRC-checked manifests with async
	// cross-region replication, read-path failover, and anti-entropy.
	DurabilityReplicated = experiment.DurabilityReplicated
)

// SetParallelism bounds the experiment harness's worker pool: how many
// independent simulations (trial seeds, figure cells, sweep cells) run
// concurrently. n <= 1 forces fully sequential execution. Results are
// collected in input order, so rendered output is byte-identical for
// every setting. Returns the previous bound.
func SetParallelism(n int) int { return experiment.SetWorkers(n) }

// Parallelism reports the current worker-pool bound (always >= 1).
func Parallelism() int { return experiment.Workers() }

// SetMarketCache sizes the shared market-snapshot store, in segments of
// 256 price/metric samples (2 KiB) each: simulations of the same
// (seed, start) then read one immutable materialisation of the spot
// market instead of regenerating their own, and the store evicts
// least-recently-used snapshots past the high-water mark. segments <= 0
// disables sharing. Results are byte-identical with the cache on or
// off. Returns the previous setting.
func SetMarketCache(segments int) int { return experiment.SetMarketCache(segments) }

// MarketCache reports the snapshot store's segment high-water mark
// (<= 0 when sharing is disabled).
func MarketCache() int { return experiment.MarketCache() }

// Simulation is one deterministic simulated cloud plus the services
// SpotVerse deploys onto.
type Simulation struct {
	env  *experiment.Env
	seed int64
}

// NewSimulation builds a simulation seeded for reproducibility.
func NewSimulation(seed int64) *Simulation {
	return &Simulation{env: experiment.NewEnv(seed), seed: seed}
}

// NewSimulationAt builds a simulation whose clock starts at a specific
// instant (markets evolve from there).
func NewSimulationAt(seed int64, start time.Time) *Simulation {
	return &Simulation{env: experiment.NewEnvAt(seed, start), seed: seed}
}

// Catalog exposes the region and instance inventory.
func (s *Simulation) Catalog() *Catalog { return s.env.Catalog() }

// Market exposes the spot-market model (prices, advisor metrics).
func (s *Simulation) Market() *Market { return s.env.Market }

// Provider exposes the EC2-like provider.
func (s *Simulation) Provider() *Provider { return s.env.Provider }

// Now reports current simulated time.
func (s *Simulation) Now() time.Time { return s.env.Engine.Now() }

// NewManager deploys a SpotVerse manager onto the simulation. One manager
// per simulation: it registers Lambda functions and CloudWatch rules.
func (s *Simulation) NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Seed == 0 {
		cfg.Seed = s.seed
	}
	return core.New(cfg, core.Deps{
		Engine:     s.env.Engine,
		Market:     s.env.Market,
		Provider:   s.env.Provider,
		Dynamo:     s.env.Dynamo,
		Lambda:     s.env.Lambda,
		Bus:        s.env.Bus,
		CloudWatch: s.env.CloudWatch,
		StepFn:     s.env.StepFn,
	})
}

// NewSingleRegionStrategy returns the traditional single-region baseline.
func (s *Simulation) NewSingleRegionStrategy(t InstanceType, r Region) (Strategy, error) {
	return baselines.NewSingleRegion(s.env.Catalog(), t, r)
}

// NewOnDemandStrategy returns the cheapest-on-demand baseline.
func (s *Simulation) NewOnDemandStrategy(t InstanceType) (Strategy, error) {
	return baselines.NewOnDemand(s.env.Catalog(), t)
}

// NewSkyPilotStrategy returns the SkyPilot-style cheapest-spot baseline.
func (s *Simulation) NewSkyPilotStrategy(t InstanceType) (Strategy, error) {
	return baselines.NewSkyPilotLike(s.env.Engine, s.env.Market, t)
}

// NewAdaptiveStrategy returns the learning strategy (the paper's future
// work): it never reads the advisor and instead learns per-region,
// per-hour-of-week interruption hazards from its own observations.
func (s *Simulation) NewAdaptiveStrategy(t InstanceType, cfg AdaptiveConfig) (Strategy, error) {
	if cfg.Seed == 0 {
		cfg.Seed = s.seed
	}
	return predict.NewAdaptive(s.env.Engine, s.env.Market, t, cfg)
}

// EnableSeasonality turns on the market's hour-of-week interruption
// modulation (weekday business-hour peaks).
func (s *Simulation) EnableSeasonality() { s.env.Market.EnableSeasonality() }

// InjectOutage makes spot launches in the region fail during [from, to)
// — failure injection for resilience testing.
func (s *Simulation) InjectOutage(r Region, from, to time.Time) error {
	return s.env.Market.InjectOutage(r, from, to)
}

// InjectChaos builds a deterministic fault injector from the schedule
// and installs it on every control-plane service in the simulation. Call
// it before NewManager so rules registered later are covered too; an Off
// schedule leaves runs bit-identical to an uninjected simulation. The
// returned injector exposes Stats for post-run accounting.
func (s *Simulation) InjectChaos(sched ChaosSchedule) *ChaosInjector {
	inj := chaos.NewInjector(s.env.Engine, s.seed, sched)
	experiment.ApplyChaos(s.env, inj)
	return inj
}

// ScheduleControllerKills arms the schedule's controller kills against
// a deployed manager: at each instant the control plane crash-restarts,
// losing all in-memory pending-migration and breaker state. A manager
// built with ManagerConfig.Journal replays its DynamoDB write-ahead
// journal on restart; one without starts cold.
func (s *Simulation) ScheduleControllerKills(inj *ChaosInjector, mgr *Manager) {
	experiment.ScheduleControllerKills(s.env, inj, mgr)
}

// Serve deploys the always-on placement service over a deployed
// manager: /v1/place, /v1/advisor, /v1/migrations behind admission
// control, rate limiting, per-request deadlines, a serve-level circuit
// breaker with cached-snapshot degradation, and graceful drain. When
// cfg.Clock is nil the simulation engine is used, which is what replay
// and tests want; a live daemon injects a wall clock instead (see
// cmd/spotverse-serve).
func (s *Simulation) Serve(mgr *Manager, cfg ServeConfig) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = s.env.Engine
	}
	return serve.New(cfg, serve.NewSimBackend(s.env.Engine, mgr))
}

// GenerateServeTrace synthesizes a deterministic serving request trace
// (Poisson arrivals at qps, place-heavy endpoint mix) for Server
// replay; same (simulation seed, n, qps) → identical trace.
func (s *Simulation) GenerateServeTrace(n int, qps float64) []ServeTraceEntry {
	return experiment.GenerateServeTrace(s.seed, n, qps)
}

// ReplayServe drives a trace through srv's full gate pipeline on the
// simulation clock. srv must have been built by Serve with a nil
// Clock (i.e. on this simulation's engine); same (simulation, trace,
// config) → byte-identical output and summary.
func (s *Simulation) ReplayServe(srv *Server, entries []ServeTraceEntry, opts ServeReplayOptions) (*ServeReplaySummary, error) {
	return srv.Replay(s.env.Engine, entries, opts)
}

// GenerateWorkloads builds a reproducible workload set.
func (s *Simulation) GenerateWorkloads(opts WorkloadOptions) ([]*Workload, error) {
	return workload.Generate(simclock.Stream(s.seed, "public-workloads"), opts)
}

// Run executes a workload set under a strategy. When the strategy is a
// *Manager, the harness's own open-request sweep is disabled because the
// Controller schedules its own.
func (s *Simulation) Run(cfg RunConfig) (*Result, error) {
	if _, isManager := cfg.Strategy.(*Manager); isManager {
		cfg.DisableSweep = true
	}
	return experiment.Run(s.env, cfg)
}

// GenerateFleet builds the struct-of-arrays equivalent of
// GenerateWorkloads: same RNG stream, same specs, flat columns.
func (s *Simulation) GenerateFleet(opts WorkloadOptions) (*WorkloadFleet, error) {
	return workload.GenerateFleet(simclock.Stream(s.seed, "public-workloads"), opts)
}

// RunFleet executes a fleet on the batched fleet-scale path: identical
// headline metrics to Run on the same configuration, with retention
// bounded by running instances rather than run history. A Simulation
// that has run in fleet mode keeps its provider in fleet mode. As with
// Run, a *Manager strategy disables the harness sweep.
func (s *Simulation) RunFleet(cfg FleetRunConfig) (*FleetResult, error) {
	if _, isManager := cfg.Strategy.(*Manager); isManager {
		cfg.DisableSweep = true
	}
	return experiment.RunFleet(s.env, cfg)
}

// RunFleetSharded executes a standard-workload fleet partitioned across
// cfg.Shards independent shard engines running on the worker pool (see
// SetParallelism). Unlike RunFleet it does not drive this simulation's
// environment: every shard builds a fresh environment from the
// simulation seed over the shared market snapshot, and cfg.NewStrategy
// builds one strategy per shard. The merged result is byte-identical at
// every shard and worker count. Checkpoint fleets are rejected — their
// shared checkpoint stores couple workloads across shard boundaries —
// and stay on RunFleet.
func (s *Simulation) RunFleetSharded(cfg FleetShardedConfig) (*FleetResult, error) {
	return experiment.RunFleetSharded(s.seed, cfg)
}
