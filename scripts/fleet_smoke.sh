#!/bin/sh
# fleet_smoke.sh — CI smoke test for the fleet-scale simulation path:
#
#   1. build cmd/spotverse-experiments with the race detector;
#   2. run the `-exp fleet` sweep at 10,000 workloads across shard
#      counts 1/2/8 and worker counts 1/4/8 — the rendered tables must
#      be byte-identical at every (shards, parallel) combination;
#   3. enforce a wall-clock budget (the race-instrumented 10k sweep
#      must finish inside FLEET_WALL_BUDGET seconds, default 300) via
#      timeout(1) when available;
#   4. enforce an RSS ceiling (default 2 GiB) via /usr/bin/time -v
#      when available — the streaming result pipeline's memory bound
#      is the point of the fleet path, so a regression to retained
#      per-workload state shows up here before it hurts anyone.
#
# Budgets are deliberately loose: they catch order-of-magnitude
# regressions (an accidental O(n^2) sweep, a retained-per-workload
# leak), not scheduler noise.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

wall_budget=${FLEET_WALL_BUDGET:-300}
rss_budget_kb=${FLEET_RSS_BUDGET_KB:-2097152}

echo "fleet smoke: race-instrumented build"
go build -race -o "$tmp/svexp" ./cmd/spotverse-experiments

runner=""
if command -v timeout >/dev/null 2>&1; then
    runner="timeout ${wall_budget}s"
fi

echo "fleet smoke: 10k sweep under race, shards 1 / parallel 1"
if [ -x /usr/bin/time ] && /usr/bin/time -v true >/dev/null 2>&1; then
    $runner /usr/bin/time -v -o "$tmp/time.txt" \
        "$tmp/svexp" -exp fleet -fleet 10000 -fleet-shards 1 -parallel 1 > "$tmp/fleet_ref.txt"
    rss_kb=$(sed -n 's/.*Maximum resident set size (kbytes): \([0-9]*\)/\1/p' "$tmp/time.txt")
    echo "fleet smoke: max RSS ${rss_kb} kB (ceiling ${rss_budget_kb} kB)"
    [ "$rss_kb" -le "$rss_budget_kb" ] || {
        echo "fleet smoke: RSS ${rss_kb} kB exceeds ceiling ${rss_budget_kb} kB" >&2
        exit 1
    }
else
    $runner "$tmp/svexp" -exp fleet -fleet 10000 -fleet-shards 1 -parallel 1 > "$tmp/fleet_ref.txt"
fi

# The sharded engine's core invariant: the rendered sweep is
# byte-identical at every shard x worker combination, including the
# default (-fleet-shards unset, shards = -parallel).
for cell in "2 4" "8 8" "- 8"; do
    shards=${cell% *}
    parallel=${cell#* }
    if [ "$shards" = "-" ]; then
        echo "fleet smoke: shards default / parallel $parallel"
        $runner "$tmp/svexp" -exp fleet -fleet 10000 -parallel "$parallel" > "$tmp/fleet_cell.txt"
    else
        echo "fleet smoke: shards $shards / parallel $parallel"
        $runner "$tmp/svexp" -exp fleet -fleet 10000 -fleet-shards "$shards" -parallel "$parallel" > "$tmp/fleet_cell.txt"
    fi
    cmp "$tmp/fleet_ref.txt" "$tmp/fleet_cell.txt"
done

grep -q 'single-region  10000' "$tmp/fleet_ref.txt"
grep -q 'skypilot       10000' "$tmp/fleet_ref.txt"
cat "$tmp/fleet_ref.txt"
echo "fleet smoke: OK"
