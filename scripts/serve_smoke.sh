#!/bin/sh
# serve_smoke.sh — CI smoke test for cmd/spotverse-serve:
#
#   1. build the binary;
#   2. generate a deterministic trace and replay it twice — the two
#      summaries must be byte-identical;
#   3. replay an overload burst (arrivals ~4x the admission-controlled
#      service rate under severe chaos) and assert requests were shed
#      and every request got exactly one outcome;
#   4. boot the live server, wait for readiness, issue a placement,
#      send SIGTERM, and assert a clean drain: exit code 0 and a
#      flushed, replayable recorded trace.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/spotverse-serve" ./cmd/spotverse-serve

echo "serve smoke: replay determinism"
"$tmp/spotverse-serve" -gen-trace "$tmp/trace.jsonl" -gen-count 2000 -gen-qps 600 -seed 7
"$tmp/spotverse-serve" -replay "$tmp/trace.jsonl" -seed 7 -chaos medium > "$tmp/replay1.txt"
"$tmp/spotverse-serve" -replay "$tmp/trace.jsonl" -seed 7 -chaos medium > "$tmp/replay2.txt"
cmp "$tmp/replay1.txt" "$tmp/replay2.txt"
grep -q '^replay: requests=2000 ' "$tmp/replay1.txt"

echo "serve smoke: overload burst"
"$tmp/spotverse-serve" -gen-trace "$tmp/burst.jsonl" -gen-count 4000 -gen-qps 1200 -seed 11
"$tmp/spotverse-serve" -replay "$tmp/burst.jsonl" -seed 11 -chaos severe \
    -workers 4 -queue 32 -rate 100000 > "$tmp/burst.txt"
cat "$tmp/burst.txt"
grep -q '^replay: requests=4000 ' "$tmp/burst.txt"
shed=$(sed -n 's/^replay: .* shed=\([0-9]*\) .*/\1/p' "$tmp/burst.txt")
errors=$(sed -n 's/^replay: .* error=\([0-9]*\) .*/\1/p' "$tmp/burst.txt")
[ "$shed" -gt 0 ] || { echo "overload burst shed nothing" >&2; exit 1; }
[ "$errors" -eq 0 ] || { echo "overload burst produced $errors errors" >&2; exit 1; }

echo "serve smoke: live drain"
"$tmp/spotverse-serve" -addr 127.0.0.1:0 -record "$tmp/live.jsonl" 2> "$tmp/live.log" &
pid=$!
addr=""
for _ in $(seq 1 60); do
    addr=$(sed -n 's/^spotverse-serve: listening on \([^ ]*\) .*/\1/p' "$tmp/live.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/live.log" >&2; echo "server died before ready" >&2; exit 1; }
    sleep 0.5
done
[ -n "$addr" ] || { echo "server never reported its address" >&2; exit 1; }

code=$(curl -s -o "$tmp/place.json" -w '%{http_code}' -X POST "http://$addr/v1/place" \
    -H 'Content-Type: application/json' -d '{"workload_id":"smoke-1"}')
[ "$code" = "200" ] || { echo "place returned $code" >&2; cat "$tmp/place.json" >&2; exit 1; }

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || { cat "$tmp/live.log" >&2; echo "SIGTERM drain exited $rc, want 0" >&2; exit 1; }
grep -q 'drained clean' "$tmp/live.log"
grep -q '"endpoint":"place"' "$tmp/live.jsonl"
# The recorded trace must itself replay.
"$tmp/spotverse-serve" -replay "$tmp/live.jsonl" -seed 7 > /dev/null

echo "serve smoke: OK"
