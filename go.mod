module spotverse

go 1.22
