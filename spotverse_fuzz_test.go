package spotverse

import (
	"testing"
)

// TestPublicFuzzSurface exercises the fuzzer through the facade: plan
// generation, the invariant catalog, and a tiny campaign on the
// correct build.
func TestPublicFuzzSurface(t *testing.T) {
	p := FuzzGenerate(3)
	if p.Seed != 3 || len(p.Events) == 0 || p.Workloads == 0 {
		t.Fatalf("hollow plan: %+v", p)
	}
	if q := FuzzGenerate(3); len(q.Events) != len(p.Events) {
		t.Fatal("plan generation not deterministic through the facade")
	}
	invs := FuzzInvariants()
	if len(invs) != 6 {
		t.Fatalf("%d invariants, want 6", len(invs))
	}
	for i := 1; i < len(invs); i++ {
		if invs[i-1].Name >= invs[i].Name {
			t.Fatalf("catalog not sorted: %s >= %s", invs[i-1].Name, invs[i].Name)
		}
	}
	res, err := FuzzCampaign(FuzzCampaignConfig{Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 || len(res.Failures) != 0 {
		t.Fatalf("clean campaign: trials=%d failures=%d", res.Trials, len(res.Failures))
	}
}
