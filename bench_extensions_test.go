package spotverse

// Benches for the Section 7 future-work extensions and for the hot paths
// of the core library.

import (
	"testing"
	"time"

	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/phylo"
	"spotverse/internal/bioinf/seq"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/variant"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/experiment"
	"spotverse/internal/galaxy"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// BenchmarkExtPredictive compares SpotVerse, the learning strategy, and
// the price broker under hour-of-week interruption seasonality.
func BenchmarkExtPredictive(b *testing.B) {
	var res *experiment.ExtPredictiveResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.ExtPredictive(benchSeed, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.SpotVerse.Interruptions), "spotverse_interruptions")
	b.ReportMetric(float64(res.Predictive.Interruptions), "predictive_interruptions")
	b.ReportMetric(float64(res.SkyPilot.Interruptions), "skypilot_interruptions")
	b.ReportMetric(res.Predictive.TotalCostUSD, "predictive_cost_usd")
}

// BenchmarkExtCheckpointStores compares S3 vs EFS checkpoint channels.
func BenchmarkExtCheckpointStores(b *testing.B) {
	var res *experiment.ExtCheckpointStoresResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.ExtCheckpointStores(benchSeed, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.S3.TotalCostUSD, "s3_cost_usd")
	b.ReportMetric(res.EFS.TotalCostUSD, "efs_cost_usd")
}

// BenchmarkExtScoringModes compares the multi-provider scoring
// degradations.
func BenchmarkExtScoringModes(b *testing.B) {
	var res *experiment.ExtScoringModesResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.ExtScoringModes(benchSeed, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Combined.Interruptions), "combined_interruptions")
	b.ReportMetric(float64(res.StabilityOnly.Interruptions), "stability_only_interruptions")
	b.ReportMetric(float64(res.PriceOnly.Interruptions), "price_only_interruptions")
}

// --- Micro-benchmarks for hot paths ---

func BenchmarkMarketSpotPrice(b *testing.B) {
	mkt := market.New(catalog.Default(), benchSeed, simclock.Epoch)
	at := simclock.Epoch.Add(30 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mkt.RegionSpotPrice(catalog.M5XLarge, "ca-central-1", at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketAdvisorSnapshot(b *testing.B) {
	mkt := market.New(catalog.Default(), benchSeed, simclock.Epoch)
	at := simclock.Epoch.Add(30 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mkt.AdvisorSnapshot(catalog.M5XLarge, at); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerTopRegions(b *testing.B) {
	sim := NewSimulation(benchSeed)
	mgr, err := sim.NewManager(core.Config{InstanceType: M5XLarge, Threshold: 5, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.Monitor().CollectNow(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Optimizer().TopRegions(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensusReconstruction(b *testing.B) {
	rng := simclock.Stream(benchSeed, "bench-consensus")
	ref, err := synth.Genome(rng, 30000) // SARS-CoV-2-scale genome
	if err != nil {
		b.Fatal(err)
	}
	f, err := synth.Mutate(rng, ref, 0.005, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := variant.Consensus(ref, f, variant.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKmerProfile(b *testing.B) {
	rng := simclock.Stream(benchSeed, "bench-kmer")
	g, err := synth.Genome(rng, 30000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seq.KmerProfile(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborJoining(b *testing.B) {
	rng := simclock.Stream(benchSeed, "bench-nj")
	const taxa = 24
	names := make([]string, taxa)
	seqs := make([]string, taxa)
	for i := range names {
		names[i] = string(rune('A' + i))
		g, err := synth.Genome(rng, 2000)
		if err != nil {
			b.Fatal(err)
		}
		seqs[i] = g
	}
	dist, err := phylo.DistanceMatrix(names, seqs, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phylo.NeighborJoining(names, dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGalaxyGenomeReconstructionWorkflow(b *testing.B) {
	g := galaxy.New(galaxy.Config{AdminUsers: []string{"a@x"}, APIKeys: map[string]string{"a@x": "k"}})
	if err := galaxy.InstallStandardTools(g, "a@x"); err != nil {
		b.Fatal(err)
	}
	rng := simclock.Stream(benchSeed, "bench-galaxy")
	ref, err := synth.Genome(rng, 5000)
	if err != nil {
		b.Fatal(err)
	}
	isolate, err := synth.Mutate(rng, ref, 0.006, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	lineages := []fasta.Record{{ID: "B.1.1.7", Seq: ref}}
	for _, name := range []string{"B.1.351", "P.1"} {
		other, err := synth.Genome(rng, 5000)
		if err != nil {
			b.Fatal(err)
		}
		lineages = append(lineages, fasta.Record{ID: name, Seq: other})
	}
	inputs := map[string]galaxy.Dataset{
		"reference":     {Name: "ref.fasta", Format: "fasta", Data: []byte(fasta.String([]fasta.Record{{ID: "ref", Seq: ref}}))},
		"reference_raw": {Name: "ref.seq", Format: "txt", Data: []byte(ref)},
		"variants":      {Name: "iso.vcf", Format: "vcf", Data: []byte(vcf.String(isolate))},
		"lineages":      {Name: "lineages.fasta", Format: "fasta", Data: []byte(fasta.String(lineages))},
	}
	wf := galaxy.GenomeReconstructionWorkflow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RunWorkflow(wf, inputs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
