// Package strategy defines the placement-strategy contract shared by
// SpotVerse (internal/core) and the comparison baselines
// (internal/baselines). The experiment harness drives any Strategy the
// same way, so cost and reliability comparisons are apples-to-apples.
package strategy

import (
	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
)

// Placement is a region + purchase model decision for one workload.
type Placement struct {
	Region    catalog.Region
	Lifecycle cloud.Lifecycle
}

// RelaunchFunc re-provisions an interrupted workload at the placement.
type RelaunchFunc func(Placement)

// Strategy decides where workloads run.
type Strategy interface {
	// Name labels the strategy in results.
	Name() string
	// PlaceInitial assigns a placement to every workload ID at start.
	PlaceInitial(ids []string) (map[string]Placement, error)
	// OnInterrupted reacts to a reclaimed instance: the strategy must
	// eventually call relaunch exactly once (possibly asynchronously,
	// e.g. from a Lambda handler) unless a hard error is returned.
	OnInterrupted(id string, current catalog.Region, relaunch RelaunchFunc) error
}
