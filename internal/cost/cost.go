// Package cost provides the differential cost model the paper's
// evaluation uses (Section 5.1.2): a ledger of USD line items grouped by
// category — instance usage, Lambda, DynamoDB, S3 storage and cross-region
// transfer, CloudWatch, EventBridge, Step Functions — so strategies can be
// compared on exactly what they each consume.
package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels a ledger line item.
type Category string

// Ledger categories.
const (
	CategoryInstances   Category = "instances"
	CategoryLambda      Category = "lambda"
	CategoryDynamoDB    Category = "dynamodb"
	CategoryS3Storage   Category = "s3-storage"
	CategoryS3Transfer  Category = "s3-transfer"
	CategoryCloudWatch  Category = "cloudwatch"
	CategoryEventBridge Category = "eventbridge"
	CategoryStepFn      Category = "stepfunctions"
	CategoryEFS         Category = "efs"
)

// Published AWS rates used by the service substrates (us-east-1, 2024).
const (
	// LambdaUSDPerGBSecond is the Lambda compute rate.
	LambdaUSDPerGBSecond = 0.0000166667
	// LambdaUSDPerRequest is the Lambda invocation rate.
	LambdaUSDPerRequest = 0.0000002
	// DynamoWriteUSD is the on-demand write request unit rate.
	DynamoWriteUSD = 0.00000125
	// DynamoReadUSD is the on-demand read request unit rate.
	DynamoReadUSD = 0.00000025
	// S3StorageUSDPerGBMonth is standard-tier storage.
	S3StorageUSDPerGBMonth = 0.023
	// S3CrossRegionUSDPerGB is inter-region data transfer.
	S3CrossRegionUSDPerGB = 0.02
	// S3CrossContinentUSDPerGB is the pricier inter-continent transfer.
	S3CrossContinentUSDPerGB = 0.05
	// EventBridgeUSDPerEvent is the custom event publish rate.
	EventBridgeUSDPerEvent = 0.000001
	// StepFnUSDPerTransition is the standard state transition rate.
	StepFnUSDPerTransition = 0.000025
	// CloudWatchUSDPerMetricPut is an approximation of metric ingest.
	CloudWatchUSDPerMetricPut = 0.0000003
	// EFSStorageUSDPerGBMonth is EFS Standard storage.
	EFSStorageUSDPerGBMonth = 0.30
	// EFSReadUSDPerGB and EFSWriteUSDPerGB are elastic throughput rates.
	EFSReadUSDPerGB  = 0.03
	EFSWriteUSDPerGB = 0.06
	// EFSReplicationUSDPerGB is cross-region replication transfer.
	EFSReplicationUSDPerGB = 0.02
)

// Ledger accumulates USD by category. The zero value is ready to use.
type Ledger struct {
	amounts map[Category]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{amounts: make(map[Category]float64)}
}

// Add records amount (USD) under the category. Negative amounts are
// rejected: refunds do not exist in this model.
func (l *Ledger) Add(c Category, usd float64) error {
	if usd < 0 {
		return fmt.Errorf("cost: negative amount %v for %s", usd, c)
	}
	if l.amounts == nil {
		l.amounts = make(map[Category]float64)
	}
	l.amounts[c] += usd
	return nil
}

// MustAdd is Add for internally-generated non-negative amounts.
func (l *Ledger) MustAdd(c Category, usd float64) {
	if err := l.Add(c, usd); err != nil {
		panic(err)
	}
}

// Total returns the summed USD across categories. Summation follows
// category order so the floating-point result is deterministic.
func (l *Ledger) Total() float64 {
	var sum float64
	for _, item := range l.Breakdown() {
		sum += item.USD
	}
	return sum
}

// Of returns the USD recorded under one category.
func (l *Ledger) Of(c Category) float64 { return l.amounts[c] }

// Breakdown returns category totals sorted by category name.
func (l *Ledger) Breakdown() []LineItem {
	out := make([]LineItem, 0, len(l.amounts))
	for c, v := range l.amounts {
		out = append(out, LineItem{Category: c, USD: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// Merge adds every category of other into l.
func (l *Ledger) Merge(other *Ledger) {
	if other == nil {
		return
	}
	for c, v := range other.amounts {
		//spotverse:allow mapiter MustAdd accumulates into a map keyed by category; one add per distinct key is order-independent
		l.MustAdd(c, v)
	}
}

// LineItem is one category total.
type LineItem struct {
	Category Category
	USD      float64
}

// String renders the ledger as "category=$x.xx ..." for logs.
func (l *Ledger) String() string {
	items := l.Breakdown()
	parts := make([]string, 0, len(items)+1)
	for _, it := range items {
		parts = append(parts, fmt.Sprintf("%s=$%.4f", it.Category, it.USD))
	}
	parts = append(parts, fmt.Sprintf("total=$%.4f", l.Total()))
	return strings.Join(parts, " ")
}
