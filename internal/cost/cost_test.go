package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroLedgerUsable(t *testing.T) {
	var l Ledger
	if err := l.Add(CategoryLambda, 1.5); err != nil {
		t.Fatal(err)
	}
	if l.Total() != 1.5 {
		t.Fatalf("total = %v, want 1.5", l.Total())
	}
}

func TestAddAccumulatesPerCategory(t *testing.T) {
	l := NewLedger()
	l.MustAdd(CategoryInstances, 10)
	l.MustAdd(CategoryInstances, 5)
	l.MustAdd(CategoryS3Transfer, 2)
	if got := l.Of(CategoryInstances); got != 15 {
		t.Fatalf("instances = %v, want 15", got)
	}
	if got := l.Total(); got != 17 {
		t.Fatalf("total = %v, want 17", got)
	}
}

func TestNegativeRejected(t *testing.T) {
	l := NewLedger()
	if err := l.Add(CategoryLambda, -0.01); err == nil {
		t.Fatal("negative amount should be rejected")
	}
}

func TestBreakdownSorted(t *testing.T) {
	l := NewLedger()
	l.MustAdd(CategoryS3Transfer, 1)
	l.MustAdd(CategoryDynamoDB, 2)
	l.MustAdd(CategoryInstances, 3)
	items := l.Breakdown()
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Category <= items[i-1].Category {
			t.Fatal("breakdown not sorted by category")
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	a.MustAdd(CategoryLambda, 1)
	b.MustAdd(CategoryLambda, 2)
	b.MustAdd(CategoryStepFn, 3)
	a.Merge(b)
	if a.Of(CategoryLambda) != 3 || a.Of(CategoryStepFn) != 3 {
		t.Fatalf("merge wrong: %v", a)
	}
	a.Merge(nil) // must not panic
}

func TestStringMentionsTotal(t *testing.T) {
	l := NewLedger()
	l.MustAdd(CategoryLambda, 1.25)
	if s := l.String(); !strings.Contains(s, "total=") || !strings.Contains(s, "lambda=") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTotalEqualsSumProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		l := NewLedger()
		l.MustAdd(CategoryInstances, float64(a))
		l.MustAdd(CategoryLambda, float64(b))
		l.MustAdd(CategoryDynamoDB, float64(c))
		return l.Total() == float64(a)+float64(b)+float64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
