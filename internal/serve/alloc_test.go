package serve_test

import (
	"context"
	"testing"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/raceflag"
	"spotverse/internal/serve"
)

// TestPlaceWarmAllocFree is the runtime half of the //spotverse:hotpath
// gate on SimBackend.Place: once the ranking is memoized for the
// monitor epoch and the response's placement slice has grown, a warm
// /v1/place decision allocates nothing.
func TestPlaceWarmAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	sim, err := experiment.NewServeSim(21, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := &serve.PlaceRequest{WorkloadID: "w-alloc", Count: 3}
	resp := &serve.PlaceResponse{}
	if err := sim.Backend.Place(ctx, req, resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sim.Backend.Place(ctx, req, resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Place allocated %v per run, want 0", allocs)
	}
}
