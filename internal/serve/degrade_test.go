package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func trippedBreaker(threshold int, cooldown time.Duration, at time.Time) *Breaker {
	b := NewBreaker(threshold, cooldown)
	for i := 0; i < threshold; i++ {
		b.Failure(at)
	}
	return b
}

func TestServeBreakerTripsAtThreshold(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	b.Failure(t0)
	b.Failure(t0)
	if !b.Allow(t0) {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure(t0)
	if b.Allow(t0) {
		t.Fatal("breaker closed at threshold")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestServeBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	b.Failure(t0)
	b.Failure(t0)
	b.Success()
	b.Failure(t0)
	b.Failure(t0)
	if !b.Allow(t0) {
		t.Fatal("streak should have reset on success")
	}
}

func TestServeBreakerHalfOpenProbeCloses(t *testing.T) {
	b := trippedBreaker(2, time.Minute, t0)
	if b.Allow(t0.Add(30 * time.Second)) {
		t.Fatal("breaker allowed inside cooldown")
	}
	later := t0.Add(2 * time.Minute)
	if !b.Allow(later) {
		t.Fatal("half-open probe refused after cooldown")
	}
	// While the probe is out, everyone else keeps degrading.
	if b.Allow(later) {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if !b.Allow(later) || !b.Allow(later) {
		t.Fatal("breaker should be fully closed after probe success")
	}
}

func TestServeBreakerHalfOpenProbeReTrips(t *testing.T) {
	b := trippedBreaker(2, time.Minute, t0)
	later := t0.Add(2 * time.Minute)
	if !b.Allow(later) {
		t.Fatal("probe refused")
	}
	b.Failure(later)
	if b.Allow(later.Add(30 * time.Second)) {
		t.Fatal("breaker should re-trip immediately on probe failure")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// And the second cooldown admits a new probe.
	if !b.Allow(later.Add(2 * time.Minute)) {
		t.Fatal("second probe refused after second cooldown")
	}
}

func TestServeBreakerSingleProbeUnderConcurrency(t *testing.T) {
	// After the cooldown, exactly one of N concurrent callers may probe;
	// run with -race to also check the locking.
	b := trippedBreaker(2, time.Minute, t0)
	later := t0.Add(2 * time.Minute)
	var allowed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow(later) {
				allowed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := allowed.Load(); got != 1 {
		t.Fatalf("%d concurrent probes allowed, want exactly 1", got)
	}

	// Concurrent probe resolutions and new Allow calls must stay
	// race-free and end in a consistent state.
	var wg2 sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			at := later.Add(time.Duration(i) * time.Second)
			if b.Allow(at) {
				if i%2 == 0 {
					b.Success()
				} else {
					b.Failure(at)
				}
			}
		}()
	}
	wg2.Wait()
}

func cachedAdvisor() *AdvisorResponse {
	return &AdvisorResponse{
		CollectedAt: t0,
		Entries:     []AdvisorEntry{{Region: "eu-north-1"}, {Region: "us-east-1"}},
		Ranking:     []string{"eu-north-1", "us-east-1", "ca-central-1"},
	}
}

func TestAdvisorCacheSnapshotAge(t *testing.T) {
	var c advisorCache
	if _, _, ok := c.snapshot(t0); ok {
		t.Fatal("empty cache reported a snapshot")
	}
	c.store(cachedAdvisor(), t0)
	resp, age, ok := c.snapshot(t0.Add(3 * time.Second))
	if !ok || resp == nil {
		t.Fatal("cached snapshot missing")
	}
	if age != 3*time.Second {
		t.Fatalf("age = %v, want 3s", age)
	}
}

func TestAdvisorCacheStoreCopies(t *testing.T) {
	var c advisorCache
	src := cachedAdvisor()
	c.store(src, t0)
	src.Ranking[0] = "mutated"
	src.Entries[0].Region = "mutated"
	resp, _, _ := c.snapshot(t0)
	if resp.Ranking[0] != "eu-north-1" || resp.Entries[0].Region != "eu-north-1" {
		t.Fatal("cache aliases the caller's slices")
	}
}

func TestAdvisorCacheBestEffortRoundRobin(t *testing.T) {
	var c advisorCache
	c.store(cachedAdvisor(), t0)
	var resp PlaceResponse
	if !c.bestEffort(&PlaceRequest{Count: 3}, &resp) {
		t.Fatal("bestEffort failed with a populated cache")
	}
	if !resp.Degraded {
		t.Fatal("degraded placement not marked degraded")
	}
	got := []string{resp.Placements[0].Region, resp.Placements[1].Region, resp.Placements[2].Region}
	want := []string{"eu-north-1", "us-east-1", "ca-central-1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", got, want)
		}
	}
	// Next single placement continues the rotation.
	var next PlaceResponse
	c.bestEffort(&PlaceRequest{}, &next)
	if next.Placements[0].Region != "eu-north-1" {
		t.Fatalf("rotation did not wrap: got %s", next.Placements[0].Region)
	}
}

func TestAdvisorCacheBestEffortHonorsExclude(t *testing.T) {
	var c advisorCache
	c.store(cachedAdvisor(), t0)
	var resp PlaceResponse
	if !c.bestEffort(&PlaceRequest{Count: 2, Exclude: []string{"eu-north-1"}}, &resp) {
		t.Fatal("bestEffort failed with non-excluded regions available")
	}
	for _, p := range resp.Placements {
		if p.Region == "eu-north-1" {
			t.Fatal("excluded region placed")
		}
	}
	if c.bestEffort(&PlaceRequest{Exclude: []string{"eu-north-1", "us-east-1", "ca-central-1"}}, &resp) {
		t.Fatal("bestEffort succeeded with everything excluded")
	}
}
