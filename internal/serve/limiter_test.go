package serve

import (
	"testing"
	"time"
)

var t0 = time.Date(2024, 3, 4, 0, 0, 0, 0, time.UTC)

func TestTokenBucketBurstThenDeny(t *testing.T) {
	tb := NewTokenBucket(2, 5, t0)
	for i := 0; i < 5; i++ {
		if ok, _ := tb.Allow(t0, 1); !ok {
			t.Fatalf("request %d inside burst denied", i)
		}
	}
	ok, retry := tb.Allow(t0, 1)
	if ok {
		t.Fatal("request past burst allowed")
	}
	if retry < time.Millisecond {
		t.Fatalf("retryAfter %v below 1ms floor", retry)
	}
	// At 2 tokens/s one token takes 500ms.
	if retry > 600*time.Millisecond {
		t.Fatalf("retryAfter %v too large for one token at 2/s", retry)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	tb := NewTokenBucket(10, 10, t0)
	for i := 0; i < 10; i++ {
		tb.Allow(t0, 1)
	}
	if ok, _ := tb.Allow(t0, 1); ok {
		t.Fatal("empty bucket allowed")
	}
	// 200ms at 10/s refills 2 tokens.
	later := t0.Add(200 * time.Millisecond)
	if ok, _ := tb.Allow(later, 2); !ok {
		t.Fatal("refilled tokens not granted")
	}
	if ok, _ := tb.Allow(later, 0.5); ok {
		t.Fatal("bucket should be empty again")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := NewTokenBucket(2, 5, t0)
	// A long idle period must not accumulate more than burst.
	later := t0.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if ok, _ := tb.Allow(later, 1); !ok {
			t.Fatalf("token %d of burst missing after idle", i)
		}
	}
	if ok, _ := tb.Allow(later, 1); ok {
		t.Fatal("bucket exceeded burst capacity")
	}
}

func TestTokenBucketFractionalCost(t *testing.T) {
	tb := NewTokenBucket(1, 1, t0)
	for i := 0; i < 4; i++ {
		if ok, _ := tb.Allow(t0, 0.25); !ok {
			t.Fatalf("fractional request %d denied", i)
		}
	}
	if ok, _ := tb.Allow(t0, 0.25); ok {
		t.Fatal("fifth quarter-cost request should be denied")
	}
	allowed, denied := tb.Stats()
	if allowed != 4 || denied != 1 {
		t.Fatalf("stats = (%d, %d), want (4, 1)", allowed, denied)
	}
}
