package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// DegradedResponse is the typed 503 body served while the backend is
// unavailable: the reason, the cached advisor snapshot's age, a
// best-effort placement from the cached ranking (for /v1/place), and a
// Retry-After mirror so clients that only read bodies see it too.
type DegradedResponse struct {
	Degraded      bool           `json:"degraded"`
	Reason        string         `json:"reason"`
	SnapshotAgeMS int64          `json:"snapshot_age_ms"`
	RetryAfterSec int            `json:"retry_after_sec"`
	Place         *PlaceResponse `json:"place,omitempty"`
	// Advisor carries the cached snapshot for /v1/advisor requests.
	Advisor *AdvisorResponse `json:"advisor,omitempty"`
}

// errorBody is the JSON envelope for plain failures.
type errorBody struct {
	Error string `json:"error"`
}

// Outcome is one request's single explicit result, as produced by the
// serving core (shared by the HTTP edge and replay).
type Outcome struct {
	Status     Status
	Code       int
	RetryAfter time.Duration
	Place      *PlaceResponse
	Advisor    *AdvisorResponse
	Migrations *MigrationsResponse
	Degraded   *DegradedResponse
	Err        string
}

// Stats is a consistent snapshot of the server's counters. OK +
// Degraded + Shed + Deadline + Errors always equals Requests: every
// request gets exactly one outcome.
type Stats struct {
	Requests       uint64 `json:"requests"`
	OK             uint64 `json:"ok"`
	Degraded       uint64 `json:"degraded"`
	Shed           uint64 `json:"shed"`
	ShedLimiter    uint64 `json:"shed_limiter"`
	ShedAdmission  uint64 `json:"shed_admission"`
	ShedDrain      uint64 `json:"shed_drain"`
	Deadline       uint64 `json:"deadline"`
	Errors         uint64 `json:"errors"`
	Panics         uint64 `json:"panics"`
	BreakerTrips   uint64 `json:"breaker_trips"`
	QueueHighWater int    `json:"queue_high_water"`
	Draining       bool   `json:"draining"`
	Ready          bool   `json:"ready"`
}

// Server is the always-on placement service. Build one with New, prime
// it with Warm, expose Handler over HTTP, and stop it with Drain.
type Server struct {
	cfg     Config
	clk     Clock
	backend Backend
	limiter *TokenBucket
	adm     *Admission
	pool    *Pool
	brk     *Breaker
	cache   advisorCache

	draining atomic.Bool
	ready    atomic.Bool
	drained  chan struct{}
	drainErr error

	requests    atomic.Uint64
	ok          atomic.Uint64
	degraded    atomic.Uint64
	shedLimiter atomic.Uint64
	shedAdmit   atomic.Uint64
	shedDrain   atomic.Uint64
	deadline    atomic.Uint64
	errorsN     atomic.Uint64

	mux *http.ServeMux
}

// New builds a Server over a backend. The config must carry a Clock.
func New(cfg Config, backend Backend) (*Server, error) {
	if cfg.Clock == nil {
		return nil, ErrNoClock
	}
	if backend == nil {
		return nil, errors.New("serve: backend is required")
	}
	cfg = cfg.normalized()
	s := &Server{
		cfg:     cfg,
		clk:     cfg.Clock,
		backend: backend,
		limiter: NewTokenBucket(cfg.RatePerSec, cfg.Burst, cfg.Clock.Now()),
		adm:     NewAdmission(cfg.QueueDepth, cfg.MaxEstimatedWait, cfg.ServiceTime, cfg.Workers),
		pool:    NewPool(cfg.Workers, cfg.QueueDepth),
		brk:     NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown),
		drained: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/place", s.handlePlace)
	mux.HandleFunc("/v1/advisor", s.handleAdvisor)
	mux.HandleFunc("/v1/migrations", s.handleMigrations)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Warm primes the degraded-mode cache with one synchronous advisor
// read, so the server can serve typed 503s from a snapshot the moment
// traffic arrives. A server is not ready until warmed.
func (s *Server) Warm(ctx context.Context) error {
	resp, err := s.backend.Advisor(ctx)
	if err != nil {
		return fmt.Errorf("serve: warm: %w", err)
	}
	s.cache.store(resp, s.clk.Now())
	s.ready.Store(true)
	return nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	_, _, _, hw := s.adm.Stats()
	shedL, shedA, shedD := s.shedLimiter.Load(), s.shedAdmit.Load(), s.shedDrain.Load()
	return Stats{
		Requests:       s.requests.Load(),
		OK:             s.ok.Load(),
		Degraded:       s.degraded.Load(),
		Shed:           shedL + shedA + shedD,
		ShedLimiter:    shedL,
		ShedAdmission:  shedA,
		ShedDrain:      shedD,
		Deadline:       s.deadline.Load(),
		Errors:         s.errorsN.Load(),
		Panics:         s.pool.Panics(),
		BreakerTrips:   s.brk.Trips(),
		QueueHighWater: hw,
		Draining:       s.draining.Load(),
		Ready:          s.ready.Load(),
	}
}

// count tallies one outcome; exactly one count per request, so the
// Stats invariant Requests == OK+Degraded+Shed+Deadline+Errors holds.
func (s *Server) count(o Outcome) {
	s.requests.Add(1)
	switch o.Status {
	case StatusOK:
		s.ok.Add(1)
	case StatusDegraded:
		s.degraded.Add(1)
	case StatusDeadline:
		s.deadline.Add(1)
	case StatusError:
		s.errorsN.Add(1)
	}
}

// gate runs the shared pre-worker pipeline: drain check, trace record,
// rate limit, admission. A nil ticket with a non-nil outcome means the
// request was refused at the gate.
func (s *Server) gate(endpoint, workloadID string) (*Ticket, Outcome, bool) {
	now := s.clk.Now()
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(TraceEntry{Endpoint: endpoint, WorkloadID: workloadID})
	}
	if s.draining.Load() {
		s.shedDrain.Add(1)
		return nil, Outcome{Status: StatusShed, Code: http.StatusServiceUnavailable,
			RetryAfter: s.cfg.DrainDeadline, Err: "draining"}, false
	}
	cost := EndpointCost(endpoint)
	if ok, retry := s.limiter.Allow(now, cost); !ok {
		s.shedLimiter.Add(1)
		return nil, Outcome{Status: StatusShed, Code: http.StatusTooManyRequests,
			RetryAfter: retry, Err: "rate limit exceeded"}, false
	}
	ticket, retry, ok := s.adm.Admit(cost)
	if !ok {
		s.shedAdmit.Add(1)
		return nil, Outcome{Status: StatusShed, Code: http.StatusTooManyRequests,
			RetryAfter: retry, Err: "over capacity"}, false
	}
	return ticket, Outcome{}, true
}

// process executes one admitted request against the backend, degrading
// onto the cached snapshot when the breaker is open or the call fails.
// It never panics outward and always returns exactly one outcome.
func (s *Server) process(ctx context.Context, endpoint string, req *PlaceRequest) Outcome {
	now := s.clk.Now()
	if !s.brk.Allow(now) {
		return s.degrade(endpoint, req, "circuit breaker open")
	}
	var err error
	var out Outcome
	switch endpoint {
	case EndpointAdvisor:
		var resp *AdvisorResponse
		if resp, err = s.backend.Advisor(ctx); err == nil {
			s.cache.store(resp, s.clk.Now())
			out = Outcome{Status: StatusOK, Code: http.StatusOK, Advisor: resp}
		}
	case EndpointMigrations:
		var resp *MigrationsResponse
		if resp, err = s.backend.Migrations(ctx); err == nil {
			out = Outcome{Status: StatusOK, Code: http.StatusOK, Migrations: resp}
		}
	default:
		resp := &PlaceResponse{}
		if err = s.backend.Place(ctx, req, resp); err == nil {
			out = Outcome{Status: StatusOK, Code: http.StatusOK, Place: resp}
		}
	}
	if err != nil {
		s.brk.Failure(s.clk.Now())
		if ctx.Err() != nil {
			// The deadline, not the backend, killed the call.
			return Outcome{Status: StatusDeadline, Code: http.StatusGatewayTimeout, Err: "deadline exceeded"}
		}
		return s.degrade(endpoint, req, err.Error())
	}
	s.brk.Success()
	return out
}

// degrade builds the typed 503 from the cached advisor snapshot. With
// nothing cached it is an explicit 500 — still one outcome, never a
// hang.
func (s *Server) degrade(endpoint string, req *PlaceRequest, reason string) Outcome {
	now := s.clk.Now()
	cached, age, ok := s.cache.snapshot(now)
	if !ok {
		return Outcome{Status: StatusError, Code: http.StatusInternalServerError,
			Err: "backend unavailable and no cached snapshot: " + reason}
	}
	retry := s.cfg.BreakerCooldown
	d := &DegradedResponse{
		Degraded:      true,
		Reason:        reason,
		SnapshotAgeMS: age.Milliseconds(),
		RetryAfterSec: retryAfterSeconds(retry),
	}
	switch endpoint {
	case EndpointAdvisor:
		adv := *cached
		adv.Degraded = true
		adv.AgeMS = age.Milliseconds()
		d.Advisor = &adv
	case EndpointMigrations:
		// No cached migration state: the typed degraded envelope alone.
	default:
		place := &PlaceResponse{}
		if req != nil && s.cache.bestEffort(req, place) {
			d.Place = place
		}
	}
	return Outcome{Status: StatusDegraded, Code: http.StatusServiceUnavailable,
		RetryAfter: retry, Degraded: d, Err: reason}
}

// execute runs the full post-gate path on a worker: deadline check,
// panic isolation, backend call. It always replies exactly once.
func (s *Server) execute(ctx context.Context, endpoint string, req *PlaceRequest, ticket *Ticket, reply chan<- Outcome) {
	defer func() {
		if r := recover(); r != nil {
			ticket.Done()
			reply <- Outcome{Status: StatusError, Code: http.StatusInternalServerError,
				Err: fmt.Sprintf("internal panic: %v", r)}
			// Re-panic so the pool's isolation counter sees it; the
			// reply already went out.
			panic(r)
		}
	}()
	ticket.Start()
	defer ticket.Done()
	if err := ctx.Err(); err != nil {
		// Deadline expired while the request sat in the queue: answer
		// without touching the backend.
		reply <- Outcome{Status: StatusDeadline, Code: http.StatusGatewayTimeout, Err: "deadline exceeded in queue"}
		return
	}
	reply <- s.process(ctx, endpoint, req)
}

// dispatch pushes an admitted request through the pool and waits for
// its single outcome (or the request deadline, whichever first).
func (s *Server) dispatch(ctx context.Context, endpoint string, req *PlaceRequest, ticket *Ticket) Outcome {
	reply := make(chan Outcome, 1)
	ok := s.pool.TrySubmit(task{ctx: ctx, run: func(ctx context.Context) {
		s.execute(ctx, endpoint, req, ticket, reply)
	}})
	if !ok {
		// The pool queue disagreed with admission (drain raced us, or a
		// bug): refuse explicitly rather than block.
		ticket.Cancel()
		s.shedDrain.Add(1)
		return Outcome{Status: StatusShed, Code: http.StatusServiceUnavailable,
			RetryAfter: s.cfg.DrainDeadline, Err: "draining"}
	}
	select {
	case out := <-reply:
		return out
	case <-ctx.Done():
		// The worker will still pop the task, see the dead context, and
		// release the ticket; its late reply lands in the buffered
		// channel and is dropped. This request's one response is the
		// deadline.
		return Outcome{Status: StatusDeadline, Code: http.StatusGatewayTimeout, Err: "deadline exceeded"}
	}
}

// serveOutcome writes one outcome as the HTTP response.
func (s *Server) serveOutcome(w http.ResponseWriter, o Outcome) {
	s.count(o)
	if o.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(o.RetryAfter)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(o.Code)
	var body any
	switch {
	case o.Place != nil:
		body = o.Place
	case o.Advisor != nil:
		body = o.Advisor
	case o.Migrations != nil:
		body = o.Migrations
	case o.Degraded != nil:
		body = o.Degraded
	default:
		body = errorBody{Error: o.Err}
	}
	// The header is already out; an encoding failure can only truncate
	// this one response body.
	_ = json.NewEncoder(w).Encode(body)
}

// retryAfterSeconds rounds a Retry-After up to whole seconds (minimum
// 1: "0" would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.serveOutcome(w, Outcome{Status: StatusError, Code: http.StatusMethodNotAllowed, Err: "POST required"})
		return
	}
	var req PlaceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.serveOutcome(w, Outcome{Status: StatusError, Code: http.StatusBadRequest, Err: "bad request: " + err.Error()})
		return
	}
	s.handleEndpoint(w, r, EndpointPlace, &req)
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	s.handleEndpoint(w, r, EndpointAdvisor, nil)
}

func (s *Server) handleMigrations(w http.ResponseWriter, r *http.Request) {
	s.handleEndpoint(w, r, EndpointMigrations, nil)
}

// handleEndpoint is the shared HTTP edge: gate, deadline, dispatch.
func (s *Server) handleEndpoint(w http.ResponseWriter, r *http.Request, endpoint string, req *PlaceRequest) {
	workloadID := ""
	if req != nil {
		workloadID = req.WorkloadID
	}
	ticket, refusal, ok := s.gate(endpoint, workloadID)
	if !ok {
		s.serveOutcome(w, refusal)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	s.serveOutcome(w, s.dispatch(ctx, endpoint, req, ticket))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process answers, even mid-drain.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.DrainDeadline)))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "warming")
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	}
}
