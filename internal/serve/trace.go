package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceEntry is one recorded request arrival. Traces are JSONL: one
// entry per line, ordered by AtMS (milliseconds since trace start), so
// a trace replays on the simulation clock without any wall-clock
// anchor.
type TraceEntry struct {
	// AtMS is the arrival offset in milliseconds from trace start.
	AtMS int64 `json:"at_ms"`
	// Endpoint is place, advisor, or migrations.
	Endpoint string `json:"endpoint"`
	// WorkloadID labels place requests.
	WorkloadID string `json:"workload_id,omitempty"`
	// Count is the requested placement count (default 1).
	Count int `json:"count,omitempty"`
	// Exclude lists refused regions.
	Exclude []string `json:"exclude,omitempty"`
}

// TraceSink receives request arrivals as they happen; the recorder in
// internal/experiment implements it over a JSONL file.
type TraceSink interface {
	Record(e TraceEntry)
}

// validEndpoint reports whether the entry names a replayable endpoint.
func validEndpoint(endpoint string) bool {
	switch endpoint {
	case EndpointPlace, EndpointAdvisor, EndpointMigrations:
		return true
	}
	return false
}

// WriteTrace writes entries as JSONL.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return fmt.Errorf("serve: write trace entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace, validating endpoints and arrival
// order (entries must be sorted by AtMS: replay cannot rewind the
// simulation clock).
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	prev := int64(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var e TraceEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("serve: trace line %d: %w", line, err)
		}
		if !validEndpoint(e.Endpoint) {
			return nil, fmt.Errorf("serve: trace line %d: unknown endpoint %q", line, e.Endpoint)
		}
		if e.AtMS < 0 {
			return nil, fmt.Errorf("serve: trace line %d: negative at_ms %d", line, e.AtMS)
		}
		if e.AtMS < prev {
			return nil, fmt.Errorf("serve: trace line %d: at_ms %d before previous %d (trace must be time-sorted)", line, e.AtMS, prev)
		}
		prev = e.AtMS
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: read trace: %w", err)
	}
	return out, nil
}
