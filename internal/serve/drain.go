package serve

import (
	"context"
	"errors"
	"fmt"
)

// ErrDrainTimeout reports that in-flight requests did not settle
// inside the drain deadline; the stragglers were aborted via their
// contexts and still each received an explicit response.
var ErrDrainTimeout = errors.New("serve: drain deadline exceeded with requests still in flight")

// Drain performs graceful shutdown:
//
//  1. stop accepting — readyz flips to 503 draining and every new
//     request is refused with 503 + Retry-After;
//  2. finish in-flight — queued and executing requests run to
//     completion, bounded by ctx (the caller passes a context carrying
//     the drain deadline); past the deadline the remaining requests
//     are aborted through their own contexts and answered explicitly;
//  3. flush — the backend's Flush barrier runs, then every OnDrain
//     hook (trace recorders etc.);
//  4. the worker pool shuts down.
//
// Drain is idempotent: the second and later calls wait for the first
// to finish and return its error. A clean drain returns nil — the
// caller exits 0.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.drained
		return s.drainErr
	}
	defer close(s.drained)

	var errs []error
	if !s.adm.AwaitIdle(ctx.Done()) {
		errs = append(errs, ErrDrainTimeout)
		// Give the in-queue stragglers one more chance to be answered:
		// workers pop them, see their (now likely expired) contexts or
		// run them to completion; the pool close below waits for that.
	}
	s.pool.Close()

	// Flush with a fresh context: the drain deadline may already be
	// spent, but the flush barrier must still run (it is the "journal
	// flushed" guarantee SIGTERM promises).
	if f, ok := s.backend.(Flusher); ok {
		if err := f.Flush(context.Background()); err != nil {
			errs = append(errs, fmt.Errorf("serve: drain flush: %w", err))
		}
	}
	for _, hook := range s.cfg.OnDrain {
		if err := hook(); err != nil {
			errs = append(errs, fmt.Errorf("serve: drain hook: %w", err))
		}
	}
	s.drainErr = errors.Join(errs...)
	return s.drainErr
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
