package serve

import (
	"testing"
	"time"
)

func TestAdmissionQueueCap(t *testing.T) {
	// maxWait generous: only the depth cap should shed.
	a := NewAdmission(3, time.Hour, time.Millisecond, 1)
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, _, ok := a.Admit(1)
		if !ok {
			t.Fatalf("admit %d under cap refused", i)
		}
		tickets = append(tickets, tk)
	}
	if _, retry, ok := a.Admit(1); ok || retry <= 0 {
		t.Fatalf("admit at cap: ok=%v retry=%v, want refusal with positive retry", ok, retry)
	}
	_, shedQueue, _, hw := statsOf(a)
	if shedQueue != 1 || hw != 3 {
		t.Fatalf("shedQueue=%d highWater=%d, want 1, 3", shedQueue, hw)
	}
	// Releasing one queued ticket frees a slot.
	tickets[0].Cancel()
	if _, _, ok := a.Admit(1); !ok {
		t.Fatal("admit after cancel refused")
	}
}

func TestAdmissionWaitProjectionShedsBeforeSaturation(t *testing.T) {
	// 1 worker at 100ms per unit, budget 250ms: the 4th unit of queued
	// work projects 400ms and must shed with the queue only 3 deep —
	// well under the 100-deep cap.
	a := NewAdmission(100, 250*time.Millisecond, 100*time.Millisecond, 1)
	for i := 0; i < 2; i++ {
		if _, _, ok := a.Admit(1); !ok {
			t.Fatalf("admit %d inside budget refused", i)
		}
	}
	tk, _, ok := a.Admit(0.5) // projected 250ms: exactly at budget, allowed
	if !ok {
		t.Fatal("admit at exactly the budget refused")
	}
	_ = tk
	_, retry, ok := a.Admit(1) // projected 350ms: over budget
	if ok {
		t.Fatal("admit over the wait budget allowed")
	}
	if retry < 250*time.Millisecond {
		t.Fatalf("retry %v should reflect the projected drain time", retry)
	}
	_, shedQueue, shedWait, hw := statsOf(a)
	if shedQueue != 0 || shedWait != 1 {
		t.Fatalf("sheds = (queue %d, wait %d), want (0, 1)", shedQueue, shedWait)
	}
	if hw != 3 {
		t.Fatalf("highWater = %d, want 3", hw)
	}
}

func TestAdmissionTicketLifecycle(t *testing.T) {
	a := NewAdmission(10, time.Hour, time.Millisecond, 2)
	tk, _, ok := a.Admit(1)
	if !ok {
		t.Fatal("admit refused")
	}
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("outstanding after admit = %d, want 1", got)
	}
	tk.Start()
	if got := a.Outstanding(); got != 1 {
		t.Fatalf("outstanding after start = %d, want 1", got)
	}
	// Start and Done are idempotent; Cancel after Start is a no-op.
	tk.Start()
	tk.Cancel()
	tk.Done()
	tk.Done()
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding after done = %d, want 0", got)
	}
}

func TestAdmissionAwaitIdle(t *testing.T) {
	a := NewAdmission(10, time.Hour, time.Millisecond, 2)
	tk, _, _ := a.Admit(1)
	done := make(chan struct{})
	idle := make(chan bool, 1)
	go func() { idle <- a.AwaitIdle(done) }()
	select {
	case <-idle:
		t.Fatal("AwaitIdle returned with work outstanding")
	case <-time.After(10 * time.Millisecond):
	}
	tk.Start()
	tk.Done()
	select {
	case ok := <-idle:
		if !ok {
			t.Fatal("AwaitIdle reported not idle after release")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitIdle did not wake on release")
	}

	// A cancelled wait reports false while work remains.
	tk2, _, _ := a.Admit(1)
	cancelled := make(chan struct{})
	close(cancelled)
	if a.AwaitIdle(cancelled) {
		t.Fatal("AwaitIdle reported idle with a live ticket")
	}
	tk2.Cancel()
}

func statsOf(a *Admission) (admitted, shedQueue, shedWait uint64, hw int) {
	return a.Stats()
}
