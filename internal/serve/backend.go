package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/core"
	"spotverse/internal/simclock"
)

// PlaceRequest asks where to launch a workload right now.
type PlaceRequest struct {
	// WorkloadID labels the request (echoed back; used for tracing).
	WorkloadID string `json:"workload_id,omitempty"`
	// Count asks for that many placements, round-robined across the
	// current top regions (default 1, capped at
	// MaxPlacementsPerRequest).
	Count int `json:"count,omitempty"`
	// Exclude lists regions the caller refuses (e.g. the region a
	// workload was just interrupted in).
	Exclude []string `json:"exclude,omitempty"`
}

func (r *PlaceRequest) placementCount() int {
	if r.Count < 1 {
		return 1
	}
	if r.Count > MaxPlacementsPerRequest {
		return MaxPlacementsPerRequest
	}
	return r.Count
}

// Placement is one (region, lifecycle) answer.
type Placement struct {
	Region    string `json:"region"`
	Lifecycle string `json:"lifecycle"`
}

// PlaceResponse answers a PlaceRequest.
type PlaceResponse struct {
	WorkloadID string      `json:"workload_id,omitempty"`
	Placements []Placement `json:"placements"`
	// Degraded marks a best-effort answer built from a cached advisor
	// snapshot while the backend was unavailable.
	Degraded bool `json:"degraded"`
}

// AdvisorEntry is one region row of the advisor snapshot surface.
type AdvisorEntry struct {
	Region         string  `json:"region"`
	SpotPriceUSD   float64 `json:"spot_price_usd"`
	OnDemandUSD    float64 `json:"on_demand_usd"`
	StabilityScore int     `json:"stability_score"`
	PlacementScore int     `json:"placement_score"`
	CombinedScore  int     `json:"combined_score"`
}

// AdvisorResponse is the advisor-snapshot surface: per-region metrics
// plus the optimizer's current region ranking (cheapest qualifying
// region first), which is also what degraded mode round-robins over.
type AdvisorResponse struct {
	CollectedAt time.Time      `json:"collected_at"`
	Entries     []AdvisorEntry `json:"entries"`
	Ranking     []string       `json:"ranking"`
	Degraded    bool           `json:"degraded"`
	// AgeMS is how stale the snapshot is, relative to the serving
	// clock; nonzero only on degraded responses.
	AgeMS int64 `json:"age_ms,omitempty"`
}

// MigrationsResponse reports the Controller's migration status.
type MigrationsResponse struct {
	Pending      int `json:"pending"`
	Handled      int `json:"handled"`
	Failures     int `json:"failures"`
	Sweeps       int `json:"sweeps"`
	Recoveries   int `json:"recoveries"`
	BreakerTrips int `json:"breaker_trips"`
	BreakerSkips int `json:"breaker_skips"`
}

// Backend is the placement engine behind the server. Implementations
// must honor ctx cancellation and be safe for concurrent use; the
// worker pool bounds how many calls run at once. Place fills resp in
// place so a warm caller can reuse one response across requests.
type Backend interface {
	Place(ctx context.Context, req *PlaceRequest, resp *PlaceResponse) error
	Advisor(ctx context.Context) (*AdvisorResponse, error)
	Migrations(ctx context.Context) (*MigrationsResponse, error)
}

// Flusher is an optional Backend extension: Drain calls Flush after
// in-flight requests settle, giving the backend a barrier to persist
// anything buffered (the SimBackend's journal writes are synchronous,
// so its flush is a verification barrier, not a data move).
type Flusher interface {
	Flush(ctx context.Context) error
}

// FaultFunc matches chaos.Injector.ServiceFault's closure shape, so a
// chaos injector wires straight into the serve backend.
type FaultFunc func(op string, region catalog.Region) error

// SimBackend serves placements from a SpotVerse manager deployed on
// the simulated cloud. The simulation engine is single-threaded, so
// every call serialises on one mutex; the worker pool in front bounds
// how much work piles up on it.
//
// The hot path is memoized: the optimizer's region ranking and the
// advisor snapshot are recomputed only when the Monitor collected a
// new snapshot or simulated time moved, so a warm /v1/place is a
// mutex, a round-robin counter bump, and an in-place response fill —
// no allocation, no DynamoDB scan.
type SimBackend struct {
	mu    sync.Mutex
	eng   *simclock.Engine
	mgr   *core.SpotVerse
	fault FaultFunc

	// memoized ranking + advisor surface, keyed by (collections, now).
	epoch    int
	cachedAt time.Time
	ranking  []catalog.Region
	rankStr  []string
	entries  []AdvisorEntry

	rr      uint64
	flushes int
}

// NewSimBackend wraps a deployed manager.
func NewSimBackend(eng *simclock.Engine, mgr *core.SpotVerse) *SimBackend {
	return &SimBackend{eng: eng, mgr: mgr}
}

// SetFault installs a chaos fault hook (chaos.Injector.ServiceFault):
// every backend call consults it first, so brownouts and error rates
// scheduled for the serve service surface as backend failures the
// degraded path must absorb.
func (b *SimBackend) SetFault(fn FaultFunc) {
	b.mu.Lock()
	b.fault = fn
	b.mu.Unlock()
}

// refresh recomputes the memoized ranking and advisor surface when the
// monitor collected since, or simulated time moved (staleness
// discounts depend on it). Callers hold b.mu.
func (b *SimBackend) refresh() error {
	now := b.eng.Now()
	collections := b.mgr.Monitor().Collections()
	if b.ranking != nil && collections == b.epoch && now.Equal(b.cachedAt) {
		return nil
	}
	top, err := b.mgr.Optimizer().TopRegions(nil)
	if err != nil {
		return err
	}
	aged, err := b.mgr.Monitor().LatestAged()
	if err != nil {
		return err
	}
	b.ranking = top
	b.rankStr = b.rankStr[:0]
	for _, r := range top {
		b.rankStr = append(b.rankStr, string(r))
	}
	b.entries = b.entries[:0]
	for _, e := range aged {
		b.entries = append(b.entries, AdvisorEntry{
			Region:         string(e.Region),
			SpotPriceUSD:   e.SpotPriceUSD,
			OnDemandUSD:    e.OnDemandUSD,
			StabilityScore: e.StabilityScore,
			PlacementScore: e.PlacementScore,
			CombinedScore:  e.CombinedScore,
		})
	}
	b.epoch = b.mgr.Monitor().Collections()
	b.cachedAt = now
	return nil
}

// Place implements Backend. The warm path — ranking memoized, resp
// reused — allocates nothing.
//
//spotverse:hotpath
func (b *SimBackend) Place(ctx context.Context, req *PlaceRequest, resp *PlaceResponse) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fault != nil {
		if err := b.fault("Place", ""); err != nil {
			return err
		}
	}
	//spotverse:allow hotpath ranking rebuild is memoized per monitor epoch; warm requests return at the epoch check inside refresh
	if err := b.refresh(); err != nil {
		return err
	}
	count := req.placementCount()
	resp.WorkloadID = req.WorkloadID
	resp.Degraded = false
	resp.Placements = resp.Placements[:0]
	if len(b.ranking) == 0 {
		// No region clears the threshold: the on-demand fallback,
		// Algorithm 1's escape hatch.
		od, err := b.mgr.Optimizer().CheapestOnDemand()
		if err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			resp.Placements = append(resp.Placements, Placement{Region: string(od), Lifecycle: cloud.LifecycleOnDemand.String()})
		}
		return nil
	}
	for i := 0; i < count; i++ {
		region, ok := pickRegion(b.rankStr, req.Exclude, b.rr)
		if !ok {
			return fmt.Errorf("serve: exclusions cover all %d candidate regions", len(b.rankStr))
		}
		b.rr++
		resp.Placements = append(resp.Placements, Placement{Region: region, Lifecycle: cloud.LifecycleSpot.String()})
	}
	return nil
}

// Advisor implements Backend.
func (b *SimBackend) Advisor(ctx context.Context) (*AdvisorResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fault != nil {
		if err := b.fault("Advisor", ""); err != nil {
			return nil, err
		}
	}
	if err := b.refresh(); err != nil {
		return nil, err
	}
	return &AdvisorResponse{
		CollectedAt: b.cachedAt,
		Entries:     append([]AdvisorEntry(nil), b.entries...),
		Ranking:     append([]string(nil), b.rankStr...),
	}, nil
}

// Migrations implements Backend.
func (b *SimBackend) Migrations(ctx context.Context) (*MigrationsResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fault != nil {
		if err := b.fault("Migrations", ""); err != nil {
			return nil, err
		}
	}
	ctl := b.mgr.Controller()
	handled, failures, sweeps := ctl.Stats()
	recoveries, trips, skips := ctl.ResilienceStats()
	return &MigrationsResponse{
		Pending:      ctl.Pending(),
		Handled:      handled,
		Failures:     failures,
		Sweeps:       sweeps,
		Recoveries:   recoveries,
		BreakerTrips: trips,
		BreakerSkips: skips,
	}, nil
}

// Flush implements Flusher. The journal's writes are synchronous
// conditional DynamoDB puts — there is no buffered data to move — so
// the flush is a drain barrier: it serialises behind any in-flight
// backend call and counts that the barrier ran.
func (b *SimBackend) Flush(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushes++
	return nil
}

// Flushes reports how many drain barriers completed.
func (b *SimBackend) Flushes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}
