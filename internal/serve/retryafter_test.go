package serve

import (
	"testing"
	"time"
)

// TestRetryAfterSecondsRoundsUp pins the header semantics at the
// sub-second boundary: Retry-After is an integer-seconds header, so a
// projected wait of 250ms must render as 1, never truncate to 0 — a
// Retry-After of 0 tells well-behaved clients to hammer a server that
// is actively shedding.
func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-3 * time.Second, 1},
		{time.Nanosecond, 1},
		{250 * time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{59*time.Second + 400*time.Millisecond, 60},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
