package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// task is one unit of queued work: run is invoked by exactly one
// worker, with the request's context.
type task struct {
	ctx context.Context
	run func(ctx context.Context)
}

// Pool is a bounded worker pool: a fixed number of workers draining a
// fixed-capacity FIFO. Submission is non-blocking — a full queue is a
// refusal, never a stalled producer — and each task runs under panic
// isolation so one poisoned request cannot take a worker down.
type Pool struct {
	tasks chan task
	wg    sync.WaitGroup
	// closeMu serialises submission against Close so a late TrySubmit
	// can never send on a closed channel: submitters hold the read
	// side, Close holds the write side while closing.
	closeMu sync.RWMutex
	closed  bool
	panics  atomic.Uint64
	started atomic.Uint64
}

// NewPool starts workers goroutines over a queue of the given depth.
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{tasks: make(chan task, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.started.Add(1)
		p.safeRun(t)
	}
}

// safeRun isolates one task's panic: the worker records it and moves
// on. The task's run func is responsible for replying to its caller on
// every path, including panic (see Server.execute's recover).
func (p *Pool) safeRun(t task) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	t.run(t.ctx)
}

// TrySubmit enqueues a task without blocking; it reports false when the
// queue is full or the pool closed.
func (p *Pool) TrySubmit(t task) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- t:
		return true
	default:
		return false
	}
}

// Close stops the pool: no new tasks are accepted, queued tasks still
// run, and Close returns once every worker exited.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
}

// Panics reports how many tasks panicked (each isolated to its own
// request).
func (p *Pool) Panics() uint64 { return p.panics.Load() }
