package serve

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	in := []TraceEntry{
		{AtMS: 0, Endpoint: EndpointPlace, WorkloadID: "wl-1", Count: 2, Exclude: []string{"us-east-1"}},
		{AtMS: 5, Endpoint: EndpointAdvisor},
		{AtMS: 5, Endpoint: EndpointMigrations},
		{AtMS: 17, Endpoint: EndpointPlace, WorkloadID: "wl-2"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].AtMS != in[i].AtMS || out[i].Endpoint != in[i].Endpoint ||
			out[i].WorkloadID != in[i].WorkloadID || out[i].Count != in[i].Count {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n{\"at_ms\":1,\"endpoint\":\"place\"}\n  \n{\"at_ms\":2,\"endpoint\":\"advisor\"}\n"
	out, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(out))
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown endpoint": `{"at_ms":1,"endpoint":"teleport"}`,
		"negative at_ms":   `{"at_ms":-4,"endpoint":"place"}`,
		"unsorted": `{"at_ms":9,"endpoint":"place"}
{"at_ms":3,"endpoint":"place"}`,
		"not json": `at_ms=1 endpoint=place`,
	}
	for name, src := range cases {
		if _, err := ReadTrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, src)
		}
	}
}

func TestConfigNormalizedDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.Workers != DefaultWorkers || c.QueueDepth != DefaultQueueDepth ||
		c.RatePerSec != DefaultRatePerSec || c.Burst != 2*DefaultRatePerSec ||
		c.Deadline != DefaultDeadline || c.MaxEstimatedWait != DefaultDeadline/2 ||
		c.DrainDeadline != DefaultDrainDeadline || c.ServiceTime != DefaultServiceTime ||
		c.BreakerFailures != DefaultBreakerFailures || c.BreakerCooldown != DefaultBreakerCooldown {
		t.Fatalf("normalized defaults wrong: %+v", c)
	}
}

func TestEndpointCost(t *testing.T) {
	if EndpointCost(EndpointPlace) != CostPlace ||
		EndpointCost(EndpointAdvisor) != CostAdvisor ||
		EndpointCost(EndpointMigrations) != CostMigrations ||
		EndpointCost("mystery") != CostPlace {
		t.Fatal("endpoint cost mapping wrong")
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty percentile = %d, want 0", got)
	}
	xs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(xs, 50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := percentile(xs, 99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
}
