package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		for !p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {
			ran.Add(1)
			wg.Done()
		}}) {
		}
	}
	wg.Wait()
	p.Close()
	if got := ran.Load(); got != 8 {
		t.Fatalf("ran %d tasks, want 8", got)
	}
}

func TestPoolSubmitNeverBlocks(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	// Occupy the worker, then fill the queue.
	p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) { <-block }})
	for p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {}}) {
	}
	// Queue full: the refusal must be immediate (reaching here proves it
	// did not block).
	if p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {}}) {
		t.Fatal("submit into a full queue succeeded")
	}
	close(block)
	p.Close()
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(1, 2)
	var after atomic.Bool
	done := make(chan struct{})
	p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) { panic("poisoned request") }})
	p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {
		after.Store(true)
		close(done)
	}})
	<-done
	p.Close()
	if !after.Load() {
		t.Fatal("worker did not survive the panic")
	}
	if got := p.Panics(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
}

func TestPoolSubmitCloseRace(t *testing.T) {
	// Submitters racing Close must never panic (send on closed channel);
	// they either enqueue or are refused. Run with -race.
	p := NewPool(2, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {}})
			}
		}()
	}
	p.Close()
	wg.Wait()
	if !p.TrySubmit(task{ctx: context.Background(), run: func(context.Context) {}}) {
		return // closed pool refuses: correct
	}
	t.Fatal("submit after close succeeded")
}
