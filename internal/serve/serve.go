// Package serve is spotverse-serve's robustness boundary: a
// long-running placement service that stays correct and bounded under
// overload, backend brownouts, and shutdown.
//
// The request path is, in order:
//
//  1. drain gate — a draining server refuses new work with 503 and a
//     Retry-After, but keeps answering in-flight requests;
//  2. token-bucket rate limiter — sustained request rate above the
//     configured refill sheds with 429 + Retry-After;
//  3. admission controller — a queue-depth + estimated-cost load
//     controller that sheds with 429 + Retry-After *before* the queue
//     saturates (when the projected queueing delay for the new request
//     would exceed MaxEstimatedWait);
//  4. bounded worker pool — admitted requests wait in a FIFO of at most
//     QueueDepth entries for one of Workers workers;
//  5. per-request deadline — the request context carries a deadline
//     propagated into every backend call; a request whose deadline
//     expired while it queued is answered 504 without touching the
//     backend;
//  6. degraded mode — when the serve-level circuit breaker is open, or
//     a backend call fails, the response is a typed 503 built from the
//     cached advisor snapshot (best-effort placement included), never a
//     hang and never silence;
//  7. panic isolation — a panicking handler converts to a 500 for that
//     request alone; the worker and server survive.
//
// Every request therefore gets exactly one explicit outcome: an answer
// (200), a degraded answer (503), a shed (429/503+Retry-After), a
// deadline miss (504), or an isolated internal error (500).
//
// Determinism: the package takes time exclusively from an injected
// Clock. Live servers run on the wall clock (constructed in cmd/, the
// sanctioned edge); replay mode drives the identical gate logic on the
// simulation clock with virtual workers, so a recorded trace produces
// byte-stable outcomes at any -parallel setting (see replay.go).
package serve

import (
	"errors"
	"time"
)

// Clock abstracts time so the serving core never reads the wall clock
// directly: live servers inject a wall clock at the HTTP edge (cmd/),
// tests and replay inject the simulation engine.
type Clock interface {
	Now() time.Time
}

// Defaults for Config fields left zero.
const (
	DefaultWorkers       = 4
	DefaultQueueDepth    = 64
	DefaultRatePerSec    = 200.0
	DefaultDeadline      = 2 * time.Second
	DefaultDrainDeadline = 10 * time.Second
	DefaultServiceTime   = 25 * time.Millisecond
	// DefaultBreakerFailures trips the serve-level breaker after this
	// many consecutive backend failures.
	DefaultBreakerFailures = 4
	// DefaultBreakerCooldown is how long the serve breaker stays open
	// before letting a half-open probe through.
	DefaultBreakerCooldown = 5 * time.Second
	// MaxPlacementsPerRequest caps /v1/place batch size so one request
	// cannot ask for unbounded work.
	MaxPlacementsPerRequest = 32
)

// Endpoint cost weights: the admission controller's unit of estimated
// work. A placement consults the optimizer; advisor and migration reads
// are cheaper snapshot copies.
const (
	CostPlace      = 1.0
	CostAdvisor    = 0.25
	CostMigrations = 0.25
)

// Config parameterises a Server. The zero value gets defaults from
// normalized.
type Config struct {
	// Workers bounds backend concurrency (default DefaultWorkers).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker (default DefaultQueueDepth). The admission controller
	// never lets the queue grow past this.
	QueueDepth int
	// RatePerSec is the token bucket's refill rate in request-cost
	// units per second (default DefaultRatePerSec).
	RatePerSec float64
	// Burst is the token bucket's capacity (default 2*RatePerSec).
	Burst float64
	// Deadline is the per-request deadline propagated into backend
	// calls (default DefaultDeadline).
	Deadline time.Duration
	// MaxEstimatedWait sheds a request whose projected queueing delay
	// exceeds it (default Deadline/2), so the queue stops accepting
	// work it could not serve in time — shedding before saturation.
	MaxEstimatedWait time.Duration
	// DrainDeadline bounds how long Drain waits for in-flight requests
	// before aborting the stragglers (default DefaultDrainDeadline).
	DrainDeadline time.Duration
	// ServiceTime is the modeled per-unit-cost service duration used by
	// the admission controller's wait projection and by replay's
	// virtual workers (default DefaultServiceTime).
	ServiceTime time.Duration
	// BreakerFailures and BreakerCooldown tune the serve-level circuit
	// breaker guarding the backend.
	BreakerFailures int
	BreakerCooldown time.Duration
	// Clock supplies time. Required: a live server injects a wall
	// clock at the edge, replay injects the simulation engine.
	Clock Clock
	// Trace, when set, records every arriving request (admitted or
	// shed) for later replay.
	Trace TraceSink
	// OnDrain hooks run during Drain after in-flight requests settle
	// and the backend flushed — e.g. flushing a trace recorder.
	OnDrain []func() error
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.Deadline <= 0 {
		c.Deadline = DefaultDeadline
	}
	if c.MaxEstimatedWait <= 0 {
		c.MaxEstimatedWait = c.Deadline / 2
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = DefaultDrainDeadline
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = DefaultServiceTime
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = DefaultBreakerFailures
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// ErrNoClock rejects a Server built without a time source.
var ErrNoClock = errors.New("serve: Config.Clock is required")

// ErrDraining is returned by Submit paths once drain began.
var ErrDraining = errors.New("serve: draining")

// Status classifies a request's single explicit outcome.
type Status int

// Outcome statuses.
const (
	// StatusOK is a full answer from the live backend (HTTP 200).
	StatusOK Status = iota
	// StatusDegraded is a typed degraded answer served from the cached
	// advisor snapshot while the backend is unavailable (HTTP 503).
	StatusDegraded
	// StatusShed is an explicit refusal with Retry-After — rate limit,
	// admission control, or drain (HTTP 429; 503 while draining).
	StatusShed
	// StatusDeadline is a request whose deadline expired before it
	// could be served (HTTP 504).
	StatusDeadline
	// StatusError is an isolated internal failure — a handler panic or
	// a backend error with no cached snapshot to degrade onto (500).
	StatusError
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusShed:
		return "shed"
	case StatusDeadline:
		return "deadline"
	case StatusError:
		return "error"
	default:
		return "unknown"
	}
}

// Endpoint names, shared by the HTTP mux, trace format, and replay.
const (
	EndpointPlace      = "place"
	EndpointAdvisor    = "advisor"
	EndpointMigrations = "migrations"
)

// EndpointCost maps an endpoint to its admission cost weight; unknown
// endpoints weigh as a placement (the conservative reading).
func EndpointCost(endpoint string) float64 {
	switch endpoint {
	case EndpointAdvisor:
		return CostAdvisor
	case EndpointMigrations:
		return CostMigrations
	default:
		return CostPlace
	}
}
