package serve

import (
	"sync"
	"time"
)

// Admission is the load controller in front of the worker pool. It
// bounds two things:
//
//   - queue depth: at most maxQueue admitted-but-unstarted requests,
//     so the queue (and its memory) has a hard cap;
//   - estimated wait: a request is shed when the projected queueing
//     delay for it — queued work divided by worker capacity — would
//     exceed maxWait. This sheds *before* saturation: once the queue
//     holds more work than can drain inside the latency budget, new
//     arrivals are refused with an honest Retry-After instead of
//     joining a queue they would time out in.
//
// Admission hands out Tickets; a ticket transitions queued → inflight
// at service start and releases at completion, so the controller's
// picture of outstanding work matches the pool's.
type Admission struct {
	mu       sync.Mutex
	maxQueue int
	maxWait  time.Duration
	perUnit  time.Duration
	workers  int

	queued     int
	queuedCost float64
	inflight   int

	admitted  uint64
	shedQueue uint64 // refused: queue depth at cap
	shedWait  uint64 // refused: projected wait over budget
	highWater int

	// notify wakes AwaitIdle whenever outstanding work decreases.
	notify chan struct{}
}

// NewAdmission builds a controller for a pool of workers, each serving
// one cost unit per perUnit of time.
func NewAdmission(maxQueue int, maxWait, perUnit time.Duration, workers int) *Admission {
	if workers < 1 {
		workers = 1
	}
	return &Admission{
		maxQueue: maxQueue,
		maxWait:  maxWait,
		perUnit:  perUnit,
		workers:  workers,
		notify:   make(chan struct{}, 1),
	}
}

// Ticket is one admitted request's reservation. Exactly one of
// Cancel (never started) or Start-then-Done must be called.
type Ticket struct {
	a       *Admission
	cost    float64
	started bool
	done    bool
}

// projectedWait is the estimated queueing delay if work joined now.
// Callers hold a.mu.
func (a *Admission) projectedWait(extra float64) time.Duration {
	return time.Duration((a.queuedCost + extra) / float64(a.workers) * float64(a.perUnit))
}

// Admit decides whether a request of the given cost may join the
// queue. On refusal it reports the projected time for enough queued
// work to drain — the Retry-After a well-behaved client should honor.
func (a *Admission) Admit(cost float64) (t *Ticket, retryAfter time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	wait := a.projectedWait(cost)
	switch {
	case a.queued >= a.maxQueue:
		a.shedQueue++
	case wait > a.maxWait:
		a.shedWait++
	default:
		a.queued++
		a.queuedCost += cost
		a.admitted++
		if a.queued > a.highWater {
			a.highWater = a.queued
		}
		return &Ticket{a: a, cost: cost}, 0, true
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return nil, wait, false
}

// Start moves the ticket from queued to inflight (a worker picked the
// request up).
func (t *Ticket) Start() {
	if t == nil || t.started || t.done {
		return
	}
	t.started = true
	t.a.mu.Lock()
	t.a.queued--
	t.a.queuedCost -= t.cost
	t.a.inflight++
	t.a.mu.Unlock()
}

// Done releases an inflight ticket.
func (t *Ticket) Done() {
	if t == nil || t.done || !t.started {
		return
	}
	t.done = true
	t.a.mu.Lock()
	t.a.inflight--
	t.a.mu.Unlock()
	t.a.wake()
}

// Cancel releases a ticket that never reached a worker (queue abort).
func (t *Ticket) Cancel() {
	if t == nil || t.done || t.started {
		return
	}
	t.done = true
	t.a.mu.Lock()
	t.a.queued--
	t.a.queuedCost -= t.cost
	t.a.mu.Unlock()
	t.a.wake()
}

func (a *Admission) wake() {
	select {
	case a.notify <- struct{}{}:
	default:
	}
}

// Outstanding reports queued plus inflight requests.
func (a *Admission) Outstanding() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued + a.inflight
}

// AwaitIdle blocks until no work is queued or inflight, or done is
// closed/cancelled; it reports whether idle was reached.
func (a *Admission) AwaitIdle(done <-chan struct{}) bool {
	for {
		if a.Outstanding() == 0 {
			return true
		}
		select {
		case <-done:
			return a.Outstanding() == 0
		case <-a.notify:
		}
	}
}

// Stats reports admission counters: requests admitted, sheds by cause,
// and the queue-depth high-water mark (never above the configured cap).
func (a *Admission) Stats() (admitted, shedQueue, shedWait uint64, highWater int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.shedQueue, a.shedWait, a.highWater
}
