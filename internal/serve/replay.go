package serve

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"spotverse/internal/simclock"
)

// Replay drives a recorded request trace through the server's full
// gate pipeline — rate limiter, admission controller, queue, deadline,
// breaker, degrade — on the simulation clock, with virtual workers
// standing in for the live pool. The server must have been built with
// the engine as its Clock. Everything is sequential and virtual-timed,
// so a given (trace, config, seed) produces byte-stable outcomes: the
// deterministic substrate for overload and brownout tests.
//
// Virtual timing: each admitted request occupies one of Workers
// virtual workers for EndpointCost(endpoint) * ServiceTime of
// simulated time; queued requests start FIFO as workers free up. A
// request whose deadline expires before a worker reaches it is
// answered 504 without touching the backend — exactly the live path.
func (s *Server) Replay(eng *simclock.Engine, entries []TraceEntry, opts ReplayOptions) (*ReplaySummary, error) {
	if eng == nil {
		return nil, fmt.Errorf("serve: replay needs the simulation engine")
	}
	if any(s.clk) != any(eng) {
		return nil, fmt.Errorf("serve: replay server must use the engine as its clock")
	}
	start := eng.Now()
	r := &replayer{
		s:        s,
		eng:      eng,
		start:    start,
		workers:  s.cfg.Workers,
		outcomes: make([]replayOutcome, len(entries)),
	}
	ctx := context.Background()
	for i := range entries {
		e := &entries[i]
		at := start.Add(time.Duration(e.AtMS) * time.Millisecond)
		r.settle(at, false)
		if err := r.advance(at); err != nil {
			return nil, err
		}
		r.arrive(ctx, i, e, at)
	}
	r.settle(time.Time{}, true)
	return r.summary(opts, entries)
}

// ReplayOptions tunes replay output.
type ReplayOptions struct {
	// Out, when set, receives the summary rendering (and per-request
	// lines when Verbose).
	Out io.Writer
	// Verbose prints one line per request in arrival order.
	Verbose bool
}

// replayOutcome is one request's recorded result.
type replayOutcome struct {
	status    Status
	code      int
	latencyMS int64
	note      string
}

// completion is one virtual worker's in-progress request.
type completion struct {
	finish time.Time
	seq    uint64
	idx    int
	ticket *Ticket
	arrive time.Time
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if !h[i].finish.Equal(h[j].finish) {
		return h[i].finish.Before(h[j].finish)
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// queuedReq is one admitted request waiting for a virtual worker.
type queuedReq struct {
	idx     int
	entry   *TraceEntry
	arrival time.Time
	ticket  *Ticket
}

type replayer struct {
	s        *Server
	eng      *simclock.Engine
	start    time.Time
	workers  int
	seq      uint64
	busy     completionHeap
	fifo     []queuedReq
	outcomes []replayOutcome
}

// advance moves the simulation clock to t, firing scheduled events
// (monitor collections, chaos windows opening and closing) on the way.
func (r *replayer) advance(t time.Time) error {
	if !t.After(r.eng.Now()) {
		return nil
	}
	return r.eng.Run(t)
}

// settle processes virtual completions up to t (all of them when
// final), freeing workers and starting queued requests FIFO.
func (r *replayer) settle(t time.Time, final bool) {
	for len(r.busy) > 0 && (final || !r.busy[0].finish.After(t)) {
		c := heap.Pop(&r.busy).(completion)
		_ = r.advance(c.finish)
		c.ticket.Done()
		// The outcome was recorded at service start; completion only
		// releases the worker. Start queued requests until one sticks
		// (deadline-expired entries free the worker again immediately).
		for len(r.fifo) > 0 && len(r.busy) < r.workers {
			q := r.fifo[0]
			r.fifo = r.fifo[1:]
			if r.startService(q, c.finish) {
				break
			}
		}
	}
}

// record stores an outcome once; later writes to the same index are
// bugs and ignored.
func (r *replayer) record(idx int, st Status, code int, latencyMS int64, note string) {
	if r.outcomes[idx].code != 0 {
		return
	}
	if code == 0 {
		return
	}
	r.outcomes[idx] = replayOutcome{status: st, code: code, latencyMS: latencyMS, note: note}
}

// startService runs one admitted request on a freed virtual worker at
// sim time at; it reports whether the worker is now busy (false when
// the request's deadline had already expired and it was answered
// without service).
func (r *replayer) startService(q queuedReq, at time.Time) bool {
	_ = r.advance(at)
	q.ticket.Start()
	if at.Sub(q.arrival) > r.s.cfg.Deadline {
		q.ticket.Done()
		out := Outcome{Status: StatusDeadline, Code: 504}
		r.s.count(out)
		r.record(q.idx, StatusDeadline, 504, at.Sub(q.arrival).Milliseconds(), "deadline exceeded in queue")
		return false
	}
	req := &PlaceRequest{WorkloadID: q.entry.WorkloadID, Count: q.entry.Count, Exclude: q.entry.Exclude}
	out := r.s.process(context.Background(), q.entry.Endpoint, req)
	r.s.count(out)
	svc := time.Duration(EndpointCost(q.entry.Endpoint) * float64(r.s.cfg.ServiceTime))
	finish := at.Add(svc)
	r.seq++
	heap.Push(&r.busy, completion{finish: finish, seq: r.seq, idx: q.idx, ticket: q.ticket, arrive: q.arrival})
	r.record(q.idx, out.Status, out.Code, finish.Sub(q.arrival).Milliseconds(), out.Err)
	return true
}

// arrive pushes one trace entry through the gate at its arrival time.
func (r *replayer) arrive(_ context.Context, idx int, e *TraceEntry, at time.Time) {
	ticket, refusal, ok := r.s.gate(e.Endpoint, e.WorkloadID)
	if !ok {
		r.s.count(refusal)
		r.record(idx, refusal.Status, refusal.Code, 0, refusal.Err)
		return
	}
	q := queuedReq{idx: idx, entry: e, arrival: at, ticket: ticket}
	if len(r.busy) < r.workers && len(r.fifo) == 0 {
		if !r.startService(q, at) {
			return
		}
		return
	}
	r.fifo = append(r.fifo, q)
}

// ReplaySummary aggregates a replay's outcomes.
type ReplaySummary struct {
	Requests  int
	OK        int
	Degraded  int
	Shed      int
	Deadline  int
	Errors    int
	QueueHW   int
	QueueCap  int
	P50MS     int64
	P99MS     int64
	SimMS     int64
	Breakers  uint64
	ShedCause struct {
		Limiter   uint64
		Admission uint64
		Drain     uint64
	}
}

// Render writes the summary's fixed-format line (the thing smoke tests
// grep for) plus a breakdown block.
func (sum *ReplaySummary) Render(w io.Writer) {
	fmt.Fprintf(w, "replay: requests=%d ok=%d degraded=%d shed=%d deadline=%d error=%d queue_hw=%d/%d p50_ms=%d p99_ms=%d sim_ms=%d\n",
		sum.Requests, sum.OK, sum.Degraded, sum.Shed, sum.Deadline, sum.Errors,
		sum.QueueHW, sum.QueueCap, sum.P50MS, sum.P99MS, sum.SimMS)
	fmt.Fprintf(w, "  shed: limiter=%d admission=%d drain=%d breaker_trips=%d\n",
		sum.ShedCause.Limiter, sum.ShedCause.Admission, sum.ShedCause.Drain, sum.Breakers)
}

func (r *replayer) summary(opts ReplayOptions, entries []TraceEntry) (*ReplaySummary, error) {
	sum := &ReplaySummary{
		Requests: len(entries),
		QueueCap: r.s.cfg.QueueDepth,
		SimMS:    r.eng.Now().Sub(r.start).Milliseconds(),
		Breakers: r.s.brk.Trips(),
	}
	_, _, _, hw := r.s.adm.Stats()
	sum.QueueHW = hw
	stats := r.s.Stats()
	sum.ShedCause.Limiter = stats.ShedLimiter
	sum.ShedCause.Admission = stats.ShedAdmission
	sum.ShedCause.Drain = stats.ShedDrain
	answered := make([]int64, 0, len(entries))
	for i := range r.outcomes {
		o := &r.outcomes[i]
		switch o.status {
		case StatusOK:
			sum.OK++
			answered = append(answered, o.latencyMS)
		case StatusDegraded:
			sum.Degraded++
			answered = append(answered, o.latencyMS)
		case StatusShed:
			sum.Shed++
		case StatusDeadline:
			sum.Deadline++
		default:
			sum.Errors++
		}
	}
	sort.Slice(answered, func(i, j int) bool { return answered[i] < answered[j] })
	sum.P50MS = percentile(answered, 50)
	sum.P99MS = percentile(answered, 99)
	if opts.Out != nil {
		if opts.Verbose {
			for i := range r.outcomes {
				o := &r.outcomes[i]
				fmt.Fprintf(opts.Out, "#%05d at_ms=%d endpoint=%s status=%s code=%d latency_ms=%d %s\n",
					i, entries[i].AtMS, entries[i].Endpoint, o.status, o.code, o.latencyMS, o.note)
			}
		}
		sum.Render(opts.Out)
	}
	return sum, nil
}

// percentile returns the p-th percentile of sorted values (nearest
// rank), zero when empty.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
