package serve_test

import (
	"bytes"
	"testing"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/serve"
)

// soakConfig is the shared overload-replay configuration: 4 workers at
// 25ms per cost unit sustain ~160 cost units/s; the generated place-
// heavy trace at 600 QPS arrives at roughly 4x that, so the admission
// controller must shed hard while the chaos brownouts force the
// degraded path. Deadline is generous and MaxEstimatedWait small, so
// admitted requests always start inside their deadline: every outcome
// is OK, degraded, or shed.
func soakConfig(eng serve.Clock) serve.Config {
	return serve.Config{
		Workers:          4,
		QueueDepth:       32,
		RatePerSec:       100000, // limiter out of the way: admission is under test
		Deadline:         5 * time.Second,
		MaxEstimatedWait: 500 * time.Millisecond,
		ServiceTime:      25 * time.Millisecond,
		BreakerFailures:  4,
		BreakerCooldown:  2 * time.Second,
		Clock:            eng,
	}
}

// runSoak builds a fresh chaotic environment and replays the same
// generated trace through it, returning the rendered verbose output and
// the summary.
func runSoak(t *testing.T, seed int64, n int, qps float64, intensity chaos.Intensity) (string, *serve.ReplaySummary, serve.Stats) {
	t.Helper()
	sim, err := experiment.NewServeSim(seed, intensity)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(soakConfig(sim.Env.Engine), sim.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Warm(srv, 20); err != nil {
		t.Fatal(err)
	}
	trace := experiment.GenerateServeTrace(seed, n, qps)
	var buf bytes.Buffer
	sum, err := srv.Replay(sim.Env.Engine, trace, serve.ReplayOptions{Out: &buf, Verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), sum, srv.Stats()
}

func TestReplayByteStable(t *testing.T) {
	a, _, _ := runSoak(t, 7, 2000, 600, chaos.Medium)
	b, _, _ := runSoak(t, 7, 2000, 600, chaos.Medium)
	if a != b {
		t.Fatal("two replays of the same trace in fresh environments diverged")
	}
	c, _, _ := runSoak(t, 8, 2000, 600, chaos.Medium)
	if a == c {
		t.Fatal("different seeds produced identical replay output (suspicious)")
	}
}

func TestChaosSoakInvariants(t *testing.T) {
	// The acceptance soak: >=10k requests at ~4x the admission-
	// controlled service rate, brownouts included. Every request gets
	// exactly one outcome from {OK, degraded, shed}; the queue never
	// passes its cap; nothing panics.
	const n = 10000
	out, sum, stats := runSoak(t, 11, n, 600, chaos.Severe)
	if sum.Requests != n {
		t.Fatalf("requests = %d, want %d", sum.Requests, n)
	}
	if got := sum.OK + sum.Degraded + sum.Shed + sum.Deadline + sum.Errors; got != n {
		t.Fatalf("outcomes sum to %d, want %d (every request exactly one outcome)", got, n)
	}
	if sum.Deadline != 0 || sum.Errors != 0 {
		t.Fatalf("soak produced deadline=%d errors=%d, want outcomes only in {ok, degraded, shed}\n%s",
			sum.Deadline, sum.Errors, tail(out, 20))
	}
	if sum.OK == 0 || sum.Shed == 0 {
		t.Fatalf("degenerate soak: ok=%d shed=%d (overload should shed, survivors should answer)", sum.OK, sum.Shed)
	}
	if sum.Degraded == 0 {
		t.Fatal("severe brownouts produced no degraded responses: chaos is not reaching the backend")
	}
	if sum.QueueHW > sum.QueueCap {
		t.Fatalf("queue high-water %d exceeded cap %d", sum.QueueHW, sum.QueueCap)
	}
	if stats.Panics != 0 {
		t.Fatalf("panics = %d, want 0", stats.Panics)
	}
	// The server's own counters agree with the replay summary.
	if stats.Requests != uint64(n) || stats.OK != uint64(sum.OK) ||
		stats.Degraded != uint64(sum.Degraded) || stats.Shed != uint64(sum.Shed) {
		t.Fatalf("server stats %+v disagree with summary %+v", stats, sum)
	}
	if sum.Breakers == 0 {
		t.Fatal("severe soak never tripped the serve breaker")
	}
}

func TestChaosSoakRepeatable(t *testing.T) {
	_, a, _ := runSoak(t, 11, 3000, 600, chaos.Severe)
	_, b, _ := runSoak(t, 11, 3000, 600, chaos.Severe)
	if *a != *b {
		t.Fatalf("soak summaries diverged:\n%+v\n%+v", a, b)
	}
}

func TestReplayDeadlineInQueue(t *testing.T) {
	// With a deadline shorter than the admission wait budget, queued
	// requests can expire before a worker reaches them; they must be
	// answered 504 without touching the backend, and still counted.
	sim, err := experiment.NewServeSim(3, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	cfg := soakConfig(sim.Env.Engine)
	cfg.Deadline = 40 * time.Millisecond
	cfg.MaxEstimatedWait = 2 * time.Second // admission budget deliberately looser than the deadline
	srv, err := serve.New(cfg, sim.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Warm(srv, 20); err != nil {
		t.Fatal(err)
	}
	trace := experiment.GenerateServeTrace(3, 2000, 800)
	sum, err := srv.Replay(sim.Env.Engine, trace, serve.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Deadline == 0 {
		t.Fatal("no queued request expired despite deadline << queue wait")
	}
	if got := sum.OK + sum.Degraded + sum.Shed + sum.Deadline + sum.Errors; got != sum.Requests {
		t.Fatalf("outcomes sum to %d, want %d", got, sum.Requests)
	}
}

func TestReplayRequiresEngineClock(t *testing.T) {
	sim, err := experiment.NewServeSim(1, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Clock: fixedClock{}}, sim.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Replay(sim.Env.Engine, nil, serve.ReplayOptions{}); err == nil {
		t.Fatal("replay accepted a server whose clock is not the engine")
	}
}

type fixedClock struct{}

func (fixedClock) Now() time.Time { return time.Date(2024, 3, 4, 0, 0, 0, 0, time.UTC) }

// tail returns the last n lines of s for failure messages.
func tail(s string, n int) string {
	lines := bytes.Split([]byte(s), []byte("\n"))
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return string(bytes.Join(lines, []byte("\n")))
}
