package serve

import (
	"sync"
	"time"
)

// TokenBucket is a thread-safe token-bucket rate limiter over an
// injected clock. Tokens refill continuously at rate per second up to
// burst; a request consuming cost tokens is allowed when the bucket
// holds at least that many. Denials report how long until the bucket
// would hold enough, so callers can emit an honest Retry-After.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time

	allowed uint64
	denied  uint64
}

// NewTokenBucket builds a full bucket anchored at now.
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < rate {
		burst = rate
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// Allow consumes cost tokens if available. When denied it returns the
// duration until the bucket refills enough for this cost — never
// negative, and at least one millisecond so Retry-After rounds up to
// something a client can act on.
func (tb *TokenBucket) Allow(now time.Time, cost float64) (ok bool, retryAfter time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if elapsed := now.Sub(tb.last); elapsed > 0 {
		tb.tokens += elapsed.Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens >= cost {
		tb.tokens -= cost
		tb.allowed++
		return true, 0
	}
	tb.denied++
	wait := time.Duration((cost - tb.tokens) / tb.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Stats reports how many requests the bucket allowed and denied.
func (tb *TokenBucket) Stats() (allowed, denied uint64) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.allowed, tb.denied
}
