package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/serve"
)

// wallClock is the live-mode clock for tests (test binaries are outside
// the determinism lint's scope; production wall clocks live in cmd/).
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// newLiveServer deploys a chaos-free sim backend behind a live server
// on the wall clock.
func newLiveServer(t *testing.T, mutate func(*serve.Config)) (*serve.Server, *httptest.Server) {
	t.Helper()
	sim, err := experiment.NewServeSim(21, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{
		Workers:     4,
		QueueDepth:  16,
		RatePerSec:  10000,
		Deadline:    2 * time.Second,
		ServiceTime: time.Microsecond, // real backend calls are microseconds; keep projections honest
		Clock:       wallClock{},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := serve.New(cfg, sim.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Warm(srv, 3); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postPlace(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/place", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPPlace(t *testing.T) {
	_, ts := newLiveServer(t, nil)
	resp, body := postPlace(t, ts.URL, `{"workload_id":"wl-1","count":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var pr serve.PlaceResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.WorkloadID != "wl-1" || len(pr.Placements) != 3 || pr.Degraded {
		t.Fatalf("bad place response: %+v", pr)
	}
	for _, p := range pr.Placements {
		if p.Region == "" || p.Lifecycle == "" {
			t.Fatalf("placement missing fields: %+v", p)
		}
	}
}

func TestHTTPAdvisorAndMigrations(t *testing.T) {
	_, ts := newLiveServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/advisor")
	if err != nil {
		t.Fatal(err)
	}
	var adv serve.AdvisorResponse
	if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(adv.Entries) == 0 || len(adv.Ranking) == 0 || adv.Degraded {
		t.Fatalf("bad advisor response: status %d, %+v", resp.StatusCode, adv)
	}

	resp, err = http.Get(ts.URL + "/v1/migrations")
	if err != nil {
		t.Fatal(err)
	}
	var mig serve.MigrationsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mig); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrations status = %d", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newLiveServer(t, nil)
	// Wrong method on /v1/place.
	resp, err := http.Get(ts.URL + "/v1/place")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/place = %d, want 405", resp.StatusCode)
	}
	// Malformed JSON.
	resp2, body := postPlace(t, ts.URL, `{"count": nope}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d (%s), want 400", resp2.StatusCode, body)
	}
	// Unknown path.
	resp3, err := http.Get(ts.URL + "/v1/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp3.StatusCode)
	}
}

func TestHTTPHealthAndReady(t *testing.T) {
	srv, ts := newLiveServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !st.Ready {
		t.Fatalf("healthz status %d ready %v", resp.StatusCode, st.Ready)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	// After drain begins readyz flips to 503 with Retry-After.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining readyz = %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// New API requests are shed 503 while draining, but healthz still answers.
	resp4, _ := postPlace(t, ts.URL, `{}`)
	if resp4.StatusCode != http.StatusServiceUnavailable || resp4.Header.Get("Retry-After") == "" {
		t.Fatalf("draining place = %d, want 503 + Retry-After", resp4.StatusCode)
	}
	resp5, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", resp5.StatusCode)
	}
}

// panicBackend panics on a marked workload and otherwise delegates.
type panicBackend struct {
	serve.Backend
}

func (b *panicBackend) Place(ctx context.Context, req *serve.PlaceRequest, resp *serve.PlaceResponse) error {
	if req.WorkloadID == "poison" {
		panic("injected handler panic")
	}
	return b.Backend.Place(ctx, req, resp)
}

func TestHTTPPanicIsolation(t *testing.T) {
	sim, err := experiment.NewServeSim(5, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Workers: 2, Clock: wallClock{}}, &panicBackend{Backend: sim.Backend})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postPlace(t, ts.URL, `{"workload_id":"poison"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request = %d (%s), want 500", resp.StatusCode, body)
	}
	// The server survives and keeps answering.
	for i := 0; i < 3; i++ {
		resp, body := postPlace(t, ts.URL, fmt.Sprintf(`{"workload_id":"wl-%d"}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request after panic = %d (%s), want 200", resp.StatusCode, body)
		}
	}
	st := srv.Stats()
	if st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
	if st.Requests != st.OK+st.Degraded+st.Shed+st.Deadline+st.Errors {
		t.Fatalf("stats invariant broken after panic: %+v", st)
	}
}

func TestLiveConcurrentOverload(t *testing.T) {
	// Hammer a live server from many goroutines with a tiny queue: the
	// responses must all be explicit (200/429/503/504) and the counter
	// invariant must hold exactly. Run with -race.
	srv, ts := newLiveServer(t, func(c *serve.Config) {
		c.Workers = 2
		c.QueueDepth = 4
		c.RatePerSec = 500
		c.Burst = 50
		c.MaxEstimatedWait = 5 * time.Millisecond
		c.ServiceTime = 2 * time.Millisecond
	})
	const goroutines, perG = 16, 40
	codes := make(chan int, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, _ := postPlace(t, ts.URL, fmt.Sprintf(`{"workload_id":"g%d-%d"}`, g, i))
				codes <- resp.StatusCode
			}
		}(g)
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d under overload (counts %v)", code, counts)
		}
	}
	st := srv.Stats()
	if st.Requests != uint64(goroutines*perG) {
		t.Fatalf("requests = %d, want %d", st.Requests, goroutines*perG)
	}
	if st.Requests != st.OK+st.Degraded+st.Shed+st.Deadline+st.Errors {
		t.Fatalf("stats invariant broken: %+v", st)
	}
	if st.QueueHighWater > 4 {
		t.Fatalf("queue high-water %d exceeded cap 4", st.QueueHighWater)
	}
}

// slowBackend blocks Place until the request context dies. It embeds
// the concrete SimBackend so the Flusher extension stays visible
// through the wrapper.
type slowBackend struct {
	*serve.SimBackend
	entered chan struct{}
	once    sync.Once
}

func (b *slowBackend) Place(ctx context.Context, req *serve.PlaceRequest, resp *serve.PlaceResponse) error {
	b.once.Do(func() { close(b.entered) })
	<-ctx.Done()
	return ctx.Err()
}

func TestDrainGraceful(t *testing.T) {
	sim, err := experiment.NewServeSim(9, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	hookRan := false
	srv, err := serve.New(serve.Config{
		Clock:   wallClock{},
		OnDrain: []func() error{func() error { hookRan = true; return nil }},
	}, sim.Backend)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !hookRan {
		t.Fatal("OnDrain hook did not run")
	}
	if sim.Backend.Flushes() != 1 {
		t.Fatalf("flush barrier ran %d times, want 1", sim.Backend.Flushes())
	}
	// Idempotent: a second drain returns the same (nil) result.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain returned %v", err)
	}
	if sim.Backend.Flushes() != 1 {
		t.Fatal("second drain re-ran the flush barrier")
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	sim, err := experiment.NewServeSim(9, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	sb := &slowBackend{SimBackend: sim.Backend, entered: make(chan struct{})}
	srv, err := serve.New(serve.Config{
		Workers:  1,
		Deadline: 300 * time.Millisecond,
		Clock:    wallClock{},
	}, sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postPlace(t, ts.URL, `{"workload_id":"slow"}`)
		done <- resp.StatusCode
	}()
	<-sb.entered
	// Drain with a deadline longer than the request deadline: the
	// in-flight request resolves (via its own deadline -> degraded or
	// 504) and drain completes without ErrDrainTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with resolving in-flight request returned %v", err)
	}
	select {
	case code := <-done:
		if code != http.StatusGatewayTimeout && code != http.StatusServiceUnavailable {
			t.Fatalf("in-flight request answered %d, want 504 or degraded 503", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request never answered")
	}
	if sim.Backend.Flushes() != 1 {
		t.Fatalf("flush barrier ran %d times, want 1", sim.Backend.Flushes())
	}
}

func TestDrainDeadlineExceeded(t *testing.T) {
	sim, err := experiment.NewServeSim(9, chaos.Off)
	if err != nil {
		t.Fatal(err)
	}
	sb := &slowBackend{SimBackend: sim.Backend, entered: make(chan struct{})}
	srv, err := serve.New(serve.Config{
		Workers:  1,
		Deadline: 400 * time.Millisecond,
		Clock:    wallClock{},
	}, sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go func() {
		// Outcome checked elsewhere; this request only has to be in
		// flight when Drain starts (t.Fatal is off-limits off-test-goroutine).
		resp, err := http.Post(ts.URL+"/v1/place", "application/json", strings.NewReader(`{"workload_id":"slow"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-sb.entered
	// Drain deadline far shorter than the in-flight request: Drain
	// reports the timeout but still flushes and returns.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = srv.Drain(ctx)
	if !errors.Is(err, serve.ErrDrainTimeout) {
		t.Fatalf("drain error = %v, want ErrDrainTimeout", err)
	}
	if sim.Backend.Flushes() != 1 {
		t.Fatal("flush barrier skipped after drain timeout")
	}
}
