package serve

import (
	"sync"
	"time"
)

// breakerState mirrors the Controller's circuit-breaker lifecycle
// (internal/core/breaker.go), lifted to a thread-safe serve-level
// guard in front of the backend.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a concurrency-safe circuit breaker guarding the backend:
// consecutive failures trip it open, open requests short-circuit to
// the degraded path without touching the backend, and after the
// cooldown exactly one half-open probe is let through — its success
// closes the breaker, its failure re-trips, and concurrent requests
// during the probe keep degrading rather than dogpiling a backend
// that may still be down.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may reach the backend. An open breaker
// past its cooldown half-opens and admits a single probe; every other
// caller is refused until the probe resolves.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: only the in-flight probe may proceed
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful backend call, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure records a failed backend call: a half-open probe failure
// re-trips immediately, a closed breaker trips at the threshold.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.consecutive = 0
		b.probing = false
		b.trips++
	}
}

// Open reports whether the breaker currently refuses non-probe calls.
func (b *Breaker) Open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && now.Sub(b.openedAt) < b.cooldown
}

// Trips reports how many times the breaker opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// advisorCache is the degraded-mode data source: the last advisor
// snapshot and region ranking a healthy backend produced. While the
// backend is browned out the cache answers 503s with best-effort
// placements instead of nothing, and its age is reported so clients
// can judge the staleness themselves.
type advisorCache struct {
	mu      sync.RWMutex
	advisor *AdvisorResponse
	at      time.Time
	rr      uint64
}

// store refreshes the cache from a healthy advisor response.
func (c *advisorCache) store(resp *AdvisorResponse, now time.Time) {
	if resp == nil {
		return
	}
	cp := *resp
	cp.Entries = append([]AdvisorEntry(nil), resp.Entries...)
	cp.Ranking = append([]string(nil), resp.Ranking...)
	c.mu.Lock()
	c.advisor = &cp
	c.at = now
	c.mu.Unlock()
}

// snapshot returns the cached advisor response (shared, read-only) and
// its age; ok is false when nothing was ever cached.
func (c *advisorCache) snapshot(now time.Time) (resp *AdvisorResponse, age time.Duration, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.advisor == nil {
		return nil, 0, false
	}
	return c.advisor, now.Sub(c.at), true
}

// bestEffort builds a degraded placement from the cached ranking,
// round-robining across the cached top regions and honoring the
// request's exclusions. ok is false when no usable region is cached.
func (c *advisorCache) bestEffort(req *PlaceRequest, resp *PlaceResponse) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.advisor == nil || len(c.advisor.Ranking) == 0 {
		return false
	}
	ranking := c.advisor.Ranking
	count := req.placementCount()
	resp.WorkloadID = req.WorkloadID
	resp.Degraded = true
	resp.Placements = resp.Placements[:0]
	for i := 0; i < count; i++ {
		region, ok := pickRegion(ranking, req.Exclude, c.rr)
		if !ok {
			return false
		}
		c.rr++
		resp.Placements = append(resp.Placements, Placement{Region: region, Lifecycle: "spot"})
	}
	return true
}

// pickRegion selects the rr-th non-excluded region round-robin; ok is
// false when the exclusions cover the whole ranking.
func pickRegion(ranking []string, exclude []string, rr uint64) (string, bool) {
	n := uint64(len(ranking))
	for i := uint64(0); i < n; i++ {
		r := ranking[(rr+i)%n]
		if !containsString(exclude, r) {
			return r, true
		}
	}
	return "", false
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
