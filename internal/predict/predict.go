// Package predict implements the paper's future-work direction
// (Section 7): learning how interruption behaviour depends on the day
// and time of week, and using the learned model to steer placement.
//
// The Forecaster maintains a Bayesian estimate of each region's
// interruption hazard: a Gamma(alpha, beta) posterior over the hazard
// rate (events per exposure-hour), conjugate to the exponentially
// distributed interruption times, optionally refined per hour-of-week
// bucket. The Adaptive strategy places workloads on the regions with the
// lowest expected cost-to-complete — price divided by the survival
// probability of an attempt under the posterior-mean hazard — and keeps
// learning from every launch and interruption it observes.
package predict

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Errors returned by the package.
var (
	ErrNoRegions   = errors.New("predict: no candidate regions")
	ErrBadExposure = errors.New("predict: exposure must be positive")
)

// Buckets for the hour-of-week refinement: weekday-peak vs off-peak,
// matching the seasonality the market can generate.
const (
	bucketOffPeak = 0
	bucketPeak    = 1
	numBuckets    = 2
)

func bucketOf(at time.Time) int {
	if market.HourOfWeekFactor(at) > 1 {
		return bucketPeak
	}
	return bucketOffPeak
}

// Forecaster learns per-region (and per-bucket) interruption hazards.
type Forecaster struct {
	// prior pseudo-counts: alpha events over beta exposure-hours.
	priorAlpha float64
	priorBeta  float64

	alpha map[catalog.Region][numBuckets]float64
	beta  map[catalog.Region][numBuckets]float64
}

// NewForecaster returns a forecaster with a weakly-informative prior
// centred on priorHazard events/hour (pseudo-exposure priorWeight hours).
func NewForecaster(priorHazard, priorWeight float64) *Forecaster {
	if priorHazard <= 0 {
		priorHazard = 0.05
	}
	if priorWeight <= 0 {
		priorWeight = 20
	}
	return &Forecaster{
		priorAlpha: priorHazard * priorWeight,
		priorBeta:  priorWeight,
		alpha:      make(map[catalog.Region][numBuckets]float64),
		beta:       make(map[catalog.Region][numBuckets]float64),
	}
}

// Observe records an exposure interval in a region: hours of runtime and
// whether it ended in an interruption. at timestamps the interval's start
// for bucket attribution.
func (f *Forecaster) Observe(r catalog.Region, at time.Time, hours float64, interrupted bool) error {
	if hours <= 0 {
		return fmt.Errorf("%w: %v", ErrBadExposure, hours)
	}
	b := bucketOf(at)
	a := f.alpha[r]
	bb := f.beta[r]
	if interrupted {
		a[b]++
	}
	bb[b] += hours
	f.alpha[r] = a
	f.beta[r] = bb
	return nil
}

// Hazard returns the posterior-mean hazard (events/hour) for the region
// in the bucket containing at.
func (f *Forecaster) Hazard(r catalog.Region, at time.Time) float64 {
	b := bucketOf(at)
	return (f.priorAlpha + f.alpha[r][b]) / (f.priorBeta + f.beta[r][b])
}

// Observations reports total recorded interruptions and exposure hours
// for a region across buckets.
func (f *Forecaster) Observations(r catalog.Region) (interruptions float64, exposureHours float64) {
	a, b := f.alpha[r], f.beta[r]
	for i := 0; i < numBuckets; i++ {
		interruptions += a[i]
		exposureHours += b[i]
	}
	return interruptions, exposureHours
}

// Adaptive is a placement strategy that minimises expected
// cost-to-complete under the forecaster's hazard estimates. It explores
// with probability epsilon to keep estimates fresh across regions.
type Adaptive struct {
	eng *simclock.Engine
	mkt *market.Model
	t   catalog.InstanceType
	fc  *Forecaster
	rng *simclock.RNG

	// horizonHours is the assumed attempt length when scoring survival.
	horizonHours float64
	// epsilon is the exploration probability.
	epsilon float64
	// fanout is how many top regions initial placement spreads over.
	fanout int

	// lastStart tracks when each workload's current attempt began, and
	// where, so interruptions convert into labelled exposure.
	lastStart map[string]attempt
}

type attempt struct {
	region catalog.Region
	at     time.Time
}

var _ strategy.Strategy = (*Adaptive)(nil)

// Config tunes the adaptive strategy.
type Config struct {
	// HorizonHours is the assumed workload duration (default 10.5).
	HorizonHours float64
	// Epsilon is the exploration rate (default 0.05).
	Epsilon float64
	// Fanout is the initial spread width (default 4).
	Fanout int
	// PriorHazard and PriorWeight seed the forecaster (defaults 0.05/20).
	PriorHazard float64
	PriorWeight float64
	// Seed feeds exploration.
	Seed int64
}

// NewAdaptive builds the strategy over the live market's prices (it never
// reads the market's hazards or advisor scores — everything it knows
// about reliability it learns from its own observations).
func NewAdaptive(eng *simclock.Engine, mkt *market.Model, t catalog.InstanceType, cfg Config) (*Adaptive, error) {
	if _, err := mkt.Catalog().Spec(t); err != nil {
		return nil, err
	}
	if cfg.HorizonHours <= 0 {
		cfg.HorizonHours = 10.5
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.05
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	return &Adaptive{
		eng:          eng,
		mkt:          mkt,
		t:            t,
		fc:           NewForecaster(cfg.PriorHazard, cfg.PriorWeight),
		rng:          simclock.Stream(cfg.Seed, "predict/"+string(t)),
		horizonHours: cfg.HorizonHours,
		epsilon:      cfg.Epsilon,
		fanout:       cfg.Fanout,
		lastStart:    make(map[string]attempt),
	}, nil
}

// Forecaster exposes the learned model.
func (a *Adaptive) Forecaster() *Forecaster { return a.fc }

// Name implements strategy.Strategy.
func (a *Adaptive) Name() string { return "predictive" }

// score is the expected cost rate of running one attempt in r now:
// price × expected-attempts ≈ price × e^{hazard × horizon}.
func (a *Adaptive) score(r catalog.Region, at time.Time) (float64, error) {
	price, _, err := a.mkt.RegionSpotPrice(a.t, r, at)
	if err != nil {
		return 0, err
	}
	h := a.fc.Hazard(r, at)
	penalty := math.Exp(h * a.horizonHours)
	if penalty > 1e6 {
		penalty = 1e6
	}
	return price * penalty, nil
}

// ranked returns candidate regions ordered by ascending score.
func (a *Adaptive) ranked(exclude catalog.Region) ([]catalog.Region, error) {
	at := a.eng.Now()
	type cand struct {
		r catalog.Region
		s float64
	}
	var cands []cand
	for _, r := range a.mkt.Catalog().OfferedRegions(a.t) {
		if r == exclude {
			continue
		}
		s, err := a.score(r, at)
		if err != nil {
			return nil, err
		}
		cands = append(cands, cand{r, s})
	}
	if len(cands) == 0 {
		return nil, ErrNoRegions
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s < cands[j].s
		}
		return cands[i].r < cands[j].r
	})
	out := make([]catalog.Region, len(cands))
	for i, c := range cands {
		out[i] = c.r
	}
	return out, nil
}

// PlaceInitial spreads workloads round-robin over the fanout best
// regions by expected cost.
func (a *Adaptive) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	regions, err := a.ranked("")
	if err != nil {
		return nil, err
	}
	n := a.fanout
	if n > len(regions) {
		n = len(regions)
	}
	top := regions[:n]
	out := make(map[string]strategy.Placement, len(ids))
	for i, id := range ids {
		r := top[i%len(top)]
		if a.rng.Bool(a.epsilon) {
			r = simclock.Pick(a.rng, regions)
		}
		out[id] = strategy.Placement{Region: r, Lifecycle: cloud.LifecycleSpot}
		a.lastStart[id] = attempt{region: r, at: a.eng.Now()}
	}
	return out, nil
}

// OnInterrupted learns from the failure and relaunches in the best (or
// an exploratory) region.
func (a *Adaptive) OnInterrupted(id string, current catalog.Region, relaunch strategy.RelaunchFunc) error {
	now := a.eng.Now()
	if att, ok := a.lastStart[id]; ok {
		hours := now.Sub(att.at).Hours()
		if hours > 0 {
			_ = a.fc.Observe(att.region, att.at, hours, true)
		}
	}
	regions, err := a.ranked(current)
	if err != nil {
		return err
	}
	r := regions[0]
	if a.rng.Bool(a.epsilon) {
		r = simclock.Pick(a.rng, regions)
	}
	a.lastStart[id] = attempt{region: r, at: now}
	relaunch(strategy.Placement{Region: r, Lifecycle: cloud.LifecycleSpot})
	return nil
}

// OnCompleted lets callers feed successful exposure back into the
// forecaster (the experiment harness is not required to call it; the
// strategy still learns from interruptions alone, just more slowly).
func (a *Adaptive) OnCompleted(id string) {
	att, ok := a.lastStart[id]
	if !ok {
		return
	}
	hours := a.eng.Now().Sub(att.at).Hours()
	if hours > 0 {
		_ = a.fc.Observe(att.region, att.at, hours, false)
	}
	delete(a.lastStart, id)
}
