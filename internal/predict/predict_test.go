package predict

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

func TestForecasterPriorDominatesInitially(t *testing.T) {
	f := NewForecaster(0.05, 20)
	h := f.Hazard("ca-central-1", simclock.Epoch)
	if h < 0.049 || h > 0.051 {
		t.Fatalf("prior hazard = %v, want ~0.05", h)
	}
}

func TestForecasterLearnsHighHazard(t *testing.T) {
	f := NewForecaster(0.05, 20)
	at := simclock.Epoch
	// 30 interruptions over 150 exposure-hours -> hazard ~0.2.
	for i := 0; i < 30; i++ {
		if err := f.Observe("ca-central-1", at, 5, true); err != nil {
			t.Fatal(err)
		}
	}
	h := f.Hazard("ca-central-1", at)
	if h < 0.12 || h > 0.25 {
		t.Fatalf("learned hazard = %v, want near 0.2", h)
	}
	// Unobserved region stays at prior.
	if got := f.Hazard("eu-north-1", at); got < 0.049 || got > 0.051 {
		t.Fatalf("unobserved region drifted: %v", got)
	}
}

func TestForecasterLearnsLowHazard(t *testing.T) {
	f := NewForecaster(0.05, 20)
	at := simclock.Epoch
	for i := 0; i < 40; i++ {
		if err := f.Observe("eu-north-1", at, 10, false); err != nil {
			t.Fatal(err)
		}
	}
	h := f.Hazard("eu-north-1", at)
	if h > 0.01 {
		t.Fatalf("hazard = %v after 400 clean hours, want < 0.01", h)
	}
}

func TestForecasterBucketsSeparate(t *testing.T) {
	f := NewForecaster(0.05, 5)
	// Epoch is Monday 00:00 UTC: off-peak. Monday 15:00 UTC: peak.
	offPeak := simclock.Epoch
	peak := simclock.Epoch.Add(15 * time.Hour)
	if bucketOf(offPeak) == bucketOf(peak) {
		t.Fatal("bucketing broken")
	}
	for i := 0; i < 20; i++ {
		_ = f.Observe("us-east-1", peak, 2, true)
		_ = f.Observe("us-east-1", offPeak, 2, false)
	}
	if hp, ho := f.Hazard("us-east-1", peak), f.Hazard("us-east-1", offPeak); hp <= ho {
		t.Fatalf("peak hazard %v <= off-peak %v", hp, ho)
	}
}

func TestForecasterRejectsBadExposure(t *testing.T) {
	f := NewForecaster(0, 0)
	if err := f.Observe("x", simclock.Epoch, 0, true); !errors.Is(err, ErrBadExposure) {
		t.Fatalf("err = %v", err)
	}
}

func TestObservationsAggregate(t *testing.T) {
	f := NewForecaster(0.05, 20)
	_ = f.Observe("r", simclock.Epoch, 3, true)
	_ = f.Observe("r", simclock.Epoch.Add(15*time.Hour), 7, false)
	intr, exp := f.Observations("r")
	if intr != 1 || exp != 10 {
		t.Fatalf("observations = %v/%v", intr, exp)
	}
}

func newAdaptive(t *testing.T) (*simclock.Engine, *Adaptive) {
	t.Helper()
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), 42, simclock.Epoch)
	a, err := NewAdaptive(eng, mkt, catalog.M5XLarge, Config{Seed: 1, Epsilon: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	return eng, a
}

func TestAdaptivePlaceInitialSpreads(t *testing.T) {
	_, a := newAdaptive(t)
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	placements, err := a.PlaceInitial(ids)
	if err != nil {
		t.Fatal(err)
	}
	regions := map[catalog.Region]int{}
	for _, p := range placements {
		regions[p.Region]++
	}
	if len(regions) != 4 {
		t.Fatalf("spread over %d regions, want 4", len(regions))
	}
}

func TestAdaptiveAvoidsRegionAfterInterruptions(t *testing.T) {
	eng, a := newAdaptive(t)
	// Before learning, ca-central-1 (cheapest) ranks first.
	first, err := a.ranked("")
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != "ca-central-1" {
		t.Skipf("cheapest at epoch is %s", first[0])
	}
	// Feed it a stream of fast interruptions.
	for i := 0; i < 15; i++ {
		a.lastStart["w"] = attempt{region: "ca-central-1", at: eng.Now()}
		_ = eng.RunFor(2 * time.Hour)
		var relaunched strategy.Placement
		if err := a.OnInterrupted("w", "ca-central-1", func(p strategy.Placement) { relaunched = p }); err != nil {
			t.Fatal(err)
		}
		if relaunched.Region == "ca-central-1" {
			t.Fatal("relaunched into the excluded region")
		}
	}
	after, err := a.ranked("")
	if err != nil {
		t.Fatal(err)
	}
	if after[0] == "ca-central-1" {
		t.Fatalf("still ranks ca-central-1 first after 15 interruptions (hazard %v)",
			a.Forecaster().Hazard("ca-central-1", eng.Now()))
	}
}

func TestAdaptiveOnCompletedFeedsSurvival(t *testing.T) {
	eng, a := newAdaptive(t)
	a.lastStart["w"] = attempt{region: "eu-north-1", at: eng.Now()}
	_ = eng.RunFor(10 * time.Hour)
	a.OnCompleted("w")
	intr, exp := a.Forecaster().Observations("eu-north-1")
	if intr != 0 || exp != 10 {
		t.Fatalf("observations = %v/%v", intr, exp)
	}
	// Second OnCompleted for the same id is a no-op.
	a.OnCompleted("w")
	_, exp2 := a.Forecaster().Observations("eu-north-1")
	if exp2 != 10 {
		t.Fatalf("double-complete added exposure: %v", exp2)
	}
}

func TestAdaptiveUnknownType(t *testing.T) {
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), 1, simclock.Epoch)
	if _, err := NewAdaptive(eng, mkt, "z9.mega", Config{}); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestSeasonalFactorMeanOne(t *testing.T) {
	var sum float64
	start := simclock.Epoch // Monday 00:00 UTC
	for h := 0; h < 168; h++ {
		sum += market.HourOfWeekFactor(start.Add(time.Duration(h) * time.Hour))
	}
	mean := sum / 168
	if mean < 0.999 || mean > 1.001 {
		t.Fatalf("weekly mean factor = %v, want 1", mean)
	}
}

func TestSeasonalityOffByDefault(t *testing.T) {
	mkt := market.New(catalog.Default(), 1, simclock.Epoch)
	if mkt.SeasonalityEnabled() {
		t.Fatal("seasonality should default off")
	}
	peak := simclock.Epoch.Add(15 * time.Hour)
	if f := mkt.SeasonalFactor(peak); f != 1 {
		t.Fatalf("factor = %v with seasonality off", f)
	}
	mkt.EnableSeasonality()
	if f := mkt.SeasonalFactor(peak); f <= 1 {
		t.Fatalf("peak factor = %v, want > 1", f)
	}
	base, err := mkt.HazardPerHour(catalog.M5XLarge, "ca-central-1", peak)
	if err != nil {
		t.Fatal(err)
	}
	seasonal, err := mkt.SeasonalHazardPerHour(catalog.M5XLarge, "ca-central-1", peak)
	if err != nil {
		t.Fatal(err)
	}
	if seasonal <= base {
		t.Fatalf("seasonal %v <= base %v at peak", seasonal, base)
	}
}
