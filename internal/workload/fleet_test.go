package workload

import (
	"testing"
	"time"

	"spotverse/internal/simclock"
)

// TestGenerateFleetMatchesGenerate pins the RNG contract: a fleet and a
// per-workload set built from the same seed must describe identical
// specs, for both kinds.
func TestGenerateFleetMatchesGenerate(t *testing.T) {
	for _, kind := range []Kind{KindStandard, KindCheckpoint} {
		opts := GenOptions{Kind: kind, Count: 25}
		states, err := Generate(simclock.Stream(7, "wl"), opts)
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := GenerateFleet(simclock.Stream(7, "wl"), opts)
		if err != nil {
			t.Fatal(err)
		}
		if fleet.Len() != len(states) {
			t.Fatalf("%v: fleet len %d, want %d", kind, fleet.Len(), len(states))
		}
		for i, st := range states {
			if got, want := fleet.Spec(i), st.Spec; got != want {
				t.Fatalf("%v: spec[%d] = %+v, want %+v", kind, i, got, want)
			}
		}
	}
}

// TestFleetStateMirrorsState drives a FleetState and the equivalent
// *State values through the same scripted attempt/interrupt/complete
// sequence and asserts every observable agrees at every step.
func TestFleetStateMirrorsState(t *testing.T) {
	opts := GenOptions{Kind: KindCheckpoint, Count: 8, Shards: 10}
	states, err := Generate(simclock.Stream(11, "wl"), opts)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := GenerateFleet(simclock.Stream(11, "wl"), opts)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		for i, st := range states {
			if got, want := fleet.Remaining(i), st.Remaining(); got != want {
				t.Fatalf("%s: Remaining[%d] = %v, want %v", step, i, got, want)
			}
			if got, want := fleet.AttemptDuration(i), st.AttemptDuration(); got != want {
				t.Fatalf("%s: AttemptDuration[%d] = %v, want %v", step, i, got, want)
			}
			if got, want := int(fleet.ShardsDone[i]), st.ShardsDone; got != want {
				t.Fatalf("%s: ShardsDone[%d] = %d, want %d", step, i, got, want)
			}
			if got, want := int(fleet.Interruptions[i]), st.Interruptions; got != want {
				t.Fatalf("%s: Interruptions[%d] = %d, want %d", step, i, got, want)
			}
			if got, want := int(fleet.Recomputed[i]), st.Recomputed; got != want {
				t.Fatalf("%s: Recomputed[%d] = %d, want %d", step, i, got, want)
			}
			if got, want := fleet.Completed[i], st.Completed; got != want {
				t.Fatalf("%s: Completed[%d] = %v, want %v", step, i, got, want)
			}
		}
	}

	check("fresh")
	for i, st := range states {
		if err := st.BeginAttempt(); err != nil {
			t.Fatal(err)
		}
		if err := fleet.BeginAttempt(i); err != nil {
			t.Fatal(err)
		}
	}
	check("after first attempt")

	// Interrupt each workload partway: enough elapsed compute for a few
	// shards, varied per index.
	for i, st := range states {
		elapsed := time.Duration(i+1) * st.Spec.ShardDuration()
		a := st.CreditProgress(elapsed)
		b := fleet.CreditProgress(i, elapsed)
		if a != b {
			t.Fatalf("CreditProgress[%d] banked %d (fleet) vs %d (state)", i, b, a)
		}
	}
	check("after interruption")

	// Resumed attempt: resume overhead applies now (Attempts > 0 / > 1).
	for i, st := range states {
		if err := st.BeginAttempt(); err != nil {
			t.Fatal(err)
		}
		if err := fleet.BeginAttempt(i); err != nil {
			t.Fatal(err)
		}
		// ShardsAt preview must agree, including the overhead deduction.
		elapsed := st.Spec.ResumeOverhead + 2*st.Spec.ShardDuration() + time.Minute
		if a, b := st.ShardsAt(elapsed), fleet.ShardsAt(i, elapsed); a != b {
			t.Fatalf("ShardsAt[%d] = %d (fleet %d)", i, a, b)
		}
	}
	check("after resume")

	// Roll back a shard on the even indices (lost checkpoint).
	for i, st := range states {
		if i%2 == 0 {
			st.DropShards(1)
			fleet.DropShards(i, 1)
		}
	}
	check("after drop")

	// Complete everything and verify completion invariants.
	at := simclock.Epoch.Add(13 * time.Hour)
	for i, st := range states {
		if err := st.MarkComplete(at); err != nil {
			t.Fatal(err)
		}
		if err := fleet.MarkComplete(i, at); err != nil {
			t.Fatal(err)
		}
	}
	check("after completion")
	for i := range states {
		if got := fleet.CompletedAtNanos[i]; got != at.UnixNano() {
			t.Fatalf("CompletedAtNanos[%d] = %d, want %d", i, got, at.UnixNano())
		}
		if err := fleet.MarkComplete(i, at); err == nil {
			t.Fatal("double MarkComplete succeeded")
		}
		if err := fleet.BeginAttempt(i); err == nil {
			t.Fatal("BeginAttempt after completion succeeded")
		}
	}
	if got, want := fleet.CheckpointBytes(), states[0].CheckpointBytes(); got != want {
		t.Fatalf("CheckpointBytes = %d, want %d", got, want)
	}
}

func TestGenerateFleetRejectsBadCount(t *testing.T) {
	if _, err := GenerateFleet(simclock.Stream(1, "wl"), GenOptions{Kind: KindStandard, Count: 0}); err == nil {
		t.Fatal("count 0 accepted")
	}
}

func TestFleetIDsMatchGenerate(t *testing.T) {
	states, err := Generate(simclock.Stream(3, "wl"), GenOptions{Kind: KindStandard, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := GenerateFleet(simclock.Stream(3, "wl"), GenOptions{Kind: KindStandard, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		if got := fleet.ID(i); got != st.Spec.ID {
			t.Fatalf("ID(%d) = %q, want %q", i, got, st.Spec.ID)
		}
	}
}
