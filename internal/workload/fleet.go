package workload

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/simclock"
)

// FleetState is the struct-of-arrays counterpart of []*State for
// fleet-scale runs. A 100k-workload fleet as individual *State values
// costs one allocation, one ID string, and a copy of the mostly-uniform
// Spec per workload, and every access chases a pointer the GC must
// scan. FleetState keeps the uniform spec fields once and the
// per-workload progress counters in parallel slices indexed by dense
// workload index, so the whole fleet is a handful of flat allocations
// with no interior pointers.
//
// Per-index methods mirror State's semantics exactly — the experiment
// fleet driver must be bit-identical to the per-workload path.
type FleetState struct {
	// Uniform spec header, shared by every workload in the fleet.
	Kind           Kind
	Shards         int
	DatasetBytes   int64
	ResumeOverhead time.Duration
	IDPrefix       string

	// Base is the global index of column slot 0. It is zero for a fleet
	// built by GenerateFleet and non-zero for Shard views, whose IDs
	// must keep their fleet-global index.
	Base int

	// Per-workload columns, indexed by dense workload index.
	Durations     []time.Duration
	ShardsDone    []int32
	Attempts      []int32
	Interruptions []int32
	Recomputed    []int32
	Completed     []bool
	// CompletedAtNanos is UnixNano of completion; meaningful only when
	// Completed[i].
	CompletedAtNanos []int64
}

// Len reports the fleet size.
func (f *FleetState) Len() int { return len(f.Durations) }

// ID materializes workload i's identifier on demand; the fleet retains
// no ID strings. The format is "<prefix>-<index>" with the index
// zero-padded to at least three digits (what %03d renders).
func (f *FleetState) ID(i int) string {
	return string(f.AppendID(nil, i))
}

// AppendID appends workload i's identifier to dst and returns the
// extended slice. Per-shard drivers format IDs into reused buffers on
// their hot loop; with capacity present this does not allocate.
//
//spotverse:hotpath
func (f *FleetState) AppendID(dst []byte, i int) []byte {
	dst = append(dst, f.IDPrefix...)
	dst = append(dst, '-')
	return appendPadded(dst, f.Base+i, 3)
}

// appendPadded appends n in decimal, zero-padded to at least width
// digits — the byte sequence fmt's %0*d renders for non-negative n.
//
//spotverse:hotpath
func appendPadded(dst []byte, n, width int) []byte {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for len(buf)-i < width {
		i--
		buf[i] = '0'
	}
	return append(dst, buf[i:]...)
}

// ShardBounds returns the half-open bounds [lo, hi) of shard k when n
// workloads are split into count contiguous shards: base size n/count,
// with the first n%count shards taking one extra. Shards beyond the
// workload count come back empty (lo == hi).
func ShardBounds(n, count, k int) (lo, hi int) {
	base := n / count
	extra := n % count
	lo = k*base + min(k, extra)
	hi = lo + base
	if k < extra {
		hi++
	}
	return lo, hi
}

// Shard returns a view of workloads [lo, hi). The view's columns alias
// the parent's backing arrays — disjoint shards touch disjoint memory,
// so concurrent shard drivers are race-free and mutations through a
// view land directly in the parent — and Base keeps IDs on their
// fleet-global index.
func (f *FleetState) Shard(lo, hi int) *FleetState {
	return &FleetState{
		Kind:             f.Kind,
		Shards:           f.Shards,
		DatasetBytes:     f.DatasetBytes,
		ResumeOverhead:   f.ResumeOverhead,
		IDPrefix:         f.IDPrefix,
		Base:             f.Base + lo,
		Durations:        f.Durations[lo:hi:hi],
		ShardsDone:       f.ShardsDone[lo:hi:hi],
		Attempts:         f.Attempts[lo:hi:hi],
		Interruptions:    f.Interruptions[lo:hi:hi],
		Recomputed:       f.Recomputed[lo:hi:hi],
		Completed:        f.Completed[lo:hi:hi],
		CompletedAtNanos: f.CompletedAtNanos[lo:hi:hi],
	}
}

// Spec materializes workload i's full Spec, for interop with code that
// wants the per-workload representation.
func (f *FleetState) Spec(i int) Spec {
	return Spec{
		ID:             f.ID(i),
		Kind:           f.Kind,
		Duration:       f.Durations[i],
		Shards:         f.Shards,
		DatasetBytes:   f.DatasetBytes,
		ResumeOverhead: f.ResumeOverhead,
	}
}

// ShardDuration is the compute time per shard of workload i.
func (f *FleetState) ShardDuration(i int) time.Duration {
	n := f.Shards
	if f.Kind != KindCheckpoint || n < 1 {
		n = 1
	}
	return f.Durations[i] / time.Duration(n)
}

// Remaining is the compute time workload i still needs, excluding
// resume overhead.
func (f *FleetState) Remaining(i int) time.Duration {
	if f.Completed[i] {
		return 0
	}
	if f.Kind == KindCheckpoint {
		left := f.Shards - int(f.ShardsDone[i])
		return time.Duration(left) * f.ShardDuration(i)
	}
	return f.Durations[i]
}

// AttemptDuration is the time workload i's next attempt needs:
// remaining work plus resume overhead on resumed checkpoint attempts.
func (f *FleetState) AttemptDuration(i int) time.Duration {
	d := f.Remaining(i)
	if f.Kind == KindCheckpoint && f.Attempts[i] > 0 {
		d += f.ResumeOverhead
	}
	return d
}

// BeginAttempt records an instance launch for workload i.
func (f *FleetState) BeginAttempt(i int) error {
	if f.Completed[i] {
		return fmt.Errorf("workload %q: %w", f.ID(i), ErrCompleted)
	}
	f.Attempts[i]++
	return nil
}

// ShardsAt previews how many whole shards workload i's current attempt
// has finished after elapsed compute time, without mutating state.
func (f *FleetState) ShardsAt(i int, elapsed time.Duration) int {
	if f.Kind != KindCheckpoint || elapsed <= 0 {
		return 0
	}
	if f.Attempts[i] > 1 {
		elapsed -= f.ResumeOverhead
		if elapsed < 0 {
			elapsed = 0
		}
	}
	banked := int(elapsed / f.ShardDuration(i))
	if maxLeft := f.Shards - int(f.ShardsDone[i]); banked > maxLeft {
		banked = maxLeft
	}
	return banked
}

// CreditProgress accounts an interrupted attempt of workload i that
// computed for elapsed time, returning the newly banked shard count.
func (f *FleetState) CreditProgress(i int, elapsed time.Duration) int {
	f.Interruptions[i]++
	banked := f.ShardsAt(i, elapsed)
	f.ShardsDone[i] += int32(banked)
	return banked
}

// DropShards rolls back n banked shards of workload i.
func (f *FleetState) DropShards(i, n int) {
	if f.Completed[i] || n <= 0 {
		return
	}
	if n > int(f.ShardsDone[i]) {
		n = int(f.ShardsDone[i])
	}
	f.ShardsDone[i] -= int32(n)
	f.Recomputed[i] += int32(n)
}

// MarkComplete finalises workload i.
func (f *FleetState) MarkComplete(i int, at time.Time) error {
	if f.Completed[i] {
		return fmt.Errorf("workload %q: %w", f.ID(i), ErrCompleted)
	}
	f.Completed[i] = true
	f.CompletedAtNanos[i] = at.UnixNano()
	if f.Kind == KindCheckpoint {
		f.ShardsDone[i] = int32(f.Shards)
	}
	return nil
}

// CheckpointBytes is the data volume per checkpoint upload, uniform
// across the fleet.
func (f *FleetState) CheckpointBytes() int64 {
	if f.Kind != KindCheckpoint || f.Shards == 0 {
		return 0
	}
	return f.DatasetBytes / int64(f.Shards)
}

// GenerateFleet builds a reproducible fleet. It consumes the RNG
// stream exactly as Generate does — one Float64 per workload whenever
// the duration range is non-degenerate — so a fleet and a []*State set
// generated from the same seed describe identical workloads.
func GenerateFleet(rng *simclock.RNG, opts GenOptions) (*FleetState, error) {
	if opts.Count <= 0 {
		return nil, errors.New("workload: count must be positive")
	}
	opts = opts.normalized()
	shards := 1
	if opts.Kind == KindCheckpoint {
		shards = opts.Shards
	}
	f := &FleetState{
		Kind:             opts.Kind,
		Shards:           shards,
		DatasetBytes:     opts.DatasetBytes,
		ResumeOverhead:   opts.ResumeOverhead,
		IDPrefix:         opts.IDPrefix,
		Durations:        make([]time.Duration, opts.Count),
		ShardsDone:       make([]int32, opts.Count),
		Attempts:         make([]int32, opts.Count),
		Interruptions:    make([]int32, opts.Count),
		Recomputed:       make([]int32, opts.Count),
		Completed:        make([]bool, opts.Count),
		CompletedAtNanos: make([]int64, opts.Count),
	}
	for i := 0; i < opts.Count; i++ {
		dur := opts.MinDuration
		if opts.MaxDuration > opts.MinDuration {
			span := opts.MaxDuration - opts.MinDuration
			dur += time.Duration(rng.Float64() * float64(span))
		}
		f.Durations[i] = dur
		// The checks are Spec.Validate's, inlined so the happy path does
		// not materialize an ID string per workload; the error path
		// reproduces Validate's exact error.
		if dur <= 0 || (f.Kind == KindCheckpoint && f.Shards < 2) {
			return nil, f.Spec(i).Validate()
		}
	}
	return f, nil
}
