package workload

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/simclock"
)

// FleetState is the struct-of-arrays counterpart of []*State for
// fleet-scale runs. A 100k-workload fleet as individual *State values
// costs one allocation, one ID string, and a copy of the mostly-uniform
// Spec per workload, and every access chases a pointer the GC must
// scan. FleetState keeps the uniform spec fields once and the
// per-workload progress counters in parallel slices indexed by dense
// workload index, so the whole fleet is a handful of flat allocations
// with no interior pointers.
//
// Per-index methods mirror State's semantics exactly — the experiment
// fleet driver must be bit-identical to the per-workload path.
type FleetState struct {
	// Uniform spec header, shared by every workload in the fleet.
	Kind           Kind
	Shards         int
	DatasetBytes   int64
	ResumeOverhead time.Duration
	IDPrefix       string

	// Per-workload columns, indexed by dense workload index.
	Durations     []time.Duration
	ShardsDone    []int32
	Attempts      []int32
	Interruptions []int32
	Recomputed    []int32
	Completed     []bool
	// CompletedAtNanos is UnixNano of completion; meaningful only when
	// Completed[i].
	CompletedAtNanos []int64
}

// Len reports the fleet size.
func (f *FleetState) Len() int { return len(f.Durations) }

// ID materializes workload i's identifier on demand; the fleet retains
// no ID strings.
func (f *FleetState) ID(i int) string {
	return fmt.Sprintf("%s-%03d", f.IDPrefix, i)
}

// Spec materializes workload i's full Spec, for interop with code that
// wants the per-workload representation.
func (f *FleetState) Spec(i int) Spec {
	return Spec{
		ID:             f.ID(i),
		Kind:           f.Kind,
		Duration:       f.Durations[i],
		Shards:         f.Shards,
		DatasetBytes:   f.DatasetBytes,
		ResumeOverhead: f.ResumeOverhead,
	}
}

// ShardDuration is the compute time per shard of workload i.
func (f *FleetState) ShardDuration(i int) time.Duration {
	n := f.Shards
	if f.Kind != KindCheckpoint || n < 1 {
		n = 1
	}
	return f.Durations[i] / time.Duration(n)
}

// Remaining is the compute time workload i still needs, excluding
// resume overhead.
func (f *FleetState) Remaining(i int) time.Duration {
	if f.Completed[i] {
		return 0
	}
	if f.Kind == KindCheckpoint {
		left := f.Shards - int(f.ShardsDone[i])
		return time.Duration(left) * f.ShardDuration(i)
	}
	return f.Durations[i]
}

// AttemptDuration is the time workload i's next attempt needs:
// remaining work plus resume overhead on resumed checkpoint attempts.
func (f *FleetState) AttemptDuration(i int) time.Duration {
	d := f.Remaining(i)
	if f.Kind == KindCheckpoint && f.Attempts[i] > 0 {
		d += f.ResumeOverhead
	}
	return d
}

// BeginAttempt records an instance launch for workload i.
func (f *FleetState) BeginAttempt(i int) error {
	if f.Completed[i] {
		return fmt.Errorf("workload %q: %w", f.ID(i), ErrCompleted)
	}
	f.Attempts[i]++
	return nil
}

// ShardsAt previews how many whole shards workload i's current attempt
// has finished after elapsed compute time, without mutating state.
func (f *FleetState) ShardsAt(i int, elapsed time.Duration) int {
	if f.Kind != KindCheckpoint || elapsed <= 0 {
		return 0
	}
	if f.Attempts[i] > 1 {
		elapsed -= f.ResumeOverhead
		if elapsed < 0 {
			elapsed = 0
		}
	}
	banked := int(elapsed / f.ShardDuration(i))
	if maxLeft := f.Shards - int(f.ShardsDone[i]); banked > maxLeft {
		banked = maxLeft
	}
	return banked
}

// CreditProgress accounts an interrupted attempt of workload i that
// computed for elapsed time, returning the newly banked shard count.
func (f *FleetState) CreditProgress(i int, elapsed time.Duration) int {
	f.Interruptions[i]++
	banked := f.ShardsAt(i, elapsed)
	f.ShardsDone[i] += int32(banked)
	return banked
}

// DropShards rolls back n banked shards of workload i.
func (f *FleetState) DropShards(i, n int) {
	if f.Completed[i] || n <= 0 {
		return
	}
	if n > int(f.ShardsDone[i]) {
		n = int(f.ShardsDone[i])
	}
	f.ShardsDone[i] -= int32(n)
	f.Recomputed[i] += int32(n)
}

// MarkComplete finalises workload i.
func (f *FleetState) MarkComplete(i int, at time.Time) error {
	if f.Completed[i] {
		return fmt.Errorf("workload %q: %w", f.ID(i), ErrCompleted)
	}
	f.Completed[i] = true
	f.CompletedAtNanos[i] = at.UnixNano()
	if f.Kind == KindCheckpoint {
		f.ShardsDone[i] = int32(f.Shards)
	}
	return nil
}

// CheckpointBytes is the data volume per checkpoint upload, uniform
// across the fleet.
func (f *FleetState) CheckpointBytes() int64 {
	if f.Kind != KindCheckpoint || f.Shards == 0 {
		return 0
	}
	return f.DatasetBytes / int64(f.Shards)
}

// GenerateFleet builds a reproducible fleet. It consumes the RNG
// stream exactly as Generate does — one Float64 per workload whenever
// the duration range is non-degenerate — so a fleet and a []*State set
// generated from the same seed describe identical workloads.
func GenerateFleet(rng *simclock.RNG, opts GenOptions) (*FleetState, error) {
	if opts.Count <= 0 {
		return nil, errors.New("workload: count must be positive")
	}
	opts = opts.normalized()
	shards := 1
	if opts.Kind == KindCheckpoint {
		shards = opts.Shards
	}
	f := &FleetState{
		Kind:             opts.Kind,
		Shards:           shards,
		DatasetBytes:     opts.DatasetBytes,
		ResumeOverhead:   opts.ResumeOverhead,
		IDPrefix:         opts.IDPrefix,
		Durations:        make([]time.Duration, opts.Count),
		ShardsDone:       make([]int32, opts.Count),
		Attempts:         make([]int32, opts.Count),
		Interruptions:    make([]int32, opts.Count),
		Recomputed:       make([]int32, opts.Count),
		Completed:        make([]bool, opts.Count),
		CompletedAtNanos: make([]int64, opts.Count),
	}
	for i := 0; i < opts.Count; i++ {
		dur := opts.MinDuration
		if opts.MaxDuration > opts.MinDuration {
			span := opts.MaxDuration - opts.MinDuration
			dur += time.Duration(rng.Float64() * float64(span))
		}
		f.Durations[i] = dur
		if err := f.Spec(i).Validate(); err != nil {
			return nil, err
		}
	}
	return f, nil
}
