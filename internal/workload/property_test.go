package workload

import (
	"testing"
	"testing/quick"
	"time"
)

// Property tests over the checkpoint progress model: however interrupts
// land, banked progress never exceeds the work, never regresses, and the
// remaining work plus banked work always equals the total.

func TestCreditProgressConservation(t *testing.T) {
	f := func(slices []uint16) bool {
		st, err := New(Spec{
			ID: "p", Kind: KindCheckpoint, Duration: 10 * time.Hour,
			Shards: 20, ResumeOverhead: 5 * time.Minute,
		})
		if err != nil {
			return false
		}
		for _, s := range slices {
			if st.Completed {
				break
			}
			if err := st.BeginAttempt(); err != nil {
				return false
			}
			elapsed := time.Duration(s%1200) * time.Minute / 2 // 0..10h
			before := st.ShardsDone
			banked := st.CreditProgress(elapsed)
			if banked < 0 || st.ShardsDone < before || st.ShardsDone > st.Spec.Shards {
				return false
			}
			// Conservation: remaining + done*shardDur == total.
			if st.Remaining()+time.Duration(st.ShardsDone)*st.Spec.ShardDuration() != st.Spec.Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttemptDurationNeverExceedsTotalPlusOverhead(t *testing.T) {
	f := func(interrupts uint8) bool {
		st, err := New(Spec{
			ID: "p", Kind: KindCheckpoint, Duration: 10 * time.Hour,
			Shards: 20, ResumeOverhead: 15 * time.Minute,
		})
		if err != nil {
			return false
		}
		for i := 0; i < int(interrupts%30); i++ {
			if st.Completed {
				break
			}
			if err := st.BeginAttempt(); err != nil {
				return false
			}
			if d := st.AttemptDuration(); d > st.Spec.Duration+st.Spec.ResumeOverhead || d < 0 {
				return false
			}
			st.CreditProgress(45 * time.Minute)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardAttemptAlwaysFullDuration(t *testing.T) {
	f := func(interrupts uint8) bool {
		st, err := New(Spec{ID: "s", Kind: KindStandard, Duration: 10 * time.Hour})
		if err != nil {
			return false
		}
		for i := 0; i < int(interrupts%20); i++ {
			if err := st.BeginAttempt(); err != nil {
				return false
			}
			if st.AttemptDuration() != 10*time.Hour {
				return false
			}
			st.CreditProgress(9 * time.Hour)
		}
		return st.Interruptions == int(interrupts%20)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
