package workload

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/simclock"
)

func stdSpec() Spec {
	return Spec{ID: "w", Kind: KindStandard, Duration: 10 * time.Hour}
}

func ckptSpec() Spec {
	return Spec{
		ID: "c", Kind: KindCheckpoint, Duration: 10 * time.Hour,
		Shards: 20, DatasetBytes: 1 << 30, ResumeOverhead: 5 * time.Minute,
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{ID: "x", Kind: KindStandard}).Validate(); !errors.Is(err, ErrBadDuration) {
		t.Fatalf("err = %v", err)
	}
	if err := (Spec{ID: "x", Kind: KindCheckpoint, Duration: time.Hour, Shards: 1}).Validate(); !errors.Is(err, ErrBadShards) {
		t.Fatalf("err = %v", err)
	}
	if err := stdSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStandardRestartsFromZero(t *testing.T) {
	st, err := New(stdSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BeginAttempt(); err != nil {
		t.Fatal(err)
	}
	if banked := st.CreditProgress(9 * time.Hour); banked != 0 {
		t.Fatalf("standard banked %d shards", banked)
	}
	if st.Remaining() != 10*time.Hour {
		t.Fatalf("remaining = %v, want full duration", st.Remaining())
	}
	if st.Interruptions != 1 {
		t.Fatalf("interruptions = %d", st.Interruptions)
	}
}

func TestCheckpointBanksShards(t *testing.T) {
	st, err := New(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	_ = st.BeginAttempt()
	// 3.4 shard-durations of progress -> 3 shards banked.
	banked := st.CreditProgress(3*30*time.Minute + 12*time.Minute)
	if banked != 3 || st.ShardsDone != 3 {
		t.Fatalf("banked=%d done=%d", banked, st.ShardsDone)
	}
	want := 17 * 30 * time.Minute
	if st.Remaining() != want {
		t.Fatalf("remaining = %v, want %v", st.Remaining(), want)
	}
}

func TestCheckpointResumeOverheadInAttemptDuration(t *testing.T) {
	st, _ := New(ckptSpec())
	if st.AttemptDuration() != 10*time.Hour {
		t.Fatalf("first attempt = %v", st.AttemptDuration())
	}
	_ = st.BeginAttempt()
	st.CreditProgress(5 * time.Hour)
	_ = st.BeginAttempt()
	want := 10*30*time.Minute + 5*time.Minute
	if st.AttemptDuration() != want {
		t.Fatalf("resumed attempt = %v, want %v", st.AttemptDuration(), want)
	}
}

func TestCreditProgressDeductsOverheadOnResumedAttempts(t *testing.T) {
	st, _ := New(ckptSpec())
	_ = st.BeginAttempt()
	st.CreditProgress(2 * 30 * time.Minute) // 2 shards
	_ = st.BeginAttempt()
	// 35 minutes elapsed on a resumed attempt: 5 min overhead + 1 shard.
	banked := st.CreditProgress(35 * time.Minute)
	if banked != 1 || st.ShardsDone != 3 {
		t.Fatalf("banked=%d done=%d", banked, st.ShardsDone)
	}
}

func TestCreditNeverExceedsShards(t *testing.T) {
	st, _ := New(ckptSpec())
	_ = st.BeginAttempt()
	banked := st.CreditProgress(100 * time.Hour)
	if banked != 20 || st.ShardsDone != 20 {
		t.Fatalf("banked=%d done=%d", banked, st.ShardsDone)
	}
	if st.Remaining() != 0 {
		t.Fatalf("remaining = %v", st.Remaining())
	}
}

func TestMarkComplete(t *testing.T) {
	st, _ := New(stdSpec())
	at := time.Date(2024, 3, 4, 12, 0, 0, 0, time.UTC)
	if err := st.MarkComplete(at); err != nil {
		t.Fatal(err)
	}
	if !st.Completed || !st.CompletedAt.Equal(at) || st.Remaining() != 0 {
		t.Fatalf("state = %+v", st)
	}
	if err := st.MarkComplete(at); !errors.Is(err, ErrCompleted) {
		t.Fatalf("double complete err = %v", err)
	}
	if err := st.BeginAttempt(); !errors.Is(err, ErrCompleted) {
		t.Fatalf("attempt after complete err = %v", err)
	}
}

func TestCheckpointBytes(t *testing.T) {
	st, _ := New(ckptSpec())
	if got := st.CheckpointBytes(); got != (1<<30)/20 {
		t.Fatalf("checkpoint bytes = %d", got)
	}
	std, _ := New(stdSpec())
	if std.CheckpointBytes() != 0 {
		t.Fatal("standard workload should not checkpoint")
	}
}

func TestGenerate(t *testing.T) {
	rng := simclock.Stream(1, "workload-test")
	ws, err := Generate(rng, GenOptions{Kind: KindStandard, Count: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 40 {
		t.Fatalf("count = %d", len(ws))
	}
	ids := map[string]bool{}
	for _, w := range ws {
		if w.Spec.Duration < 10*time.Hour || w.Spec.Duration > 11*time.Hour {
			t.Fatalf("duration %v outside paper's 10-11h", w.Spec.Duration)
		}
		if ids[w.Spec.ID] {
			t.Fatalf("duplicate id %s", w.Spec.ID)
		}
		ids[w.Spec.ID] = true
	}
}

func TestGenerateCheckpointDefaults(t *testing.T) {
	rng := simclock.Stream(2, "workload-test")
	ws, err := Generate(rng, GenOptions{Kind: KindCheckpoint, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Spec.Shards != 20 || w.Spec.DatasetBytes != 1<<30 || w.Spec.ResumeOverhead != 5*time.Minute {
			t.Fatalf("defaults not applied: %+v", w.Spec)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(simclock.Stream(3, "wl"), GenOptions{Kind: KindStandard, Count: 10})
	b, _ := Generate(simclock.Stream(3, "wl"), GenOptions{Kind: KindStandard, Count: 10})
	for i := range a {
		if a[i].Spec.Duration != b[i].Spec.Duration {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateBadCount(t *testing.T) {
	if _, err := Generate(simclock.Stream(4, "wl"), GenOptions{Kind: KindStandard}); err == nil {
		t.Fatal("want error")
	}
}

func TestShardsAtDoesNotMutate(t *testing.T) {
	st, err := New(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BeginAttempt(); err != nil {
		t.Fatal(err)
	}
	// 10h / 20 shards = 30m per shard; 95m of compute = 3 whole shards.
	if got := st.ShardsAt(95 * time.Minute); got != 3 {
		t.Fatalf("ShardsAt = %d, want 3", got)
	}
	if st.ShardsDone != 0 || st.Interruptions != 0 {
		t.Fatalf("ShardsAt mutated state: done=%d interruptions=%d", st.ShardsDone, st.Interruptions)
	}
	// CreditProgress must bank exactly what the preview predicted.
	if got := st.CreditProgress(95 * time.Minute); got != 3 {
		t.Fatalf("CreditProgress = %d, want 3", got)
	}
	if st.ShardsDone != 3 {
		t.Fatalf("ShardsDone = %d", st.ShardsDone)
	}
}

func TestShardsAtDeductsResumeOverhead(t *testing.T) {
	st, err := New(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	st.Attempts = 2 // resumed attempt: 5m overhead comes off the top
	if got := st.ShardsAt(35 * time.Minute); got != 1 {
		t.Fatalf("ShardsAt = %d, want 1", got)
	}
	if got := st.ShardsAt(3 * time.Minute); got != 0 {
		t.Fatalf("elapsed shorter than overhead: ShardsAt = %d, want 0", got)
	}
}

func TestDropShards(t *testing.T) {
	st, err := New(ckptSpec())
	if err != nil {
		t.Fatal(err)
	}
	st.ShardsDone = 5
	st.DropShards(2)
	if st.ShardsDone != 3 {
		t.Fatalf("ShardsDone = %d, want 3", st.ShardsDone)
	}
	st.DropShards(0)
	st.DropShards(-4)
	if st.ShardsDone != 3 {
		t.Fatalf("non-positive drops must be no-ops, got %d", st.ShardsDone)
	}
	st.DropShards(10)
	if st.ShardsDone != 0 {
		t.Fatalf("DropShards must floor at 0, got %d", st.ShardsDone)
	}
	if err := st.MarkComplete(simclock.Epoch); err != nil {
		t.Fatal(err)
	}
	st.DropShards(1)
	if st.ShardsDone != st.Spec.Shards {
		t.Fatal("DropShards must not touch a completed workload")
	}
}
