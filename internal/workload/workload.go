// Package workload models the paper's two workload categories
// (Section 2.2 / 5.1.1):
//
//   - Standard workloads (Genome Reconstruction, QIIME 2) run for a
//     normalized 10-11 hours and must restart from zero after a spot
//     interruption.
//   - Checkpoint workloads (NGS Data Preprocessing) are segmented into
//     shards whose completion is tracked in DynamoDB; after an
//     interruption a new instance resumes from the last completed shard,
//     paying a resume overhead (relaunch + S3 re-download).
//
// The package tracks logical progress; the experiment harness maps it
// onto simulated instances and billing.
package workload

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/simclock"
)

// Kind distinguishes restartable from resumable workloads.
type Kind int

// Workload kinds.
const (
	KindStandard Kind = iota + 1
	KindCheckpoint
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindStandard:
		return "standard"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// Errors returned by the package.
var (
	ErrBadDuration = errors.New("workload: duration must be positive")
	ErrBadShards   = errors.New("workload: checkpoint workloads need >= 2 shards")
	ErrCompleted   = errors.New("workload: already completed")
)

// Spec describes one workload.
type Spec struct {
	// ID is unique within an experiment.
	ID string
	// Kind selects restart vs resume semantics.
	Kind Kind
	// Duration is the total uninterrupted compute time required
	// (the paper normalizes to 10-11 h with sleep intervals).
	Duration time.Duration
	// Shards segments a checkpoint workload; standard workloads use 1.
	Shards int
	// DatasetBytes is the input dataset size (the paper's 1 GB FastQC
	// set); checkpoint uploads/downloads move DatasetBytes/Shards.
	DatasetBytes int64
	// ResumeOverhead is the fixed extra time a resumed attempt spends
	// re-fetching data and restarting tools.
	ResumeOverhead time.Duration
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("workload %q: %w", s.ID, ErrBadDuration)
	}
	if s.Kind == KindCheckpoint && s.Shards < 2 {
		return fmt.Errorf("workload %q: %w", s.ID, ErrBadShards)
	}
	return nil
}

// ShardDuration is the compute time per shard.
func (s Spec) ShardDuration() time.Duration {
	n := s.Shards
	if s.Kind != KindCheckpoint || n < 1 {
		n = 1
	}
	return s.Duration / time.Duration(n)
}

// State tracks one workload's logical progress across attempts.
type State struct {
	Spec Spec
	// ShardsDone counts completed shards (checkpoint only).
	ShardsDone int
	// Attempts counts instance launches serving this workload.
	Attempts int
	// Interruptions counts provider-initiated terminations suffered.
	Interruptions int
	// Recomputed counts shards rolled back by DropShards — work redone
	// because its checkpoint never became durable or was later lost.
	Recomputed int
	// Completed and CompletedAt record success.
	Completed   bool
	CompletedAt time.Time
}

// New validates the spec and returns fresh state.
func New(spec Spec) (*State, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind == KindStandard {
		spec.Shards = 1
	}
	return &State{Spec: spec}, nil
}

// Remaining is the compute time still needed, excluding resume overhead.
func (st *State) Remaining() time.Duration {
	if st.Completed {
		return 0
	}
	if st.Spec.Kind == KindCheckpoint {
		left := st.Spec.Shards - st.ShardsDone
		return time.Duration(left) * st.Spec.ShardDuration()
	}
	return st.Spec.Duration
}

// AttemptDuration is the time the next attempt needs: remaining work plus
// resume overhead on any attempt after the first for checkpoint
// workloads (standard restarts pay full duration anyway, and the paper
// folds their restart cost into the recomputation itself).
func (st *State) AttemptDuration() time.Duration {
	d := st.Remaining()
	if st.Spec.Kind == KindCheckpoint && st.Attempts > 0 {
		d += st.Spec.ResumeOverhead
	}
	return d
}

// BeginAttempt records an instance launch.
func (st *State) BeginAttempt() error {
	if st.Completed {
		return fmt.Errorf("workload %q: %w", st.Spec.ID, ErrCompleted)
	}
	st.Attempts++
	return nil
}

// ShardsAt is the number of whole shards the current attempt has
// finished after running for elapsed time (net of resume overhead on
// resumed attempts). Standard workloads always report zero. It does not
// mutate state — callers use it to preview what a checkpoint write at
// this instant would bank.
func (st *State) ShardsAt(elapsed time.Duration) int {
	if st.Spec.Kind != KindCheckpoint || elapsed <= 0 {
		return 0
	}
	if st.Attempts > 1 {
		elapsed -= st.Spec.ResumeOverhead
		if elapsed < 0 {
			elapsed = 0
		}
	}
	banked := int(elapsed / st.Spec.ShardDuration())
	if maxLeft := st.Spec.Shards - st.ShardsDone; banked > maxLeft {
		banked = maxLeft
	}
	return banked
}

// CreditProgress accounts an interrupted attempt that computed for
// elapsed time (after resume overhead). Standard workloads gain nothing;
// checkpoint workloads bank completed shards. It returns the number of
// newly banked shards.
func (st *State) CreditProgress(elapsed time.Duration) int {
	st.Interruptions++
	banked := st.ShardsAt(elapsed)
	st.ShardsDone += banked
	return banked
}

// DropShards rolls back n banked shards — progress whose checkpoint
// write never became durable, so the next attempt must recompute it.
func (st *State) DropShards(n int) {
	if st.Completed || n <= 0 {
		return
	}
	if n > st.ShardsDone {
		n = st.ShardsDone
	}
	st.ShardsDone -= n
	st.Recomputed += n
}

// MarkComplete finalises the workload.
func (st *State) MarkComplete(at time.Time) error {
	if st.Completed {
		return fmt.Errorf("workload %q: %w", st.Spec.ID, ErrCompleted)
	}
	st.Completed = true
	st.CompletedAt = at
	if st.Spec.Kind == KindCheckpoint {
		st.ShardsDone = st.Spec.Shards
	}
	return nil
}

// CheckpointBytes is the data volume moved per checkpoint upload (one
// shard's slice of the dataset).
func (st *State) CheckpointBytes() int64 {
	if st.Spec.Kind != KindCheckpoint || st.Spec.Shards == 0 {
		return 0
	}
	return st.Spec.DatasetBytes / int64(st.Spec.Shards)
}

// GenOptions tunes workload set generation.
type GenOptions struct {
	// Kind of every generated workload.
	Kind Kind
	// Count of workloads.
	Count int
	// MinDuration and MaxDuration bound the uniform duration draw; the
	// defaults are the paper's 10-11 h.
	MinDuration time.Duration
	MaxDuration time.Duration
	// Shards per checkpoint workload (default 20).
	Shards int
	// DatasetBytes per workload (default 1 GiB, the paper's SRA set).
	DatasetBytes int64
	// ResumeOverhead (default 5 minutes).
	ResumeOverhead time.Duration
	// IDPrefix prefixes workload IDs (default the kind name).
	IDPrefix string
}

func (o GenOptions) normalized() GenOptions {
	if o.MinDuration <= 0 {
		o.MinDuration = 10 * time.Hour
	}
	if o.MaxDuration < o.MinDuration {
		o.MaxDuration = 11 * time.Hour
	}
	if o.Shards <= 0 {
		o.Shards = 20
	}
	if o.DatasetBytes <= 0 {
		o.DatasetBytes = 1 << 30
	}
	if o.ResumeOverhead <= 0 {
		o.ResumeOverhead = 5 * time.Minute
	}
	if o.IDPrefix == "" {
		o.IDPrefix = o.Kind.String()
	}
	return o
}

// Generate builds a reproducible workload set.
func Generate(rng *simclock.RNG, opts GenOptions) ([]*State, error) {
	if opts.Count <= 0 {
		return nil, errors.New("workload: count must be positive")
	}
	opts = opts.normalized()
	out := make([]*State, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		dur := opts.MinDuration
		if opts.MaxDuration > opts.MinDuration {
			span := opts.MaxDuration - opts.MinDuration
			dur += time.Duration(rng.Float64() * float64(span))
		}
		spec := Spec{
			ID:             fmt.Sprintf("%s-%03d", opts.IDPrefix, i),
			Kind:           opts.Kind,
			Duration:       dur,
			DatasetBytes:   opts.DatasetBytes,
			ResumeOverhead: opts.ResumeOverhead,
		}
		if opts.Kind == KindCheckpoint {
			spec.Shards = opts.Shards
		} else {
			spec.Shards = 1
		}
		st, err := New(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
