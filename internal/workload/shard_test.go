package workload

import (
	"fmt"
	"testing"
	"time"

	"spotverse/internal/raceflag"
	"spotverse/internal/simclock"
)

func TestShardBounds(t *testing.T) {
	cases := []struct {
		n, count int
		want     [][2]int
	}{
		{n: 10, count: 1, want: [][2]int{{0, 10}}},
		{n: 10, count: 2, want: [][2]int{{0, 5}, {5, 10}}},
		// Non-divisible: the first n%count shards take one extra.
		{n: 10, count: 3, want: [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		// N < shards: trailing shards are empty.
		{n: 2, count: 4, want: [][2]int{{0, 1}, {1, 2}, {2, 2}, {2, 2}}},
		{n: 1, count: 3, want: [][2]int{{0, 1}, {1, 1}, {1, 1}}},
	}
	for _, c := range cases {
		prev := 0
		for k, w := range c.want {
			lo, hi := ShardBounds(c.n, c.count, k)
			if lo != w[0] || hi != w[1] {
				t.Errorf("ShardBounds(%d, %d, %d) = [%d, %d), want [%d, %d)", c.n, c.count, k, lo, hi, w[0], w[1])
			}
			if lo != prev {
				t.Errorf("ShardBounds(%d, %d, %d) leaves a gap: lo %d after hi %d", c.n, c.count, k, lo, prev)
			}
			prev = hi
		}
		if prev != c.n {
			t.Errorf("ShardBounds(%d, %d, ...) covers [0, %d), want [0, %d)", c.n, c.count, prev, c.n)
		}
	}
}

// TestShardViewAliasesParent pins the property the sharded fleet engine
// rests on: a Shard view writes through to the parent columns, and IDs
// keep their fleet-global index.
func TestShardViewAliasesParent(t *testing.T) {
	f, err := GenerateFleet(simclock.Stream(1, "wl"), GenOptions{Kind: KindStandard, Count: 10})
	if err != nil {
		t.Fatal(err)
	}
	v := f.Shard(4, 7)
	if v.Len() != 3 {
		t.Fatalf("view length %d, want 3", v.Len())
	}
	if got, want := v.ID(0), f.ID(4); got != want {
		t.Fatalf("view ID(0) = %q, want parent ID(4) %q", got, want)
	}
	if err := v.BeginAttempt(1); err != nil {
		t.Fatal(err)
	}
	if err := v.MarkComplete(1, time.Unix(0, 12345).UTC()); err != nil {
		t.Fatal(err)
	}
	if !f.Completed[5] || f.CompletedAtNanos[5] != 12345 || f.Attempts[5] != 1 {
		t.Fatal("mutation through the shard view did not land in the parent columns")
	}
	// Appending to a view column must not spill into the neighbour
	// shard's memory (the view is capacity-clamped).
	_ = append(v.Durations, time.Hour)
	if f.Durations[7] == time.Hour {
		t.Fatal("append through the view overwrote the neighbouring shard")
	}
}

// TestAppendIDMatchesSprintf pins the manual ID formatter to the byte
// sequence the original fmt.Sprintf("%s-%03d", ...) produced, across
// the padding boundary and into fleet-scale indices.
func TestAppendIDMatchesSprintf(t *testing.T) {
	f := &FleetState{IDPrefix: "wl", Durations: make([]time.Duration, 1)}
	for _, base := range []int{0, 950} {
		f.Base = base
		for _, i := range []int{0, 7, 49, 999, 1000, 12345, 99999} {
			want := fmt.Sprintf("%s-%03d", f.IDPrefix, base+i)
			if got := f.ID(i); got != want {
				t.Errorf("ID(%d) with base %d = %q, want %q", i, base, got, want)
			}
		}
	}
}

// TestAppendIDAllocFree is the runtime half of the //spotverse:hotpath
// gate on AppendID: with buffer capacity present, formatting a workload
// ID on the per-shard hot loop must not allocate.
func TestAppendIDAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	f := &FleetState{IDPrefix: "wl-standard", Base: 90000}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		buf = f.AppendID(buf[:0], 1234)
	})
	if allocs != 0 {
		t.Fatalf("AppendID allocated %v per run, want 0", allocs)
	}
}
