//go:build race

package raceflag

const enabled = true
