// Package raceflag reports at build time whether the race detector is
// compiled in. The AllocsPerRun hot-path gates skip under -race: the
// detector instruments every memory access with allocating shadow
// operations, so a zero-alloc assertion is meaningless there.
package raceflag

// Enabled is true when the build used -race.
const Enabled = enabled
