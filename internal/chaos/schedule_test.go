package chaos

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// window is a test helper building [from, to) offsets from the epoch.
func window(fromH, toH time.Duration) Window {
	return Window{From: simclock.Epoch.Add(fromH), To: simclock.Epoch.Add(toH)}
}

func TestZeroLengthWindowInjectsNothing(t *testing.T) {
	sched := Schedule{
		Intensity: Severe,
		Brownouts: []Brownout{{
			Region: "us-east-1",
			Window: window(time.Hour, time.Hour), // From == To: empty half-open interval
		}},
		Partitions: []Partition{{
			// No Regions: all regions.
			Window: window(2*time.Hour, 2*time.Hour),
		}},
		OpOutages: []OpOutage{{
			Service: ServiceLambda, OpPrefix: "invoke",
			Window: window(3*time.Hour, 3*time.Hour),
		}},
	}
	inj := newTestInjector(sched)
	eng := inj.eng
	for _, at := range []time.Duration{time.Hour, 2 * time.Hour, 3 * time.Hour} {
		_, _ = eng.ScheduleAt(simclock.Epoch.Add(at), "probe", func() {})
	}
	for eng.Pending() > 0 {
		eng.Step()
		if err := inj.Fault(ServiceDynamo, "put", "us-east-1"); err != nil {
			t.Fatalf("zero-length window injected %v at %v", err, eng.Now())
		}
		if err := inj.Fault(ServiceLambda, "invoke:fn", ""); err != nil {
			t.Fatalf("zero-length op outage injected %v at %v", err, eng.Now())
		}
	}
}

func TestExactlyAdjacentWindowsNoGapNoOverlap(t *testing.T) {
	// Two brownouts meeting exactly at hour 2: the half-open semantics
	// must hand the boundary instant to the second window — continuous
	// coverage across [1h, 3h), exactly one matching window at every
	// instant, and clean air on both sides.
	sched := Schedule{
		Intensity: Medium,
		Brownouts: []Brownout{
			{Region: "us-east-1", Window: window(time.Hour, 2*time.Hour)},
			{Region: "us-east-1", Window: window(2*time.Hour, 3*time.Hour)},
		},
	}
	inj := newTestInjector(sched)
	eng := inj.eng
	probes := []struct {
		at   time.Duration
		want bool
	}{
		{59 * time.Minute, false},
		{time.Hour, true},                  // first window's closed edge
		{2*time.Hour - time.Nanosecond, true}, // last instant of the first
		{2 * time.Hour, true},              // boundary: second window owns it
		{3*time.Hour - time.Nanosecond, true},
		{3 * time.Hour, false}, // open edge: outside both
	}
	for _, p := range probes {
		probe := p
		_, _ = eng.ScheduleAt(simclock.Epoch.Add(probe.at), "probe", func() {
			err := inj.Fault(ServiceDynamo, "put", "us-east-1")
			if got := err != nil; got != probe.want {
				t.Errorf("at %v: fault=%v, want %v (err=%v)", probe.at, got, probe.want, err)
			}
			if err != nil && !errors.Is(err, Unavailable) {
				t.Errorf("at %v: class %v, want Unavailable", probe.at, err)
			}
		})
	}
	for eng.Pending() > 0 {
		eng.Step()
	}
	// Exactly one injection per in-window probe: adjacency must not
	// double-count the boundary instant.
	if got := inj.Stats().Total; got != 4 {
		t.Fatalf("injected %d faults, want 4 (one per in-window probe)", got)
	}
}

func TestOverlappingWindowsAcrossFaultKinds(t *testing.T) {
	// A brownout, a partition, and an op outage all covering hour 1-3 on
	// overlapping scopes. Precedence is positional: brownouts are checked
	// before partitions, partitions before op outages — each call fails
	// exactly once with the first matching kind, and the draw-free checks
	// never consume randomness that would shift the rate streams.
	sched := Schedule{
		Intensity: Severe,
		Brownouts: []Brownout{{
			Region:   "us-east-1",
			Services: []string{ServiceDynamo},
			Window:   window(time.Hour, 3*time.Hour),
		}},
		Partitions: []Partition{{
			Regions: []catalog.Region{"us-east-1", "eu-west-1"},
			Window:  window(time.Hour, 3*time.Hour),
		}},
		OpOutages: []OpOutage{{
			Service: ServiceS3, OpPrefix: "get",
			Window: window(time.Hour, 3*time.Hour),
		}},
	}
	inj := newTestInjector(sched)
	eng := inj.eng
	_, _ = eng.ScheduleAt(simclock.Epoch.Add(2*time.Hour), "probe", func() {
		// Dynamo in us-east-1: brownout and partition both match; the
		// brownout wins.
		if err := inj.Fault(ServiceDynamo, "put", "us-east-1"); !errors.Is(err, Unavailable) {
			t.Errorf("dynamo@us-east-1 = %v, want Unavailable (brownout precedence)", err)
		}
		// S3 get in eu-west-1: partition and op outage both match; the
		// partition wins.
		if err := inj.Fault(ServiceS3, "get", "eu-west-1"); !errors.Is(err, Partitioned) {
			t.Errorf("s3 get@eu-west-1 = %v, want Partitioned (partition precedence)", err)
		}
		// S3 get in ap-south-1: only the op outage matches.
		if err := inj.Fault(ServiceS3, "get", "ap-south-1"); !errors.Is(err, Unavailable) {
			t.Errorf("s3 get@ap-south-1 = %v, want Unavailable (op outage)", err)
		}
	})
	for eng.Pending() > 0 {
		eng.Step()
	}
	st := inj.Stats()
	if st.ByKey[ServiceDynamo+"/unavailable"] != 1 ||
		st.ByKey[ServiceS3+"/partitioned"] != 1 ||
		st.ByKey[ServiceS3+"/unavailable"] != 1 {
		t.Fatalf("stats = %v, want one unavailable(dynamo), one partitioned(s3), one unavailable(s3)", st.ByKey)
	}
}

func TestPartitionMatchesRegionsServicesAndHome(t *testing.T) {
	sched := Schedule{
		Intensity: Low,
		Partitions: []Partition{{
			Regions:  []catalog.Region{"us-east-1"},
			Services: []string{ServiceDynamo, ServiceEventBridge},
			Window:   window(0, time.Hour),
		}},
	}
	inj := newTestInjector(sched)
	// Non-regional calls are attributed to the home region, so a
	// partition of us-east-1 severs the whole non-regional control plane.
	if err := inj.Fault(ServiceDynamo, "put", ""); !errors.Is(err, Partitioned) {
		t.Fatalf("non-regional dynamo call = %v, want Partitioned via home region", err)
	}
	if err := inj.Fault(ServiceDynamo, "put", "eu-west-1"); err != nil {
		t.Fatalf("dynamo@eu-west-1 = %v, want nil (region not partitioned)", err)
	}
	if err := inj.Fault(ServiceS3, "get", "us-east-1"); err != nil {
		t.Fatalf("s3@us-east-1 = %v, want nil (service not partitioned)", err)
	}
	var ce *Error
	err := inj.Fault(ServiceEventBridge, "put", "us-east-1")
	if !errors.As(err, &ce) || ce.Service != ServiceEventBridge || !errors.Is(err, Partitioned) {
		t.Fatalf("eventbridge@us-east-1 = %v, want typed Partitioned error", err)
	}
}

func TestPartitionsDrawNoRandomness(t *testing.T) {
	// Adding partitions to a schedule must not shift the per-service
	// rate streams: the same fault sequence falls out with and without
	// a (never-matching) partition and with an always-matching one.
	base := Preset(Severe, simclock.Epoch)
	with := Preset(Severe, simclock.Epoch)
	with.Partitions = []Partition{{
		Regions: []catalog.Region{"sa-east-1"},
		Window:  window(100*time.Hour, 200*time.Hour),
	}}
	a, b := newTestInjector(base), newTestInjector(with)
	for i := 0; i < 500; i++ {
		ea := a.Fault(ServiceDynamo, "put", "eu-west-1")
		eb := b.Fault(ServiceDynamo, "put", "eu-west-1")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("call %d diverged with inert partition present: %v vs %v", i, ea, eb)
		}
	}
}
