package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"spotverse/internal/simclock"
)

func newTestInjector(sched Schedule) *Injector {
	return NewInjector(simclock.NewEngine(), 7, sched)
}

func TestOffInjectsNothing(t *testing.T) {
	inj := newTestInjector(Preset(Off, simclock.Epoch))
	for i := 0; i < 1000; i++ {
		if err := inj.Fault(ServiceDynamo, "put", "us-east-1"); err != nil {
			t.Fatalf("Off schedule injected %v", err)
		}
	}
	if inj.Latency("invoke:x") != 0 {
		t.Fatal("Off schedule produced a latency spike")
	}
	if inj.Drop("r", "aws.ec2", "whatever") {
		t.Fatal("Off schedule dropped a delivery")
	}
	if st := inj.Stats(); st.Total != 0 || st.Dropped != 0 || st.LatencySpikes != 0 {
		t.Fatalf("Off stats = %+v", st)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if err := inj.Fault(ServiceS3, "get", ""); err != nil {
		t.Fatal(err)
	}
	if inj.Latency("invoke:x") != 0 || inj.Drop("r", "s", "d") {
		t.Fatal("nil injector must be inert")
	}
}

func TestDeterministicSequences(t *testing.T) {
	sched := Preset(Severe, simclock.Epoch)
	a, b := newTestInjector(sched), newTestInjector(sched)
	for i := 0; i < 500; i++ {
		ea := a.Fault(ServiceDynamo, "put", "eu-west-1")
		eb := b.Fault(ServiceDynamo, "put", "eu-west-1")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("call %d diverged: %v vs %v", i, ea, eb)
		}
		if ea != nil && ea.Error() != eb.Error() {
			t.Fatalf("call %d diverged: %v vs %v", i, ea, eb)
		}
	}
	if a.Stats().Total == 0 {
		t.Fatal("severe schedule injected nothing in 500 calls")
	}
}

func TestStreamsIndependentAcrossServices(t *testing.T) {
	sched := Preset(Severe, simclock.Epoch)
	a, b := newTestInjector(sched), newTestInjector(sched)
	// Interleave heavy S3 traffic on a only; dynamo's sequence must not
	// shift relative to b's.
	for i := 0; i < 200; i++ {
		_ = a.Fault(ServiceS3, "put", "us-east-1")
		ea := a.Fault(ServiceDynamo, "put", "eu-west-1")
		eb := b.Fault(ServiceDynamo, "put", "eu-west-1")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("call %d: dynamo stream perturbed by s3 traffic", i)
		}
	}
}

func TestTypedErrorsUnwrap(t *testing.T) {
	sched := Schedule{
		Intensity:  Severe,
		ErrorRates: map[string]Rates{ServiceDynamo: {Transient: 1}},
	}
	inj := newTestInjector(sched)
	err := inj.Fault(ServiceDynamo, "put", "us-east-1")
	if err == nil {
		t.Fatal("rate 1 must inject")
	}
	if !errors.Is(err, Transient) {
		t.Fatalf("err = %v, want Is(Transient)", err)
	}
	// Wrapped twice, as service call sites and stepfn do.
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err))
	var ce *Error
	if !errors.As(wrapped, &ce) {
		t.Fatalf("errors.As failed through wrapping: %v", wrapped)
	}
	if ce.Service != ServiceDynamo || ce.Op != "put" || ce.Region != "us-east-1" {
		t.Fatalf("chaos error fields = %+v", ce)
	}
}

func TestBrownoutWindow(t *testing.T) {
	eng := simclock.NewEngine()
	start := eng.Now()
	sched := Schedule{
		Intensity: Severe,
		Brownouts: []Brownout{{
			Region:   "us-east-1",
			Services: []string{ServiceDynamo},
			Window:   Window{From: start.Add(time.Hour), To: start.Add(2 * time.Hour)},
		}},
	}
	inj := NewInjector(eng, 7, sched)
	if err := inj.Fault(ServiceDynamo, "put", "us-east-1"); err != nil {
		t.Fatalf("before window: %v", err)
	}
	eng.ScheduleAfter(90*time.Minute, "probe", func() {})
	_ = eng.Run(time.Time{})
	if err := inj.Fault(ServiceDynamo, "put", "us-east-1"); !errors.Is(err, Unavailable) {
		t.Fatalf("inside window err = %v, want Unavailable", err)
	}
	// Non-regional calls attribute to the home region and are hit too.
	if err := inj.Fault(ServiceDynamo, "put", ""); !errors.Is(err, Unavailable) {
		t.Fatalf("home-attributed call err = %v, want Unavailable", err)
	}
	// Other regions and other services stay healthy.
	if err := inj.Fault(ServiceDynamo, "put", "eu-west-1"); err != nil {
		t.Fatalf("other region: %v", err)
	}
	if err := inj.Fault(ServiceS3, "put", "us-east-1"); err != nil {
		t.Fatalf("other service: %v", err)
	}
}

func TestOpOutagePrefix(t *testing.T) {
	eng := simclock.NewEngine()
	start := eng.Now()
	sched := Schedule{
		Intensity: Medium,
		OpOutages: []OpOutage{{
			Service:  ServiceLambda,
			OpPrefix: "invoke:collector",
			Window:   Window{From: start, To: start.Add(time.Hour)},
		}},
	}
	inj := NewInjector(eng, 7, sched)
	if err := inj.Fault(ServiceLambda, "invoke:collector", ""); !errors.Is(err, Unavailable) {
		t.Fatalf("targeted op err = %v, want Unavailable", err)
	}
	if err := inj.Fault(ServiceLambda, "invoke:handler", ""); err != nil {
		t.Fatalf("untargeted op: %v", err)
	}
}

func TestDropDetailTypeFilter(t *testing.T) {
	sched := Schedule{
		Intensity:       Severe,
		DropRate:        1,
		DropDetailTypes: []string{"EC2 Spot Instance Interruption Warning"},
	}
	inj := newTestInjector(sched)
	if inj.Drop("r", "aws.ec2", "Some Other Event") {
		t.Fatal("unlisted detail type dropped")
	}
	if !inj.Drop("r", "aws.ec2", "EC2 Spot Instance Interruption Warning") {
		t.Fatal("listed detail type with rate 1 not dropped")
	}
	if inj.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", inj.Stats().Dropped)
	}
}

func TestPresetsEscalate(t *testing.T) {
	start := simclock.Epoch
	low, med, sev := Preset(Low, start), Preset(Medium, start), Preset(Severe, start)
	for _, svc := range []string{ServiceDynamo, ServiceS3, ServiceLambda} {
		if !(low.ErrorRates[svc].Transient < med.ErrorRates[svc].Transient &&
			med.ErrorRates[svc].Transient < sev.ErrorRates[svc].Transient) {
			t.Fatalf("%s transient rates do not escalate", svc)
		}
	}
	if !(low.DropRate < med.DropRate && med.DropRate < sev.DropRate) {
		t.Fatal("drop rates do not escalate")
	}
	if len(med.Brownouts) == 0 || len(sev.Brownouts) == 0 {
		t.Fatal("medium and severe presets must schedule brownouts")
	}
	if Preset(Off, start).Enabled() {
		t.Fatal("off preset must be disabled")
	}
}

func TestIntensityStrings(t *testing.T) {
	want := map[Intensity]string{Off: "off", Low: "low", Medium: "medium", Severe: "severe", Intensity(99): "unknown"}
	for i, s := range want {
		if i.String() != s {
			t.Fatalf("%d.String() = %q, want %q", i, i.String(), s)
		}
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Class: Throttle, Service: ServiceS3, Op: "put", Region: "eu-west-1"}
	msg := e.Error()
	for _, part := range []string{"s3", "put", "eu-west-1"} {
		if !contains(msg, part) {
			t.Fatalf("message %q missing %q", msg, part)
		}
	}
	if !errors.Is(e, Throttle) {
		t.Fatal("Unwrap must surface the class")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
