// Package chaos is a deterministic, seeded fault injector for the
// simulated control plane. Every internal/services/* package exposes a
// SetFault-style interceptor; an Injector supplies those interceptors
// from a declarative Schedule of per-service error rates, latency
// spikes, regional brownouts, and dropped EventBridge deliveries.
//
// The paper's data plane already fails (spot reclaims, regional
// outages, AMI gates); this package makes the control plane fail too,
// the way real AWS does, so the Controller's hardening — backoff,
// circuit breakers, the notice-loss recovery sweep, the degraded-mode
// Optimizer — can be measured instead of assumed.
//
// Faults draw from dedicated simclock RNG streams (one per service), so
// enabling injection never perturbs the draws seen by the market,
// provider, or strategies: a run with an all-zero Schedule is
// bit-identical to a run without the injector.
package chaos

import (
	"errors"
	"fmt"

	"spotverse/internal/catalog"
)

// Fault classes, usable with errors.Is against any injected error.
var (
	// Transient is a retryable one-off service error.
	Transient = errors.New("chaos: transient service error")
	// Throttle is a rate-limit rejection.
	Throttle = errors.New("chaos: request throttled")
	// Unavailable is a service brownout (sustained regional failure).
	Unavailable = errors.New("chaos: service unavailable")
	// Partitioned is a regional network partition: the caller cannot
	// reach the service at all. Distinct from Unavailable so consumers
	// can tell "the service is down" from "the network between us is
	// cut" — a partitioned control plane may still be serving the other
	// side of the partition (the split-brain scenario).
	Partitioned = errors.New("chaos: network partitioned")
)

// Service names used in Schedule maps and Error values.
const (
	ServiceDynamo         = "dynamo"
	ServiceS3             = "s3"
	ServiceEFS            = "efs"
	ServiceLambda         = "lambda"
	ServiceEventBridge    = "eventbridge"
	ServiceCloudWatch     = "cloudwatch"
	ServiceStepFn         = "stepfn"
	ServiceAMI            = "ami"
	ServiceCloudFormation = "cloudformation"
	// ServiceServe is the placement service's backend path
	// (internal/serve.SimBackend), so brownouts and error rates can hit
	// the serving daemon directly and exercise its degraded mode.
	ServiceServe = "serve"
)

// Services lists every injectable service name, sorted.
var Services = []string{
	ServiceAMI, ServiceCloudFormation, ServiceCloudWatch, ServiceDynamo,
	ServiceEFS, ServiceEventBridge, ServiceLambda, ServiceS3, ServiceServe,
	ServiceStepFn,
}

// Error is one injected fault. It unwraps to its Class sentinel, so
// consumers can errors.Is(err, chaos.Unavailable) and errors.As out the
// (service, region) pair for per-(service, region) breaker keying.
type Error struct {
	// Class is one of Transient, Throttle, Unavailable, Partitioned.
	Class error
	// Service names the failing service (Service* constants).
	Service string
	// Op is the API call that failed, e.g. "put" or "invoke:fn".
	Op string
	// Region is the affected region; empty for non-regional calls.
	Region catalog.Region
}

// Error implements error.
func (e *Error) Error() string {
	if e.Region != "" {
		return fmt.Sprintf("%v (%s %s in %s)", e.Class, e.Service, e.Op, e.Region)
	}
	return fmt.Sprintf("%v (%s %s)", e.Class, e.Service, e.Op)
}

// Unwrap exposes the class sentinel to errors.Is.
func (e *Error) Unwrap() error { return e.Class }

func className(class error) string {
	switch class {
	case Transient:
		return "transient"
	case Throttle:
		return "throttle"
	case Unavailable:
		return "unavailable"
	case Partitioned:
		return "partitioned"
	default:
		return "other"
	}
}
