package chaos

import (
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// DefaultHomeRegion is where non-regional service calls (DynamoDB
// tables, Lambda invocations, the event bus) are attributed when a
// brownout names a region — matching the deployment stack's home.
const DefaultHomeRegion = catalog.Region("us-east-1")

// Injector draws faults for service calls according to a Schedule. Each
// service uses its own named RNG stream, so the fault sequence seen by
// one service does not depend on the call volume of another, and an Off
// schedule draws nothing at all.
type Injector struct {
	eng   *simclock.Engine
	seed  int64
	sched Schedule
	home  catalog.Region
	rngs  map[string]*simclock.RNG

	injected  map[string]int // "service/class" -> count
	total     int
	dropped   int
	latSpikes int
	corrupted int
}

// NewInjector builds an injector over the engine's clock. The seed
// should be the experiment's master seed; streams are derived per
// service.
func NewInjector(eng *simclock.Engine, seed int64, sched Schedule) *Injector {
	return &Injector{
		eng:      eng,
		seed:     seed,
		sched:    sched,
		home:     DefaultHomeRegion,
		rngs:     make(map[string]*simclock.RNG),
		injected: make(map[string]int),
	}
}

// SetHomeRegion overrides the region non-regional calls are attributed
// to for brownout matching.
func (inj *Injector) SetHomeRegion(r catalog.Region) { inj.home = r }

// Schedule returns the active schedule.
func (inj *Injector) Schedule() Schedule { return inj.sched }

func (inj *Injector) rng(name string) *simclock.RNG {
	g, ok := inj.rngs[name]
	if !ok {
		g = simclock.Stream(inj.seed, "chaos/"+name)
		inj.rngs[name] = g
	}
	return g
}

func (inj *Injector) record(service string, class error) {
	inj.total++
	inj.injected[service+"/"+className(class)]++
}

func (inj *Injector) fail(service, op string, region catalog.Region, class error) error {
	inj.record(service, class)
	return &Error{Class: class, Service: service, Op: op, Region: region}
}

// Fault decides whether one API call fails, returning the injected
// error or nil. Brownouts and op outages are checked first (they are
// deterministic and draw no randomness); per-call rates draw from the
// service's stream.
func (inj *Injector) Fault(service, op string, region catalog.Region) error {
	if inj == nil || !inj.sched.Enabled() {
		return nil
	}
	now := inj.eng.Now()
	target := region
	if target == "" {
		target = inj.home
	}
	for _, b := range inj.sched.Brownouts {
		if !b.Contains(now) {
			continue
		}
		if b.Region != "" && b.Region != target {
			continue
		}
		if len(b.Services) > 0 && !containsString(b.Services, service) {
			continue
		}
		return inj.fail(service, op, region, Unavailable)
	}
	for _, p := range inj.sched.Partitions {
		if !p.Contains(now) {
			continue
		}
		if len(p.Regions) > 0 && !containsRegion(p.Regions, target) {
			continue
		}
		if len(p.Services) > 0 && !containsString(p.Services, service) {
			continue
		}
		return inj.fail(service, op, region, Partitioned)
	}
	for _, o := range inj.sched.OpOutages {
		if o.Service == service && hasPrefix(op, o.OpPrefix) && o.Contains(now) {
			return inj.fail(service, op, region, Unavailable)
		}
	}
	rates, ok := inj.sched.ErrorRates[service]
	if !ok {
		return nil
	}
	if rates.Transient > 0 && inj.rng(service).Bool(rates.Transient) {
		return inj.fail(service, op, region, Transient)
	}
	if rates.Throttle > 0 && inj.rng(service).Bool(rates.Throttle) {
		return inj.fail(service, op, region, Throttle)
	}
	return nil
}

// ServiceFault returns a closure suitable for a service's SetFault hook.
// The returned func has the shared interceptor signature, assignable to
// each service package's named FaultFunc type.
func (inj *Injector) ServiceFault(service string) func(op string, region catalog.Region) error {
	return func(op string, region catalog.Region) error {
		return inj.Fault(service, op, region)
	}
}

// Latency returns the extra duration to add to one Lambda invocation
// (zero when no spike hits). Spikes draw from their own stream so they
// do not shift the fault draws.
func (inj *Injector) Latency(op string) time.Duration {
	if inj == nil || !inj.sched.Enabled() || inj.sched.LatencySpikeRate <= 0 {
		return 0
	}
	if inj.rng(ServiceLambda + "/latency").Bool(inj.sched.LatencySpikeRate) {
		inj.latSpikes++
		return inj.sched.LatencySpike
	}
	return 0
}

// CorruptGet decides whether one S3 Get of bucket/key returns bit-flipped
// data, suitable for the store's SetCorrupt hook. Draws come from a
// dedicated stream so enabling corruption never shifts the fault draws.
func (inj *Injector) CorruptGet(bucket, key string) bool {
	if inj == nil || !inj.sched.Enabled() || len(inj.sched.ObjectCorruptions) == 0 {
		return false
	}
	now := inj.eng.Now()
	for _, oc := range inj.sched.ObjectCorruptions {
		if oc.Bucket != bucket || !hasPrefix(key, oc.KeyPrefix) || !oc.Contains(now) || oc.Rate <= 0 {
			continue
		}
		if inj.rng(ServiceS3 + "/corrupt").Bool(oc.Rate) {
			inj.corrupted++
			return true
		}
	}
	return false
}

// Drop decides whether one matched EventBridge rule delivery is lost,
// suitable for the bus's SetDrop hook.
func (inj *Injector) Drop(rule, source, detailType string) bool {
	if inj == nil || !inj.sched.Enabled() || inj.sched.DropRate <= 0 {
		return false
	}
	if len(inj.sched.DropDetailTypes) > 0 && !containsString(inj.sched.DropDetailTypes, detailType) {
		return false
	}
	if inj.rng(ServiceEventBridge + "/drop").Bool(inj.sched.DropRate) {
		inj.dropped++
		return true
	}
	return false
}

// Stats summarises what was injected so far.
type Stats struct {
	// Total faults injected across all services.
	Total int
	// Dropped EventBridge deliveries.
	Dropped int
	// LatencySpikes counts slowed Lambda invocations.
	LatencySpikes int
	// Corrupted counts bit-flipped S3 reads.
	Corrupted int
	// ByKey maps "service/class" to injected counts, for reporting.
	ByKey map[string]int
}

// Keys returns the ByKey keys sorted, for deterministic rendering.
func (s Stats) Keys() []string {
	out := make([]string, 0, len(s.ByKey))
	for k := range s.ByKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats reports injection counters (copies; safe to retain).
func (inj *Injector) Stats() Stats {
	by := make(map[string]int, len(inj.injected))
	for k, v := range inj.injected {
		by[k] = v
	}
	return Stats{Total: inj.total, Dropped: inj.dropped, LatencySpikes: inj.latSpikes, Corrupted: inj.corrupted, ByKey: by}
}

func containsRegion(xs []catalog.Region, want catalog.Region) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
