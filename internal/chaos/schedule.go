package chaos

import (
	"fmt"
	"time"

	"spotverse/internal/catalog"
)

// Intensity grades a fault schedule for the resilience sweep.
type Intensity int

// Intensities, in increasing order of injected failure mass.
const (
	// Off injects nothing; the wrapped services are pass-through and
	// runs are bit-identical to an uninjected environment.
	Off Intensity = iota
	Low
	Medium
	Severe
)

// String implements fmt.Stringer.
func (i Intensity) String() string {
	switch i {
	case Off:
		return "off"
	case Low:
		return "low"
	case Medium:
		return "medium"
	case Severe:
		return "severe"
	default:
		return "unknown"
	}
}

// ParseIntensity maps a textual intensity name ("off", "low", "medium",
// "severe") to its Intensity, rejecting anything else.
func ParseIntensity(s string) (Intensity, error) {
	for _, i := range []Intensity{Off, Low, Medium, Severe} {
		if s == i.String() {
			return i, nil
		}
	}
	return Off, fmt.Errorf("chaos: unknown intensity %q (want off, low, medium, or severe)", s)
}

// Window is a half-open time interval [From, To).
type Window struct {
	From, To time.Time
}

// Contains reports whether at falls inside the window.
func (w Window) Contains(at time.Time) bool {
	return !at.Before(w.From) && at.Before(w.To)
}

// Brownout is a sustained regional control-plane failure: every call to
// the listed services that touches Region fails Unavailable for the
// window's duration.
type Brownout struct {
	// Region the brownout hits. Empty means every region (a global
	// control-plane event). Non-regional service calls are attributed to
	// the injector's home region.
	Region catalog.Region
	// Services affected (Service* names); empty means all services.
	Services []string
	Window
}

// Partition is a regional network partition: every call to the listed
// services that touches one of the named regions fails Partitioned for
// the window's duration. Unlike a Brownout — where the service itself
// is down — a partition models the network between the caller and the
// region being cut while the region keeps running, which is the
// precondition for split-brain control planes.
type Partition struct {
	// Regions cut off by the partition; empty means every region.
	Regions []catalog.Region
	// Services affected (Service* names); empty means all services.
	Services []string
	Window
}

// SplitBrain is a double-controller fault: for the window's duration a
// rival controller incarnation runs concurrently with the primary,
// both subscribed to interruption events and both sweeping the same
// journal. The injector cannot spawn controllers itself; harnesses
// (see experiment.ScheduleSplitBrains) actuate the windows. Surviving
// one requires the lease-fenced commit path (core.Config.Lease).
type SplitBrain struct {
	Window
}

// OpOutage fails every call whose op starts with OpPrefix on one
// service during the window — e.g. silencing the Monitor's collector
// Lambda so advisor snapshots age out.
type OpOutage struct {
	Service  string
	OpPrefix string
	Window
}

// ControllerKill schedules a control-plane crash: at At the controller's
// in-memory registries (pending migrations, breakers, monitor caches)
// are lost and the controller cold-starts, rebuilding state from its
// DynamoDB journal — or from nothing, when journaling is disabled.
type ControllerKill struct {
	At time.Time
}

// ObjectCorruption flips a bit in objects read from Bucket under
// KeyPrefix during the window: each Get draws independently against
// Rate, modelling silent storage corruption surfacing on the read path.
type ObjectCorruption struct {
	Bucket    string
	KeyPrefix string
	Rate      float64
	Window
}

// BucketLoss destroys every object in Bucket at At — a whole-bucket
// regional data-loss event. The bucket itself stays usable afterwards,
// so replication can repopulate it.
type BucketLoss struct {
	Bucket string
	At     time.Time
}

// Rates are per-call fault probabilities for one service.
type Rates struct {
	// Transient is the probability a call fails with a Transient error.
	Transient float64
	// Throttle is the probability a call fails with a Throttle error
	// (drawn after the transient check passes).
	Throttle float64
}

// Schedule declares what an Injector injects. The zero value injects
// nothing.
type Schedule struct {
	// Intensity labels the schedule; Off short-circuits all injection
	// regardless of the other fields.
	Intensity Intensity
	// ErrorRates maps service name to per-call fault probabilities.
	ErrorRates map[string]Rates
	// LatencySpikeRate is the probability a Lambda invocation is slowed
	// by LatencySpike (modelling cold starts and degraded dependencies).
	LatencySpikeRate float64
	// LatencySpike is the added invocation duration when a spike hits.
	LatencySpike time.Duration
	// Brownouts are sustained regional service-family failures.
	Brownouts []Brownout
	// Partitions cut the network to whole regions for a window; affected
	// calls fail Partitioned. Checked after Brownouts, before error
	// rates — like brownouts they are deterministic and draw no
	// randomness, so adding partitions never shifts the rate streams.
	Partitions []Partition
	// SplitBrains run a rival controller incarnation for each window
	// (actuated by harnesses, not the injector; see SplitBrain).
	SplitBrains []SplitBrain
	// OpOutages fail specific ops for a window (e.g. the metrics
	// collector, to starve the Optimizer of fresh advisor data).
	OpOutages []OpOutage
	// DropRate is the probability one matched EventBridge rule delivery
	// is silently lost — a lost 2-minute interruption notice.
	DropRate float64
	// DropDetailTypes restricts DropRate to the listed detail types;
	// empty means every delivery is at risk.
	DropDetailTypes []string
	// ControllerKills crash the control plane at scheduled sim times.
	// The injector cannot reach the controller itself; harnesses (see
	// experiment.ScheduleControllerKills) schedule the restarts.
	ControllerKills []ControllerKill
	// ObjectCorruptions bit-flip S3 reads matching bucket/prefix windows.
	ObjectCorruptions []ObjectCorruption
	// BucketLosses wipe whole buckets at scheduled sim times.
	BucketLosses []BucketLoss
}

// Enabled reports whether the schedule can inject anything at all.
func (s Schedule) Enabled() bool { return s.Intensity != Off }

// Preset returns the canonical schedule for an intensity, with windowed
// events anchored at start (the simulation's clock origin). Callers may
// append further Brownouts or OpOutages before handing it to an
// Injector.
func Preset(i Intensity, start time.Time) Schedule {
	switch i {
	case Low:
		return Schedule{
			Intensity: Low,
			ErrorRates: map[string]Rates{
				ServiceDynamo:     {Transient: 0.02},
				ServiceS3:         {Transient: 0.02, Throttle: 0.01},
				ServiceLambda:     {Transient: 0.02},
				ServiceCloudWatch: {Transient: 0.01},
				ServiceStepFn:     {Transient: 0.01},
				ServiceEFS:        {Transient: 0.02},
			},
			LatencySpikeRate: 0.05,
			LatencySpike:     2 * time.Second,
			DropRate:         0.02,
		}
	case Medium:
		return Schedule{
			Intensity: Medium,
			ErrorRates: map[string]Rates{
				ServiceDynamo:     {Transient: 0.06, Throttle: 0.02},
				ServiceS3:         {Transient: 0.06, Throttle: 0.02},
				ServiceLambda:     {Transient: 0.06},
				ServiceCloudWatch: {Transient: 0.03},
				ServiceStepFn:     {Transient: 0.03},
				ServiceEFS:        {Transient: 0.06},
			},
			LatencySpikeRate: 0.10,
			LatencySpike:     10 * time.Second,
			DropRate:         0.08,
			Brownouts: []Brownout{{
				// A partial brownout while the batch is still running:
				// DynamoDB and Lambda fail in the home region but the
				// CloudWatch sweep and Step Functions stay alive, so the
				// Controller keeps retrying into the outage.
				Region:   "us-east-1",
				Services: []string{ServiceDynamo, ServiceLambda},
				Window:   Window{From: start.Add(8 * time.Hour), To: start.Add(14 * time.Hour)},
			}},
		}
	case Severe:
		return Schedule{
			Intensity: Severe,
			ErrorRates: map[string]Rates{
				ServiceDynamo:     {Transient: 0.15, Throttle: 0.05},
				ServiceS3:         {Transient: 0.15, Throttle: 0.05},
				ServiceLambda:     {Transient: 0.15},
				ServiceCloudWatch: {Transient: 0.08},
				ServiceStepFn:     {Transient: 0.08},
				ServiceEFS:        {Transient: 0.15},
			},
			LatencySpikeRate: 0.15,
			LatencySpike:     30 * time.Second,
			DropRate:         0.25,
			Brownouts: []Brownout{
				{
					// Hour 6: DynamoDB and Lambda fall over in the home
					// region for 12 hours, squarely inside the
					// interruption-heavy phase of a 10-11 h workload batch.
					// The sweep and Step Functions stay alive, so retries
					// hammer the outage until the breakers trip.
					Region:   "us-east-1",
					Services: []string{ServiceDynamo, ServiceLambda},
					Window:   Window{From: start.Add(6 * time.Hour), To: start.Add(18 * time.Hour)},
				},
				{
					// Day 4: a shorter full control-plane blackout —
					// during it even the sweep timer misses its ticks.
					Region: "us-east-1",
					Window: Window{From: start.Add(78 * time.Hour), To: start.Add(86 * time.Hour)},
				},
			},
		}
	default:
		return Schedule{Intensity: Off}
	}
}
