// Package catalog defines the static cloud inventory the simulation runs
// against: regions and their availability zones, instance types with their
// hardware specifications, and on-demand price tables.
//
// The inventory mirrors the slice of AWS the SpotVerse paper evaluates on:
// the m5 family in three sizes, c5.2xlarge, r5.2xlarge and p3.2xlarge
// across sixteen commercial regions. Per-region on-demand multipliers and
// reliability tiers are calibrated so the paper's groupings hold (see
// DESIGN.md "Calibration notes"): ca-central-1 is the cheapest m5.xlarge
// spot region, the threshold-4 quartet is globally cheapest but least
// stable, and the threshold-6 quartet is the stable set.
package catalog

import (
	"fmt"
	"sort"
)

// Region identifies a cloud region, e.g. "ca-central-1".
type Region string

// AZ identifies an availability zone within a region, e.g. "ca-central-1a".
type AZ string

// Region reports the region an AZ belongs to (everything before the final
// one-letter suffix).
func (z AZ) Region() Region {
	if len(z) == 0 {
		return ""
	}
	return Region(z[:len(z)-1])
}

// InstanceType identifies an instance type, e.g. "m5.xlarge".
type InstanceType string

// Family reports the instance family prefix, e.g. "m5".
func (t InstanceType) Family() string {
	for i := 0; i < len(t); i++ {
		if t[i] == '.' {
			return string(t[:i])
		}
	}
	return string(t)
}

// Size reports the size suffix, e.g. "xlarge".
func (t InstanceType) Size() string {
	for i := 0; i < len(t); i++ {
		if t[i] == '.' {
			return string(t[i+1:])
		}
	}
	return ""
}

// InstanceSpec describes an instance type's hardware and base pricing.
type InstanceSpec struct {
	Type InstanceType
	// VCPU is the number of virtual CPUs.
	VCPU int
	// MemoryGiB is the instance memory in GiB.
	MemoryGiB float64
	// GPUs is the number of attached accelerators (p3 family only).
	GPUs int
	// Category is the marketing category, e.g. "general-purpose".
	Category string
	// BaseOnDemandUSD is the us-east-1 on-demand hourly price in USD;
	// other regions apply their multiplier.
	BaseOnDemandUSD float64
}

// ReliabilityTier buckets regions by how hostile their spot markets are in
// the experiment window. It seeds the market model's latent reliability
// walk; actual scores fluctuate around the tier.
type ReliabilityTier int

// Reliability tiers, best first.
const (
	// TierStable regions hold Stability Score ~3 and high SPS
	// (the paper's threshold-6 quartet).
	TierStable ReliabilityTier = iota + 1
	// TierModerate regions hold Stability Score ~2
	// (the threshold-5 quartet).
	TierModerate
	// TierVolatile regions hold Stability Score ~1-2 with the cheapest
	// prices (the threshold-4 quartet).
	TierVolatile
	// TierHostile regions are the interruption-heavy tail.
	TierHostile
)

// RegionInfo describes a region's zones and calibration parameters.
type RegionInfo struct {
	Region Region
	// Zones lists the region's availability zones.
	Zones []AZ
	// PriceMultiplier scales base on-demand prices for this region.
	PriceMultiplier float64
	// SpotDiscount is the region's typical spot price as a fraction of
	// its on-demand price (before market noise).
	SpotDiscount float64
	// Tier seeds the region's latent reliability.
	Tier ReliabilityTier
	// HasP3 reports whether the p3 (GPU) family is offered here; the
	// paper notes several regions lack p3.2xlarge.
	HasP3 bool
	// Continent groups regions for data-transfer pricing.
	Continent string
}

// Catalog is an immutable inventory of regions and instance types.
type Catalog struct {
	regions map[Region]RegionInfo
	types   map[InstanceType]InstanceSpec
	// typeSpotTilt skews a specific (type, region) spot discount so that
	// per-type cheapest regions differ (Table 1 of the paper).
	typeSpotTilt map[InstanceType]map[Region]float64
}

// Default returns the inventory used throughout the reproduction.
func Default() *Catalog {
	c := &Catalog{
		regions:      make(map[Region]RegionInfo, len(defaultRegions)),
		types:        make(map[InstanceType]InstanceSpec, len(defaultTypes)),
		typeSpotTilt: defaultSpotTilt(),
	}
	for _, r := range defaultRegions {
		c.regions[r.Region] = r
	}
	for _, t := range defaultTypes {
		c.types[t.Type] = t
	}
	return c
}

// Regions returns all regions sorted by name.
func (c *Catalog) Regions() []Region {
	out := make([]Region, 0, len(c.regions))
	for r := range c.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RegionInfo returns the region record.
func (c *Catalog) RegionInfo(r Region) (RegionInfo, error) {
	info, ok := c.regions[r]
	if !ok {
		return RegionInfo{}, fmt.Errorf("catalog: unknown region %q", r)
	}
	return info, nil
}

// Zones returns the availability zones of a region.
func (c *Catalog) Zones(r Region) []AZ {
	info, ok := c.regions[r]
	if !ok {
		return nil
	}
	out := make([]AZ, len(info.Zones))
	copy(out, info.Zones)
	return out
}

// InstanceTypes returns all instance types sorted by name.
func (c *Catalog) InstanceTypes() []InstanceType {
	out := make([]InstanceType, 0, len(c.types))
	for t := range c.types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Spec returns the hardware specification of an instance type.
func (c *Catalog) Spec(t InstanceType) (InstanceSpec, error) {
	s, ok := c.types[t]
	if !ok {
		return InstanceSpec{}, fmt.Errorf("catalog: unknown instance type %q", t)
	}
	return s, nil
}

// Offered reports whether the instance type is available in the region.
func (c *Catalog) Offered(t InstanceType, r Region) bool {
	info, ok := c.regions[r]
	if !ok {
		return false
	}
	spec, ok := c.types[t]
	if !ok {
		return false
	}
	if spec.GPUs > 0 && !info.HasP3 {
		return false
	}
	return true
}

// OfferedRegions returns the regions offering the instance type, sorted.
func (c *Catalog) OfferedRegions(t InstanceType) []Region {
	var out []Region
	for _, r := range c.Regions() {
		if c.Offered(t, r) {
			out = append(out, r)
		}
	}
	return out
}

// OnDemandPrice returns the hourly on-demand USD price of t in r.
func (c *Catalog) OnDemandPrice(t InstanceType, r Region) (float64, error) {
	spec, err := c.Spec(t)
	if err != nil {
		return 0, err
	}
	info, err := c.RegionInfo(r)
	if err != nil {
		return 0, err
	}
	if !c.Offered(t, r) {
		return 0, fmt.Errorf("catalog: %s not offered in %s", t, r)
	}
	return spec.BaseOnDemandUSD * info.PriceMultiplier, nil
}

// BaselineSpotPrice returns the calibration midpoint for t's spot price in
// r (before market noise): on-demand × region discount × per-type tilt.
func (c *Catalog) BaselineSpotPrice(t InstanceType, r Region) (float64, error) {
	od, err := c.OnDemandPrice(t, r)
	if err != nil {
		return 0, err
	}
	info := c.regions[r]
	tilt := 1.0
	if m, ok := c.typeSpotTilt[t]; ok {
		if v, ok := m[r]; ok {
			tilt = v
		}
	}
	return od * info.SpotDiscount * tilt, nil
}

// CheapestOnDemand returns the region with the lowest on-demand price for
// t among the offered regions, with the price.
func (c *Catalog) CheapestOnDemand(t InstanceType) (Region, float64, error) {
	var (
		best      Region
		bestPrice float64
		found     bool
	)
	for _, r := range c.OfferedRegions(t) {
		p, err := c.OnDemandPrice(t, r)
		if err != nil {
			continue
		}
		if !found || p < bestPrice {
			best, bestPrice, found = r, p, true
		}
	}
	if !found {
		return "", 0, fmt.Errorf("catalog: %s offered nowhere", t)
	}
	return best, bestPrice, nil
}

// CrossContinent reports whether two regions are on different continents
// (used for S3 transfer pricing).
func (c *Catalog) CrossContinent(a, b Region) bool {
	ia, oka := c.regions[a]
	ib, okb := c.regions[b]
	if !oka || !okb {
		return true
	}
	return ia.Continent != ib.Continent
}

func zones(r Region, n int) []AZ {
	suffixes := []string{"a", "b", "c", "d"}
	out := make([]AZ, 0, n)
	for i := 0; i < n && i < len(suffixes); i++ {
		out = append(out, AZ(string(r)+suffixes[i]))
	}
	return out
}

// Instance types evaluated in the paper (Section 5.2.2, Table 1).
const (
	M5Large   InstanceType = "m5.large"
	M5XLarge  InstanceType = "m5.xlarge"
	M52XLarge InstanceType = "m5.2xlarge"
	C52XLarge InstanceType = "c5.2xlarge"
	R52XLarge InstanceType = "r5.2xlarge"
	P32XLarge InstanceType = "p3.2xlarge"
)

var defaultTypes = []InstanceSpec{
	{Type: M5Large, VCPU: 2, MemoryGiB: 8, Category: "general-purpose", BaseOnDemandUSD: 0.096},
	{Type: M5XLarge, VCPU: 4, MemoryGiB: 16, Category: "general-purpose", BaseOnDemandUSD: 0.192},
	{Type: M52XLarge, VCPU: 8, MemoryGiB: 32, Category: "general-purpose", BaseOnDemandUSD: 0.384},
	{Type: C52XLarge, VCPU: 8, MemoryGiB: 16, Category: "compute-optimized", BaseOnDemandUSD: 0.34},
	{Type: R52XLarge, VCPU: 8, MemoryGiB: 64, Category: "memory-optimized", BaseOnDemandUSD: 0.504},
	{Type: P32XLarge, VCPU: 8, MemoryGiB: 61, GPUs: 1, Category: "gpu-optimized", BaseOnDemandUSD: 3.06},
}

// defaultRegions encodes the calibration described in DESIGN.md:
//
//   - Threshold-6 quartet (stable): us-west-1, ap-northeast-3, eu-west-1,
//     eu-north-1 — reliable, mid prices.
//   - Threshold-5 quartet (moderate): ap-southeast-1, eu-west-3,
//     ca-central-1, eu-west-2. ca-central-1 carries the cheapest m5.xlarge
//     spot price, which is what makes it the paper's tempting-but-risky
//     single-region baseline.
//   - Threshold-4 quartet (volatile, cheapest overall): us-east-1,
//     us-east-2, ap-southeast-2, us-west-2.
//   - Remaining regions fill out the long tail.
var defaultRegions = []RegionInfo{
	// Stable quartet.
	{Region: "us-west-1", Zones: zones("us-west-1", 2), PriceMultiplier: 1.08, SpotDiscount: 0.30, Tier: TierStable, HasP3: false, Continent: "na"},
	{Region: "ap-northeast-3", Zones: zones("ap-northeast-3", 3), PriceMultiplier: 1.10, SpotDiscount: 0.33, Tier: TierStable, HasP3: false, Continent: "ap"},
	{Region: "eu-west-1", Zones: zones("eu-west-1", 3), PriceMultiplier: 1.06, SpotDiscount: 0.31, Tier: TierStable, HasP3: true, Continent: "eu"},
	{Region: "eu-north-1", Zones: zones("eu-north-1", 3), PriceMultiplier: 0.99, SpotDiscount: 0.35, Tier: TierStable, HasP3: false, Continent: "eu"},
	// Moderate quartet.
	{Region: "ap-southeast-1", Zones: zones("ap-southeast-1", 3), PriceMultiplier: 1.10, SpotDiscount: 0.33, Tier: TierModerate, HasP3: true, Continent: "ap"},
	{Region: "eu-west-3", Zones: zones("eu-west-3", 3), PriceMultiplier: 1.08, SpotDiscount: 0.34, Tier: TierModerate, HasP3: false, Continent: "eu"},
	{Region: "ca-central-1", Zones: zones("ca-central-1", 3), PriceMultiplier: 1.04, SpotDiscount: 0.30, Tier: TierModerate, HasP3: false, Continent: "na"},
	{Region: "eu-west-2", Zones: zones("eu-west-2", 3), PriceMultiplier: 1.07, SpotDiscount: 0.34, Tier: TierModerate, HasP3: false, Continent: "eu"},
	// Volatile-but-cheap quartet.
	{Region: "us-east-1", Zones: zones("us-east-1", 4), PriceMultiplier: 1.00, SpotDiscount: 0.28, Tier: TierVolatile, HasP3: true, Continent: "na"},
	{Region: "us-east-2", Zones: zones("us-east-2", 3), PriceMultiplier: 1.00, SpotDiscount: 0.29, Tier: TierVolatile, HasP3: true, Continent: "na"},
	{Region: "ap-southeast-2", Zones: zones("ap-southeast-2", 3), PriceMultiplier: 1.10, SpotDiscount: 0.26, Tier: TierVolatile, HasP3: true, Continent: "ap"},
	{Region: "us-west-2", Zones: zones("us-west-2", 4), PriceMultiplier: 1.00, SpotDiscount: 0.30, Tier: TierVolatile, HasP3: true, Continent: "na"},
	// Tail.
	{Region: "eu-central-1", Zones: zones("eu-central-1", 3), PriceMultiplier: 1.10, SpotDiscount: 0.33, Tier: TierHostile, HasP3: true, Continent: "eu"},
	{Region: "ap-northeast-1", Zones: zones("ap-northeast-1", 3), PriceMultiplier: 1.12, SpotDiscount: 0.33, Tier: TierHostile, HasP3: true, Continent: "ap"},
	{Region: "ap-northeast-2", Zones: zones("ap-northeast-2", 4), PriceMultiplier: 1.08, SpotDiscount: 0.33, Tier: TierHostile, HasP3: false, Continent: "ap"},
	{Region: "sa-east-1", Zones: zones("sa-east-1", 3), PriceMultiplier: 1.35, SpotDiscount: 0.33, Tier: TierHostile, HasP3: false, Continent: "sa"},
}

// defaultSpotTilt skews per-type spot discounts so each instance type's
// cheapest spot region matches Table 1 of the paper:
//
//	m5.large   → us-west-2
//	m5.xlarge  → ca-central-1
//	m5.2xlarge → ap-northeast-3
//	r5.2xlarge → ca-central-1
//	c5.2xlarge → eu-north-1
func defaultSpotTilt() map[InstanceType]map[Region]float64 {
	return map[InstanceType]map[Region]float64{
		M5Large: {
			"us-west-2":    0.74,
			"ca-central-1": 1.05,
		},
		M5XLarge: {
			// ca-central-1 is the cheapest by a slim margin (Table 1):
			// the paper's trap region undercuts both the volatile quartet
			// and the tilted stable regions, which sit only a few percent
			// above it — close enough that reliability decides.
			"ca-central-1":   0.90,
			"us-east-1":      1.02,
			"eu-north-1":     0.82,
			"ap-northeast-3": 0.79,
			"us-west-1":      0.89,
			"eu-west-1":      0.88,
		},
		M52XLarge: {
			"ap-northeast-3": 0.70,
			"ca-central-1":   1.10,
		},
		R52XLarge: {
			"ca-central-1": 0.80,
		},
		C52XLarge: {
			"eu-north-1":   0.75,
			"ca-central-1": 1.08,
		},
	}
}
