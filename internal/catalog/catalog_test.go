package catalog

import (
	"testing"
	"testing/quick"
)

func TestDefaultInventoryShape(t *testing.T) {
	c := Default()
	if got := len(c.Regions()); got != 16 {
		t.Fatalf("regions = %d, want 16", got)
	}
	if got := len(c.InstanceTypes()); got != 6 {
		t.Fatalf("types = %d, want 6", got)
	}
}

func TestZonesBelongToRegion(t *testing.T) {
	c := Default()
	for _, r := range c.Regions() {
		zs := c.Zones(r)
		if len(zs) < 2 {
			t.Fatalf("region %s has %d zones, want >= 2", r, len(zs))
		}
		for _, z := range zs {
			if z.Region() != r {
				t.Fatalf("zone %s maps to region %s, want %s", z, z.Region(), r)
			}
		}
	}
}

func TestInstanceTypeParsing(t *testing.T) {
	if M5XLarge.Family() != "m5" || M5XLarge.Size() != "xlarge" {
		t.Fatalf("family/size = %s/%s", M5XLarge.Family(), M5XLarge.Size())
	}
	bare := InstanceType("weird")
	if bare.Family() != "weird" || bare.Size() != "" {
		t.Fatalf("bare parse = %s/%s", bare.Family(), bare.Size())
	}
}

func TestOnDemandPricing(t *testing.T) {
	c := Default()
	base, err := c.OnDemandPrice(M5XLarge, "us-east-1")
	if err != nil {
		t.Fatal(err)
	}
	if base != 0.192 {
		t.Fatalf("us-east-1 m5.xlarge = %v, want 0.192", base)
	}
	ca, err := c.OnDemandPrice(M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	if ca <= base {
		t.Fatalf("ca-central-1 %v should be pricier than us-east-1 %v", ca, base)
	}
	if _, err := c.OnDemandPrice(M5XLarge, "narnia-1"); err == nil {
		t.Fatal("unknown region should error")
	}
	if _, err := c.OnDemandPrice("z9.nano", "us-east-1"); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestBaselineSpotBelowOnDemand(t *testing.T) {
	c := Default()
	for _, tp := range c.InstanceTypes() {
		for _, r := range c.OfferedRegions(tp) {
			spot, err := c.BaselineSpotPrice(tp, r)
			if err != nil {
				t.Fatal(err)
			}
			od, err := c.OnDemandPrice(tp, r)
			if err != nil {
				t.Fatal(err)
			}
			if spot <= 0 || spot >= od {
				t.Fatalf("%s/%s: spot %v not in (0, od %v)", tp, r, spot, od)
			}
		}
	}
}

func TestP3Availability(t *testing.T) {
	c := Default()
	if c.Offered(P32XLarge, "ca-central-1") {
		t.Fatal("p3 should be unavailable in ca-central-1")
	}
	if !c.Offered(P32XLarge, "us-east-1") {
		t.Fatal("p3 should be available in us-east-1")
	}
	offered := c.OfferedRegions(P32XLarge)
	if len(offered) == 0 || len(offered) >= len(c.Regions()) {
		t.Fatalf("p3 offered in %d regions", len(offered))
	}
	if _, err := c.BaselineSpotPrice(P32XLarge, "ca-central-1"); err == nil {
		t.Fatal("baseline price in unoffered region should error")
	}
}

func TestCheapestOnDemand(t *testing.T) {
	c := Default()
	r, price, err := c.CheapestOnDemand(M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range c.OfferedRegions(M5XLarge) {
		p, err := c.OnDemandPrice(M5XLarge, other)
		if err != nil {
			t.Fatal(err)
		}
		if p < price {
			t.Fatalf("cheapest reported %s@%v but %s@%v is lower", r, price, other, p)
		}
	}
	if _, _, err := c.CheapestOnDemand("z9.nano"); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestCrossContinent(t *testing.T) {
	c := Default()
	if c.CrossContinent("us-east-1", "ca-central-1") {
		t.Fatal("both are NA")
	}
	if !c.CrossContinent("us-east-1", "eu-north-1") {
		t.Fatal("NA vs EU is cross-continent")
	}
	if !c.CrossContinent("us-east-1", "mars-1") {
		t.Fatal("unknown regions should be treated as cross-continent")
	}
}

func TestTiersCoverCalibrationQuartets(t *testing.T) {
	c := Default()
	want := map[ReliabilityTier][]Region{
		TierStable:   {"us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1"},
		TierModerate: {"ap-southeast-1", "eu-west-3", "ca-central-1", "eu-west-2"},
		TierVolatile: {"us-east-1", "us-east-2", "ap-southeast-2", "us-west-2"},
	}
	for tier, regions := range want {
		for _, r := range regions {
			info, err := c.RegionInfo(r)
			if err != nil {
				t.Fatal(err)
			}
			if info.Tier != tier {
				t.Fatalf("%s tier = %v, want %v", r, info.Tier, tier)
			}
		}
	}
}

func TestAZRegionProperty(t *testing.T) {
	f := func(suffix uint8) bool {
		r := Region("us-test-1")
		z := AZ(string(r) + string(rune('a'+suffix%4)))
		return z.Region() == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if AZ("").Region() != "" {
		t.Fatal("empty AZ region")
	}
}
