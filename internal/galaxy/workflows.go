package galaxy

// This file defines the paper's three workloads as Galaxy workflows
// (Section 5.1.1). Input dataset names expected by each workflow are
// documented on its constructor.

// wfInput wires a step input to a workflow-level dataset.
func wfInput(name string) InputRef { return InputRef{Workflow: name} }

// stepOut wires a step input to a prior step's output.
func stepOut(step, output string) InputRef { return InputRef{Step: step, Output: output} }

// GenomeReconstructionWorkflow is the paper's Galaxy-specific standard
// workload: a 23-step pipeline that reconstructs a viral genome from a
// VCF of nucleotide variations against a SARS-CoV-2-like reference and
// classifies it with a Pangolin-like tool.
//
// Workflow inputs: "reference" (single-record FASTA), "variants" (VCF),
// "lineages" (multi-record FASTA of lineage references).
func GenomeReconstructionWorkflow() *Workflow {
	return &Workflow{
		Name: "genome-reconstruction",
		Steps: []Step{
			// 1-2: import and validate inputs.
			{ID: "s01_ref_validate", Tool: "fasta_validate", Inputs: map[string]InputRef{"input": wfInput("reference")}},
			{ID: "s02_vcf_validate", Tool: "vcf_validate", Inputs: map[string]InputRef{"input": wfInput("variants")}},
			// 3-5: variant hygiene.
			{ID: "s03_vcf_stats_raw", Tool: "vcf_stats", Inputs: map[string]InputRef{"input": stepOut("s02_vcf_validate", "output")}},
			{ID: "s04_vcf_sort", Tool: "vcf_sort", Inputs: map[string]InputRef{"input": stepOut("s02_vcf_validate", "output")}},
			{ID: "s05_vcf_dedupe", Tool: "vcf_dedupe", Inputs: map[string]InputRef{"input": stepOut("s04_vcf_sort", "output")}},
			// 6-7: filtering.
			{ID: "s06_filter_qual", Tool: "vcf_filter_qual", Inputs: map[string]InputRef{"input": stepOut("s05_vcf_dedupe", "output")}, Params: map[string]string{"min_qual": "25"}},
			{ID: "s07_filter_pass", Tool: "vcf_filter_pass", Inputs: map[string]InputRef{"input": stepOut("s06_filter_qual", "output")}},
			// 8-9: class splits.
			{ID: "s08_snps", Tool: "vcf_select_snps", Inputs: map[string]InputRef{"input": stepOut("s07_filter_pass", "output")}},
			{ID: "s09_indels", Tool: "vcf_select_indels", Inputs: map[string]InputRef{"input": stepOut("s07_filter_pass", "output")}},
			// 10-11: per-class stats.
			{ID: "s10_snp_stats", Tool: "vcf_stats", Inputs: map[string]InputRef{"input": stepOut("s08_snps", "output")}},
			{ID: "s11_indel_stats", Tool: "vcf_stats", Inputs: map[string]InputRef{"input": stepOut("s09_indels", "output")}},
			// 12: reconstruction.
			{ID: "s12_consensus", Tool: "consensus_builder", Inputs: map[string]InputRef{
				"reference": stepOut("s01_ref_validate", "output"),
				"variants":  stepOut("s07_filter_pass", "output"),
			}},
			// 13-15: consensus QC.
			{ID: "s13_gc", Tool: "gc_report", Inputs: map[string]InputRef{"input": stepOut("s12_consensus", "consensus")}},
			{ID: "s14_ncheck", Tool: "n_content_check", Inputs: map[string]InputRef{"input": stepOut("s12_consensus", "consensus")}, Params: map[string]string{"max_n": "0.1"}},
			{ID: "s15_kmer_cons", Tool: "kmer_profile", Inputs: map[string]InputRef{"input": stepOut("s12_consensus", "consensus")}, Params: map[string]string{"k": "8"}},
			// 16-17: reference comparison.
			{ID: "s16_kmer_ref", Tool: "kmer_profile", Inputs: map[string]InputRef{"input": wfInput("reference_raw")}, Params: map[string]string{"k": "8"}},
			{ID: "s17_distance", Tool: "kmer_distance", Inputs: map[string]InputRef{
				"a": stepOut("s15_kmer_cons", "profile"),
				"b": stepOut("s16_kmer_ref", "profile"),
			}},
			// 18-19: lineage assignment.
			{ID: "s18_classify", Tool: "pangolin_classify", Inputs: map[string]InputRef{
				"genome":   stepOut("s12_consensus", "consensus"),
				"lineages": wfInput("lineages"),
			}},
			{ID: "s19_lineage_report", Tool: "lineage_report", Inputs: map[string]InputRef{"assignment": stepOut("s18_classify", "assignment")}},
			// 20-21: FASTA packaging and phylogenetic placement.
			{ID: "s20_fasta", Tool: "fasta_format", Inputs: map[string]InputRef{"input": stepOut("s12_consensus", "consensus")}, Params: map[string]string{"id": "reconstructed", "description": "consensus genome"}},
			{ID: "s21_placement", Tool: "phylo_placement", Inputs: map[string]InputRef{
				"genome":   stepOut("s20_fasta", "output"),
				"lineages": wfInput("lineages"),
			}},
			// 22-23: summary and archive.
			{ID: "s22_summary", Tool: "summary_report", Inputs: map[string]InputRef{
				"raw_stats":    stepOut("s03_vcf_stats_raw", "report"),
				"snp_stats":    stepOut("s10_snp_stats", "report"),
				"indel_stats":  stepOut("s11_indel_stats", "report"),
				"consensus":    stepOut("s12_consensus", "report"),
				"gc":           stepOut("s13_gc", "report"),
				"n_content":    stepOut("s14_ncheck", "report"),
				"ref_distance": stepOut("s17_distance", "report"),
				"lineage":      stepOut("s19_lineage_report", "report"),
			}},
			{ID: "s23_archive", Tool: "archive_outputs", Inputs: map[string]InputRef{
				"summary": stepOut("s22_summary", "report"),
				"genome":  stepOut("s20_fasta", "output"),
				"tree":    stepOut("s21_placement", "tree"),
			}},
		},
	}
}

// NGSPreprocessingShardWorkflow is the unit of the paper's checkpoint
// workload: quality assessment, adapter trimming, quality trimming, and a
// re-check for one shard of the segmented FastQC dataset. The workload
// layer runs one invocation per shard and records shard completion in
// DynamoDB, which is what makes the whole workload resumable.
//
// Workflow inputs: "reads" (FASTQ shard).
func NGSPreprocessingShardWorkflow() *Workflow {
	return &Workflow{
		Name: "ngs-preprocessing-shard",
		Steps: []Step{
			{ID: "p1_fastqc_pre", Tool: "fastqc", Inputs: map[string]InputRef{"input": wfInput("reads")}},
			{ID: "p2_cutadapt", Tool: "cutadapt", Inputs: map[string]InputRef{"input": wfInput("reads")}},
			{ID: "p3_qtrim", Tool: "quality_trim", Inputs: map[string]InputRef{"input": stepOut("p2_cutadapt", "output")}},
			{ID: "p4_fastqc_post", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("p3_qtrim", "output")}},
			{ID: "p5_multiqc", Tool: "multiqc", Inputs: map[string]InputRef{
				"pre":     stepOut("p1_fastqc_pre", "report"),
				"post":    stepOut("p4_fastqc_post", "report"),
				"trimlog": stepOut("p2_cutadapt", "report"),
			}},
		},
	}
}

// QIIME2Workflow is the paper's standard general workload: demultiplexing,
// DADA2 denoising, phylogeny-adjacent profiling, and diversity analysis of
// a microbial community.
//
// Workflow inputs: "reads" (multiplexed FASTQ), "barcodes" (TSV
// sample\tbarcode).
func QIIME2Workflow(sample string) *Workflow {
	return &Workflow{
		Name: "qiime2-microbiome",
		Steps: []Step{
			{ID: "q1_demux", Tool: "demultiplex", Inputs: map[string]InputRef{
				"input":    wfInput("reads"),
				"barcodes": wfInput("barcodes"),
			}},
			{ID: "q2_qtrim", Tool: "quality_trim", Inputs: map[string]InputRef{"input": stepOut("q1_demux", "sample_"+sample)}},
			{ID: "q3_dada2", Tool: "dada2_denoise", Inputs: map[string]InputRef{"input": stepOut("q2_qtrim", "output")}},
			{ID: "q4_diversity", Tool: "diversity_analysis", Inputs: map[string]InputRef{"table": stepOut("q3_dada2", "table")}},
			{ID: "q5_summary", Tool: "summary_report", Inputs: map[string]InputRef{
				"demux":     stepOut("q1_demux", "report"),
				"dada2":     stepOut("q3_dada2", "report"),
				"diversity": stepOut("q4_diversity", "report"),
			}},
		},
	}
}
