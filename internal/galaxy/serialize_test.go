package galaxy

import (
	"errors"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	orig := GenomeReconstructionWorkflow()
	data, err := ExportJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Steps) != len(orig.Steps) {
		t.Fatalf("round trip: %s/%d vs %s/%d", back.Name, len(back.Steps), orig.Name, len(orig.Steps))
	}
	for i := range orig.Steps {
		a, b := orig.Steps[i], back.Steps[i]
		if a.ID != b.ID || a.Tool != b.Tool {
			t.Fatalf("step %d mismatch: %+v vs %+v", i, a, b)
		}
		for name, ref := range a.Inputs {
			if b.Inputs[name] != ref {
				t.Fatalf("step %s input %s: %+v vs %+v", a.ID, name, ref, b.Inputs[name])
			}
		}
		for k, v := range a.Params {
			if b.Params[k] != v {
				t.Fatalf("step %s param %s mismatch", a.ID, k)
			}
		}
	}
}

func TestImportedWorkflowRuns(t *testing.T) {
	g := newGalaxy(t)
	data, err := ExportJSON(NGSPreprocessingShardWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	wf, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	// Build a tiny read set inline.
	inputs := map[string]Dataset{
		"reads": {Name: "r.fastq", Format: "fastq", Data: []byte("@r1\nACGTACGTAC\n+\nIIIIIIIIII\n")},
	}
	inv, err := g.RunWorkflow(wf, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Completed {
		t.Fatal("imported workflow did not complete")
	}
}

func TestExportRejectsInvalidWorkflow(t *testing.T) {
	bad := &Workflow{Name: "bad", Steps: []Step{
		{ID: "a", Tool: "x", Inputs: map[string]InputRef{"in": stepOut("b", "o")}},
		{ID: "b", Tool: "x", Inputs: map[string]InputRef{"in": stepOut("a", "o")}},
	}}
	if _, err := ExportJSON(bad); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ImportJSON([]byte(`{"format":"other/9","name":"x","steps":[]}`)); err == nil || !strings.Contains(err.Error(), "unsupported format") {
		t.Fatalf("err = %v", err)
	}
	// Valid JSON, invalid DAG.
	cyclic := `{"format":"spotverse-galaxy-workflow/1","name":"c","steps":[
		{"id":"a","tool":"t","inputs":{"in":{"step":"b","output":"o"}}},
		{"id":"b","tool":"t","inputs":{"in":{"step":"a","output":"o"}}}]}`
	if _, err := ImportJSON([]byte(cyclic)); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestExportDeterministic(t *testing.T) {
	a, err := ExportJSON(QIIME2Workflow("s"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExportJSON(QIIME2Workflow("s"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("export not deterministic")
	}
	if !strings.Contains(string(a), `"format": "spotverse-galaxy-workflow/1"`) {
		t.Fatalf("format marker missing: %.100s", a)
	}
}
