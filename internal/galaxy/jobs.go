package galaxy

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/simclock"
)

// The paper's workloads run Galaxy jobs on cloud instances whose
// durations — not just their outputs — matter: interruptions land in the
// middle of step execution. JobRunner executes a workflow as timed jobs
// on the simulation clock: each step occupies simulated time proportional
// to its input size and the instance's compute capacity, tools run at
// their step's completion instant, and an in-flight run can be cancelled
// the way a spot reclaim kills an instance, reporting how many steps had
// finished.

// Errors returned by the job runner.
var (
	ErrJobCancelled = errors.New("galaxy: job cancelled")
	ErrJobRunning   = errors.New("galaxy: job still running")
)

// JobOptions tunes the duration model.
type JobOptions struct {
	// BasePerStep is each step's fixed cost (default 90 s).
	BasePerStep time.Duration
	// ThroughputBytesPerSec converts input bytes into processing time
	// (default 2 MiB/s).
	ThroughputBytesPerSec int64
	// VCPUs scales throughput and base cost: a 2-vCPU instance runs at
	// half the speed of the 4-vCPU reference (default 4).
	VCPUs int
}

func (o JobOptions) normalized() JobOptions {
	if o.BasePerStep <= 0 {
		o.BasePerStep = 90 * time.Second
	}
	if o.ThroughputBytesPerSec <= 0 {
		o.ThroughputBytesPerSec = 2 << 20
	}
	if o.VCPUs <= 0 {
		o.VCPUs = 4
	}
	return o
}

// stepDuration models one step's runtime from its input volume.
func (o JobOptions) stepDuration(inputBytes int64) time.Duration {
	seconds := float64(inputBytes) / float64(o.ThroughputBytesPerSec)
	d := o.BasePerStep + time.Duration(seconds*float64(time.Second))
	scale := 4.0 / float64(o.VCPUs)
	return time.Duration(float64(d) * scale)
}

// JobState is a job's lifecycle state.
type JobState int

// Job states.
const (
	JobRunning JobState = iota + 1
	JobCompleted
	JobCancelled
	JobFailed
)

// JobHandle tracks one timed workflow execution.
type JobHandle struct {
	runner *JobRunner
	wf     *Workflow

	state          JobState
	stepsCompleted int
	totalSteps     int
	started        time.Time
	finished       time.Time
	inv            *Invocation
	err            error
	done           func(*JobHandle)

	pending *simclock.Event
}

// State reports the job's current state.
func (h *JobHandle) State() JobState { return h.state }

// StepsCompleted reports finished steps so far.
func (h *JobHandle) StepsCompleted() int { return h.stepsCompleted }

// TotalSteps reports the workflow's step count.
func (h *JobHandle) TotalSteps() int { return h.totalSteps }

// Elapsed reports simulated runtime (so far, or total once finished).
func (h *JobHandle) Elapsed() time.Duration {
	end := h.finished
	if h.state == JobRunning {
		end = h.runner.eng.Now()
	}
	return end.Sub(h.started)
}

// Result returns the invocation once the job completed.
func (h *JobHandle) Result() (*Invocation, error) {
	switch h.state {
	case JobRunning:
		return nil, ErrJobRunning
	case JobCancelled:
		return nil, fmt.Errorf("workflow %q after %d/%d steps: %w", h.wf.Name, h.stepsCompleted, h.totalSteps, ErrJobCancelled)
	case JobFailed:
		return nil, h.err
	default:
		return h.inv, nil
	}
}

// Cancel aborts a running job (a spot reclaim mid-workflow). Cancelling
// a finished job is a no-op; it reports whether the job was running.
func (h *JobHandle) Cancel() bool {
	if h.state != JobRunning {
		return false
	}
	if h.pending != nil {
		h.pending.Cancel()
	}
	h.state = JobCancelled
	h.finished = h.runner.eng.Now()
	if h.done != nil {
		h.done(h)
	}
	return true
}

// JobRunner executes workflows as timed jobs.
type JobRunner struct {
	eng    *simclock.Engine
	galaxy *Instance
	opts   JobOptions
}

// NewJobRunner builds a runner over a Galaxy instance.
func NewJobRunner(eng *simclock.Engine, g *Instance, opts JobOptions) *JobRunner {
	return &JobRunner{eng: eng, galaxy: g, opts: opts.normalized()}
}

// Start begins executing the workflow on the clock. done (optional)
// fires when the job completes, fails, or is cancelled. Steps execute in
// topological order; each step's tool runs at its completion instant so
// outputs exist exactly when downstream steps start.
func (jr *JobRunner) Start(w *Workflow, inputs map[string]Dataset, done func(*JobHandle)) (*JobHandle, error) {
	order, err := w.Validate()
	if err != nil {
		return nil, err
	}
	for _, s := range w.Steps {
		if _, ok := jr.galaxy.shed[s.Tool]; !ok {
			return nil, fmt.Errorf("step %q: tool %q: %w", s.ID, s.Tool, ErrUnknownTool)
		}
	}
	h := &JobHandle{
		runner:     jr,
		wf:         w,
		state:      JobRunning,
		totalSteps: len(w.Steps),
		started:    jr.eng.Now(),
		done:       done,
	}
	inv := &Invocation{Workflow: w.Name, History: jr.galaxy.NewHistory("job: " + w.Name)}
	produced := make(map[string]map[string]Dataset, len(w.Steps))

	var runStep func(k int)
	runStep = func(k int) {
		if h.state != JobRunning {
			return
		}
		if k == len(order) {
			inv.Completed = true
			h.inv = inv
			h.state = JobCompleted
			h.finished = jr.eng.Now()
			if h.done != nil {
				h.done(h)
			}
			return
		}
		s := w.Steps[order[k]]
		in, size, err := jr.gatherInputs(s, inputs, produced)
		if err != nil {
			h.fail(err)
			return
		}
		h.pending = jr.eng.ScheduleAfter(jr.opts.stepDuration(size), "galaxy-job:"+s.ID, func() {
			if h.state != JobRunning {
				return
			}
			outs, err := jr.galaxy.shed[s.Tool].Run(in, s.Params)
			if err != nil {
				inv.Results = append(inv.Results, StepResult{StepID: s.ID, Tool: s.Tool, Err: err})
				h.fail(fmt.Errorf("step %q (%s): %w", s.ID, s.Tool, err))
				return
			}
			produced[s.ID] = outs
			// Sorted so StepResult.Outputs and the history dataset
			// order are identical on every run; the unsorted map range
			// here previously leaked iteration order into both.
			names := sortedKeys(outs)
			for _, name := range names {
				d := outs[name]
				inv.History.Add(Dataset{Name: s.ID + "/" + name, Format: d.Format, Data: d.Data})
			}
			inv.Results = append(inv.Results, StepResult{StepID: s.ID, Tool: s.Tool, Outputs: names})
			h.stepsCompleted++
			runStep(k + 1)
		})
	}
	runStep(0)
	return h, nil
}

func (h *JobHandle) fail(err error) {
	h.state = JobFailed
	h.err = err
	h.finished = h.runner.eng.Now()
	if h.done != nil {
		h.done(h)
	}
}

// gatherInputs resolves a step's inputs and sums their sizes.
func (jr *JobRunner) gatherInputs(s Step, inputs map[string]Dataset, produced map[string]map[string]Dataset) (map[string]Dataset, int64, error) {
	in := make(map[string]Dataset, len(s.Inputs))
	var size int64
	for _, name := range sortedKeys(s.Inputs) {
		ref := s.Inputs[name]
		if ref.Workflow != "" {
			d, ok := inputs[ref.Workflow]
			if !ok {
				return nil, 0, fmt.Errorf("step %q input %q: workflow input %q: %w", s.ID, name, ref.Workflow, ErrMissingInput)
			}
			in[name] = d
			size += int64(len(d.Data))
			continue
		}
		outs, ok := produced[ref.Step]
		if !ok {
			return nil, 0, fmt.Errorf("step %q input %q: step %q not finished: %w", s.ID, name, ref.Step, ErrUnknownInput)
		}
		d, ok := outs[ref.Output]
		if !ok {
			return nil, 0, fmt.Errorf("step %q input %q: step %q lacks output %q: %w", s.ID, name, ref.Step, ref.Output, ErrUnknownInput)
		}
		in[name] = d
		size += int64(len(d.Data))
	}
	return in, size, nil
}
