package galaxy

import (
	"fmt"
)

// Planemo is the paper's workflow-launcher integration: it authenticates
// against a Galaxy instance with an API key and drives workflow runs
// through the "API", as the user-data startup script does on each
// instance.
type Planemo struct {
	galaxy *Instance
	user   string
}

// NewPlanemo authenticates with the instance. The key must belong to a
// configured user.
func NewPlanemo(g *Instance, apiKey string) (*Planemo, error) {
	user, err := g.Authenticate(apiKey)
	if err != nil {
		return nil, fmt.Errorf("planemo: %w", err)
	}
	return &Planemo{galaxy: g, user: user}, nil
}

// User reports the authenticated user.
func (p *Planemo) User() string { return p.user }

// RunResult summarises one workflow run.
type RunResult struct {
	Workflow  string
	Steps     int
	Completed bool
	// Outputs maps "step/output" dataset names to their sizes.
	Outputs map[string]int
}

// Run validates and executes a workflow with the given inputs. hook may
// be nil; it observes per-step completion for checkpoint integrations.
func (p *Planemo) Run(w *Workflow, inputs map[string]Dataset, hook StepHook) (*RunResult, error) {
	inv, err := p.galaxy.RunWorkflow(w, inputs, hook)
	if err != nil {
		return nil, fmt.Errorf("planemo run %q: %w", w.Name, err)
	}
	res := &RunResult{
		Workflow:  inv.Workflow,
		Steps:     len(inv.Results),
		Completed: inv.Completed,
		Outputs:   make(map[string]int),
	}
	for _, name := range inv.History.Datasets() {
		if d, ok := inv.History.Get(name); ok {
			res.Outputs[name] = len(d.Data)
		}
	}
	return res, nil
}
