package galaxy

import (
	"testing"
	"time"

	"spotverse/internal/simclock"
)

// Regression tests for map-iteration-order leaks found by spotverse-lint
// (mapiter): step outputs and history dataset order used to follow Go's
// randomized map range, so the same workflow produced differently
// ordered invocations across runs. They are pinned to sorted order here
// so a reintroduced map range fails deterministically, not one run in N.

// fanOutTool emits several outputs whose sorted order differs from any
// likely insertion order, making ordering mistakes visible.
func fanOutTool() Tool {
	return Tool{
		ID:          "fan-out",
		Description: "emits zeta/alpha/mid from one input",
		Run: func(inputs map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			in := inputs["reads"]
			return map[string]Dataset{
				"zeta":  {Name: "zeta", Format: "txt", Data: in.Data},
				"alpha": {Name: "alpha", Format: "txt", Data: in.Data},
				"mid":   {Name: "mid", Format: "txt", Data: in.Data},
			}, nil
		},
	}
}

func fanOutWorkflow() *Workflow {
	return &Workflow{
		Name: "fan-out",
		Steps: []Step{{
			ID:     "s1",
			Tool:   "fan-out",
			Inputs: map[string]InputRef{"reads": {Workflow: "reads"}},
		}},
	}
}

func checkFanOutInvocation(t *testing.T, inv *Invocation) {
	t.Helper()
	if len(inv.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(inv.Results))
	}
	wantOutputs := []string{"alpha", "mid", "zeta"}
	got := inv.Results[0].Outputs
	if len(got) != len(wantOutputs) {
		t.Fatalf("Outputs = %v, want %v", got, wantOutputs)
	}
	for i, name := range wantOutputs {
		if got[i] != name {
			t.Fatalf("Outputs = %v, want %v", got, wantOutputs)
		}
	}
	wantDatasets := []string{"s1/alpha", "s1/mid", "s1/zeta"}
	ds := inv.History.Datasets()
	if len(ds) != len(wantDatasets) {
		t.Fatalf("Datasets = %v, want %v", ds, wantDatasets)
	}
	for i, name := range wantDatasets {
		if ds[i] != name {
			t.Fatalf("Datasets = %v, want %v", ds, wantDatasets)
		}
	}
}

func TestRunWorkflowOutputsSorted(t *testing.T) {
	g := New(Config{AdminUsers: []string{adminUser}})
	if err := g.InstallTool(adminUser, fanOutTool()); err != nil {
		t.Fatal(err)
	}
	inputs := map[string]Dataset{"reads": {Name: "reads", Format: "txt", Data: []byte("acgt")}}
	for run := 0; run < 5; run++ {
		inv, err := g.RunWorkflow(fanOutWorkflow(), inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkFanOutInvocation(t, inv)
	}
}

func TestJobRunnerOutputsSorted(t *testing.T) {
	inputs := map[string]Dataset{"reads": {Name: "reads", Format: "txt", Data: []byte("acgt")}}
	for run := 0; run < 5; run++ {
		eng := simclock.NewEngine()
		g := New(Config{AdminUsers: []string{adminUser}})
		if err := g.InstallTool(adminUser, fanOutTool()); err != nil {
			t.Fatal(err)
		}
		jr := NewJobRunner(eng, g, JobOptions{})
		h, err := jr.Start(fanOutWorkflow(), inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(time.Time{}); err != nil {
			t.Fatal(err)
		}
		inv, err := h.Result()
		if err != nil {
			t.Fatal(err)
		}
		checkFanOutInvocation(t, inv)
	}
}

// A key shared by two users must resolve to the lexicographically
// smallest user every time; the unsorted map range used to return
// whichever user the iteration happened to visit first.
func TestAuthenticateDuplicateKeyDeterministic(t *testing.T) {
	g := New(Config{
		APIKeys: map[string]string{
			"zed@example.org":  "shared-key",
			"ann@example.org":  "shared-key",
			"mona@example.org": "other-key",
		},
	})
	for run := 0; run < 10; run++ {
		user, err := g.Authenticate("shared-key")
		if err != nil {
			t.Fatal(err)
		}
		if user != "ann@example.org" {
			t.Fatalf("Authenticate resolved shared key to %q, want ann@example.org", user)
		}
	}
}
