package galaxy

import (
	"encoding/json"
	"fmt"
)

// Galaxy shares workflows as downloadable definitions (.ga files). This
// file provides the equivalent JSON export/import for our workflow DAGs,
// so definitions can be stored in S3, versioned, and re-imported — the
// propagation path the paper's AMI setup uses for workflow distribution.

// workflowJSON is the serialised form. Field names are part of the
// on-disk contract.
type workflowJSON struct {
	Format string     `json:"format"`
	Name   string     `json:"name"`
	Steps  []stepJSON `json:"steps"`
}

type stepJSON struct {
	ID     string              `json:"id"`
	Tool   string              `json:"tool"`
	Inputs map[string]inputRef `json:"inputs,omitempty"`
	Params map[string]string   `json:"params,omitempty"`
}

type inputRef struct {
	Workflow string `json:"workflow,omitempty"`
	Step     string `json:"step,omitempty"`
	Output   string `json:"output,omitempty"`
}

// formatVersion identifies the serialisation format.
const formatVersion = "spotverse-galaxy-workflow/1"

// ExportJSON serialises a validated workflow.
func ExportJSON(w *Workflow) ([]byte, error) {
	if _, err := w.Validate(); err != nil {
		return nil, fmt.Errorf("export %q: %w", w.Name, err)
	}
	out := workflowJSON{Format: formatVersion, Name: w.Name}
	for _, s := range w.Steps {
		sj := stepJSON{ID: s.ID, Tool: s.Tool, Params: s.Params}
		if len(s.Inputs) > 0 {
			sj.Inputs = make(map[string]inputRef, len(s.Inputs))
			for name, ref := range s.Inputs {
				sj.Inputs[name] = inputRef{Workflow: ref.Workflow, Step: ref.Step, Output: ref.Output}
			}
		}
		out.Steps = append(out.Steps, sj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportJSON parses and validates a serialised workflow.
func ImportJSON(data []byte) (*Workflow, error) {
	var in workflowJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("galaxy: import: %w", err)
	}
	if in.Format != formatVersion {
		return nil, fmt.Errorf("galaxy: import: unsupported format %q", in.Format)
	}
	w := &Workflow{Name: in.Name}
	for _, sj := range in.Steps {
		s := Step{ID: sj.ID, Tool: sj.Tool, Params: sj.Params}
		if len(sj.Inputs) > 0 {
			s.Inputs = make(map[string]InputRef, len(sj.Inputs))
			for name, ref := range sj.Inputs {
				s.Inputs[name] = InputRef{Workflow: ref.Workflow, Step: ref.Step, Output: ref.Output}
			}
		}
		w.Steps = append(w.Steps, s)
	}
	if _, err := w.Validate(); err != nil {
		return nil, fmt.Errorf("galaxy: import %q: %w", w.Name, err)
	}
	return w, nil
}
