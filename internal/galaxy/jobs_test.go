package galaxy

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/simclock"
)

func newJobRunner(t *testing.T) (*simclock.Engine, *JobRunner, *Instance) {
	t.Helper()
	eng := simclock.NewEngine()
	g := newGalaxy(t)
	return eng, NewJobRunner(eng, g, JobOptions{}), g
}

func TestTimedWorkflowCompletes(t *testing.T) {
	eng, jr, _ := newJobRunner(t)
	inputs := genomeInputs(t, 201)
	var doneState JobState
	h, err := jr.Start(GenomeReconstructionWorkflow(), inputs, func(h *JobHandle) { doneState = h.State() })
	if err != nil {
		t.Fatal(err)
	}
	if h.State() != JobRunning {
		t.Fatalf("state = %v at start", h.State())
	}
	if _, err := h.Result(); !errors.Is(err, ErrJobRunning) {
		t.Fatalf("early result err = %v", err)
	}
	if err := eng.Run(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if doneState != JobCompleted || h.State() != JobCompleted {
		t.Fatalf("state = %v done = %v", h.State(), doneState)
	}
	inv, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Completed || len(inv.Results) != 23 || h.StepsCompleted() != 23 {
		t.Fatalf("inv steps=%d completed=%d", len(inv.Results), h.StepsCompleted())
	}
	// 23 steps x >= 90s base: elapsed must exceed half an hour.
	if h.Elapsed() < 30*time.Minute {
		t.Fatalf("elapsed = %v, duration model missing", h.Elapsed())
	}
}

func TestTimedWorkflowDurationScalesWithVCPUs(t *testing.T) {
	inputs4 := genomeInputsSeed(t, 202)
	eng4 := simclock.NewEngine()
	g4 := newGalaxy(t)
	h4, err := NewJobRunner(eng4, g4, JobOptions{VCPUs: 4}).Start(GenomeReconstructionWorkflow(), inputs4, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng4.Run(time.Time{})

	eng2 := simclock.NewEngine()
	g2 := newGalaxy(t)
	h2, err := NewJobRunner(eng2, g2, JobOptions{VCPUs: 2}).Start(GenomeReconstructionWorkflow(), genomeInputsSeed(t, 202), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng2.Run(time.Time{})

	if h2.Elapsed() <= h4.Elapsed() {
		t.Fatalf("2-vCPU run %v not slower than 4-vCPU %v", h2.Elapsed(), h4.Elapsed())
	}
}

func genomeInputsSeed(t *testing.T, seed int64) map[string]Dataset {
	t.Helper()
	return genomeInputs(t, seed)
}

func TestCancelMidWorkflow(t *testing.T) {
	eng, jr, _ := newJobRunner(t)
	h, err := jr.Start(GenomeReconstructionWorkflow(), genomeInputs(t, 203), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Run for a few steps, then reclaim the instance.
	_ = eng.RunFor(8 * time.Minute)
	if h.StepsCompleted() == 0 || h.StepsCompleted() == h.TotalSteps() {
		t.Fatalf("steps completed = %d/%d; pick a better cancel point", h.StepsCompleted(), h.TotalSteps())
	}
	if !h.Cancel() {
		t.Fatal("cancel reported not running")
	}
	if h.Cancel() {
		t.Fatal("second cancel reported running")
	}
	if _, err := h.Result(); !errors.Is(err, ErrJobCancelled) {
		t.Fatalf("result err = %v", err)
	}
	before := h.StepsCompleted()
	_ = eng.Run(time.Time{})
	if h.StepsCompleted() != before {
		t.Fatal("steps advanced after cancellation")
	}
}

func TestTimedWorkflowFailurePropagates(t *testing.T) {
	eng, jr, _ := newJobRunner(t)
	w := &Workflow{Name: "failing", Steps: []Step{
		{ID: "a", Tool: "n_content_check", Inputs: map[string]InputRef{"input": wfInput("seq")}, Params: map[string]string{"max_n": "0"}},
	}}
	var final JobState
	h, err := jr.Start(w, map[string]Dataset{"seq": {Name: "s", Data: []byte("NNNN")}}, func(h *JobHandle) { final = h.State() })
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Run(time.Time{})
	if final != JobFailed || h.State() != JobFailed {
		t.Fatalf("state = %v", h.State())
	}
	if _, err := h.Result(); err == nil {
		t.Fatal("failed job returned a result")
	}
}

func TestStartValidation(t *testing.T) {
	_, jr, _ := newJobRunner(t)
	if _, err := jr.Start(&Workflow{Name: "w", Steps: []Step{{ID: "a", Tool: "ghost"}}}, nil, nil); !errors.Is(err, ErrUnknownTool) {
		t.Fatalf("err = %v", err)
	}
	cyclic := &Workflow{Name: "c", Steps: []Step{
		{ID: "a", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("b", "o")}},
		{ID: "b", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("a", "o")}},
	}}
	if _, err := jr.Start(cyclic, nil, nil); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingWorkflowInputFailsAtStart(t *testing.T) {
	eng, jr, _ := newJobRunner(t)
	w := &Workflow{Name: "w", Steps: []Step{
		{ID: "a", Tool: "fastqc", Inputs: map[string]InputRef{"input": wfInput("reads")}},
	}}
	h, err := jr.Start(w, map[string]Dataset{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Run(time.Time{})
	if h.State() != JobFailed {
		t.Fatalf("state = %v, want failed", h.State())
	}
}
