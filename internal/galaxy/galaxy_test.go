package galaxy

import (
	"errors"
	"strings"
	"testing"

	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/simclock"
)

const (
	adminUser = "admin@example.org"
	adminKey  = "secret-api-key"
)

func newGalaxy(t *testing.T) *Instance {
	t.Helper()
	g := New(Config{
		AdminUsers: []string{adminUser},
		APIKeys:    map[string]string{adminUser: adminKey},
	})
	if err := InstallStandardTools(g, adminUser); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdminGateOnInstall(t *testing.T) {
	g := New(Config{AdminUsers: []string{adminUser}})
	err := g.InstallTool("mallory@example.org", Tool{ID: "x", Run: func(map[string]Dataset, map[string]string) (map[string]Dataset, error) { return nil, nil }})
	if !errors.Is(err, ErrNotAdmin) {
		t.Fatalf("err = %v, want ErrNotAdmin", err)
	}
}

func TestDuplicateToolRejected(t *testing.T) {
	g := newGalaxy(t)
	err := g.InstallTool(adminUser, Tool{ID: "fastqc", Run: func(map[string]Dataset, map[string]string) (map[string]Dataset, error) { return nil, nil }})
	if !errors.Is(err, ErrToolExists) {
		t.Fatalf("err = %v, want ErrToolExists", err)
	}
}

func TestAuthenticate(t *testing.T) {
	g := newGalaxy(t)
	user, err := g.Authenticate(adminKey)
	if err != nil || user != adminUser {
		t.Fatalf("user=%q err=%v", user, err)
	}
	if _, err := g.Authenticate("wrong"); !errors.Is(err, ErrBadAPIKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Authenticate(""); !errors.Is(err, ErrBadAPIKey) {
		t.Fatalf("empty key err = %v", err)
	}
}

func TestStandardToolCount(t *testing.T) {
	g := newGalaxy(t)
	if n := len(g.Tools()); n != 28 {
		t.Fatalf("installed tools = %d, want 28", n)
	}
}

func TestHistoryDatasets(t *testing.T) {
	g := newGalaxy(t)
	h := g.NewHistory("test")
	h.Add(Dataset{Name: "a", Format: "txt", Data: []byte("1")})
	h.Add(Dataset{Name: "b", Format: "txt", Data: []byte("2")})
	h.Add(Dataset{Name: "a", Format: "txt", Data: []byte("3")}) // overwrite
	names := h.Datasets()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	d, ok := h.Get("a")
	if !ok || string(d.Data) != "3" {
		t.Fatalf("a = %+v ok=%v", d, ok)
	}
	if _, err := g.History(h.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := g.History("hist-9999"); !errors.Is(err, ErrNoSuchHistory) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkflowValidateCycle(t *testing.T) {
	w := &Workflow{Name: "cyclic", Steps: []Step{
		{ID: "a", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("b", "report")}},
		{ID: "b", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("a", "report")}},
	}}
	if _, err := w.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestWorkflowValidateDupStep(t *testing.T) {
	w := &Workflow{Name: "dup", Steps: []Step{
		{ID: "a", Tool: "fastqc"},
		{ID: "a", Tool: "fastqc"},
	}}
	if _, err := w.Validate(); !errors.Is(err, ErrDupStep) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkflowValidateUnknownRef(t *testing.T) {
	w := &Workflow{Name: "bad", Steps: []Step{
		{ID: "a", Tool: "fastqc", Inputs: map[string]InputRef{"input": stepOut("ghost", "x")}},
	}}
	if _, err := w.Validate(); !errors.Is(err, ErrUnknownInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunWorkflowUnknownTool(t *testing.T) {
	g := newGalaxy(t)
	w := &Workflow{Name: "w", Steps: []Step{{ID: "a", Tool: "nope"}}}
	if _, err := g.RunWorkflow(w, nil, nil); !errors.Is(err, ErrUnknownTool) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunWorkflowMissingInput(t *testing.T) {
	g := newGalaxy(t)
	w := &Workflow{Name: "w", Steps: []Step{
		{ID: "a", Tool: "fastqc", Inputs: map[string]InputRef{"input": wfInput("reads")}},
	}}
	if _, err := g.RunWorkflow(w, map[string]Dataset{}, nil); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("err = %v", err)
	}
}

// genomeInputs builds the four datasets the reconstruction workflow needs.
func genomeInputs(t *testing.T, seed int64) map[string]Dataset {
	t.Helper()
	rng := simclock.Stream(seed, "galaxy-test")
	ref, err := synth.Genome(rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	f, err := synth.Mutate(rng, ref, 0.008, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	var lineages []fasta.Record
	lineages = append(lineages, fasta.Record{ID: "B.1.1.7", Seq: ref})
	for _, name := range []string{"B.1.351", "P.1"} {
		g, err := synth.Genome(rng, 4000)
		if err != nil {
			t.Fatal(err)
		}
		lineages = append(lineages, fasta.Record{ID: name, Seq: g})
	}
	return map[string]Dataset{
		"reference":     {Name: "reference.fasta", Format: "fasta", Data: []byte(fasta.String([]fasta.Record{{ID: "ref", Seq: ref}}))},
		"reference_raw": {Name: "reference.seq", Format: "txt", Data: []byte(ref)},
		"variants":      {Name: "isolate.vcf", Format: "vcf", Data: []byte(vcf.String(f))},
		"lineages":      {Name: "lineages.fasta", Format: "fasta", Data: []byte(fasta.String(lineages))},
	}
}

func TestGenomeReconstructionWorkflowHas23Steps(t *testing.T) {
	w := GenomeReconstructionWorkflow()
	if len(w.Steps) != 23 {
		t.Fatalf("steps = %d, want 23 (the paper's 23-step workflow)", len(w.Steps))
	}
	if _, err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenomeReconstructionEndToEnd(t *testing.T) {
	g := newGalaxy(t)
	inputs := genomeInputs(t, 101)
	var stepsSeen []string
	inv, err := g.RunWorkflow(GenomeReconstructionWorkflow(), inputs, func(stepID string, _ map[string]Dataset) {
		stepsSeen = append(stepsSeen, stepID)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Completed || len(inv.Results) != 23 || len(stepsSeen) != 23 {
		t.Fatalf("completed=%v results=%d hooks=%d", inv.Completed, len(inv.Results), len(stepsSeen))
	}
	// The isolate derives from B.1.1.7, so classification must say so.
	assignment, ok := inv.History.Get("s18_classify/assignment")
	if !ok {
		t.Fatal("no lineage assignment dataset")
	}
	if !strings.Contains(string(assignment.Data), "lineage=B.1.1.7") {
		t.Fatalf("assignment = %q, want B.1.1.7", assignment.Data)
	}
	// The consensus must differ from the reference (variants applied).
	cons, ok := inv.History.Get("s12_consensus/consensus")
	if !ok {
		t.Fatal("no consensus dataset")
	}
	rawRef := inputs["reference_raw"].Data
	if string(cons.Data) == string(rawRef) {
		t.Fatal("consensus equals reference; variants not applied")
	}
	// The final archive must exist and mention the tree.
	archive, ok := inv.History.Get("s23_archive/archive")
	if !ok {
		t.Fatal("no archive dataset")
	}
	if !strings.Contains(string(archive.Data), "entries") {
		t.Fatalf("archive = %.80q", archive.Data)
	}
}

func TestNGSShardWorkflowEndToEnd(t *testing.T) {
	g := newGalaxy(t)
	rng := simclock.Stream(7, "ngs-test")
	tmpl, err := synth.Genome(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := synth.Reads(rng, tmpl, synth.ReadsOptions{Count: 300, Length: 120, ErrorRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := g.RunWorkflow(NGSPreprocessingShardWorkflow(), map[string]Dataset{
		"reads": {Name: "shard0.fastq", Format: "fastq", Data: []byte(fastq.String(reads))},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Completed || len(inv.Results) != 5 {
		t.Fatalf("completed=%v steps=%d", inv.Completed, len(inv.Results))
	}
	rep, ok := inv.History.Get("p5_multiqc/report")
	if !ok || !strings.Contains(string(rep.Data), "multiqc") {
		t.Fatalf("multiqc report missing: %v %.60q", ok, rep.Data)
	}
}

func TestQIIME2WorkflowEndToEnd(t *testing.T) {
	g := newGalaxy(t)
	rng := simclock.Stream(8, "qiime-test")
	tmpl, err := synth.Genome(rng, 1500)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := synth.Reads(rng, tmpl, synth.ReadsOptions{Count: 150, Length: 100, ErrorRate: 0.005, Barcode: "AACCGGTT", IDPrefix: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := synth.Reads(rng, tmpl, synth.ReadsOptions{Count: 150, Length: 100, ErrorRate: 0.005, Barcode: "TTGGCCAA", IDPrefix: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]fastq.Read{}, s1...), s2...)
	inputs := map[string]Dataset{
		"reads":    {Name: "multiplexed.fastq", Format: "fastq", Data: []byte(fastq.String(all))},
		"barcodes": {Name: "barcodes.tsv", Format: "tsv", Data: []byte("sampleA\tAACCGGTT\nsampleB\tTTGGCCAA\n")},
	}
	inv, err := g.RunWorkflow(QIIME2Workflow("sampleA"), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Completed {
		t.Fatal("not completed")
	}
	div, ok := inv.History.Get("q4_diversity/report")
	if !ok || !strings.Contains(string(div.Data), "shannon=") {
		t.Fatalf("diversity report: ok=%v %.80q", ok, div.Data)
	}
	demux, _ := inv.History.Get("q1_demux/report")
	if !strings.Contains(string(demux.Data), "sampleA\t150") {
		t.Fatalf("demux report = %q", demux.Data)
	}
}

func TestPlanemoAuthAndRun(t *testing.T) {
	g := newGalaxy(t)
	if _, err := NewPlanemo(g, "bad-key"); err == nil {
		t.Fatal("bad key should fail auth")
	}
	p, err := NewPlanemo(g, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	if p.User() != adminUser {
		t.Fatalf("user = %q", p.User())
	}
	res, err := p.Run(GenomeReconstructionWorkflow(), genomeInputs(t, 55), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 23 || len(res.Outputs) == 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestStepFailureRecordedAndPropagated(t *testing.T) {
	g := newGalaxy(t)
	// n_content_check with max_n=0 against a sequence containing N fails.
	w := &Workflow{Name: "failing", Steps: []Step{
		{ID: "a", Tool: "n_content_check", Inputs: map[string]InputRef{"input": wfInput("seq")}, Params: map[string]string{"max_n": "0"}},
	}}
	inv, err := g.RunWorkflow(w, map[string]Dataset{"seq": {Name: "s", Format: "txt", Data: []byte("ACGNNN")}}, nil)
	if err == nil {
		t.Fatal("want step failure")
	}
	if inv == nil || len(inv.Results) != 1 || inv.Results[0].Err == nil || inv.Completed {
		t.Fatalf("inv = %+v", inv)
	}
}
