// Package galaxy implements a Galaxy-like workflow management substrate:
// a tool registry ("toolshed"), histories holding named datasets, workflow
// DAGs executed in topological order, admin-gated tool installation, and a
// Planemo-style runner. It hosts the paper's three workloads — the
// 23-step Genome Reconstruction workflow, the checkpointable NGS Data
// Preprocessing workflow, and the QIIME 2-style standard general workload
// — with every step backed by real computation from internal/bioinf.
package galaxy

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the engine.
var (
	ErrNotAdmin      = errors.New("galaxy: user is not an administrator")
	ErrBadAPIKey     = errors.New("galaxy: invalid API key")
	ErrUnknownTool   = errors.New("galaxy: unknown tool")
	ErrToolExists    = errors.New("galaxy: tool already installed")
	ErrCycle         = errors.New("galaxy: workflow has a cycle")
	ErrUnknownInput  = errors.New("galaxy: step references unknown input")
	ErrDupStep       = errors.New("galaxy: duplicate step id")
	ErrMissingInput  = errors.New("galaxy: workflow input not supplied")
	ErrNoSuchHistory = errors.New("galaxy: no such history")
)

// Dataset is a named, typed blob in a history — Galaxy's unit of data.
type Dataset struct {
	// Name labels the dataset.
	Name string
	// Format is the datatype, e.g. "fasta", "fastq", "vcf", "txt".
	Format string
	// Data is the payload.
	Data []byte
}

// Tool is an installable computation. Run consumes named input datasets
// and parameters and produces named outputs.
type Tool struct {
	// ID is the tool's unique identifier in the shed.
	ID string
	// Description is shown in the tool panel.
	Description string
	// Run executes the tool.
	Run func(inputs map[string]Dataset, params map[string]string) (map[string]Dataset, error)
}

// Config is the Galaxy instance configuration file surface the paper
// touches: admin_users plus API keys.
type Config struct {
	// AdminUsers lists administrator e-mail addresses (the paper's
	// admin_users setting).
	AdminUsers []string
	// APIKeys maps user e-mail to API key.
	APIKeys map[string]string
}

// Instance is one deployed Galaxy.
type Instance struct {
	cfg       Config
	shed      map[string]Tool
	histories map[string]*History
	histSeq   int
}

// History is an ordered collection of datasets.
type History struct {
	ID       string
	Name     string
	datasets map[string]Dataset
	order    []string
}

// New deploys a Galaxy instance with the given configuration.
func New(cfg Config) *Instance {
	admins := make([]string, len(cfg.AdminUsers))
	copy(admins, cfg.AdminUsers)
	keys := make(map[string]string, len(cfg.APIKeys))
	for k, v := range cfg.APIKeys {
		keys[k] = v
	}
	return &Instance{
		cfg:       Config{AdminUsers: admins, APIKeys: keys},
		shed:      make(map[string]Tool),
		histories: make(map[string]*History),
	}
}

// IsAdmin reports whether the user is in admin_users.
func (g *Instance) IsAdmin(user string) bool {
	for _, a := range g.cfg.AdminUsers {
		if a == user {
			return true
		}
	}
	return false
}

// Authenticate maps an API key back to its user. Users are tried in
// sorted order so a key accidentally shared by two users resolves to the
// same one on every run.
func (g *Instance) Authenticate(apiKey string) (string, error) {
	for _, user := range sortedKeys(g.cfg.APIKeys) {
		if key := g.cfg.APIKeys[user]; key == apiKey && key != "" {
			return user, nil
		}
	}
	return "", ErrBadAPIKey
}

// sortedKeys returns the map's keys sorted, for deterministic iteration
// wherever order can leak into results, errors, or histories.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// InstallTool installs a tool into the shed; only admins may install
// (the paper's Galaxy Admin integration).
func (g *Instance) InstallTool(user string, t Tool) error {
	if !g.IsAdmin(user) {
		return fmt.Errorf("install %q as %q: %w", t.ID, user, ErrNotAdmin)
	}
	if t.ID == "" || t.Run == nil {
		return fmt.Errorf("install: tool needs id and run body")
	}
	if _, ok := g.shed[t.ID]; ok {
		return fmt.Errorf("install %q: %w", t.ID, ErrToolExists)
	}
	g.shed[t.ID] = t
	return nil
}

// Tools lists installed tool IDs, sorted.
func (g *Instance) Tools() []string {
	out := make([]string, 0, len(g.shed))
	for id := range g.shed {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NewHistory creates a history.
func (g *Instance) NewHistory(name string) *History {
	g.histSeq++
	h := &History{
		ID:       fmt.Sprintf("hist-%04d", g.histSeq),
		Name:     name,
		datasets: make(map[string]Dataset),
	}
	g.histories[h.ID] = h
	return h
}

// History fetches a history by ID.
func (g *Instance) History(id string) (*History, error) {
	h, ok := g.histories[id]
	if !ok {
		return nil, fmt.Errorf("history %q: %w", id, ErrNoSuchHistory)
	}
	return h, nil
}

// Add stores a dataset in the history (latest wins by name).
func (h *History) Add(d Dataset) {
	if _, ok := h.datasets[d.Name]; !ok {
		h.order = append(h.order, d.Name)
	}
	h.datasets[d.Name] = d
}

// Get fetches a dataset by name.
func (h *History) Get(name string) (Dataset, bool) {
	d, ok := h.datasets[name]
	return d, ok
}

// Datasets lists dataset names in insertion order.
func (h *History) Datasets() []string {
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// InputRef wires a step input to either a workflow input (Workflow != "")
// or a prior step's output.
type InputRef struct {
	// Workflow names a workflow-level input dataset.
	Workflow string
	// Step and Output name a prior step's output dataset.
	Step   string
	Output string
}

// Step is one workflow node.
type Step struct {
	// ID is unique within the workflow.
	ID string
	// Tool is the shed tool to run.
	Tool string
	// Inputs maps the tool's input names to their sources.
	Inputs map[string]InputRef
	// Params are tool parameters.
	Params map[string]string
}

// Workflow is a DAG of steps.
type Workflow struct {
	Name  string
	Steps []Step
}

// Validate checks the workflow: unique step IDs, known wiring, acyclicity.
// It returns a valid topological order of step indices.
func (w *Workflow) Validate() ([]int, error) {
	idx := make(map[string]int, len(w.Steps))
	for i, s := range w.Steps {
		if _, ok := idx[s.ID]; ok {
			return nil, fmt.Errorf("step %q: %w", s.ID, ErrDupStep)
		}
		idx[s.ID] = i
	}
	// Build edges: dependency -> dependent.
	adj := make([][]int, len(w.Steps))
	indeg := make([]int, len(w.Steps))
	for i, s := range w.Steps {
		for _, input := range sortedKeys(s.Inputs) {
			ref := s.Inputs[input]
			if ref.Workflow != "" {
				continue
			}
			j, ok := idx[ref.Step]
			if !ok {
				return nil, fmt.Errorf("step %q input %q references step %q: %w", s.ID, input, ref.Step, ErrUnknownInput)
			}
			adj[j] = append(adj[j], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm, smallest index first for determinism.
	var order []int
	ready := make([]int, 0, len(w.Steps))
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(order) != len(w.Steps) {
		return nil, fmt.Errorf("workflow %q: %w", w.Name, ErrCycle)
	}
	return order, nil
}

// StepResult records one executed step.
type StepResult struct {
	StepID  string
	Tool    string
	Outputs []string
	Err     error
}

// Invocation is one workflow execution.
type Invocation struct {
	Workflow string
	// Results are per-step outcomes in execution order.
	Results []StepResult
	// History holds every produced dataset, namespaced "step/output".
	History *History
	// Completed reports whether every step succeeded.
	Completed bool
}

// StepHook observes step completion (used by checkpointing integrations).
type StepHook func(stepID string, outputs map[string]Dataset)

// RunWorkflow executes the workflow against the supplied workflow inputs,
// recording outputs into a fresh history. hook may be nil.
func (g *Instance) RunWorkflow(w *Workflow, inputs map[string]Dataset, hook StepHook) (*Invocation, error) {
	order, err := w.Validate()
	if err != nil {
		return nil, err
	}
	for _, s := range w.Steps {
		if _, ok := g.shed[s.Tool]; !ok {
			return nil, fmt.Errorf("step %q: tool %q: %w", s.ID, s.Tool, ErrUnknownTool)
		}
	}
	inv := &Invocation{Workflow: w.Name, History: g.NewHistory("invocation: " + w.Name)}
	produced := make(map[string]map[string]Dataset, len(w.Steps))
	for _, i := range order {
		s := w.Steps[i]
		in := make(map[string]Dataset, len(s.Inputs))
		for _, name := range sortedKeys(s.Inputs) {
			ref := s.Inputs[name]
			if ref.Workflow != "" {
				d, ok := inputs[ref.Workflow]
				if !ok {
					return nil, fmt.Errorf("step %q input %q: workflow input %q: %w", s.ID, name, ref.Workflow, ErrMissingInput)
				}
				in[name] = d
				continue
			}
			outs, ok := produced[ref.Step]
			if !ok {
				return nil, fmt.Errorf("step %q input %q: step %q has no outputs yet: %w", s.ID, name, ref.Step, ErrUnknownInput)
			}
			d, ok := outs[ref.Output]
			if !ok {
				return nil, fmt.Errorf("step %q input %q: step %q lacks output %q: %w", s.ID, name, ref.Step, ref.Output, ErrUnknownInput)
			}
			in[name] = d
		}
		tool := g.shed[s.Tool]
		outs, err := tool.Run(in, s.Params)
		res := StepResult{StepID: s.ID, Tool: s.Tool, Err: err}
		if err != nil {
			inv.Results = append(inv.Results, res)
			return inv, fmt.Errorf("step %q (%s): %w", s.ID, s.Tool, err)
		}
		produced[s.ID] = outs
		// Sorted so the invocation history records datasets in the same
		// order every run regardless of map iteration.
		names := sortedKeys(outs)
		for _, name := range names {
			d := outs[name]
			inv.History.Add(Dataset{Name: s.ID + "/" + name, Format: d.Format, Data: d.Data})
		}
		res.Outputs = names
		inv.Results = append(inv.Results, res)
		if hook != nil {
			hook(s.ID, outs)
		}
	}
	inv.Completed = true
	return inv, nil
}
