package galaxy

import (
	"strings"
	"testing"

	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/simclock"
)

// runTool executes one tool by ID against inputs/params.
func runTool(t *testing.T, id string, in map[string]Dataset, params map[string]string) map[string]Dataset {
	t.Helper()
	for _, tool := range StandardTools() {
		if tool.ID == id {
			out, err := tool.Run(in, params)
			if err != nil {
				t.Fatalf("tool %s: %v", id, err)
			}
			return out
		}
	}
	t.Fatalf("tool %s not found", id)
	return nil
}

// runToolErr executes one tool expecting an error.
func runToolErr(t *testing.T, id string, in map[string]Dataset, params map[string]string) error {
	t.Helper()
	for _, tool := range StandardTools() {
		if tool.ID == id {
			_, err := tool.Run(in, params)
			if err == nil {
				t.Fatalf("tool %s: expected error", id)
			}
			return err
		}
	}
	t.Fatalf("tool %s not found", id)
	return nil
}

func fastaDS(recs ...fasta.Record) Dataset {
	return Dataset{Name: "in.fasta", Format: "fasta", Data: []byte(fasta.String(recs))}
}

func fastqDS(reads []fastq.Read) Dataset {
	return Dataset{Name: "in.fastq", Format: "fastq", Data: []byte(fastq.String(reads))}
}

func vcfDS(f *vcf.File) Dataset {
	return Dataset{Name: "in.vcf", Format: "vcf", Data: []byte(vcf.String(f))}
}

func TestToolFastaValidate(t *testing.T) {
	out := runTool(t, "fasta_validate", map[string]Dataset{"input": fastaDS(fasta.Record{ID: "x", Seq: "ACGT"})}, nil)
	if !strings.Contains(string(out["output"].Data), ">x") {
		t.Fatalf("output = %q", out["output"].Data)
	}
	runToolErr(t, "fasta_validate", map[string]Dataset{"input": {Data: []byte("not fasta")}}, nil)
	runToolErr(t, "fasta_validate", map[string]Dataset{"input": {Data: nil}}, nil)
}

func TestToolFastaStats(t *testing.T) {
	out := runTool(t, "fasta_stats", map[string]Dataset{"input": fastaDS(
		fasta.Record{ID: "a", Seq: "GGCC"},
		fasta.Record{ID: "b", Seq: "AATT"},
	)}, nil)
	rep := string(out["report"].Data)
	if !strings.Contains(rep, "a\tlen=4\tgc=1.0000") || !strings.Contains(rep, "b\tlen=4\tgc=0.0000") {
		t.Fatalf("report = %q", rep)
	}
}

func TestToolVCFSortAndDedupe(t *testing.T) {
	f := &vcf.File{Variants: []vcf.Variant{
		{Chrom: "c", Pos: 9, Ref: "A", Alt: "T"},
		{Chrom: "c", Pos: 2, Ref: "G", Alt: "C"},
		{Chrom: "c", Pos: 9, Ref: "A", Alt: "G"}, // duplicate position
	}}
	sorted := runTool(t, "vcf_sort", map[string]Dataset{"input": vcfDS(f)}, nil)
	parsed, err := vcf.ParseString(string(sorted["output"].Data))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Variants[0].Pos != 2 {
		t.Fatalf("not sorted: %+v", parsed.Variants)
	}
	deduped := runTool(t, "vcf_dedupe", map[string]Dataset{"input": sorted["output"]}, nil)
	parsed2, err := vcf.ParseString(string(deduped["output"].Data))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed2.Variants) != 2 {
		t.Fatalf("dedupe kept %d variants", len(parsed2.Variants))
	}
}

func TestToolVCFFilters(t *testing.T) {
	f := &vcf.File{Variants: []vcf.Variant{
		{Chrom: "c", Pos: 1, Ref: "A", Alt: "T", Qual: 10, Filter: "PASS"},
		{Chrom: "c", Pos: 2, Ref: "G", Alt: "C", Qual: 90, Filter: "PASS"},
		{Chrom: "c", Pos: 3, Ref: "T", Alt: "A", Qual: 80, Filter: "lowqual"},
		{Chrom: "c", Pos: 4, Ref: "C", Alt: "CAT", Qual: 70, Filter: "PASS"},
	}}
	qual := runTool(t, "vcf_filter_qual", map[string]Dataset{"input": vcfDS(f)}, map[string]string{"min_qual": "50"})
	p1, _ := vcf.ParseString(string(qual["output"].Data))
	if len(p1.Variants) != 3 {
		t.Fatalf("qual filter kept %d", len(p1.Variants))
	}
	pass := runTool(t, "vcf_filter_pass", map[string]Dataset{"input": vcfDS(f)}, nil)
	p2, _ := vcf.ParseString(string(pass["output"].Data))
	if len(p2.Variants) != 3 {
		t.Fatalf("pass filter kept %d", len(p2.Variants))
	}
	snps := runTool(t, "vcf_select_snps", map[string]Dataset{"input": vcfDS(f)}, nil)
	p3, _ := vcf.ParseString(string(snps["output"].Data))
	if len(p3.Variants) != 3 {
		t.Fatalf("snp select kept %d", len(p3.Variants))
	}
	indels := runTool(t, "vcf_select_indels", map[string]Dataset{"input": vcfDS(f)}, nil)
	p4, _ := vcf.ParseString(string(indels["output"].Data))
	if len(p4.Variants) != 1 || p4.Variants[0].Pos != 4 {
		t.Fatalf("indel select = %+v", p4.Variants)
	}
}

func TestToolVCFStats(t *testing.T) {
	f := &vcf.File{Variants: []vcf.Variant{
		{Chrom: "c", Pos: 1, Ref: "A", Alt: "T"},
		{Chrom: "c", Pos: 3, Ref: "G", Alt: "GAA"},
		{Chrom: "c", Pos: 7, Ref: "TCC", Alt: "T"},
	}}
	out := runTool(t, "vcf_stats", map[string]Dataset{"input": vcfDS(f)}, nil)
	if got := string(out["report"].Data); !strings.Contains(got, "total=3 subs=1 ins=1 dels=1") {
		t.Fatalf("report = %q", got)
	}
}

func TestToolConsensusBuilder(t *testing.T) {
	ref := fastaDS(fasta.Record{ID: "r", Seq: "ACGTACGT"})
	f := &vcf.File{Variants: []vcf.Variant{{Chrom: "c", Pos: 3, Ref: "G", Alt: "T", Qual: 99, Filter: "PASS"}}}
	out := runTool(t, "consensus_builder", map[string]Dataset{"reference": ref, "variants": vcfDS(f)}, nil)
	if got := string(out["consensus"].Data); got != "ACTTACGT" {
		t.Fatalf("consensus = %q", got)
	}
	if !strings.Contains(string(out["report"].Data), "applied=1 subs=1") {
		t.Fatalf("report = %q", out["report"].Data)
	}
	// Multi-record reference rejected.
	runToolErr(t, "consensus_builder", map[string]Dataset{
		"reference": fastaDS(fasta.Record{ID: "a", Seq: "AC"}, fasta.Record{ID: "b", Seq: "GT"}),
		"variants":  vcfDS(f),
	}, nil)
}

func TestToolGCAndNContent(t *testing.T) {
	out := runTool(t, "gc_report", map[string]Dataset{"input": {Data: []byte("GGCCAATT")}}, nil)
	if !strings.Contains(string(out["report"].Data), "gc=0.5000 len=8") {
		t.Fatalf("report = %q", out["report"].Data)
	}
	ok := runTool(t, "n_content_check", map[string]Dataset{"input": {Data: []byte("ACGTNACGTA")}}, map[string]string{"max_n": "0.2"})
	if !strings.Contains(string(ok["report"].Data), "n_fraction=0.1000") {
		t.Fatalf("report = %q", ok["report"].Data)
	}
	runToolErr(t, "n_content_check", map[string]Dataset{"input": {Data: []byte("NNNNACGT")}}, map[string]string{"max_n": "0.1"})
}

func TestToolKmerProfileAndDistance(t *testing.T) {
	a := runTool(t, "kmer_profile", map[string]Dataset{"input": {Data: []byte("ACGTACGTACGT")}}, map[string]string{"k": "4"})
	if !strings.Contains(string(a["profile"].Data), "ACGT\t3") {
		t.Fatalf("profile = %q", a["profile"].Data)
	}
	b := runTool(t, "kmer_profile", map[string]Dataset{"input": {Data: []byte("GGGGGGGGGG")}}, map[string]string{"k": "4"})
	self := runTool(t, "kmer_distance", map[string]Dataset{"a": a["profile"], "b": a["profile"]}, nil)
	if !strings.Contains(string(self["report"].Data), "cosine_distance=0.000000") {
		t.Fatalf("self distance = %q", self["report"].Data)
	}
	far := runTool(t, "kmer_distance", map[string]Dataset{"a": a["profile"], "b": b["profile"]}, nil)
	if !strings.Contains(string(far["report"].Data), "cosine_distance=1.000000") {
		t.Fatalf("far distance = %q", far["report"].Data)
	}
	runToolErr(t, "kmer_distance", map[string]Dataset{"a": {Data: []byte("garbage-no-tab")}, "b": b["profile"]}, nil)
}

func TestToolLineageClassifyAndReport(t *testing.T) {
	rng := simclock.Stream(5, "tools-test")
	g1, _ := synth.Genome(rng, 1500)
	g2, _ := synth.Genome(rng, 1500)
	lineages := fastaDS(fasta.Record{ID: "L1", Seq: g1}, fasta.Record{ID: "L2", Seq: g2})
	out := runTool(t, "pangolin_classify", map[string]Dataset{
		"genome": {Data: []byte(g1)}, "lineages": lineages,
	}, nil)
	if !strings.Contains(string(out["assignment"].Data), "lineage=L1") {
		t.Fatalf("assignment = %q", out["assignment"].Data)
	}
	rep := runTool(t, "lineage_report", map[string]Dataset{"assignment": out["assignment"]}, nil)
	if !strings.Contains(string(rep["report"].Data), "assignment: lineage=L1") {
		t.Fatalf("report = %q", rep["report"].Data)
	}
	runToolErr(t, "lineage_report", map[string]Dataset{"assignment": {Data: []byte("  ")}}, nil)
}

func TestToolFastaFormat(t *testing.T) {
	out := runTool(t, "fasta_format", map[string]Dataset{"input": {Data: []byte("ACGT\n")}},
		map[string]string{"id": "genome1", "description": "test"})
	recs, err := fasta.ReadString(string(out["output"].Data))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].ID != "genome1" || recs[0].Seq != "ACGT" || recs[0].Description != "test" {
		t.Fatalf("rec = %+v", recs[0])
	}
}

func TestToolPhyloPlacement(t *testing.T) {
	rng := simclock.Stream(6, "tools-test2")
	g1, _ := synth.Genome(rng, 1200)
	g2, _ := synth.Genome(rng, 1200)
	out := runTool(t, "phylo_placement", map[string]Dataset{
		"genome":   fastaDS(fasta.Record{ID: "query", Seq: g1}),
		"lineages": fastaDS(fasta.Record{ID: "L1", Seq: g1}, fasta.Record{ID: "L2", Seq: g2}),
	}, nil)
	tree := string(out["tree"].Data)
	if !strings.HasSuffix(tree, ";") || !strings.Contains(tree, "query:") {
		t.Fatalf("tree = %q", tree)
	}
}

func TestToolSummaryAndArchive(t *testing.T) {
	sum := runTool(t, "summary_report", map[string]Dataset{
		"b_second": {Data: []byte("two")},
		"a_first":  {Data: []byte("one")},
	}, nil)
	rep := string(sum["report"].Data)
	if strings.Index(rep, "a_first") > strings.Index(rep, "b_second") {
		t.Fatalf("sections not sorted: %q", rep)
	}
	arc := runTool(t, "archive_outputs", map[string]Dataset{
		"x": {Data: []byte("1234")},
		"y": {Data: []byte("56")},
	}, nil)
	if !strings.Contains(string(arc["archive"].Data), "archive: 2 entries, 6 bytes") {
		t.Fatalf("archive = %q", arc["archive"].Data)
	}
}

func TestToolFastQCAndMultiQC(t *testing.T) {
	rng := simclock.Stream(7, "tools-test3")
	tmpl, _ := synth.Genome(rng, 500)
	reads, _ := synth.Reads(rng, tmpl, synth.ReadsOptions{Count: 50, Length: 80, ErrorRate: 0.01})
	qc1 := runTool(t, "fastqc", map[string]Dataset{"input": fastqDS(reads)}, nil)
	if !strings.Contains(string(qc1["report"].Data), "reads=50") {
		t.Fatalf("fastqc = %q", qc1["report"].Data)
	}
	multi := runTool(t, "multiqc", map[string]Dataset{"r1": qc1["report"], "r2": qc1["report"]}, nil)
	if !strings.Contains(string(multi["report"].Data), "multiqc over 2 reports") {
		t.Fatalf("multiqc = %q", multi["report"].Data)
	}
	runToolErr(t, "fastqc", map[string]Dataset{"input": {Data: []byte("@broken\n")}}, nil)
}

func TestToolCutadapt(t *testing.T) {
	reads := []fastq.Read{
		{ID: "r1", Seq: "ACGTACGTAGATCGGAAGAGCC", Qual: strings.Repeat("I", 22)},
		{ID: "r2", Seq: "TTTTTTTTTT", Qual: strings.Repeat("I", 10)},
	}
	out := runTool(t, "cutadapt", map[string]Dataset{"input": fastqDS(reads)}, nil)
	trimmed, err := fastq.ParseString(string(out["output"].Data))
	if err != nil {
		t.Fatal(err)
	}
	if trimmed[0].Seq != "ACGTACGT" {
		t.Fatalf("trimmed = %q", trimmed[0].Seq)
	}
	if trimmed[1].Seq != "TTTTTTTTTT" {
		t.Fatalf("untouched read changed: %q", trimmed[1].Seq)
	}
	if !strings.Contains(string(out["report"].Data), "input=2 trimmed=1 kept=2") {
		t.Fatalf("report = %q", out["report"].Data)
	}
}

func TestToolQualityTrim(t *testing.T) {
	reads := []fastq.Read{{ID: "r", Seq: "ACGTACGT", Qual: "IIII####"}}
	out := runTool(t, "quality_trim", map[string]Dataset{"input": fastqDS(reads)}, nil)
	trimmed, _ := fastq.ParseString(string(out["output"].Data))
	if trimmed[0].Seq != "ACGT" {
		t.Fatalf("trimmed = %q", trimmed[0].Seq)
	}
	// Fully bad reads are dropped entirely.
	bad := []fastq.Read{{ID: "x", Seq: "ACGT", Qual: "####"}}
	out2 := runTool(t, "quality_trim", map[string]Dataset{"input": fastqDS(bad)}, nil)
	kept, _ := fastq.ParseString(string(out2["output"].Data))
	if len(kept) != 0 {
		t.Fatalf("kept = %d reads", len(kept))
	}
}

func TestToolDemultiplex(t *testing.T) {
	mk := func(prefix string) fastq.Read {
		s := prefix + "GGGG"
		return fastq.Read{ID: "r", Seq: s, Qual: strings.Repeat("I", len(s))}
	}
	reads := []fastq.Read{mk("AAAA"), mk("AAAA"), mk("CCCC"), mk("TTTT")}
	out := runTool(t, "demultiplex", map[string]Dataset{
		"input":    fastqDS(reads),
		"barcodes": {Data: []byte("s1\tAAAA\ns2\tCCCC\n")},
	}, nil)
	rep := string(out["report"].Data)
	if !strings.Contains(rep, "s1\t2") || !strings.Contains(rep, "s2\t1") || !strings.Contains(rep, "unassigned\t1") {
		t.Fatalf("report = %q", rep)
	}
	s1, _ := fastq.ParseString(string(out["sample_s1"].Data))
	if len(s1) != 2 || s1[0].Seq != "GGGG" {
		t.Fatalf("s1 = %+v", s1)
	}
	runToolErr(t, "demultiplex", map[string]Dataset{
		"input": fastqDS(reads), "barcodes": {Data: []byte("malformed-line-no-tab")},
	}, nil)
}

func TestToolDADA2(t *testing.T) {
	mk := func(seq string, n int) []fastq.Read {
		out := make([]fastq.Read, n)
		for i := range out {
			out[i] = fastq.Read{ID: "r", Seq: seq, Qual: strings.Repeat("I", len(seq))}
		}
		return out
	}
	reads := append(mk("ACGTACGTAC", 20), mk("ACGTACGTAT", 2)...) // error variant absorbed
	out := runTool(t, "dada2_denoise", map[string]Dataset{"input": fastqDS(reads)}, nil)
	if !strings.Contains(string(out["table"].Data), "ASV1\t22\tACGTACGTAC") {
		t.Fatalf("table = %q", out["table"].Data)
	}
	if !strings.Contains(string(out["report"].Data), "absorbed=1") {
		t.Fatalf("report = %q", out["report"].Data)
	}
}

func TestToolDiversity(t *testing.T) {
	table := Dataset{Data: []byte("ASV1\t10\tACGT\nASV2\t10\tTGCA\n")}
	out := runTool(t, "diversity_analysis", map[string]Dataset{"table": table}, nil)
	rep := string(out["report"].Data)
	if !strings.Contains(rep, "observed=2") || !strings.Contains(rep, "shannon=0.6931") {
		t.Fatalf("report = %q", rep)
	}
	runToolErr(t, "diversity_analysis", map[string]Dataset{"table": {Data: []byte("bad line")}}, nil)
	runToolErr(t, "diversity_analysis", map[string]Dataset{"table": {Data: []byte("ASV1\tnot-a-number\n")}}, nil)
}
