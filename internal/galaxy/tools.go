package galaxy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spotverse/internal/bioinf/denoise"
	"spotverse/internal/bioinf/diversity"
	"spotverse/internal/bioinf/fasta"
	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/lineage"
	"spotverse/internal/bioinf/phylo"
	"spotverse/internal/bioinf/qc"
	"spotverse/internal/bioinf/seq"
	"spotverse/internal/bioinf/variant"
	"spotverse/internal/bioinf/vcf"
)

// StandardTools returns the tool suite the paper's workloads need. Every
// tool does real work via internal/bioinf; none are stubs.
func StandardTools() []Tool {
	return []Tool{
		toolFastaValidate(),
		toolFastaStats(),
		toolVCFParseValidate(),
		toolVCFStats(),
		toolVCFSort(),
		toolVCFDedupe(),
		toolVCFFilterQual(),
		toolVCFFilterPass(),
		toolVCFSelectSNPs(),
		toolVCFSelectIndels(),
		toolConsensus(),
		toolGCReport(),
		toolNContent(),
		toolKmerProfile(),
		toolKmerDistance(),
		toolLineageClassify(),
		toolLineageReport(),
		toolFastaFormat(),
		toolPhyloPlacement(),
		toolSummaryReport(),
		toolArchive(),
		toolFastQC(),
		toolMultiQC(),
		toolCutadapt(),
		toolQualityTrim(),
		toolDemultiplex(),
		toolDADA2(),
		toolDiversity(),
	}
}

// InstallStandardTools installs the suite as an admin user.
func InstallStandardTools(g *Instance, admin string) error {
	for _, t := range StandardTools() {
		if err := g.InstallTool(admin, t); err != nil {
			return err
		}
	}
	return nil
}

func ds(name, format string, data []byte) Dataset {
	return Dataset{Name: name, Format: format, Data: data}
}

func txt(name, s string) Dataset { return ds(name, "txt", []byte(s)) }

func oneFasta(d Dataset) (fasta.Record, error) {
	recs, err := fasta.ReadString(string(d.Data))
	if err != nil {
		return fasta.Record{}, err
	}
	if len(recs) != 1 {
		return fasta.Record{}, fmt.Errorf("expected exactly 1 FASTA record, got %d", len(recs))
	}
	return recs[0], nil
}

func toolFastaValidate() Tool {
	return Tool{
		ID:          "fasta_validate",
		Description: "Validate a FASTA file and normalize line wrapping",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			recs, err := fasta.ReadString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			if len(recs) == 0 {
				return nil, fmt.Errorf("fasta_validate: empty file")
			}
			return map[string]Dataset{"output": ds("validated.fasta", "fasta", []byte(fasta.String(recs)))}, nil
		},
	}
}

func toolFastaStats() Tool {
	return Tool{
		ID:          "fasta_stats",
		Description: "Sequence length and composition statistics",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			recs, err := fasta.ReadString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			var sb strings.Builder
			for _, r := range recs {
				fmt.Fprintf(&sb, "%s\tlen=%d\tgc=%.4f\n", r.ID, len(r.Seq), seq.GCContent(r.Seq))
			}
			return map[string]Dataset{"report": txt("fasta_stats.txt", sb.String())}, nil
		},
	}
}

func toolVCFParseValidate() Tool {
	return Tool{
		ID:          "vcf_validate",
		Description: "Parse and validate a VCF file",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			f, err := vcf.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			return map[string]Dataset{"output": ds("validated.vcf", "vcf", []byte(vcf.String(f)))}, nil
		},
	}
}

func toolVCFStats() Tool {
	return Tool{
		ID:          "vcf_stats",
		Description: "Variant counts by class",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			f, err := vcf.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			subs, ins, dels := 0, 0, 0
			for _, v := range f.Variants {
				switch {
				case len(v.Ref) == len(v.Alt):
					subs++
				case len(v.Ref) < len(v.Alt):
					ins++
				default:
					dels++
				}
			}
			report := fmt.Sprintf("total=%d subs=%d ins=%d dels=%d\n", len(f.Variants), subs, ins, dels)
			return map[string]Dataset{"report": txt("vcf_stats.txt", report)}, nil
		},
	}
}

func toolVCFSort() Tool {
	return Tool{
		ID:          "vcf_sort",
		Description: "Sort variants by position",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			f, err := vcf.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			f.SortByPosition()
			return map[string]Dataset{"output": ds("sorted.vcf", "vcf", []byte(vcf.String(f)))}, nil
		},
	}
}

func toolVCFDedupe() Tool {
	return Tool{
		ID:          "vcf_dedupe",
		Description: "Drop duplicate variants at the same position",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			f, err := vcf.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			seen := map[string]bool{}
			var kept []vcf.Variant
			for _, v := range f.Variants {
				key := v.Chrom + ":" + strconv.Itoa(v.Pos)
				if seen[key] {
					continue
				}
				seen[key] = true
				kept = append(kept, v)
			}
			f.Variants = kept
			return map[string]Dataset{"output": ds("dedup.vcf", "vcf", []byte(vcf.String(f)))}, nil
		},
	}
}

func vcfFilter(id, desc string, keep func(vcf.Variant, map[string]string) bool) Tool {
	return Tool{
		ID:          id,
		Description: desc,
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			f, err := vcf.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			var kept []vcf.Variant
			for _, v := range f.Variants {
				if keep(v, params) {
					kept = append(kept, v)
				}
			}
			f.Variants = kept
			return map[string]Dataset{"output": ds("filtered.vcf", "vcf", []byte(vcf.String(f)))}, nil
		},
	}
}

func toolVCFFilterQual() Tool {
	return vcfFilter("vcf_filter_qual", "Drop variants below a QUAL threshold",
		func(v vcf.Variant, params map[string]string) bool {
			min, err := strconv.ParseFloat(params["min_qual"], 64)
			if err != nil {
				min = 20
			}
			return v.Qual >= min
		})
}

func toolVCFFilterPass() Tool {
	return vcfFilter("vcf_filter_pass", "Keep PASS variants only",
		func(v vcf.Variant, _ map[string]string) bool {
			return v.Filter == "PASS" || v.Filter == "." || v.Filter == ""
		})
}

func toolVCFSelectSNPs() Tool {
	return vcfFilter("vcf_select_snps", "Keep substitutions only",
		func(v vcf.Variant, _ map[string]string) bool { return len(v.Ref) == len(v.Alt) })
}

func toolVCFSelectIndels() Tool {
	return vcfFilter("vcf_select_indels", "Keep insertions and deletions only",
		func(v vcf.Variant, _ map[string]string) bool { return len(v.Ref) != len(v.Alt) })
}

func toolConsensus() Tool {
	return Tool{
		ID:          "consensus_builder",
		Description: "Apply a VCF to a reference to reconstruct the genome",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			ref, err := oneFasta(in["reference"])
			if err != nil {
				return nil, err
			}
			f, err := vcf.ParseString(string(in["variants"].Data))
			if err != nil {
				return nil, err
			}
			minQual, _ := strconv.ParseFloat(params["min_qual"], 64)
			cons, stats, err := variant.Consensus(ref.Seq, f, variant.Options{MinQual: minQual})
			if err != nil {
				return nil, err
			}
			report := fmt.Sprintf("applied=%d subs=%d ins=%d dels=%d\n",
				stats.Applied, stats.Substitutions, stats.Insertions, stats.Deletions)
			return map[string]Dataset{
				"consensus": txt("consensus.seq", cons),
				"report":    txt("consensus_report.txt", report),
			}, nil
		},
	}
}

func toolGCReport() Tool {
	return Tool{
		ID:          "gc_report",
		Description: "GC content of a raw sequence",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			s := string(in["input"].Data)
			return map[string]Dataset{"report": txt("gc.txt", fmt.Sprintf("gc=%.4f len=%d\n", seq.GCContent(s), len(s)))}, nil
		},
	}
}

func toolNContent() Tool {
	return Tool{
		ID:          "n_content_check",
		Description: "Fail if ambiguous base fraction exceeds max_n",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			s := string(in["input"].Data)
			maxN, err := strconv.ParseFloat(params["max_n"], 64)
			if err != nil {
				maxN = 0.05
			}
			n := 0
			for i := 0; i < len(s); i++ {
				if s[i] == 'N' || s[i] == 'n' {
					n++
				}
			}
			frac := 0.0
			if len(s) > 0 {
				frac = float64(n) / float64(len(s))
			}
			if frac > maxN {
				return nil, fmt.Errorf("n_content_check: %.4f > %.4f", frac, maxN)
			}
			return map[string]Dataset{"report": txt("n_content.txt", fmt.Sprintf("n_fraction=%.4f\n", frac))}, nil
		},
	}
}

func toolKmerProfile() Tool {
	return Tool{
		ID:          "kmer_profile",
		Description: "Count k-mers of a raw sequence",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			k, err := strconv.Atoi(params["k"])
			if err != nil || k <= 0 {
				k = 8
			}
			prof, err := seq.KmerProfile(string(in["input"].Data), k)
			if err != nil {
				return nil, err
			}
			keys := make([]string, 0, len(prof))
			for kmer := range prof {
				keys = append(keys, kmer)
			}
			sort.Strings(keys)
			var sb strings.Builder
			for _, kmer := range keys {
				fmt.Fprintf(&sb, "%s\t%d\n", kmer, prof[kmer])
			}
			return map[string]Dataset{"profile": txt("kmers.tsv", sb.String())}, nil
		},
	}
}

func parseProfile(d Dataset) (map[string]int, error) {
	out := map[string]int{}
	for _, line := range strings.Split(string(d.Data), "\n") {
		if line == "" {
			continue
		}
		kmer, count, found := strings.Cut(line, "\t")
		if !found {
			return nil, fmt.Errorf("bad profile line %q", line)
		}
		n, err := strconv.Atoi(count)
		if err != nil {
			return nil, fmt.Errorf("bad profile count %q: %w", count, err)
		}
		out[kmer] = n
	}
	return out, nil
}

func toolKmerDistance() Tool {
	return Tool{
		ID:          "kmer_distance",
		Description: "Cosine distance between two k-mer profiles",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			a, err := parseProfile(in["a"])
			if err != nil {
				return nil, err
			}
			b, err := parseProfile(in["b"])
			if err != nil {
				return nil, err
			}
			d := seq.CosineDistance(a, b)
			return map[string]Dataset{"report": txt("distance.txt", fmt.Sprintf("cosine_distance=%.6f\n", d))}, nil
		},
	}
}

// lineageRefsFromFasta builds a classifier from a multi-FASTA of named
// lineage references.
func lineageRefsFromFasta(d Dataset, k int) (*lineage.Classifier, error) {
	recs, err := fasta.ReadString(string(d.Data))
	if err != nil {
		return nil, err
	}
	c := lineage.NewClassifier(k)
	for _, r := range recs {
		if err := c.AddLineage(r.ID, r.Seq); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func toolLineageClassify() Tool {
	return Tool{
		ID:          "pangolin_classify",
		Description: "Assign a genome to its nearest lineage (Pangolin-like)",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			k, err := strconv.Atoi(params["k"])
			if err != nil || k <= 0 {
				k = lineage.DefaultK
			}
			c, err := lineageRefsFromFasta(in["lineages"], k)
			if err != nil {
				return nil, err
			}
			got, err := c.Classify(string(in["genome"].Data))
			if err != nil {
				return nil, err
			}
			report := fmt.Sprintf("lineage=%s\tdistance=%.6f\tconfidence=%.4f\n", got.Lineage, got.Distance, got.Confidence)
			return map[string]Dataset{"assignment": txt("lineage.tsv", report)}, nil
		},
	}
}

func toolLineageReport() Tool {
	return Tool{
		ID:          "lineage_report",
		Description: "Human-readable lineage summary",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			raw := strings.TrimSpace(string(in["assignment"].Data))
			if raw == "" {
				return nil, fmt.Errorf("lineage_report: empty assignment")
			}
			return map[string]Dataset{"report": txt("lineage_report.txt", "assignment: "+raw+"\n")}, nil
		},
	}
}

func toolFastaFormat() Tool {
	return Tool{
		ID:          "fasta_format",
		Description: "Wrap a raw sequence into a FASTA record",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			id := params["id"]
			if id == "" {
				id = "sequence"
			}
			rec := fasta.Record{ID: id, Description: params["description"], Seq: strings.TrimSpace(string(in["input"].Data))}
			return map[string]Dataset{"output": ds(id+".fasta", "fasta", []byte(fasta.String([]fasta.Record{rec})))}, nil
		},
	}
}

func toolPhyloPlacement() Tool {
	return Tool{
		ID:          "phylo_placement",
		Description: "Neighbour-joining placement of a genome among references",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			k, err := strconv.Atoi(params["k"])
			if err != nil || k <= 0 {
				k = 8
			}
			refs, err := fasta.ReadString(string(in["lineages"].Data))
			if err != nil {
				return nil, err
			}
			genome, err := oneFasta(in["genome"])
			if err != nil {
				return nil, err
			}
			names := []string{genome.ID}
			seqs := []string{genome.Seq}
			for _, r := range refs {
				names = append(names, r.ID)
				seqs = append(seqs, r.Seq)
			}
			tree, err := phylo.BuildFromSequences(names, seqs, k)
			if err != nil {
				return nil, err
			}
			return map[string]Dataset{"tree": ds("placement.nwk", "newick", []byte(tree.Newick()))}, nil
		},
	}
}

func toolSummaryReport() Tool {
	return Tool{
		ID:          "summary_report",
		Description: "Concatenate analysis reports",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			names := make([]string, 0, len(in))
			for name := range in {
				names = append(names, name)
			}
			sort.Strings(names)
			var sb strings.Builder
			for _, name := range names {
				fmt.Fprintf(&sb, "== %s ==\n%s\n", name, strings.TrimSpace(string(in[name].Data)))
			}
			return map[string]Dataset{"report": txt("summary.txt", sb.String())}, nil
		},
	}
}

func toolArchive() Tool {
	return Tool{
		ID:          "archive_outputs",
		Description: "Bundle outputs into one archive dataset",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			names := make([]string, 0, len(in))
			total := 0
			for name, d := range in {
				names = append(names, name)
				total += len(d.Data)
			}
			sort.Strings(names)
			var sb strings.Builder
			fmt.Fprintf(&sb, "archive: %d entries, %d bytes\n", len(in), total)
			for _, name := range names {
				fmt.Fprintf(&sb, "--- %s (%d bytes) ---\n", name, len(in[name].Data))
				sb.Write(in[name].Data)
				sb.WriteByte('\n')
			}
			return map[string]Dataset{"archive": txt("archive.txt", sb.String())}, nil
		},
	}
}

func toolFastQC() Tool {
	return Tool{
		ID:          "fastqc",
		Description: "Per-file read quality report (FastQC-like)",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			reads, err := fastq.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			rep, err := qc.Analyze(in["input"].Name, reads)
			if err != nil {
				return nil, err
			}
			report := fmt.Sprintf("name=%s reads=%d meanLen=%.1f meanQ=%.2f q20=%.4f gc=%.4f verdict=%s\n",
				rep.Name, rep.ReadCount, rep.MeanLength, rep.MeanQuality, rep.Q20Fraction, rep.GCFraction, rep.QualityVerdict)
			return map[string]Dataset{"report": txt("fastqc.txt", report)}, nil
		},
	}
}

func toolMultiQC() Tool {
	return Tool{
		ID:          "multiqc",
		Description: "Aggregate FastQC reports (MultiQC-like)",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			names := make([]string, 0, len(in))
			for name := range in {
				names = append(names, name)
			}
			sort.Strings(names)
			var sb strings.Builder
			fmt.Fprintf(&sb, "multiqc over %d reports\n", len(in))
			for _, name := range names {
				sb.WriteString(strings.TrimSpace(string(in[name].Data)) + "\n")
			}
			return map[string]Dataset{"report": txt("multiqc.txt", sb.String())}, nil
		},
	}
}

func toolCutadapt() Tool {
	return Tool{
		ID:          "cutadapt",
		Description: "Trim 3' adapters from reads (Cutadapt-like)",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			adapter := params["adapter"]
			if adapter == "" {
				adapter = "AGATCGGAAGAG" // Illumina TruSeq
			}
			mm, err := strconv.Atoi(params["max_mismatch"])
			if err != nil {
				mm = 1
			}
			reads, err := fastq.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			out := make([]fastq.Read, 0, len(reads))
			trimmed := 0
			for _, r := range reads {
				t, err := seq.TrimAdapter(r, adapter, mm, 3)
				if err != nil {
					return nil, err
				}
				if len(t.Seq) != len(r.Seq) {
					trimmed++
				}
				if len(t.Seq) > 0 {
					out = append(out, t)
				}
			}
			return map[string]Dataset{
				"output": ds("trimmed.fastq", "fastq", []byte(fastq.String(out))),
				"report": txt("cutadapt.txt", fmt.Sprintf("input=%d trimmed=%d kept=%d\n", len(reads), trimmed, len(out))),
			}, nil
		},
	}
}

func toolQualityTrim() Tool {
	return Tool{
		ID:          "quality_trim",
		Description: "Trim low-quality 3' tails",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			threshold, err := strconv.Atoi(params["threshold"])
			if err != nil {
				threshold = 20
			}
			reads, err := fastq.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			out := make([]fastq.Read, 0, len(reads))
			for _, r := range reads {
				t := seq.QualityTrim(r, threshold)
				if len(t.Seq) > 0 {
					out = append(out, t)
				}
			}
			return map[string]Dataset{"output": ds("qtrimmed.fastq", "fastq", []byte(fastq.String(out)))}, nil
		},
	}
}

func toolDemultiplex() Tool {
	return Tool{
		ID:          "demultiplex",
		Description: "Assign reads to samples by barcode (QIIME 2 demux)",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			reads, err := fastq.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			barcodes := map[string]string{}
			for _, line := range strings.Split(strings.TrimSpace(string(in["barcodes"].Data)), "\n") {
				if line == "" {
					continue
				}
				sample, bc, found := strings.Cut(line, "\t")
				if !found {
					return nil, fmt.Errorf("demultiplex: bad barcode line %q", line)
				}
				barcodes[sample] = bc
			}
			mm, err := strconv.Atoi(params["max_mismatch"])
			if err != nil {
				mm = 1
			}
			res, err := seq.Demultiplex(reads, barcodes, mm)
			if err != nil {
				return nil, err
			}
			outs := map[string]Dataset{}
			var summary strings.Builder
			samples := make([]string, 0, len(res.BySample))
			for s := range res.BySample {
				samples = append(samples, s)
			}
			sort.Strings(samples)
			for _, s := range samples {
				outs["sample_"+s] = ds(s+".fastq", "fastq", []byte(fastq.String(res.BySample[s])))
				fmt.Fprintf(&summary, "%s\t%d\n", s, len(res.BySample[s]))
			}
			fmt.Fprintf(&summary, "unassigned\t%d\n", len(res.Unassigned))
			outs["report"] = txt("demux.tsv", summary.String())
			return outs, nil
		},
	}
}

func toolDADA2() Tool {
	return Tool{
		ID:          "dada2_denoise",
		Description: "Dereplicate and denoise amplicon reads (DADA2-like)",
		Run: func(in map[string]Dataset, params map[string]string) (map[string]Dataset, error) {
			reads, err := fastq.ParseString(string(in["input"].Data))
			if err != nil {
				return nil, err
			}
			minQ, err := strconv.ParseFloat(params["min_quality"], 64)
			if err != nil {
				minQ = 20
			}
			res, err := denoise.Run(reads, denoise.Options{MinQuality: minQ})
			if err != nil {
				return nil, err
			}
			var tab strings.Builder
			for i, v := range res.Variants {
				fmt.Fprintf(&tab, "ASV%d\t%d\t%s\n", i+1, v.Abundance, v.Seq)
			}
			report := fmt.Sprintf("input=%d dropped=%d unique=%d variants=%d absorbed=%d\n",
				res.Input, res.QualityDropped, res.UniqueBefore, len(res.Variants), res.Absorbed)
			return map[string]Dataset{
				"table":  txt("asv_table.tsv", tab.String()),
				"report": txt("dada2.txt", report),
			}, nil
		},
	}
}

func toolDiversity() Tool {
	return Tool{
		ID:          "diversity_analysis",
		Description: "Alpha diversity over an ASV abundance table",
		Run: func(in map[string]Dataset, _ map[string]string) (map[string]Dataset, error) {
			var abundances []float64
			for _, line := range strings.Split(strings.TrimSpace(string(in["table"].Data)), "\n") {
				if line == "" {
					continue
				}
				cols := strings.Split(line, "\t")
				if len(cols) < 2 {
					return nil, fmt.Errorf("diversity: bad table line %q", line)
				}
				n, err := strconv.ParseFloat(cols[1], 64)
				if err != nil {
					return nil, fmt.Errorf("diversity: bad abundance %q: %w", cols[1], err)
				}
				abundances = append(abundances, n)
			}
			h, err := diversity.Shannon(abundances)
			if err != nil {
				return nil, err
			}
			simp, err := diversity.Simpson(abundances)
			if err != nil {
				return nil, err
			}
			obs, err := diversity.Observed(abundances)
			if err != nil {
				return nil, err
			}
			even, err := diversity.Pielou(abundances)
			if err != nil {
				return nil, err
			}
			report := fmt.Sprintf("observed=%d shannon=%.4f simpson=%.4f evenness=%.4f\n", obs, h, simp, even)
			return map[string]Dataset{"report": txt("diversity.txt", report)}, nil
		},
	}
}
