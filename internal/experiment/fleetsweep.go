package experiment

import (
	"fmt"
	"io"
	"strconv"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/report"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// FleetSeed seeds every fleet-sweep cell; one seed keeps the sweep a
// scaling study, not a variance study.
const FleetSeed = 42

// DefaultFleetSizes is the `-exp fleet` scaling ladder.
var DefaultFleetSizes = []int{1000, 10000, 50000, 100000}

// FleetCell is one (arm, fleet size) run of the sweep.
type FleetCell struct {
	Arm  string
	Size int
	Res  *FleetResult
}

// fleetArm names a strategy configuration of the fleet sweep. The
// sweep uses the two cheap stateless arms — the per-workload cost of
// the strategy itself stays constant while the harness scales.
type fleetArm struct {
	name  string
	build func(env *Env) (strategy.Strategy, error)
}

func fleetArms() []fleetArm {
	return []fleetArm{
		{name: "single-region", build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
		}},
		{name: "skypilot", build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
		}},
	}
}

// RunFleetCell executes one sweep cell: `size` standard workloads under
// the named arm, 14-day horizon, incomplete runs tolerated (the point
// is scaling, and a 14-day horizon completes essentially everything),
// partitioned over `shards` shard engines. The result is byte-identical
// at every shard count.
func RunFleetCell(arm string, size, shards int) (*FleetResult, error) {
	var build func(env *Env) (strategy.Strategy, error)
	for _, a := range fleetArms() {
		if a.name == arm {
			build = a.build
		}
	}
	if build == nil {
		return nil, fmt.Errorf("experiment: unknown fleet arm %q", arm)
	}
	f, err := workload.GenerateFleet(simclock.Stream(FleetSeed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: size})
	if err != nil {
		return nil, err
	}
	return RunFleetSharded(FleetSeed, FleetShardedConfig{
		Fleet:           f,
		NewStrategy:     build,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		Shards:          shards,
		ProfLabel:       fmt.Sprintf("fleet-%s-%d", arm, size),
	})
}

// FleetSweep runs every arm at every size, each cell partitioned over
// `shards` shard engines, the whole grid fanned out across the worker
// pool; cells land in deterministic (size, arm) order regardless of
// worker or shard count.
func FleetSweep(sizes []int, shards int) ([]FleetCell, error) {
	if len(sizes) == 0 {
		sizes = DefaultFleetSizes
	}
	arms := fleetArms()
	type cellSpec struct {
		arm  string
		size int
	}
	specs := make([]cellSpec, 0, len(sizes)*len(arms))
	for _, size := range sizes {
		for _, a := range arms {
			specs = append(specs, cellSpec{arm: a.name, size: size})
		}
	}
	return Gather(len(specs), func(i int) (FleetCell, error) {
		res, err := RunFleetCell(specs[i].arm, specs[i].size, shards)
		if err != nil {
			return FleetCell{}, fmt.Errorf("fleet %s n=%d: %w", specs[i].arm, specs[i].size, err)
		}
		return FleetCell{Arm: specs[i].arm, Size: specs[i].size, Res: res}, nil
	})
}

// RenderFleet writes the sweep table. Only simulation-deterministic
// quantities appear here — wall-clock throughput is the CLI layer's
// stderr business — so the output is byte-identical across runs and
// worker counts.
func RenderFleet(w io.Writer, cells []FleetCell) error {
	t := report.NewTable("Fleet-scale sweep — concurrent workloads per run (m5.xlarge, 14-day horizon)",
		"arm", "fleet", "completed", "interruptions", "peak_running", "events", "mean_h", "makespan_h", "cost")
	for _, c := range cells {
		t.MustAddRow(c.Arm,
			strconv.Itoa(c.Size),
			strconv.Itoa(c.Res.Completed),
			strconv.Itoa(c.Res.Interruptions),
			strconv.Itoa(c.Res.PeakRunning),
			strconv.FormatUint(c.Res.EventsFired, 10),
			report.F(c.Res.MeanCompletionHours, 2),
			report.F(c.Res.MakespanHours, 2),
			report.USD(c.Res.TotalCostUSD),
		)
	}
	return t.Render(w)
}
