package experiment

import (
	"fmt"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/predict"
)

// This file implements the paper's Section 7 future-work directions as
// runnable experiments: the learning-based placement strategy evaluated
// in a market with day/time-of-week interruption seasonality, the
// EFS-vs-S3 checkpoint storage comparison, and the degraded scoring
// modes for providers that expose fewer advisor metrics.

// ExtPredictiveResult compares SpotVerse, the learning strategy, and the
// price-chasing broker in a seasonal market.
type ExtPredictiveResult struct {
	SpotVerse  *Result
	Predictive *Result
	SkyPilot   *Result
}

// ExtPredictive runs n standard workloads per strategy in a market with
// hour-of-week hazard seasonality enabled.
func ExtPredictive(seed int64, n int) (*ExtPredictiveResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(build func(env *Env) (RunConfig, error)) (*Result, error) {
		env := NewEnv(seed)
		env.Market.EnableSeasonality()
		cfg, err := build(env)
		if err != nil {
			return nil, err
		}
		cfg.InstanceType = catalog.M5XLarge
		cfg.Workloads, err = genStandard(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, cfg)
	}

	sv, err := runOne(func(env *Env) (RunConfig, error) {
		mgr, err := newSpotVerse(env, core.Config{InstanceType: catalog.M5XLarge, Threshold: 6, Seed: seed})
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Strategy: mgr, DisableSweep: true}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ext-predictive spotverse: %w", err)
	}
	pred, err := runOne(func(env *Env) (RunConfig, error) {
		a, err := predict.NewAdaptive(env.Engine, env.Market, catalog.M5XLarge, predict.Config{Seed: seed})
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Strategy: a}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ext-predictive adaptive: %w", err)
	}
	sky, err := runOne(func(env *Env) (RunConfig, error) {
		s, err := baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{Strategy: s}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ext-predictive skypilot: %w", err)
	}
	return &ExtPredictiveResult{SpotVerse: sv, Predictive: pred, SkyPilot: sky}, nil
}

// ExtCheckpointStoresResult compares S3 and EFS checkpoint storage for
// the same checkpoint fleet.
type ExtCheckpointStoresResult struct {
	S3  *Result
	EFS *Result
}

// ExtCheckpointStores runs n checkpoint workloads under SpotVerse with
// each checkpoint store.
func ExtCheckpointStores(seed int64, n int) (*ExtCheckpointStoresResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(store CheckpointStore) (*Result, error) {
		env := NewEnv(seed)
		mgr, err := newSpotVerse(env, core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             seed,
		})
		if err != nil {
			return nil, err
		}
		ws, err := genCheckpoint(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{
			Workloads:     ws,
			Strategy:      mgr,
			InstanceType:  catalog.M5XLarge,
			DisableSweep:  true,
			CheckpointVia: store,
		})
	}
	s3res, err := runOne(CheckpointS3)
	if err != nil {
		return nil, fmt.Errorf("ext-checkpoint s3: %w", err)
	}
	efsres, err := runOne(CheckpointEFS)
	if err != nil {
		return nil, fmt.Errorf("ext-checkpoint efs: %w", err)
	}
	return &ExtCheckpointStoresResult{S3: s3res, EFS: efsres}, nil
}

// ExtScoringModesResult holds one run per scoring degradation.
type ExtScoringModesResult struct {
	Combined      *Result
	StabilityOnly *Result
	PriceOnly     *Result
}

// ExtScoringModes runs the same fleet under AWS-style combined scoring,
// Azure-style stability-only scoring, and reliability-blind price-only
// scoring.
func ExtScoringModes(seed int64, n int) (*ExtScoringModesResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(mode core.ScoringMode, threshold int) (*Result, error) {
		env := NewEnv(seed)
		mgr, err := newSpotVerse(env, core.Config{
			InstanceType: catalog.M5XLarge,
			Threshold:    threshold,
			Scoring:      mode,
			Seed:         seed,
		})
		if err != nil {
			return nil, err
		}
		ws, err := genStandard(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{Workloads: ws, Strategy: mgr, InstanceType: catalog.M5XLarge, DisableSweep: true})
	}
	combined, err := runOne(core.ScoreCombined, 6)
	if err != nil {
		return nil, fmt.Errorf("ext-scoring combined: %w", err)
	}
	stability, err := runOne(core.ScoreStabilityOnly, 3)
	if err != nil {
		return nil, fmt.Errorf("ext-scoring stability-only: %w", err)
	}
	price, err := runOne(core.ScorePriceOnly, 1)
	if err != nil {
		return nil, fmt.Errorf("ext-scoring price-only: %w", err)
	}
	return &ExtScoringModesResult{Combined: combined, StabilityOnly: stability, PriceOnly: price}, nil
}
