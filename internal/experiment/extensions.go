package experiment

import (
	"fmt"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/predict"
)

// This file implements the paper's Section 7 future-work directions as
// runnable experiments: the learning-based placement strategy evaluated
// in a market with day/time-of-week interruption seasonality, the
// EFS-vs-S3 checkpoint storage comparison, and the degraded scoring
// modes for providers that expose fewer advisor metrics.

// ExtPredictiveResult compares SpotVerse, the learning strategy, and the
// price-chasing broker in a seasonal market.
type ExtPredictiveResult struct {
	SpotVerse  *Result
	Predictive *Result
	SkyPilot   *Result
}

// ExtPredictive runs n standard workloads per strategy in a market with
// hour-of-week hazard seasonality enabled.
func ExtPredictive(seed int64, n int) (*ExtPredictiveResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(build func(env *Env) (RunConfig, error)) (*Result, error) {
		env := NewEnv(seed)
		env.Market.EnableSeasonality()
		cfg, err := build(env)
		if err != nil {
			return nil, err
		}
		cfg.InstanceType = catalog.M5XLarge
		cfg.Workloads, err = genStandard(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, cfg)
	}

	contenders := []struct {
		label string
		build func(env *Env) (RunConfig, error)
	}{
		{"spotverse", func(env *Env) (RunConfig, error) {
			mgr, err := newSpotVerse(env, core.Config{InstanceType: catalog.M5XLarge, Threshold: 6, Seed: seed})
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{Strategy: mgr, DisableSweep: true}, nil
		}},
		{"adaptive", func(env *Env) (RunConfig, error) {
			a, err := predict.NewAdaptive(env.Engine, env.Market, catalog.M5XLarge, predict.Config{Seed: seed})
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{Strategy: a}, nil
		}},
		{"skypilot", func(env *Env) (RunConfig, error) {
			s, err := baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{Strategy: s}, nil
		}},
	}
	results, err := Gather(len(contenders), func(i int) (*Result, error) {
		res, err := runOne(contenders[i].build)
		if err != nil {
			return nil, fmt.Errorf("ext-predictive %s: %w", contenders[i].label, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &ExtPredictiveResult{SpotVerse: results[0], Predictive: results[1], SkyPilot: results[2]}, nil
}

// ExtCheckpointStoresResult compares S3 and EFS checkpoint storage for
// the same checkpoint fleet.
type ExtCheckpointStoresResult struct {
	S3  *Result
	EFS *Result
}

// ExtCheckpointStores runs n checkpoint workloads under SpotVerse with
// each checkpoint store.
func ExtCheckpointStores(seed int64, n int) (*ExtCheckpointStoresResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(store CheckpointStore) (*Result, error) {
		env := NewEnv(seed)
		mgr, err := newSpotVerse(env, core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             seed,
		})
		if err != nil {
			return nil, err
		}
		ws, err := genCheckpoint(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{
			Workloads:     ws,
			Strategy:      mgr,
			InstanceType:  catalog.M5XLarge,
			DisableSweep:  true,
			CheckpointVia: store,
		})
	}
	stores := []struct {
		label string
		store CheckpointStore
	}{{"s3", CheckpointS3}, {"efs", CheckpointEFS}}
	results, err := Gather(len(stores), func(i int) (*Result, error) {
		res, err := runOne(stores[i].store)
		if err != nil {
			return nil, fmt.Errorf("ext-checkpoint %s: %w", stores[i].label, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &ExtCheckpointStoresResult{S3: results[0], EFS: results[1]}, nil
}

// ExtScoringModesResult holds one run per scoring degradation.
type ExtScoringModesResult struct {
	Combined      *Result
	StabilityOnly *Result
	PriceOnly     *Result
}

// ExtScoringModes runs the same fleet under AWS-style combined scoring,
// Azure-style stability-only scoring, and reliability-blind price-only
// scoring.
func ExtScoringModes(seed int64, n int) (*ExtScoringModesResult, error) {
	if n <= 0 {
		n = EvalInstances
	}
	runOne := func(mode core.ScoringMode, threshold int) (*Result, error) {
		env := NewEnv(seed)
		mgr, err := newSpotVerse(env, core.Config{
			InstanceType: catalog.M5XLarge,
			Threshold:    threshold,
			Scoring:      mode,
			Seed:         seed,
		})
		if err != nil {
			return nil, err
		}
		ws, err := genStandard(seed, n)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{Workloads: ws, Strategy: mgr, InstanceType: catalog.M5XLarge, DisableSweep: true})
	}
	modes := []struct {
		label     string
		mode      core.ScoringMode
		threshold int
	}{
		{"combined", core.ScoreCombined, 6},
		{"stability-only", core.ScoreStabilityOnly, 3},
		{"price-only", core.ScorePriceOnly, 1},
	}
	results, err := Gather(len(modes), func(i int) (*Result, error) {
		res, err := runOne(modes[i].mode, modes[i].threshold)
		if err != nil {
			return nil, fmt.Errorf("ext-scoring %s: %w", modes[i].label, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return &ExtScoringModesResult{Combined: results[0], StabilityOnly: results[1], PriceOnly: results[2]}, nil
}
