package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// DefaultFleetInterval is the bucket width of the streaming completion
// and interruption histograms.
const DefaultFleetInterval = time.Hour

// FleetRunConfig parameterises one fleet-scale run. It mirrors
// RunConfig minus the options whose memory cost is inherently
// per-workload: the structured Timeline and the durable-manifest modes
// stay on the per-workload path.
type FleetRunConfig struct {
	// Fleet holds the workloads in struct-of-arrays form (mutated by the
	// run).
	Fleet *workload.FleetState
	// Strategy decides placement.
	Strategy strategy.Strategy
	// InstanceType used by every workload.
	InstanceType catalog.InstanceType
	// Horizon caps simulated time (default 14 days).
	Horizon time.Duration
	// AllowIncomplete tolerates unfinished workloads at the horizon.
	AllowIncomplete bool
	// DisableSweep turns off the harness's 15-minute open-request sweep
	// (set when the strategy schedules its own).
	DisableSweep bool
	// CheckpointVia selects the checkpoint store.
	CheckpointVia CheckpointStore
	// Interval is the streaming histogram bucket width (default
	// DefaultFleetInterval).
	Interval time.Duration
	// ProfLabel names the run's pprof "arm" label.
	ProfLabel string
}

// FleetResult aggregates one fleet run. Headline metrics carry the
// same values the per-workload Result would report; per-workload
// series are replaced by fixed-interval aggregates, so the result is
// O(horizon/interval) regardless of fleet size.
type FleetResult struct {
	StrategyName string
	InstanceType catalog.InstanceType
	Workloads    int
	Completed    int

	Interruptions         int
	InterruptionsByRegion map[catalog.Region]int

	MakespanHours       float64
	MeanCompletionHours float64

	LaunchesByRegion map[catalog.Region]int
	OnDemandLaunches int

	InstanceCostUSD float64
	ServiceCostUSD  float64
	TotalCostUSD    float64

	Start time.Time

	DuplicateRelaunches int

	// Interval is the histogram bucket width; bucket i counts events in
	// [Start+i*Interval, Start+(i+1)*Interval), with the final bucket
	// absorbing anything at or past the horizon.
	Interval                 time.Duration
	CompletionsPerInterval   []int
	InterruptionsPerInterval []int

	// PeakRunning is the high-water mark of concurrently running
	// registered instances; EventsFired counts engine events executed.
	PeakRunning int
	EventsFired uint64
}

// RunFleet executes a fleet-scale experiment. It is the flat, batched,
// bounded-memory counterpart of Run: per-workload driver state lives in
// parallel slices indexed by dense workload index, completion timers
// are coalesced per (region, tick) through a simclock.Agenda, the
// provider runs in fleet mode (indexed sweeps, released history), and
// results stream into rolling counters instead of retained per-workload
// slices. For any fixed configuration it is bit-identical to Run — the
// golden tests pin that — while scaling to 100k concurrent workloads.
//
// The environment must be fresh, and is switched into provider fleet
// mode: one RunFleet per Env, and no Run on the same Env.
func RunFleet(env *Env, cfg FleetRunConfig) (*FleetResult, error) {
	label := cfg.ProfLabel
	if label == "" && cfg.Strategy != nil {
		label = cfg.Strategy.Name()
	}
	var (
		res *FleetResult
		err error
	)
	pprof.Do(context.Background(), pprof.Labels("arm", label), func(context.Context) {
		res, err = runFleet(env, cfg)
	})
	return res, err
}

func runFleet(env *Env, cfg FleetRunConfig) (*FleetResult, error) {
	if cfg.Fleet == nil || cfg.Fleet.Len() == 0 {
		return nil, ErrNoWorkloads
	}
	if cfg.Strategy == nil {
		return nil, ErrNoStrategy
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultFleetInterval
	}
	env.Provider.EnableFleetMode()

	f := cfg.Fleet
	n := f.Len()
	start := env.Engine.Now()
	buckets := int(cfg.Horizon/cfg.Interval) + 1
	res := &FleetResult{
		StrategyName:             cfg.Strategy.Name(),
		InstanceType:             cfg.InstanceType,
		Workloads:                n,
		InterruptionsByRegion:    make(map[catalog.Region]int),
		LaunchesByRegion:         make(map[catalog.Region]int),
		Start:                    start,
		Interval:                 cfg.Interval,
		CompletionsPerInterval:   make([]int, buckets),
		InterruptionsPerInterval: make([]int, buckets),
	}

	d := &fleetDriver{
		env:          env,
		cfg:          cfg,
		f:            f,
		res:          res,
		start:        start,
		activeInst:   make([]cloud.InstanceID, n),
		runStartNs:   make([]int64, n),
		completionEv: make([]*simclock.Event, n),
		ckptFailed:   make([]bool, n),
	}
	if f.Kind == workload.KindCheckpoint {
		if err := d.setupCheckpointStores(); err != nil {
			return nil, err
		}
	}
	env.Provider.OnLaunch(d.onLaunch)
	env.Provider.OnInterruptionNotice(d.onNotice)
	env.Provider.OnTerminate(d.onTerminate)
	if target, ok := cfg.Strategy.(RelaunchResolverTarget); ok {
		target.SetRelaunchResolver(d.relaunchFor)
	}
	if !cfg.DisableSweep {
		if err := env.CloudWatch.Schedule("harness-open-request-sweep", DefaultSweepInterval, func(time.Time) {
			env.Provider.EvaluateOpenRequests()
		}); err != nil {
			return nil, err
		}
	}

	// Materialize the ID list once for the strategy API, in the same
	// sorted order the per-workload path provisions in. The strings are
	// transient: the driver itself keys everything by dense index.
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = f.ID(i)
	}
	sort.Strings(ids)
	placements, err := cfg.Strategy.PlaceInitial(ids)
	if err != nil {
		return nil, fmt.Errorf("experiment: initial placement: %w", err)
	}
	for _, id := range ids {
		p, ok := placements[id]
		if !ok {
			return nil, fmt.Errorf("experiment: strategy left %q unplaced", id)
		}
		if err := d.provision(id, p); err != nil {
			return nil, err
		}
	}

	horizon := start.Add(cfg.Horizon)
	for d.completed != n {
		if env.Engine.Pending() == 0 {
			break
		}
		if env.Engine.Now().After(horizon) {
			break
		}
		env.Engine.Step()
	}
	env.CloudWatch.StopAll()
	for _, inst := range env.Provider.RunningInstances() {
		_ = env.Provider.Terminate(inst.ID)
	}
	if d.completed != n && !cfg.AllowIncomplete {
		return nil, fmt.Errorf("%w: %d/%d done after %v (strategy %s)",
			ErrHorizon, d.completed, n, cfg.Horizon, cfg.Strategy.Name())
	}

	res.Completed = d.completed
	if d.completed > 0 {
		// Completion events fire in nondecreasing simulated time, so the
		// streaming accumulation visits stamps in the same order the
		// per-workload path sums its sorted slice — the floats match
		// bit for bit without retaining a single stamp.
		res.MakespanHours = d.lastCompletion.Sub(start).Hours()
		res.MeanCompletionHours = d.sumCompletionHours / float64(d.completed)
	}
	res.InstanceCostUSD = env.Provider.TotalInstanceCost()
	res.ServiceCostUSD = env.Ledger.Total()
	res.TotalCostUSD = res.InstanceCostUSD + res.ServiceCostUSD
	res.EventsFired = env.Engine.Fired()
	return res, nil
}

// fleetDriver is the struct-of-arrays counterpart of driver: every
// per-workload map becomes a slice indexed by dense workload index, and
// workload IDs are parsed back to indices instead of being used as map
// keys.
type fleetDriver struct {
	env *Env
	cfg FleetRunConfig
	f   *workload.FleetState
	res *FleetResult

	start time.Time

	completed int
	running   int

	// activeInst[i] is workload i's live registered instance ("" when
	// none); runStartNs[i] the instance's registration instant;
	// completionEv[i] its pending completion event; ckptFailed[i]
	// whether the latest warning-window checkpoint write failed.
	activeInst   []cloud.InstanceID
	runStartNs   []int64
	completionEv []*simclock.Event
	ckptFailed   []bool

	sumCompletionHours float64
	lastCompletion     time.Time
}

// indexOf recovers the dense workload index from an instance tag or
// strategy-facing ID ("<prefix>-<index>", zero-padded).
func (d *fleetDriver) indexOf(id string) (int, bool) {
	cut := strings.LastIndexByte(id, '-')
	if cut < 0 {
		return 0, false
	}
	i, err := strconv.Atoi(id[cut+1:])
	if err != nil || i < 0 || i >= d.f.Len() {
		return 0, false
	}
	return i, true
}

func (d *fleetDriver) setupCheckpointStores() error {
	if err := d.env.Dynamo.CreateTable(CheckpointTable); err != nil {
		return err
	}
	if d.cfg.CheckpointVia == CheckpointEFS {
		return d.env.EFS.Create(checkpointBucket, checkpointBucketRegion)
	}
	return d.env.S3.CreateBucket(checkpointBucket, checkpointBucketRegion)
}

func (d *fleetDriver) checkpointWrite(key string, size int64, from catalog.Region) error {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			if err := d.env.EFS.Replicate(checkpointBucket, from); err != nil {
				return err
			}
		}
		return d.env.EFS.WriteSized(checkpointBucket, key, size, from)
	}
	return d.env.S3.PutSized(checkpointBucket, key, size, from)
}

func (d *fleetDriver) checkpointRead(key string, from catalog.Region) {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Exists(checkpointBucket, key) {
			return
		}
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			_ = d.env.EFS.Replicate(checkpointBucket, from)
		}
		_, _ = d.env.EFS.ReadSized(checkpointBucket, key, from)
		return
	}
	if d.env.S3.Exists(checkpointBucket, key) {
		_, _ = d.env.S3.Get(checkpointBucket, key, from)
	}
}

func (d *fleetDriver) relaunchFor(id string) strategy.RelaunchFunc {
	idx, ok := d.indexOf(id)
	if !ok {
		return nil
	}
	return func(p strategy.Placement) {
		if d.f.Completed[idx] {
			return
		}
		_ = d.provision(id, p)
	}
}

func (d *fleetDriver) provision(id string, p strategy.Placement) error {
	switch p.Lifecycle {
	case cloud.LifecycleOnDemand:
		_, err := d.env.Provider.RunOnDemand(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s on-demand: %w", id, err)
		}
	default:
		_, err := d.env.Provider.RequestSpot(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s spot: %w", id, err)
		}
	}
	return nil
}

// bucket returns the histogram slot for an instant, clamping anything
// at or past the horizon into the last slot.
func (d *fleetDriver) bucket(at time.Time) int {
	i := int(at.Sub(d.start) / d.cfg.Interval)
	if max := len(d.res.CompletionsPerInterval) - 1; i > max {
		i = max
	}
	if i < 0 {
		i = 0
	}
	return i
}

func (d *fleetDriver) onLaunch(inst *cloud.Instance) {
	idx, ok := d.indexOf(inst.Tag)
	if !ok {
		return
	}
	if d.f.Completed[idx] {
		// A stale open request got fulfilled after completion.
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	if prev := d.activeInst[idx]; prev != "" {
		if pi, err := d.env.Provider.Instance(prev); err == nil && pi.State == cloud.StateRunning {
			d.res.DuplicateRelaunches++
			_ = d.env.Provider.Terminate(inst.ID)
			return
		}
		d.activeInst[idx] = ""
	}
	if err := d.f.BeginAttempt(idx); err != nil {
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	now := d.env.Engine.Now()
	d.activeInst[idx] = inst.ID
	d.runStartNs[idx] = now.UnixNano()
	d.running++
	if d.running > d.res.PeakRunning {
		d.res.PeakRunning = d.running
	}
	d.res.LaunchesByRegion[inst.Region]++
	if inst.Lifecycle == cloud.LifecycleOnDemand {
		d.res.OnDemandLaunches++
	}
	if d.f.Kind == workload.KindCheckpoint && d.f.Attempts[idx] > 1 && d.f.ShardsDone[idx] > 0 {
		d.checkpointRead("ckpt/"+inst.Tag, inst.Region)
	}
	need := d.f.AttemptDuration(idx)
	instID := inst.ID
	// Completion instants are continuous duration draws, so no two
	// workloads ever share one — a direct engine event is cheaper than
	// any batching layer here (the batch win lives in the provider's
	// grid-aligned fulfill waves).
	d.completionEv[idx] = d.env.Engine.ScheduleAfter(need, "workload-complete", func() {
		d.complete(idx, instID)
	})
}

func (d *fleetDriver) complete(idx int, instID cloud.InstanceID) {
	inst, err := d.env.Provider.Instance(instID)
	if err != nil || inst.State != cloud.StateRunning {
		return
	}
	now := d.env.Engine.Now()
	if err := d.f.MarkComplete(idx, now); err != nil {
		return
	}
	d.completed++
	d.sumCompletionHours += now.Sub(d.start).Hours()
	d.lastCompletion = now
	d.res.CompletionsPerInterval[d.bucket(now)]++
	d.completionEv[idx] = nil
	if obs, ok := d.cfg.Strategy.(CompletionObserver); ok {
		obs.OnCompleted(d.f.ID(idx))
	}
	_ = d.env.Provider.Terminate(instID)
}

func (d *fleetDriver) onNotice(inst *cloud.Instance) {
	idx, ok := d.indexOf(inst.Tag)
	if !ok || d.f.Completed[idx] || d.f.Kind != workload.KindCheckpoint {
		return
	}
	now := d.env.Engine.Now()
	done := int(d.f.ShardsDone[idx])
	if d.activeInst[idx] == inst.ID {
		startAt := time.Unix(0, d.runStartNs[idx]).UTC()
		done += d.f.ShardsAt(idx, now.Sub(startAt))
	}
	failed := false
	if err := d.checkpointWrite("ckpt/"+inst.Tag, d.f.CheckpointBytes(), inst.Region); err != nil {
		failed = true
	}
	if err := d.env.Dynamo.PutIfAbsent(CheckpointTable, fleetCheckpointItem(inst.Tag, d.f.Shards, done, now)); err != nil &&
		!errors.Is(err, dynamo.ErrConditionFailed) {
		failed = true
	}
	d.ckptFailed[idx] = failed
}

func (d *fleetDriver) onTerminate(inst *cloud.Instance, interrupted bool) {
	idx, ok := d.indexOf(inst.Tag)
	if !ok {
		return
	}
	tracked := d.activeInst[idx] == inst.ID
	if tracked {
		d.activeInst[idx] = ""
		d.running--
	}
	if !interrupted || d.f.Completed[idx] || !tracked {
		return
	}
	now := d.env.Engine.Now()
	d.res.Interruptions++
	d.res.InterruptionsByRegion[inst.Region]++
	d.res.InterruptionsPerInterval[d.bucket(now)]++
	startAt := time.Unix(0, d.runStartNs[idx]).UTC()
	banked := d.f.CreditProgress(idx, now.Sub(startAt))
	if banked > 0 && d.ckptFailed[idx] {
		d.f.DropShards(idx, banked)
	}
	d.ckptFailed[idx] = false
	if ev := d.completionEv[idx]; ev != nil {
		ev.Cancel()
		d.completionEv[idx] = nil
	}
	id := inst.Tag
	if err := d.cfg.Strategy.OnInterrupted(id, inst.Region, d.relaunchFor(id)); err != nil {
		// A strategy that cannot place leaves the workload stranded; the
		// run hits the horizon and reports it.
		return
	}
}

// fleetCheckpointItem is dynamoCheckpointItem without the *State: same
// key, same attributes, same billing.
func fleetCheckpointItem(id string, shards, shardsDone int, now time.Time) dynamo.Item {
	return dynamo.Item{
		Key: checkpointKey(id, shardsDone),
		Attrs: map[string]string{
			"workload":   id,
			"shardsDone": strconv.Itoa(shardsDone),
			"shards":     strconv.Itoa(shards),
			"updated":    now.Format(time.RFC3339),
		},
	}
}
