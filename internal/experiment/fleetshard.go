package experiment

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// ErrCheckpointSharded rejects checkpoint fleets on the sharded path:
// checkpoint runs write through the shared Dynamo/S3 stores, whose
// billing and retry behaviour couple workloads across shard boundaries.
// They stay on RunFleet.
var ErrCheckpointSharded = fmt.Errorf("experiment: checkpoint fleets are not shardable; use RunFleet")

// splitmixFleetStream names the per-workload draw family. Workload i's
// trajectory draws come from SplitMixAt(SplitMixFamily(seed, name), i),
// so the stream is a pure function of (seed, global index) — the
// property that makes shard boundaries invisible.
const splitmixFleetStream = "fleet-wl"

// FleetShardedConfig parameterises a sharded fleet run. It mirrors
// FleetRunConfig for the standard-workload fleet sweep, with two
// deliberate differences: the strategy is built per shard (each shard
// owns an Env, and strategies hold an engine/market handle), and the
// checkpoint/sweep options are absent — the sharded driver always runs
// its own per-shard sweep, and checkpoint fleets are rejected.
type FleetShardedConfig struct {
	// Fleet holds the workloads in struct-of-arrays form (mutated by the
	// run).
	Fleet *workload.FleetState
	// NewStrategy builds one strategy instance per shard over that
	// shard's Env. The fleet arms are per-workload stateless — decisions
	// depend only on the pure market at the decision instant — which is
	// what lets per-shard instances behave identically to one shared one.
	NewStrategy func(env *Env) (strategy.Strategy, error)
	// InstanceType used by every workload.
	InstanceType catalog.InstanceType
	// Horizon caps simulated time (default 14 days).
	Horizon time.Duration
	// AllowIncomplete tolerates unfinished workloads at the horizon.
	AllowIncomplete bool
	// Interval is the streaming histogram bucket width (default
	// DefaultFleetInterval).
	Interval time.Duration
	// Shards is the number of contiguous fleet partitions (default 1).
	// Each shard gets its own engine and provider and runs on the worker
	// pool; the merged result is byte-identical at every shard count.
	Shards int
	// ProfLabel names the run's pprof "arm" label.
	ProfLabel string
}

// RunFleetSharded executes a fleet-scale experiment partitioned across
// independent shard engines. The fleet's SoA columns are split into
// contiguous [lo, hi) views (workload.ShardBounds); each shard gets a
// fresh Env over the shared immutable market snapshot, a horizon
// sentinel, and per-workload SplitMix64 draw streams keyed by global
// index; shards run concurrently on the bounded worker pool; and the
// per-shard streaming aggregates merge under order-canonical rules
// (sorted cost log, sorted launch/stop logs, index-ordered completion
// stats). Every quantity in the result is a function of per-workload
// trajectories plus a canonical reduction, and each trajectory is a
// pure function of (seed, global index, market) — so the output is
// byte-identical at any shard count and any worker count.
//
// The one intentional difference from RunFleet: the 15-minute open-
// request sweep is self-scheduled on each shard engine rather than
// billed through CloudWatch, because per-shard tick counts vary with
// the shard count and their billing would leak into ServiceCostUSD.
// Standard-kind fleets use no other billed service, so ServiceCostUSD
// is zero on this path.
func RunFleetSharded(seed int64, cfg FleetShardedConfig) (*FleetResult, error) {
	if cfg.Fleet == nil || cfg.Fleet.Len() == 0 {
		return nil, ErrNoWorkloads
	}
	if cfg.NewStrategy == nil {
		return nil, ErrNoStrategy
	}
	if cfg.Fleet.Kind == workload.KindCheckpoint {
		return nil, ErrCheckpointSharded
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultFleetInterval
	}

	n := cfg.Fleet.Len()
	family := simclock.SplitMixFamily(seed, splitmixFleetStream)
	outs, err := Gather(cfg.Shards, func(k int) (*shardOut, error) {
		lo, hi := workload.ShardBounds(n, cfg.Shards, k)
		if lo == hi {
			return &shardOut{}, nil
		}
		return runFleetShard(seed, family, &cfg, cfg.Fleet.Shard(lo, hi))
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(&cfg, outs)
}

// shardOut is one shard's contribution to the merged FleetResult:
// plain sums, mergeable logs, and the shard's count of per-workload
// engine events. Everything here is either a per-workload quantity or
// reduced under a shard-count-invariant rule by mergeShards.
type shardOut struct {
	strategyName string
	startNs      int64

	completed           int
	interruptions       int
	onDemandLaunches    int
	duplicateRelaunches int

	interruptionsByRegion map[catalog.Region]int
	launchesByRegion      map[catalog.Region]int

	completionsPerInterval   []int
	interruptionsPerInterval []int

	// costLog records (global index, final cost) per terminated
	// instance, in termination order — which within one workload is
	// shard-count-invariant. The merge stable-sorts by index and sums.
	costLog []indexedCost
	// launchNs/stopNs stamp tracked instance starts and stops; the merge
	// recovers the global concurrency high-water mark from the sorted
	// logs.
	launchNs []int64
	stopNs   []int64

	// firedAdj is the shard's engine events minus the engine-shape
	// bookkeeping (sweep ticks, the horizon sentinel, batched-fulfill
	// buckets) whose counts depend on how the fleet was partitioned.
	// What remains — completions, notices, reclaims, price events — is
	// per-workload and shard-count-invariant.
	firedAdj uint64

	serviceCostUSD float64
}

// indexedCost is one terminated instance's cost, keyed by the global
// index of the workload it served.
type indexedCost struct {
	gidx int
	usd  float64
}

// shardDriver drives one shard's engine. It is fleetDriver specialised
// to standard workloads, with the per-launch closure allocations hoisted
// into per-workload caches: completion and relaunch closures capture
// only the dense index and read the driver's current state when they
// fire.
type shardDriver struct {
	env   *Env
	cfg   *FleetShardedConfig
	f     *workload.FleetState
	strat strategy.Strategy
	obs   CompletionObserver
	out   *shardOut

	start time.Time

	// ids holds the strategy-facing workload IDs, indexed densely; the
	// hot path never re-formats an ID.
	ids []string

	activeInst   []cloud.InstanceID
	runStartNs   []int64
	completionEv []*simclock.Event

	// rngs are the per-workload draw streams the provider resolves
	// through SetWorkloadRand.
	rngs []simclock.SplitMix64

	// compFns/relFns are the cached per-workload closures. A pending
	// completion event exists only while its instance is the tracked one
	// (interruption cancels the event; duplicate launches are refused),
	// so compFns[i] can re-read activeInst[i] at fire time.
	compFns []func()
	relFns  []strategy.RelaunchFunc
}

func runFleetShard(seed int64, family uint64, cfg *FleetShardedConfig, f *workload.FleetState) (*shardOut, error) {
	var (
		out *shardOut
		err error
	)
	label := cfg.ProfLabel
	pprof.Do(context.Background(), pprof.Labels("arm", label), func(context.Context) {
		out, err = runFleetShardLabeled(seed, family, cfg, f)
	})
	return out, err
}

func runFleetShardLabeled(seed int64, family uint64, cfg *FleetShardedConfig, f *workload.FleetState) (*shardOut, error) {
	env := NewEnv(seed)
	eng := env.Engine
	start := eng.Now()
	horizon := start.Add(cfg.Horizon)

	// The sentinel is scheduled before anything else, so it holds the
	// smallest sequence number of the run: any event landing exactly on
	// the horizon loses the same-instant tie to it and never executes,
	// at every shard count.
	sentinelHit := false
	if _, serr := eng.ScheduleAt(horizon, "fleet-horizon", func() { sentinelHit = true }); serr != nil {
		return nil, serr
	}

	prov := env.Provider
	prov.EnableFleetMode()
	prov.SetEventHorizon(horizon)

	n := f.Len()
	buckets := int(cfg.Horizon/cfg.Interval) + 1
	out := &shardOut{
		startNs:                  start.UnixNano(),
		interruptionsByRegion:    make(map[catalog.Region]int),
		launchesByRegion:         make(map[catalog.Region]int),
		completionsPerInterval:   make([]int, buckets),
		interruptionsPerInterval: make([]int, buckets),
	}
	d := &shardDriver{
		env:          env,
		cfg:          cfg,
		f:            f,
		out:          out,
		start:        start,
		ids:          make([]string, n),
		activeInst:   make([]cloud.InstanceID, n),
		runStartNs:   make([]int64, n),
		completionEv: make([]*simclock.Event, n),
		rngs:         make([]simclock.SplitMix64, n),
		compFns:      make([]func(), n),
		relFns:       make([]strategy.RelaunchFunc, n),
	}
	for i := 0; i < n; i++ {
		idx := i
		d.ids[i] = f.ID(i)
		d.rngs[i] = simclock.SplitMixAt(family, f.Base+i)
		d.compFns[i] = func() { d.complete(idx) }
		d.relFns[i] = func(p strategy.Placement) {
			if d.f.Completed[idx] {
				return
			}
			_ = d.provision(idx, p)
		}
	}
	prov.SetWorkloadRand(d.streamFor)

	strat, err := cfg.NewStrategy(env)
	if err != nil {
		return nil, err
	}
	d.strat = strat
	d.obs, _ = strat.(CompletionObserver)
	out.strategyName = strat.Name()

	prov.OnLaunch(d.onLaunch)
	prov.OnTerminate(d.onTerminate)
	if target, ok := strat.(RelaunchResolverTarget); ok {
		target.SetRelaunchResolver(d.relaunchFor)
	}

	// The retry sweep runs straight on the shard engine. Going through
	// CloudWatch would bill per tick, and tick totals scale with the
	// shard count — the one cost that is engine-shape, not simulation.
	sweepFired := uint64(0)
	ticker := eng.Every(DefaultSweepInterval, "harness-open-request-sweep", func(time.Time) {
		prov.EvaluateOpenRequests()
		sweepFired++
	})

	// The strategy API takes sorted IDs, as on the per-workload path.
	sorted := make([]string, n)
	copy(sorted, d.ids)
	sort.Strings(sorted)
	placements, err := strat.PlaceInitial(sorted)
	if err != nil {
		return nil, fmt.Errorf("experiment: initial placement: %w", err)
	}
	for _, id := range sorted {
		p, ok := placements[id]
		if !ok {
			return nil, fmt.Errorf("experiment: strategy left %q unplaced", id)
		}
		idx, ok := d.indexOf(id)
		if !ok {
			return nil, fmt.Errorf("experiment: strategy placed unknown id %q", id)
		}
		if err := d.provision(idx, p); err != nil {
			return nil, err
		}
	}

	for out.completed != n && !sentinelHit {
		if eng.Pending() == 0 {
			break
		}
		eng.Step()
	}
	ticker.Stop()
	for _, inst := range prov.RunningInstances() {
		_ = prov.Terminate(inst.ID)
	}

	sentinelFired := uint64(0)
	if sentinelHit {
		sentinelFired = 1
	}
	out.firedAdj = eng.Fired() - sweepFired - sentinelFired - prov.BatchEventsFired()
	out.serviceCostUSD = env.Ledger.Total()
	return out, nil
}

// streamFor resolves an instance/request tag to its workload's draw
// stream; tags outside this shard (there are none in practice) fall
// back to the provider's sequential stream.
func (d *shardDriver) streamFor(tag string) *simclock.SplitMix64 {
	idx, ok := d.indexOf(tag)
	if !ok {
		return nil
	}
	return &d.rngs[idx]
}

// indexOf recovers the dense (shard-local) index from an instance tag
// or strategy-facing ID ("<prefix>-<globalIndex>", zero-padded).
//
//spotverse:hotpath
func (d *shardDriver) indexOf(id string) (int, bool) {
	cut := strings.LastIndexByte(id, '-')
	if cut < 0 {
		return 0, false
	}
	g, err := strconv.Atoi(id[cut+1:])
	if err != nil {
		return 0, false
	}
	i := g - d.f.Base
	if i < 0 || i >= d.f.Len() {
		return 0, false
	}
	return i, true
}

func (d *shardDriver) relaunchFor(id string) strategy.RelaunchFunc {
	idx, ok := d.indexOf(id)
	if !ok {
		return nil
	}
	return d.relFns[idx]
}

func (d *shardDriver) provision(idx int, p strategy.Placement) error {
	id := d.ids[idx]
	switch p.Lifecycle {
	case cloud.LifecycleOnDemand:
		if _, err := d.env.Provider.RunOnDemand(d.cfg.InstanceType, p.Region, id); err != nil {
			return fmt.Errorf("experiment: provision %s on-demand: %w", id, err)
		}
	default:
		if _, err := d.env.Provider.RequestSpot(d.cfg.InstanceType, p.Region, id); err != nil {
			return fmt.Errorf("experiment: provision %s spot: %w", id, err)
		}
	}
	return nil
}

// bucket returns the histogram slot for an instant, clamping anything
// at or past the horizon into the last slot.
func (d *shardDriver) bucket(at time.Time) int {
	i := int(at.Sub(d.start) / d.cfg.Interval)
	if max := len(d.out.completionsPerInterval) - 1; i > max {
		i = max
	}
	if i < 0 {
		i = 0
	}
	return i
}

func (d *shardDriver) onLaunch(inst *cloud.Instance) {
	idx, ok := d.indexOf(inst.Tag)
	if !ok {
		return
	}
	if d.f.Completed[idx] {
		// A stale open request got fulfilled after completion.
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	if prev := d.activeInst[idx]; prev != "" {
		if pi, err := d.env.Provider.Instance(prev); err == nil && pi.State == cloud.StateRunning {
			d.out.duplicateRelaunches++
			_ = d.env.Provider.Terminate(inst.ID)
			return
		}
		d.activeInst[idx] = ""
	}
	if err := d.f.BeginAttempt(idx); err != nil {
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	now := d.env.Engine.Now()
	d.activeInst[idx] = inst.ID
	d.runStartNs[idx] = now.UnixNano()
	d.out.launchNs = append(d.out.launchNs, now.UnixNano())
	d.out.launchesByRegion[inst.Region]++
	if inst.Lifecycle == cloud.LifecycleOnDemand {
		d.out.onDemandLaunches++
	}
	need := d.f.AttemptDuration(idx)
	d.completionEv[idx] = d.env.Engine.ScheduleAfter(need, "workload-complete", d.compFns[idx])
}

func (d *shardDriver) complete(idx int) {
	instID := d.activeInst[idx]
	if instID == "" {
		return
	}
	inst, err := d.env.Provider.Instance(instID)
	if err != nil || inst.State != cloud.StateRunning {
		return
	}
	now := d.env.Engine.Now()
	if err := d.f.MarkComplete(idx, now); err != nil {
		return
	}
	d.out.completed++
	d.out.completionsPerInterval[d.bucket(now)]++
	d.completionEv[idx] = nil
	if d.obs != nil {
		d.obs.OnCompleted(d.ids[idx])
	}
	_ = d.env.Provider.Terminate(instID)
}

func (d *shardDriver) onTerminate(inst *cloud.Instance, interrupted bool) {
	idx, ok := d.indexOf(inst.Tag)
	if !ok {
		return
	}
	d.out.costLog = append(d.out.costLog, indexedCost{gidx: d.f.Base + idx, usd: inst.CostUSD})
	tracked := d.activeInst[idx] == inst.ID
	if tracked {
		d.activeInst[idx] = ""
		d.out.stopNs = append(d.out.stopNs, d.env.Engine.Now().UnixNano())
	}
	if !interrupted || d.f.Completed[idx] || !tracked {
		return
	}
	now := d.env.Engine.Now()
	d.out.interruptions++
	d.out.interruptionsByRegion[inst.Region]++
	d.out.interruptionsPerInterval[d.bucket(now)]++
	startAt := time.Unix(0, d.runStartNs[idx]).UTC()
	_ = d.f.CreditProgress(idx, now.Sub(startAt))
	if ev := d.completionEv[idx]; ev != nil {
		ev.Cancel()
		d.completionEv[idx] = nil
	}
	if err := d.strat.OnInterrupted(inst.Tag, inst.Region, d.relFns[idx]); err != nil {
		// A strategy that cannot place leaves the workload stranded; the
		// run hits the horizon and reports it.
		return
	}
}

// mergeShards folds per-shard aggregates into one FleetResult under
// order-canonical reductions, so the merged bytes are independent of
// both the shard count and the worker interleaving:
//
//   - counters and histograms are integer sums;
//   - instance cost stable-sorts the concatenated (global index, cost)
//     log and sums in that order — within one workload, termination
//     order is shard-count-invariant, so the float sum is too;
//   - peak concurrency replays the sorted launch/stop stamps, with
//     stops at an instant applied before launches at the same instant;
//   - completion stats are recomputed from the fleet's CompletedAtNanos
//     column in global index order.
func mergeShards(cfg *FleetShardedConfig, outs []*shardOut) (*FleetResult, error) {
	f := cfg.Fleet
	n := f.Len()
	buckets := int(cfg.Horizon/cfg.Interval) + 1
	res := &FleetResult{
		InstanceType:             cfg.InstanceType,
		Workloads:                n,
		InterruptionsByRegion:    make(map[catalog.Region]int),
		LaunchesByRegion:         make(map[catalog.Region]int),
		Interval:                 cfg.Interval,
		CompletionsPerInterval:   make([]int, buckets),
		InterruptionsPerInterval: make([]int, buckets),
	}

	var costs []indexedCost
	var launches, stops []int64
	for _, o := range outs {
		if o.strategyName != "" {
			res.StrategyName = o.strategyName
			res.Start = time.Unix(0, o.startNs).UTC()
		}
		res.Completed += o.completed
		res.Interruptions += o.interruptions
		res.OnDemandLaunches += o.onDemandLaunches
		res.DuplicateRelaunches += o.duplicateRelaunches
		for r, c := range o.interruptionsByRegion {
			res.InterruptionsByRegion[r] += c
		}
		for r, c := range o.launchesByRegion {
			res.LaunchesByRegion[r] += c
		}
		for i, c := range o.completionsPerInterval {
			res.CompletionsPerInterval[i] += c
		}
		for i, c := range o.interruptionsPerInterval {
			res.InterruptionsPerInterval[i] += c
		}
		res.EventsFired += o.firedAdj
		res.ServiceCostUSD += o.serviceCostUSD
		costs = append(costs, o.costLog...)
		launches = append(launches, o.launchNs...)
		stops = append(stops, o.stopNs...)
	}

	sort.SliceStable(costs, func(i, j int) bool { return costs[i].gidx < costs[j].gidx })
	for _, c := range costs {
		res.InstanceCostUSD += c.usd
	}
	res.TotalCostUSD = res.InstanceCostUSD + res.ServiceCostUSD

	sort.Slice(launches, func(i, j int) bool { return launches[i] < launches[j] })
	sort.Slice(stops, func(i, j int) bool { return stops[i] < stops[j] })
	running, j := 0, 0
	for _, t := range launches {
		for j < len(stops) && stops[j] <= t {
			running--
			j++
		}
		running++
		if running > res.PeakRunning {
			res.PeakRunning = running
		}
	}

	if res.Completed > 0 {
		var sum float64
		lastNs := int64(0)
		startNs := res.Start.UnixNano()
		for i := 0; i < n; i++ {
			if !f.Completed[i] {
				continue
			}
			at := f.CompletedAtNanos[i]
			sum += time.Duration(at - startNs).Hours()
			if at > lastNs {
				lastNs = at
			}
		}
		res.MeanCompletionHours = sum / float64(res.Completed)
		res.MakespanHours = time.Duration(lastNs - startNs).Hours()
	}

	if res.Completed != n && !cfg.AllowIncomplete {
		return nil, fmt.Errorf("%w: %d/%d done after %v (strategy %s)",
			ErrHorizon, res.Completed, n, cfg.Horizon, res.StrategyName)
	}
	return res, nil
}
