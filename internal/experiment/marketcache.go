package experiment

import (
	"sync/atomic"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
)

// Market snapshot sharing. Every comparison figure contrasts strategy
// arms on the same market realization; with the cache on (the default),
// each (seed, start) materialises its series once in a shared
// market.Snapshot and every Env built for that key — across arms,
// ForEach workers, and experiments in the -exp all sweep — reads it
// concurrently. Outputs are byte-identical with the cache on or off:
// snapshot values depend only on (seed, stream, step), never on sharing
// or query interleaving.

// DefaultMarketCacheSegments is the default snapshot-store high-water
// mark: 8192 segments × 2 KiB ≈ 16 MiB of resident market series,
// roughly a dozen fully-materialised 90-day seeds.
const DefaultMarketCacheSegments = 8192

var (
	mktStore    atomic.Pointer[market.SnapshotStore]
	mktSegments atomic.Int64
)

func init() { SetMarketCache(DefaultMarketCacheSegments) }

// SetMarketCache resizes the shared market-snapshot store to the given
// segment high-water mark and returns the previous setting. A value
// <= 0 disables sharing: every Env regenerates its own market, the
// pre-snapshot behaviour. Resizing drops previously cached snapshots.
func SetMarketCache(segments int) int {
	prev := int(mktSegments.Swap(int64(segments)))
	if segments <= 0 {
		mktStore.Store(nil)
		return prev
	}
	mktStore.Store(market.NewSnapshotStore(catalog.Default(), segments))
	return prev
}

// MarketCache reports the store's segment high-water mark (<= 0 when
// sharing is disabled).
func MarketCache() int { return int(mktSegments.Load()) }

// acquireMarket returns the shared snapshot-backed model for (seed,
// start), or a private one when the cache is off.
func acquireMarket(seed int64, start time.Time) *market.Model {
	if st := mktStore.Load(); st != nil {
		return market.FromSnapshot(st.Acquire(seed, start))
	}
	return market.New(catalog.Default(), seed, start)
}
