package experiment

import (
	"testing"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// fleetGoldenArm names one strategy configuration the fleet path must
// reproduce bit-for-bit.
type fleetGoldenArm struct {
	name         string
	kind         workload.Kind
	disableSweep bool
	build        func(env *Env) (strategy.Strategy, error)
}

func fleetGoldenArms(seed int64) []fleetGoldenArm {
	return []fleetGoldenArm{
		{name: "single-region", kind: workload.KindStandard, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
		}},
		{name: "on-demand", kind: workload.KindStandard, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
		}},
		{name: "skypilot", kind: workload.KindStandard, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
		}},
		{name: "naive-multi-region", kind: workload.KindStandard, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewNaiveMultiRegion(env.Catalog(), catalog.M5XLarge, MotivationRegions, seed)
		}},
		{name: "spotverse-core", kind: workload.KindStandard, disableSweep: true, build: func(env *Env) (strategy.Strategy, error) {
			return newSpotVerse(env, core.Config{
				InstanceType:     catalog.M5XLarge,
				Threshold:        5,
				FixedStartRegion: BaselineRegionM5XLarge,
				Seed:             seed,
			})
		}},
		{name: "single-region-checkpoint", kind: workload.KindCheckpoint, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
		}},
		{name: "skypilot-checkpoint", kind: workload.KindCheckpoint, build: func(env *Env) (strategy.Strategy, error) {
			return baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
		}},
	}
}

func fleetGenOptions(kind workload.Kind, n int) (string, workload.GenOptions) {
	if kind == workload.KindCheckpoint {
		return "wl-checkpoint", workload.GenOptions{
			Kind:           workload.KindCheckpoint,
			Count:          n,
			ResumeOverhead: 15 * time.Minute,
		}
	}
	return "wl-standard", workload.GenOptions{Kind: workload.KindStandard, Count: n}
}

func runGoldenSlow(t *testing.T, seed int64, arm fleetGoldenArm, n int) *Result {
	t.Helper()
	env := NewEnv(seed)
	strat, err := arm.build(env)
	if err != nil {
		t.Fatal(err)
	}
	stream, opts := fleetGenOptions(arm.kind, n)
	ws, err := workload.Generate(simclock.Stream(seed, stream), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{
		Workloads:       ws,
		Strategy:        strat,
		InstanceType:    catalog.M5XLarge,
		DisableSweep:    arm.disableSweep,
		AllowIncomplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runGoldenFleet(t *testing.T, seed int64, arm fleetGoldenArm, n int) *FleetResult {
	t.Helper()
	env := NewEnv(seed)
	strat, err := arm.build(env)
	if err != nil {
		t.Fatal(err)
	}
	stream, opts := fleetGenOptions(arm.kind, n)
	f, err := workload.GenerateFleet(simclock.Stream(seed, stream), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleet(env, FleetRunConfig{
		Fleet:           f,
		Strategy:        strat,
		InstanceType:    catalog.M5XLarge,
		DisableSweep:    arm.disableSweep,
		AllowIncomplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// intervalHistogram buckets the slow path's retained stamps the way the
// fleet path streams them, for histogram comparison.
func intervalHistogram(stamps []time.Time, start time.Time, interval time.Duration, buckets int) []int {
	out := make([]int, buckets)
	for _, ts := range stamps {
		i := int(ts.Sub(start) / interval)
		if i > buckets-1 {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		out[i]++
	}
	return out
}

// TestFleetPathBitIdenticalToSlowPath is the golden equivalence test:
// at N=20, for every strategy arm, the batched struct-of-arrays fleet
// path must agree with the per-workload path on every headline metric
// to the exact bit, and its streamed histograms must equal histograms
// derived from the slow path's retained stamps.
func TestFleetPathBitIdenticalToSlowPath(t *testing.T) {
	const seed, n = 42, 20
	for _, arm := range fleetGoldenArms(seed) {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			slow := runGoldenSlow(t, seed, arm, n)
			fleet := runGoldenFleet(t, seed, arm, n)

			if fleet.Completed != slow.Completed {
				t.Errorf("Completed = %d, slow %d", fleet.Completed, slow.Completed)
			}
			if fleet.Interruptions != slow.Interruptions {
				t.Errorf("Interruptions = %d, slow %d", fleet.Interruptions, slow.Interruptions)
			}
			if fleet.OnDemandLaunches != slow.OnDemandLaunches {
				t.Errorf("OnDemandLaunches = %d, slow %d", fleet.OnDemandLaunches, slow.OnDemandLaunches)
			}
			if fleet.DuplicateRelaunches != slow.DuplicateRelaunches {
				t.Errorf("DuplicateRelaunches = %d, slow %d", fleet.DuplicateRelaunches, slow.DuplicateRelaunches)
			}
			if fleet.MakespanHours != slow.MakespanHours {
				t.Errorf("MakespanHours = %v, slow %v (must be bit-identical)", fleet.MakespanHours, slow.MakespanHours)
			}
			if fleet.MeanCompletionHours != slow.MeanCompletionHours {
				t.Errorf("MeanCompletionHours = %v, slow %v (must be bit-identical)", fleet.MeanCompletionHours, slow.MeanCompletionHours)
			}
			if fleet.InstanceCostUSD != slow.InstanceCostUSD {
				t.Errorf("InstanceCostUSD = %v, slow %v (must be bit-identical)", fleet.InstanceCostUSD, slow.InstanceCostUSD)
			}
			if fleet.ServiceCostUSD != slow.ServiceCostUSD {
				t.Errorf("ServiceCostUSD = %v, slow %v (must be bit-identical)", fleet.ServiceCostUSD, slow.ServiceCostUSD)
			}
			if fleet.TotalCostUSD != slow.TotalCostUSD {
				t.Errorf("TotalCostUSD = %v, slow %v (must be bit-identical)", fleet.TotalCostUSD, slow.TotalCostUSD)
			}
			for r, want := range slow.LaunchesByRegion {
				if got := fleet.LaunchesByRegion[r]; got != want {
					t.Errorf("LaunchesByRegion[%s] = %d, slow %d", r, got, want)
				}
			}
			if len(fleet.LaunchesByRegion) != len(slow.LaunchesByRegion) {
				t.Errorf("LaunchesByRegion has %d regions, slow %d", len(fleet.LaunchesByRegion), len(slow.LaunchesByRegion))
			}
			for r, want := range slow.InterruptionsByRegion {
				if got := fleet.InterruptionsByRegion[r]; got != want {
					t.Errorf("InterruptionsByRegion[%s] = %d, slow %d", r, got, want)
				}
			}

			buckets := len(fleet.CompletionsPerInterval)
			wantCompl := intervalHistogram(slow.CompletionStamps, slow.Start, fleet.Interval, buckets)
			for i := range wantCompl {
				if fleet.CompletionsPerInterval[i] != wantCompl[i] {
					t.Errorf("CompletionsPerInterval[%d] = %d, slow-derived %d", i, fleet.CompletionsPerInterval[i], wantCompl[i])
				}
			}
			wantIntr := intervalHistogram(slow.InterruptionStamps, slow.Start, fleet.Interval, buckets)
			for i := range wantIntr {
				if fleet.InterruptionsPerInterval[i] != wantIntr[i] {
					t.Errorf("InterruptionsPerInterval[%d] = %d, slow-derived %d", i, fleet.InterruptionsPerInterval[i], wantIntr[i])
				}
			}
		})
	}
}

// TestRunFleetRejectsEmpty pins the validation errors.
func TestRunFleetRejectsEmpty(t *testing.T) {
	env := NewEnv(1)
	if _, err := RunFleet(env, FleetRunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	f, err := workload.GenerateFleet(simclock.Stream(1, "wl"), workload.GenOptions{Kind: workload.KindStandard, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFleet(env, FleetRunConfig{Fleet: f}); err == nil {
		t.Fatal("nil strategy accepted")
	}
}
