package experiment

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/core"
	"spotverse/internal/serve"
	"spotverse/internal/simclock"
)

// This file is the serving harness: it deploys a SpotVerse manager on a
// simulated environment for the placement daemon (cmd/spotverse-serve),
// generates deterministic request traces, and records live traffic back
// into replayable traces.

// ServeSim is a deployed serving environment: the simulated cloud, a
// SpotVerse manager on it, a serve backend over the manager, and the
// chaos injector wired into both layers.
type ServeSim struct {
	Env      *Env
	Manager  *core.SpotVerse
	Backend  *serve.SimBackend
	Injector *chaos.Injector
}

// serveSchedule builds the serving chaos plan. The intensity presets
// target multi-day batch runs; a serving trace lasts seconds of
// simulated time, so this schedule layers serve-path error rates and
// short brownouts on top, scaled to trace timebase.
func serveSchedule(i chaos.Intensity, start time.Time) chaos.Schedule {
	sched := chaos.Preset(i, start)
	switch i {
	case chaos.Low:
		sched.ErrorRates[chaos.ServiceServe] = chaos.Rates{Transient: 0.02}
	case chaos.Medium:
		sched.ErrorRates[chaos.ServiceServe] = chaos.Rates{Transient: 0.05, Throttle: 0.02}
		sched.Brownouts = append(sched.Brownouts, chaos.Brownout{
			Services: []string{chaos.ServiceServe},
			Window:   chaos.Window{From: start.Add(4 * time.Second), To: start.Add(8 * time.Second)},
		})
	case chaos.Severe:
		sched.ErrorRates[chaos.ServiceServe] = chaos.Rates{Transient: 0.10, Throttle: 0.05}
		sched.Brownouts = append(sched.Brownouts,
			chaos.Brownout{
				Services: []string{chaos.ServiceServe},
				Window:   chaos.Window{From: start.Add(3 * time.Second), To: start.Add(9 * time.Second)},
			},
			chaos.Brownout{
				Services: []string{chaos.ServiceServe},
				Window:   chaos.Window{From: start.Add(15 * time.Second), To: start.Add(18 * time.Second)},
			},
		)
	}
	return sched
}

// NewServeSim deploys a serving environment at the given seed and chaos
// intensity. The injector covers both the manager's control plane (the
// usual service interceptors) and the serve backend itself (the
// ServiceServe fault hook), so brownouts hit the daemon the way a
// regional API outage would.
func NewServeSim(seed int64, intensity chaos.Intensity) (*ServeSim, error) {
	env := NewEnv(seed)
	start := env.Engine.Now()
	inj := chaos.NewInjector(env.Engine, seed, serveSchedule(intensity, start))
	ApplyChaos(env, inj)
	mgr, err := newSpotVerse(env, core.Config{
		InstanceType: catalog.M5XLarge,
		Threshold:    5,
		Seed:         seed,
		StaleAfter:   6 * time.Hour,
		StaleCutoff:  48 * time.Hour,
	})
	if err != nil {
		return nil, fmt.Errorf("serve sim: %w", err)
	}
	backend := serve.NewSimBackend(env.Engine, mgr)
	backend.SetFault(inj.ServiceFault(chaos.ServiceServe))
	return &ServeSim{Env: env, Manager: mgr, Backend: backend, Injector: inj}, nil
}

// Warm primes srv's degraded-mode cache, retrying through injected
// faults: a fresh deployment's first collection often brushes a
// transient error under the higher intensities, and each retry
// re-draws the per-service fault streams — deterministically, so the
// retry count for a given seed never varies.
func (s *ServeSim) Warm(srv *serve.Server, attempts int) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = srv.Warm(context.Background()); err == nil {
			return nil
		}
	}
	return fmt.Errorf("serve sim: warm failed after %d attempts: %w", attempts, err)
}

// Trace generation defaults.
const (
	// DefaultTraceQPS is the generated trace's mean arrival rate.
	DefaultTraceQPS = 100.0
	// traceShareAdvisor and traceShareMigrations split non-place
	// traffic; the rest (80%) is /v1/place.
	traceSharePlace   = 0.80
	traceShareAdvisor = 0.15
)

// GenerateServeTrace synthesizes a deterministic request trace: Poisson
// arrivals at qps, an 80/15/5 place/advisor/migrations endpoint mix,
// occasional multi-placement requests, and occasional region
// exclusions (a client that was just interrupted somewhere). Same
// (seed, n, qps) → byte-identical trace; the RNG is a dedicated
// simclock stream, so generating traces never perturbs any experiment.
func GenerateServeTrace(seed int64, n int, qps float64) []serve.TraceEntry {
	if qps <= 0 {
		qps = DefaultTraceQPS
	}
	rng := simclock.Stream(seed, "serve-trace")
	entries := make([]serve.TraceEntry, 0, n)
	at := 0.0
	for i := 0; i < n; i++ {
		if i > 0 {
			at += rng.Exp(1000.0 / qps)
		}
		e := serve.TraceEntry{AtMS: int64(at)}
		roll := rng.Float64()
		switch {
		case roll < traceSharePlace:
			e.Endpoint = serve.EndpointPlace
			e.WorkloadID = fmt.Sprintf("wl-%05d", i)
			if rng.Bool(0.10) {
				e.Count = 2 + rng.Intn(3)
			}
			if rng.Bool(0.05) {
				e.Exclude = []string{"us-east-1"}
			}
		case roll < traceSharePlace+traceShareAdvisor:
			e.Endpoint = serve.EndpointAdvisor
		default:
			e.Endpoint = serve.EndpointMigrations
		}
		entries = append(entries, e)
	}
	return entries
}

// ServeTraceRecorder implements serve.TraceSink over a buffered JSONL
// writer: every arrival the server's gate sees is stamped with its
// offset from recorder start and appended, producing a trace that
// ReadTrace accepts and Replay can re-drive. Safe for concurrent use —
// the HTTP edge records from many goroutines.
type ServeTraceRecorder struct {
	mu    sync.Mutex
	clk   serve.Clock
	start time.Time
	bw    *bufio.Writer
	last  int64
	n     int
	err   error
}

// NewServeTraceRecorder starts recording; offsets are measured with clk
// from this instant.
func NewServeTraceRecorder(w io.Writer, clk serve.Clock) *ServeTraceRecorder {
	return &ServeTraceRecorder{clk: clk, start: clk.Now(), bw: bufio.NewWriter(w)}
}

// Record implements serve.TraceSink.
func (r *ServeTraceRecorder) Record(e serve.TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	at := r.clk.Now().Sub(r.start).Milliseconds()
	// Clamp to monotone non-decreasing: replay refuses unsorted traces,
	// and two goroutines racing the gate can observe equal clock reads
	// in either record order.
	if at < r.last {
		at = r.last
	}
	r.last = at
	e.AtMS = at
	line, err := marshalTraceEntry(&e)
	if err == nil {
		_, err = r.bw.Write(line)
	}
	if err != nil {
		r.err = fmt.Errorf("trace record: %w", err)
		return
	}
	r.n++
}

// Flush drains the buffer; use it as a serve OnDrain hook so SIGTERM
// persists the tail of the trace.
func (r *ServeTraceRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.bw.Flush()
}

// Recorded reports how many entries were written.
func (r *ServeTraceRecorder) Recorded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// marshalTraceEntry renders one JSONL line via serve.WriteTrace, so the
// recorder and the batch writer cannot drift in format.
func marshalTraceEntry(e *serve.TraceEntry) ([]byte, error) {
	var buf traceLineBuffer
	if err := serve.WriteTrace(&buf, []serve.TraceEntry{*e}); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type traceLineBuffer struct{ b []byte }

func (t *traceLineBuffer) Write(p []byte) (int, error) {
	t.b = append(t.b, p...)
	return len(p), nil
}
