package experiment

import (
	"strings"
	"testing"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/workload"
)

func tracedRun(t *testing.T, seed int64, kind workload.Kind, n int) *Result {
	t.Helper()
	env := NewEnv(seed)
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{
		Workloads:    genWorkloads(t, seed, kind, n),
		Strategy:     strat,
		InstanceType: catalog.M5XLarge,
		Trace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineDisabledByDefault(t *testing.T) {
	env := NewEnv(30)
	strat, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{
		Workloads:    genWorkloads(t, 30, workload.KindStandard, 2),
		Strategy:     strat,
		InstanceType: catalog.M5XLarge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Fatal("timeline present without Trace")
	}
	// nil Timeline methods must be safe.
	var tl *Timeline
	if tl.Len() != 0 || tl.Events() != nil || tl.Validate() != nil || tl.String() != "" {
		t.Fatal("nil timeline misbehaves")
	}
}

func TestTimelineStructureValid(t *testing.T) {
	res := tracedRun(t, 31, workload.KindStandard, 10)
	if res.Timeline.Len() == 0 {
		t.Fatal("empty timeline")
	}
	if problems := res.Timeline.Validate(); len(problems) > 0 {
		t.Fatalf("timeline violations: %v", problems)
	}
	// Event counts reconcile with the result.
	counts := map[EventKind]int{}
	for _, e := range res.Timeline.Events() {
		counts[e.Kind]++
	}
	if counts[EventComplete] != res.Completed {
		t.Fatalf("completes %d != completed %d", counts[EventComplete], res.Completed)
	}
	if counts[EventInterrupt] != res.Interruptions {
		t.Fatalf("interrupts %d != interruptions %d", counts[EventInterrupt], res.Interruptions)
	}
	if counts[EventRelaunch] != res.Interruptions {
		t.Fatalf("relaunches %d != interruptions %d", counts[EventRelaunch], res.Interruptions)
	}
	if counts[EventLaunch] != res.Completed+res.Interruptions {
		t.Fatalf("launches %d != completes+interrupts %d", counts[EventLaunch], res.Completed+res.Interruptions)
	}
}

func TestTimelineCheckpointNotices(t *testing.T) {
	res := tracedRun(t, 32, workload.KindCheckpoint, 10)
	counts := map[EventKind]int{}
	for _, e := range res.Timeline.Events() {
		counts[e.Kind]++
	}
	if res.Interruptions > 0 && counts[EventNotice] == 0 {
		t.Fatal("checkpoint run recorded no notices despite interruptions")
	}
	if counts[EventNotice] < counts[EventInterrupt] {
		t.Fatalf("notices %d < interrupts %d; every reclaim warns first", counts[EventNotice], counts[EventInterrupt])
	}
}

func TestTimelineMonotoneAndRenderable(t *testing.T) {
	res := tracedRun(t, 33, workload.KindStandard, 5)
	events := res.Timeline.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatal("timeline not time-ordered")
		}
	}
	out := res.Timeline.String()
	if !strings.Contains(out, "launch") || !strings.Contains(out, "complete") {
		t.Fatalf("render = %.200q", out)
	}
	one := res.Timeline.ByWorkload(events[0].Workload)
	if len(one) == 0 || one[len(one)-1].Kind != EventComplete {
		t.Fatalf("per-workload view = %+v", one)
	}
}

func TestTimelineValidateCatchesViolations(t *testing.T) {
	tl := &Timeline{}
	tl.add(Event{Kind: EventComplete, Workload: "w"})
	tl.add(Event{Kind: EventLaunch, Workload: "w"})
	tl.add(Event{Kind: EventLaunch, Workload: "w"})
	problems := tl.Validate()
	if len(problems) < 2 {
		t.Fatalf("problems = %v", problems)
	}
}
