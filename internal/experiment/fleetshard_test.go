package experiment

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
	"spotverse/internal/workload"
)

// runShardedCell runs one sharded fleet cell: `size` standard workloads
// under the named sweep arm, split over `shards` engines.
func runShardedCell(t *testing.T, arm string, size, shards int) *FleetResult {
	t.Helper()
	var arms []fleetArm
	for _, a := range fleetArms() {
		if a.name == arm {
			arms = append(arms, a)
		}
	}
	if len(arms) != 1 {
		t.Fatalf("unknown arm %q", arm)
	}
	f, err := workload.GenerateFleet(simclock.Stream(FleetSeed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: size})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetSharded(FleetSeed, FleetShardedConfig{
		Fleet:           f,
		NewStrategy:     arms[0].build,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		Shards:          shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetShardedByteIdentical is the core invariant of the sharded
// engine: the merged result — every field, and the rendered sweep row —
// is byte-identical at any shard count, including shard counts that
// divide the fleet unevenly or exceed it.
func TestFleetShardedByteIdentical(t *testing.T) {
	const size = 200
	for _, arm := range []string{"single-region", "skypilot"} {
		ref := runShardedCell(t, arm, size, 1)
		var refBuf bytes.Buffer
		if err := RenderFleet(&refBuf, []FleetCell{{Arm: arm, Size: size, Res: ref}}); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 3, 4, 8} {
			got := runShardedCell(t, arm, size, shards)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: result at %d shards differs from 1 shard:\n  1: %+v\n  %d: %+v",
					arm, shards, ref, shards, got)
				continue
			}
			var buf bytes.Buffer
			if err := RenderFleet(&buf, []FleetCell{{Arm: arm, Size: size, Res: got}}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refBuf.Bytes(), buf.Bytes()) {
				t.Errorf("%s: rendered row at %d shards differs from 1 shard", arm, shards)
			}
		}
	}
}

// TestFleetShardedEdgeCases pins the shard-boundary shapes: fewer
// workloads than shards (empty trailing shards), a single workload, and
// a count that does not divide evenly.
func TestFleetShardedEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		size   int
		shards int
	}{
		{name: "fewer-workloads-than-shards", size: 5, shards: 8},
		{name: "single-workload", size: 1, shards: 4},
		{name: "non-divisible", size: 7, shards: 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref := runShardedCell(t, "single-region", c.size, 1)
			got := runShardedCell(t, "single-region", c.size, c.shards)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("size %d at %d shards differs from 1 shard:\n  1: %+v\n  %d: %+v",
					c.size, c.shards, ref, c.shards, got)
			}
			if got.Workloads != c.size || got.Completed != c.size {
				t.Fatalf("size %d: completed %d/%d", c.size, got.Completed, got.Workloads)
			}
		})
	}
}

// TestFleetShardedWorkerCountInvariant runs the same sharded cell under
// a sequential and a parallel worker pool; shard fan-out must not leak
// scheduling order into the merged result.
func TestFleetShardedWorkerCountInvariant(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq := runShardedCell(t, "skypilot", 120, 4)
	SetWorkers(4)
	par := runShardedCell(t, "skypilot", 120, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker count changed the merged result:\n  1 worker:  %+v\n  4 workers: %+v", seq, par)
	}
}

// TestFleetShardedRejectsCheckpoint pins the scope boundary: checkpoint
// fleets couple workloads through shared stores and stay on RunFleet.
func TestFleetShardedRejectsCheckpoint(t *testing.T) {
	f, err := workload.GenerateFleet(simclock.Stream(FleetSeed, "wl-ckpt"),
		workload.GenOptions{Kind: workload.KindCheckpoint, Count: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunFleetSharded(FleetSeed, FleetShardedConfig{
		Fleet:        f,
		NewStrategy:  fleetArms()[0].build,
		InstanceType: catalog.M5XLarge,
		Shards:       2,
	})
	if !errors.Is(err, ErrCheckpointSharded) {
		t.Fatalf("checkpoint fleet: err = %v, want ErrCheckpointSharded", err)
	}
}

// TestFleetShardedValidation covers the remaining argument checks.
func TestFleetShardedValidation(t *testing.T) {
	if _, err := RunFleetSharded(1, FleetShardedConfig{NewStrategy: fleetArms()[0].build}); !errors.Is(err, ErrNoWorkloads) {
		t.Fatalf("nil fleet: err = %v, want ErrNoWorkloads", err)
	}
	f, err := workload.GenerateFleet(simclock.Stream(1, "wl"),
		workload.GenOptions{Kind: workload.KindStandard, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFleetSharded(1, FleetShardedConfig{Fleet: f}); !errors.Is(err, ErrNoStrategy) {
		t.Fatalf("nil strategy: err = %v, want ErrNoStrategy", err)
	}
}
