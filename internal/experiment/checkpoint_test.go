package experiment

import (
	"strconv"
	"testing"
	"time"

	"spotverse/internal/cost"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/workload"
)

// TestCheckpointKeyScanOrder is the regression test for the key-padding
// bug: with %04d padding, shard counts past 9999 sorted lexicographically
// before smaller ones ("ckpt#w#10000" < "ckpt#w#9999"), so a Scan-based
// reader could take an older progress point for the newest. Keys must
// Scan back in numeric progress order for five-digit shard counts.
func TestCheckpointKeyScanOrder(t *testing.T) {
	w, err := workload.New(workload.Spec{
		ID:           "w",
		Kind:         workload.KindCheckpoint,
		Duration:     10 * time.Hour,
		Shards:       12000,
		DatasetBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := dynamo.New(cost.NewLedger())
	if err := store.CreateTable("ckpt"); err != nil {
		t.Fatal(err)
	}
	now := time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
	// Insert progress points out of order, straddling the 4-digit
	// boundary where the old padding broke.
	for _, done := range []int{10001, 7, 9999, 42, 10000, 11999, 123, 9998, 1} {
		if err := store.Put("ckpt", dynamoCheckpointItem(w, done, now)); err != nil {
			t.Fatal(err)
		}
	}
	items, err := store.Scan("ckpt", "ckpt#w#")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 9 {
		t.Fatalf("scan = %d items, want 9", len(items))
	}
	prev := -1
	for _, it := range items {
		done, err := strconv.Atoi(it.Attrs["shardsDone"])
		if err != nil {
			t.Fatalf("item %q: %v", it.Key, err)
		}
		if done <= prev {
			t.Fatalf("scan order regressed at %q: shardsDone %d after %d", it.Key, done, prev)
		}
		prev = done
	}
	if last := items[len(items)-1]; last.Attrs["shardsDone"] != "11999" {
		t.Fatalf("newest progress point is %q, want 11999", last.Attrs["shardsDone"])
	}
}
