package experiment

import (
	"fmt"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
	"spotverse/internal/workload"
)

// This file implements one reproduction function per table and figure in
// the paper's evaluation (see DESIGN.md's per-experiment index). Each
// function builds its own environments so runs are isolated, and returns
// structured results the report layer renders.

// Evaluation setup constants taken from the paper.
const (
	// EvalInstances is the per-experiment parallel workload count
	// (Section 5.2.1: 40 instances).
	EvalInstances = 40
	// MotivationInstances is the motivational experiment's count
	// (Section 2.2: 42 workloads).
	MotivationInstances = 42
	// BaselineRegionM5XLarge is the paper's single-region baseline for
	// m5.xlarge (Table 1).
	BaselineRegionM5XLarge = catalog.Region("ca-central-1")
)

// MotivationRegions is the motivational experiment's fixed region set.
var MotivationRegions = []catalog.Region{"ap-northeast-3", "ca-central-1", "eu-north-1"}

// newSpotVerse wires a core.SpotVerse onto an Env.
func newSpotVerse(env *Env, cfg core.Config) (*core.SpotVerse, error) {
	return core.New(cfg, core.Deps{
		Engine:     env.Engine,
		Market:     env.Market,
		Provider:   env.Provider,
		Dynamo:     env.Dynamo,
		Lambda:     env.Lambda,
		Bus:        env.Bus,
		CloudWatch: env.CloudWatch,
		StepFn:     env.StepFn,
	})
}

func genStandard(seed int64, n int) ([]*workload.State, error) {
	return workload.Generate(simclock.Stream(seed, "wl-standard"),
		workload.GenOptions{Kind: workload.KindStandard, Count: n})
}

func genCheckpoint(seed int64, n int) ([]*workload.State, error) {
	return workload.Generate(simclock.Stream(seed, "wl-checkpoint"),
		workload.GenOptions{
			Kind:  workload.KindCheckpoint,
			Count: n,
			// Resuming re-downloads the 1 GB dataset, restarts Galaxy and
			// reinstalls tools (Section 4), which dominates the paper's
			// resume path.
			ResumeOverhead: 15 * time.Minute,
		})
}

// ---------------------------------------------------------------------
// Figure 2: spot price diversity across instance types and regions/AZs.
// ---------------------------------------------------------------------

// Fig2Types are the four representative instance types of Figure 2.
var Fig2Types = []catalog.InstanceType{
	catalog.C52XLarge, catalog.M52XLarge, catalog.R52XLarge, catalog.P32XLarge,
}

// Fig2Series is one (type, AZ) price trace summary.
type Fig2Series struct {
	Type   catalog.InstanceType
	AZ     catalog.AZ
	Points []market.PricePoint
	Mean   float64
	Min    float64
	Max    float64
}

// Fig2 samples Days of spot price history for the four instance types
// across every offering AZ.
func Fig2(seed int64, days int) ([]Fig2Series, error) {
	if days <= 0 {
		days = 90
	}
	env := NewEnv(seed)
	from := env.Engine.Now()
	to := from.Add(time.Duration(days) * 24 * time.Hour)
	var out []Fig2Series
	for _, t := range Fig2Types {
		for _, r := range env.Catalog().OfferedRegions(t) {
			for _, az := range env.Catalog().Zones(r) {
				pts, err := env.Market.PriceHistory(t, az, from, to, 24*time.Hour)
				if err != nil {
					return nil, fmt.Errorf("fig2 %s/%s: %w", t, az, err)
				}
				s := Fig2Series{Type: t, AZ: az, Points: pts, Min: pts[0].USDPerHour, Max: pts[0].USDPerHour}
				var sum float64
				for _, p := range pts {
					sum += p.USDPerHour
					if p.USDPerHour < s.Min {
						s.Min = p.USDPerHour
					}
					if p.USDPerHour > s.Max {
						s.Max = p.USDPerHour
					}
				}
				s.Mean = sum / float64(len(pts))
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 3: motivational single- vs naive multi-region comparison.
// ---------------------------------------------------------------------

// Fig3Result compares the two deployments for one workload kind.
type Fig3Result struct {
	Kind          workload.Kind
	Single        *Result
	Multi         *Result
	CostSaving    float64 // 1 - multi/single
	TimeSaving    float64 // 1 - multi/single (makespan)
	InterruptDrop float64 // 1 - multi/single
}

// Fig3 runs the motivational experiment: 42 m5.xlarge workloads,
// single-region ca-central-1 vs naive multi-region over the fixed
// three-region set, for standard and checkpoint workloads. The two kinds
// run on the worker pool (each builds its own envs) and are collected in
// the original order.
func Fig3(seed int64) ([]Fig3Result, error) {
	kinds := []workload.Kind{workload.KindStandard, workload.KindCheckpoint}
	return Gather(len(kinds), func(i int) (Fig3Result, error) {
		kind := kinds[i]
		gen := func(s int64) ([]*workload.State, error) {
			if kind == workload.KindCheckpoint {
				return genCheckpoint(s, MotivationInstances)
			}
			return genStandard(s, MotivationInstances)
		}
		envS := NewEnv(seed)
		single, err := baselines.NewSingleRegion(envS.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
		if err != nil {
			return Fig3Result{}, err
		}
		wsS, err := gen(seed)
		if err != nil {
			return Fig3Result{}, err
		}
		resS, err := Run(envS, RunConfig{Workloads: wsS, Strategy: single, InstanceType: catalog.M5XLarge})
		if err != nil {
			return Fig3Result{}, fmt.Errorf("fig3 single %s: %w", kind, err)
		}
		envM := NewEnv(seed)
		multi, err := baselines.NewNaiveMultiRegion(envM.Catalog(), catalog.M5XLarge, MotivationRegions, seed)
		if err != nil {
			return Fig3Result{}, err
		}
		wsM, err := gen(seed)
		if err != nil {
			return Fig3Result{}, err
		}
		resM, err := Run(envM, RunConfig{Workloads: wsM, Strategy: multi, InstanceType: catalog.M5XLarge})
		if err != nil {
			return Fig3Result{}, fmt.Errorf("fig3 multi %s: %w", kind, err)
		}
		return Fig3Result{
			Kind:          kind,
			Single:        resS,
			Multi:         resM,
			CostSaving:    1 - resM.TotalCostUSD/resS.TotalCostUSD,
			TimeSaving:    1 - resM.MakespanHours/resS.MakespanHours,
			InterruptDrop: 1 - float64(resM.Interruptions)/float64(max(resS.Interruptions, 1)),
		}, nil
	})
}

// ---------------------------------------------------------------------
// Figure 4: Interruption Frequency and Spot Placement Score dynamics.
// ---------------------------------------------------------------------

// Fig4Heatmap is the per-region Interruption Frequency series for
// m5.2xlarge (Fig. 4a).
type Fig4Heatmap struct {
	Region catalog.Region
	// Daily frequencies over the horizon.
	Frequencies []float64
}

// Fig4Averages is the cross-region average Stability Score and SPS
// series per instance type (Figs. 4b, 4c).
type Fig4Averages struct {
	Type catalog.InstanceType
	// Day d's averages across offering regions.
	AvgStability []float64
	AvgSPS       []float64
}

// Fig4 samples days of advisor history: the m5.2xlarge IF heatmap plus
// six-month average score trajectories for c5/m5/p3 2xlarge.
func Fig4(seed int64, days int) ([]Fig4Heatmap, []Fig4Averages, error) {
	if days <= 0 {
		days = 180
	}
	env := NewEnv(seed)
	start := env.Engine.Now()

	var heat []Fig4Heatmap
	for _, r := range env.Catalog().OfferedRegions(catalog.M52XLarge) {
		h := Fig4Heatmap{Region: r, Frequencies: make([]float64, 0, days)}
		for d := 0; d < days; d++ {
			f, err := env.Market.InterruptionFrequency(catalog.M52XLarge, r, start.Add(time.Duration(d)*24*time.Hour))
			if err != nil {
				return nil, nil, err
			}
			h.Frequencies = append(h.Frequencies, f)
		}
		heat = append(heat, h)
	}

	types := []catalog.InstanceType{catalog.C52XLarge, catalog.M52XLarge, catalog.P32XLarge}
	var avgs []Fig4Averages
	for _, t := range types {
		a := Fig4Averages{Type: t}
		regions := env.Catalog().OfferedRegions(t)
		for d := 0; d < days; d++ {
			at := start.Add(time.Duration(d) * 24 * time.Hour)
			var stabSum float64
			var spsSum float64
			for _, r := range regions {
				st, err := env.Market.StabilityScore(t, r, at)
				if err != nil {
					return nil, nil, err
				}
				sps, err := env.Market.PlacementScoreLatent(t, r, at)
				if err != nil {
					return nil, nil, err
				}
				stabSum += float64(st)
				spsSum += sps
			}
			a.AvgStability = append(a.AvgStability, stabSum/float64(len(regions)))
			a.AvgSPS = append(a.AvgSPS, spsSum/float64(len(regions)))
		}
		avgs = append(avgs, a)
	}
	return heat, avgs, nil
}

// ---------------------------------------------------------------------
// Figure 7: main comparison, standard + checkpoint workloads.
// ---------------------------------------------------------------------

// Fig7Result holds the three-way comparison for one workload kind.
type Fig7Result struct {
	Kind      workload.Kind
	Single    *Result
	SpotVerse *Result
	// OnDemandCostUSD is the comparator cost of running the same
	// workloads on the cheapest on-demand instances.
	OnDemandCostUSD float64
}

// Fig7 runs the paper's headline experiment: 40 m5.xlarge workloads
// starting in ca-central-1, single-region vs SpotVerse (which migrates
// per Algorithm 1; initial spread disabled for fair comparison), for
// standard and checkpoint workloads, plus the on-demand cost comparator.
func Fig7(seed int64) ([]Fig7Result, error) {
	kinds := []workload.Kind{workload.KindStandard, workload.KindCheckpoint}
	return Gather(len(kinds), func(i int) (Fig7Result, error) {
		kind := kinds[i]
		gen := func(s int64) ([]*workload.State, error) {
			if kind == workload.KindCheckpoint {
				return genCheckpoint(s, EvalInstances)
			}
			return genStandard(s, EvalInstances)
		}
		envS := NewEnv(seed)
		single, err := baselines.NewSingleRegion(envS.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
		if err != nil {
			return Fig7Result{}, err
		}
		wsS, err := gen(seed)
		if err != nil {
			return Fig7Result{}, err
		}
		resS, err := Run(envS, RunConfig{Workloads: wsS, Strategy: single, InstanceType: catalog.M5XLarge})
		if err != nil {
			return Fig7Result{}, fmt.Errorf("fig7 single %s: %w", kind, err)
		}

		envV := NewEnv(seed)
		sv, err := newSpotVerse(envV, core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             seed,
		})
		if err != nil {
			return Fig7Result{}, err
		}
		wsV, err := gen(seed)
		if err != nil {
			return Fig7Result{}, err
		}
		resV, err := Run(envV, RunConfig{Workloads: wsV, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true})
		if err != nil {
			return Fig7Result{}, fmt.Errorf("fig7 spotverse %s: %w", kind, err)
		}

		odCost, err := onDemandComparatorCost(seed, gen)
		if err != nil {
			return Fig7Result{}, err
		}
		return Fig7Result{Kind: kind, Single: resS, SpotVerse: resV, OnDemandCostUSD: odCost}, nil
	})
}

// Fig7TrialSingle runs one single-region trial of the Fig. 7 standard
// setup for a seed (used by the repeated-trials protocol).
func Fig7TrialSingle(seed int64) (*Result, error) {
	env := NewEnv(seed)
	single, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, BaselineRegionM5XLarge)
	if err != nil {
		return nil, err
	}
	ws, err := genStandard(seed, EvalInstances)
	if err != nil {
		return nil, err
	}
	return Run(env, RunConfig{Workloads: ws, Strategy: single, InstanceType: catalog.M5XLarge})
}

// Fig7TrialSpotVerse runs one SpotVerse trial of the Fig. 7 standard
// setup for a seed.
func Fig7TrialSpotVerse(seed int64) (*Result, error) {
	env := NewEnv(seed)
	sv, err := newSpotVerse(env, core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: BaselineRegionM5XLarge,
		Seed:             seed,
	})
	if err != nil {
		return nil, err
	}
	ws, err := genStandard(seed, EvalInstances)
	if err != nil {
		return nil, err
	}
	return Run(env, RunConfig{Workloads: ws, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true})
}

// onDemandComparatorCost runs the same workload set on cheapest
// on-demand instances and reports total cost.
func onDemandComparatorCost(seed int64, gen func(int64) ([]*workload.State, error)) (float64, error) {
	env := NewEnv(seed)
	od, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
	if err != nil {
		return 0, err
	}
	ws, err := gen(seed)
	if err != nil {
		return 0, err
	}
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: od, InstanceType: catalog.M5XLarge})
	if err != nil {
		return 0, err
	}
	return res.TotalCostUSD, nil
}

// ---------------------------------------------------------------------
// Figure 8: instance types and sizes.
// ---------------------------------------------------------------------

// Fig8Row compares single-region vs SpotVerse for one instance type.
type Fig8Row struct {
	Type           catalog.InstanceType
	BaselineRegion catalog.Region
	Single         *Result
	SpotVerse      *Result
	// OnDemandCostUSD is the cheapest-on-demand comparator.
	OnDemandCostUSD float64
}

// Fig8TypeSet is the paper's similar-spec type comparison.
var Fig8TypeSet = []catalog.InstanceType{catalog.M52XLarge, catalog.C52XLarge, catalog.R52XLarge}

// Fig8SizeSet is the paper's m5 family size comparison.
var Fig8SizeSet = []catalog.InstanceType{catalog.M5Large, catalog.M5XLarge, catalog.M52XLarge}

// Fig8 runs the standard general workload over the given instance types,
// each starting in its Table 1 baseline region. Types fan out across the
// worker pool; rows come back in the input order.
func Fig8(seed int64, types []catalog.InstanceType) ([]Fig8Row, error) {
	return Gather(len(types), func(i int) (Fig8Row, error) {
		t := types[i]
		// Table 1: the baseline region is the cheapest spot region over
		// the opening weeks.
		probe := NewEnv(seed)
		baseRegion, _, err := probe.Market.CheapestSpotRegion(t, probe.Engine.Now(), probe.Engine.Now().Add(14*24*time.Hour))
		if err != nil {
			return Fig8Row{}, err
		}

		envS := NewEnv(seed)
		single, err := baselines.NewSingleRegion(envS.Catalog(), t, baseRegion)
		if err != nil {
			return Fig8Row{}, err
		}
		wsS, err := genStandard(seed, EvalInstances)
		if err != nil {
			return Fig8Row{}, err
		}
		resS, err := Run(envS, RunConfig{Workloads: wsS, Strategy: single, InstanceType: t})
		if err != nil {
			return Fig8Row{}, fmt.Errorf("fig8 single %s: %w", t, err)
		}

		envV := NewEnv(seed)
		sv, err := newSpotVerse(envV, core.Config{
			InstanceType:     t,
			Threshold:        5,
			FixedStartRegion: baseRegion,
			Seed:             seed,
		})
		if err != nil {
			return Fig8Row{}, err
		}
		wsV, err := genStandard(seed, EvalInstances)
		if err != nil {
			return Fig8Row{}, err
		}
		resV, err := Run(envV, RunConfig{Workloads: wsV, Strategy: sv, InstanceType: t, DisableSweep: true})
		if err != nil {
			return Fig8Row{}, fmt.Errorf("fig8 spotverse %s: %w", t, err)
		}

		envO := NewEnv(seed)
		od, err := baselines.NewOnDemand(envO.Catalog(), t)
		if err != nil {
			return Fig8Row{}, err
		}
		wsO, err := genStandard(seed, EvalInstances)
		if err != nil {
			return Fig8Row{}, err
		}
		resO, err := Run(envO, RunConfig{Workloads: wsO, Strategy: od, InstanceType: t})
		if err != nil {
			return Fig8Row{}, err
		}
		return Fig8Row{
			Type:            t,
			BaselineRegion:  baseRegion,
			Single:          resS,
			SpotVerse:       resV,
			OnDemandCostUSD: resO.TotalCostUSD,
		}, nil
	})
}

// ---------------------------------------------------------------------
// Figure 9: initial workload distribution strategy.
// ---------------------------------------------------------------------

// Fig9Result compares fixed-start vs spread-start SpotVerse for one
// workload kind.
type Fig9Result struct {
	Kind       workload.Kind
	FixedStart *Result
	Spread     *Result
}

// Fig9 measures what Algorithm 1's initial distribution buys: SpotVerse
// starting everything in ca-central-1 (the Fig. 7 configuration) versus
// SpotVerse spreading round-robin across the four top-scoring regions
// (threshold 6: us-west-1, ap-northeast-3, eu-west-1, eu-north-1).
func Fig9(seed int64) ([]Fig9Result, error) {
	kinds := []workload.Kind{workload.KindStandard, workload.KindCheckpoint}
	return Gather(len(kinds), func(i int) (Fig9Result, error) {
		kind := kinds[i]
		gen := func(s int64) ([]*workload.State, error) {
			if kind == workload.KindCheckpoint {
				return genCheckpoint(s, EvalInstances)
			}
			return genStandard(s, EvalInstances)
		}
		run := func(cfg core.Config) (*Result, error) {
			env := NewEnv(seed)
			sv, err := newSpotVerse(env, cfg)
			if err != nil {
				return nil, err
			}
			ws, err := gen(seed)
			if err != nil {
				return nil, err
			}
			return Run(env, RunConfig{Workloads: ws, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true})
		}
		fixed, err := run(core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             seed,
		})
		if err != nil {
			return Fig9Result{}, fmt.Errorf("fig9 fixed %s: %w", kind, err)
		}
		spread, err := run(core.Config{
			InstanceType: catalog.M5XLarge,
			Threshold:    6,
			Seed:         seed,
		})
		if err != nil {
			return Fig9Result{}, fmt.Errorf("fig9 spread %s: %w", kind, err)
		}
		return Fig9Result{Kind: kind, FixedStart: fixed, Spread: spread}, nil
	})
}

// ---------------------------------------------------------------------
// Figure 10 + Tables 2/3: threshold-based allocation.
// ---------------------------------------------------------------------

// Fig10Cell is one (threshold, duration) observation.
type Fig10Cell struct {
	Threshold     int
	DurationHours int
	SpotVerse     *Result
	// OnDemandCostUSD is the cheapest-on-demand comparator for the same
	// duration and fleet size.
	OnDemandCostUSD float64
	// NormalizedCost is SpotVerse total / on-demand total (< 1 saves).
	NormalizedCost float64
}

// Fig10Thresholds and Fig10Durations mirror Table 2.
var (
	Fig10Thresholds = []int{4, 5, 6}
	Fig10Durations  = []int{5, 10, 20}
)

// Fig10 sweeps score thresholds and workload durations with the bucket
// selection the paper's Table 3 grouping implies, reporting cost
// normalized against cheapest on-demand. The (threshold, duration) cells
// are the sweep's heaviest independent units — threshold-4 cells simulate
// 90-day horizons — so they all fan out across the worker pool and come
// back in sweep order.
func Fig10(seed int64) ([]Fig10Cell, error) {
	type comb struct{ threshold, hours int }
	var combs []comb
	for _, threshold := range Fig10Thresholds {
		for _, hours := range Fig10Durations {
			combs = append(combs, comb{threshold, hours})
		}
	}
	return Gather(len(combs), func(i int) (Fig10Cell, error) {
		threshold, hours := combs[i].threshold, combs[i].hours
		gen := func(s int64) ([]*workload.State, error) {
			return workload.Generate(simclock.Stream(s, "wl-fig10"), workload.GenOptions{
				Kind:        workload.KindStandard,
				Count:       EvalInstances,
				MinDuration: time.Duration(hours) * time.Hour,
				MaxDuration: time.Duration(hours) * time.Hour,
			})
		}
		env := NewEnv(seed)
		sv, err := newSpotVerse(env, core.Config{
			InstanceType: catalog.M5XLarge,
			Threshold:    threshold,
			Selection:    core.SelectBucket,
			Seed:         seed,
		})
		if err != nil {
			return Fig10Cell{}, err
		}
		ws, err := gen(seed)
		if err != nil {
			return Fig10Cell{}, err
		}
		res, err := Run(env, RunConfig{
			Workloads:    ws,
			Strategy:     sv,
			InstanceType: catalog.M5XLarge,
			DisableSweep: true,
			// Threshold-4 cells restart long workloads in unstable
			// regions many times over; give the geometric tail room.
			Horizon:   90 * 24 * time.Hour,
			ProfLabel: fmt.Sprintf("spotverse T=%d D=%dh", threshold, hours),
		})
		if err != nil {
			return Fig10Cell{}, fmt.Errorf("fig10 T=%d D=%dh: %w", threshold, hours, err)
		}

		envO := NewEnv(seed)
		od, err := baselines.NewOnDemand(envO.Catalog(), catalog.M5XLarge)
		if err != nil {
			return Fig10Cell{}, err
		}
		wsO, err := gen(seed)
		if err != nil {
			return Fig10Cell{}, err
		}
		resO, err := Run(envO, RunConfig{Workloads: wsO, Strategy: od, InstanceType: catalog.M5XLarge})
		if err != nil {
			return Fig10Cell{}, err
		}
		return Fig10Cell{
			Threshold:       threshold,
			DurationHours:   hours,
			SpotVerse:       res,
			OnDemandCostUSD: resO.TotalCostUSD,
			NormalizedCost:  res.TotalCostUSD / resO.TotalCostUSD,
		}, nil
	})
}

// Table3Selection reports the regions the optimizer selects per
// threshold under bucket selection (Table 3).
func Table3Selection(seed int64) (map[int][]catalog.Region, error) {
	out := make(map[int][]catalog.Region, len(Fig10Thresholds))
	for _, threshold := range Fig10Thresholds {
		env := NewEnv(seed)
		sv, err := newSpotVerse(env, core.Config{
			InstanceType: catalog.M5XLarge,
			Threshold:    threshold,
			Selection:    core.SelectBucket,
			Seed:         seed,
		})
		if err != nil {
			return nil, err
		}
		top, err := sv.Optimizer().TopRegions(nil)
		if err != nil {
			return nil, err
		}
		out[threshold] = top
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Table 1: baseline (cheapest spot) regions per type.
// ---------------------------------------------------------------------

// Table1Row is one baseline-region entry.
type Table1Row struct {
	Type   catalog.InstanceType
	Region catalog.Region
	// AvgSpotUSD is the time-averaged regional spot price.
	AvgSpotUSD float64
}

// Table1Types are the instance types the paper's Table 1 lists.
var Table1Types = []catalog.InstanceType{
	catalog.M5Large, catalog.M5XLarge, catalog.M52XLarge, catalog.R52XLarge, catalog.C52XLarge,
}

// Table1 computes the cheapest spot region per type over the opening two
// weeks.
func Table1(seed int64) ([]Table1Row, error) {
	env := NewEnv(seed)
	from := env.Engine.Now()
	to := from.Add(14 * 24 * time.Hour)
	out := make([]Table1Row, 0, len(Table1Types))
	for _, t := range Table1Types {
		r, price, err := env.Market.CheapestSpotRegion(t, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{Type: t, Region: r, AvgSpotUSD: price})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Table 4: SpotVerse vs SkyPilot.
// ---------------------------------------------------------------------

// Table4Result is the head-to-head comparison.
type Table4Result struct {
	SpotVerse *Result
	SkyPilot  *Result
}

// Table4 runs 40 standard general workloads under SpotVerse (spread
// start, threshold 6) and under the SkyPilot-style cheapest-price broker.
// The two contenders run concurrently on separate environments.
func Table4(seed int64) (*Table4Result, error) {
	contenders := []func() (*Result, error){
		func() (*Result, error) {
			envV := NewEnv(seed)
			sv, err := newSpotVerse(envV, core.Config{
				InstanceType: catalog.M5XLarge,
				Threshold:    6,
				Seed:         seed,
			})
			if err != nil {
				return nil, err
			}
			wsV, err := genStandard(seed, EvalInstances)
			if err != nil {
				return nil, err
			}
			res, err := Run(envV, RunConfig{Workloads: wsV, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true})
			if err != nil {
				return nil, fmt.Errorf("table4 spotverse: %w", err)
			}
			return res, nil
		},
		func() (*Result, error) {
			envP := NewEnv(seed)
			sky, err := baselines.NewSkyPilotLike(envP.Engine, envP.Market, catalog.M5XLarge)
			if err != nil {
				return nil, err
			}
			wsP, err := genStandard(seed, EvalInstances)
			if err != nil {
				return nil, err
			}
			res, err := Run(envP, RunConfig{Workloads: wsP, Strategy: sky, InstanceType: catalog.M5XLarge})
			if err != nil {
				return nil, fmt.Errorf("table4 skypilot: %w", err)
			}
			return res, nil
		},
	}
	results, err := Gather(len(contenders), func(i int) (*Result, error) { return contenders[i]() })
	if err != nil {
		return nil, err
	}
	return &Table4Result{SpotVerse: results[0], SkyPilot: results[1]}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
