// Package experiment provides the evaluation harness: it assembles a
// simulated cloud environment, drives a set of workloads under a
// placement strategy, and collects the paper's metrics — interruption
// counts and their regional distribution, completion-time series,
// makespan, and the full differential cost model (instances + Lambda +
// DynamoDB + S3 storage/transfer + EventBridge + Step Functions +
// CloudWatch).
package experiment

import (
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/cost"
	"spotverse/internal/market"
	"spotverse/internal/services/cloudwatch"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/services/efs"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/services/s3"
	"spotverse/internal/services/stepfn"
	"spotverse/internal/simclock"
)

// Env is one fully-wired simulated cloud.
type Env struct {
	Seed       int64
	Engine     *simclock.Engine
	Market     *market.Model
	Provider   *cloud.Provider
	Ledger     *cost.Ledger
	S3         *s3.Store
	EFS        *efs.Service
	Dynamo     *dynamo.Store
	Lambda     *lambda.Runtime
	Bus        *eventbridge.Bus
	CloudWatch *cloudwatch.Service
	StepFn     *stepfn.Machine
}

// NewEnv assembles an environment over the default catalog, started at
// the simulation epoch.
func NewEnv(seed int64) *Env {
	return NewEnvAt(seed, simclock.Epoch)
}

// NewEnvAt assembles an environment whose clock and market start at the
// given instant. The market is a view over the shared per-(seed, start)
// snapshot when the market cache is enabled (see SetMarketCache); the
// values it serves are byte-identical either way.
func NewEnvAt(seed int64, start time.Time) *Env {
	eng := simclock.NewEngineAt(start)
	mkt := acquireMarket(seed, start)
	cat := mkt.Catalog()
	ledger := cost.NewLedger()
	return &Env{
		Seed:       seed,
		Engine:     eng,
		Market:     mkt,
		Provider:   cloud.New(eng, mkt, seed),
		Ledger:     ledger,
		S3:         s3.New(eng, cat, ledger),
		EFS:        efs.New(cat, ledger),
		Dynamo:     dynamo.New(ledger),
		Lambda:     lambda.New(eng, ledger),
		Bus:        eventbridge.New(ledger),
		CloudWatch: cloudwatch.New(eng, ledger),
		StepFn:     stepfn.MustNew(eng, ledger, stepfn.Config{MaxAttempts: 5, BaseBackoff: 30 * time.Second}),
	}
}

// Catalog is a convenience accessor.
func (e *Env) Catalog() *catalog.Catalog { return e.Market.Catalog() }
