package experiment

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
	"spotverse/internal/workload"
)

func genWorkloads(t *testing.T, seed int64, kind workload.Kind, n int) []*workload.State {
	t.Helper()
	ws, err := workload.Generate(simclock.Stream(seed, "exp-test"), workload.GenOptions{Kind: kind, Count: n})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func spotVerseFor(t *testing.T, env *Env, cfg core.Config) *core.SpotVerse {
	t.Helper()
	sv, err := core.New(cfg, core.Deps{
		Engine:     env.Engine,
		Market:     env.Market,
		Provider:   env.Provider,
		Dynamo:     env.Dynamo,
		Lambda:     env.Lambda,
		Bus:        env.Bus,
		CloudWatch: env.CloudWatch,
		StepFn:     env.StepFn,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func TestOnDemandRunNoInterruptions(t *testing.T) {
	env := NewEnv(1)
	strat, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	ws := genWorkloads(t, 1, workload.KindStandard, 10)
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 || res.Interruptions != 0 {
		t.Fatalf("completed=%d interruptions=%d", res.Completed, res.Interruptions)
	}
	// On-demand workloads finish in exactly their duration: makespan
	// within the 10-11h window.
	if res.MakespanHours < 10 || res.MakespanHours > 11.1 {
		t.Fatalf("makespan = %vh", res.MakespanHours)
	}
	if res.OnDemandLaunches != 10 {
		t.Fatalf("on-demand launches = %d", res.OnDemandLaunches)
	}
	// Cost sanity: 10 workloads x ~10.5h x od price.
	od, _ := env.Catalog().OnDemandPrice(catalog.M5XLarge, strat.Region())
	lo, hi := od*10*10, od*11*10
	if res.InstanceCostUSD < lo || res.InstanceCostUSD > hi {
		t.Fatalf("instance cost %v outside [%v, %v]", res.InstanceCostUSD, lo, hi)
	}
}

func TestSingleRegionRunSuffersInterruptions(t *testing.T) {
	env := NewEnv(2)
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	ws := genWorkloads(t, 2, workload.KindStandard, 20)
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Interruptions == 0 {
		t.Fatal("ca-central-1 run saw zero interruptions; hazard calibration broken")
	}
	// All interruptions must be in the single region.
	if len(res.InterruptionsByRegion) != 1 || res.InterruptionsByRegion["ca-central-1"] != res.Interruptions {
		t.Fatalf("regional distribution = %v", res.InterruptionsByRegion)
	}
	if res.MakespanHours <= 11 {
		t.Fatalf("makespan %vh implausibly short with %d interruptions", res.MakespanHours, res.Interruptions)
	}
	if len(res.InterruptionStamps) != res.Interruptions {
		t.Fatal("interruption stamp series inconsistent")
	}
}

func TestSpotVerseRunBeatsSingleRegion(t *testing.T) {
	const n = 20
	// Single-region baseline.
	envA := NewEnv(3)
	single, err := baselines.NewSingleRegion(envA.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Run(envA, RunConfig{Workloads: genWorkloads(t, 3, workload.KindStandard, n), Strategy: single, InstanceType: catalog.M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	// SpotVerse starting in the same region (Fig. 7 setup).
	envB := NewEnv(3)
	sv := spotVerseFor(t, envB, core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: "ca-central-1",
		Seed:             3,
	})
	resB, err := Run(envB, RunConfig{
		Workloads:    genWorkloads(t, 3, workload.KindStandard, n),
		Strategy:     sv,
		InstanceType: catalog.M5XLarge,
		DisableSweep: true, // SpotVerse's Controller sweeps already
	})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Completed != n {
		t.Fatalf("spotverse completed %d/%d", resB.Completed, n)
	}
	if resB.Interruptions >= resA.Interruptions {
		t.Fatalf("spotverse interruptions %d >= single-region %d", resB.Interruptions, resA.Interruptions)
	}
	if resB.MakespanHours >= resA.MakespanHours {
		t.Fatalf("spotverse makespan %v >= single-region %v", resB.MakespanHours, resA.MakespanHours)
	}
	// SpotVerse must have migrated out of ca-central-1.
	if len(resB.InterruptionsByRegion) < 1 || len(resB.LaunchesByRegion) < 2 {
		t.Fatalf("spotverse never migrated: launches=%v", resB.LaunchesByRegion)
	}
	// SpotVerse pays control-plane costs the baseline does not.
	if resB.ServiceCostUSD <= resA.ServiceCostUSD {
		t.Fatalf("spotverse services $%v <= baseline $%v", resB.ServiceCostUSD, resA.ServiceCostUSD)
	}
}

func TestCheckpointWorkloadsResume(t *testing.T) {
	env := NewEnv(4)
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	ws := genWorkloads(t, 4, workload.KindCheckpoint, 15)
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 15 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.Interruptions == 0 {
		t.Skip("no interruptions for this seed; resume path unexercised")
	}
	// Checkpoint uploads must have hit S3 and DynamoDB.
	if env.Ledger.Of(cost.CategoryS3Storage) <= 0 {
		t.Fatal("no checkpoint S3 storage billed")
	}
	items, err := env.Dynamo.Scan(CheckpointTable, "ckpt#")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no checkpoints recorded in DynamoDB")
	}
	// Resumable workloads finish much faster than restart-from-zero under
	// the same hazard: each attempt only replays one shard.
	bankTotal := 0
	for _, w := range ws {
		bankTotal += w.ShardsDone
		if !w.Completed {
			t.Fatalf("workload %s not completed", w.Spec.ID)
		}
	}
	if bankTotal != 15*20 {
		t.Fatalf("banked shards = %d, want all", bankTotal)
	}
}

func TestCheckpointBeatsStandardUnderSameHazard(t *testing.T) {
	const n = 15
	run := func(kind workload.Kind, seed int64) *Result {
		env := NewEnv(seed)
		strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(env, RunConfig{Workloads: genWorkloads(t, seed, kind, n), Strategy: strat, InstanceType: catalog.M5XLarge})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	std := run(workload.KindStandard, 5)
	ck := run(workload.KindCheckpoint, 5)
	if ck.MakespanHours >= std.MakespanHours {
		t.Fatalf("checkpoint makespan %v >= standard %v", ck.MakespanHours, std.MakespanHours)
	}
	if ck.InstanceCostUSD >= std.InstanceCostUSD {
		t.Fatalf("checkpoint cost %v >= standard %v", ck.InstanceCostUSD, std.InstanceCostUSD)
	}
}

func TestRunValidation(t *testing.T) {
	env := NewEnv(6)
	if _, err := Run(env, RunConfig{}); !errors.Is(err, ErrNoWorkloads) {
		t.Fatalf("err = %v", err)
	}
	ws := genWorkloads(t, 6, workload.KindStandard, 1)
	if _, err := Run(env, RunConfig{Workloads: ws}); !errors.Is(err, ErrNoStrategy) {
		t.Fatalf("err = %v", err)
	}
}

func TestHorizonEnforced(t *testing.T) {
	env := NewEnv(7)
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	ws := genWorkloads(t, 7, workload.KindStandard, 10)
	_, err = Run(env, RunConfig{
		Workloads:    ws,
		Strategy:     strat,
		InstanceType: catalog.M5XLarge,
		Horizon:      2 * time.Hour, // impossible: workloads need 10h
	})
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	// AllowIncomplete tolerates it.
	env2 := NewEnv(7)
	strat2, _ := baselines.NewSingleRegion(env2.Catalog(), catalog.M5XLarge, "ca-central-1")
	res, err := Run(env2, RunConfig{
		Workloads:       genWorkloads(t, 7, workload.KindStandard, 10),
		Strategy:        strat2,
		InstanceType:    catalog.M5XLarge,
		Horizon:         2 * time.Hour,
		AllowIncomplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("completed = %d in 2h", res.Completed)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		env := NewEnv(8)
		strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(env, RunConfig{Workloads: genWorkloads(t, 8, workload.KindStandard, 10), Strategy: strat, InstanceType: catalog.M5XLarge})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Interruptions != b.Interruptions || a.MakespanHours != b.MakespanHours || a.TotalCostUSD != b.TotalCostUSD {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBreakdownIncludesInstances(t *testing.T) {
	env := NewEnv(9)
	strat, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{Workloads: genWorkloads(t, 9, workload.KindStandard, 3), Strategy: strat, InstanceType: catalog.M5XLarge})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var breakdownTotal float64
	for _, item := range res.Breakdown {
		breakdownTotal += item.USD
		if item.Category == cost.CategoryInstances && item.USD > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no instances line item: %+v", res.Breakdown)
	}
	if diff := breakdownTotal - res.TotalCostUSD; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("breakdown sum %v != total %v", breakdownTotal, res.TotalCostUSD)
	}
}
