package experiment

import (
	"fmt"
	"io"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/core"
	"spotverse/internal/report"
	"spotverse/internal/services/stepfn"
)

// ---------------------------------------------------------------------
// Crash: controller kills and checkpoint-store damage, journaled
// SpotVerse vs the no-journal / unverified-store ablation.
// ---------------------------------------------------------------------

// CrashWorkloads is the checkpoint-workload count per crash cell.
const CrashWorkloads = 20

// crashRecoveryAfter is how long a dropped-notice migration parks in
// the Controller's pending registry before the recovery sweep retries
// it. The crash sweep stretches it so pending state is reliably alive
// when a controller kill lands — the window the journal must cover.
const crashRecoveryAfter = 2 * time.Hour

// Crash cell labels.
const (
	// StrategyJournaled is the full durability stack: DynamoDB
	// write-ahead journal on the Controller, verified checkpoint
	// manifests replicated to a standby bucket, anti-entropy sweep.
	StrategyJournaled = "spotverse-journal"
	// StrategyNoJournal is the ablation: controller state lives only in
	// memory, manifests are single-bucket and read without verification.
	StrategyNoJournal = "spotverse-nojournal"
)

// CrashStrategies is the default crash sweep, in render order.
var CrashStrategies = []string{StrategyJournaled, StrategyNoJournal}

// CrashRow is one cell of the crash sweep.
type CrashRow struct {
	Strategy  string
	Workloads int
	Completed int
	// CompletionRate is Completed/Workloads.
	CompletionRate float64
	Interruptions  int
	TotalCostUSD   float64

	// Restarts counts controller kills survived; Replayed the journal
	// entries rebuilt into the new incarnation; DroppedPendings the
	// pending migrations a kill destroyed with nothing to replay.
	Restarts        int
	Replayed        int
	DroppedPendings int
	// RecoveryMinutes is total sim time replayed migrations took to
	// re-resolve after restarts.
	RecoveryMinutes float64

	// LostShards counts durably-claimed shards unrecoverable at resume;
	// DuplicateRelaunches exactly-once violations; RefusedRelaunches
	// relaunches the journal's conditional commit blocked; Recomputed
	// shards rolled back and recomputed.
	LostShards          int
	DuplicateRelaunches int
	RefusedRelaunches   int
	Recomputed          int

	// CorruptReads counts bit-flipped S3 Gets served; Detected the
	// integrity-check catches; Undetected blind reads that consumed
	// corrupt data; Failovers and Repairs the replica machinery at work.
	CorruptReads int
	Detected     int
	Undetected   int
	Failovers    int
	Repairs      int
}

// crashSchedule is the crash sweep's fault plan. Every interruption
// notice is dropped at the bus, so each migration parks in the
// Controller's pending registry until the notice-loss recovery sweep
// retries it (crashRecoveryAfter) — which is exactly the in-memory
// state a controller kill destroys. Manifest reads are bit-flipped
// through the busy morning window; the standby bucket is wiped mid-run
// and the primary late, never both at once — each loss alone must be
// survivable.
func crashSchedule(start time.Time, intensity chaos.Intensity) chaos.Schedule {
	return chaos.Schedule{
		Intensity:       intensity,
		DropRate:        1.0,
		DropDetailTypes: []string{core.DetailTypeInterruption},
		ControllerKills: []chaos.ControllerKill{
			{At: start.Add(3 * time.Hour)},
			{At: start.Add(6 * time.Hour)},
			{At: start.Add(9 * time.Hour)},
		},
		ObjectCorruptions: []chaos.ObjectCorruption{{
			Bucket:    checkpointBucket,
			KeyPrefix: manifestPrefix,
			Rate:      0.35,
			Window:    chaos.Window{From: start.Add(2 * time.Hour), To: start.Add(14 * time.Hour)},
		}},
		BucketLosses: []chaos.BucketLoss{
			{Bucket: CheckpointReplicaBucket, At: start.Add(16 * time.Hour)},
			{Bucket: checkpointBucket, At: start.Add(24 * time.Hour)},
		},
	}
}

// crashCell runs one strategy through the crash schedule.
func crashCell(name string, seed int64, intensity chaos.Intensity, n int) (*CrashRow, error) {
	env := NewEnv(seed)
	start := env.Engine.Now()
	inj := chaos.NewInjector(env.Engine, seed, crashSchedule(start, intensity))

	cfg := core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: BaselineRegionM5XLarge,
		Seed:             seed,
		RecoveryAfter:    crashRecoveryAfter,
	}
	durability := DurabilitySingle
	if name == StrategyJournaled {
		cfg.Journal = true
		durability = DurabilityReplicated
	}
	env.StepFn = stepfn.MustNew(env.Engine, env.Ledger,
		stepfn.Config{MaxAttempts: 5, BaseBackoff: 30 * time.Second, BackoffRate: 2, Jitter: 0.4, Seed: seed})
	ApplyChaos(env, inj)
	sv, err := newSpotVerse(env, cfg)
	if err != nil {
		return nil, fmt.Errorf("crash %s: %w", name, err)
	}
	ScheduleControllerKills(env, inj, sv)

	ws, err := genCheckpoint(seed, n)
	if err != nil {
		return nil, err
	}
	res, err := Run(env, RunConfig{
		Workloads:       ws,
		Strategy:        sv,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		DisableSweep:    true,
		Durability:      durability,
	})
	if err != nil {
		return nil, fmt.Errorf("crash %s: %w", name, err)
	}

	recomputed := 0
	for _, w := range ws {
		recomputed += w.Recomputed
	}
	restarts, replayed, dropped, refused, _, recovery := sv.Controller().RecoveryStats()
	row := &CrashRow{
		Strategy:            name,
		Workloads:           res.Workloads,
		Completed:           res.Completed,
		CompletionRate:      float64(res.Completed) / float64(res.Workloads),
		Interruptions:       res.Interruptions,
		TotalCostUSD:        res.TotalCostUSD,
		Restarts:            restarts,
		Replayed:            replayed,
		DroppedPendings:     dropped,
		RecoveryMinutes:     recovery.Minutes(),
		LostShards:          res.LostShards,
		DuplicateRelaunches: res.DuplicateRelaunches,
		RefusedRelaunches:   refused,
		Recomputed:          recomputed,
		CorruptReads:        int(env.S3.CorruptedReads()),
		Detected:            res.Durability.CorruptDetected,
		Undetected:          res.UndetectedCorruption,
		Failovers:           res.Durability.Failovers,
		Repairs:             res.Durability.Repairs,
	}
	return row, nil
}

// Crash runs the crash sweep at the given background-fault intensity:
// the journaled stack and the no-journal ablation through the same
// kill/corruption/loss schedule. The two cells are independent runs and
// fan out across the worker pool.
func Crash(seed int64, intensity chaos.Intensity) ([]CrashRow, error) {
	cells, err := Gather(len(CrashStrategies), func(i int) (*CrashRow, error) {
		return crashCell(CrashStrategies[i], seed, intensity, CrashWorkloads)
	})
	if err != nil {
		return nil, err
	}
	out := make([]CrashRow, 0, len(cells))
	for _, row := range cells {
		out = append(out, *row)
	}
	return out, nil
}

// RenderCrash prints the crash sweep table.
func RenderCrash(w io.Writer, rows []CrashRow) error {
	t := report.NewTable("Crash-restart and checkpoint-damage recovery (3 controller kills, manifest corruption 2h-14h, replica loss 16h, primary loss 24h)",
		"strategy", "completed", "rate", "cost", "interrupts", "restarts", "replayed",
		"dropped", "recovery-min", "lost-shards", "dup-relaunch", "refused", "recomputed",
		"corrupt-reads", "detected", "undetected", "failovers", "repairs")
	for _, r := range rows {
		t.MustAddRow(
			r.Strategy,
			fmt.Sprintf("%d/%d", r.Completed, r.Workloads),
			report.Pct(r.CompletionRate),
			report.USD(r.TotalCostUSD),
			fmt.Sprintf("%d", r.Interruptions),
			fmt.Sprintf("%d", r.Restarts),
			fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d", r.DroppedPendings),
			report.F(r.RecoveryMinutes, 1),
			fmt.Sprintf("%d", r.LostShards),
			fmt.Sprintf("%d", r.DuplicateRelaunches),
			fmt.Sprintf("%d", r.RefusedRelaunches),
			fmt.Sprintf("%d", r.Recomputed),
			fmt.Sprintf("%d", r.CorruptReads),
			fmt.Sprintf("%d", r.Detected),
			fmt.Sprintf("%d", r.Undetected),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Repairs),
		)
	}
	return t.Render(w)
}
