package experiment

import (
	"math"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/core"
)

// TestChaosOffPassThrough pins the tentpole's identity guarantee: an
// environment with an Off-schedule injector installed behaves exactly
// like one with no injector at all.
func TestChaosOffPassThrough(t *testing.T) {
	runOnce := func(install bool) *Result {
		env := NewEnv(42)
		if install {
			ApplyChaos(env, chaos.NewInjector(env.Engine, 42, chaos.Preset(chaos.Off, env.Engine.Now())))
		}
		sv, err := newSpotVerse(env, core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             42,
		})
		if err != nil {
			t.Fatal(err)
		}
		ws, err := genCheckpoint(42, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(env, RunConfig{Workloads: ws, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, injected := runOnce(false), runOnce(true)
	if plain.Completed != injected.Completed ||
		plain.Interruptions != injected.Interruptions ||
		math.Abs(plain.TotalCostUSD-injected.TotalCostUSD) > 1e-9 ||
		plain.MakespanHours != injected.MakespanHours {
		t.Fatalf("Off injector perturbed the run:\nplain    %+v\ninjected %+v", plain, injected)
	}
}

// TestLostNoticeRecovered is the lost-interruption-notice scenario: an
// EventBridge delivery carrying a spot interruption warning is dropped,
// and the hardened Controller's sweep must still migrate the workload
// within roughly one sweep interval of it becoming eligible.
func TestLostNoticeRecovered(t *testing.T) {
	env := NewEnv(42)
	var droppedAt time.Time
	dropped := 0
	env.Bus.SetDrop(func(rule, source, detailType string) bool {
		if dropped == 0 && detailType == core.DetailTypeInterruption {
			dropped++
			droppedAt = env.Engine.Now()
			return true
		}
		return false
	})
	sv, err := newSpotVerse(env, core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: BaselineRegionM5XLarge,
		Seed:             42,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := genCheckpoint(42, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatal("no interruption delivery was dropped; scenario did not trigger")
	}
	if res.Completed != res.Workloads {
		t.Fatalf("completed %d/%d despite recovery sweep", res.Completed, res.Workloads)
	}
	recoveries, _, _ := sv.Controller().ResilienceStats()
	if recoveries < 1 {
		t.Fatalf("recoveries = %d, want >= 1", recoveries)
	}

	// Locate the interrupted workload whose notice was dropped and its
	// next relaunch.
	var victim string
	for _, ev := range res.Timeline.Events() {
		if ev.Kind == EventInterrupt && ev.At.Equal(droppedAt) {
			victim = ev.Workload
			break
		}
	}
	if victim == "" {
		t.Fatalf("no interrupt event at drop time %v", droppedAt)
	}
	var relaunchAt time.Time
	for _, ev := range res.Timeline.Events() {
		if ev.Kind == EventRelaunch && ev.Workload == victim && !ev.At.Before(droppedAt) {
			relaunchAt = ev.At
			break
		}
	}
	if relaunchAt.IsZero() {
		t.Fatalf("workload %s never relaunched after its notice was dropped", victim)
	}
	// Eligibility takes RecoveryAfter; the sweep fires every
	// SweepInterval; allow one extra interval for phase alignment plus
	// the handler chain.
	limit := 2*core.SweepInterval + core.DefaultRecoveryAfter + time.Minute
	if gap := relaunchAt.Sub(droppedAt); gap > limit {
		t.Fatalf("recovery took %v, want <= %v", gap, limit)
	}
}

// TestRecoveryAblationStrandsWorkloads pins the sweep's consequence
// under the same single-drop scenario: with recovery disabled the
// dropped notice permanently strands the workload.
func TestRecoveryAblationStrandsWorkloads(t *testing.T) {
	env := NewEnv(42)
	dropped := 0
	env.Bus.SetDrop(func(rule, source, detailType string) bool {
		if dropped == 0 && detailType == core.DetailTypeInterruption {
			dropped++
			return true
		}
		return false
	})
	sv, err := newSpotVerse(env, core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: BaselineRegionM5XLarge,
		Seed:             42,
		DisableRecovery:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := genCheckpoint(42, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: sv, InstanceType: catalog.M5XLarge, DisableSweep: true, AllowIncomplete: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatal("scenario did not trigger")
	}
	if res.Completed != res.Workloads-1 {
		t.Fatalf("completed %d/%d, want exactly one stranded workload", res.Completed, res.Workloads)
	}
}

// TestSevereHardenedBeatsAblation is the headline acceptance criterion:
// under the severe schedule the hardened stack completes >= 95% of
// workloads while the no-retry ablation demonstrably loses some.
func TestSevereHardenedBeatsAblation(t *testing.T) {
	hardened, err := resilienceCell(StrategySpotVerse, 42, chaos.Severe, ResilienceWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := resilienceCell(StrategyNoRetry, 42, chaos.Severe, ResilienceWorkloads)
	if err != nil {
		t.Fatal(err)
	}
	if hardened.CompletionRate < 0.95 {
		t.Fatalf("hardened severe completion = %.0f%%, want >= 95%%", hardened.CompletionRate*100)
	}
	if ablated.Completed >= hardened.Completed {
		t.Fatalf("ablation completed %d, hardened %d — ablation shows no loss", ablated.Completed, hardened.Completed)
	}
	if hardened.Retries == 0 || hardened.Recoveries == 0 {
		t.Fatalf("hardened counters flat: retries=%d recoveries=%d", hardened.Retries, hardened.Recoveries)
	}
	if ablated.Exhausted == 0 {
		t.Fatal("ablation shows no exhausted executions under severe chaos")
	}
}

// TestResilienceMatrixInflation checks the matrix fills per-strategy
// inflation ratios against the intensity-0 cell.
func TestResilienceMatrixInflation(t *testing.T) {
	rows, err := ResilienceMatrix(42, []string{StrategySpotVerse}, []chaos.Intensity{chaos.Off, chaos.Severe}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].CostInflation != 1 || rows[0].MakespanInflation != 1 {
		t.Fatalf("baseline inflation = %+v", rows[0])
	}
	if rows[1].CostInflation <= 0 || rows[1].FaultsInjected == 0 {
		t.Fatalf("severe row = %+v", rows[1])
	}
}
