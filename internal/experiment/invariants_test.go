package experiment

import (
	"testing"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/core"
	"spotverse/internal/workload"
)

// TestRunInvariantsAcrossSeeds sweeps seeds and strategies and checks the
// structural invariants every run must satisfy, regardless of luck:
// conservation of workloads, non-negative costs, reconciling counters,
// and a valid timeline.
func TestRunInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		for _, kind := range []workload.Kind{workload.KindStandard, workload.KindCheckpoint} {
			env := NewEnv(seed)
			var (
				strat interface {
					Name() string
				}
				cfg RunConfig
			)
			switch seed % 3 {
			case 0:
				s, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Strategy = s
				strat = s
			case 1:
				s, err := baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Strategy = s
				strat = s
			default:
				mgr, err := newSpotVerse(env, core.Config{InstanceType: catalog.M5XLarge, Threshold: 5, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Strategy = mgr
				cfg.DisableSweep = true
				strat = mgr
			}
			ws := genWorkloads(t, seed, kind, 8)
			cfg.Workloads = ws
			cfg.InstanceType = catalog.M5XLarge
			cfg.Trace = true
			res, err := Run(env, cfg)
			if err != nil {
				t.Fatalf("seed %d %s %s: %v", seed, kind, strat.Name(), err)
			}
			checkInvariants(t, seed, kind, res, ws, env)
		}
	}
}

func checkInvariants(t *testing.T, seed int64, kind workload.Kind, res *Result, ws []*workload.State, env *Env) {
	t.Helper()
	label := func(msg string, args ...any) {
		t.Errorf("seed %d %s %s: "+msg, append([]any{seed, kind, res.StrategyName}, args...)...)
	}
	if res.Completed != len(ws) {
		label("completed %d != %d", res.Completed, len(ws))
	}
	for _, w := range ws {
		if !w.Completed {
			label("workload %s not completed", w.Spec.ID)
		}
		if w.Spec.Kind == workload.KindCheckpoint && w.ShardsDone != w.Spec.Shards {
			label("workload %s shards %d/%d", w.Spec.ID, w.ShardsDone, w.Spec.Shards)
		}
	}
	if len(res.CompletionStamps) != res.Completed {
		label("stamps %d != completed %d", len(res.CompletionStamps), res.Completed)
	}
	if len(res.InterruptionStamps) != res.Interruptions {
		label("interruption stamps %d != count %d", len(res.InterruptionStamps), res.Interruptions)
	}
	regionSum := 0
	for _, n := range res.InterruptionsByRegion {
		regionSum += n
	}
	if regionSum != res.Interruptions {
		label("regional interruption sum %d != %d", regionSum, res.Interruptions)
	}
	launchSum := 0
	for _, n := range res.LaunchesByRegion {
		launchSum += n
	}
	if launchSum != res.Completed+res.Interruptions {
		label("launches %d != completed+interruptions %d", launchSum, res.Completed+res.Interruptions)
	}
	if res.InstanceCostUSD <= 0 || res.TotalCostUSD < res.InstanceCostUSD {
		label("costs implausible: instance %v total %v", res.InstanceCostUSD, res.TotalCostUSD)
	}
	if res.MakespanHours < res.MeanCompletionHours {
		label("makespan %v < mean completion %v", res.MakespanHours, res.MeanCompletionHours)
	}
	if problems := res.Timeline.Validate(); len(problems) > 0 {
		label("timeline: %v", problems)
	}
	// No instance may be left running after the run.
	if n := len(env.Provider.RunningInstances()); n != 0 {
		label("%d instances leaked", n)
	}
	// Every terminated instance has consistent billing.
	for _, inst := range env.Provider.AllInstances() {
		if inst.CostUSD < 0 {
			label("instance %s negative cost", inst.ID)
		}
		if inst.TerminatedAt.Before(inst.LaunchedAt) {
			label("instance %s terminated before launch", inst.ID)
		}
	}
}
