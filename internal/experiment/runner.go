package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/cost"
	"spotverse/internal/durable"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// Defaults for RunConfig fields left zero.
const (
	DefaultHorizon         = 14 * 24 * time.Hour
	DefaultSweepInterval   = 15 * time.Minute
	CheckpointTable        = "spotverse-checkpoints"
	checkpointBucket       = "spotverse-checkpoints"
	checkpointBucketRegion = catalog.Region("us-east-1")
	// CheckpointReplicaBucket is the standby bucket durable checkpoint
	// manifests replicate into (DurabilityReplicated), homed on the same
	// continent so replication transfer stays cross-region, not
	// cross-continent.
	CheckpointReplicaBucket  = "spotverse-checkpoints-replica"
	checkpointReplicaRegion  = catalog.Region("us-west-2")
	manifestPrefix           = "manifest/"
	checkpointReplicationLag = time.Minute
)

// Errors returned by the runner.
var (
	ErrNoWorkloads = errors.New("experiment: no workloads")
	ErrNoStrategy  = errors.New("experiment: no strategy")
	ErrHorizon     = errors.New("experiment: horizon reached before all workloads completed")
)

// RunConfig parameterises one experiment run.
type RunConfig struct {
	// Workloads to execute (state is mutated by the run).
	Workloads []*workload.State
	// Strategy decides placement.
	Strategy strategy.Strategy
	// InstanceType used by every workload.
	InstanceType catalog.InstanceType
	// Horizon caps simulated time (default 14 days). Reaching it with
	// unfinished workloads is an error unless AllowIncomplete.
	Horizon time.Duration
	// AllowIncomplete tolerates unfinished workloads at the horizon.
	AllowIncomplete bool
	// DisableSweep turns off the harness's own 15-minute open-request
	// sweep; SpotVerse's Controller schedules its own, so runs driving a
	// core.SpotVerse strategy set this to avoid double sweeps.
	DisableSweep bool
	// CheckpointVia selects the checkpoint store (default S3; EFS is the
	// paper's future-work alternative).
	CheckpointVia CheckpointStore
	// Durability selects the checkpoint-manifest durability model
	// (default DurabilityOff, which leaves existing runs byte-identical).
	// Only meaningful with CheckpointS3.
	Durability DurabilityMode
	// Trace enables the structured event timeline on the Result.
	Trace bool
	// ProfLabel names this run's strategy arm in pprof profiles (the
	// "arm" label); empty defaults to the strategy name. Figures with
	// several configurations of one strategy (Fig. 10's threshold grid)
	// set it so -cpuprofile samples attribute per cell.
	ProfLabel string
}

// DurabilityMode selects how checkpoint progress manifests are stored.
type DurabilityMode int

// Durability modes.
const (
	// DurabilityOff writes no manifests — the pre-durability behaviour.
	DurabilityOff DurabilityMode = iota
	// DurabilitySingle writes CRC-checksummed manifests to the primary
	// bucket but reads them blind (no verification, no replica) — the
	// single-region unverified ablation.
	DurabilitySingle
	// DurabilityReplicated adds verification on read, failover to an
	// asynchronously replicated standby bucket, and a 15-minute
	// anti-entropy sweep.
	DurabilityReplicated
)

// CheckpointStore selects where checkpoint workloads persist state.
type CheckpointStore int

// Checkpoint stores.
const (
	// CheckpointS3 uploads shard slices to a central S3 bucket, paying
	// cross-region transfer from remote instances (the paper's setup).
	CheckpointS3 CheckpointStore = iota
	// CheckpointEFS writes to an EFS file system replicated on demand
	// into every region that touches it (Section 7's proposal).
	CheckpointEFS
)

// Result aggregates one run's metrics.
type Result struct {
	StrategyName string
	InstanceType catalog.InstanceType
	Workloads    int
	Completed    int

	// Interruptions is the total count of provider-initiated
	// terminations; InterruptionStamps is the cumulative series (Fig. 7a)
	// and InterruptionsByRegion the distribution (Fig. 7c).
	Interruptions         int
	InterruptionStamps    []time.Time
	InterruptionsByRegion map[catalog.Region]int

	// CompletionStamps is the per-workload completion instants sorted
	// ascending (Fig. 7b); MakespanHours the last of them relative to
	// start; MeanCompletionHours the mean.
	CompletionStamps    []time.Time
	MakespanHours       float64
	MeanCompletionHours float64

	// LaunchesByRegion counts instance launches per region.
	LaunchesByRegion map[catalog.Region]int
	// OnDemandLaunches counts launches that fell back to on-demand.
	OnDemandLaunches int

	// InstanceCostUSD is total instance spend; ServiceCostUSD the
	// control-plane spend; TotalCostUSD their sum. Breakdown carries the
	// per-category line items including instances.
	InstanceCostUSD float64
	ServiceCostUSD  float64
	TotalCostUSD    float64
	Breakdown       []cost.LineItem

	// Start is the simulated start time of the run.
	Start time.Time

	// LostShards counts durably-claimed shards that could not be
	// recovered at resume because the checkpoint manifest was corrupt or
	// missing in every reachable copy.
	LostShards int
	// DuplicateRelaunches counts instances launched for a workload that
	// already had a live instance — exactly-once violations on the
	// interruption-recovery path.
	DuplicateRelaunches int
	// UndetectedCorruption counts blind manifest reads that consumed
	// corrupt data without noticing (DurabilitySingle only; the verified
	// read path turns these into failovers instead).
	UndetectedCorruption int
	// Durability carries the durability layer's counters (zero value
	// unless a durable mode was on).
	Durability durable.Stats

	// Timeline is the structured event log (nil unless RunConfig.Trace).
	Timeline *Timeline
}

// Run executes the experiment on the environment. The environment must
// be fresh (one Run per Env): strategies register rules and schedules on
// it. The whole run executes under a pprof "arm" label (see
// RunConfig.ProfLabel) so CPU profiles attribute samples per strategy
// arm.
func Run(env *Env, cfg RunConfig) (*Result, error) {
	label := cfg.ProfLabel
	if label == "" && cfg.Strategy != nil {
		label = cfg.Strategy.Name()
	}
	var (
		res *Result
		err error
	)
	pprof.Do(context.Background(), pprof.Labels("arm", label), func(context.Context) {
		res, err = run(env, cfg)
	})
	return res, err
}

func run(env *Env, cfg RunConfig) (*Result, error) {
	if len(cfg.Workloads) == 0 {
		return nil, ErrNoWorkloads
	}
	if cfg.Strategy == nil {
		return nil, ErrNoStrategy
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	start := env.Engine.Now()
	res := &Result{
		StrategyName:          cfg.Strategy.Name(),
		InstanceType:          cfg.InstanceType,
		Workloads:             len(cfg.Workloads),
		InterruptionsByRegion: make(map[catalog.Region]int),
		LaunchesByRegion:      make(map[catalog.Region]int),
		Start:                 start,
	}

	byID := make(map[string]*workload.State, len(cfg.Workloads))
	ids := make([]string, 0, len(cfg.Workloads))
	hasCheckpoint := false
	for _, w := range cfg.Workloads {
		byID[w.Spec.ID] = w
		ids = append(ids, w.Spec.ID)
		if w.Spec.Kind == workload.KindCheckpoint {
			hasCheckpoint = true
		}
	}
	sort.Strings(ids)

	d := newDriver(env, cfg, byID, res)
	if cfg.Trace {
		res.Timeline = &Timeline{}
		d.timeline = res.Timeline
	}
	if hasCheckpoint {
		if err := d.setupCheckpointStores(); err != nil {
			return nil, err
		}
	}
	env.Provider.OnLaunch(d.onLaunch)
	env.Provider.OnInterruptionNotice(d.onNotice)
	env.Provider.OnTerminate(d.onTerminate)
	if target, ok := cfg.Strategy.(RelaunchResolverTarget); ok {
		target.SetRelaunchResolver(d.relaunchFor)
	}
	if d.durable != nil && cfg.Durability == DurabilityReplicated {
		// Anti-entropy rides the same 15-minute cadence as the
		// open-request sweep: re-replicate any manifest copy that has
		// diverged (corrupted, wiped, or version-lagged).
		if err := env.CloudWatch.Schedule("checkpoint-anti-entropy", DefaultSweepInterval, func(time.Time) {
			//spotverse:allow errdrop anti-entropy is best-effort: a failed sweep retries next interval and surfaces in durable.Stats repair counters
			_, _ = d.durable.SyncReplicas(manifestPrefix)
		}); err != nil {
			return nil, err
		}
	}

	if !cfg.DisableSweep {
		if err := env.CloudWatch.Schedule("harness-open-request-sweep", DefaultSweepInterval, func(time.Time) {
			env.Provider.EvaluateOpenRequests()
		}); err != nil {
			return nil, err
		}
	}

	placements, err := cfg.Strategy.PlaceInitial(ids)
	if err != nil {
		return nil, fmt.Errorf("experiment: initial placement: %w", err)
	}
	for _, id := range ids {
		p, ok := placements[id]
		if !ok {
			return nil, fmt.Errorf("experiment: strategy left %q unplaced", id)
		}
		if err := d.provision(id, p); err != nil {
			return nil, err
		}
	}

	horizon := start.Add(cfg.Horizon)
	done := func() bool { return d.completed == len(cfg.Workloads) }
	for !done() {
		if env.Engine.Pending() == 0 {
			break
		}
		if env.Engine.Now().After(horizon) {
			break
		}
		env.Engine.Step()
	}
	env.CloudWatch.StopAll()

	// Terminate any instances still running (completed runs already
	// terminated theirs; this covers AllowIncomplete horizons).
	for _, inst := range env.Provider.RunningInstances() {
		_ = env.Provider.Terminate(inst.ID)
	}

	if !done() && !cfg.AllowIncomplete {
		return nil, fmt.Errorf("%w: %d/%d done after %v (strategy %s)",
			ErrHorizon, d.completed, len(cfg.Workloads), cfg.Horizon, cfg.Strategy.Name())
	}

	res.Completed = d.completed
	sort.Slice(res.CompletionStamps, func(i, j int) bool { return res.CompletionStamps[i].Before(res.CompletionStamps[j]) })
	if n := len(res.CompletionStamps); n > 0 {
		res.MakespanHours = res.CompletionStamps[n-1].Sub(start).Hours()
		var sum float64
		for _, ts := range res.CompletionStamps {
			sum += ts.Sub(start).Hours()
		}
		res.MeanCompletionHours = sum / float64(n)
	}
	if d.durable != nil {
		res.Durability = d.durable.Stats()
	}
	res.InstanceCostUSD = env.Provider.TotalInstanceCost()
	res.ServiceCostUSD = env.Ledger.Total()
	res.TotalCostUSD = res.InstanceCostUSD + res.ServiceCostUSD
	full := cost.NewLedger()
	full.Merge(env.Ledger)
	full.MustAdd(cost.CategoryInstances, res.InstanceCostUSD)
	res.Breakdown = full.Breakdown()
	return res, nil
}

// driver maps instances to workloads and reacts to provider events.
type driver struct {
	env  *Env
	cfg  RunConfig
	byID map[string]*workload.State
	res  *Result

	runStart     map[cloud.InstanceID]time.Time
	completionEv map[string]*simclock.Event
	completed    int
	timeline     *Timeline
	// ckptFailed marks workloads whose latest two-minute-warning
	// checkpoint write did not become durable; their banked progress is
	// rolled back at termination.
	ckptFailed map[string]bool
	// durable is the manifest durability layer (nil when DurabilityOff).
	durable *durable.Store
	// manifestVer and lastManifest track, per workload, the next manifest
	// version to write and the shard count of the last manifest that was
	// acknowledged durable (the value progress is clamped to).
	manifestVer  map[string]int
	lastManifest map[string]int
	// activeInst maps workloads to their live instance, catching
	// duplicate relaunches (two instances serving one workload).
	activeInst map[string]cloud.InstanceID
}

func newDriver(env *Env, cfg RunConfig, byID map[string]*workload.State, res *Result) *driver {
	return &driver{
		env:          env,
		cfg:          cfg,
		byID:         byID,
		res:          res,
		runStart:     make(map[cloud.InstanceID]time.Time),
		completionEv: make(map[string]*simclock.Event),
		ckptFailed:   make(map[string]bool),
		manifestVer:  make(map[string]int),
		lastManifest: make(map[string]int),
		activeInst:   make(map[string]cloud.InstanceID),
	}
}

func (d *driver) setupCheckpointStores() error {
	if err := d.env.Dynamo.CreateTable(CheckpointTable); err != nil {
		return err
	}
	if d.cfg.CheckpointVia == CheckpointEFS {
		return d.env.EFS.Create(checkpointBucket, checkpointBucketRegion)
	}
	if err := d.env.S3.CreateBucket(checkpointBucket, checkpointBucketRegion); err != nil {
		return err
	}
	if d.cfg.Durability != DurabilityOff {
		ds, err := durable.New(d.env.Engine, d.env.S3, durable.Config{
			Primary:        checkpointBucket,
			PrimaryRegion:  checkpointBucketRegion,
			Replica:        CheckpointReplicaBucket,
			ReplicaRegion:  checkpointReplicaRegion,
			Replicate:      d.cfg.Durability == DurabilityReplicated,
			ReplicationLag: checkpointReplicationLag,
		})
		if err != nil {
			return err
		}
		d.durable = ds
	}
	return nil
}

// manifestKey is the durable manifest's S3 key for one workload.
func manifestKey(id string) string { return manifestPrefix + id }

// relaunchFor builds the relaunch closure handed to strategies for one
// workload — also the factory a journaled Controller uses to reattach
// closures to replayed migrations after a crash-restart.
func (d *driver) relaunchFor(id string) strategy.RelaunchFunc {
	w, ok := d.byID[id]
	if !ok {
		return nil
	}
	return func(p strategy.Placement) {
		if w.Completed {
			return
		}
		d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventRelaunch, Workload: id, Region: p.Region, Lifecycle: p.Lifecycle})
		_ = d.provision(id, p)
	}
}

// RelaunchResolverTarget is implemented by strategies that can rebuild
// relaunch closures after a crash-restart (core.SpotVerse with the
// journal on). The harness wires its relaunch factory in when present.
type RelaunchResolverTarget interface {
	SetRelaunchResolver(fn func(id string) strategy.RelaunchFunc)
}

// checkpointWrite persists a workload's shard slice from a region. A
// non-nil error means the slice is not durable.
func (d *driver) checkpointWrite(key string, size int64, from catalog.Region) error {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			if err := d.env.EFS.Replicate(checkpointBucket, from); err != nil {
				return err
			}
		}
		return d.env.EFS.WriteSized(checkpointBucket, key, size, from)
	}
	return d.env.S3.PutSized(checkpointBucket, key, size, from)
}

// checkpointRead re-fetches a workload's data on resume.
func (d *driver) checkpointRead(key string, from catalog.Region) {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Exists(checkpointBucket, key) {
			return
		}
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			_ = d.env.EFS.Replicate(checkpointBucket, from)
		}
		_, _ = d.env.EFS.ReadSized(checkpointBucket, key, from)
		return
	}
	if d.env.S3.Exists(checkpointBucket, key) {
		_, _ = d.env.S3.Get(checkpointBucket, key, from)
	}
}

// provision issues the spot request or on-demand launch for a workload.
func (d *driver) provision(id string, p strategy.Placement) error {
	switch p.Lifecycle {
	case cloud.LifecycleOnDemand:
		_, err := d.env.Provider.RunOnDemand(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s on-demand: %w", id, err)
		}
	default:
		_, err := d.env.Provider.RequestSpot(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s spot: %w", id, err)
		}
	}
	return nil
}

func (d *driver) onLaunch(inst *cloud.Instance) {
	w, ok := d.byID[inst.Tag]
	if !ok {
		return
	}
	if w.Completed {
		// A stale open request got fulfilled after completion.
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	if prev, live := d.activeInst[w.Spec.ID]; live {
		if pi, err := d.env.Provider.Instance(prev); err == nil && pi.State == cloud.StateRunning {
			// A second instance for a workload that already has a live
			// one: an exactly-once violation on the recovery path. Count
			// it and kill the duplicate.
			d.res.DuplicateRelaunches++
			_ = d.env.Provider.Terminate(inst.ID)
			return
		}
		delete(d.activeInst, w.Spec.ID)
	}
	if err := w.BeginAttempt(); err != nil {
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	d.activeInst[w.Spec.ID] = inst.ID
	d.res.LaunchesByRegion[inst.Region]++
	if inst.Lifecycle == cloud.LifecycleOnDemand {
		d.res.OnDemandLaunches++
	}
	d.runStart[inst.ID] = d.env.Engine.Now()
	d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventLaunch, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Resumed checkpoint attempts re-download their dataset slice from
	// the checkpoint bucket (cross-region transfer bills apply), and in
	// durable modes verify the progress manifest before trusting their
	// banked shards — unrecoverable shards are recomputed instead.
	if w.Spec.Kind == workload.KindCheckpoint && w.Attempts > 1 && w.ShardsDone > 0 {
		d.checkpointRead("ckpt/"+w.Spec.ID, inst.Region)
		d.verifyResume(w, inst.Region)
	}
	need := w.AttemptDuration()
	instID := inst.ID
	d.completionEv[w.Spec.ID] = d.env.Engine.ScheduleAfter(need, "workload-complete:"+w.Spec.ID, func() {
		d.complete(w, instID)
	})
}

// CompletionObserver is implemented by strategies that learn from
// successful runs (e.g. the predictive strategy's survival feedback).
type CompletionObserver interface {
	OnCompleted(id string)
}

func (d *driver) complete(w *workload.State, instID cloud.InstanceID) {
	inst, err := d.env.Provider.Instance(instID)
	if err != nil || inst.State != cloud.StateRunning {
		return
	}
	if err := w.MarkComplete(d.env.Engine.Now()); err != nil {
		return
	}
	d.completed++
	d.res.CompletionStamps = append(d.res.CompletionStamps, d.env.Engine.Now())
	delete(d.completionEv, w.Spec.ID)
	d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventComplete, Workload: w.Spec.ID, Instance: instID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	if obs, ok := d.cfg.Strategy.(CompletionObserver); ok {
		obs.OnCompleted(w.Spec.ID)
	}
	_ = d.env.Provider.Terminate(instID)
}

// onNotice handles the two-minute warning: checkpoint workloads persist
// their progress to DynamoDB and upload the in-flight shard slice to S3,
// exactly the paper's interruption path.
func (d *driver) onNotice(inst *cloud.Instance) {
	w, ok := d.byID[inst.Tag]
	if !ok || w.Completed || w.Spec.Kind != workload.KindCheckpoint {
		return
	}
	now := d.env.Engine.Now()
	d.timeline.add(Event{At: now, Kind: EventNotice, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Progress this checkpoint will claim once the instance dies: shards
	// banked so far plus whole shards the current attempt has finished.
	done := w.ShardsDone
	if startAt, tracked := d.runStart[inst.ID]; tracked {
		done += w.ShardsAt(now.Sub(startAt))
	}
	failed := false
	if err := d.checkpointWrite("ckpt/"+w.Spec.ID, w.CheckpointBytes(), inst.Region); err != nil {
		failed = true
	}
	// Idempotent write keyed (workload, shardsDone): a duplicate for the
	// same progress point finding the item already present is success.
	if err := d.env.Dynamo.PutIfAbsent(CheckpointTable, dynamoCheckpointItem(w, done, now)); err != nil &&
		!errors.Is(err, dynamo.ErrConditionFailed) {
		failed = true
	}
	if d.durable != nil {
		// Durable modes additionally write a checksummed progress
		// manifest; only an acknowledged manifest raises the progress
		// ceiling the termination path clamps to.
		ver := d.manifestVer[w.Spec.ID] + 1
		m := durable.Manifest{
			Workload:   w.Spec.ID,
			ShardsDone: done,
			Shards:     w.Spec.Shards,
			SizeBytes:  w.CheckpointBytes(),
			Version:    ver,
			Updated:    now,
		}
		if err := d.durable.Put(manifestKey(w.Spec.ID), m, inst.Region); err != nil {
			failed = true
		} else {
			d.manifestVer[w.Spec.ID] = ver
			if done > d.lastManifest[w.Spec.ID] {
				d.lastManifest[w.Spec.ID] = done
			}
		}
	}
	if failed {
		d.ckptFailed[w.Spec.ID] = true
	} else {
		delete(d.ckptFailed, w.Spec.ID)
	}
}

// verifyResume checks the durable manifest before a resumed attempt
// trusts its banked shards. The replicated mode reads verified with
// failover; shards the store cannot certify are dropped and counted
// lost. The single-bucket ablation reads blind: an unreadable manifest
// loses everything, and a corrupt-but-parsable one is consumed without
// notice.
func (d *driver) verifyResume(w *workload.State, from catalog.Region) {
	if d.durable == nil {
		return
	}
	key := manifestKey(w.Spec.ID)
	switch d.cfg.Durability {
	case DurabilityReplicated:
		m, err := d.durable.GetVerified(key, from)
		recoverable := 0
		if err == nil {
			recoverable = m.ShardsDone
		}
		if lost := w.ShardsDone - recoverable; lost > 0 {
			w.DropShards(lost)
			d.res.LostShards += lost
		}
	case DurabilitySingle:
		m, intact, err := d.durable.GetBlind(key, from)
		if err != nil {
			lost := w.ShardsDone
			w.DropShards(lost)
			d.res.LostShards += lost
			return
		}
		if !intact {
			d.res.UndetectedCorruption++
		}
		// The blind reader trusts whatever it parsed — including a
		// corrupt progress value — and resumes from there.
		if lost := w.ShardsDone - m.ShardsDone; lost > 0 {
			w.DropShards(lost)
			d.res.LostShards += lost
		}
	}
}

func (d *driver) onTerminate(inst *cloud.Instance, interrupted bool) {
	w, ok := d.byID[inst.Tag]
	if !ok {
		return
	}
	if d.activeInst[w.Spec.ID] == inst.ID {
		delete(d.activeInst, w.Spec.ID)
	}
	startAt, tracked := d.runStart[inst.ID]
	delete(d.runStart, inst.ID)
	if !interrupted || w.Completed || !tracked {
		return
	}
	// Record the interruption.
	now := d.env.Engine.Now()
	d.res.Interruptions++
	d.res.InterruptionStamps = append(d.res.InterruptionStamps, now)
	d.res.InterruptionsByRegion[inst.Region]++
	d.timeline.add(Event{At: now, Kind: EventInterrupt, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Bank progress and cancel the stale completion event. Progress whose
	// checkpoint write never became durable is rolled back: the next
	// attempt must recompute those shards.
	banked := w.CreditProgress(now.Sub(startAt))
	if d.durable != nil {
		// Durable modes trust only the last acknowledged manifest: a
		// shard finished inside the warning window, or banked past a
		// failed manifest write, is recomputed next attempt.
		if ceiling := d.lastManifest[w.Spec.ID]; w.ShardsDone > ceiling {
			w.DropShards(w.ShardsDone - ceiling)
		}
	} else if banked > 0 && d.ckptFailed[w.Spec.ID] {
		w.DropShards(banked)
	}
	delete(d.ckptFailed, w.Spec.ID)
	if ev, ok := d.completionEv[w.Spec.ID]; ok {
		ev.Cancel()
		delete(d.completionEv, w.Spec.ID)
	}
	// Ask the strategy where to go next.
	id := w.Spec.ID
	err := d.cfg.Strategy.OnInterrupted(id, inst.Region, d.relaunchFor(id))
	if err != nil {
		// A strategy that cannot place leaves the workload stranded; the
		// run will hit the horizon and report it.
		return
	}
}
