package experiment

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/cost"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
	"spotverse/internal/workload"
)

// Defaults for RunConfig fields left zero.
const (
	DefaultHorizon         = 14 * 24 * time.Hour
	DefaultSweepInterval   = 15 * time.Minute
	CheckpointTable        = "spotverse-checkpoints"
	checkpointBucket       = "spotverse-checkpoints"
	checkpointBucketRegion = catalog.Region("us-east-1")
)

// Errors returned by the runner.
var (
	ErrNoWorkloads = errors.New("experiment: no workloads")
	ErrNoStrategy  = errors.New("experiment: no strategy")
	ErrHorizon     = errors.New("experiment: horizon reached before all workloads completed")
)

// RunConfig parameterises one experiment run.
type RunConfig struct {
	// Workloads to execute (state is mutated by the run).
	Workloads []*workload.State
	// Strategy decides placement.
	Strategy strategy.Strategy
	// InstanceType used by every workload.
	InstanceType catalog.InstanceType
	// Horizon caps simulated time (default 14 days). Reaching it with
	// unfinished workloads is an error unless AllowIncomplete.
	Horizon time.Duration
	// AllowIncomplete tolerates unfinished workloads at the horizon.
	AllowIncomplete bool
	// DisableSweep turns off the harness's own 15-minute open-request
	// sweep; SpotVerse's Controller schedules its own, so runs driving a
	// core.SpotVerse strategy set this to avoid double sweeps.
	DisableSweep bool
	// CheckpointVia selects the checkpoint store (default S3; EFS is the
	// paper's future-work alternative).
	CheckpointVia CheckpointStore
	// Trace enables the structured event timeline on the Result.
	Trace bool
}

// CheckpointStore selects where checkpoint workloads persist state.
type CheckpointStore int

// Checkpoint stores.
const (
	// CheckpointS3 uploads shard slices to a central S3 bucket, paying
	// cross-region transfer from remote instances (the paper's setup).
	CheckpointS3 CheckpointStore = iota
	// CheckpointEFS writes to an EFS file system replicated on demand
	// into every region that touches it (Section 7's proposal).
	CheckpointEFS
)

// Result aggregates one run's metrics.
type Result struct {
	StrategyName string
	InstanceType catalog.InstanceType
	Workloads    int
	Completed    int

	// Interruptions is the total count of provider-initiated
	// terminations; InterruptionStamps is the cumulative series (Fig. 7a)
	// and InterruptionsByRegion the distribution (Fig. 7c).
	Interruptions         int
	InterruptionStamps    []time.Time
	InterruptionsByRegion map[catalog.Region]int

	// CompletionStamps is the per-workload completion instants sorted
	// ascending (Fig. 7b); MakespanHours the last of them relative to
	// start; MeanCompletionHours the mean.
	CompletionStamps    []time.Time
	MakespanHours       float64
	MeanCompletionHours float64

	// LaunchesByRegion counts instance launches per region.
	LaunchesByRegion map[catalog.Region]int
	// OnDemandLaunches counts launches that fell back to on-demand.
	OnDemandLaunches int

	// InstanceCostUSD is total instance spend; ServiceCostUSD the
	// control-plane spend; TotalCostUSD their sum. Breakdown carries the
	// per-category line items including instances.
	InstanceCostUSD float64
	ServiceCostUSD  float64
	TotalCostUSD    float64
	Breakdown       []cost.LineItem

	// Start is the simulated start time of the run.
	Start time.Time

	// Timeline is the structured event log (nil unless RunConfig.Trace).
	Timeline *Timeline
}

// Run executes the experiment on the environment. The environment must
// be fresh (one Run per Env): strategies register rules and schedules on
// it.
func Run(env *Env, cfg RunConfig) (*Result, error) {
	if len(cfg.Workloads) == 0 {
		return nil, ErrNoWorkloads
	}
	if cfg.Strategy == nil {
		return nil, ErrNoStrategy
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	start := env.Engine.Now()
	res := &Result{
		StrategyName:          cfg.Strategy.Name(),
		InstanceType:          cfg.InstanceType,
		Workloads:             len(cfg.Workloads),
		InterruptionsByRegion: make(map[catalog.Region]int),
		LaunchesByRegion:      make(map[catalog.Region]int),
		Start:                 start,
	}

	byID := make(map[string]*workload.State, len(cfg.Workloads))
	ids := make([]string, 0, len(cfg.Workloads))
	hasCheckpoint := false
	for _, w := range cfg.Workloads {
		byID[w.Spec.ID] = w
		ids = append(ids, w.Spec.ID)
		if w.Spec.Kind == workload.KindCheckpoint {
			hasCheckpoint = true
		}
	}
	sort.Strings(ids)

	d := newDriver(env, cfg, byID, res)
	if cfg.Trace {
		res.Timeline = &Timeline{}
		d.timeline = res.Timeline
	}
	if hasCheckpoint {
		if err := d.setupCheckpointStores(); err != nil {
			return nil, err
		}
	}
	env.Provider.OnLaunch(d.onLaunch)
	env.Provider.OnInterruptionNotice(d.onNotice)
	env.Provider.OnTerminate(d.onTerminate)

	if !cfg.DisableSweep {
		if err := env.CloudWatch.Schedule("harness-open-request-sweep", DefaultSweepInterval, func(time.Time) {
			env.Provider.EvaluateOpenRequests()
		}); err != nil {
			return nil, err
		}
	}

	placements, err := cfg.Strategy.PlaceInitial(ids)
	if err != nil {
		return nil, fmt.Errorf("experiment: initial placement: %w", err)
	}
	for _, id := range ids {
		p, ok := placements[id]
		if !ok {
			return nil, fmt.Errorf("experiment: strategy left %q unplaced", id)
		}
		if err := d.provision(id, p); err != nil {
			return nil, err
		}
	}

	horizon := start.Add(cfg.Horizon)
	done := func() bool { return d.completed == len(cfg.Workloads) }
	for !done() {
		if env.Engine.Pending() == 0 {
			break
		}
		if env.Engine.Now().After(horizon) {
			break
		}
		env.Engine.Step()
	}
	env.CloudWatch.StopAll()

	// Terminate any instances still running (completed runs already
	// terminated theirs; this covers AllowIncomplete horizons).
	for _, inst := range env.Provider.RunningInstances() {
		_ = env.Provider.Terminate(inst.ID)
	}

	if !done() && !cfg.AllowIncomplete {
		return nil, fmt.Errorf("%w: %d/%d done after %v (strategy %s)",
			ErrHorizon, d.completed, len(cfg.Workloads), cfg.Horizon, cfg.Strategy.Name())
	}

	res.Completed = d.completed
	sort.Slice(res.CompletionStamps, func(i, j int) bool { return res.CompletionStamps[i].Before(res.CompletionStamps[j]) })
	if n := len(res.CompletionStamps); n > 0 {
		res.MakespanHours = res.CompletionStamps[n-1].Sub(start).Hours()
		var sum float64
		for _, ts := range res.CompletionStamps {
			sum += ts.Sub(start).Hours()
		}
		res.MeanCompletionHours = sum / float64(n)
	}
	res.InstanceCostUSD = env.Provider.TotalInstanceCost()
	res.ServiceCostUSD = env.Ledger.Total()
	res.TotalCostUSD = res.InstanceCostUSD + res.ServiceCostUSD
	full := cost.NewLedger()
	full.Merge(env.Ledger)
	full.MustAdd(cost.CategoryInstances, res.InstanceCostUSD)
	res.Breakdown = full.Breakdown()
	return res, nil
}

// driver maps instances to workloads and reacts to provider events.
type driver struct {
	env  *Env
	cfg  RunConfig
	byID map[string]*workload.State
	res  *Result

	runStart     map[cloud.InstanceID]time.Time
	completionEv map[string]*simclock.Event
	completed    int
	timeline     *Timeline
	// ckptFailed marks workloads whose latest two-minute-warning
	// checkpoint write did not become durable; their banked progress is
	// rolled back at termination.
	ckptFailed map[string]bool
}

func newDriver(env *Env, cfg RunConfig, byID map[string]*workload.State, res *Result) *driver {
	return &driver{
		env:          env,
		cfg:          cfg,
		byID:         byID,
		res:          res,
		runStart:     make(map[cloud.InstanceID]time.Time),
		completionEv: make(map[string]*simclock.Event),
		ckptFailed:   make(map[string]bool),
	}
}

func (d *driver) setupCheckpointStores() error {
	if err := d.env.Dynamo.CreateTable(CheckpointTable); err != nil {
		return err
	}
	if d.cfg.CheckpointVia == CheckpointEFS {
		return d.env.EFS.Create(checkpointBucket, checkpointBucketRegion)
	}
	return d.env.S3.CreateBucket(checkpointBucket, checkpointBucketRegion)
}

// checkpointWrite persists a workload's shard slice from a region. A
// non-nil error means the slice is not durable.
func (d *driver) checkpointWrite(key string, size int64, from catalog.Region) error {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			if err := d.env.EFS.Replicate(checkpointBucket, from); err != nil {
				return err
			}
		}
		return d.env.EFS.WriteSized(checkpointBucket, key, size, from)
	}
	return d.env.S3.PutSized(checkpointBucket, key, size, from)
}

// checkpointRead re-fetches a workload's data on resume.
func (d *driver) checkpointRead(key string, from catalog.Region) {
	if d.cfg.CheckpointVia == CheckpointEFS {
		if !d.env.EFS.Exists(checkpointBucket, key) {
			return
		}
		if !d.env.EFS.Mounted(checkpointBucket, from) {
			_ = d.env.EFS.Replicate(checkpointBucket, from)
		}
		_, _ = d.env.EFS.ReadSized(checkpointBucket, key, from)
		return
	}
	if d.env.S3.Exists(checkpointBucket, key) {
		_, _ = d.env.S3.Get(checkpointBucket, key, from)
	}
}

// provision issues the spot request or on-demand launch for a workload.
func (d *driver) provision(id string, p strategy.Placement) error {
	switch p.Lifecycle {
	case cloud.LifecycleOnDemand:
		_, err := d.env.Provider.RunOnDemand(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s on-demand: %w", id, err)
		}
	default:
		_, err := d.env.Provider.RequestSpot(d.cfg.InstanceType, p.Region, id)
		if err != nil {
			return fmt.Errorf("experiment: provision %s spot: %w", id, err)
		}
	}
	return nil
}

func (d *driver) onLaunch(inst *cloud.Instance) {
	w, ok := d.byID[inst.Tag]
	if !ok {
		return
	}
	if w.Completed {
		// A stale open request got fulfilled after completion.
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	if err := w.BeginAttempt(); err != nil {
		_ = d.env.Provider.Terminate(inst.ID)
		return
	}
	d.res.LaunchesByRegion[inst.Region]++
	if inst.Lifecycle == cloud.LifecycleOnDemand {
		d.res.OnDemandLaunches++
	}
	d.runStart[inst.ID] = d.env.Engine.Now()
	d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventLaunch, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Resumed checkpoint attempts re-download their dataset slice from
	// the checkpoint bucket (cross-region transfer bills apply).
	if w.Spec.Kind == workload.KindCheckpoint && w.Attempts > 1 && w.ShardsDone > 0 {
		d.checkpointRead("ckpt/"+w.Spec.ID, inst.Region)
	}
	need := w.AttemptDuration()
	instID := inst.ID
	d.completionEv[w.Spec.ID] = d.env.Engine.ScheduleAfter(need, "workload-complete:"+w.Spec.ID, func() {
		d.complete(w, instID)
	})
}

// CompletionObserver is implemented by strategies that learn from
// successful runs (e.g. the predictive strategy's survival feedback).
type CompletionObserver interface {
	OnCompleted(id string)
}

func (d *driver) complete(w *workload.State, instID cloud.InstanceID) {
	inst, err := d.env.Provider.Instance(instID)
	if err != nil || inst.State != cloud.StateRunning {
		return
	}
	if err := w.MarkComplete(d.env.Engine.Now()); err != nil {
		return
	}
	d.completed++
	d.res.CompletionStamps = append(d.res.CompletionStamps, d.env.Engine.Now())
	delete(d.completionEv, w.Spec.ID)
	d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventComplete, Workload: w.Spec.ID, Instance: instID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	if obs, ok := d.cfg.Strategy.(CompletionObserver); ok {
		obs.OnCompleted(w.Spec.ID)
	}
	_ = d.env.Provider.Terminate(instID)
}

// onNotice handles the two-minute warning: checkpoint workloads persist
// their progress to DynamoDB and upload the in-flight shard slice to S3,
// exactly the paper's interruption path.
func (d *driver) onNotice(inst *cloud.Instance) {
	w, ok := d.byID[inst.Tag]
	if !ok || w.Completed || w.Spec.Kind != workload.KindCheckpoint {
		return
	}
	now := d.env.Engine.Now()
	d.timeline.add(Event{At: now, Kind: EventNotice, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Progress this checkpoint will claim once the instance dies: shards
	// banked so far plus whole shards the current attempt has finished.
	done := w.ShardsDone
	if startAt, tracked := d.runStart[inst.ID]; tracked {
		done += w.ShardsAt(now.Sub(startAt))
	}
	failed := false
	if err := d.checkpointWrite("ckpt/"+w.Spec.ID, w.CheckpointBytes(), inst.Region); err != nil {
		failed = true
	}
	// Idempotent write keyed (workload, shardsDone): a duplicate for the
	// same progress point finding the item already present is success.
	if err := d.env.Dynamo.PutIfAbsent(CheckpointTable, dynamoCheckpointItem(w, done, now)); err != nil &&
		!errors.Is(err, dynamo.ErrConditionFailed) {
		failed = true
	}
	if failed {
		d.ckptFailed[w.Spec.ID] = true
	} else {
		delete(d.ckptFailed, w.Spec.ID)
	}
}

func (d *driver) onTerminate(inst *cloud.Instance, interrupted bool) {
	w, ok := d.byID[inst.Tag]
	if !ok {
		return
	}
	startAt, tracked := d.runStart[inst.ID]
	delete(d.runStart, inst.ID)
	if !interrupted || w.Completed || !tracked {
		return
	}
	// Record the interruption.
	now := d.env.Engine.Now()
	d.res.Interruptions++
	d.res.InterruptionStamps = append(d.res.InterruptionStamps, now)
	d.res.InterruptionsByRegion[inst.Region]++
	d.timeline.add(Event{At: now, Kind: EventInterrupt, Workload: w.Spec.ID, Instance: inst.ID, Region: inst.Region, Lifecycle: inst.Lifecycle})
	// Bank progress and cancel the stale completion event. Progress whose
	// checkpoint write never became durable is rolled back: the next
	// attempt must recompute those shards.
	banked := w.CreditProgress(now.Sub(startAt))
	if banked > 0 && d.ckptFailed[w.Spec.ID] {
		w.DropShards(banked)
	}
	delete(d.ckptFailed, w.Spec.ID)
	if ev, ok := d.completionEv[w.Spec.ID]; ok {
		ev.Cancel()
		delete(d.completionEv, w.Spec.ID)
	}
	// Ask the strategy where to go next.
	id := w.Spec.ID
	err := d.cfg.Strategy.OnInterrupted(id, inst.Region, func(p strategy.Placement) {
		if w.Completed {
			return
		}
		d.timeline.add(Event{At: d.env.Engine.Now(), Kind: EventRelaunch, Workload: id, Region: p.Region, Lifecycle: p.Lifecycle})
		_ = d.provision(id, p)
	})
	if err != nil {
		// A strategy that cannot place leaves the workload stranded; the
		// run will hit the horizon and report it.
		return
	}
}
