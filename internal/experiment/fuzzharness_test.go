package experiment

import (
	"testing"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/core"
	"spotverse/internal/simclock"
)

// fuzzTestSchedule is a composite plan exercising every fault family the
// harness actuates: drops, a brownout, a partition, a kill, corruption,
// a bucket loss, and a split-brain window.
func fuzzTestSchedule(start time.Time) chaos.Schedule {
	return chaos.Schedule{
		Intensity:       chaos.Severe,
		DropRate:        1.0,
		DropDetailTypes: []string{core.DetailTypeInterruption},
		Brownouts: []chaos.Brownout{{
			Region:   "us-east-1",
			Services: []string{chaos.ServiceDynamo},
			Window:   chaos.Window{From: start.Add(4 * time.Hour), To: start.Add(7 * time.Hour)},
		}},
		Partitions: []chaos.Partition{{
			Regions: nil, // all regions
			Window:  chaos.Window{From: start.Add(5 * time.Hour), To: start.Add(6 * time.Hour)},
		}},
		ControllerKills: []chaos.ControllerKill{{At: start.Add(8 * time.Hour)}},
		ObjectCorruptions: []chaos.ObjectCorruption{{
			Bucket:    checkpointBucket,
			KeyPrefix: manifestPrefix,
			Rate:      0.3,
			Window:    chaos.Window{From: start.Add(2 * time.Hour), To: start.Add(12 * time.Hour)},
		}},
		BucketLosses: []chaos.BucketLoss{{Bucket: CheckpointReplicaBucket, At: start.Add(15 * time.Hour)}},
		SplitBrains:  []chaos.SplitBrain{{Window: chaos.Window{From: start.Add(3 * time.Hour), To: start.Add(9 * time.Hour)}}},
	}
}

func TestChaosRunDeterministicFingerprint(t *testing.T) {
	cfg := ChaosRunConfig{
		Seed:      42,
		Workloads: 8,
		Schedule:  fuzzTestSchedule(simclock.Epoch),
		Horizon:   72 * time.Hour,
	}
	a, err := ChaosRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ across identical runs: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if a.RivalsSpawned == 0 {
		t.Fatal("split-brain window spawned no rival")
	}
	if a.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", a.Restarts)
	}
	if a.Result.Timeline.Len() == 0 {
		t.Fatal("harness ran without a timeline")
	}
	if a.Result.DuplicateRelaunches != 0 {
		t.Fatalf("fenced run produced %d duplicate relaunches", a.Result.DuplicateRelaunches)
	}
}

func TestChaosRunFingerprintSensitiveToPlan(t *testing.T) {
	base := ChaosRunConfig{Seed: 7, Workloads: 6, Schedule: fuzzTestSchedule(simclock.Epoch), Horizon: 48 * time.Hour}
	a, err := ChaosRun(base)
	if err != nil {
		t.Fatal(err)
	}
	tweaked := base
	tweaked.Schedule.ControllerKills = nil
	b, err := ChaosRun(tweaked)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("removing the controller kill left the fingerprint unchanged")
	}
}

func TestScheduleSplitBrainsSkipsZeroLengthWindows(t *testing.T) {
	cfg := ChaosRunConfig{
		Seed:      9,
		Workloads: 4,
		Schedule: chaos.Schedule{
			Intensity: chaos.Low,
			SplitBrains: []chaos.SplitBrain{
				{Window: chaos.Window{From: simclock.Epoch.Add(2 * time.Hour), To: simclock.Epoch.Add(2 * time.Hour)}},
			},
		},
		Horizon: 24 * time.Hour,
	}
	ev, err := ChaosRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev.RivalsSpawned != 0 || ev.RivalSpawnErrors != 0 {
		t.Fatalf("zero-length split-brain window actuated: spawned=%d errors=%d", ev.RivalsSpawned, ev.RivalSpawnErrors)
	}
}
