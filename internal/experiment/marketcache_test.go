package experiment

import (
	"testing"

	"spotverse/internal/simclock"
)

// TestEnvsShareSnapshot pins the cache wiring: with the cache on, two
// environments for the same (seed, start) read one market snapshot;
// with it off, each regenerates privately.
func TestEnvsShareSnapshot(t *testing.T) {
	prev := SetMarketCache(DefaultMarketCacheSegments)
	defer SetMarketCache(prev)

	a := NewEnv(42)
	b := NewEnv(42)
	if a.Market == b.Market {
		t.Fatal("Models must stay per-env even when the snapshot is shared")
	}
	if a.Market.Snapshot() != b.Market.Snapshot() {
		t.Fatal("same-seed envs should share one snapshot with the cache on")
	}
	if c := NewEnv(43); c.Market.Snapshot() == a.Market.Snapshot() {
		t.Fatal("different seeds must not share a snapshot")
	}
	if d := NewEnvAt(42, simclock.Epoch.Add(1)); d.Market.Snapshot() == a.Market.Snapshot() {
		t.Fatal("different starts must not share a snapshot")
	}

	SetMarketCache(0)
	e := NewEnv(42)
	f := NewEnv(42)
	if e.Market.Snapshot() == f.Market.Snapshot() {
		t.Fatal("cache off should build private snapshots")
	}

	if got := SetMarketCache(DefaultMarketCacheSegments); got != 0 {
		t.Fatalf("SetMarketCache returned previous %d, want 0", got)
	}
	if got := MarketCache(); got != DefaultMarketCacheSegments {
		t.Fatalf("MarketCache = %d, want %d", got, DefaultMarketCacheSegments)
	}
}
