package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
)

// EventKind labels a timeline entry.
type EventKind string

// Timeline event kinds.
const (
	EventLaunch    EventKind = "launch"
	EventNotice    EventKind = "notice"
	EventInterrupt EventKind = "interrupt"
	EventComplete  EventKind = "complete"
	EventRelaunch  EventKind = "relaunch"
)

// Event is one timeline entry of an experiment run.
type Event struct {
	At        time.Time
	Kind      EventKind
	Workload  string
	Instance  cloud.InstanceID
	Region    catalog.Region
	Lifecycle cloud.Lifecycle
}

// Timeline is an append-only event log, enabled via RunConfig.Trace.
type Timeline struct {
	events []Event
}

func (tl *Timeline) add(e Event) {
	if tl == nil {
		return
	}
	tl.events = append(tl.events, e)
}

// Events returns a copy of the recorded events in order.
func (tl *Timeline) Events() []Event {
	if tl == nil {
		return nil
	}
	out := make([]Event, len(tl.events))
	copy(out, tl.events)
	return out
}

// Len reports the number of recorded events.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	return len(tl.events)
}

// ByWorkload returns the events of one workload, in order.
func (tl *Timeline) ByWorkload(id string) []Event {
	if tl == nil {
		return nil
	}
	var out []Event
	for _, e := range tl.events {
		if e.Workload == id {
			out = append(out, e)
		}
	}
	return out
}

// Render writes the timeline as aligned text relative to start.
func (tl *Timeline) Render(w io.Writer, start time.Time) error {
	if tl == nil {
		return nil
	}
	for _, e := range tl.events {
		if _, err := fmt.Fprintf(w, "%9.3fh  %-9s  %-16s  %-14s  %s\n",
			e.At.Sub(start).Hours(), e.Kind, e.Workload, e.Region, e.Instance); err != nil {
			return err
		}
	}
	return nil
}

// String renders relative to the first event.
func (tl *Timeline) String() string {
	if tl == nil || len(tl.events) == 0 {
		return ""
	}
	var sb strings.Builder
	_ = tl.Render(&sb, tl.events[0].At)
	return sb.String()
}

// Validate checks structural invariants of a completed run's timeline:
// per workload, events alternate launch → (notice?) → interrupt →
// relaunch → launch … ending with complete; at most one live instance at
// any instant. It returns the violations found.
func (tl *Timeline) Validate() []string {
	if tl == nil {
		return nil
	}
	var problems []string
	byWL := map[string][]Event{}
	for _, e := range tl.events {
		byWL[e.Workload] = append(byWL[e.Workload], e)
	}
	ids := make([]string, 0, len(byWL))
	for id := range byWL {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		live := 0
		completed := false
		for _, e := range byWL[id] {
			switch e.Kind {
			case EventLaunch:
				live++
				if live > 1 {
					problems = append(problems, fmt.Sprintf("%s: two live instances at %s", id, e.At))
				}
			case EventInterrupt, EventComplete:
				if live == 0 {
					problems = append(problems, fmt.Sprintf("%s: %s without live instance at %s", id, e.Kind, e.At))
				} else {
					live--
				}
				if e.Kind == EventComplete {
					completed = true
				}
			case EventNotice, EventRelaunch:
				// informational
			}
			if completed && e.Kind == EventLaunch {
				problems = append(problems, fmt.Sprintf("%s: launch after completion at %s", id, e.At))
			}
		}
	}
	return problems
}
