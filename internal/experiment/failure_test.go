package experiment

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/core"
	"spotverse/internal/galaxy"
	"spotverse/internal/services/ami"
	"spotverse/internal/workload"
)

// Failure-injection tests: regional outages, AMI launch gates, and
// Galaxy jobs cancelled by real provider reclaims.

func TestRegionalOutageStallsThenRecovers(t *testing.T) {
	env := NewEnv(60)
	// ca-central-1 loses spot capacity for the first 6 hours.
	if err := env.Market.InjectOutage("ca-central-1", env.Engine.Now(), env.Engine.Now().Add(6*time.Hour)); err != nil {
		t.Fatal(err)
	}
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	ws := genWorkloads(t, 60, workload.KindStandard, 5)
	res, err := Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// No instance can have launched inside the outage window: the first
	// launch must be at or after the 6-hour mark.
	for _, e := range res.Timeline.Events() {
		if e.Kind == EventLaunch && e.At.Before(env.Market.Start().Add(6*time.Hour)) {
			t.Fatalf("launch at %v inside outage window", e.At)
		}
	}
	// The sweep retried open requests throughout: completion still lands
	// within outage + workload duration + retry slack.
	if res.MakespanHours < 16 {
		t.Fatalf("makespan %vh < outage+duration; outage had no effect", res.MakespanHours)
	}
}

func TestOutageValidation(t *testing.T) {
	env := NewEnv(61)
	now := env.Engine.Now()
	if err := env.Market.InjectOutage("ca-central-1", now.Add(time.Hour), now); err == nil {
		t.Fatal("inverted window accepted")
	}
	if err := env.Market.InjectOutage("narnia-1", now, now.Add(time.Hour)); err == nil {
		t.Fatal("unknown region accepted")
	}
	if env.Market.InOutage("ca-central-1", now) {
		t.Fatal("outage without injection")
	}
}

func TestAMILaunchGateBlocksUnpropagatedRegions(t *testing.T) {
	env := NewEnv(62)
	registry := ami.New(env.Catalog(), env.Ledger)
	if _, err := registry.Register("galaxy-ami", "ca-central-1", 4<<30); err != nil {
		t.Fatal(err)
	}
	env.Provider.SetLaunchGate(registry.LaunchGate("galaxy-ami"))

	// Launching where the AMI lives works; elsewhere is rejected.
	if _, err := env.Provider.RunOnDemand(catalog.M5XLarge, "ca-central-1", "w"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Provider.RequestSpot(catalog.M5XLarge, "eu-north-1", "w"); !errors.Is(err, ami.ErrNotPresent) {
		t.Fatalf("err = %v", err)
	}
	// After the paper's propagation step, every offered region works.
	if _, err := registry.Propagate("galaxy-ami", catalog.M5XLarge); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Provider.RequestSpot(catalog.M5XLarge, "eu-north-1", "w"); err != nil {
		t.Fatalf("post-propagation launch: %v", err)
	}
}

func TestSpotVerseRunWithAMIGate(t *testing.T) {
	env := NewEnv(63)
	registry := ami.New(env.Catalog(), env.Ledger)
	if _, err := registry.Register("galaxy-ami", "ca-central-1", 4<<30); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.Propagate("galaxy-ami", catalog.M5XLarge); err != nil {
		t.Fatal(err)
	}
	env.Provider.SetLaunchGate(registry.LaunchGate("galaxy-ami"))
	mgr, err := newSpotVerse(env, core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: "ca-central-1",
		Seed:             63,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{
		Workloads:    genWorkloads(t, 63, workload.KindStandard, 8),
		Strategy:     mgr,
		InstanceType: catalog.M5XLarge,
		DisableSweep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed = %d with propagated AMI", res.Completed)
	}
}

// TestGalaxyJobCancelledByRealReclaim ties the timed Galaxy job runner to
// actual provider interruptions: a spot reclaim cancels the in-flight
// workflow mid-step.
func TestGalaxyJobCancelledByRealReclaim(t *testing.T) {
	env := NewEnv(64)
	g := galaxy.New(galaxy.Config{AdminUsers: []string{"a@x"}, APIKeys: map[string]string{"a@x": "k"}})
	if err := galaxy.InstallStandardTools(g, "a@x"); err != nil {
		t.Fatal(err)
	}
	jr := galaxy.NewJobRunner(env.Engine, g, galaxy.JobOptions{BasePerStep: 40 * time.Minute})

	// A long 23-step job (~15h) on a spot instance in the riskiest
	// region: over many attempts, one must get reclaimed mid-run.
	var handles []*galaxy.JobHandle
	env.Provider.OnLaunch(func(inst *cloud.Instance) {
		inputs := map[string]galaxy.Dataset{
			"reference":     {Name: "r.fasta", Format: "fasta", Data: []byte(">r\nACGTACGTACGTACGTACGT\n")},
			"reference_raw": {Name: "r.seq", Format: "txt", Data: []byte("ACGTACGTACGTACGTACGT")},
			"variants":      {Name: "v.vcf", Format: "vcf", Data: []byte("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\nchr1\t3\t.\tG\tT\t90\tPASS\t.\n")},
			"lineages":      {Name: "l.fasta", Format: "fasta", Data: []byte(">L1\nACGTACGTACGTACGTACGT\n>L2\nTTTTTTTTTTGGGGGGGGGG\n")},
		}
		h, err := jr.Start(galaxy.GenomeReconstructionWorkflow(), inputs, nil)
		if err != nil {
			t.Errorf("start job: %v", err)
			return
		}
		handles = append(handles, h)
	})
	env.Provider.OnTerminate(func(inst *cloud.Instance, interrupted bool) {
		if !interrupted {
			return
		}
		// Reclaim kills the newest running job.
		for i := len(handles) - 1; i >= 0; i-- {
			if handles[i].State() == galaxy.JobRunning {
				handles[i].Cancel()
				return
			}
		}
	})
	for i := 0; i < 10; i++ {
		if _, err := env.Provider.RequestSpot(catalog.M5XLarge, "ca-central-1", "job"); err != nil {
			t.Fatal(err)
		}
	}
	sweep := env.Engine.Every(15*time.Minute, "sweep", func(time.Time) { env.Provider.EvaluateOpenRequests() })
	defer sweep.Stop()
	_ = env.Engine.Run(env.Engine.Now().Add(20 * time.Hour))

	var cancelled, completed int
	for _, h := range handles {
		switch h.State() {
		case galaxy.JobCancelled:
			cancelled++
			if h.StepsCompleted() >= h.TotalSteps() {
				t.Fatal("cancelled job reports all steps done")
			}
		case galaxy.JobCompleted:
			completed++
		}
	}
	if cancelled == 0 {
		t.Fatalf("no job cancelled by a reclaim (completed=%d of %d launched)", completed, len(handles))
	}
}
