package experiment

import (
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/workload"
)

// These tests assert the *shape* of every paper result: who wins, in
// which direction, and (loosely) by what kind of factor. Absolute values
// differ from the authors' 2024 AWS testbed by design (see DESIGN.md).

func TestFig2PriceDiversity(t *testing.T) {
	series, err := Fig2(42, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
	// Prices must differ across regions for the same type, and move over
	// time within one AZ.
	meansByType := map[catalog.InstanceType][]float64{}
	for _, s := range series {
		meansByType[s.Type] = append(meansByType[s.Type], s.Mean)
		if s.Max <= s.Min {
			t.Fatalf("%s/%s: flat price series", s.Type, s.AZ)
		}
	}
	for tp, means := range meansByType {
		lo, hi := means[0], means[0]
		for _, m := range means {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if hi < lo*1.3 {
			t.Fatalf("%s: regional price spread too small (%v..%v)", tp, lo, hi)
		}
	}
	// p3 must be present but in fewer AZs than m5.
	var p3, m5 int
	for _, s := range series {
		switch s.Type {
		case catalog.P32XLarge:
			p3++
		case catalog.M52XLarge:
			m5++
		}
	}
	if p3 == 0 || p3 >= m5 {
		t.Fatalf("p3 series=%d m5 series=%d, want 0 < p3 < m5", p3, m5)
	}
}

func TestFig3MultiRegionWins(t *testing.T) {
	results, err := Fig3(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Multi.Interruptions >= r.Single.Interruptions {
			t.Errorf("%s: multi interruptions %d >= single %d", r.Kind, r.Multi.Interruptions, r.Single.Interruptions)
		}
		if r.CostSaving <= 0 {
			t.Errorf("%s: no cost saving (%v)", r.Kind, r.CostSaving)
		}
		if r.TimeSaving <= 0 {
			t.Errorf("%s: no time saving (%v)", r.Kind, r.TimeSaving)
		}
	}
	// Standard workloads gain more completion time than checkpoint ones
	// (paper: 30.49% vs 6.63%).
	if results[0].TimeSaving <= results[1].TimeSaving {
		t.Errorf("standard time saving %v <= checkpoint %v", results[0].TimeSaving, results[1].TimeSaving)
	}
}

func TestFig4MetricDynamics(t *testing.T) {
	heat, avgs, err := Fig4(42, 180)
	if err != nil {
		t.Fatal(err)
	}
	if len(heat) == 0 || len(avgs) != 3 {
		t.Fatalf("heat=%d avgs=%d", len(heat), len(avgs))
	}
	// The heatmap must show both calm (<5%) and hostile (>20%) cells.
	low, high := false, false
	for _, h := range heat {
		for _, f := range h.Frequencies {
			if f < 0.05 {
				low = true
			}
			if f > 0.20 {
				high = true
			}
		}
	}
	if !low || !high {
		t.Fatalf("heatmap lacks contrast: low=%v high=%v", low, high)
	}
	// p3's SPS must vary less across time than c5/m5's (Fig. 4c).
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	var p3Spread, m5Spread float64
	for _, a := range avgs {
		switch a.Type {
		case catalog.P32XLarge:
			p3Spread = spread(a.AvgSPS)
		case catalog.M52XLarge:
			m5Spread = spread(a.AvgSPS)
		}
		for _, s := range a.AvgStability {
			if s < 1 || s > 3 {
				t.Fatalf("%s: stability average %v out of [1,3]", a.Type, s)
			}
		}
	}
	if p3Spread >= m5Spread {
		t.Fatalf("p3 SPS spread %v >= m5 %v; paper observes the opposite", p3Spread, m5Spread)
	}
}

func TestFig7SpotVerseWins(t *testing.T) {
	results, err := Fig7(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.SpotVerse.Interruptions >= r.Single.Interruptions {
			t.Errorf("%s: spotverse interruptions %d >= single %d", r.Kind, r.SpotVerse.Interruptions, r.Single.Interruptions)
		}
		if r.SpotVerse.MakespanHours >= r.Single.MakespanHours {
			t.Errorf("%s: spotverse makespan %v >= single %v", r.Kind, r.SpotVerse.MakespanHours, r.Single.MakespanHours)
		}
		if r.SpotVerse.TotalCostUSD >= r.Single.TotalCostUSD {
			t.Errorf("%s: spotverse cost %v >= single %v", r.Kind, r.SpotVerse.TotalCostUSD, r.Single.TotalCostUSD)
		}
		if r.SpotVerse.TotalCostUSD >= r.OnDemandCostUSD {
			t.Errorf("%s: spotverse cost %v >= on-demand %v", r.Kind, r.SpotVerse.TotalCostUSD, r.OnDemandCostUSD)
		}
		// Single-region interruptions all in ca-central-1; SpotVerse's
		// spread across several regions (Fig. 7c).
		if len(r.Single.InterruptionsByRegion) != 1 {
			t.Errorf("%s: single-region distribution %v", r.Kind, r.Single.InterruptionsByRegion)
		}
		if len(r.SpotVerse.LaunchesByRegion) < 2 {
			t.Errorf("%s: spotverse never left ca-central-1: %v", r.Kind, r.SpotVerse.LaunchesByRegion)
		}
	}
	std := results[0]
	if std.Kind != workload.KindStandard {
		t.Fatalf("unexpected order: %v", std.Kind)
	}
	// The paper's headline: ~39-52% cost saving for standard workloads
	// over single-region; require at least 15%.
	saving := 1 - std.SpotVerse.TotalCostUSD/std.Single.TotalCostUSD
	if saving < 0.15 {
		t.Errorf("standard cost saving %v < 15%%", saving)
	}
}

func TestFig8TypesAndSizes(t *testing.T) {
	rows, err := Fig8(42, append(append([]catalog.InstanceType{}, Fig8TypeSet...), catalog.M5Large))
	if err != nil {
		t.Fatal(err)
	}
	byType := map[catalog.InstanceType]Fig8Row{}
	for _, row := range rows {
		byType[row.Type] = row
		if row.SpotVerse.TotalCostUSD >= row.OnDemandCostUSD {
			t.Errorf("%s: spotverse %v >= on-demand %v", row.Type, row.SpotVerse.TotalCostUSD, row.OnDemandCostUSD)
		}
	}
	// Table 1 baseline regions must match the paper.
	wantBase := map[catalog.InstanceType]catalog.Region{
		catalog.M52XLarge: "ap-northeast-3",
		catalog.C52XLarge: "eu-north-1",
		catalog.R52XLarge: "ca-central-1",
		catalog.M5Large:   "us-west-2",
	}
	for tp, wantRegion := range wantBase {
		if byType[tp].BaselineRegion != wantRegion {
			t.Errorf("%s baseline = %s, want %s", tp, byType[tp].BaselineRegion, wantRegion)
		}
	}
	// The paper's key observation: types whose baseline region sits in a
	// low-stability market (r5.2xlarge in ca-central-1, m5.large in
	// us-west-2) gain the most from SpotVerse.
	for _, tp := range []catalog.InstanceType{catalog.R52XLarge, catalog.M5Large} {
		row := byType[tp]
		if row.Single.Interruptions == 0 {
			t.Fatalf("%s: no interruptions in unstable baseline", tp)
		}
		drop := 1 - float64(row.SpotVerse.Interruptions)/float64(row.Single.Interruptions)
		if drop < 0.3 {
			t.Errorf("%s: interruption drop %v < 30%% (paper: ~57-71%%)", tp, drop)
		}
		if row.SpotVerse.MakespanHours >= row.Single.MakespanHours {
			t.Errorf("%s: no completion-time gain", tp)
		}
	}
}

func TestFig9InitialSpreadWins(t *testing.T) {
	results, err := Fig9(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Spread.Interruptions >= r.FixedStart.Interruptions {
			t.Errorf("%s: spread interruptions %d >= fixed %d", r.Kind, r.Spread.Interruptions, r.FixedStart.Interruptions)
		}
		if r.Spread.MakespanHours >= r.FixedStart.MakespanHours {
			t.Errorf("%s: spread makespan %v >= fixed %v", r.Kind, r.Spread.MakespanHours, r.FixedStart.MakespanHours)
		}
		if r.Spread.TotalCostUSD >= r.FixedStart.TotalCostUSD {
			t.Errorf("%s: spread cost %v >= fixed %v", r.Kind, r.Spread.TotalCostUSD, r.FixedStart.TotalCostUSD)
		}
	}
}

func TestFig10ThresholdShape(t *testing.T) {
	cells, err := Fig10(42)
	if err != nil {
		t.Fatal(err)
	}
	byTD := map[[2]int]Fig10Cell{}
	for _, c := range cells {
		byTD[[2]int{c.Threshold, c.DurationHours}] = c
	}
	// Thresholds 5 and 6 save consistently across durations.
	for _, threshold := range []int{5, 6} {
		for _, d := range Fig10Durations {
			c := byTD[[2]int{threshold, d}]
			if c.NormalizedCost >= 1 {
				t.Errorf("T=%d D=%dh: normalized cost %v >= 1", threshold, d, c.NormalizedCost)
			}
		}
	}
	// Threshold 4 (cheapest, least stable) crosses above on-demand at
	// long durations — the paper's +36% observation.
	if c := byTD[[2]int{4, 20}]; c.NormalizedCost <= 1 {
		t.Errorf("T=4 D=20h: normalized cost %v <= 1, want crossover above on-demand", c.NormalizedCost)
	}
	// Savings diminish as duration grows for the risky threshold.
	if byTD[[2]int{4, 5}].NormalizedCost >= byTD[[2]int{4, 20}].NormalizedCost {
		t.Errorf("T=4: normalized cost not increasing with duration: %v vs %v",
			byTD[[2]int{4, 5}].NormalizedCost, byTD[[2]int{4, 20}].NormalizedCost)
	}
}

func TestTable1BaselineRegions(t *testing.T) {
	rows, err := Table1(42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[catalog.InstanceType]catalog.Region{
		catalog.M5Large:   "us-west-2",
		catalog.M5XLarge:  "ca-central-1",
		catalog.M52XLarge: "ap-northeast-3",
		catalog.R52XLarge: "ca-central-1",
		catalog.C52XLarge: "eu-north-1",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if want[row.Type] != row.Region {
			t.Errorf("%s: baseline %s, want %s (Table 1)", row.Type, row.Region, want[row.Type])
		}
	}
}

func TestTable3Quartets(t *testing.T) {
	sel, err := Table3Selection(42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]map[catalog.Region]bool{
		6: {"us-west-1": true, "ap-northeast-3": true, "eu-west-1": true, "eu-north-1": true},
		5: {"ap-southeast-1": true, "eu-west-3": true, "ca-central-1": true, "eu-west-2": true},
		4: {"us-east-1": true, "us-east-2": true, "ap-southeast-2": true, "us-west-2": true},
	}
	for threshold, regions := range want {
		got := sel[threshold]
		if len(got) != 4 {
			t.Fatalf("T=%d: selected %v", threshold, got)
		}
		for _, r := range got {
			if !regions[r] {
				t.Errorf("T=%d: unexpected region %s (Table 3)", threshold, r)
			}
		}
	}
}

func TestTable4SpotVerseBeatsSkyPilot(t *testing.T) {
	res, err := Table4(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpotVerse.Interruptions >= res.SkyPilot.Interruptions {
		t.Errorf("spotverse interruptions %d >= skypilot %d", res.SpotVerse.Interruptions, res.SkyPilot.Interruptions)
	}
	if res.SpotVerse.TotalCostUSD >= res.SkyPilot.TotalCostUSD {
		t.Errorf("spotverse cost %v >= skypilot %v", res.SpotVerse.TotalCostUSD, res.SkyPilot.TotalCostUSD)
	}
	if res.SpotVerse.MakespanHours >= res.SkyPilot.MakespanHours {
		t.Errorf("spotverse makespan %v >= skypilot %v", res.SpotVerse.MakespanHours, res.SkyPilot.MakespanHours)
	}
	// The paper reports ~51% cost and ~60% time reduction; require the
	// same order of improvement (>25%).
	if saving := 1 - res.SpotVerse.TotalCostUSD/res.SkyPilot.TotalCostUSD; saving < 0.25 {
		t.Errorf("cost saving %v < 25%%", saving)
	}
}
