package experiment

import (
	"strings"
	"testing"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/workload"
)

// Render smoke tests: every renderer must produce shaped output for the
// real experiment results without error.

func TestRenderFig2(t *testing.T) {
	series, err := Fig2(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderFig2(&sb, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 2") || !strings.Contains(sb.String(), "p3.2xlarge") {
		t.Fatalf("out = %.200q", sb.String())
	}
	var csv strings.Builder
	if err := Fig2CSV(&csv, series); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "type,az,date,usd_per_hour\n") {
		t.Fatalf("csv header = %.60q", csv.String())
	}
	lines := strings.Count(csv.String(), "\n")
	if lines < len(series)*10 {
		t.Fatalf("csv lines = %d for %d series", lines, len(series))
	}
}

func TestRenderFig4(t *testing.T) {
	heat, avgs, err := Fig4(42, 180)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderFig4(&sb, heat, avgs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ca-central-1") || !strings.Contains(out, "Figure 4b/4c") {
		t.Fatalf("out = %.300q", out)
	}
}

func TestRenderTable1(t *testing.T) {
	rows, err := Table1(42)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"m5.xlarge", "ca-central-1", "c5.2xlarge", "eu-north-1"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q in %q", want, sb.String())
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	env := NewEnv(42)
	strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, RunConfig{
		Workloads:    genWorkloads(t, 42, workload.KindStandard, 5),
		Strategy:     strat,
		InstanceType: catalog.M5XLarge,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SeriesCSV(&sb, "single", res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "strategy,event,elapsed_hours,cumulative\n") {
		t.Fatalf("header = %.80q", out)
	}
	if strings.Count(out, "completion") != res.Completed {
		t.Fatalf("completion rows != %d", res.Completed)
	}
	if strings.Count(out, "interruption") != res.Interruptions {
		t.Fatalf("interruption rows != %d", res.Interruptions)
	}
}
