package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
)

// The paper repeats each experiment three times "to account for
// potential cloud performance and pricing variations" (Section 5.1.2).
// Trials runs an experiment across distinct seeds and aggregates the
// headline metrics.

// ErrNoTrials is returned for a non-positive trial count.
var ErrNoTrials = errors.New("experiment: trials must be positive")

// TrialStats summarises one metric across trials.
type TrialStats struct {
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

func statsOf(xs []float64) TrialStats {
	s := TrialStats{Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			ss += (x - s.Mean) * (x - s.Mean)
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// TrialSummary aggregates the headline metrics across trials.
type TrialSummary struct {
	Trials        int
	Interruptions TrialStats
	MakespanHours TrialStats
	TotalCostUSD  TrialStats
	// Results holds the per-trial results in seed order.
	Results []*Result
}

// Trials runs fn for seeds base, base+1, … base+n-1 and aggregates.
// Trials fan out across the worker pool (each trial builds its own Env
// from its own seed); results land in seed order regardless of worker
// count, so the summary is byte-for-byte the sequential one.
func Trials(n int, base int64, fn func(seed int64) (*Result, error)) (*TrialSummary, error) {
	if n <= 0 {
		return nil, ErrNoTrials
	}
	results, err := Gather(n, func(i int) (*Result, error) {
		seed := base + int64(i)
		var (
			res  *Result
			ferr error
		)
		// The seed label nests inside the CLI's experiment label and the
		// runner's arm label, so -cpuprofile attributes samples per
		// (experiment, seed, arm).
		pprof.Do(context.Background(), pprof.Labels("seed", strconv.FormatInt(seed, 10)), func(context.Context) {
			res, ferr = fn(seed)
		})
		if ferr != nil {
			return nil, fmt.Errorf("trial seed %d: %w", seed, ferr)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	intr := make([]float64, 0, n)
	mk := make([]float64, 0, n)
	cost := make([]float64, 0, n)
	for _, res := range results {
		intr = append(intr, float64(res.Interruptions))
		mk = append(mk, res.MakespanHours)
		cost = append(cost, res.TotalCostUSD)
	}
	return &TrialSummary{
		Trials:        n,
		Interruptions: statsOf(intr),
		MakespanHours: statsOf(mk),
		TotalCostUSD:  statsOf(cost),
		Results:       results,
	}, nil
}
