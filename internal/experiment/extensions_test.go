package experiment

import (
	"testing"

	"spotverse/internal/cost"
)

func TestExtPredictiveLearnsToAvoidTraps(t *testing.T) {
	res, err := ExtPredictive(42, 24)
	if err != nil {
		t.Fatal(err)
	}
	// The learning strategy must beat the price-chasing broker: it
	// starts on cheap regions too, but abandons the ones that keep
	// interrupting it.
	if res.Predictive.Interruptions >= res.SkyPilot.Interruptions {
		t.Errorf("predictive interruptions %d >= skypilot %d",
			res.Predictive.Interruptions, res.SkyPilot.Interruptions)
	}
	if res.Predictive.TotalCostUSD >= res.SkyPilot.TotalCostUSD {
		t.Errorf("predictive cost %v >= skypilot %v",
			res.Predictive.TotalCostUSD, res.SkyPilot.TotalCostUSD)
	}
	// SpotVerse (with advisor access) should remain at least competitive
	// with the from-scratch learner on interruptions.
	if res.SpotVerse.Interruptions > res.SkyPilot.Interruptions {
		t.Errorf("spotverse interruptions %d > skypilot %d under seasonality",
			res.SpotVerse.Interruptions, res.SkyPilot.Interruptions)
	}
	for _, r := range []*Result{res.SpotVerse, res.Predictive, res.SkyPilot} {
		if r.Completed != 24 {
			t.Fatalf("%s completed %d/24", r.StrategyName, r.Completed)
		}
	}
}

func TestExtCheckpointStores(t *testing.T) {
	res, err := ExtCheckpointStores(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.S3.Completed != 20 || res.EFS.Completed != 20 {
		t.Fatalf("completed %d/%d", res.S3.Completed, res.EFS.Completed)
	}
	// Same seed, same interruptions: only the storage channel differs.
	if res.S3.Interruptions != res.EFS.Interruptions {
		t.Fatalf("interruption counts diverged: %d vs %d", res.S3.Interruptions, res.EFS.Interruptions)
	}
	s3Transfer := breakdownOf(res.S3, cost.CategoryS3Transfer) + breakdownOf(res.S3, cost.CategoryS3Storage)
	efsCost := breakdownOf(res.EFS, cost.CategoryEFS)
	if res.S3.Interruptions > 0 {
		if s3Transfer <= 0 {
			t.Error("S3 run recorded no S3 checkpoint costs")
		}
		if efsCost <= 0 {
			t.Error("EFS run recorded no EFS costs")
		}
		if breakdownOf(res.EFS, cost.CategoryS3Transfer) > 0 {
			t.Error("EFS run leaked S3 transfer costs")
		}
	}
}

func TestExtScoringModes(t *testing.T) {
	res, err := ExtScoringModes(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Stability-only (Azure-style) still avoids unstable regions: it
	// must land far closer to combined scoring than to price-only.
	if res.StabilityOnly.Interruptions >= res.PriceOnly.Interruptions {
		t.Errorf("stability-only interruptions %d >= price-only %d",
			res.StabilityOnly.Interruptions, res.PriceOnly.Interruptions)
	}
	if res.Combined.Interruptions > res.PriceOnly.Interruptions {
		t.Errorf("combined interruptions %d > price-only %d",
			res.Combined.Interruptions, res.PriceOnly.Interruptions)
	}
	// Price-only walks into the ca-central-1 trap.
	if res.PriceOnly.InterruptionsByRegion["ca-central-1"] == 0 {
		t.Error("price-only never hit the trap region")
	}
}

func breakdownOf(r *Result, c cost.Category) float64 {
	for _, item := range r.Breakdown {
		if item.Category == c {
			return item.USD
		}
	}
	return 0
}
