package experiment

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/core"
	"spotverse/internal/serve"
	"spotverse/internal/services/stepfn"
)

// This file is the fault-space fuzzer's harness: it runs the full stack
// — experiment driver, journaled + lease-fenced SpotVerse control
// plane, durable checkpoint store — under an arbitrary composite chaos
// schedule and collects every observable the fuzzer's invariants
// inspect into one evidence bundle.

// Exported checkpoint-store coordinates, so fault-plan builders (the
// fault-space fuzzer) can target the durable manifests without
// hard-coding the strings.
const (
	// CheckpointBucket is the primary checkpoint bucket.
	CheckpointBucket = checkpointBucket
	// ManifestPrefix is the key prefix of durable progress manifests.
	ManifestPrefix = manifestPrefix
)

// ScheduleSplitBrains schedules the schedule's split-brain windows
// against one SpotVerse deployment: at each window's From a rival
// controller incarnation spawns (core.SpotVerse.NewRival) and races the
// primary for every relaunch commit until the window's To retires it.
// onSpawn, when non-nil, observes each spawn attempt's outcome.
// Zero-length windows are skipped — like every chaos Window, [t, t)
// contains nothing.
func ScheduleSplitBrains(env *Env, inj *chaos.Injector, sv *core.SpotVerse, onSpawn func(rival *core.Controller, err error)) {
	sched := inj.Schedule()
	if !sched.Enabled() {
		return
	}
	for i, sb := range sched.SplitBrains {
		idx, win := i, sb.Window
		if !win.To.After(win.From) || !win.From.After(env.Engine.Now()) {
			continue
		}
		_, _ = env.Engine.ScheduleAt(win.From, "chaos-split-brain", func() {
			rival, err := sv.NewRival(fmt.Sprintf("sb%d", idx))
			if onSpawn != nil {
				onSpawn(rival, err)
			}
			if err != nil {
				return
			}
			_, _ = env.Engine.ScheduleAt(win.To, "chaos-split-brain-stop", func() {
				rival.Stop()
			})
		})
	}
}

// BreakerTransition is one observed circuit-breaker state change, keyed
// "<controllerID>/<breakerKey>" (see core.Config.BreakerObserver).
type BreakerTransition struct {
	Key   string `json:"key"`
	From  string `json:"from"`
	To    string `json:"to"`
	Trips int    `json:"trips"`
}

// ChaosRunConfig parameterises one fuzz-trial batch run.
type ChaosRunConfig struct {
	// Seed drives every random stream in the run.
	Seed int64
	// Workloads is the checkpoint-workload count.
	Workloads int
	// Schedule is the composite fault plan; windowed events must be
	// anchored at simclock.Epoch (the fresh environment's start).
	Schedule chaos.Schedule
	// DisableFencing forwards core.Config.DisableFencing — the
	// deliberately broken build whose split-brain duplicates the fuzzer
	// must catch.
	DisableFencing bool
	// Horizon caps simulated time (default experiment.DefaultHorizon).
	Horizon time.Duration
}

// ChaosEvidence is everything one batch run exposes to the fuzzer's
// invariant checkers.
type ChaosEvidence struct {
	// Result is the run's full result, including the event Timeline
	// (always traced) and the driver's violation counters.
	Result *Result

	// Controller recovery counters (core.Controller.RecoveryStats).
	Restarts          int
	Replayed          int
	DroppedPendings   int
	RefusedRelaunches int
	JournalLost       int

	// Lease counters (core.Controller.LeaseStats), primary incarnation.
	LeaseAcquires   int
	LeaseRenewals   int
	LeaseTakeovers  int
	LeaseFenced     int
	LeaseLost       int
	CommitDeferrals int

	// Split-brain actuation outcomes: windows whose rival spawned, and
	// windows whose spawn failed (a faulted journal-table read at spawn
	// time, for instance).
	RivalsSpawned    int
	RivalSpawnErrors int

	// Breakers is the ordered breaker-transition feed from every
	// incarnation, exactly as the observer saw it.
	Breakers []BreakerTransition
}

// ChaosRun executes one fuzz trial: a fresh environment at cfg.Seed,
// the journaled + lease-fenced SpotVerse stack, durable replicated
// checkpoints, and cfg.Schedule's full fault plan (including controller
// kills and split-brain windows) actuated against it. The run always
// traces its timeline and tolerates incomplete workloads — deciding
// whether the outcome is acceptable is the invariant checkers' job, not
// the harness's.
func ChaosRun(cfg ChaosRunConfig) (*ChaosEvidence, error) {
	if cfg.Workloads <= 0 {
		cfg.Workloads = CrashWorkloads
	}
	env := NewEnv(cfg.Seed)
	inj := chaos.NewInjector(env.Engine, cfg.Seed, cfg.Schedule)

	ev := &ChaosEvidence{}
	coreCfg := core.Config{
		InstanceType:     catalog.M5XLarge,
		Threshold:        5,
		FixedStartRegion: BaselineRegionM5XLarge,
		Seed:             cfg.Seed,
		RecoveryAfter:    crashRecoveryAfter,
		Journal:          true,
		Lease:            true,
		DisableFencing:   cfg.DisableFencing,
		BreakerObserver: func(key, from, to string, trips int) {
			ev.Breakers = append(ev.Breakers, BreakerTransition{Key: key, From: from, To: to, Trips: trips})
		},
	}
	env.StepFn = stepfn.MustNew(env.Engine, env.Ledger,
		stepfn.Config{MaxAttempts: 5, BaseBackoff: 30 * time.Second, BackoffRate: 2, Jitter: 0.4, Seed: cfg.Seed})
	ApplyChaos(env, inj)
	sv, err := newSpotVerse(env, coreCfg)
	if err != nil {
		return nil, fmt.Errorf("fuzz harness: %w", err)
	}
	ScheduleControllerKills(env, inj, sv)
	ScheduleSplitBrains(env, inj, sv, func(_ *core.Controller, err error) {
		if err != nil {
			ev.RivalSpawnErrors++
			return
		}
		ev.RivalsSpawned++
	})

	ws, err := genCheckpoint(cfg.Seed, cfg.Workloads)
	if err != nil {
		return nil, err
	}
	res, err := Run(env, RunConfig{
		Workloads:       ws,
		Strategy:        sv,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		DisableSweep:    true,
		Durability:      DurabilityReplicated,
		Trace:           true,
		Horizon:         cfg.Horizon,
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz harness: %w", err)
	}
	ev.Result = res
	ev.Restarts, ev.Replayed, ev.DroppedPendings, ev.RefusedRelaunches, ev.JournalLost, _ =
		sv.Controller().RecoveryStats()
	ev.LeaseAcquires, ev.LeaseRenewals, ev.LeaseTakeovers, ev.LeaseFenced, ev.LeaseLost, ev.CommitDeferrals =
		sv.Controller().LeaseStats()
	return ev, nil
}

// Fingerprint folds every observable of the run — completion and
// violation counters, costs at micro-dollar precision, the full event
// timeline, the breaker feed, and the lease counters — into one hash.
// Two runs of the same plan must produce identical fingerprints; the
// fuzzer's determinism arm and the repro replayer both compare them.
func (e *ChaosEvidence) Fingerprint() string {
	h := fnv.New64a()
	add := func(parts ...string) {
		for _, p := range parts {
			_, _ = h.Write([]byte(p))
			_, _ = h.Write([]byte{0})
		}
	}
	r := e.Result
	add(strconv.Itoa(r.Workloads), strconv.Itoa(r.Completed), strconv.Itoa(r.Interruptions),
		strconv.Itoa(r.OnDemandLaunches), strconv.Itoa(r.LostShards),
		strconv.Itoa(r.DuplicateRelaunches), strconv.Itoa(r.UndetectedCorruption),
		strconv.FormatFloat(r.TotalCostUSD, 'f', 6, 64),
		strconv.FormatFloat(r.MakespanHours, 'f', 6, 64))
	regions := make([]string, 0, len(r.LaunchesByRegion))
	for reg := range r.LaunchesByRegion {
		regions = append(regions, string(reg))
	}
	sort.Strings(regions)
	for _, reg := range regions {
		add(reg, strconv.Itoa(r.LaunchesByRegion[catalog.Region(reg)]))
	}
	for _, tev := range r.Timeline.Events() {
		add(tev.At.Format(time.RFC3339Nano), string(tev.Kind), tev.Workload,
			string(tev.Instance), string(tev.Region))
	}
	for _, b := range e.Breakers {
		add(b.Key, b.From, b.To, strconv.Itoa(b.Trips))
	}
	add(strconv.Itoa(e.Restarts), strconv.Itoa(e.Replayed), strconv.Itoa(e.DroppedPendings),
		strconv.Itoa(e.RefusedRelaunches), strconv.Itoa(e.JournalLost),
		strconv.Itoa(e.LeaseAcquires), strconv.Itoa(e.LeaseRenewals), strconv.Itoa(e.LeaseTakeovers),
		strconv.Itoa(e.LeaseFenced), strconv.Itoa(e.LeaseLost), strconv.Itoa(e.CommitDeferrals),
		strconv.Itoa(e.RivalsSpawned), strconv.Itoa(e.RivalSpawnErrors))
	return strconv.FormatUint(h.Sum64(), 16)
}

// NewServeSimWith deploys a serving environment under a caller-supplied
// chaos schedule — the fault-space fuzzer's serve arm, which builds its
// own short-timebase schedules instead of the intensity presets.
// Windowed events must be anchored at simclock.Epoch.
func NewServeSimWith(seed int64, sched chaos.Schedule) (*ServeSim, error) {
	env := NewEnv(seed)
	inj := chaos.NewInjector(env.Engine, seed, sched)
	ApplyChaos(env, inj)
	mgr, err := newSpotVerse(env, core.Config{
		InstanceType: catalog.M5XLarge,
		Threshold:    5,
		Seed:         seed,
		StaleAfter:   6 * time.Hour,
		StaleCutoff:  48 * time.Hour,
	})
	if err != nil {
		return nil, fmt.Errorf("serve sim: %w", err)
	}
	backend := serve.NewSimBackend(env.Engine, mgr)
	backend.SetFault(inj.ServiceFault(chaos.ServiceServe))
	return &ServeSim{Env: env, Manager: mgr, Backend: backend, Injector: inj}, nil
}
