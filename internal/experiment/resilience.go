package experiment

import (
	"fmt"
	"io"
	"time"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/core"
	"spotverse/internal/report"
	"spotverse/internal/services/stepfn"
	"spotverse/internal/strategy"
)

// ---------------------------------------------------------------------
// Resilience: completion and cost under control-plane chaos.
// ---------------------------------------------------------------------

// ResilienceWorkloads is the checkpoint-workload count per cell of the
// resilience sweep (smaller than EvalInstances: the matrix is 4x4 runs).
const ResilienceWorkloads = 20

// Resilience strategy labels.
const (
	StrategySpotVerse = "spotverse"
	// StrategyNoRetry is the hardening ablation: single-attempt Step
	// Functions, no recovery sweep, no breakers, no staleness handling.
	StrategyNoRetry  = "spotverse-noretry"
	StrategySkyPilot = "skypilot"
	StrategyOnDemand = "on-demand"
)

// ResilienceStrategies is the default strategy set, in render order.
var ResilienceStrategies = []string{StrategySpotVerse, StrategyNoRetry, StrategySkyPilot, StrategyOnDemand}

// ResilienceIntensities is the default intensity sweep.
var ResilienceIntensities = []chaos.Intensity{chaos.Off, chaos.Low, chaos.Medium, chaos.Severe}

// ResilienceRow is one (strategy, intensity) cell of the sweep.
type ResilienceRow struct {
	Strategy  string
	Intensity chaos.Intensity
	Workloads int
	Completed int
	// CompletionRate is Completed/Workloads.
	CompletionRate float64
	TotalCostUSD   float64
	// CostInflation is TotalCostUSD over the same strategy's intensity-0
	// cost (1.0 = no inflation; 0 when no baseline cell ran).
	CostInflation float64
	MakespanHours float64
	// MakespanInflation mirrors CostInflation for makespan.
	MakespanInflation float64
	Interruptions     int
	// Retries counts Step Functions attempts beyond each execution's
	// first; Exhausted counts executions that ran out of attempts.
	Retries   int64
	Exhausted int64
	// BreakerTrips and Recoveries come from the Controller's hardening
	// counters (zero for baselines, which bypass the control plane).
	BreakerTrips int
	Recoveries   int
	// FaultsInjected and DroppedEvents come from the injector and bus.
	FaultsInjected int
	DroppedEvents  int64
}

// ApplyChaos installs the injector's interceptors on every service in
// the environment. Call it after any service swaps (e.g. replacing
// Env.StepFn with a jittered machine) and before constructing the
// strategy, so rules and schedules registered later are also covered.
// Data-loss events in the schedule — bucket losses — are scheduled on
// the engine here; controller kills need a manager reference and are
// scheduled separately (ScheduleControllerKills).
func ApplyChaos(env *Env, inj *chaos.Injector) {
	env.Dynamo.SetFault(inj.ServiceFault(chaos.ServiceDynamo))
	env.S3.SetFault(inj.ServiceFault(chaos.ServiceS3))
	env.S3.SetCorrupt(inj.CorruptGet)
	env.EFS.SetFault(inj.ServiceFault(chaos.ServiceEFS))
	env.Lambda.SetFault(inj.ServiceFault(chaos.ServiceLambda))
	env.Lambda.SetLatency(inj.Latency)
	env.Bus.SetFault(inj.ServiceFault(chaos.ServiceEventBridge))
	env.Bus.SetDrop(inj.Drop)
	env.CloudWatch.SetFault(inj.ServiceFault(chaos.ServiceCloudWatch))
	env.StepFn.SetFault(inj.ServiceFault(chaos.ServiceStepFn))
	if sched := inj.Schedule(); sched.Enabled() {
		for _, bl := range sched.BucketLosses {
			loss := bl
			if !loss.At.After(env.Engine.Now()) {
				continue
			}
			_, _ = env.Engine.ScheduleAt(loss.At, "chaos-bucket-loss:"+loss.Bucket, func() {
				// Wiping a bucket that was never created is a no-op.
				_ = env.S3.WipeBucket(loss.Bucket)
			})
		}
	}
}

// ScheduleControllerKills schedules the schedule's controller kills
// against one SpotVerse deployment: at each instant the control plane
// crash-restarts (losing its in-memory state; see core.CrashRestart).
func ScheduleControllerKills(env *Env, inj *chaos.Injector, sv *core.SpotVerse) {
	sched := inj.Schedule()
	if !sched.Enabled() {
		return
	}
	for _, k := range sched.ControllerKills {
		kill := k
		if !kill.At.After(env.Engine.Now()) {
			continue
		}
		_, _ = env.Engine.ScheduleAt(kill.At, "chaos-controller-kill", func() {
			sv.CrashRestart()
		})
	}
}

// resilienceSchedule is the sweep's fault plan: the intensity preset,
// plus — from Medium up — a three-day collector silence that ages the
// advisor snapshots into the Optimizer's degraded-mode path.
func resilienceSchedule(i chaos.Intensity, start time.Time) chaos.Schedule {
	sched := chaos.Preset(i, start)
	if i >= chaos.Medium {
		sched.OpOutages = append(sched.OpOutages, chaos.OpOutage{
			Service:  chaos.ServiceLambda,
			OpPrefix: "invoke:" + core.CollectorFunction,
			Window:   chaos.Window{From: start.Add(24 * time.Hour), To: start.Add(96 * time.Hour)},
		})
	}
	return sched
}

// resilienceCell runs one (strategy, intensity) cell.
func resilienceCell(name string, seed int64, intensity chaos.Intensity, n int) (*ResilienceRow, error) {
	env := NewEnv(seed)
	start := env.Engine.Now()
	inj := chaos.NewInjector(env.Engine, seed, resilienceSchedule(intensity, start))

	var strat strategy.Strategy
	var sv *core.SpotVerse
	disableSweep := false
	switch name {
	case StrategySpotVerse, StrategyNoRetry:
		cfg := core.Config{
			InstanceType:     catalog.M5XLarge,
			Threshold:        5,
			FixedStartRegion: BaselineRegionM5XLarge,
			Seed:             seed,
			StaleAfter:       6 * time.Hour,
			StaleCutoff:      48 * time.Hour,
		}
		sfCfg := stepfn.Config{MaxAttempts: 5, BaseBackoff: 30 * time.Second, BackoffRate: 2, Jitter: 0.4, Seed: seed}
		if name == StrategyNoRetry {
			cfg.DisableRecovery = true
			cfg.DisableBreakers = true
			cfg.StaleAfter = 0
			cfg.StaleCutoff = 0
			sfCfg = stepfn.Config{MaxAttempts: 1, BaseBackoff: 30 * time.Second}
		}
		env.StepFn = stepfn.MustNew(env.Engine, env.Ledger, sfCfg)
		ApplyChaos(env, inj)
		s, err := newSpotVerse(env, cfg)
		if err != nil {
			return nil, fmt.Errorf("resilience %s: %w", name, err)
		}
		sv, strat, disableSweep = s, s, true
	case StrategySkyPilot:
		ApplyChaos(env, inj)
		s, err := baselines.NewSkyPilotLike(env.Engine, env.Market, catalog.M5XLarge)
		if err != nil {
			return nil, fmt.Errorf("resilience %s: %w", name, err)
		}
		strat = s
	case StrategyOnDemand:
		ApplyChaos(env, inj)
		s, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
		if err != nil {
			return nil, fmt.Errorf("resilience %s: %w", name, err)
		}
		strat = s
	default:
		return nil, fmt.Errorf("resilience: unknown strategy %q", name)
	}

	ws, err := genCheckpoint(seed, n)
	if err != nil {
		return nil, err
	}
	res, err := Run(env, RunConfig{
		Workloads:       ws,
		Strategy:        strat,
		InstanceType:    catalog.M5XLarge,
		AllowIncomplete: true,
		DisableSweep:    disableSweep,
	})
	if err != nil {
		return nil, fmt.Errorf("resilience %s@%s: %w", name, intensity, err)
	}

	executions, transitions, exhausted := env.StepFn.Stats()
	row := &ResilienceRow{
		Strategy:       name,
		Intensity:      intensity,
		Workloads:      res.Workloads,
		Completed:      res.Completed,
		CompletionRate: float64(res.Completed) / float64(res.Workloads),
		TotalCostUSD:   res.TotalCostUSD,
		MakespanHours:  res.MakespanHours,
		Interruptions:  res.Interruptions,
		Retries:        transitions - executions,
		Exhausted:      exhausted,
		FaultsInjected: inj.Stats().Total,
		DroppedEvents:  env.Bus.Dropped(),
	}
	if sv != nil {
		row.Recoveries, row.BreakerTrips, _ = sv.Controller().ResilienceStats()
	}
	return row, nil
}

// ResilienceMatrix runs the sweep over the given strategies and
// intensities (both in order), filling per-strategy inflation ratios
// against each strategy's intensity-0 cell. Every (strategy, intensity)
// cell builds its own environment, so all cells fan out across the worker
// pool at once; the inflation ratios are filled in a sequential second
// pass over the ordered rows, keeping the table independent of worker
// count.
func ResilienceMatrix(seed int64, strategies []string, intensities []chaos.Intensity, n int) ([]ResilienceRow, error) {
	cells, err := Gather(len(strategies)*len(intensities), func(idx int) (*ResilienceRow, error) {
		name := strategies[idx/len(intensities)]
		intensity := intensities[idx%len(intensities)]
		return resilienceCell(name, seed, intensity, n)
	})
	if err != nil {
		return nil, err
	}
	out := make([]ResilienceRow, 0, len(cells))
	for si := range strategies {
		var base *ResilienceRow
		for ii, intensity := range intensities {
			row := cells[si*len(intensities)+ii]
			if intensity == chaos.Off {
				base = row
			}
			if base != nil {
				if base.TotalCostUSD > 0 {
					row.CostInflation = row.TotalCostUSD / base.TotalCostUSD
				}
				if base.MakespanHours > 0 {
					row.MakespanInflation = row.MakespanHours / base.MakespanHours
				}
			}
			out = append(out, *row)
		}
	}
	return out, nil
}

// Resilience runs the full default sweep: every strategy at every
// intensity over ResilienceWorkloads checkpoint workloads.
func Resilience(seed int64) ([]ResilienceRow, error) {
	return ResilienceMatrix(seed, ResilienceStrategies, ResilienceIntensities, ResilienceWorkloads)
}

// RenderResilience prints the sweep as the chaos experiment's table.
func RenderResilience(w io.Writer, rows []ResilienceRow) error {
	t := report.NewTable("Resilience under control-plane chaos (checkpoint workloads, 14-day horizon)",
		"strategy", "intensity", "completed", "rate", "cost", "cost-infl", "makespan-h", "mk-infl",
		"interrupts", "retries", "exhausted", "trips", "recoveries", "faults", "dropped-ev")
	for _, r := range rows {
		t.MustAddRow(
			r.Strategy,
			r.Intensity.String(),
			fmt.Sprintf("%d/%d", r.Completed, r.Workloads),
			report.Pct(r.CompletionRate),
			report.USD(r.TotalCostUSD),
			report.F(r.CostInflation, 2)+"x",
			report.F(r.MakespanHours, 1),
			report.F(r.MakespanInflation, 2)+"x",
			fmt.Sprintf("%d", r.Interruptions),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Exhausted),
			fmt.Sprintf("%d", r.BreakerTrips),
			fmt.Sprintf("%d", r.Recoveries),
			fmt.Sprintf("%d", r.FaultsInjected),
			fmt.Sprintf("%d", r.DroppedEvents),
		)
	}
	return t.Render(w)
}
