package experiment

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"spotverse/internal/catalog"
	"spotverse/internal/report"
)

// This file renders each experiment's results in the shape the paper
// reports them: summary tables plus the series behind the figures.

func renderRunRow(t *report.Table, label string, r *Result) {
	t.MustAddRow(label,
		strconv.Itoa(r.Interruptions),
		report.F(r.MakespanHours, 1),
		report.USD(r.TotalCostUSD),
		strconv.Itoa(r.Completed),
	)
}

// RenderFig2 writes per-(type,AZ) price summaries plus a CSV of the
// series.
func RenderFig2(w io.Writer, series []Fig2Series) error {
	t := report.NewTable("Figure 2 — spot price diversity (USD/h)", "type", "az", "mean", "min", "max")
	for _, s := range series {
		t.MustAddRow(string(s.Type), string(s.AZ), report.F(s.Mean, 4), report.F(s.Min, 4), report.F(s.Max, 4))
	}
	return t.Render(w)
}

// Fig2CSV writes the raw daily price series.
func Fig2CSV(w io.Writer, series []Fig2Series) error {
	rows := make([][]string, 0, 1024)
	for _, s := range series {
		for _, p := range s.Points {
			rows = append(rows, []string{
				string(s.Type), string(s.AZ), p.Time.Format("2006-01-02"), report.F(p.USDPerHour, 5),
			})
		}
	}
	return report.CSV(w, []string{"type", "az", "date", "usd_per_hour"}, rows)
}

// RenderFig3 writes the motivational comparison.
func RenderFig3(w io.Writer, results []Fig3Result) error {
	t := report.NewTable("Figure 3 — single vs naive multi-region (42 workloads, m5.xlarge)",
		"workload", "deployment", "interruptions", "makespan_h", "cost", "saving")
	for _, r := range results {
		t.MustAddRow(r.Kind.String(), "single-region", strconv.Itoa(r.Single.Interruptions),
			report.F(r.Single.MakespanHours, 1), report.USD(r.Single.TotalCostUSD), "-")
		t.MustAddRow(r.Kind.String(), "multi-region", strconv.Itoa(r.Multi.Interruptions),
			report.F(r.Multi.MakespanHours, 1), report.USD(r.Multi.TotalCostUSD),
			report.Pct(r.CostSaving)+" cost, "+report.Pct(r.TimeSaving)+" time")
	}
	return t.Render(w)
}

// RenderFig4 writes the heatmap summary and score trajectories.
func RenderFig4(w io.Writer, heat []Fig4Heatmap, avgs []Fig4Averages) error {
	t := report.NewTable("Figure 4a — m5.2xlarge Interruption Frequency by region (monthly fraction)",
		"region", "day0", "day45", "day90", "day135", "day179", "min", "max")
	for _, h := range heat {
		n := len(h.Frequencies)
		pick := func(i int) string {
			if i >= n {
				i = n - 1
			}
			return report.F(h.Frequencies[i], 3)
		}
		lo, hi := h.Frequencies[0], h.Frequencies[0]
		for _, f := range h.Frequencies {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		t.MustAddRow(string(h.Region), pick(0), pick(45), pick(90), pick(135), pick(179),
			report.F(lo, 3), report.F(hi, 3))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := report.NewTable("Figure 4b/4c — six-month average Stability Score and SPS",
		"type", "avg_stability_d0", "avg_stability_d179", "avg_sps_d0", "avg_sps_d179")
	for _, a := range avgs {
		last := len(a.AvgStability) - 1
		t2.MustAddRow(string(a.Type),
			report.F(a.AvgStability[0], 2), report.F(a.AvgStability[last], 2),
			report.F(a.AvgSPS[0], 2), report.F(a.AvgSPS[last], 2))
	}
	return t2.Render(w)
}

// Fig4CSV writes the raw daily advisor series behind Fig. 4: the
// m5.2xlarge Interruption-Frequency heatmap plus the per-type average
// Stability Score and SPS trajectories.
func Fig4CSV(w io.Writer, heat []Fig4Heatmap, avgs []Fig4Averages) error {
	var rows [][]string
	for _, h := range heat {
		for d, f := range h.Frequencies {
			rows = append(rows, []string{
				"heatmap", "m5.2xlarge", string(h.Region), strconv.Itoa(d), report.F(f, 4), "", "",
			})
		}
	}
	for _, a := range avgs {
		for d := range a.AvgStability {
			rows = append(rows, []string{
				"averages", string(a.Type), "", strconv.Itoa(d), "",
				report.F(a.AvgStability[d], 3), report.F(a.AvgSPS[d], 3),
			})
		}
	}
	return report.CSV(w, []string{"series", "type", "region", "day", "interruption_frequency", "avg_stability", "avg_sps"}, rows)
}

// RenderFig7 writes the headline comparison with the on-demand
// comparator and the interruption distribution.
func RenderFig7(w io.Writer, results []Fig7Result) error {
	t := report.NewTable("Figure 7 — single-region vs SpotVerse (40 workloads, m5.xlarge, start ca-central-1)",
		"workload", "strategy", "interruptions", "makespan_h", "cost", "completed")
	for _, r := range results {
		renderRunRowKind(t, r.Kind.String(), "single-region", r.Single)
		renderRunRowKind(t, r.Kind.String(), "spotverse", r.SpotVerse)
		t.MustAddRow(r.Kind.String(), "on-demand (comparator)", "0", "-", report.USD(r.OnDemandCostUSD), "-")
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// Fig. 7c: regional interruption distribution.
	t2 := report.NewTable("Figure 7c — interruption distribution by region (standard workload)",
		"strategy", "region", "interruptions")
	for _, r := range results {
		if r.Kind.String() != "standard" {
			continue
		}
		for _, pair := range sortedRegionCounts(r.Single.InterruptionsByRegion) {
			t2.MustAddRow("single-region", string(pair.region), strconv.Itoa(pair.n))
		}
		for _, pair := range sortedRegionCounts(r.SpotVerse.InterruptionsByRegion) {
			t2.MustAddRow("spotverse", string(pair.region), strconv.Itoa(pair.n))
		}
	}
	return t2.Render(w)
}

func renderRunRowKind(t *report.Table, kind, label string, r *Result) {
	t.MustAddRow(kind, label,
		strconv.Itoa(r.Interruptions),
		report.F(r.MakespanHours, 1),
		report.USD(r.TotalCostUSD),
		strconv.Itoa(r.Completed),
	)
}

type regionCount struct {
	region catalog.Region
	n      int
}

func sortedRegionCounts(m map[catalog.Region]int) []regionCount {
	out := make([]regionCount, 0, len(m))
	for r, n := range m {
		out = append(out, regionCount{r, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].region < out[j].region })
	return out
}

// SeriesCSV writes cumulative interruption and completion series for one
// run (Figs. 7a/7b).
func SeriesCSV(w io.Writer, label string, r *Result) error {
	rows := make([][]string, 0, len(r.InterruptionStamps)+len(r.CompletionStamps))
	for i, ts := range r.InterruptionStamps {
		rows = append(rows, []string{label, "interruption", report.F(ts.Sub(r.Start).Hours(), 3), strconv.Itoa(i + 1)})
	}
	for i, ts := range r.CompletionStamps {
		rows = append(rows, []string{label, "completion", report.F(ts.Sub(r.Start).Hours(), 3), strconv.Itoa(i + 1)})
	}
	return report.CSV(w, []string{"strategy", "event", "elapsed_hours", "cumulative"}, rows)
}

// RenderFig8 writes the type/size comparison.
func RenderFig8(w io.Writer, title string, rows []Fig8Row) error {
	t := report.NewTable(title,
		"type", "baseline_region", "strategy", "interruptions", "makespan_h", "cost", "vs_on_demand")
	for _, row := range rows {
		t.MustAddRow(string(row.Type), string(row.BaselineRegion), "single-region",
			strconv.Itoa(row.Single.Interruptions), report.F(row.Single.MakespanHours, 1),
			report.USD(row.Single.TotalCostUSD), report.Pct(1-row.Single.TotalCostUSD/row.OnDemandCostUSD))
		t.MustAddRow(string(row.Type), string(row.BaselineRegion), "spotverse",
			strconv.Itoa(row.SpotVerse.Interruptions), report.F(row.SpotVerse.MakespanHours, 1),
			report.USD(row.SpotVerse.TotalCostUSD), report.Pct(1-row.SpotVerse.TotalCostUSD/row.OnDemandCostUSD))
	}
	return t.Render(w)
}

// RenderFig9 writes the initial-distribution comparison.
func RenderFig9(w io.Writer, results []Fig9Result) error {
	t := report.NewTable("Figure 9 — impact of the initial regional distribution (SpotVerse)",
		"workload", "start", "interruptions", "makespan_h", "cost", "completed")
	for _, r := range results {
		renderRunRowKind(t, r.Kind.String(), "fixed (ca-central-1)", r.FixedStart)
		renderRunRowKind(t, r.Kind.String(), "spread (top-4 regions)", r.Spread)
	}
	return t.Render(w)
}

// RenderFig10 writes the threshold sweep with normalized costs, plus the
// Table 3 selection.
func RenderFig10(w io.Writer, cells []Fig10Cell, selection map[int][]catalog.Region) error {
	t := report.NewTable("Figure 10 — normalized cost vs cheapest on-demand (m5.xlarge)",
		"threshold", "duration_h", "spot_cost", "ondemand_cost", "normalized")
	for _, c := range cells {
		t.MustAddRow(strconv.Itoa(c.Threshold), strconv.Itoa(c.DurationHours),
			report.USD(c.SpotVerse.TotalCostUSD), report.USD(c.OnDemandCostUSD),
			report.F(c.NormalizedCost, 3))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := report.NewTable("Table 3 — regions selected per threshold", "threshold", "regions")
	thresholds := make([]int, 0, len(selection))
	for k := range selection {
		thresholds = append(thresholds, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(thresholds)))
	for _, th := range thresholds {
		regions := ""
		for i, r := range selection[th] {
			if i > 0 {
				regions += ", "
			}
			regions += string(r)
		}
		t2.MustAddRow(strconv.Itoa(th), regions)
	}
	return t2.Render(w)
}

// RenderTable1 writes the baseline-region table.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	t := report.NewTable("Table 1 — baseline (cheapest spot) regions", "instance_type", "baseline_region", "avg_spot_usd_h")
	for _, r := range rows {
		t.MustAddRow(string(r.Type), string(r.Region), report.F(r.AvgSpotUSD, 4))
	}
	return t.Render(w)
}

// RenderExtensions writes the Section 7 future-work experiment results.
func RenderExtensions(w io.Writer, pred *ExtPredictiveResult, ckpt *ExtCheckpointStoresResult, scoring *ExtScoringModesResult) error {
	t := report.NewTable("Extension — learning strategy under hour-of-week seasonality",
		"strategy", "interruptions", "makespan_h", "cost", "completed")
	renderRunRow(t, "spotverse (advisor)", pred.SpotVerse)
	renderRunRow(t, "predictive (learned)", pred.Predictive)
	renderRunRow(t, "skypilot (price-only)", pred.SkyPilot)
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := report.NewTable("Extension — checkpoint storage: S3 vs EFS",
		"store", "interruptions", "makespan_h", "cost", "completed")
	renderRunRow(t2, "s3", ckpt.S3)
	renderRunRow(t2, "efs", ckpt.EFS)
	if err := t2.Render(w); err != nil {
		return err
	}
	t3 := report.NewTable("Extension — multi-provider scoring degradations",
		"scoring", "interruptions", "makespan_h", "cost", "completed")
	renderRunRow(t3, "combined (AWS)", scoring.Combined)
	renderRunRow(t3, "stability-only (Azure-like)", scoring.StabilityOnly)
	renderRunRow(t3, "price-only (GCP-like)", scoring.PriceOnly)
	return t3.Render(w)
}

// RenderTable4 writes the SkyPilot head-to-head.
func RenderTable4(w io.Writer, res *Table4Result) error {
	t := report.NewTable("Table 4 — SpotVerse vs SkyPilot (40 standard workloads, m5.xlarge)",
		"framework", "interruptions", "makespan_h", "cost", "completed")
	renderRunRow(t, "spotverse", res.SpotVerse)
	renderRunRow(t, "skypilot", res.SkyPilot)
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "cost reduction: %s, completion-time reduction: %s\n",
		report.Pct(1-res.SpotVerse.TotalCostUSD/res.SkyPilot.TotalCostUSD),
		report.Pct(1-res.SpotVerse.MakespanHours/res.SkyPilot.MakespanHours))
	return err
}
