package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the harness's parallel runner. The paper's evaluation is a
// large sweep — every table and figure re-simulates 16 regions × many
// instance types, repeated over seeds — and every unit of that sweep is
// independent by construction: each trial, figure cell, and resilience
// cell builds its own Env (engine, market, provider, ledger) from its own
// seed and never touches another unit's state. That makes the sweep
// embarrassingly parallel, and it makes determinism easy to preserve:
// workers write results into index-addressed slots, callers render in the
// original order, and the rendered bytes are identical whether one worker
// ran or sixteen.
//
// The pool is bounded (default GOMAXPROCS) and nesting-tolerant: a ForEach
// inside a ForEach caps its own fan-out rather than drawing from a global
// semaphore, so nested use can mildly oversubscribe the CPUs but can never
// deadlock. With the worker count set to 1 every call degenerates to the
// exact sequential loop, including its early-exit-on-error behaviour.

// workerCount is the process-wide worker bound. Zero and negative values
// are normalised to 1 on read; the default is GOMAXPROCS.
var workerCount atomic.Int64

func init() { workerCount.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers reports the current parallel worker bound (>= 1).
func Workers() int {
	n := int(workerCount.Load())
	if n < 1 {
		return 1
	}
	return n
}

// SetWorkers sets the worker bound used by ForEach and Gather and returns
// the previous value. n <= 1 forces fully sequential execution (the
// byte-identical reference path); the default is GOMAXPROCS.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workerCount.Swap(int64(n)))
}

// ForEach runs fn(0), fn(1), … fn(n-1), fanning out across at most
// Workers() goroutines. Results must be written by fn into index-addressed
// storage; ForEach guarantees nothing about execution order, only that
// every index ran when it returns nil.
//
// Error semantics are deterministic: with one worker the loop stops at the
// first failing index exactly like the sequential code it replaces; with
// several workers every index runs and the error of the lowest failing
// index is returned, so the reported failure does not depend on goroutine
// scheduling.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Gather is ForEach with collection: it runs fn for every index and
// returns the results in index order, so a caller that renders the slice
// sequentially produces output independent of the worker count.
func Gather[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
