package experiment

import (
	"strconv"
	"time"

	"spotverse/internal/services/dynamo"
	"spotverse/internal/workload"
)

// dynamoCheckpointItem serialises a workload's checkpoint state the way
// the paper's NGS workload records per-file progress in DynamoDB.
func dynamoCheckpointItem(w *workload.State, now time.Time) dynamo.Item {
	return dynamo.Item{
		Key: "ckpt#" + w.Spec.ID,
		Attrs: map[string]string{
			"workload":   w.Spec.ID,
			"shardsDone": strconv.Itoa(w.ShardsDone),
			"shards":     strconv.Itoa(w.Spec.Shards),
			"updated":    now.Format(time.RFC3339),
		},
	}
}
