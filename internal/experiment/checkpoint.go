package experiment

import (
	"fmt"
	"strconv"
	"time"

	"spotverse/internal/services/dynamo"
	"spotverse/internal/workload"
)

// dynamoCheckpointItem serialises a workload's checkpoint state the way
// the paper's NGS workload records per-file progress in DynamoDB. Items
// are keyed (workload, shardsDone) so a retried write for the same
// progress point is idempotent: PutIfAbsent either lands the record or
// finds it already durable — a duplicated two-minute-warning path can
// never clobber newer progress with older.
func dynamoCheckpointItem(w *workload.State, shardsDone int, now time.Time) dynamo.Item {
	return dynamo.Item{
		Key: checkpointKey(w.Spec.ID, shardsDone),
		Attrs: map[string]string{
			"workload":   w.Spec.ID,
			"shardsDone": strconv.Itoa(shardsDone),
			"shards":     strconv.Itoa(w.Spec.Shards),
			"updated":    now.Format(time.RFC3339),
		},
	}
}

// checkpointKey is the shard-scoped DynamoDB key for one progress point.
// The shard count is zero-padded to eight digits so lexicographic key
// order (what Scan returns) matches numeric progress order for any
// realistic shard count; four digits broke ordering at 10,000+ shards.
func checkpointKey(id string, shardsDone int) string {
	return fmt.Sprintf("ckpt#%s#%08d", id, shardsDone)
}
