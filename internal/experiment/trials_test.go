package experiment

import (
	"errors"
	"testing"

	"spotverse/internal/baselines"
	"spotverse/internal/catalog"
)

func TestTrialsAggregates(t *testing.T) {
	summary, err := Trials(3, 100, func(seed int64) (*Result, error) {
		env := NewEnv(seed)
		strat, err := baselines.NewSingleRegion(env.Catalog(), catalog.M5XLarge, "ca-central-1")
		if err != nil {
			return nil, err
		}
		ws, err := genStandard(seed, 10)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge})
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Trials != 3 || len(summary.Results) != 3 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.Interruptions.Mean <= 0 {
		t.Fatal("no interruptions across trials in the risky region")
	}
	if summary.Interruptions.Min > summary.Interruptions.Mean || summary.Interruptions.Mean > summary.Interruptions.Max {
		t.Fatalf("stats ordering broken: %+v", summary.Interruptions)
	}
	if summary.Interruptions.Std == 0 && summary.Results[0].Interruptions != summary.Results[1].Interruptions {
		t.Fatal("std zero despite differing trials")
	}
	if summary.TotalCostUSD.Mean <= 0 || summary.MakespanHours.Mean < 10 {
		t.Fatalf("implausible means: %+v", summary)
	}
	// Distinct seeds should actually vary the outcome.
	if summary.Interruptions.Min == summary.Interruptions.Max &&
		summary.TotalCostUSD.Min == summary.TotalCostUSD.Max {
		t.Fatal("trials identical across seeds; seeding broken")
	}
}

func TestTrialsValidation(t *testing.T) {
	if _, err := Trials(0, 1, nil); !errors.Is(err, ErrNoTrials) {
		t.Fatalf("err = %v", err)
	}
	wantErr := errors.New("boom")
	_, err := Trials(2, 1, func(int64) (*Result, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrialsSingleTrialStdZero(t *testing.T) {
	summary, err := Trials(1, 50, func(seed int64) (*Result, error) {
		env := NewEnv(seed)
		strat, err := baselines.NewOnDemand(env.Catalog(), catalog.M5XLarge)
		if err != nil {
			return nil, err
		}
		ws, err := genStandard(seed, 2)
		if err != nil {
			return nil, err
		}
		return Run(env, RunConfig{Workloads: ws, Strategy: strat, InstanceType: catalog.M5XLarge})
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Interruptions.Std != 0 || summary.TotalCostUSD.Std != 0 {
		t.Fatalf("single-trial std nonzero: %+v", summary)
	}
}
