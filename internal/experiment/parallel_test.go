package experiment

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
	if got := SetWorkers(0); got != 5 {
		t.Fatalf("SetWorkers(0) returned previous %d, want 5", got)
	}
	// Non-positive requests mean "sequential", never zero workers.
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", got)
	}
}

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers)
		var hits [17]atomic.Int32
		if err := ForEach(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers)
		err := ForEach(10, func(i int) error {
			if i%3 == 1 { // indices 1, 4, 7 fail
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 1" {
			t.Fatalf("workers=%d: err = %v, want boom 1", workers, err)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	withWorkers(t, 4)
	if err := ForEach(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestGatherPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		withWorkers(t, workers)
		got, err := Gather(50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestGatherErrorDiscardsResults(t *testing.T) {
	withWorkers(t, 4)
	sentinel := errors.New("sentinel")
	res, err := Gather(8, func(i int) (int, error) {
		if i >= 6 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if res != nil {
		t.Fatalf("results should be nil on error, got %v", res)
	}
}

// TestNestedForEach exercises the shape runAll creates: a Gather over
// experiments whose bodies themselves Gather over seeds. The pool is
// per-call, so nesting must complete rather than deadlock.
func TestNestedForEach(t *testing.T) {
	withWorkers(t, 4)
	outer, err := Gather(6, func(i int) (int, error) {
		inner, err := Gather(6, func(j int) (int, error) { return i*10 + j, nil })
		if err != nil {
			return 0, err
		}
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range outer {
		want := i*60 + 15
		if got != want {
			t.Fatalf("outer[%d] = %d, want %d", i, got, want)
		}
	}
}
