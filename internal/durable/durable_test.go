package durable

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/services/s3"
	"spotverse/internal/simclock"
)

var (
	primaryRegion = catalog.Region("us-east-1")
	replicaRegion = catalog.Region("us-west-2")
)

func newTestStore(t *testing.T, replicate bool) (*Store, *s3.Store, *simclock.Engine) {
	t.Helper()
	eng := simclock.NewEngineAt(time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC))
	objects := s3.New(eng, catalog.Default(), cost.NewLedger())
	st, err := New(eng, objects, Config{
		Primary:       "primary",
		PrimaryRegion: primaryRegion,
		Replica:       "replica",
		ReplicaRegion: replicaRegion,
		Replicate:     replicate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, objects, eng
}

func manifest(v int) Manifest {
	return Manifest{
		Workload:   "w1",
		ShardsDone: 5 + v,
		Shards:     20,
		SizeBytes:  1 << 20,
		Version:    v,
		Updated:    time.Date(2023, 7, 1, 1, 0, 0, 0, time.UTC),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := manifest(3)
	got, intact, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !intact {
		t.Fatal("fresh encoding failed its own checksum")
	}
	if got != m {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
}

func TestDecodeDetectsBitFlip(t *testing.T) {
	data := m5Encode(t)
	// Flip one bit mid-payload, the chaos injector's corruption model.
	data[len(data)/2] ^= 0x01
	_, intact, err := Decode(data)
	if err == nil && intact {
		t.Fatal("bit flip passed the integrity check")
	}
}

func m5Encode(t *testing.T) []byte {
	t.Helper()
	return manifest(5).Encode()
}

func TestDecodeGarbage(t *testing.T) {
	if _, _, err := Decode([]byte("not a manifest")); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestVerifiedFailoverAndRepair(t *testing.T) {
	st, objects, eng := newTestStore(t, true)
	if err := st.Put("manifest/w1", manifest(1), primaryRegion); err != nil {
		t.Fatal(err)
	}
	// Let the asynchronous replication land.
	if err := eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Primary copy destroyed: the verified read must fail over to the
	// replica and repair the primary.
	if err := objects.Delete("primary", "manifest/w1"); err != nil {
		t.Fatal(err)
	}
	m, err := st.GetVerified("manifest/w1", primaryRegion)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("failover read version = %d, want 1", m.Version)
	}
	s := st.Stats()
	if s.Failovers != 1 || s.Repairs != 1 {
		t.Fatalf("stats = %+v, want 1 failover and 1 repair", s)
	}
	if !objects.Exists("primary", "manifest/w1") {
		t.Fatal("repair did not rewrite the primary copy")
	}
	// The repaired primary now serves directly.
	if _, err := st.GetVerified("manifest/w1", primaryRegion); err != nil {
		t.Fatal(err)
	}
	if again := st.Stats(); again.Failovers != 1 {
		t.Fatalf("repaired primary still failing over: %+v", again)
	}
}

func TestVerifiedAllCopiesGone(t *testing.T) {
	st, _, _ := newTestStore(t, true)
	_, err := st.GetVerified("manifest/none", primaryRegion)
	if !errors.Is(err, ErrMissing) {
		t.Fatalf("err = %v, want ErrMissing", err)
	}
	if st.Stats().Unrecoverable != 1 {
		t.Fatalf("stats = %+v, want 1 unrecoverable", st.Stats())
	}
}

func TestVerifiedRetriesTransientCorruption(t *testing.T) {
	st, objects, _ := newTestStore(t, false)
	if err := st.Put("manifest/w1", manifest(2), primaryRegion); err != nil {
		t.Fatal(err)
	}
	// Without a replica the verified path is a single primary read:
	// persistent read corruption must surface as ErrCorrupt, not as a
	// silently wrong manifest.
	objects.SetCorrupt(func(bucket, key string) bool { return true })
	if _, err := st.GetVerified("manifest/w1", primaryRegion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if st.Stats().CorruptDetected == 0 {
		t.Fatal("corruption not counted")
	}
	// With the corruption gone the same object reads back clean: the
	// stored bytes were never damaged.
	objects.SetCorrupt(nil)
	if m, err := st.GetVerified("manifest/w1", primaryRegion); err != nil || m.Version != 2 {
		t.Fatalf("clean read = %+v, %v", m, err)
	}
}

func TestBlindReadMissesCorruption(t *testing.T) {
	st, objects, _ := newTestStore(t, false)
	if err := st.Put("manifest/w1", manifest(1), primaryRegion); err != nil {
		t.Fatal(err)
	}
	objects.SetCorrupt(func(bucket, key string) bool { return true })
	m, intact, err := st.GetBlind("manifest/w1", primaryRegion)
	if err != nil {
		// A flip that breaks parsing surfaces as ErrCorrupt — also a
		// valid blind outcome; the omniscient flag matters when it parses.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		return
	}
	if intact {
		t.Fatalf("corrupted blind read reported intact: %+v", m)
	}
}

func TestSyncReplicasHealsWipedBucket(t *testing.T) {
	st, objects, eng := newTestStore(t, true)
	for _, key := range []string{"manifest/w1", "manifest/w2"} {
		if err := st.Put(key, manifest(1), primaryRegion); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := objects.WipeBucket("replica"); err != nil {
		t.Fatal(err)
	}
	repaired, err := st.SyncReplicas("manifest/")
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 2 {
		t.Fatalf("repaired = %d, want 2", repaired)
	}
	for _, key := range []string{"manifest/w1", "manifest/w2"} {
		if !objects.Exists("replica", key) {
			t.Fatalf("replica %s not healed", key)
		}
	}
	// A converged pair needs no further repairs.
	if n, _ := st.SyncReplicas("manifest/"); n != 0 {
		t.Fatalf("converged sweep repaired %d", n)
	}
}

func TestSyncReplicasPrefersNewerVersion(t *testing.T) {
	st, objects, eng := newTestStore(t, true)
	if err := st.Put("manifest/w1", manifest(1), primaryRegion); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Primary advances to version 2 but is then wiped before its
	// replication lands: the sweep must restore from the newest copy it
	// can still verify — the replica's version 1 — not lose the key.
	if err := st.Put("manifest/w1", manifest(2), primaryRegion); err != nil {
		t.Fatal(err)
	}
	if err := objects.WipeBucket("primary"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SyncReplicas("manifest/"); err != nil {
		t.Fatal(err)
	}
	m, err := st.GetVerified("manifest/w1", primaryRegion)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("restored version = %d, want 1 (the surviving copy)", m.Version)
	}
}
