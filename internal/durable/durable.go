// Package durable layers an integrity-checked, cross-region-replicated
// checkpoint-manifest store over the simulated S3 substrate. Each
// manifest is a small CRC-checksummed record of one workload's durable
// progress; writes land in a primary bucket and replicate asynchronously
// to a standby bucket in another region. The verified read path detects
// corruption and missing objects, fails over to the replica, and repairs
// the bad copy; a periodic anti-entropy sweep re-replicates divergent
// shards so a whole-bucket loss heals within one sweep interval.
//
// The blind read path exists for the ablation: it reads the primary
// once and trusts whatever parses, the single-region unverified model
// the paper's checkpoint store implicitly assumes.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/services/s3"
	"spotverse/internal/simclock"
)

// Errors returned by the store.
var (
	// ErrMissing means no copy of the manifest could be fetched.
	ErrMissing = errors.New("durable: manifest missing")
	// ErrCorrupt means every fetched copy failed its integrity check.
	ErrCorrupt = errors.New("durable: manifest corrupt in every replica")
)

// castagnoli is the CRC-32C table used for manifest checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Manifest records one workload's durable checkpoint state.
type Manifest struct {
	// Workload is the owning workload ID.
	Workload string
	// ShardsDone is the progress point this manifest certifies.
	ShardsDone int
	// Shards is the workload's total shard count.
	Shards int
	// SizeBytes is the checkpointed slice size.
	SizeBytes int64
	// Version orders writes to the same key (monotone per workload).
	Version int
	// Updated is when the manifest was written.
	Updated time.Time
}

const manifestHeader = "spotverse-manifest/v1"

// Encode serialises the manifest with a trailing CRC-32C line over the
// payload above it.
func (m Manifest) Encode() []byte {
	payload := fmt.Sprintf("%s\nworkload=%s\nshardsDone=%d\nshards=%d\nsize=%d\nversion=%d\nupdated=%s\n",
		manifestHeader, m.Workload, m.ShardsDone, m.Shards, m.SizeBytes, m.Version,
		m.Updated.Format(time.RFC3339))
	return []byte(fmt.Sprintf("%scrc=%08x\n", payload, crc32.Checksum([]byte(payload), castagnoli)))
}

// Decode parses an encoded manifest, reporting whether the checksum
// verified. A parse error returns err != nil; a clean parse with a bad
// CRC returns the parsed manifest with intact == false, which is how
// silent bit flips in non-semantic bytes surface.
func Decode(data []byte) (m Manifest, intact bool, err error) {
	text := string(data)
	crcIdx := strings.LastIndex(text, "crc=")
	if crcIdx < 0 {
		return Manifest{}, false, fmt.Errorf("durable: no checksum line")
	}
	payload, crcLine := text[:crcIdx], strings.TrimSuffix(text[crcIdx:], "\n")
	want, perr := strconv.ParseUint(strings.TrimPrefix(crcLine, "crc="), 16, 64)
	if perr == nil {
		intact = crc32.Checksum([]byte(payload), castagnoli) == uint32(want)
	}
	fields := map[string]string{}
	for _, line := range strings.Split(payload, "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			fields[k] = v
		}
	}
	if m.ShardsDone, err = strconv.Atoi(fields["shardsDone"]); err != nil {
		return Manifest{}, false, fmt.Errorf("durable: shardsDone: %w", err)
	}
	if m.Shards, err = strconv.Atoi(fields["shards"]); err != nil {
		return Manifest{}, false, fmt.Errorf("durable: shards: %w", err)
	}
	if m.SizeBytes, err = strconv.ParseInt(fields["size"], 10, 64); err != nil {
		return Manifest{}, false, fmt.Errorf("durable: size: %w", err)
	}
	if m.Version, err = strconv.Atoi(fields["version"]); err != nil {
		return Manifest{}, false, fmt.Errorf("durable: version: %w", err)
	}
	m.Workload = fields["workload"]
	m.Updated, _ = time.Parse(time.RFC3339, fields["updated"])
	return m, intact, nil
}

// Config parameterises a Store.
type Config struct {
	// Primary bucket and its home region (created if absent).
	Primary       string
	PrimaryRegion catalog.Region
	// Replica bucket and region; ignored unless Replicate is set.
	Replica       string
	ReplicaRegion catalog.Region
	// Replicate enables asynchronous cross-region replication, verified
	// failover reads, and the anti-entropy sweep. Off, the store is the
	// single-region unverified ablation.
	Replicate bool
	// ReplicationLag is the asynchronous replication delay (default 1m).
	ReplicationLag time.Duration
}

// Stats counts what the durability layer did.
type Stats struct {
	// Writes and Replications count primary puts and replica copies.
	Writes, Replications int
	// CorruptDetected counts integrity-check failures on reads.
	CorruptDetected int
	// Failovers counts verified reads served by a non-first copy.
	Failovers int
	// Repairs counts bad/missing copies rewritten from a good one
	// (read-path repairs plus anti-entropy re-replications).
	Repairs int
	// Unrecoverable counts verified reads where every copy was bad.
	Unrecoverable int
}

// Store is the durability layer over one or two S3 buckets.
type Store struct {
	eng   *simclock.Engine
	store *s3.Store
	cfg   Config
	stats Stats
}

// New builds the layer, creating any missing buckets.
func New(eng *simclock.Engine, store *s3.Store, cfg Config) (*Store, error) {
	if cfg.ReplicationLag <= 0 {
		cfg.ReplicationLag = time.Minute
	}
	if err := store.CreateBucket(cfg.Primary, cfg.PrimaryRegion); err != nil && !errors.Is(err, s3.ErrBucketExists) {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if cfg.Replicate {
		if err := store.CreateBucket(cfg.Replica, cfg.ReplicaRegion); err != nil && !errors.Is(err, s3.ErrBucketExists) {
			return nil, fmt.Errorf("durable: %w", err)
		}
	}
	return &Store{eng: eng, store: store, cfg: cfg}, nil
}

// Stats reports the durability counters.
func (st *Store) Stats() Stats { return st.stats }

// Put writes the manifest to the primary bucket and, when replication is
// on, schedules the asynchronous replica copy.
func (st *Store) Put(key string, m Manifest, from catalog.Region) error {
	data := m.Encode()
	if err := st.store.Put(st.cfg.Primary, key, data, from); err != nil {
		return err
	}
	st.stats.Writes++
	if st.cfg.Replicate {
		st.eng.ScheduleAfter(st.cfg.ReplicationLag, "durable-replicate:"+key, func() {
			// The captured bytes are the version that was acknowledged;
			// a newer primary write replicates on its own schedule.
			if err := st.store.Put(st.cfg.Replica, key, data, st.cfg.PrimaryRegion); err == nil {
				st.stats.Replications++
			}
		})
	}
	return nil
}

// fetch reads one copy and decodes it, classifying the outcome.
func (st *Store) fetch(bucket, key string, from catalog.Region) (Manifest, error) {
	obj, err := st.store.Get(bucket, key, from)
	if err != nil {
		return Manifest{}, ErrMissing
	}
	m, intact, err := Decode(obj.Data)
	if err != nil || !intact {
		st.stats.CorruptDetected++
		return Manifest{}, ErrCorrupt
	}
	return m, nil
}

// GetVerified reads the manifest with integrity checking and failover:
// primary first, then the replica, then the primary once more (read-path
// corruption is per-Get, so a retry can land clean). A success served by
// a fallback copy triggers a repair write of the primary.
func (st *Store) GetVerified(key string, from catalog.Region) (Manifest, error) {
	type attempt struct {
		bucket string
	}
	attempts := []attempt{{st.cfg.Primary}}
	if st.cfg.Replicate {
		attempts = append(attempts, attempt{st.cfg.Replica}, attempt{st.cfg.Primary})
	}
	missing := 0
	for i, a := range attempts {
		m, err := st.fetch(a.bucket, key, from)
		if err != nil {
			if errors.Is(err, ErrMissing) {
				missing++
			}
			continue
		}
		if i > 0 {
			st.stats.Failovers++
			// Repair the primary from the good copy so later reads
			// don't depend on the replica staying healthy.
			if a.bucket != st.cfg.Primary {
				if perr := st.store.Put(st.cfg.Primary, key, m.Encode(), st.cfg.ReplicaRegion); perr == nil {
					st.stats.Repairs++
				}
			}
		}
		return m, nil
	}
	st.stats.Unrecoverable++
	if missing == len(attempts) {
		return Manifest{}, fmt.Errorf("durable get %s: %w", key, ErrMissing)
	}
	return Manifest{}, fmt.Errorf("durable get %s: %w", key, ErrCorrupt)
}

// GetBlind is the ablation's read path: one unverified primary read.
// The returned intact flag is the checksum verdict a blind reader never
// computes — the experiment harness uses it as the omniscient observer
// to count undetected corruption.
func (st *Store) GetBlind(key string, from catalog.Region) (m Manifest, intact bool, err error) {
	obj, gerr := st.store.Get(st.cfg.Primary, key, from)
	if gerr != nil {
		return Manifest{}, false, fmt.Errorf("durable blind get %s: %w", key, ErrMissing)
	}
	m, intact, err = Decode(obj.Data)
	if err != nil {
		// Garbage that no longer parses: the blind reader cannot resume
		// from it either, so it surfaces like a missing manifest.
		return Manifest{}, false, fmt.Errorf("durable blind get %s: %w", key, ErrCorrupt)
	}
	return m, intact, nil
}

// SyncReplicas is the anti-entropy sweep: it walks both buckets under
// the prefix, picks the highest-version intact copy of each manifest,
// and rewrites any missing, corrupt, or older copy from it. It returns
// the number of copies repaired. A no-replication store has nothing to
// sync.
func (st *Store) SyncReplicas(prefix string) (int, error) {
	if !st.cfg.Replicate {
		return 0, nil
	}
	pKeys, err := st.store.List(st.cfg.Primary, prefix)
	if err != nil {
		return 0, err
	}
	rKeys, err := st.store.List(st.cfg.Replica, prefix)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool, len(pKeys)+len(rKeys))
	keys := make([]string, 0, len(pKeys)+len(rKeys))
	for _, k := range append(pKeys, rKeys...) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	repaired := 0
	for _, key := range keys {
		// Same-region reads: the sweep runs control-plane side, next to
		// each bucket, so listing and auditing is transfer-free.
		pm, perr := st.fetch(st.cfg.Primary, key, st.cfg.PrimaryRegion)
		rm, rerr := st.fetch(st.cfg.Replica, key, st.cfg.ReplicaRegion)
		switch {
		case perr == nil && (rerr != nil || rm.Version < pm.Version):
			if err := st.store.Put(st.cfg.Replica, key, pm.Encode(), st.cfg.PrimaryRegion); err == nil {
				repaired++
				st.stats.Repairs++
			}
		case rerr == nil && (perr != nil || pm.Version < rm.Version):
			if err := st.store.Put(st.cfg.Primary, key, rm.Encode(), st.cfg.ReplicaRegion); err == nil {
				repaired++
				st.stats.Repairs++
			}
		}
	}
	return repaired, nil
}
