package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"spotverse/internal/experiment"
	"spotverse/internal/serve"
)

// Violation is one invariant breach with enough detail to read the
// failure without re-running anything.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// TrialResult is everything one fuzz trial produced: the batch arm's
// evidence and fingerprint, the determinism arm's re-run fingerprint,
// and the serve arm's replay summary. Invariants read it; they never
// run anything themselves.
type TrialResult struct {
	Plan             Plan
	Batch            *experiment.ChaosEvidence
	BatchFingerprint string
	RerunFingerprint string
	Serve            *serve.ReplaySummary
}

// Invariant is one system-wide property checked after every trial.
type Invariant struct {
	// Name identifies the invariant; the registry sorts by it.
	Name string
	// Desc is the one-line human explanation.
	Desc string
	// Check returns the violations found (nil/empty = holds).
	Check func(tr *TrialResult) []string
}

// Registry returns the invariant catalog sorted by name — the order
// -list-invariants prints and every checker run uses.
func Registry() []Invariant {
	inv := []Invariant{
		{
			Name:  "breaker-monotonic",
			Desc:  "per incarnation and breaker key, cumulative trip counts never decrease between restarts",
			Check: checkBreakerMonotonic,
		},
		{
			Name:  "checkpoint-no-lost-shards",
			Desc:  "the replicated durable store recovers every acknowledged shard and detects every corrupt read",
			Check: checkNoLostShards,
		},
		{
			Name:  "complete-once-never-relaunched",
			Desc:  "a workload completes at most once and is never launched or relaunched after completing",
			Check: checkCompleteOnce,
		},
		{
			Name:  "journal-replay-convergence",
			Desc:  "re-running the identical plan reproduces the batch fingerprint byte-identically",
			Check: checkReplayConvergence,
		},
		{
			Name:  "relaunch-exactly-once",
			Desc:  "no interruption ever actuates two live instances for one workload (split-brain exactly-once)",
			Check: checkRelaunchExactlyOnce,
		},
		{
			Name:  "serve-outcome-accounting",
			Desc:  "every replayed request is accounted exactly once: requests == ok+degraded+shed+deadline+errors",
			Check: checkServeAccounting,
		},
	}
	sort.Slice(inv, func(i, j int) bool { return inv[i].Name < inv[j].Name })
	return inv
}

// CheckAll runs the full registry over one trial and returns every
// violation, ordered by invariant name.
func CheckAll(tr *TrialResult) []Violation {
	var out []Violation
	for _, inv := range Registry() {
		for _, detail := range inv.Check(tr) {
			out = append(out, Violation{Invariant: inv.Name, Detail: detail})
		}
	}
	return out
}

func checkRelaunchExactlyOnce(tr *TrialResult) []string {
	if tr.Batch == nil {
		return nil
	}
	if n := tr.Batch.Result.DuplicateRelaunches; n > 0 {
		return []string{fmt.Sprintf("%d duplicate relaunches (two live instances actuated for one workload)", n)}
	}
	return nil
}

func checkNoLostShards(tr *TrialResult) []string {
	if tr.Batch == nil {
		return nil
	}
	var out []string
	if n := tr.Batch.Result.LostShards; n > 0 {
		out = append(out, fmt.Sprintf("%d checkpoint shards unrecoverable at resume", n))
	}
	if n := tr.Batch.Result.UndetectedCorruption; n > 0 {
		out = append(out, fmt.Sprintf("%d corrupt manifest reads consumed undetected", n))
	}
	return out
}

func checkCompleteOnce(tr *TrialResult) []string {
	if tr.Batch == nil || tr.Batch.Result.Timeline == nil {
		return nil
	}
	tl := tr.Batch.Result.Timeline
	var out []string
	completes := make(map[string]int)
	afterDone := make(map[string]bool)
	for _, e := range tl.Events() {
		switch e.Kind {
		case experiment.EventComplete:
			completes[e.Workload]++
		case experiment.EventLaunch, experiment.EventRelaunch:
			if completes[e.Workload] > 0 && !afterDone[e.Workload] {
				afterDone[e.Workload] = true
				out = append(out, fmt.Sprintf("workload %s: %s after completion at %s", e.Workload, e.Kind, e.At))
			}
		}
	}
	ids := make([]string, 0, len(completes))
	for id := range completes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if completes[id] > 1 {
			out = append(out, fmt.Sprintf("workload %s completed %d times", id, completes[id]))
		}
	}
	return out
}

func checkBreakerMonotonic(tr *TrialResult) []string {
	if tr.Batch == nil {
		return nil
	}
	var out []string
	last := make(map[string]int)
	for i, b := range tr.Batch.Breakers {
		if b.From == "restart" {
			// "<controllerID>/" marker: that incarnation's registry was
			// replaced (journal replay may restore older snapshots), so its
			// per-key baselines reset here.
			for key := range last {
				if strings.HasPrefix(key, b.Key) {
					delete(last, key)
				}
			}
			continue
		}
		if prev, seen := last[b.Key]; seen && b.Trips < prev {
			out = append(out, fmt.Sprintf("transition %d: breaker %s trips went %d -> %d without a restart", i, b.Key, prev, b.Trips))
		}
		last[b.Key] = b.Trips
	}
	return out
}

func checkReplayConvergence(tr *TrialResult) []string {
	if tr.RerunFingerprint == "" {
		return nil
	}
	if tr.RerunFingerprint != tr.BatchFingerprint {
		return []string{fmt.Sprintf("re-run fingerprint %s != first run %s (nondeterministic replay)", tr.RerunFingerprint, tr.BatchFingerprint)}
	}
	return nil
}

func checkServeAccounting(tr *TrialResult) []string {
	s := tr.Serve
	if s == nil {
		return nil
	}
	if sum := s.OK + s.Degraded + s.Shed + s.Deadline + s.Errors; sum != s.Requests {
		return []string{fmt.Sprintf("requests=%d but ok+degraded+shed+deadline+errors=%d", s.Requests, sum)}
	}
	return nil
}
