package fuzz

import (
	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/simclock"
)

// Generation bounds. Windows land inside the first two days of the
// 72-hour horizon so every fault overlaps live work; the caps keep each
// plan survivable by design — the invariants assert the stack actually
// survives it.
const (
	genMaxEvents     = 10
	genMinEvents     = 3
	genWindowSpanMS  = 48 * 3600 * 1000 // windows start inside [0, 48h)
	genMinWindowMS   = 30 * 60 * 1000   // 30 minutes
	genMaxWindowMS   = 12 * 3600 * 1000 // 12 hours
	genMaxSplitBrain = 2
	genMaxKills      = 3
	genMaxBucketLoss = 2
	// genBucketLossGapMS spaces the two bucket losses so anti-entropy
	// (15-minute cadence) has time to re-replicate between them — losing
	// both copies inside one sweep window is unsurvivable by design.
	genBucketLossGapMS = 4 * 3600 * 1000
)

// genServices is the fault-rate / brownout / partition service pool.
// S3 is deliberately absent: checkpoint-manifest damage is injected
// through the corruption and bucket-loss kinds, which the durable layer
// is built to absorb; a raw S3 outage during a resume loses shards by
// construction and would make checkpoint-no-lost-shards vacuous.
var genServices = []string{
	chaos.ServiceDynamo,
	chaos.ServiceLambda,
	chaos.ServiceStepFn,
	chaos.ServiceCloudWatch,
	chaos.ServiceEventBridge,
}

// genRegions is the region pool for brownouts and partitions; the empty
// entry means "every region".
var genRegions = []string{"us-east-1", "us-west-2", ""}

// Generate derives one plan from a seed. Identical seeds produce
// identical plans on every machine; the RNG is a dedicated simclock
// stream, so generating plans never perturbs any experiment stream.
func Generate(seed int64) Plan {
	rng := simclock.Stream(seed, "fuzz/plan")
	p := Plan{
		Seed:         seed,
		Workloads:    6 + rng.Intn(7),
		HorizonHours: 72,
	}
	n := genMinEvents + rng.Intn(genMaxEvents-genMinEvents+1)
	splitBrains, kills, losses := 0, 0, 0
	lastLossMS := int64(-genBucketLossGapMS)
	for len(p.Events) < n {
		var e Event
		switch roll := rng.Float64(); {
		case roll < 0.22:
			e = Event{
				Kind:    KindErrorRate,
				Service: simclock.Pick(rng, genServices),
				Rate:    0.02 + rng.Float64()*0.13,
			}
			if rng.Bool(0.4) {
				e.Throttle = rng.Float64() * 0.05
			}
		case roll < 0.37:
			e = Event{Kind: KindDrop, Rate: 0.5 + rng.Float64()*0.5}
		case roll < 0.52:
			e = Event{Kind: KindBrownout, Services: genServiceSubset(rng)}
			if r := simclock.Pick(rng, genRegions); r != "" {
				e.Regions = []string{r}
			}
			e.FromMS, e.ToMS = genWindow(rng)
		case roll < 0.67:
			e = Event{Kind: KindPartition, Services: genServiceSubset(rng)}
			if r := simclock.Pick(rng, genRegions); r != "" {
				e.Regions = []string{r}
			}
			e.FromMS, e.ToMS = genWindow(rng)
		case roll < 0.77:
			if kills >= genMaxKills {
				continue
			}
			kills++
			e = Event{Kind: KindKill, AtMS: int64(3600000 + rng.Intn(genWindowSpanMS-3600000))}
		case roll < 0.85:
			e = Event{Kind: KindCorruption, Rate: 0.05 + rng.Float64()*0.30}
			e.FromMS, e.ToMS = genWindow(rng)
		case roll < 0.90:
			if losses >= genMaxBucketLoss {
				continue
			}
			at := int64(2*3600000 + rng.Intn(40*3600000))
			if at-lastLossMS < genBucketLossGapMS && lastLossMS >= 0 {
				continue
			}
			bucket := experiment.CheckpointReplicaBucket
			if losses == 1 {
				bucket = experiment.CheckpointBucket
			}
			losses++
			lastLossMS = at
			e = Event{Kind: KindBucketLoss, Bucket: bucket, AtMS: at}
		default:
			if splitBrains >= genMaxSplitBrain {
				continue
			}
			splitBrains++
			from, to := genWindow(rng)
			if to-from > 6*3600000 {
				to = from + 6*3600000
			}
			e = Event{Kind: KindSplitBrain, FromMS: from, ToMS: to}
			// A split brain is not an independent fault: in the real
			// deployment it is what a journal partition looks like from
			// the two controllers' perspective. Usually pair the rival
			// window with a Dynamo partition covering it, so the fenced
			// commit path is actually exercised while two incarnations
			// race (uncorrelated windows rarely coincide with a commit).
			if rng.Bool(0.75) {
				p.Events = append(p.Events, e)
				e = Event{
					Kind:     KindPartition,
					Services: []string{chaos.ServiceDynamo},
					FromMS:   from,
					ToMS:     to,
				}
			}
		}
		p.Events = append(p.Events, e)
	}
	return p
}

// genWindow draws a fault window inside the first two days.
func genWindow(rng *simclock.RNG) (fromMS, toMS int64) {
	from := int64(rng.Intn(genWindowSpanMS - genMaxWindowMS))
	dur := int64(genMinWindowMS + rng.Intn(genMaxWindowMS-genMinWindowMS))
	return from, from + dur
}

// genServiceSubset draws a non-empty subset of the service pool, in
// pool order (deterministic rendering).
func genServiceSubset(rng *simclock.RNG) []string {
	var out []string
	for _, s := range genServices {
		if rng.Bool(0.4) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []string{simclock.Pick(rng, genServices)}
	}
	return out
}
