package fuzz

import (
	"testing"
)

// TestTrialCleanSeeds runs full trials over a spread of seeds against
// the correct (fenced) build and requires every invariant to hold —
// the fuzzer's steady-state: plans are survivable by construction, so
// a violation means a real bug.
func TestTrialCleanSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		tr, err := RunTrial(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if vs := CheckAll(tr); len(vs) > 0 {
			t.Fatalf("seed %d: violations on the correct build: %+v", seed, vs)
		}
		if tr.RerunFingerprint != tr.BatchFingerprint {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
		if tr.Serve == nil || tr.Serve.Requests == 0 {
			t.Fatalf("seed %d: serve arm produced nothing", seed)
		}
	}
}

// findUnfencedFailure scans seeds for a generated plan whose unfenced
// run violates relaunch-exactly-once. A fixed scan keeps the test
// deterministic: the first qualifying seed is always the same.
func findUnfencedFailure(t *testing.T) (Plan, []Violation) {
	t.Helper()
	for seed := int64(1); seed <= 60; seed++ {
		p := Generate(seed)
		hasSplit := false
		for _, e := range p.Events {
			if e.Kind == KindSplitBrain {
				hasSplit = true
				break
			}
		}
		if !hasSplit {
			continue
		}
		p.DisableFencing = true
		tr, err := RunTrial(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		vs := CheckAll(tr)
		for _, v := range vs {
			if v.Invariant == "relaunch-exactly-once" {
				return p, vs
			}
		}
	}
	t.Fatal("no seed in [1,60] triggered the unfenced split-brain duplicate — broken-build detection is dead")
	return Plan{}, nil
}

// TestUnfencedSplitBrainCaughtShrunkAndReplayable is the acceptance
// path end to end: the deliberately broken build (fencing disabled) is
// caught by the split-brain invariant, the failing plan shrinks to a
// handful of events, and the emitted repro replays byte-identically
// twice.
func TestUnfencedSplitBrainCaughtShrunkAndReplayable(t *testing.T) {
	if testing.Short() {
		t.Skip("shrink search in -short mode")
	}
	p, vs := findUnfencedFailure(t)
	sr, err := Shrink(p, vs, DefaultShrinkBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Plan.Events) > 3 {
		t.Fatalf("shrunk plan still has %d events (want <= 3): %+v", len(sr.Plan.Events), sr.Plan.Events)
	}
	if sr.Runs > DefaultShrinkBudget+1 {
		t.Fatalf("shrink used %d runs, budget %d", sr.Runs, DefaultShrinkBudget)
	}
	names := violationNames(sr.Violations)
	found := false
	for _, n := range names {
		if n == "relaunch-exactly-once" {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrunk plan's violations %v lost the original split-brain failure", names)
	}
	repro := &Repro{Plan: sr.Plan, Violations: sr.Violations, Fingerprint: sr.Fingerprint, ShrinkRuns: sr.Runs}
	if err := VerifyRepro(repro); err != nil {
		t.Fatalf("repro does not replay byte-identically: %v", err)
	}
}

// TestVerifyReproDetectsDrift proves VerifyRepro is not vacuous: a
// repro whose recorded fingerprint is wrong must be rejected.
func TestVerifyReproDetectsDrift(t *testing.T) {
	p := Generate(1)
	tr, err := RunTrial(p)
	if err != nil {
		t.Fatal(err)
	}
	good := &Repro{Plan: p, Fingerprint: tr.BatchFingerprint}
	if err := VerifyRepro(good); err != nil {
		t.Fatalf("faithful repro rejected: %v", err)
	}
	bad := &Repro{Plan: p, Fingerprint: "0"}
	if err := VerifyRepro(bad); err == nil {
		t.Fatal("drifted fingerprint accepted")
	}
	lying := &Repro{Plan: p, Fingerprint: tr.BatchFingerprint,
		Violations: []Violation{{Invariant: "relaunch-exactly-once", Detail: "fabricated"}}}
	if err := VerifyRepro(lying); err == nil {
		t.Fatal("fabricated violation set accepted")
	}
}

// TestCampaignCleanAndBroken runs a small campaign both ways: the
// correct build yields zero failures; the unfenced build yields at
// least one shrunken repro.
func TestCampaignCleanAndBroken(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	clean, err := Campaign(CampaignConfig{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Trials != len(seeds) || len(clean.Failures) != 0 {
		t.Fatalf("clean campaign: trials=%d failures=%d", clean.Trials, len(clean.Failures))
	}
	broken, err := Campaign(CampaignConfig{Seeds: seeds, DisableFencing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken.Failures) == 0 {
		t.Fatal("unfenced campaign found nothing — the fuzzer cannot catch the broken build")
	}
	for _, r := range broken.Failures {
		if r.Fingerprint == "" || len(r.Violations) == 0 {
			t.Fatalf("repro missing fingerprint or violations: %+v", r)
		}
	}
}
