package fuzz

import (
	"fmt"

	"spotverse/internal/experiment"
	"spotverse/internal/serve"
	"spotverse/internal/simclock"
)

// serveTraceRequests sizes the serve arm's generated trace: ~48 seconds
// of arrivals at the default QPS, spanning every compressed fault
// window a 48-hour batch plan can produce.
const serveTraceRequests = 4800

// warmAttempts bounds snapshot warmup retries through injected faults
// (same default as the spotverse-serve CLI).
const warmAttempts = 20

// RunTrial executes one full fuzz trial for a plan: the batch arm (full
// journaled + lease-fenced stack under the plan's chaos schedule), the
// determinism arm (an identical re-run whose fingerprint must match),
// and the serve arm (a generated trace replayed through the placement
// daemon under the plan's compressed schedule). The caller checks the
// result with CheckAll.
func RunTrial(p Plan) (*TrialResult, error) {
	return runTrial(p, true, true)
}

// runTrial runs the batch arm always, and the determinism and serve
// arms when asked — shrinking skips arms the original violations never
// touched, which is most of the shrink budget.
func runTrial(p Plan, rerun, serveArm bool) (*TrialResult, error) {
	cfg := experiment.ChaosRunConfig{
		Seed:           p.Seed,
		Workloads:      p.Workloads,
		Schedule:       p.Schedule(simclock.Epoch),
		DisableFencing: p.DisableFencing,
		Horizon:        p.Horizon(),
	}
	batch, err := experiment.ChaosRun(cfg)
	if err != nil {
		return nil, fmt.Errorf("fuzz: batch arm: %w", err)
	}
	tr := &TrialResult{Plan: p, Batch: batch, BatchFingerprint: batch.Fingerprint()}
	if rerun {
		again, err := experiment.ChaosRun(cfg)
		if err != nil {
			return nil, fmt.Errorf("fuzz: determinism arm: %w", err)
		}
		tr.RerunFingerprint = again.Fingerprint()
	}
	if serveArm {
		sum, err := runServeArm(p)
		if err != nil {
			return nil, err
		}
		tr.Serve = sum
	}
	return tr, nil
}

// runServeArm replays a generated trace through the placement daemon
// under the plan's compressed chaos schedule.
func runServeArm(p Plan) (*serve.ReplaySummary, error) {
	sim, err := experiment.NewServeSimWith(p.Seed, p.ServeSchedule(simclock.Epoch))
	if err != nil {
		return nil, fmt.Errorf("fuzz: serve arm: %w", err)
	}
	srv, err := serve.New(serve.Config{Clock: sim.Env.Engine}, sim.Backend)
	if err != nil {
		return nil, fmt.Errorf("fuzz: serve arm: %w", err)
	}
	if err := sim.Warm(srv, warmAttempts); err != nil {
		return nil, fmt.Errorf("fuzz: serve arm: %w", err)
	}
	trace := experiment.GenerateServeTrace(p.Seed, serveTraceRequests, experiment.DefaultTraceQPS)
	sum, err := srv.Replay(sim.Env.Engine, trace, serve.ReplayOptions{})
	if err != nil {
		return nil, fmt.Errorf("fuzz: serve arm: %w", err)
	}
	return sum, nil
}

// ShrinkResult is the outcome of minimising a failing plan.
type ShrinkResult struct {
	// Plan is the minimised plan; it still triggers at least one of the
	// original violations.
	Plan Plan
	// Violations are the minimised plan's violations.
	Violations []Violation
	// Fingerprint is the minimised plan's batch-arm fingerprint — the
	// value every replay of the repro must reproduce.
	Fingerprint string
	// Runs counts trial executions the shrink consumed.
	Runs int
}

// DefaultShrinkBudget bounds trial re-runs during one shrink.
const DefaultShrinkBudget = 200

// Shrink minimises a failing plan: first ddmin over the fault events
// (greedy one-at-a-time removal to a 1-minimal event set — plans hold
// at most ten events, so this stays well inside the budget), then
// time-window bisection on each surviving windowed event (halving the
// window while the failure persists). A candidate "still fails" when it
// violates at least one invariant from the original violation set —
// every re-run is fully deterministic, so the search never flakes.
func Shrink(p Plan, original []Violation, budget int) (*ShrinkResult, error) {
	if len(original) == 0 {
		return nil, fmt.Errorf("fuzz: nothing to shrink: no violations")
	}
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	want := make(map[string]bool)
	for _, n := range violationNames(original) {
		want[n] = true
	}
	// Arms the original failure never implicated are dead weight during
	// the search; skip them and re-verify with a full trial at the end.
	rerun := want["journal-replay-convergence"]
	serveArm := want["serve-outcome-accounting"]

	s := &shrinker{want: want, rerun: rerun, serveArm: serveArm, budget: budget}
	best := p
	bestVs := original

	// Phase 1: ddmin by fault event, to fixpoint.
	for changed := true; changed && s.runs < s.budget; {
		changed = false
		for i := 0; i < len(best.Events) && s.runs < s.budget; i++ {
			cand := best
			cand.Events = append(append([]Event{}, best.Events[:i]...), best.Events[i+1:]...)
			if vs, fails, err := s.check(cand); err != nil {
				return nil, err
			} else if fails {
				best, bestVs = cand, vs
				changed = true
				i--
			}
		}
	}

	// Phase 2: time-window bisection on surviving windowed events —
	// shrink each window toward its midpoint from both ends.
	for i := range best.Events {
		e := &best.Events[i]
		if e.ToMS <= e.FromMS {
			continue
		}
		for s.runs < s.budget {
			half := (e.ToMS - e.FromMS) / 2
			if half < 60_000 { // stop below one minute
				break
			}
			cand := best
			cand.Events = append([]Event{}, best.Events...)
			cand.Events[i].ToMS = e.FromMS + half
			if vs, fails, err := s.check(cand); err != nil {
				return nil, err
			} else if fails {
				best, bestVs = cand, vs
				e = &best.Events[i]
				continue
			}
			cand.Events[i].ToMS = e.ToMS
			cand.Events[i].FromMS = e.ToMS - half
			if vs, fails, err := s.check(cand); err != nil {
				return nil, err
			} else if fails {
				best, bestVs = cand, vs
				e = &best.Events[i]
				continue
			}
			break
		}
	}

	// Final full-arm pass pins the canonical violations and fingerprint
	// the repro records.
	final, err := RunTrial(best)
	if err != nil {
		return nil, err
	}
	s.runs++
	if vs := CheckAll(final); len(vs) > 0 {
		bestVs = vs
	}
	return &ShrinkResult{
		Plan:        best,
		Violations:  bestVs,
		Fingerprint: final.BatchFingerprint,
		Runs:        s.runs,
	}, nil
}

type shrinker struct {
	want     map[string]bool
	rerun    bool
	serveArm bool
	budget   int
	runs     int
}

// check runs one shrink candidate and reports whether it still triggers
// an original violation.
func (s *shrinker) check(cand Plan) ([]Violation, bool, error) {
	s.runs++
	tr, err := runTrial(cand, s.rerun, s.serveArm)
	if err != nil {
		// A candidate the harness cannot even run is not a reproducer;
		// treat it as "does not fail" and keep the previous best.
		return nil, false, nil
	}
	vs := CheckAll(tr)
	for _, v := range vs {
		if s.want[v.Invariant] {
			return vs, true, nil
		}
	}
	return nil, false, nil
}

// VerifyRepro replays a repro file's plan twice and checks both runs
// reproduce the recorded fingerprint byte-identically and the recorded
// violation set by name. This is what -replay runs, and what the CI
// fuzz job uses to prove a repro is deterministic.
func VerifyRepro(r *Repro) error {
	wantNames := violationNames(r.Violations)
	for pass := 1; pass <= 2; pass++ {
		tr, err := RunTrial(r.Plan)
		if err != nil {
			return fmt.Errorf("fuzz: replay pass %d: %w", pass, err)
		}
		if tr.BatchFingerprint != r.Fingerprint {
			return fmt.Errorf("fuzz: replay pass %d: fingerprint %s, repro recorded %s",
				pass, tr.BatchFingerprint, r.Fingerprint)
		}
		got := violationNames(CheckAll(tr))
		if !equalStrings(got, wantNames) {
			return fmt.Errorf("fuzz: replay pass %d: violations %v, repro recorded %v", pass, got, wantNames)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CampaignConfig parameterises a fuzz campaign.
type CampaignConfig struct {
	// Seeds are the campaign's trial seeds, one plan per seed.
	Seeds []int64
	// DisableFencing runs every plan against the deliberately broken
	// (unfenced) control plane — the build the split-brain invariant
	// must catch.
	DisableFencing bool
	// Workloads, when positive, overrides every plan's workload count.
	Workloads int
	// ShrinkBudget bounds re-runs per shrink (default
	// DefaultShrinkBudget).
	ShrinkBudget int
	// Log, when set, receives one progress line per trial.
	Log func(format string, args ...any)
}

// CampaignResult summarises a campaign.
type CampaignResult struct {
	// Trials is how many seeds ran.
	Trials int
	// Failures holds one shrunken repro per failing seed.
	Failures []*Repro
}

// Campaign generates one plan per seed, runs the full trial, and
// shrinks every failure into a replayable repro.
func Campaign(cfg CampaignConfig) (*CampaignResult, error) {
	res := &CampaignResult{}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, seed := range cfg.Seeds {
		p := Generate(seed)
		p.DisableFencing = cfg.DisableFencing
		if cfg.Workloads > 0 {
			p.Workloads = cfg.Workloads
		}
		tr, err := RunTrial(p)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: %w", seed, err)
		}
		res.Trials++
		vs := CheckAll(tr)
		if len(vs) == 0 {
			logf("seed %d: ok (%d events, %d workloads)", seed, len(p.Events), p.Workloads)
			continue
		}
		logf("seed %d: VIOLATION %v — shrinking", seed, violationNames(vs))
		sr, err := Shrink(p, vs, cfg.ShrinkBudget)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d: shrink: %w", seed, err)
		}
		logf("seed %d: shrunk to %d events in %d runs", seed, len(sr.Plan.Events), sr.Runs)
		res.Failures = append(res.Failures, &Repro{
			Plan:        sr.Plan,
			Violations:  sr.Violations,
			Fingerprint: sr.Fingerprint,
			ShrinkRuns:  sr.Runs,
		})
	}
	return res, nil
}
