// Package fuzz is the deterministic fault-space fuzzer: it generates
// randomized composite chaos plans from a seed, runs the full SpotVerse
// stack (batch control plane, durable checkpoints, serve replay) under
// each plan, checks a registry of system-wide invariants after every
// run, and — on a violation — shrinks the plan to a minimal reproducer
// that replays byte-identically.
//
// Everything is derived from explicit seeds through simclock streams:
// the same (seed, plan) always produces the same runs, the same
// fingerprints, and the same violations, on any machine.
package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
)

// Event kinds a fault plan can contain.
const (
	// KindErrorRate sets per-call fault probabilities for one service
	// (Service, Rate = transient probability, Throttle).
	KindErrorRate = "error-rate"
	// KindDrop sets the EventBridge delivery drop rate for interruption
	// notices (Rate).
	KindDrop = "drop"
	// KindBrownout fails the listed Services in one region for the
	// window (Regions[0] when set, else every region).
	KindBrownout = "brownout"
	// KindPartition cuts the network to the listed Regions for the
	// window (chaos.Partitioned errors on the listed Services).
	KindPartition = "partition"
	// KindKill crash-restarts the controller at AtMS.
	KindKill = "kill"
	// KindCorruption bit-flips checkpoint-manifest reads from the
	// primary bucket at Rate for the window.
	KindCorruption = "corruption"
	// KindBucketLoss wipes Bucket at AtMS.
	KindBucketLoss = "bucket-loss"
	// KindSplitBrain runs a rival controller incarnation for the window.
	KindSplitBrain = "split-brain"
)

// Event is one fault in a plan. Windowed kinds use FromMS/ToMS, point
// kinds use AtMS; all offsets are simulated milliseconds from run
// start. The flat shape keeps the repro JSON diffable and hand-editable.
type Event struct {
	Kind     string   `json:"kind"`
	Service  string   `json:"service,omitempty"`
	Services []string `json:"services,omitempty"`
	Regions  []string `json:"regions,omitempty"`
	Bucket   string   `json:"bucket,omitempty"`
	Rate     float64  `json:"rate,omitempty"`
	Throttle float64  `json:"throttle,omitempty"`
	FromMS   int64    `json:"fromMS,omitempty"`
	ToMS     int64    `json:"toMS,omitempty"`
	AtMS     int64    `json:"atMS,omitempty"`
}

// window converts the event's offsets to an absolute chaos window.
func (e Event) window(start time.Time) chaos.Window {
	return chaos.Window{
		From: start.Add(time.Duration(e.FromMS) * time.Millisecond),
		To:   start.Add(time.Duration(e.ToMS) * time.Millisecond),
	}
}

// regions converts the event's region names.
func (e Event) regions() []catalog.Region {
	if len(e.Regions) == 0 {
		return nil
	}
	out := make([]catalog.Region, len(e.Regions))
	for i, r := range e.Regions {
		out[i] = catalog.Region(r)
	}
	return out
}

// Plan is one complete fuzz scenario: a seed, a workload count, and a
// composite fault plan. Plans round-trip through JSON byte-stably
// (fields render in struct order), which is what makes repro files
// replayable artifacts.
type Plan struct {
	Seed           int64   `json:"seed"`
	Workloads      int     `json:"workloads"`
	HorizonHours   int     `json:"horizonHours"`
	DisableFencing bool    `json:"disableFencing,omitempty"`
	Events         []Event `json:"events"`
}

// Horizon is the plan's batch-run horizon.
func (p Plan) Horizon() time.Duration {
	if p.HorizonHours <= 0 {
		return 72 * time.Hour
	}
	return time.Duration(p.HorizonHours) * time.Hour
}

// Schedule compiles the plan into the batch arm's chaos schedule, with
// windowed events anchored at start. Error-rate events for the same
// service merge by taking the maximum of each probability.
func (p Plan) Schedule(start time.Time) chaos.Schedule {
	sched := chaos.Schedule{
		Intensity:       chaos.Severe, // label: enables injection; the fields below decide what actually fires
		DropDetailTypes: []string{"EC2 Spot Instance Interruption Warning"},
	}
	for _, e := range p.Events {
		switch e.Kind {
		case KindErrorRate:
			if sched.ErrorRates == nil {
				sched.ErrorRates = make(map[string]chaos.Rates)
			}
			r := sched.ErrorRates[e.Service]
			if e.Rate > r.Transient {
				r.Transient = e.Rate
			}
			if e.Throttle > r.Throttle {
				r.Throttle = e.Throttle
			}
			sched.ErrorRates[e.Service] = r
		case KindDrop:
			if e.Rate > sched.DropRate {
				sched.DropRate = e.Rate
			}
		case KindBrownout:
			b := chaos.Brownout{Services: e.Services, Window: e.window(start)}
			if regs := e.regions(); len(regs) > 0 {
				b.Region = regs[0]
			}
			sched.Brownouts = append(sched.Brownouts, b)
		case KindPartition:
			sched.Partitions = append(sched.Partitions, chaos.Partition{
				Regions:  e.regions(),
				Services: e.Services,
				Window:   e.window(start),
			})
		case KindKill:
			sched.ControllerKills = append(sched.ControllerKills, chaos.ControllerKill{
				At: start.Add(time.Duration(e.AtMS) * time.Millisecond),
			})
		case KindCorruption:
			sched.ObjectCorruptions = append(sched.ObjectCorruptions, chaos.ObjectCorruption{
				Bucket:    experiment.CheckpointBucket,
				KeyPrefix: experiment.ManifestPrefix,
				Rate:      e.Rate,
				Window:    e.window(start),
			})
		case KindBucketLoss:
			sched.BucketLosses = append(sched.BucketLosses, chaos.BucketLoss{
				Bucket: e.Bucket,
				At:     start.Add(time.Duration(e.AtMS) * time.Millisecond),
			})
		case KindSplitBrain:
			sched.SplitBrains = append(sched.SplitBrains, chaos.SplitBrain{Window: e.window(start)})
		}
	}
	return sched
}

// serveTimeScale maps batch offsets onto the serve arm's timebase: one
// simulated hour of the batch plan becomes one second of serving, so a
// 6-hour brownout stresses the daemon as a 6-second outage.
const serveTimeScale = 3600

// ServeSchedule compiles the plan's windowed faults into the serve
// arm's short-timebase schedule: brownout and partition windows become
// ServiceServe brownouts at serveTimeScale compression, and error-rate
// events bleed onto the serve path at half strength (the daemon shares
// the region's fate but not every backend fault).
func (p Plan) ServeSchedule(start time.Time) chaos.Schedule {
	sched := chaos.Schedule{Intensity: chaos.Severe}
	rates := chaos.Rates{}
	for _, e := range p.Events {
		switch e.Kind {
		case KindBrownout, KindPartition:
			sched.Brownouts = append(sched.Brownouts, chaos.Brownout{
				Services: []string{chaos.ServiceServe},
				Window: chaos.Window{
					From: start.Add(time.Duration(e.FromMS/serveTimeScale) * time.Millisecond),
					To:   start.Add(time.Duration(e.ToMS/serveTimeScale) * time.Millisecond),
				},
			})
		case KindErrorRate:
			if t := e.Rate / 2; t > rates.Transient {
				rates.Transient = t
			}
			if th := e.Throttle / 2; th > rates.Throttle {
				rates.Throttle = th
			}
		}
	}
	if rates.Transient > 0 || rates.Throttle > 0 {
		sched.ErrorRates = map[string]chaos.Rates{chaos.ServiceServe: rates}
	}
	return sched
}

// Repro is the replayable artifact a violation produces: the shrunken
// plan, the violations it triggers, and the batch-arm fingerprint every
// replay must reproduce byte-identically.
type Repro struct {
	Plan        Plan        `json:"plan"`
	Violations  []Violation `json:"violations"`
	Fingerprint string      `json:"fingerprint"`
	ShrinkRuns  int         `json:"shrinkRuns"`
}

// WriteRepro writes the repro as indented JSON.
func WriteRepro(w io.Writer, r *Repro) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReproPath is the canonical repro filename for a seed.
func ReproPath(dir string, seed int64) string {
	return fmt.Sprintf("%s/fuzz-repro-%d.json", dir, seed)
}

// SaveRepro writes the repro to the canonical path under dir and
// returns that path.
func SaveRepro(dir string, r *Repro) (string, error) {
	path := ReproPath(dir, r.Plan.Seed)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := WriteRepro(f, r); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// ReadRepro parses a repro file.
func ReadRepro(r io.Reader) (*Repro, error) {
	var out Repro
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("fuzz: bad repro file: %w", err)
	}
	if len(out.Plan.Events) == 0 && out.Plan.Workloads == 0 {
		return nil, fmt.Errorf("fuzz: bad repro file: empty plan")
	}
	return &out, nil
}

// violationNames returns the sorted distinct invariant names of a
// violation set.
func violationNames(vs []Violation) []string {
	seen := make(map[string]bool, len(vs))
	for _, v := range vs {
		seen[v.Invariant] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
