package fuzz

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"spotverse/internal/chaos"
	"spotverse/internal/simclock"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if len(a.Events) < genMinEvents || len(a.Events) > genMaxEvents {
			t.Fatalf("seed %d: %d events outside [%d,%d]", seed, len(a.Events), genMinEvents, genMaxEvents)
		}
		if a.Workloads < 6 || a.Workloads > 12 {
			t.Fatalf("seed %d: %d workloads outside [6,12]", seed, a.Workloads)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("distinct seeds generated identical plans")
	}
}

func TestGenerateRespectsCaps(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed)
		splits, kills, losses := 0, 0, 0
		var lossAts []int64
		for _, e := range p.Events {
			switch e.Kind {
			case KindSplitBrain:
				splits++
				if e.ToMS-e.FromMS > 6*3600_000 {
					t.Fatalf("seed %d: split-brain window %dms > 6h", seed, e.ToMS-e.FromMS)
				}
			case KindKill:
				kills++
			case KindBucketLoss:
				losses++
				lossAts = append(lossAts, e.AtMS)
			case KindErrorRate, KindBrownout, KindPartition:
				for _, s := range append([]string{e.Service}, e.Services...) {
					if s == chaos.ServiceS3 {
						t.Fatalf("seed %d: generator targeted S3 with %s", seed, e.Kind)
					}
				}
			case KindCorruption:
				if e.Rate > 0.35 {
					t.Fatalf("seed %d: corruption rate %.2f > 0.35", seed, e.Rate)
				}
			}
		}
		if splits > genMaxSplitBrain || kills > genMaxKills || losses > genMaxBucketLoss {
			t.Fatalf("seed %d: caps exceeded: splits=%d kills=%d losses=%d", seed, splits, kills, losses)
		}
		if len(lossAts) == 2 {
			gap := lossAts[1] - lossAts[0]
			if gap < 0 {
				gap = -gap
			}
			if gap < genBucketLossGapMS {
				t.Fatalf("seed %d: bucket losses %dms apart < 4h", seed, gap)
			}
		}
	}
}

func TestReproRoundTrip(t *testing.T) {
	r := &Repro{
		Plan: Plan{
			Seed: 99, Workloads: 7, HorizonHours: 72,
			Events: []Event{
				{Kind: KindDrop, Rate: 0.8},
				{Kind: KindSplitBrain, FromMS: 3_600_000, ToMS: 7_200_000},
			},
		},
		Violations:  []Violation{{Invariant: "relaunch-exactly-once", Detail: "2 duplicate relaunches"}},
		Fingerprint: "deadbeef",
		ShrinkRuns:  17,
	}
	var buf bytes.Buffer
	if err := WriteRepro(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, r)
	}
}

func TestReadReproRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"empty":   "",
		"corrupt": "{not json",
		"unknown": `{"plan":{"seed":1,"workloads":2,"horizonHours":1,"events":[]},"bogus":true}`,
		"hollow":  `{"plan":{"seed":1,"workloads":0,"horizonHours":0,"events":[]},"fingerprint":"x"}`,
	} {
		if _, err := ReadRepro(strings.NewReader(in)); err == nil {
			t.Fatalf("%s repro accepted", name)
		}
	}
}

func TestRegistrySortedAndComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"breaker-monotonic",
		"checkpoint-no-lost-shards",
		"complete-once-never-relaunched",
		"journal-replay-convergence",
		"relaunch-exactly-once",
		"serve-outcome-accounting",
	}
	var got []string
	for _, inv := range reg {
		got = append(got, inv.Name)
		if inv.Desc == "" || inv.Check == nil {
			t.Fatalf("invariant %s missing desc or checker", inv.Name)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("registry not sorted: %v", got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
}

func TestViolationNames(t *testing.T) {
	vs := []Violation{
		{Invariant: "b", Detail: "x"},
		{Invariant: "a", Detail: "y"},
		{Invariant: "b", Detail: "z"},
	}
	if got := violationNames(vs); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("violationNames = %v", got)
	}
}

func TestPlanScheduleCompiles(t *testing.T) {
	p := Generate(5)
	sched := p.Schedule(simclock.Epoch)
	if !sched.Enabled() {
		t.Fatal("compiled schedule disabled — injection would silently no-op")
	}
	serveSched := p.ServeSchedule(simclock.Epoch)
	if !serveSched.Enabled() {
		t.Fatal("serve schedule disabled")
	}
	// The plan JSON must be byte-stable: two marshals of the same plan
	// are identical (this is what makes repro files diffable).
	a, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("plan JSON not byte-stable")
	}
}
