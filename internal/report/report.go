// Package report renders experiment outputs as aligned ASCII tables and
// CSV series — the textual equivalents of the paper's tables and figures.
package report

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrShape is returned when rows disagree with the header width.
var ErrShape = errors.New("report: row width differs from header")

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Header) {
		return fmt.Errorf("%w: %d cells vs %d columns", ErrShape, len(cells), len(t.Header))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow for statically-shaped callers.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("## " + t.Title + "\n")
	}
	sb.WriteString(line(t.Header) + "\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	sb.WriteString(line(sep) + "\n")
	for _, row := range t.Rows {
		sb.WriteString(line(row) + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders a header plus rows as comma-separated values, quoting cells
// that contain commas or quotes.
func CSV(w io.Writer, header []string, rows [][]string) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvQuote(c)
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("%w: %d cells vs %d columns", ErrShape, len(row), len(header))
		}
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// F formats a float with the given decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// USD formats a dollar amount.
func USD(v float64) string { return fmt.Sprintf("$%.2f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
