package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := NewTable("Demo", "region", "cost")
	tbl.MustAddRow("ca-central-1", "$41.46")
	tbl.MustAddRow("us-east-1", "$77.81")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Fatalf("lines = %d: %q", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "## Demo") {
		t.Fatalf("title = %q", lines[0])
	}
	// Column alignment: "cost" column starts at the same offset in every
	// data line.
	idx := strings.Index(lines[1], "cost")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Fatalf("row %q shorter than header offset", l)
		}
		if l[idx-1] != ' ' && l[idx-1] != '-' {
			t.Fatalf("row %q misaligned at %d", l, idx)
		}
	}
}

func TestTableRowShapeEnforced(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	if err := tbl.AddRow("only-one"); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSVQuoting(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"name", "note"}, [][]string{
		{"plain", "ok"},
		{"with,comma", `say "hi"`},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quotes not escaped: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestCSVShapeEnforced(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, []string{"a", "b"}, [][]string{{"1"}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F = %q", F(3.14159, 2))
	}
	if USD(41.456) != "$41.46" {
		t.Fatalf("USD = %q", USD(41.456))
	}
	if Pct(0.523) != "52.3%" {
		t.Fatalf("Pct = %q", Pct(0.523))
	}
}
