package market

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// naiveAveragePrice recomputes AveragePrice the pre-cache way: walk the
// window step by step and take the min over AZ spot prices at each
// step. Both paths read the same walks, so this pins the prefix-sum
// implementation to the original semantics.
func naiveAveragePrice(t *testing.T, m *Model, it catalog.InstanceType, r catalog.Region, from, to time.Time) float64 {
	t.Helper()
	azs := m.Catalog().Zones(r)
	n := int(to.Sub(from)/PriceStep) + 1
	var sum float64
	for ts, i := from, 0; i < n; ts, i = ts.Add(PriceStep), i+1 {
		best := math.Inf(1)
		for _, az := range azs {
			p, err := m.SpotPrice(it, az, ts)
			if err != nil {
				t.Fatalf("SpotPrice(%s, %s): %v", it, az, err)
			}
			if p < best {
				best = p
			}
		}
		sum += best
	}
	return sum / float64(n)
}

func TestAveragePriceMatchesNaiveScan(t *testing.T) {
	m := newModel()
	rng := rand.New(rand.NewSource(7))
	regions := m.Catalog().OfferedRegions(catalog.M5XLarge)
	for i := 0; i < 40; i++ {
		r := regions[rng.Intn(len(regions))]
		from := simclock.Epoch.Add(time.Duration(rng.Intn(200)) * PriceStep)
		to := from.Add(time.Duration(rng.Intn(120)) * PriceStep)
		got, err := m.AveragePrice(catalog.M5XLarge, r, from, to)
		if err != nil {
			t.Fatalf("AveragePrice(%s, %s..%s): %v", r, from, to, err)
		}
		want := naiveAveragePrice(t, m, catalog.M5XLarge, r, from, to)
		if diff := math.Abs(got-want) / want; diff > 1e-12 {
			t.Fatalf("window %d: AveragePrice(%s) = %.15f, naive scan = %.15f (rel diff %.3g)",
				i, r, got, want, diff)
		}
	}
}

func TestAveragePriceWindowAtStartIsExact(t *testing.T) {
	m := newModel()
	for _, r := range m.Catalog().OfferedRegions(catalog.M5XLarge) {
		from := simclock.Epoch
		to := from.Add(60 * PriceStep)
		got, err := m.AveragePrice(catalog.M5XLarge, r, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveAveragePrice(t, m, catalog.M5XLarge, r, from, to); got != want {
			t.Fatalf("start-anchored window must be bit-identical: got %.17g, want %.17g in %s", got, want, r)
		}
	}
}

func TestAveragePricePreStartWindowClamps(t *testing.T) {
	m := newModel()
	r := m.Catalog().OfferedRegions(catalog.M5XLarge)[0]
	from := simclock.Epoch.Add(-3 * PriceStep) // clamps to step 0
	to := simclock.Epoch.Add(10 * PriceStep)
	got, err := m.AveragePrice(catalog.M5XLarge, r, from, to)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveAveragePrice(t, m, catalog.M5XLarge, r, from, to)
	if diff := math.Abs(got - want); diff > 1e-12 {
		t.Fatalf("pre-start window: got %.15f, want %.15f", got, want)
	}
}

func TestAveragePriceReversedWindowRejected(t *testing.T) {
	m := newModel()
	r := m.Catalog().OfferedRegions(catalog.M5XLarge)[0]
	from := simclock.Epoch.Add(24 * time.Hour)
	if _, err := m.AveragePrice(catalog.M5XLarge, r, from, from.Add(-time.Hour)); err == nil {
		t.Fatal("reversed window should error")
	}
}

func TestRegionSpotPriceMatchesScan(t *testing.T) {
	m := newModel()
	for _, r := range m.Catalog().OfferedRegions(catalog.M5XLarge) {
		for step := 0; step < 50; step += 7 {
			at := simclock.Epoch.Add(time.Duration(step) * PriceStep)
			price, az, err := m.RegionSpotPrice(catalog.M5XLarge, r, at)
			if err != nil {
				t.Fatal(err)
			}
			// Mirror the original scan, first-strict-min tie-break included.
			var wantPrice float64
			var wantAZ catalog.AZ
			for i, zone := range m.Catalog().Zones(r) {
				p, err := m.SpotPrice(catalog.M5XLarge, zone, at)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 || p < wantPrice {
					wantPrice, wantAZ = p, zone
				}
			}
			if price != wantPrice || az != wantAZ {
				t.Fatalf("RegionSpotPrice(%s@%d) = (%.6f, %s), scan says (%.6f, %s)",
					r, step, price, az, wantPrice, wantAZ)
			}
		}
	}
}

func TestCheapestSpotRegionMemoized(t *testing.T) {
	m := newModel()
	from := simclock.Epoch
	to := from.Add(14 * 24 * time.Hour)
	r1, p1, err := m.CheapestSpotRegion(catalog.M5XLarge, from, to)
	if err != nil {
		t.Fatal(err)
	}
	r2, p2, err := m.CheapestSpotRegion(catalog.M5XLarge, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || p1 != p2 {
		t.Fatalf("memoized call diverged: (%s, %f) then (%s, %f)", r1, p1, r2, p2)
	}
	// A fresh model must agree — the memo is a cache, not a state change.
	fresh := newModel()
	r3, p3, err := fresh.CheapestSpotRegion(catalog.M5XLarge, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 || p1 != p3 {
		t.Fatalf("fresh model disagrees: (%s, %f) vs (%s, %f)", r1, p1, r3, p3)
	}
}
