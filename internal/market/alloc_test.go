package market

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/raceflag"
	"spotverse/internal/simclock"
)

// These tests are the runtime half of the //spotverse:hotpath gates in
// this package: the static hotpath analyzer proves the warm paths do
// not allocate by construction, and AllocsPerRun proves the compiler
// agrees. A regression in either direction fails exactly one of the two.

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
}

// TestAveragePriceWarmAllocFree: after the first query materialises the
// region series and its prefix sums, repeats are two slice reads.
func TestAveragePriceWarmAllocFree(t *testing.T) {
	skipUnderRace(t)
	m := New(catalog.Default(), 42, simclock.Epoch)
	typ := catalog.InstanceType("m5.xlarge")
	r := catalog.Region("us-east-1")
	from, to := simclock.Epoch, simclock.Epoch.Add(24*time.Hour)
	if _, err := m.AveragePrice(typ, r, from, to); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.AveragePrice(typ, r, from, to); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm AveragePrice allocated %v per run, want 0", allocs)
	}
}

// TestPriceSeriesAtWarmAllocFree: sampling published segments through
// the lock-free handle (PriceSeries.At -> sharedWalk.at) is read-only.
func TestPriceSeriesAtWarmAllocFree(t *testing.T) {
	skipUnderRace(t)
	m := New(catalog.Default(), 42, simclock.Epoch)
	typ := catalog.InstanceType("m5.xlarge")
	az := m.Catalog().Zones("us-east-1")[0]
	ps, err := m.PriceSeries(typ, az)
	if err != nil {
		t.Fatal(err)
	}
	last := simclock.Epoch.Add(48 * time.Hour)
	ps.At(last) // materialise through the probe window
	allocs := testing.AllocsPerRun(200, func() {
		for h := time.Duration(0); h <= 48*time.Hour; h += 7 * time.Hour {
			ps.At(simclock.Epoch.Add(h))
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PriceSeries.At allocated %v per run, want 0", allocs)
	}
}

// TestAcquireWarmAllocFree: a repeat (seed, start) key is a map hit plus
// an LRU stamp.
func TestAcquireWarmAllocFree(t *testing.T) {
	skipUnderRace(t)
	st := NewSnapshotStore(catalog.Default(), 0)
	st.Acquire(1, simclock.Epoch)
	allocs := testing.AllocsPerRun(200, func() {
		st.Acquire(1, simclock.Epoch)
	})
	if allocs != 0 {
		t.Fatalf("warm Acquire allocated %v per run, want 0", allocs)
	}
}

// TestAcquireSweepAllocFree pins the eviction-sweep fix the hotpath
// analyzer motivated: the sweep used to allocate a fresh victims slice
// plus a sort.Slice closure and interface box on every over-limit
// Acquire. The store now reuses scratch space and sorts through a
// one-word pointer interface, so an Acquire that runs the full sweep —
// candidate collection, LRU sort, per-victim Evict calls — allocates
// nothing when no walk tables actually need freeing.
func TestAcquireSweepAllocFree(t *testing.T) {
	skipUnderRace(t)
	st := NewSnapshotStore(catalog.Default(), 1)
	for i := int64(0); i < 6; i++ {
		st.Acquire(i, simclock.Epoch)
	}
	// Claim phantom residency: totals stay over the high-water mark so
	// every Acquire runs the sweep in full, but the walks hold no tables,
	// so per-victim Evict frees (and allocates) nothing.
	for _, s := range st.all {
		s.resident.Store(10)
	}
	st.Acquire(0, simclock.Epoch) // grow the scratch slice once
	allocs := testing.AllocsPerRun(200, func() {
		st.Acquire(0, simclock.Epoch)
	})
	if allocs != 0 {
		t.Fatalf("over-limit Acquire sweep allocated %v per run, want 0", allocs)
	}
}
