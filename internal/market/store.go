package market

import (
	"sort"
	"sync"
	"time"

	"spotverse/internal/catalog"
)

// SnapshotStore shares market snapshots across environments: every Env
// built for the same (seed, start) reads the same Snapshot, so a
// multi-arm figure materialises each seed's market once instead of once
// per arm. The store bounds resident memory by counting published
// segments across all snapshots and evicting least-recently-acquired
// snapshots when the total crosses the high-water mark.
type SnapshotStore struct {
	cat   *catalog.Catalog
	limit int64 // high-water mark in segments; <= 0 means unbounded

	mu    sync.Mutex
	clock int64
	byKey map[storeKey]*Snapshot
	all   []*Snapshot // insertion order, so eviction never iterates a map

	// victims is evictLocked's scratch space, reused across sweeps so an
	// over-limit Acquire does not allocate a candidate slice per call.
	// Sorted through a pointer receiver so the sort.Interface value holds
	// one word and boxing it allocates nothing.
	victims byLastUse
}

// byLastUse sorts eviction candidates least-recently-acquired first.
// lastUse values are distinct (the store clock is strictly increasing
// under mu), so the order is total and any sort yields it.
type byLastUse []*Snapshot

func (v *byLastUse) Len() int           { return len(*v) }
func (v *byLastUse) Less(i, j int) bool { return (*v)[i].lastUse.Load() < (*v)[j].lastUse.Load() }
func (v *byLastUse) Swap(i, j int)      { (*v)[i], (*v)[j] = (*v)[j], (*v)[i] }

type storeKey struct {
	seed  int64
	start int64 // start.UnixNano()
}

// NewSnapshotStore returns a store over the catalog. limitSegments
// bounds resident memory (each segment is 256 float64 samples, 2 KiB):
// when the total published segment count exceeds it, whole snapshots
// are evicted oldest-acquired first. The just-acquired snapshot is
// flushed only as a last resort, so the bound is a high-water mark —
// one active snapshot's working set may exceed it between acquires.
// limitSegments <= 0 disables eviction.
func NewSnapshotStore(cat *catalog.Catalog, limitSegments int) *SnapshotStore {
	return &SnapshotStore{
		cat:   cat,
		limit: int64(limitSegments),
		byKey: make(map[storeKey]*Snapshot),
	}
}

// Catalog exposes the store's inventory (shared by every snapshot).
func (st *SnapshotStore) Catalog() *catalog.Catalog { return st.cat }

// LimitSegments reports the configured high-water mark (<= 0 means
// unbounded).
func (st *SnapshotStore) LimitSegments() int { return int(st.limit) }

// Len reports how many snapshots the store tracks (resident or not).
func (st *SnapshotStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.all)
}

// ResidentSegments reports the total published segments across all
// snapshots.
func (st *SnapshotStore) ResidentSegments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n int64
	for _, s := range st.all {
		n += s.resident.Load()
	}
	return int(n)
}

// Acquire returns the shared snapshot for (seed, start), building it on
// first use. Safe for concurrent use: every caller with the same key
// gets the same *Snapshot, and values read through it are byte-
// identical to a private market.New regardless of sharing, eviction, or
// goroutine interleaving.
//
//spotverse:hotpath
func (st *SnapshotStore) Acquire(seed int64, start time.Time) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := storeKey{seed: seed, start: start.UnixNano()}
	s := st.byKey[k]
	if s == nil {
		//spotverse:allow hotpath first-use construction; repeat (seed, start) keys return the cached snapshot
		s = NewSnapshot(st.cat, seed, start)
		st.byKey[k] = s
		st.all = append(st.all, s)
	}
	st.clock++
	s.lastUse.Store(st.clock)
	st.evictLocked(s)
	return s
}

// evictLocked enforces the high-water mark, least-recently-acquired
// first. keep (the snapshot being handed out) is flushed only if every
// other snapshot's segments were not enough.
func (st *SnapshotStore) evictLocked(keep *Snapshot) {
	if st.limit <= 0 {
		return
	}
	var total int64
	for _, s := range st.all {
		total += s.resident.Load()
	}
	if total <= st.limit {
		return
	}
	st.victims = st.victims[:0]
	for _, s := range st.all {
		if s != keep {
			st.victims = append(st.victims, s)
		}
	}
	sort.Sort(&st.victims)
	for _, s := range st.victims {
		if total <= st.limit {
			return
		}
		total -= int64(s.Evict())
	}
	if total > st.limit {
		keep.Evict()
	}
}
