package market

import (
	"testing"
	"testing/quick"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

func newModel() *Model {
	return New(catalog.Default(), 42, simclock.Epoch)
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := newModel(), newModel()
	at := simclock.Epoch.Add(30 * 24 * time.Hour)
	for _, it := range a.Catalog().InstanceTypes() {
		for _, r := range a.Catalog().OfferedRegions(it) {
			pa, _, err := a.RegionSpotPrice(it, r, at)
			if err != nil {
				t.Fatalf("price %s/%s: %v", it, r, err)
			}
			pb, _, _ := b.RegionSpotPrice(it, r, at)
			if pa != pb {
				t.Fatalf("nondeterministic price for %s/%s: %v vs %v", it, r, pa, pb)
			}
		}
	}
}

func TestDeterministicRegardlessOfQueryOrder(t *testing.T) {
	a, b := newModel(), newModel()
	late := simclock.Epoch.Add(100 * 24 * time.Hour)
	early := simclock.Epoch.Add(1 * 24 * time.Hour)
	// a queries late then early; b queries early then late.
	aLate, _ := a.SpotPrice(catalog.M5XLarge, "ca-central-1a", late)
	aEarly, _ := a.SpotPrice(catalog.M5XLarge, "ca-central-1a", early)
	bEarly, _ := b.SpotPrice(catalog.M5XLarge, "ca-central-1a", early)
	bLate, _ := b.SpotPrice(catalog.M5XLarge, "ca-central-1a", late)
	if aLate != bLate || aEarly != bEarly {
		t.Fatalf("query order changed series: (%v,%v) vs (%v,%v)", aEarly, aLate, bEarly, bLate)
	}
}

func TestSpotPriceBandAroundBaseline(t *testing.T) {
	m := newModel()
	cat := m.Catalog()
	for _, it := range cat.InstanceTypes() {
		for _, r := range cat.OfferedRegions(it) {
			base, err := cat.BaselineSpotPrice(it, r)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < 180; d += 13 {
				at := simclock.Epoch.Add(time.Duration(d) * 24 * time.Hour)
				p, _, err := m.RegionSpotPrice(it, r, at)
				if err != nil {
					t.Fatal(err)
				}
				if p < base*0.87 || p > base*1.13 {
					t.Fatalf("%s/%s day %d: price %v outside band of baseline %v", it, r, d, p, base)
				}
			}
		}
	}
}

func TestSpotBelowOnDemand(t *testing.T) {
	m := newModel()
	at := simclock.Epoch.Add(45 * 24 * time.Hour)
	for _, it := range m.Catalog().InstanceTypes() {
		for _, r := range m.Catalog().OfferedRegions(it) {
			spot, _, err := m.RegionSpotPrice(it, r, at)
			if err != nil {
				t.Fatal(err)
			}
			od, err := m.Catalog().OnDemandPrice(it, r)
			if err != nil {
				t.Fatal(err)
			}
			if spot >= od {
				t.Fatalf("%s/%s: spot %v >= on-demand %v", it, r, spot, od)
			}
		}
	}
}

func TestTable1BaselineRegions(t *testing.T) {
	m := newModel()
	from := simclock.Epoch
	to := from.Add(14 * 24 * time.Hour)
	want := map[catalog.InstanceType]catalog.Region{
		catalog.M5Large:   "us-west-2",
		catalog.M5XLarge:  "ca-central-1",
		catalog.M52XLarge: "ap-northeast-3",
		catalog.R52XLarge: "ca-central-1",
		catalog.C52XLarge: "eu-north-1",
	}
	for it, wantRegion := range want {
		got, _, err := m.CheapestSpotRegion(it, from, to)
		if err != nil {
			t.Fatalf("%s: %v", it, err)
		}
		if got != wantRegion {
			t.Errorf("cheapest region for %s = %s, want %s (Table 1)", it, got, wantRegion)
		}
	}
}

func TestStabilityBuckets(t *testing.T) {
	cases := []struct {
		f    float64
		want int
	}{
		{0.0, 3}, {0.049, 3}, {0.05, 2}, {0.19, 2}, {0.20, 1}, {0.35, 1},
	}
	for _, c := range cases {
		if got := StabilityFromFrequency(c.f); got != c.want {
			t.Errorf("StabilityFromFrequency(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

// TestTierCombinedScores pins the calibration DESIGN.md promises: the
// stable quartet scores 6+, the moderate quartet 5, the volatile quartet
// 4, during the experiment window (first 30 days).
func TestTierCombinedScores(t *testing.T) {
	m := newModel()
	groups := map[int][]catalog.Region{
		6: {"us-west-1", "ap-northeast-3", "eu-west-1", "eu-north-1"},
		5: {"ap-southeast-1", "eu-west-3", "ca-central-1", "eu-west-2"},
		4: {"us-east-1", "us-east-2", "ap-southeast-2", "us-west-2"},
	}
	for wantFloor, regions := range groups {
		for _, r := range regions {
			for d := 0; d < 30; d += 7 {
				at := simclock.Epoch.Add(time.Duration(d) * 24 * time.Hour)
				got, err := m.CombinedScore(catalog.M5XLarge, r, at)
				if err != nil {
					t.Fatal(err)
				}
				if got < wantFloor || got > wantFloor+1 {
					t.Errorf("combined score for %s day %d = %d, want in [%d,%d]", r, d, got, wantFloor, wantFloor+1)
				}
			}
		}
	}
}

func TestCaCentralTrap(t *testing.T) {
	m := newModel()
	at := simclock.Epoch.Add(24 * time.Hour)
	st, err := m.StabilityScore(catalog.M5XLarge, "ca-central-1", at)
	if err != nil {
		t.Fatal(err)
	}
	if st != StabilityLow {
		t.Fatalf("ca-central-1 m5.xlarge stability = %d, want 1 (the paper's trap)", st)
	}
	sps, err := m.PlacementScore(catalog.M5XLarge, "ca-central-1", at)
	if err != nil {
		t.Fatal(err)
	}
	if sps < 4 {
		t.Fatalf("ca-central-1 m5.xlarge SPS = %d, want >= 4", sps)
	}
	// The trap applies to the m5/r5 families only.
	stC5, err := m.StabilityScore(catalog.C52XLarge, "ca-central-1", at)
	if err != nil {
		t.Fatal(err)
	}
	if stC5 == StabilityLow {
		t.Fatalf("ca-central-1 c5.2xlarge should not be trapped, got stability 1")
	}
}

func TestHazardScalesWithFrequency(t *testing.T) {
	m := newModel()
	at := simclock.Epoch.Add(24 * time.Hour)
	hBad, err := m.HazardPerHour(catalog.M5XLarge, "ca-central-1", at)
	if err != nil {
		t.Fatal(err)
	}
	hGood, err := m.HazardPerHour(catalog.M5XLarge, "eu-north-1", at)
	if err != nil {
		t.Fatal(err)
	}
	if hBad <= hGood*2 {
		t.Fatalf("hazard ca-central-1 %v should dwarf eu-north-1 %v", hBad, hGood)
	}
	if hBad < 0.09 || hBad > 0.19 {
		t.Fatalf("ca-central-1 hazard %v/h outside calibration band [0.09, 0.19]", hBad)
	}
}

func TestPriceHistoryLengthAndMonotoneTime(t *testing.T) {
	m := newModel()
	from := simclock.Epoch
	to := from.Add(10 * 24 * time.Hour)
	hist, err := m.PriceHistory(catalog.C52XLarge, "eu-north-1a", from, to, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 11 {
		t.Fatalf("history length = %d, want 11", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if !hist[i].Time.After(hist[i-1].Time) {
			t.Fatal("history times not strictly increasing")
		}
	}
}

func TestPriceHistoryReversedWindowRejected(t *testing.T) {
	m := newModel()
	_, err := m.PriceHistory(catalog.C52XLarge, "eu-north-1a", simclock.Epoch.Add(time.Hour), simclock.Epoch, 0)
	if err == nil {
		t.Fatal("reversed window should error")
	}
}

func TestAdvisorSnapshotConsistency(t *testing.T) {
	m := newModel()
	at := simclock.Epoch.Add(72 * time.Hour)
	rows, err := m.AdvisorSnapshot(catalog.M5XLarge, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(m.Catalog().OfferedRegions(catalog.M5XLarge)) {
		t.Fatalf("snapshot rows = %d, want one per region", len(rows))
	}
	for _, row := range rows {
		if row.CombinedScore != row.PlacementScore+row.StabilityScore {
			t.Fatalf("%s: combined %d != sps %d + stability %d", row.Region, row.CombinedScore, row.PlacementScore, row.StabilityScore)
		}
		if row.SavingsOverOnDemand <= 0 || row.SavingsOverOnDemand >= 1 {
			t.Fatalf("%s: savings %v out of (0,1)", row.Region, row.SavingsOverOnDemand)
		}
		if row.StabilityScore != StabilityFromFrequency(row.InterruptionFrequency) {
			t.Fatalf("%s: stability inconsistent with frequency", row.Region)
		}
	}
}

func TestP3NotOfferedEverywhere(t *testing.T) {
	m := newModel()
	offered := m.Catalog().OfferedRegions(catalog.P32XLarge)
	all := m.Catalog().Regions()
	if len(offered) == 0 || len(offered) >= len(all) {
		t.Fatalf("p3.2xlarge offered in %d/%d regions, want a strict subset", len(offered), len(all))
	}
	if _, err := m.Advisor(catalog.P32XLarge, "ca-central-1", simclock.Epoch); err == nil {
		t.Fatal("advisor for p3 in a non-offering region should error")
	}
}

func TestP3PlacementScoreNearConstantAcrossRegions(t *testing.T) {
	m := newModel()
	at := simclock.Epoch.Add(60 * 24 * time.Hour)
	min, max := 11.0, 0.0
	for _, r := range m.Catalog().OfferedRegions(catalog.P32XLarge) {
		v, err := m.PlacementScoreLatent(catalog.P32XLarge, r, at)
		if err != nil {
			t.Fatal(err)
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 1.0 {
		t.Fatalf("p3 SPS spread %v too wide; paper observes near-constant SPS", max-min)
	}
}

func TestLaunchSuccessProbabilityBounds(t *testing.T) {
	m := newModel()
	f := func(day uint8) bool {
		at := simclock.Epoch.Add(time.Duration(day) * 24 * time.Hour)
		p, err := m.LaunchSuccessProbability(catalog.M5XLarge, "us-east-1", at)
		return err == nil && p >= 0.5 && p <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAveragePriceWithinBand(t *testing.T) {
	m := newModel()
	base, err := m.Catalog().BaselineSpotPrice(catalog.M5XLarge, "eu-north-1")
	if err != nil {
		t.Fatal(err)
	}
	avg, err := m.AveragePrice(catalog.M5XLarge, "eu-north-1", simclock.Epoch, simclock.Epoch.Add(30*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if avg < base*0.85 || avg > base*1.15 {
		t.Fatalf("average price %v far from baseline %v", avg, base)
	}
}

func TestQueriesBeforeStartClampToFirstSample(t *testing.T) {
	m := newModel()
	p1, err := m.SpotPrice(catalog.M5XLarge, "us-east-1a", simclock.Epoch.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.SpotPrice(catalog.M5XLarge, "us-east-1a", simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("pre-start query %v != first sample %v", p1, p2)
	}
}

func TestUnknownRegionErrors(t *testing.T) {
	m := newModel()
	if _, _, err := m.RegionSpotPrice(catalog.M5XLarge, "mars-north-1", simclock.Epoch); err == nil {
		t.Fatal("unknown region should error")
	}
	if _, err := m.StabilityScore(catalog.M5XLarge, "mars-north-1", simclock.Epoch); err == nil {
		t.Fatal("unknown region should error")
	}
	if _, err := m.SpotPrice("x9.mega", "us-east-1a", simclock.Epoch); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestOutageWindowsMergeOverlap(t *testing.T) {
	m := newModel()
	r := catalog.Region("us-east-1")
	base := simclock.Epoch
	if err := m.InjectOutage(r, base.Add(1*time.Hour), base.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectOutage(r, base.Add(2*time.Hour), base.Add(5*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ws := m.OutageWindows(r)
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1 merged", len(ws))
	}
	if !ws[0].From.Equal(base.Add(1*time.Hour)) || !ws[0].To.Equal(base.Add(5*time.Hour)) {
		t.Fatalf("merged window = %v..%v", ws[0].From, ws[0].To)
	}
}

func TestOutageWindowsMergeAbutting(t *testing.T) {
	m := newModel()
	r := catalog.Region("us-east-1")
	base := simclock.Epoch
	// Back-to-back windows: [1h,2h) then [2h,3h) — they share only the
	// boundary instant and must still fold into one.
	if err := m.InjectOutage(r, base.Add(1*time.Hour), base.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectOutage(r, base.Add(2*time.Hour), base.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ws := m.OutageWindows(r)
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1 merged", len(ws))
	}
	if !ws[0].From.Equal(base.Add(1*time.Hour)) || !ws[0].To.Equal(base.Add(3*time.Hour)) {
		t.Fatalf("merged window = %v..%v", ws[0].From, ws[0].To)
	}
	if !m.InOutage(r, base.Add(2*time.Hour)) {
		t.Fatal("boundary instant must stay inside the merged window")
	}
}

func TestOutageWindowsChainMerge(t *testing.T) {
	m := newModel()
	r := catalog.Region("us-east-1")
	base := simclock.Epoch
	// Two disjoint windows bridged by a third that overlaps both.
	if err := m.InjectOutage(r, base.Add(1*time.Hour), base.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectOutage(r, base.Add(4*time.Hour), base.Add(5*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if ws := m.OutageWindows(r); len(ws) != 2 {
		t.Fatalf("pre-bridge windows = %d, want 2 disjoint", len(ws))
	}
	if err := m.InjectOutage(r, base.Add(90*time.Minute), base.Add(270*time.Minute)); err != nil {
		t.Fatal(err)
	}
	ws := m.OutageWindows(r)
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1 after bridging", len(ws))
	}
	if !ws[0].From.Equal(base.Add(1*time.Hour)) || !ws[0].To.Equal(base.Add(5*time.Hour)) {
		t.Fatalf("bridged window = %v..%v", ws[0].From, ws[0].To)
	}
}

func TestOutageWindowsKeepDistinctRegionsSeparate(t *testing.T) {
	m := newModel()
	base := simclock.Epoch
	if err := m.InjectOutage("us-east-1", base.Add(1*time.Hour), base.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectOutage("eu-west-1", base.Add(2*time.Hour), base.Add(4*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(m.OutageWindows("us-east-1")) != 1 || len(m.OutageWindows("eu-west-1")) != 1 {
		t.Fatal("same-time windows in different regions must not merge")
	}
	if m.InOutage("eu-west-1", base.Add(90*time.Minute)) {
		t.Fatal("eu-west-1 outage leaked backwards")
	}
}
