package market

import (
	"math"
	"sync"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// probe is one market query whose result must be bit-identical however
// the snapshot is shared, raced, or evicted.
type probe struct {
	kind string // "spot", "region", "freq", "sps", "avg"
	t    catalog.InstanceType
	az   catalog.AZ
	r    catalog.Region
	at   time.Time
	to   time.Time
}

// buildProbes enumerates queries for typ across every offered region at
// staggered horizons: early steps, mid-experiment, and a 90-day tail,
// deliberately out of generation order.
func buildProbes(cat *catalog.Catalog, typ catalog.InstanceType) []probe {
	var ps []probe
	horizons := []time.Duration{
		90 * 24 * time.Hour,
		6 * time.Hour,
		37 * 24 * time.Hour,
		0,
		14*24*time.Hour + 6*time.Hour,
		60 * 24 * time.Hour,
	}
	for _, r := range cat.OfferedRegions(typ) {
		for _, h := range horizons {
			at := simclock.Epoch.Add(h)
			ps = append(ps, probe{kind: "region", t: typ, r: r, at: at})
			ps = append(ps, probe{kind: "freq", t: typ, r: r, at: at})
			ps = append(ps, probe{kind: "sps", t: typ, r: r, at: at})
			ps = append(ps, probe{kind: "avg", t: typ, r: r, at: simclock.Epoch, to: at})
		}
		for _, az := range cat.Zones(r) {
			for _, h := range horizons {
				ps = append(ps, probe{kind: "spot", t: typ, az: az, at: simclock.Epoch.Add(h)})
			}
		}
	}
	return ps
}

func evalProbe(t *testing.T, m *Model, p probe) float64 {
	t.Helper()
	var (
		v   float64
		err error
	)
	switch p.kind {
	case "spot":
		v, err = m.SpotPrice(p.t, p.az, p.at)
	case "region":
		v, _, err = m.RegionSpotPrice(p.t, p.r, p.at)
	case "freq":
		v, err = m.InterruptionFrequency(p.t, p.r, p.at)
	case "sps":
		v, err = m.PlacementScoreLatent(p.t, p.r, p.at)
	case "avg":
		v, err = m.AveragePrice(p.t, p.r, p.at, p.to)
	}
	if err != nil {
		t.Fatalf("probe %+v: %v", p, err)
	}
	return v
}

// TestSnapshotConcurrentStress has 12 goroutines concurrently extending
// and reading one seed's snapshot at staggered horizons and asserts
// every sample is bit-exact against a sequentially materialised model.
// Run under -race this is the snapshot's publication-safety gate.
func TestSnapshotConcurrentStress(t *testing.T) {
	const seed = 42
	typ := catalog.InstanceType("m5.xlarge")
	probes := buildProbes(catalog.Default(), typ)

	// Sequential reference: a private model, one goroutine, in-order.
	ref := New(catalog.Default(), seed, simclock.Epoch)
	want := make([]float64, len(probes))
	for i, p := range probes {
		want[i] = evalProbe(t, ref, p)
	}

	snap := NewSnapshot(catalog.Default(), seed, simclock.Epoch)
	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := FromSnapshot(snap)
			// Stagger: each goroutine starts at a different probe and
			// wraps, so extensions race from every horizon at once.
			for i := range probes {
				j := (i*7 + g*len(probes)/workers) % len(probes)
				got := evalProbe(t, m, probes[j])
				if math.Float64bits(got) != math.Float64bits(want[j]) {
					select {
					case errs <- probes[j].kind:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for kind := range errs {
		t.Fatalf("concurrent %s probe diverged from sequential reference", kind)
	}
	if snap.ResidentSegments() == 0 {
		t.Fatal("stress run published no segments")
	}
}

// TestSnapshotEvictionByteIdentical proves a re-materialised segment is
// byte-identical: evict everything, then read back — including a late
// step first, which forces the replay path rather than frontier
// extension.
func TestSnapshotEvictionByteIdentical(t *testing.T) {
	const seed = 7
	typ := catalog.InstanceType("r5.2xlarge")
	probes := buildProbes(catalog.Default(), typ)

	snap := NewSnapshot(catalog.Default(), seed, simclock.Epoch)
	m := FromSnapshot(snap)
	want := make([]float64, len(probes))
	for i, p := range probes {
		want[i] = evalProbe(t, m, p)
	}

	released := snap.Evict()
	if released == 0 {
		t.Fatal("Evict released no segments")
	}
	if got := snap.ResidentSegments(); got != 0 {
		t.Fatalf("ResidentSegments after Evict = %d, want 0", got)
	}

	// Late-horizon probe first: the covering segment must come back via
	// stream replay, not frontier extension.
	late := probes[len(probes)-1]
	_ = evalProbe(t, m, late)

	for i, p := range probes {
		got := evalProbe(t, m, p)
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Fatalf("probe %d (%s) after eviction: got %v want %v", i, p.kind, got, want[i])
		}
	}
	if snap.ResidentSegments() != released {
		t.Fatalf("re-materialised %d segments, want %d", snap.ResidentSegments(), released)
	}
}

// TestSnapshotStoreSharing: same (seed, start) yields the same
// snapshot; a different seed or start yields a different one.
func TestSnapshotStoreSharing(t *testing.T) {
	st := NewSnapshotStore(catalog.Default(), 0)
	a := st.Acquire(42, simclock.Epoch)
	b := st.Acquire(42, simclock.Epoch)
	if a != b {
		t.Fatal("same (seed, start) did not share a snapshot")
	}
	if c := st.Acquire(43, simclock.Epoch); c == a {
		t.Fatal("different seed shared a snapshot")
	}
	if d := st.Acquire(42, simclock.Epoch.Add(time.Hour)); d == a {
		t.Fatal("different start shared a snapshot")
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
}

// TestSnapshotStoreHighWaterEviction: crossing the segment high-water
// mark evicts the least-recently-acquired snapshot's segments, and the
// evicted market reads back bit-identically.
func TestSnapshotStoreHighWaterEviction(t *testing.T) {
	typ := catalog.InstanceType("m5.xlarge")
	probes := buildProbes(catalog.Default(), typ)

	grow := func(s *Snapshot) []float64 {
		m := FromSnapshot(s)
		out := make([]float64, len(probes))
		for i, p := range probes {
			out[i] = evalProbe(t, m, p)
		}
		return out
	}

	st := NewSnapshotStore(catalog.Default(), 0)
	s1 := st.Acquire(1, simclock.Epoch)
	want := grow(s1)
	per := s1.ResidentSegments()
	if per == 0 {
		t.Fatal("no segments materialised")
	}

	// Re-key the store with a limit that holds ~2 such snapshots.
	st = NewSnapshotStore(catalog.Default(), 2*per+per/2)
	s1 = st.Acquire(1, simclock.Epoch)
	grow(s1)
	s2 := st.Acquire(2, simclock.Epoch)
	grow(s2)
	s3 := st.Acquire(3, simclock.Epoch)
	grow(s3)
	// s3's growth crossed the mark only after Acquire ran, so trigger
	// enforcement with another acquire.
	st.Acquire(3, simclock.Epoch)

	if s1.ResidentSegments() != 0 {
		t.Fatalf("oldest snapshot kept %d segments past the high-water mark", s1.ResidentSegments())
	}
	if s3.ResidentSegments() == 0 {
		t.Fatal("most-recent snapshot was evicted")
	}
	if total, limit := st.ResidentSegments(), st.LimitSegments(); total > limit {
		t.Fatalf("resident %d exceeds limit %d after enforcement", total, limit)
	}

	// The evicted snapshot is still the same realization, bit for bit.
	if got := st.Acquire(1, simclock.Epoch); got != s1 {
		t.Fatal("re-acquire built a new snapshot instead of reviving the evicted one")
	}
	for i, v := range grow(s1) {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("probe %d diverged after store eviction", i)
		}
	}
}

// TestPriceSeriesMatchesSpotPrice pins the lock-free handle to the
// query it replaces.
func TestPriceSeriesMatchesSpotPrice(t *testing.T) {
	m := New(catalog.Default(), 42, simclock.Epoch)
	typ := catalog.InstanceType("m5.xlarge")
	az := m.Catalog().Zones("us-east-1")[0]
	ps, err := m.PriceSeries(typ, az)
	if err != nil {
		t.Fatal(err)
	}
	for h := -6 * time.Hour; h <= 60*24*time.Hour; h += 13 * time.Hour {
		at := simclock.Epoch.Add(h)
		want, err := m.SpotPrice(typ, az, at)
		if err != nil {
			t.Fatal(err)
		}
		if got := ps.At(at); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("PriceSeries.At(%v) = %v, SpotPrice = %v", at, got, want)
		}
	}
	if _, err := m.PriceSeries(typ, catalog.AZ("atlantis-1a")); err == nil {
		t.Fatal("PriceSeries for unknown AZ succeeded")
	}
}
