package market

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// This file is the immutable, concurrency-safe half of the market
// split: a Snapshot owns every deterministic series for one (catalog,
// seed, start) triple — price walks per (type, AZ), interruption-
// frequency and placement-score walks per (type, region), and the
// cheapest-AZ min/prefix series per (type, region) — and can back any
// number of Models (one per Env) at once.
//
// Concurrency contract:
//
//   - Series materialise in fixed-size segments of segSize samples.
//     Only full segments are ever published, by an atomic pointer swap
//     of the segment table, so the read path is lock-free: two atomic
//     loads and an index.
//   - A short per-series mutex guards generation only — the frontier
//     RNG, the last drawn value, and table publication. Readers take it
//     only when the sample they want is not yet published.
//   - Determinism: each walk draws from its own simclock.Stream keyed
//     by (seed, stream name), strictly sequentially, so a sample
//     depends only on (seed, stream, index) — never on which
//     goroutine, strategy arm, or query order triggered it. Rounding a
//     request up to a segment boundary merely draws later samples of
//     the same stream earlier than a per-env walk would have.
//   - Eviction (the store's memory bound) unpublishes segments but
//     keeps the frontier state; an evicted segment re-materialises by
//     replaying its stream from index 0, reproducing identical bytes.

// Segment geometry: 256 float64 samples (2 KiB) per segment.
const (
	segShift = 8
	segSize  = 1 << segShift
	segMask  = segSize - 1
)

// walkSeg is one immutable, fully materialised block of samples.
type walkSeg [segSize]float64

// sharedWalk is the concurrency-safe successor of the per-Model walk:
// the same bounded mean-reverting process, materialised in published
// segments instead of one private slice.
type sharedWalk struct {
	seed   int64
	stream string

	base, sigma, revert, lo, hi float64

	// resident points at the owning Snapshot's published-segment
	// counter (SnapshotStore accounting).
	resident *atomic.Int64

	// segs is the published table of fully materialised segments; a nil
	// entry is an evicted segment. Every published table satisfies
	// count == len(table)*segSize — the frontier only appends whole
	// segments and eviction nils entries without shortening the table.
	segs atomic.Pointer[[]*walkSeg]

	mu    sync.Mutex    // guards the frontier below and table publication
	rng   *simclock.RNG // frontier stream; nil until the first draw
	last  float64       // sample count-1, the recurrence state
	count int           // samples drawn by the frontier so far
}

func (s *Snapshot) newWalk(stream string, base, sigma, revert, lo, hi float64) *sharedWalk {
	return &sharedWalk{
		seed: s.seed, stream: stream,
		base: base, sigma: sigma, revert: revert, lo: lo, hi: hi,
		resident: &s.resident,
	}
}

// at returns the walk value at step k (k < 0 clamps to 0), publishing
// segments as needed. Lock-free when the segment is already published.
//
//spotverse:hotpath
func (w *sharedWalk) at(k int) float64 {
	if k < 0 {
		k = 0
	}
	if tab := w.segs.Load(); tab != nil {
		if si := k >> segShift; si < len(*tab) {
			if seg := (*tab)[si]; seg != nil {
				return seg[k&segMask]
			}
		}
	}
	//spotverse:allow hotpath segment-miss slow path; warm reads return from the published table above
	return w.materialize(k)
}

func (w *sharedWalk) table() []*walkSeg {
	if p := w.segs.Load(); p != nil {
		return *p
	}
	return nil
}

// materialize publishes the segment holding step k and returns the
// sample — by extending the frontier, or by replaying the stream if the
// segment was evicted.
func (w *sharedWalk) materialize(k int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	si, off := k>>segShift, k&segMask
	tab := w.table()
	if si < len(tab) && tab[si] != nil {
		// Lost a race: another goroutine published it while we waited.
		return tab[si][off]
	}
	if k >= w.count {
		tab = w.extendLocked(si + 1)
	}
	if seg := tab[si]; seg != nil {
		return seg[off]
	}
	// Evicted segment: replay the stream from index 0 and republish
	// just this segment — same stream, same recurrence, same order, so
	// the bytes are identical to the first materialisation.
	seg := w.replay(si)
	next := make([]*walkSeg, len(tab))
	copy(next, tab)
	next[si] = seg
	w.segs.Store(&next)
	w.resident.Add(1)
	return seg[off]
}

// extendLocked grows the frontier to nseg full segments and publishes
// the new table. Caller holds w.mu.
func (w *sharedWalk) extendLocked(nseg int) []*walkSeg {
	tab := w.table()
	next := make([]*walkSeg, nseg)
	copy(next, tab)
	if w.rng == nil {
		// Seeding a stream is the expensive part of a cold market
		// (~1.3µs each across ~600 walks per snapshot); defer it to the
		// first draw so untouched series cost only their struct.
		w.rng = simclock.Stream(w.seed, w.stream)
	}
	for si := len(tab); si < nseg; si++ {
		seg := new(walkSeg)
		for i := range seg {
			var v float64
			if w.count == 0 {
				// First sample starts near base with a small perturbation
				// so distinct markets don't all begin at their exact tier
				// midpoint.
				v = clamp(w.base+w.rng.Normal(0, w.sigma), w.lo, w.hi)
			} else {
				v = clamp(w.last+w.revert*(w.base-w.last)+w.rng.Normal(0, w.sigma), w.lo, w.hi)
			}
			seg[i] = v
			w.last = v
			w.count++
		}
		next[si] = seg
	}
	w.resident.Add(int64(nseg - len(tab)))
	w.segs.Store(&next)
	return next
}

// replay regenerates segment si from a fresh stream. Caller holds w.mu.
func (w *sharedWalk) replay(si int) *walkSeg {
	rng := simclock.Stream(w.seed, w.stream)
	seg := new(walkSeg)
	first := si << segShift
	v := clamp(w.base+rng.Normal(0, w.sigma), w.lo, w.hi)
	if first == 0 {
		seg[0] = v
	}
	for k := 1; k <= first+segMask; k++ {
		v = clamp(v+w.revert*(w.base-v)+rng.Normal(0, w.sigma), w.lo, w.hi)
		if k >= first {
			seg[k-first] = v
		}
	}
	return seg
}

// evict unpublishes every materialised segment, returning how many were
// released. The frontier (RNG position) is retained so future extension
// is unaffected; evicted segments re-materialise by replay.
func (w *sharedWalk) evict() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	tab := w.table()
	n := 0
	for _, seg := range tab {
		if seg != nil {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	next := make([]*walkSeg, len(tab))
	w.segs.Store(&next)
	w.resident.Add(int64(-n))
	return n
}

// minData is one immutable generation of a region's cheapest-AZ series:
// per-step min price, argmin AZ index, and prefix sums (prefix[0] = 0).
// Generations only grow by appending — published values are never
// rewritten — so a reader holding any generation sees exactly what the
// sequential per-Model minSeries would have produced.
type minData struct {
	min    []float64
	argAZ  []int32
	prefix []float64
}

// sharedMin is the concurrency-safe cheapest-AZ series for one
// (type, region), published whole-generation via atomic pointer swap.
type sharedMin struct {
	azs      []catalog.AZ
	walks    []*sharedWalk
	resident *atomic.Int64
	data     atomic.Pointer[minData]
	mu       sync.Mutex // guards extension and republication
}

// through returns a generation materialised through step k. Lock-free
// when one is already published.
func (s *sharedMin) through(k int) *minData {
	if d := s.data.Load(); d != nil && len(d.min) > k {
		return d
	}
	return s.extend(k)
}

func (s *sharedMin) extend(k int) *minData {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.data.Load()
	if d == nil {
		d = &minData{prefix: []float64{0}}
	}
	if len(d.min) > k {
		return d
	}
	// Materialise whole segments so store accounting stays uniform with
	// the walks; the extra trailing steps are the same values a longer
	// query would produce.
	n := ((k >> segShift) + 1) << segShift
	nd := &minData{
		min:    append(make([]float64, 0, n), d.min...),
		argAZ:  append(make([]int32, 0, n), d.argAZ...),
		prefix: append(make([]float64, 0, n+1), d.prefix...),
	}
	for i := len(d.min); i < n; i++ {
		// Same tie-break as the scan it replaces: first AZ in zone
		// order with the strictly lowest price.
		best, arg := s.walks[0].at(i), 0
		for j := 1; j < len(s.walks); j++ {
			if v := s.walks[j].at(i); v < best {
				best, arg = v, j
			}
		}
		nd.min = append(nd.min, best)
		nd.argAZ = append(nd.argAZ, int32(arg))
		nd.prefix = append(nd.prefix, nd.prefix[len(nd.prefix)-1]+best)
	}
	s.resident.Add(int64((n - len(d.min)) >> segShift))
	s.data.Store(nd)
	return nd
}

// evict drops the published generation, returning the segments
// released. Prefix sums rebuild from index 0 on next access, so the
// re-materialised values are bit-identical.
func (s *sharedMin) evict() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.data.Load()
	if d == nil || len(d.min) == 0 {
		return 0
	}
	n := len(d.min) >> segShift
	s.data.Store(nil)
	s.resident.Add(int64(-n))
	return n
}

// Snapshot is one immutable market realization — every deterministic
// series for a (catalog, seed, start) triple. It is safe for concurrent
// use by any number of Models, strategy arms, and ForEach workers, and
// is byte-identical to the per-Model walks it replaces. Mutable
// per-experiment state (injected outages, seasonality) lives on the
// Model view, never here.
type Snapshot struct {
	cat   *catalog.Catalog
	seed  int64
	start time.Time

	prices    map[azKey]*sharedWalk
	freq      map[Key]*sharedWalk
	sps       map[Key]*sharedWalk
	regionMin map[Key]*sharedMin

	// walkList/minList hold the same series in deterministic catalog
	// order so eviction never iterates a map.
	walkList []*sharedWalk
	minList  []*sharedMin

	// cheap memoizes CheapestSpotRegion rankings per (type, window).
	// The ranking is deterministic, so arms racing on a cold key store
	// the same entry.
	cheapMu sync.Mutex
	cheap   map[cheapKey]cheapEntry

	// resident counts published segments across all series (store
	// accounting); lastUse is the store's LRU clock.
	resident atomic.Int64
	lastUse  atomic.Int64
}

// NewSnapshot builds the (empty) series index for every offered
// (type, region, AZ) in the catalog. Construction allocates only the
// walk structs; no RNG is seeded and no sample drawn until first use.
func NewSnapshot(cat *catalog.Catalog, seed int64, start time.Time) *Snapshot {
	s := &Snapshot{
		cat:       cat,
		seed:      seed,
		start:     start,
		prices:    make(map[azKey]*sharedWalk),
		freq:      make(map[Key]*sharedWalk),
		sps:       make(map[Key]*sharedWalk),
		regionMin: make(map[Key]*sharedMin),
		cheap:     make(map[cheapKey]cheapEntry),
	}
	for _, t := range cat.InstanceTypes() {
		for _, r := range cat.OfferedRegions(t) {
			info, err := cat.RegionInfo(r)
			if err != nil {
				continue
			}
			fbase := tierFrequency(info.Tier)
			sbase := tierSPS(info.Tier)
			if r == caCentral && caCentralTrapped(t) {
				fbase = caCentralFrequency
				sbase = caCentralSPSLatent
			}
			fsigma := tierFreqSigma(info.Tier)
			ssigma := 0.06
			if t.Family() == "p3" {
				// GPU capacity is scarce and reclaimed in bursts:
				// interruption frequency swings harder for p3, while its
				// placement score is near-constant across regions (Fig. 4).
				fsigma = 0.028
				ssigma = 0.02
				sbase = 3.30
			}
			k := Key{Region: r, Type: t}
			fw := s.newWalk("freq/"+string(t)+"/"+string(r), fbase, fsigma, 0.30, 0.005, 0.35)
			sw := s.newWalk("sps/"+string(t)+"/"+string(r), sbase, ssigma, 0.35, 1, 10)
			s.freq[k] = fw
			s.sps[k] = sw
			s.walkList = append(s.walkList, fw, sw)

			azs := cat.Zones(r)
			if len(azs) == 0 {
				continue
			}
			base, err := cat.BaselineSpotPrice(t, r)
			if err != nil {
				continue
			}
			sm := &sharedMin{azs: azs, walks: make([]*sharedWalk, 0, len(azs)), resident: &s.resident}
			for _, az := range azs {
				// Post-2017 spot prices: smooth, ±12% band around the
				// baseline, slow reversion, sigma proportional to level.
				pw := s.newWalk("price/"+string(t)+"/"+string(az), base, base*0.015, 0.05, base*0.88, base*1.12)
				s.prices[azKey{az: az, t: t}] = pw
				s.walkList = append(s.walkList, pw)
				sm.walks = append(sm.walks, pw)
			}
			s.regionMin[k] = sm
			s.minList = append(s.minList, sm)
		}
	}
	return s
}

// Catalog exposes the snapshot's inventory.
func (s *Snapshot) Catalog() *catalog.Catalog { return s.cat }

// Seed reports the snapshot's RNG seed.
func (s *Snapshot) Seed() int64 { return s.seed }

// Start reports the first instant the snapshot has data for.
func (s *Snapshot) Start() time.Time { return s.start }

// ResidentSegments reports the snapshot's currently published segment
// count (each segment is segSize float64 samples).
func (s *Snapshot) ResidentSegments() int { return int(s.resident.Load()) }

// Evict releases every published segment of every series and clears the
// ranking memo, returning the number of segments released. Values are
// unaffected: evicted segments re-materialise bit-identically on the
// next access by replaying the same streams.
func (s *Snapshot) Evict() int {
	n := 0
	for _, w := range s.walkList {
		n += w.evict()
	}
	for _, sm := range s.minList {
		n += sm.evict()
	}
	s.cheapMu.Lock()
	// clear, not a fresh make: the rankings derive from evicted segments
	// and must be dropped, but the map itself is private to the snapshot
	// and reusing it keeps repeat eviction sweeps allocation-free.
	clear(s.cheap)
	s.cheapMu.Unlock()
	return n
}

func (s *Snapshot) stepIndex(at time.Time, step time.Duration) int {
	d := at.Sub(s.start)
	if d < 0 {
		return 0
	}
	return int(d / step)
}

// priceWalk resolves the (type, AZ) price walk, reproducing the
// pre-snapshot error for combinations the catalog does not offer.
func (s *Snapshot) priceWalk(t catalog.InstanceType, az catalog.AZ) (*sharedWalk, error) {
	if w, ok := s.prices[azKey{az: az, t: t}]; ok {
		return w, nil
	}
	if _, err := s.cat.BaselineSpotPrice(t, az.Region()); err != nil {
		return nil, err
	}
	// Offered (type, region) but an AZ the catalog does not list.
	return nil, fmt.Errorf("market: %s not offered in %s", t, az.Region())
}

// metricWalk resolves a (type, region) walk from the freq or sps map,
// reproducing the pre-snapshot error order: unknown region first, then
// not-offered.
func (s *Snapshot) metricWalk(series map[Key]*sharedWalk, t catalog.InstanceType, r catalog.Region) (*sharedWalk, error) {
	if w, ok := series[Key{Region: r, Type: t}]; ok {
		return w, nil
	}
	if _, err := s.cat.RegionInfo(r); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("market: %s not offered in %s", t, r)
}

// regionSeries resolves the cheapest-AZ series for (t, r), reproducing
// the pre-snapshot error order.
func (s *Snapshot) regionSeries(t catalog.InstanceType, r catalog.Region) (*sharedMin, error) {
	if sm, ok := s.regionMin[Key{Region: r, Type: t}]; ok {
		return sm, nil
	}
	if !s.cat.Offered(t, r) {
		return nil, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	if len(s.cat.Zones(r)) == 0 {
		return nil, fmt.Errorf("market: region %s has no zones", r)
	}
	if _, err := s.cat.BaselineSpotPrice(t, r); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("market: %s not offered in %s", t, r)
}

func (s *Snapshot) spotPrice(t catalog.InstanceType, az catalog.AZ, at time.Time) (float64, error) {
	w, err := s.priceWalk(t, az)
	if err != nil {
		return 0, err
	}
	return w.at(s.stepIndex(at, PriceStep)), nil
}

func (s *Snapshot) regionSpotPrice(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, catalog.AZ, error) {
	if !s.cat.Offered(t, r) {
		return 0, "", fmt.Errorf("market: %s not offered in %s", t, r)
	}
	sm, err := s.regionSeries(t, r)
	if err != nil {
		return 0, "", err
	}
	k := s.stepIndex(at, PriceStep)
	d := sm.through(k)
	return d.min[k], sm.azs[d.argAZ[k]], nil
}

func (s *Snapshot) priceHistory(t catalog.InstanceType, az catalog.AZ, from, to time.Time, step time.Duration) ([]PricePoint, error) {
	if step <= 0 {
		step = PriceStep
	}
	if to.Before(from) {
		return nil, fmt.Errorf("market: history to %s before from %s", to, from)
	}
	w, err := s.priceWalk(t, az)
	if err != nil {
		return nil, err
	}
	// One allocation for the whole series; materialise through the last
	// step up front so the loop reads published segments only.
	n := int(to.Sub(from)/step) + 1
	w.at(s.stepIndex(from.Add(time.Duration(n-1)*step), PriceStep))
	out := make([]PricePoint, 0, n)
	for ts := from; !ts.After(to); ts = ts.Add(step) {
		out = append(out, PricePoint{Time: ts, USDPerHour: w.at(s.stepIndex(ts, PriceStep))})
	}
	return out, nil
}

func (s *Snapshot) interruptionFrequency(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	w, err := s.metricWalk(s.freq, t, r)
	if err != nil {
		return 0, err
	}
	return w.at(s.stepIndex(at, MetricStep)), nil
}

func (s *Snapshot) placementScoreLatent(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	w, err := s.metricWalk(s.sps, t, r)
	if err != nil {
		return 0, err
	}
	return w.at(s.stepIndex(at, MetricStep)), nil
}

// averagePrice is the per-decision query on the placement warm path:
// after the first call for a (type, region) the series and its prefix
// sums are cached and the answer is two slice reads.
//
//spotverse:hotpath
func (s *Snapshot) averagePrice(t catalog.InstanceType, r catalog.Region, from, to time.Time) (float64, error) {
	if !s.cat.Offered(t, r) {
		return 0, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	if to.Before(from) {
		return 0, fmt.Errorf("market: empty averaging window")
	}
	//spotverse:allow hotpath first-use memoization miss; repeat (type, region) queries hit the cached series
	sm, err := s.regionSeries(t, r)
	if err != nil {
		return 0, err
	}
	n := int(to.Sub(from)/PriceStep) + 1
	last := s.stepIndex(from.Add(time.Duration(n-1)*PriceStep), PriceStep)
	//spotverse:allow hotpath prefix cache extends only when the window grows past the cached frontier
	d := sm.through(last)
	if from.Before(s.start) {
		// Pre-start samples clamp to step 0, so the window's step
		// indices are not contiguous; sum term by term (still cached).
		var sum float64
		for ts, i := from, 0; i < n; ts, i = ts.Add(PriceStep), i+1 {
			sum += d.min[s.stepIndex(ts, PriceStep)]
		}
		return sum / float64(n), nil
	}
	k0 := s.stepIndex(from, PriceStep)
	return (d.prefix[last+1] - d.prefix[k0]) / float64(n), nil
}

func (s *Snapshot) cheapestSpotRegion(t catalog.InstanceType, from, to time.Time) (catalog.Region, float64, error) {
	ck := cheapKey{t: t, from: from.UnixNano(), to: to.UnixNano()}
	s.cheapMu.Lock()
	if e, ok := s.cheap[ck]; ok {
		s.cheapMu.Unlock()
		return e.region, e.price, nil
	}
	s.cheapMu.Unlock()
	var (
		best      catalog.Region
		bestPrice float64
		found     bool
	)
	for _, r := range s.cat.OfferedRegions(t) {
		p, err := s.averagePrice(t, r, from, to)
		if err != nil {
			return "", 0, err
		}
		if !found || p < bestPrice {
			best, bestPrice, found = r, p, true
		}
	}
	if !found {
		return "", 0, fmt.Errorf("market: %s offered nowhere", t)
	}
	s.cheapMu.Lock()
	s.cheap[ck] = cheapEntry{region: best, price: bestPrice}
	s.cheapMu.Unlock()
	return best, bestPrice, nil
}

// PriceSeries is a lock-free handle on one (type, AZ) price walk:
// resolve the walk once, then sample many instants without per-query
// map lookups. The Provider's interruption scheduler reads up to 240
// steps per launched instance through one of these.
type PriceSeries struct {
	w     *sharedWalk
	start time.Time
}

// At samples the series at the given instant — identical to
// Model.SpotPrice for the same arguments.
//
//spotverse:hotpath
func (ps PriceSeries) At(at time.Time) float64 {
	d := at.Sub(ps.start)
	if d < 0 {
		d = 0
	}
	return ps.w.at(int(d / PriceStep))
}
