package market

import (
	"time"

	"spotverse/internal/catalog"
)

// The paper's future-work section observes that interruption rates vary
// by day and time of week. This file adds an opt-in hour-of-week
// seasonality to the interruption hazard: spot reclaims concentrate in
// weekday business hours (when on-demand demand peaks), quieten on
// weekends. The profile is mean-one so the calibrated averages — and
// therefore the published experiment numbers — are unchanged when
// seasonality is off, and comparable when it is on.

// Seasonality profile constants.
const (
	// peakFactor multiplies the hazard during weekday business hours.
	peakFactor = 1.6
	// peakStartHour and peakEndHour bound the UTC business window.
	peakStartHour = 14
	peakEndHour   = 22
)

// offPeakFactor keeps the weekly mean at 1:
// 40 peak hours/week at peakFactor, 128 off-peak at offPeakFactor.
var offPeakFactor = (168.0 - 40.0*peakFactor) / 128.0

// EnableSeasonality turns on hour-of-week hazard modulation.
func (m *Model) EnableSeasonality() { m.seasonal = true }

// SeasonalityEnabled reports whether modulation is active.
func (m *Model) SeasonalityEnabled() bool { return m.seasonal }

// SeasonalFactor returns the hazard multiplier at the given instant: 1
// when seasonality is disabled.
func (m *Model) SeasonalFactor(at time.Time) float64 {
	if !m.seasonal {
		return 1
	}
	return HourOfWeekFactor(at)
}

// HourOfWeekFactor is the raw mean-one profile: peakFactor during
// weekday business hours (UTC), offPeakFactor otherwise.
func HourOfWeekFactor(at time.Time) float64 {
	utc := at.UTC()
	switch utc.Weekday() {
	case time.Saturday, time.Sunday:
		return offPeakFactor
	}
	h := utc.Hour()
	if h >= peakStartHour && h < peakEndHour {
		return peakFactor
	}
	return offPeakFactor
}

// SeasonalHazardPerHour is HazardPerHour scaled by the seasonal factor.
func (m *Model) SeasonalHazardPerHour(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	base, err := m.HazardPerHour(t, r, at)
	if err != nil {
		return 0, err
	}
	return base * m.SeasonalFactor(at), nil
}
