// Package market models multi-region spot-instance markets: spot price
// processes, interruption-frequency dynamics, Stability Scores, and Spot
// Placement Scores.
//
// The model reproduces the observable surface SpotVerse consumes on AWS:
//
//   - DescribeSpotPriceHistory-style price series per (instance type, AZ),
//     smooth and slowly mean-reverting as in the post-2017 pricing model;
//   - the Spot Instance Advisor's Interruption Frequency buckets (<5%,
//     5-20%, >20%) and the derived Stability Score (3, 2, 1);
//   - the Spot Placement Score (integer 1-10) per (instance type, region);
//   - a per-hour interruption hazard and a launch-success probability that
//     the cloud substrate draws against.
//
// All processes are deterministic for a given seed and are generated
// lazily but sequentially, so query order never changes the series.
//
// The package is split into a deterministic generator and an immutable,
// concurrency-safe Snapshot (snapshot.go): every series for one
// (catalog, seed, start) triple lives on the Snapshot, materialised in
// fixed-size segments published by atomic pointer swap, so one snapshot
// per seed can back every strategy arm and every parallel worker at
// once with byte-identical values. A Model is a thin per-environment
// view over a snapshot — it carries only the mutable state a single
// experiment owns (injected outages, seasonality) and is still not safe
// for concurrent use itself; sharing happens at the Snapshot level (see
// SnapshotStore in store.go).
//
// Hot-path queries are cached on the snapshot: each (type, region)
// keeps a per-step cheapest-AZ series with prefix sums, so AveragePrice
// answers in O(1) after the window is materialised and RegionSpotPrice
// in O(1) per step, and CheapestSpotRegion rankings are memoized per
// (type, window). The caches never invalidate — walks are append-only,
// so a materialised step can never change.
package market

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spotverse/internal/catalog"
)

// Granularities of the underlying processes.
const (
	// PriceStep is the spot price update interval.
	PriceStep = 6 * time.Hour
	// MetricStep is the advisor metric (IF, SPS) update interval.
	MetricStep = 24 * time.Hour
)

// Stability score values derived from Interruption Frequency buckets
// (Section 3.1 of the paper: <5% → 3, 5-20% → 2, >20% → 1).
const (
	StabilityLow  = 1
	StabilityMid  = 2
	StabilityHigh = 3
)

// hazardScale converts a latent interruption frequency (the advisor's
// monthly fraction) into a per-hour hazard. Calibrated so a frequency of
// 0.26 yields the ~0.135/h rate that reproduces the paper's single-region
// interruption counts (DESIGN.md "Calibration notes").
const hazardScale = 0.52

// Key addresses a (region, instance type) market.
type Key struct {
	Region catalog.Region
	Type   catalog.InstanceType
}

// PricePoint is one sample of a spot price series.
type PricePoint struct {
	Time time.Time
	// USDPerHour is the spot price.
	USDPerHour float64
}

// AdvisorEntry is one row of a Spot-Instance-Advisor-style snapshot.
type AdvisorEntry struct {
	Region catalog.Region
	Type   catalog.InstanceType
	// SpotPriceUSD is the current regional spot price (cheapest AZ).
	SpotPriceUSD float64
	// OnDemandUSD is the regional on-demand price.
	OnDemandUSD float64
	// SavingsOverOnDemand is 1 - spot/on-demand.
	SavingsOverOnDemand float64
	// InterruptionFrequency is the latent monthly interruption fraction.
	InterruptionFrequency float64
	// StabilityScore is 1-3, inverse of the frequency bucket.
	StabilityScore int
	// PlacementScore is the Spot Placement Score, 1-10.
	PlacementScore int
	// CombinedScore is StabilityScore + PlacementScore, the quantity
	// Algorithm 1 thresholds on.
	CombinedScore int
}

// Model is the deterministic multi-region spot market as one
// environment sees it: a view over an immutable Snapshot plus the
// mutable state a single experiment owns.
type Model struct {
	snap *Snapshot

	// seasonal enables hour-of-week hazard modulation (seasonality.go).
	seasonal bool
	// outages are injected regional capacity failures (failure testing):
	// spot launches in an affected region fail for the window's duration.
	outages []outage
}

type outage struct {
	region   catalog.Region
	from, to time.Time
}

// InjectOutage makes spot launches in the region fail during [from, to)
// — a regional capacity event for failure-injection tests. Running
// instances are unaffected (AWS outages rarely reclaim everything); only
// new placements fail. A window that overlaps or abuts an existing
// outage for the same region is merged into a single union window, so
// the outage list stays canonical however injections arrive.
func (m *Model) InjectOutage(r catalog.Region, from, to time.Time) error {
	if !to.After(from) {
		return fmt.Errorf("market: outage window %s..%s inverted", from, to)
	}
	if _, err := m.snap.cat.RegionInfo(r); err != nil {
		return err
	}
	merged := m.outages[:0]
	for _, o := range m.outages {
		// Same region and [from,to) touches [o.from,o.to): fold it into
		// the window being inserted and drop the original.
		if o.region == r && !o.to.Before(from) && !to.Before(o.from) {
			if o.from.Before(from) {
				from = o.from
			}
			if o.to.After(to) {
				to = o.to
			}
			continue
		}
		merged = append(merged, o)
	}
	m.outages = append(merged, outage{region: r, from: from, to: to})
	return nil
}

// InOutage reports whether the region is inside an injected outage.
func (m *Model) InOutage(r catalog.Region, at time.Time) bool {
	for _, o := range m.outages {
		if o.region == r && !at.Before(o.from) && at.Before(o.to) {
			return true
		}
	}
	return false
}

// OutageWindow is one injected outage interval, half-open [From, To).
type OutageWindow struct {
	From, To time.Time
}

// OutageWindows lists the region's injected outage windows sorted by
// start time — after merging, they are pairwise disjoint.
func (m *Model) OutageWindows(r catalog.Region) []OutageWindow {
	var out []OutageWindow
	for _, o := range m.outages {
		if o.region == r {
			out = append(out, OutageWindow{From: o.from, To: o.to})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From.Before(out[j].From) })
	return out
}

type azKey struct {
	az catalog.AZ
	t  catalog.InstanceType
}

// New returns a market model over the catalog, seeded for determinism,
// with series starting at start. The model owns a private snapshot; use
// FromSnapshot to share one across environments.
func New(cat *catalog.Catalog, seed int64, start time.Time) *Model {
	return &Model{snap: NewSnapshot(cat, seed, start)}
}

// FromSnapshot returns a model view over a shared snapshot. Any number
// of models (one per environment) can read the same snapshot
// concurrently; only the per-model mutable state — injected outages and
// seasonality — is private to each view.
func FromSnapshot(snap *Snapshot) *Model {
	return &Model{snap: snap}
}

// Snapshot exposes the model's underlying immutable market realization.
func (m *Model) Snapshot() *Snapshot { return m.snap }

// Catalog exposes the underlying inventory.
func (m *Model) Catalog() *catalog.Catalog { return m.snap.cat }

// Start reports the first instant the model has data for.
func (m *Model) Start() time.Time { return m.snap.start }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// reliability parameters per tier: latent monthly interruption fraction.
func tierFrequency(tier catalog.ReliabilityTier) float64 {
	switch tier {
	case catalog.TierStable:
		return 0.025
	case catalog.TierModerate:
		return 0.120
	case catalog.TierVolatile:
		return 0.250
	default:
		return 0.285
	}
}

// tierFreqSigma is the walk noise per metric step; stable regions move
// less so they stay inside their advisor bucket over an experiment window.
func tierFreqSigma(tier catalog.ReliabilityTier) float64 {
	if tier == catalog.TierStable {
		return 0.006
	}
	return 0.012
}

// tierSPS is the latent Spot Placement Score midpoint per tier, set well
// inside integer rounding bands so quartet membership is stable across an
// experiment window.
func tierSPS(tier catalog.ReliabilityTier) float64 {
	switch tier {
	case catalog.TierStable:
		return 3.25
	case catalog.TierModerate:
		return 3.20
	case catalog.TierVolatile:
		return 3.30
	default:
		return 2.30
	}
}

// ca-central-1 carries the paper's tension for the m5/r5 families: the
// cheapest spot prices of the bunch, a high placement score (launches
// succeed), yet a bottom interruption-frequency bucket during the
// experiment window. That is exactly the trap Algorithm 1 is built to
// avoid: price- or SPS-only ranking walks straight into it.
const (
	caCentral          = catalog.Region("ca-central-1")
	caCentralFrequency = 0.23
	caCentralSPSLatent = 4.25
)

func caCentralTrapped(t catalog.InstanceType) bool {
	f := t.Family()
	return f == "m5" || f == "r5"
}

// SpotPrice returns the spot price of t in az at the given instant.
func (m *Model) SpotPrice(t catalog.InstanceType, az catalog.AZ, at time.Time) (float64, error) {
	return m.snap.spotPrice(t, az, at)
}

// PriceSeries returns a reusable handle on the (t, az) price walk; see
// the type's doc for the hot path it serves.
func (m *Model) PriceSeries(t catalog.InstanceType, az catalog.AZ) (PriceSeries, error) {
	w, err := m.snap.priceWalk(t, az)
	if err != nil {
		return PriceSeries{}, err
	}
	return PriceSeries{w: w, start: m.snap.start}, nil
}

// RegionSpotPrice returns the cheapest AZ spot price of t in r, and the AZ.
func (m *Model) RegionSpotPrice(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, catalog.AZ, error) {
	return m.snap.regionSpotPrice(t, r, at)
}

// PriceHistory returns the price series of t in az on [from, to] sampled
// every step. It mimics DescribeSpotPriceHistory.
func (m *Model) PriceHistory(t catalog.InstanceType, az catalog.AZ, from, to time.Time, step time.Duration) ([]PricePoint, error) {
	return m.snap.priceHistory(t, az, from, to, step)
}

// InterruptionFrequency returns the latent monthly interruption fraction
// for t in r at the given instant (the advisor's underlying quantity).
func (m *Model) InterruptionFrequency(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	return m.snap.interruptionFrequency(t, r, at)
}

// StabilityScore maps the interruption frequency into the paper's 1-3
// score: 3 below 5%, 1 above 20%, 2 between.
func (m *Model) StabilityScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return 0, err
	}
	return StabilityFromFrequency(f), nil
}

// StabilityFromFrequency converts a monthly interruption fraction into the
// 1-3 Stability Score.
func StabilityFromFrequency(f float64) int {
	switch {
	case f < 0.05:
		return StabilityHigh
	case f < 0.20:
		return StabilityMid
	default:
		return StabilityLow
	}
}

// PlacementScore returns the integer Spot Placement Score (1-10) of t in r.
func (m *Model) PlacementScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	v, err := m.PlacementScoreLatent(t, r, at)
	if err != nil {
		return 0, err
	}
	s := int(math.Round(v))
	if s < 1 {
		s = 1
	}
	if s > 10 {
		s = 10
	}
	return s, nil
}

// PlacementScoreLatent returns the continuous SPS process value, used for
// the Fig. 4 time-series plots.
func (m *Model) PlacementScoreLatent(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	return m.snap.placementScoreLatent(t, r, at)
}

// CombinedScore is PlacementScore + StabilityScore — the quantity the
// Optimizer thresholds on (Algorithm 1).
func (m *Model) CombinedScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return 0, err
	}
	st, err := m.StabilityScore(t, r, at)
	if err != nil {
		return 0, err
	}
	return sps + st, nil
}

// HazardPerHour returns the per-hour interruption hazard of a running spot
// instance of t in r at the given instant.
func (m *Model) HazardPerHour(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return 0, err
	}
	return f * hazardScale, nil
}

// LaunchSuccessProbability is the chance a spot request is fulfilled on
// its first placement attempt, increasing with the Spot Placement Score
// (AWS documents SPS as exactly this likelihood).
func (m *Model) LaunchSuccessProbability(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	if m.InOutage(r, at) {
		return 0, nil
	}
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return 0, err
	}
	p := 0.50 + 0.05*float64(sps)
	return clamp(p, 0, 1), nil
}

// Advisor returns an advisor snapshot row for (t, r).
func (m *Model) Advisor(t catalog.InstanceType, r catalog.Region, at time.Time) (AdvisorEntry, error) {
	spot, _, err := m.RegionSpotPrice(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	od, err := m.snap.cat.OnDemandPrice(t, r)
	if err != nil {
		return AdvisorEntry{}, err
	}
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	st := StabilityFromFrequency(f)
	return AdvisorEntry{
		Region:                r,
		Type:                  t,
		SpotPriceUSD:          spot,
		OnDemandUSD:           od,
		SavingsOverOnDemand:   1 - spot/od,
		InterruptionFrequency: f,
		StabilityScore:        st,
		PlacementScore:        sps,
		CombinedScore:         sps + st,
	}, nil
}

// AdvisorSnapshot returns advisor rows for t across all offering regions,
// ordered by region name.
func (m *Model) AdvisorSnapshot(t catalog.InstanceType, at time.Time) ([]AdvisorEntry, error) {
	regions := m.snap.cat.OfferedRegions(t)
	out := make([]AdvisorEntry, 0, len(regions))
	for _, r := range regions {
		e, err := m.Advisor(t, r, at)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// AveragePrice returns the time-averaged regional spot price of t in r
// over [from, to], used for stable "cheapest region" rankings (Table 1).
//
// The average reads the cached cheapest-AZ prefix sums: after the window
// is materialised the answer is one subtraction instead of a rescan of
// every price step across every AZ. A window whose first step lands on
// the model start reproduces the naive left-to-right summation exactly;
// other alignments agree to float64 rounding (~1e-12 relative).
//
//spotverse:hotpath
func (m *Model) AveragePrice(t catalog.InstanceType, r catalog.Region, from, to time.Time) (float64, error) {
	return m.snap.averagePrice(t, r, from, to)
}

// cheapKey addresses one memoized CheapestSpotRegion ranking.
type cheapKey struct {
	t        catalog.InstanceType
	from, to int64
}

type cheapEntry struct {
	region catalog.Region
	price  float64
}

// CheapestSpotRegion returns the region with the lowest time-averaged spot
// price for t over the window — the paper's per-type "baseline region"
// (Table 1). Rankings are memoized per (type, window): Table 1, Fig. 8 and
// every baseline-region probe ask for the same opening-weeks window over
// and over.
func (m *Model) CheapestSpotRegion(t catalog.InstanceType, from, to time.Time) (catalog.Region, float64, error) {
	return m.snap.cheapestSpotRegion(t, from, to)
}
