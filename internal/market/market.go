// Package market models multi-region spot-instance markets: spot price
// processes, interruption-frequency dynamics, Stability Scores, and Spot
// Placement Scores.
//
// The model reproduces the observable surface SpotVerse consumes on AWS:
//
//   - DescribeSpotPriceHistory-style price series per (instance type, AZ),
//     smooth and slowly mean-reverting as in the post-2017 pricing model;
//   - the Spot Instance Advisor's Interruption Frequency buckets (<5%,
//     5-20%, >20%) and the derived Stability Score (3, 2, 1);
//   - the Spot Placement Score (integer 1-10) per (instance type, region);
//   - a per-hour interruption hazard and a launch-success probability that
//     the cloud substrate draws against.
//
// All processes are deterministic for a given seed and are generated
// lazily but sequentially, so query order never changes the series.
//
// Hot-path queries are cached: each (type, region) keeps a per-step
// cheapest-AZ series with prefix sums, so AveragePrice answers in O(1)
// after the window is materialised and RegionSpotPrice in O(1) per step,
// and CheapestSpotRegion rankings are memoized per (type, window). The
// caches never invalidate — walks are append-only, so a materialised step
// can never change. A Model is not safe for concurrent use; the parallel
// experiment harness gives every worker its own Model.
package market

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
)

// Granularities of the underlying processes.
const (
	// PriceStep is the spot price update interval.
	PriceStep = 6 * time.Hour
	// MetricStep is the advisor metric (IF, SPS) update interval.
	MetricStep = 24 * time.Hour
)

// Stability score values derived from Interruption Frequency buckets
// (Section 3.1 of the paper: <5% → 3, 5-20% → 2, >20% → 1).
const (
	StabilityLow  = 1
	StabilityMid  = 2
	StabilityHigh = 3
)

// hazardScale converts a latent interruption frequency (the advisor's
// monthly fraction) into a per-hour hazard. Calibrated so a frequency of
// 0.26 yields the ~0.135/h rate that reproduces the paper's single-region
// interruption counts (DESIGN.md "Calibration notes").
const hazardScale = 0.52

// Key addresses a (region, instance type) market.
type Key struct {
	Region catalog.Region
	Type   catalog.InstanceType
}

// PricePoint is one sample of a spot price series.
type PricePoint struct {
	Time time.Time
	// USDPerHour is the spot price.
	USDPerHour float64
}

// AdvisorEntry is one row of a Spot-Instance-Advisor-style snapshot.
type AdvisorEntry struct {
	Region catalog.Region
	Type   catalog.InstanceType
	// SpotPriceUSD is the current regional spot price (cheapest AZ).
	SpotPriceUSD float64
	// OnDemandUSD is the regional on-demand price.
	OnDemandUSD float64
	// SavingsOverOnDemand is 1 - spot/on-demand.
	SavingsOverOnDemand float64
	// InterruptionFrequency is the latent monthly interruption fraction.
	InterruptionFrequency float64
	// StabilityScore is 1-3, inverse of the frequency bucket.
	StabilityScore int
	// PlacementScore is the Spot Placement Score, 1-10.
	PlacementScore int
	// CombinedScore is StabilityScore + PlacementScore, the quantity
	// Algorithm 1 thresholds on.
	CombinedScore int
}

// Model is the deterministic multi-region spot market.
type Model struct {
	cat   *catalog.Catalog
	seed  int64
	start time.Time

	prices map[azKey]*walk
	freq   map[Key]*walk
	sps    map[Key]*walk

	// regionMin caches, per (type, region), the per-step cheapest-AZ
	// price series with prefix sums (the AveragePrice/RegionSpotPrice
	// hot path). Walks are append-only so entries never invalidate.
	regionMin map[Key]*minSeries
	// cheapest memoizes CheapestSpotRegion rankings per (type, window).
	cheapest map[cheapKey]cheapEntry

	// seasonal enables hour-of-week hazard modulation (seasonality.go).
	seasonal bool
	// outages are injected regional capacity failures (failure testing):
	// spot launches in an affected region fail for the window's duration.
	outages []outage
}

type outage struct {
	region   catalog.Region
	from, to time.Time
}

// InjectOutage makes spot launches in the region fail during [from, to)
// — a regional capacity event for failure-injection tests. Running
// instances are unaffected (AWS outages rarely reclaim everything); only
// new placements fail. A window that overlaps or abuts an existing
// outage for the same region is merged into a single union window, so
// the outage list stays canonical however injections arrive.
func (m *Model) InjectOutage(r catalog.Region, from, to time.Time) error {
	if !to.After(from) {
		return fmt.Errorf("market: outage window %s..%s inverted", from, to)
	}
	if _, err := m.cat.RegionInfo(r); err != nil {
		return err
	}
	merged := m.outages[:0]
	for _, o := range m.outages {
		// Same region and [from,to) touches [o.from,o.to): fold it into
		// the window being inserted and drop the original.
		if o.region == r && !o.to.Before(from) && !to.Before(o.from) {
			if o.from.Before(from) {
				from = o.from
			}
			if o.to.After(to) {
				to = o.to
			}
			continue
		}
		merged = append(merged, o)
	}
	m.outages = append(merged, outage{region: r, from: from, to: to})
	return nil
}

// InOutage reports whether the region is inside an injected outage.
func (m *Model) InOutage(r catalog.Region, at time.Time) bool {
	for _, o := range m.outages {
		if o.region == r && !at.Before(o.from) && at.Before(o.to) {
			return true
		}
	}
	return false
}

// OutageWindow is one injected outage interval, half-open [From, To).
type OutageWindow struct {
	From, To time.Time
}

// OutageWindows lists the region's injected outage windows sorted by
// start time — after merging, they are pairwise disjoint.
func (m *Model) OutageWindows(r catalog.Region) []OutageWindow {
	var out []OutageWindow
	for _, o := range m.outages {
		if o.region == r {
			out = append(out, OutageWindow{From: o.from, To: o.to})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From.Before(out[j].From) })
	return out
}

type azKey struct {
	az catalog.AZ
	t  catalog.InstanceType
}

// New returns a market model over the catalog, seeded for determinism,
// with series starting at start.
func New(cat *catalog.Catalog, seed int64, start time.Time) *Model {
	return &Model{
		cat:       cat,
		seed:      seed,
		start:     start,
		prices:    make(map[azKey]*walk),
		freq:      make(map[Key]*walk),
		sps:       make(map[Key]*walk),
		regionMin: make(map[Key]*minSeries),
		cheapest:  make(map[cheapKey]cheapEntry),
	}
}

// Catalog exposes the underlying inventory.
func (m *Model) Catalog() *catalog.Catalog { return m.cat }

// Start reports the first instant the model has data for.
func (m *Model) Start() time.Time { return m.start }

// walk is a bounded, mean-reverting random walk generated lazily but
// strictly sequentially so that random access is deterministic.
type walk struct {
	rng     *simclock.RNG
	base    float64
	sigma   float64
	revert  float64
	lo, hi  float64
	samples []float64
}

func newWalk(rng *simclock.RNG, base, sigma, revert, lo, hi float64) *walk {
	w := &walk{rng: rng, base: base, sigma: sigma, revert: revert, lo: lo, hi: hi}
	// First sample starts near base with a small perturbation so distinct
	// markets don't all begin at their exact tier midpoint.
	v := clamp(base+rng.Normal(0, sigma), lo, hi)
	w.samples = []float64{v}
	return w
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// at returns the walk value at step k (k >= 0), extending the series as
// needed.
func (w *walk) at(k int) float64 {
	if k < 0 {
		k = 0
	}
	w.extendTo(k)
	return w.samples[k]
}

// extendTo materialises the series through step k. The backing array is
// grown to its final size in one allocation instead of append-doubling;
// samples are still generated strictly sequentially so the values are
// identical whatever the query order.
func (w *walk) extendTo(k int) {
	if len(w.samples) > k {
		return
	}
	if cap(w.samples) <= k {
		grown := make([]float64, len(w.samples), k+1)
		copy(grown, w.samples)
		w.samples = grown
	}
	for len(w.samples) <= k {
		prev := w.samples[len(w.samples)-1]
		next := prev + w.revert*(w.base-prev) + w.rng.Normal(0, w.sigma)
		w.samples = append(w.samples, clamp(next, w.lo, w.hi))
	}
}

func (m *Model) stepIndex(at time.Time, step time.Duration) int {
	d := at.Sub(m.start)
	if d < 0 {
		return 0
	}
	return int(d / step)
}

func (m *Model) priceWalk(t catalog.InstanceType, az catalog.AZ) (*walk, error) {
	k := azKey{az: az, t: t}
	if w, ok := m.prices[k]; ok {
		return w, nil
	}
	base, err := m.cat.BaselineSpotPrice(t, az.Region())
	if err != nil {
		return nil, err
	}
	rng := simclock.Stream(m.seed, "price/"+string(t)+"/"+string(az))
	// Post-2017 spot prices: smooth, ±12% band around the baseline, slow
	// reversion. Sigma is proportional to the price level.
	w := newWalk(rng, base, base*0.015, 0.05, base*0.88, base*1.12)
	m.prices[k] = w
	return w, nil
}

// reliability parameters per tier: latent monthly interruption fraction.
func tierFrequency(tier catalog.ReliabilityTier) float64 {
	switch tier {
	case catalog.TierStable:
		return 0.025
	case catalog.TierModerate:
		return 0.120
	case catalog.TierVolatile:
		return 0.250
	default:
		return 0.285
	}
}

// tierFreqSigma is the walk noise per metric step; stable regions move
// less so they stay inside their advisor bucket over an experiment window.
func tierFreqSigma(tier catalog.ReliabilityTier) float64 {
	if tier == catalog.TierStable {
		return 0.006
	}
	return 0.012
}

// tierSPS is the latent Spot Placement Score midpoint per tier, set well
// inside integer rounding bands so quartet membership is stable across an
// experiment window.
func tierSPS(tier catalog.ReliabilityTier) float64 {
	switch tier {
	case catalog.TierStable:
		return 3.25
	case catalog.TierModerate:
		return 3.20
	case catalog.TierVolatile:
		return 3.30
	default:
		return 2.30
	}
}

// ca-central-1 carries the paper's tension for the m5/r5 families: the
// cheapest spot prices of the bunch, a high placement score (launches
// succeed), yet a bottom interruption-frequency bucket during the
// experiment window. That is exactly the trap Algorithm 1 is built to
// avoid: price- or SPS-only ranking walks straight into it.
const (
	caCentral          = catalog.Region("ca-central-1")
	caCentralFrequency = 0.23
	caCentralSPSLatent = 4.25
)

func caCentralTrapped(t catalog.InstanceType) bool {
	f := t.Family()
	return f == "m5" || f == "r5"
}

func (m *Model) freqWalk(t catalog.InstanceType, r catalog.Region) (*walk, error) {
	k := Key{Region: r, Type: t}
	if w, ok := m.freq[k]; ok {
		return w, nil
	}
	info, err := m.cat.RegionInfo(r)
	if err != nil {
		return nil, err
	}
	if !m.cat.Offered(t, r) {
		return nil, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	base := tierFrequency(info.Tier)
	if r == caCentral && caCentralTrapped(t) {
		base = caCentralFrequency
	}
	sigma := tierFreqSigma(info.Tier)
	if t.Family() == "p3" {
		// GPU capacity is scarce and reclaimed in bursts: interruption
		// frequency swings harder for p3 (Fig. 4 observation).
		sigma = 0.028
	}
	rng := simclock.Stream(m.seed, "freq/"+string(t)+"/"+string(r))
	w := newWalk(rng, base, sigma, 0.30, 0.005, 0.35)
	m.freq[k] = w
	return w, nil
}

func (m *Model) spsWalk(t catalog.InstanceType, r catalog.Region) (*walk, error) {
	k := Key{Region: r, Type: t}
	if w, ok := m.sps[k]; ok {
		return w, nil
	}
	info, err := m.cat.RegionInfo(r)
	if err != nil {
		return nil, err
	}
	if !m.cat.Offered(t, r) {
		return nil, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	base := tierSPS(info.Tier)
	if r == caCentral && caCentralTrapped(t) {
		base = caCentralSPSLatent
	}
	sigma := 0.06
	if t.Family() == "p3" {
		// p3's placement score is near-constant across regions (Fig. 4c).
		sigma = 0.02
		base = 3.30
	}
	rng := simclock.Stream(m.seed, "sps/"+string(t)+"/"+string(r))
	w := newWalk(rng, base, sigma, 0.35, 1, 10)
	m.sps[k] = w
	return w, nil
}

// SpotPrice returns the spot price of t in az at the given instant.
func (m *Model) SpotPrice(t catalog.InstanceType, az catalog.AZ, at time.Time) (float64, error) {
	w, err := m.priceWalk(t, az)
	if err != nil {
		return 0, err
	}
	return w.at(m.stepIndex(at, PriceStep)), nil
}

// minSeries is the cached per-step cheapest-AZ price series for one
// (type, region): the regional spot price AveragePrice integrates and
// RegionSpotPrice reports. prefix carries running sums (prefix[0] = 0,
// prefix[k+1] = prefix[k] + min[k]) so any window sum starting at the
// model start is a single subtraction — and a window anchored at step 0
// reproduces the naive left-to-right summation bit for bit.
type minSeries struct {
	azs    []catalog.AZ
	walks  []*walk
	min    []float64
	argAZ  []int32
	prefix []float64
}

// extendTo materialises the min series through step k, extending every
// AZ walk on the way. Each walk draws from its own RNG stream, so the
// values are independent of extension interleaving.
func (s *minSeries) extendTo(k int) {
	if len(s.min) > k {
		return
	}
	if cap(s.min) <= k {
		grownMin := make([]float64, len(s.min), k+1)
		copy(grownMin, s.min)
		s.min = grownMin
		grownArg := make([]int32, len(s.argAZ), k+1)
		copy(grownArg, s.argAZ)
		s.argAZ = grownArg
		grownPre := make([]float64, len(s.prefix), k+2)
		copy(grownPre, s.prefix)
		s.prefix = grownPre
	}
	for _, w := range s.walks {
		w.extendTo(k)
	}
	for i := len(s.min); i <= k; i++ {
		// Same tie-break as the scan it replaces: first AZ in zone order
		// with the strictly lowest price.
		best, arg := s.walks[0].samples[i], 0
		for j := 1; j < len(s.walks); j++ {
			if v := s.walks[j].samples[i]; v < best {
				best, arg = v, j
			}
		}
		s.min = append(s.min, best)
		s.argAZ = append(s.argAZ, int32(arg))
		s.prefix = append(s.prefix, s.prefix[len(s.prefix)-1]+best)
	}
}

// regionSeries returns (building on first use) the cached cheapest-AZ
// series for (t, r).
func (m *Model) regionSeries(t catalog.InstanceType, r catalog.Region) (*minSeries, error) {
	k := Key{Region: r, Type: t}
	if s, ok := m.regionMin[k]; ok {
		return s, nil
	}
	if !m.cat.Offered(t, r) {
		return nil, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	azs := m.cat.Zones(r)
	if len(azs) == 0 {
		return nil, fmt.Errorf("market: region %s has no zones", r)
	}
	s := &minSeries{azs: azs, walks: make([]*walk, 0, len(azs)), prefix: []float64{0}}
	for _, az := range azs {
		w, err := m.priceWalk(t, az)
		if err != nil {
			return nil, err
		}
		s.walks = append(s.walks, w)
	}
	m.regionMin[k] = s
	return s, nil
}

// RegionSpotPrice returns the cheapest AZ spot price of t in r, and the AZ.
func (m *Model) RegionSpotPrice(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, catalog.AZ, error) {
	if !m.cat.Offered(t, r) {
		return 0, "", fmt.Errorf("market: %s not offered in %s", t, r)
	}
	s, err := m.regionSeries(t, r)
	if err != nil {
		return 0, "", err
	}
	k := m.stepIndex(at, PriceStep)
	s.extendTo(k)
	return s.min[k], s.azs[s.argAZ[k]], nil
}

// PriceHistory returns the price series of t in az on [from, to] sampled
// every step. It mimics DescribeSpotPriceHistory.
func (m *Model) PriceHistory(t catalog.InstanceType, az catalog.AZ, from, to time.Time, step time.Duration) ([]PricePoint, error) {
	if step <= 0 {
		step = PriceStep
	}
	if to.Before(from) {
		return nil, fmt.Errorf("market: history to %s before from %s", to, from)
	}
	w, err := m.priceWalk(t, az)
	if err != nil {
		return nil, err
	}
	// One allocation for the whole series, and the walk is materialised
	// through the last step up front so the loop is pure array indexing
	// instead of per-sample map lookups and growth.
	n := int(to.Sub(from)/step) + 1
	w.extendTo(m.stepIndex(from.Add(time.Duration(n-1)*step), PriceStep))
	out := make([]PricePoint, 0, n)
	for ts := from; !ts.After(to); ts = ts.Add(step) {
		out = append(out, PricePoint{Time: ts, USDPerHour: w.samples[m.stepIndex(ts, PriceStep)]})
	}
	return out, nil
}

// InterruptionFrequency returns the latent monthly interruption fraction
// for t in r at the given instant (the advisor's underlying quantity).
func (m *Model) InterruptionFrequency(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	w, err := m.freqWalk(t, r)
	if err != nil {
		return 0, err
	}
	return w.at(m.stepIndex(at, MetricStep)), nil
}

// StabilityScore maps the interruption frequency into the paper's 1-3
// score: 3 below 5%, 1 above 20%, 2 between.
func (m *Model) StabilityScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return 0, err
	}
	return StabilityFromFrequency(f), nil
}

// StabilityFromFrequency converts a monthly interruption fraction into the
// 1-3 Stability Score.
func StabilityFromFrequency(f float64) int {
	switch {
	case f < 0.05:
		return StabilityHigh
	case f < 0.20:
		return StabilityMid
	default:
		return StabilityLow
	}
}

// PlacementScore returns the integer Spot Placement Score (1-10) of t in r.
func (m *Model) PlacementScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	v, err := m.PlacementScoreLatent(t, r, at)
	if err != nil {
		return 0, err
	}
	s := int(math.Round(v))
	if s < 1 {
		s = 1
	}
	if s > 10 {
		s = 10
	}
	return s, nil
}

// PlacementScoreLatent returns the continuous SPS process value, used for
// the Fig. 4 time-series plots.
func (m *Model) PlacementScoreLatent(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	w, err := m.spsWalk(t, r)
	if err != nil {
		return 0, err
	}
	return w.at(m.stepIndex(at, MetricStep)), nil
}

// CombinedScore is PlacementScore + StabilityScore — the quantity the
// Optimizer thresholds on (Algorithm 1).
func (m *Model) CombinedScore(t catalog.InstanceType, r catalog.Region, at time.Time) (int, error) {
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return 0, err
	}
	st, err := m.StabilityScore(t, r, at)
	if err != nil {
		return 0, err
	}
	return sps + st, nil
}

// HazardPerHour returns the per-hour interruption hazard of a running spot
// instance of t in r at the given instant.
func (m *Model) HazardPerHour(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return 0, err
	}
	return f * hazardScale, nil
}

// LaunchSuccessProbability is the chance a spot request is fulfilled on
// its first placement attempt, increasing with the Spot Placement Score
// (AWS documents SPS as exactly this likelihood).
func (m *Model) LaunchSuccessProbability(t catalog.InstanceType, r catalog.Region, at time.Time) (float64, error) {
	if m.InOutage(r, at) {
		return 0, nil
	}
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return 0, err
	}
	p := 0.50 + 0.05*float64(sps)
	return clamp(p, 0, 1), nil
}

// Advisor returns an advisor snapshot row for (t, r).
func (m *Model) Advisor(t catalog.InstanceType, r catalog.Region, at time.Time) (AdvisorEntry, error) {
	spot, _, err := m.RegionSpotPrice(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	od, err := m.cat.OnDemandPrice(t, r)
	if err != nil {
		return AdvisorEntry{}, err
	}
	f, err := m.InterruptionFrequency(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	sps, err := m.PlacementScore(t, r, at)
	if err != nil {
		return AdvisorEntry{}, err
	}
	st := StabilityFromFrequency(f)
	return AdvisorEntry{
		Region:                r,
		Type:                  t,
		SpotPriceUSD:          spot,
		OnDemandUSD:           od,
		SavingsOverOnDemand:   1 - spot/od,
		InterruptionFrequency: f,
		StabilityScore:        st,
		PlacementScore:        sps,
		CombinedScore:         sps + st,
	}, nil
}

// AdvisorSnapshot returns advisor rows for t across all offering regions,
// ordered by region name.
func (m *Model) AdvisorSnapshot(t catalog.InstanceType, at time.Time) ([]AdvisorEntry, error) {
	regions := m.cat.OfferedRegions(t)
	out := make([]AdvisorEntry, 0, len(regions))
	for _, r := range regions {
		e, err := m.Advisor(t, r, at)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// AveragePrice returns the time-averaged regional spot price of t in r
// over [from, to], used for stable "cheapest region" rankings (Table 1).
//
// The average reads the cached cheapest-AZ prefix sums: after the window
// is materialised the answer is one subtraction instead of a rescan of
// every price step across every AZ. A window whose first step lands on
// the model start reproduces the naive left-to-right summation exactly;
// other alignments agree to float64 rounding (~1e-12 relative).
func (m *Model) AveragePrice(t catalog.InstanceType, r catalog.Region, from, to time.Time) (float64, error) {
	if !m.cat.Offered(t, r) {
		return 0, fmt.Errorf("market: %s not offered in %s", t, r)
	}
	if to.Before(from) {
		return 0, fmt.Errorf("market: empty averaging window")
	}
	s, err := m.regionSeries(t, r)
	if err != nil {
		return 0, err
	}
	n := int(to.Sub(from)/PriceStep) + 1
	last := m.stepIndex(from.Add(time.Duration(n-1)*PriceStep), PriceStep)
	s.extendTo(last)
	if from.Before(m.start) {
		// Pre-start samples clamp to step 0, so the window's step indices
		// are not contiguous; sum term by term (still cached, no rescans).
		var sum float64
		for ts, i := from, 0; i < n; ts, i = ts.Add(PriceStep), i+1 {
			sum += s.min[m.stepIndex(ts, PriceStep)]
		}
		return sum / float64(n), nil
	}
	k0 := m.stepIndex(from, PriceStep)
	return (s.prefix[last+1] - s.prefix[k0]) / float64(n), nil
}

// cheapKey addresses one memoized CheapestSpotRegion ranking.
type cheapKey struct {
	t        catalog.InstanceType
	from, to int64
}

type cheapEntry struct {
	region catalog.Region
	price  float64
}

// CheapestSpotRegion returns the region with the lowest time-averaged spot
// price for t over the window — the paper's per-type "baseline region"
// (Table 1). Rankings are memoized per (type, window): Table 1, Fig. 8 and
// every baseline-region probe ask for the same opening-weeks window over
// and over.
func (m *Model) CheapestSpotRegion(t catalog.InstanceType, from, to time.Time) (catalog.Region, float64, error) {
	ck := cheapKey{t: t, from: from.UnixNano(), to: to.UnixNano()}
	if e, ok := m.cheapest[ck]; ok {
		return e.region, e.price, nil
	}
	var (
		best      catalog.Region
		bestPrice float64
		found     bool
	)
	for _, r := range m.cat.OfferedRegions(t) {
		p, err := m.AveragePrice(t, r, from, to)
		if err != nil {
			return "", 0, err
		}
		if !found || p < bestPrice {
			best, bestPrice, found = r, p, true
		}
	}
	if !found {
		return "", 0, fmt.Errorf("market: %s offered nowhere", t)
	}
	m.cheapest[ck] = cheapEntry{region: best, price: bestPrice}
	return best, bestPrice, nil
}
