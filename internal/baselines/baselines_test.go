package baselines

import (
	"errors"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

func testMarket(seed int64) (*simclock.Engine, *market.Model) {
	eng := simclock.NewEngine()
	return eng, market.New(catalog.Default(), seed, simclock.Epoch)
}

func TestSingleRegionPlacesEverythingThere(t *testing.T) {
	cat := catalog.Default()
	s, err := NewSingleRegion(cat, catalog.M5XLarge, "ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	placements, err := s.PlaceInitial([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range placements {
		if p.Region != "ca-central-1" || p.Lifecycle != cloud.LifecycleSpot {
			t.Fatalf("%s: %+v", id, p)
		}
	}
	var got strategy.Placement
	if err := s.OnInterrupted("a", "ca-central-1", func(p strategy.Placement) { got = p }); err != nil {
		t.Fatal(err)
	}
	if got.Region != "ca-central-1" {
		t.Fatalf("relaunched in %s", got.Region)
	}
}

func TestSingleRegionValidates(t *testing.T) {
	cat := catalog.Default()
	if _, err := NewSingleRegion(cat, catalog.P32XLarge, "ca-central-1"); !errors.Is(err, ErrNotOffered) {
		t.Fatalf("err = %v", err)
	}
}

func TestOnDemandPicksCheapestRegion(t *testing.T) {
	cat := catalog.Default()
	s, err := NewOnDemand(cat, catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	wantRegion, _, err := cat.CheapestOnDemand(catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	if s.Region() != wantRegion {
		t.Fatalf("region = %s, want %s", s.Region(), wantRegion)
	}
	placements, _ := s.PlaceInitial([]string{"a"})
	if placements["a"].Lifecycle != cloud.LifecycleOnDemand {
		t.Fatalf("placement = %+v", placements["a"])
	}
}

func TestSkyPilotChasesCheapestPrice(t *testing.T) {
	eng, mkt := testMarket(3)
	s, err := NewSkyPilotLike(eng, mkt, catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	placements, err := s.PlaceInitial([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	chosen := placements["a"].Region
	// Verify it is the global price argmin right now.
	for _, r := range mkt.Catalog().OfferedRegions(catalog.M5XLarge) {
		p, _, err := mkt.RegionSpotPrice(catalog.M5XLarge, r, eng.Now())
		if err != nil {
			t.Fatal(err)
		}
		pc, _, _ := mkt.RegionSpotPrice(catalog.M5XLarge, chosen, eng.Now())
		if p < pc {
			t.Fatalf("chose %s but %s is cheaper (%v < %v)", chosen, r, p, pc)
		}
	}
	// ca-central-1 carries the lowest baseline m5.xlarge price, so the
	// broker should walk straight into the paper's trap.
	if chosen != "ca-central-1" {
		t.Logf("note: cheapest at epoch is %s (market noise)", chosen)
	}
	var re strategy.Placement
	if err := s.OnInterrupted("a", chosen, func(p strategy.Placement) { re = p }); err != nil {
		t.Fatal(err)
	}
	if re.Lifecycle != cloud.LifecycleSpot {
		t.Fatalf("relaunch = %+v", re)
	}
}

func TestNaiveMultiRegionRoundRobin(t *testing.T) {
	cat := catalog.Default()
	regions := []catalog.Region{"ap-northeast-3", "ca-central-1", "eu-north-1"}
	s, err := NewNaiveMultiRegion(cat, catalog.M5XLarge, regions, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
	placements, err := s.PlaceInitial(ids)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[catalog.Region]int{}
	for _, p := range placements {
		counts[p.Region]++
	}
	for _, r := range regions {
		if counts[r] != 2 {
			t.Fatalf("counts = %v", counts)
		}
	}
	// Relaunch always lands inside the fixed set.
	for i := 0; i < 30; i++ {
		var got strategy.Placement
		_ = s.OnInterrupted("w0", "ca-central-1", func(p strategy.Placement) { got = p })
		found := false
		for _, r := range regions {
			if got.Region == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("relaunched outside the set: %s", got.Region)
		}
	}
}

func TestNaiveMultiRegionValidates(t *testing.T) {
	cat := catalog.Default()
	if _, err := NewNaiveMultiRegion(cat, catalog.M5XLarge, nil, 1); !errors.Is(err, ErrNoRegions) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewNaiveMultiRegion(cat, catalog.P32XLarge, []catalog.Region{"ca-central-1"}, 1); !errors.Is(err, ErrNotOffered) {
		t.Fatalf("err = %v", err)
	}
}
