// Package baselines implements the comparison strategies the paper
// evaluates SpotVerse against: the traditional single-region spot
// deployment, pure on-demand, a SkyPilot-style cheapest-price-first
// multi-region manager, and the naive fixed-set multi-region round-robin
// of the motivational experiment (Fig. 3).
package baselines

import (
	"errors"
	"fmt"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Errors returned by the constructors.
var (
	ErrNoRegions  = errors.New("baselines: no regions supplied")
	ErrNotOffered = errors.New("baselines: instance type not offered in region")
)

// SingleRegion keeps every workload on spot in one region forever — the
// paper's "traditional single-region deployment" baseline.
type SingleRegion struct {
	region catalog.Region
}

var _ strategy.Strategy = (*SingleRegion)(nil)

// NewSingleRegion validates the region offers the type and returns the
// strategy.
func NewSingleRegion(cat *catalog.Catalog, t catalog.InstanceType, r catalog.Region) (*SingleRegion, error) {
	if !cat.Offered(t, r) {
		return nil, fmt.Errorf("single-region %s/%s: %w", t, r, ErrNotOffered)
	}
	return &SingleRegion{region: r}, nil
}

// Name implements strategy.Strategy.
func (s *SingleRegion) Name() string { return "single-region" }

// PlaceInitial implements strategy.Strategy.
func (s *SingleRegion) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	out := make(map[string]strategy.Placement, len(ids))
	for _, id := range ids {
		out[id] = strategy.Placement{Region: s.region, Lifecycle: cloud.LifecycleSpot}
	}
	return out, nil
}

// OnInterrupted relaunches in the same region: single-region deployments
// have nowhere else to go.
func (s *SingleRegion) OnInterrupted(_ string, _ catalog.Region, relaunch strategy.RelaunchFunc) error {
	relaunch(strategy.Placement{Region: s.region, Lifecycle: cloud.LifecycleSpot})
	return nil
}

// OnDemand runs everything on on-demand instances in the cheapest
// on-demand region — the paper's reliability ceiling / cost comparator.
type OnDemand struct {
	region catalog.Region
}

var _ strategy.Strategy = (*OnDemand)(nil)

// NewOnDemand picks the cheapest on-demand region for the type.
func NewOnDemand(cat *catalog.Catalog, t catalog.InstanceType) (*OnDemand, error) {
	r, _, err := cat.CheapestOnDemand(t)
	if err != nil {
		return nil, fmt.Errorf("on-demand: %w", err)
	}
	return &OnDemand{region: r}, nil
}

// Name implements strategy.Strategy.
func (s *OnDemand) Name() string { return "on-demand" }

// Region reports the chosen region.
func (s *OnDemand) Region() catalog.Region { return s.region }

// PlaceInitial implements strategy.Strategy.
func (s *OnDemand) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	out := make(map[string]strategy.Placement, len(ids))
	for _, id := range ids {
		out[id] = strategy.Placement{Region: s.region, Lifecycle: cloud.LifecycleOnDemand}
	}
	return out, nil
}

// OnInterrupted never fires for on-demand instances; if it somehow does,
// relaunch on-demand again.
func (s *OnDemand) OnInterrupted(_ string, _ catalog.Region, relaunch strategy.RelaunchFunc) error {
	relaunch(strategy.Placement{Region: s.region, Lifecycle: cloud.LifecycleOnDemand})
	return nil
}

// SkyPilotLike reproduces the comparison framework of Section 5.2.5: an
// intercloud broker that always chases the globally cheapest spot price,
// both at launch and when relaunching after a preemption. It reads the
// live market the way SkyPilot's optimizer queries cloud pricing
// catalogs; reliability metrics play no part, which is exactly the
// behavioural difference the paper measures.
type SkyPilotLike struct {
	eng *simclock.Engine
	mkt *market.Model
	t   catalog.InstanceType
}

var _ strategy.Strategy = (*SkyPilotLike)(nil)

// NewSkyPilotLike builds the broker over the live market.
func NewSkyPilotLike(eng *simclock.Engine, mkt *market.Model, t catalog.InstanceType) (*SkyPilotLike, error) {
	if _, err := mkt.Catalog().Spec(t); err != nil {
		return nil, err
	}
	return &SkyPilotLike{eng: eng, mkt: mkt, t: t}, nil
}

// cheapestNow finds the globally cheapest spot region at this instant.
func (s *SkyPilotLike) cheapestNow() (catalog.Region, error) {
	at := s.eng.Now()
	var (
		best      catalog.Region
		bestPrice float64
		found     bool
	)
	for _, r := range s.mkt.Catalog().OfferedRegions(s.t) {
		p, _, err := s.mkt.RegionSpotPrice(s.t, r, at)
		if err != nil {
			return "", err
		}
		if !found || p < bestPrice {
			best, bestPrice, found = r, p, true
		}
	}
	if !found {
		return "", fmt.Errorf("skypilot: %s offered nowhere", s.t)
	}
	return best, nil
}

// Name implements strategy.Strategy.
func (s *SkyPilotLike) Name() string { return "skypilot" }

// PlaceInitial puts every workload in the currently cheapest region.
func (s *SkyPilotLike) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	r, err := s.cheapestNow()
	if err != nil {
		return nil, err
	}
	out := make(map[string]strategy.Placement, len(ids))
	for _, id := range ids {
		out[id] = strategy.Placement{Region: r, Lifecycle: cloud.LifecycleSpot}
	}
	return out, nil
}

// OnInterrupted relaunches in the cheapest region at failure time — which
// may well be the region that just preempted the workload.
func (s *SkyPilotLike) OnInterrupted(_ string, _ catalog.Region, relaunch strategy.RelaunchFunc) error {
	r, err := s.cheapestNow()
	if err != nil {
		return err
	}
	relaunch(strategy.Placement{Region: r, Lifecycle: cloud.LifecycleSpot})
	return nil
}

// NaiveMultiRegion distributes workloads round-robin over a fixed region
// list and relaunches interrupted workloads in a random region of the
// same list — the motivational experiment's multi-region setup, with no
// reliability awareness.
type NaiveMultiRegion struct {
	regions []catalog.Region
	rng     *simclock.RNG
}

var _ strategy.Strategy = (*NaiveMultiRegion)(nil)

// NewNaiveMultiRegion validates the region list.
func NewNaiveMultiRegion(cat *catalog.Catalog, t catalog.InstanceType, regions []catalog.Region, seed int64) (*NaiveMultiRegion, error) {
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}
	for _, r := range regions {
		if !cat.Offered(t, r) {
			return nil, fmt.Errorf("naive-multi %s/%s: %w", t, r, ErrNotOffered)
		}
	}
	cp := make([]catalog.Region, len(regions))
	copy(cp, regions)
	return &NaiveMultiRegion{regions: cp, rng: simclock.Stream(seed, "naive-multi")}, nil
}

// Name implements strategy.Strategy.
func (s *NaiveMultiRegion) Name() string { return "naive-multi-region" }

// PlaceInitial round-robins over the fixed list.
func (s *NaiveMultiRegion) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	out := make(map[string]strategy.Placement, len(ids))
	for i, id := range ids {
		out[id] = strategy.Placement{Region: s.regions[i%len(s.regions)], Lifecycle: cloud.LifecycleSpot}
	}
	return out, nil
}

// OnInterrupted relaunches in a random region of the list.
func (s *NaiveMultiRegion) OnInterrupted(_ string, _ catalog.Region, relaunch strategy.RelaunchFunc) error {
	relaunch(strategy.Placement{Region: simclock.Pick(s.rng, s.regions), Lifecycle: cloud.LifecycleSpot})
	return nil
}
