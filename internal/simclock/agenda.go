package simclock

import "time"

// Agenda coalesces callbacks due at the same (key, instant) into a
// single engine event. A fleet-scale simulation that would otherwise
// push one heap entry per workload per poll tick — a sweep wave
// fulfilling thousands of spot requests 45 seconds later, a batch of
// same-tick completions in one region — instead appends to one bucket:
// the heap holds one entry per distinct (key, tick), and scheduling or
// cancelling inside a bucket is O(1) with no heap churn.
//
// Callbacks in a bucket run in the order they were added, which is
// exactly the order individually-scheduled events with the same due
// time would have fired (the engine breaks time ties by schedule
// sequence). Cancellation clears the slot; a bucket whose every slot is
// cancelled cancels its engine event so compaction can reap it.
type Agenda struct {
	eng     *Engine
	buckets map[agendaKey]*agendaBucket
}

type agendaKey struct {
	at  int64 // UnixNano of the due instant
	key string
}

type agendaBucket struct {
	agenda    *Agenda
	k         agendaKey
	fns       []func()
	cancelled int
	fired     bool
	ev        *Event
}

// BatchHandle cancels one callback inside an agenda bucket.
type BatchHandle struct {
	b   *agendaBucket
	idx int
}

// NewAgenda returns an agenda scheduling onto the engine.
func NewAgenda(eng *Engine) *Agenda {
	return &Agenda{eng: eng, buckets: make(map[agendaKey]*agendaBucket)}
}

// Schedule registers fn to run at t, batched with every other callback
// registered for the same (key, t). The name labels the bucket's engine
// event for debugging. Scheduling in the past is an error, exactly as
// for Engine.ScheduleAt.
func (a *Agenda) Schedule(t time.Time, key, name string, fn func()) (BatchHandle, error) {
	k := agendaKey{at: t.UnixNano(), key: key}
	b, ok := a.buckets[k]
	if !ok {
		b = &agendaBucket{agenda: a, k: k}
		ev, err := a.eng.ScheduleAt(t, name, b.fire)
		if err != nil {
			return BatchHandle{}, err
		}
		b.ev = ev
		a.buckets[k] = b
	}
	b.fns = append(b.fns, fn)
	return BatchHandle{b: b, idx: len(b.fns) - 1}, nil
}

// ScheduleAfter registers fn to run d from now under the key. Negative
// delays are clamped to zero.
func (a *Agenda) ScheduleAfter(d time.Duration, key, name string, fn func()) BatchHandle {
	if d < 0 {
		d = 0
	}
	h, err := a.Schedule(a.eng.Now().Add(d), key, name, fn)
	if err != nil {
		// Unreachable: now+nonNegative is never before now.
		panic(err)
	}
	return h
}

func (b *agendaBucket) fire() {
	delete(b.agenda.buckets, b.k)
	b.fired = true
	for _, fn := range b.fns {
		if fn != nil {
			fn()
		}
	}
	b.fns = nil
}

// Cancel prevents the callback from firing. It reports whether the
// callback was still pending; cancelling twice, or after the bucket
// fired, is a no-op.
func (h BatchHandle) Cancel() bool {
	b := h.b
	if b == nil || b.fired || b.fns[h.idx] == nil {
		return false
	}
	b.fns[h.idx] = nil
	b.cancelled++
	if b.cancelled == len(b.fns) {
		// Every slot cancelled: the bucket will never do work. Drop it
		// from the map and free its heap entry so a fleet that cancels
		// whole waves of timers retains nothing; a later add for the
		// same (key, tick) starts a fresh bucket.
		b.fired = true
		b.ev.Cancel()
		delete(b.agenda.buckets, b.k)
	}
	return true
}

// Buckets reports how many unfired buckets the agenda currently tracks.
func (a *Agenda) Buckets() int { return len(a.buckets) }
