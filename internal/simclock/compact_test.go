package simclock

import (
	"testing"
	"time"
)

// TestCompactionReapsCancelledEvents is the regression test for the
// fleet-scale lazy-deletion fix: scheduling many timers and cancelling
// most of them must shrink the physical queue, not just mark entries
// dead. Before compaction, 100k workloads each re-arming a completion
// timer per interruption grew the heap without bound.
func TestCompactionReapsCancelledEvents(t *testing.T) {
	eng := NewEngine()
	const n = 1000
	events := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, eng.ScheduleAfter(time.Duration(i+1)*time.Second, "timer", func() {}))
	}
	if got := eng.Pending(); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	// Cancel all but the last 10. Compaction triggers as soon as the
	// cancelled count passes half the queue, so by the end the physical
	// queue must be near the live count, not near n.
	for _, ev := range events[:n-10] {
		ev.Cancel()
	}
	if got := eng.Pending(); got != 10 {
		t.Fatalf("Pending after cancel = %d, want 10", got)
	}
	if got := len(eng.queue); got > 2*10+compactThreshold {
		t.Fatalf("physical queue = %d entries after cancelling %d of %d; compaction did not reap", got, n-10, n)
	}
	// The survivors still fire, in order.
	fired := 0
	for eng.Step() {
		fired++
	}
	if fired != 10 {
		t.Fatalf("fired %d events, want 10", fired)
	}
}

// TestCompactionPreservesFiringOrder cross-checks that compacting in
// the middle of a run does not perturb the (time, seq) pop order.
func TestCompactionPreservesFiringOrder(t *testing.T) {
	run := func(cancelHalf bool) []string {
		eng := NewEngine()
		var order []string
		var evs []*Event
		for i := 0; i < 200; i++ {
			i := i
			name := string(rune('a'+i%26)) + "-" + time.Duration(i).String()
			ev := eng.ScheduleAfter(time.Duration(i%37)*time.Minute, name, func() {
				order = append(order, name)
			})
			evs = append(evs, ev)
		}
		if cancelHalf {
			for i, ev := range evs {
				if i%2 == 1 {
					ev.Cancel()
				}
			}
		}
		if err := eng.Run(time.Time{}); err != nil {
			t.Fatal(err)
		}
		if !cancelHalf {
			// Filter to the events the other run keeps.
			kept := order[:0]
			for i, name := range order {
				_ = i
				kept = append(kept, name)
			}
			order = kept
		}
		return order
	}

	full := run(false)
	compacted := run(true)
	// Every event surviving cancellation must fire in the same relative
	// order as in the uncancelled run.
	pos := make(map[string]int, len(full))
	for i, name := range full {
		pos[name] = i
	}
	last := -1
	for _, name := range compacted {
		p, ok := pos[name]
		if !ok {
			t.Fatalf("event %q fired in compacted run but not in full run", name)
		}
		if p < last {
			t.Fatalf("event %q fired out of relative order after compaction", name)
		}
		last = p
	}
}

// TestPendingCountsOnlyLiveEvents pins the Pending semantics change:
// cancelled-but-unreaped entries are excluded even below the
// compaction threshold.
func TestPendingCountsOnlyLiveEvents(t *testing.T) {
	eng := NewEngine()
	a := eng.ScheduleAfter(time.Minute, "a", func() {})
	eng.ScheduleAfter(2*time.Minute, "b", func() {})
	if got := eng.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Cancel()
	if got := eng.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
	a.Cancel() // double-cancel must not double-count
	if got := eng.Pending(); got != 1 {
		t.Fatalf("Pending after double cancel = %d, want 1", got)
	}
	if !eng.Step() {
		t.Fatal("Step found no live event")
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestAgendaBatchesAndPreservesOrder(t *testing.T) {
	eng := NewEngine()
	ag := NewAgenda(eng)
	var order []int
	due := eng.Now().Add(time.Hour)
	for i := 0; i < 5; i++ {
		i := i
		if _, err := ag.Schedule(due, "regionA", "batch", func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	// A different key at the same instant gets its own bucket.
	if _, err := ag.Schedule(due, "regionB", "batch", func() { order = append(order, 100) }); err != nil {
		t.Fatal(err)
	}
	if got := ag.Buckets(); got != 2 {
		t.Fatalf("Buckets = %d, want 2", got)
	}
	// Two buckets -> two heap entries, regardless of six callbacks.
	if got := eng.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2 (one engine event per bucket)", got)
	}
	if err := eng.Run(time.Time{}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 100}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if got := ag.Buckets(); got != 0 {
		t.Fatalf("Buckets after run = %d, want 0", got)
	}
}

func TestAgendaCancelSlot(t *testing.T) {
	eng := NewEngine()
	ag := NewAgenda(eng)
	var order []int
	hs := make([]BatchHandle, 0, 3)
	for i := 0; i < 3; i++ {
		i := i
		hs = append(hs, ag.ScheduleAfter(time.Hour, "k", "batch", func() { order = append(order, i) }))
	}
	if !hs[1].Cancel() {
		t.Fatal("first Cancel reported not pending")
	}
	if hs[1].Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	if err := eng.Run(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("fired %v, want [0 2]", order)
	}
	if hs[0].Cancel() {
		t.Fatal("Cancel after firing reported pending")
	}
}

// TestAgendaFullyCancelledBucketRearms covers the tricky case: cancel
// every slot in a bucket (which drops the bucket and its engine
// event), then schedule the same (key, tick) again — the new callback
// must still fire.
func TestAgendaFullyCancelledBucketRearms(t *testing.T) {
	eng := NewEngine()
	ag := NewAgenda(eng)
	h1 := ag.ScheduleAfter(time.Hour, "k", "batch", func() { t.Fatal("cancelled slot fired") })
	h2 := ag.ScheduleAfter(time.Hour, "k", "batch", func() { t.Fatal("cancelled slot fired") })
	h1.Cancel()
	h2.Cancel()
	if got := ag.Buckets(); got != 0 {
		t.Fatalf("Buckets after full cancel = %d, want 0", got)
	}
	if got := eng.Pending(); got != 0 {
		t.Fatalf("Pending after full cancel = %d, want 0", got)
	}
	fired := false
	ag.ScheduleAfter(time.Hour, "k", "batch", func() { fired = true })
	if err := eng.Run(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("re-armed bucket never fired")
	}
}

func TestAgendaSchedulePastRejected(t *testing.T) {
	eng := NewEngine()
	ag := NewAgenda(eng)
	eng.ScheduleAfter(time.Hour, "advance", func() {})
	eng.Step()
	if _, err := ag.Schedule(eng.Now().Add(-time.Minute), "k", "late", func() {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
	if got := ag.Buckets(); got != 0 {
		t.Fatalf("Buckets after failed schedule = %d, want 0", got)
	}
}
