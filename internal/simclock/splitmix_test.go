package simclock

import (
	"math"
	"testing"

	"spotverse/internal/raceflag"
)

func TestSplitMixDeterministic(t *testing.T) {
	fam := SplitMixFamily(42, "fleet-wl")
	a := SplitMixAt(fam, 7)
	b := SplitMixAt(fam, 7)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

// TestSplitMixStreamsIndependent pins the sharding property the fleet
// engine relies on: a stream's draws are a function of (seed, name,
// index) alone, so draining a neighbouring stream changes nothing.
func TestSplitMixStreamsIndependent(t *testing.T) {
	fam := SplitMixFamily(42, "fleet-wl")
	solo := SplitMixAt(fam, 3)
	var want [64]uint64
	for i := range want {
		want[i] = solo.Uint64()
	}

	neighbour := SplitMixAt(fam, 2)
	for i := 0; i < 999; i++ {
		neighbour.Uint64()
	}
	again := SplitMixAt(fam, 3)
	for i := range want {
		if got := again.Uint64(); got != want[i] {
			t.Fatalf("draw %d perturbed by neighbouring stream: %d != %d", i, got, want[i])
		}
	}
}

func TestSplitMixFamiliesDiffer(t *testing.T) {
	a := SplitMixAt(SplitMixFamily(42, "fleet-wl"), 0)
	b := SplitMixAt(SplitMixFamily(42, "other"), 0)
	c := SplitMixAt(SplitMixFamily(43, "fleet-wl"), 0)
	x, y, z := a.Uint64(), b.Uint64(), c.Uint64()
	if x == y || x == z {
		t.Fatalf("family derivations collide: %d %d %d", x, y, z)
	}
}

func TestSplitMixDistributions(t *testing.T) {
	g := SplitMixAt(SplitMixFamily(1, "dist"), 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		u := g.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}

	var expSum float64
	for i := 0; i < n; i++ {
		v := g.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		expSum += v
	}
	if mean := expSum / n; math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("Exp(3) mean %v, want ~3", mean)
	}

	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[g.Intn(5)]++
	}
	for b, c := range counts {
		if c < n/5-2000 || c > n/5+2000 {
			t.Fatalf("Intn bucket %d count %d, want ~%d", b, c, n/5)
		}
	}

	if !math.IsInf(g.Exp(0), 1) || !math.IsInf(g.Exp(-1), 1) {
		t.Fatal("Exp of non-positive mean must be +Inf")
	}
}

// TestSplitMixAllocFree is the runtime half of the //spotverse:hotpath
// gates on the SplitMix64 draw methods: per-workload draws run on the
// fleet engine's innermost loop and must not allocate.
func TestSplitMixAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	g := SplitMixAt(SplitMixFamily(42, "fleet-wl"), 0)
	allocs := testing.AllocsPerRun(200, func() {
		_ = g.Uint64()
		_ = g.Float64()
		_ = g.Bool(0.5)
		_ = g.Intn(17)
		_ = g.Exp(2.5)
	})
	if allocs != 0 {
		t.Fatalf("SplitMix64 draws allocated %v per run, want 0", allocs)
	}
}
