package simclock

import (
	"hash/fnv"
	"math"
)

// SplitMix64 is a compact deterministic random stream: 8 bytes of state
// against math/rand's ~5 KiB source. Fleet-scale runs keep one stream
// per workload — 100k streams as rand.Rand sources would cost half a
// gigabyte, as SplitMix64 values they are a single flat slab — so a
// workload's draws depend only on its own stream, never on how its
// events interleave with other workloads' in the engine.
//
// The generator is Steele et al.'s SplitMix64: a Weyl sequence through
// a 64-bit finalizer. It is not math/rand-compatible; consumers that
// must reproduce historical rand.Rand draws keep using RNG.
type SplitMix64 struct {
	state uint64
}

// splitmixGolden is the Weyl increment (2^64 / phi), the standard
// SplitMix64 constant.
const splitmixGolden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output finalizer; it is also used to spread
// stream indices so per-index seeds are decorrelated.
//
//spotverse:hotpath
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SplitMixFamily derives the family key for a set of indexed streams
// from a master seed and a stable name, mirroring Stream's seed-name
// derivation so distinct consumers cannot collide.
func SplitMixFamily(seed int64, name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return mix64(uint64(seed) ^ h.Sum64())
}

// SplitMixAt returns stream i of a family. The index is pushed through
// the finalizer before seeding, so adjacent indices start statistically
// unrelated sequences.
func SplitMixAt(family uint64, i int) SplitMix64 {
	return SplitMix64{state: mix64(family + splitmixGolden*(uint64(i)+1))}
}

// Uint64 returns the next 64 pseudo-random bits.
//
//spotverse:hotpath
func (g *SplitMix64) Uint64() uint64 {
	g.state += splitmixGolden
	return mix64(g.state)
}

// Float64 returns a uniform sample in [0, 1).
//
//spotverse:hotpath
func (g *SplitMix64) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
//
//spotverse:hotpath
func (g *SplitMix64) Bool(p float64) bool { return g.Float64() < p }

// Intn returns a uniform sample in [0, n). n must be positive.
//
//spotverse:hotpath
func (g *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("simclock: SplitMix64.Intn with non-positive n")
	}
	return int(g.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean
// via inversion. A non-positive mean yields +Inf (the event never
// happens), matching RNG.Exp.
//
//spotverse:hotpath
func (g *SplitMix64) Exp(mean float64) float64 {
	if mean <= 0 {
		return math.Inf(1)
	}
	// 1-u is in (0, 1], so the log argument never hits zero.
	return -math.Log(1-g.Float64()) * mean
}
