package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtEpoch(t *testing.T) {
	e := NewEngine()
	if !e.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", e.Now(), Epoch)
	}
}

func TestScheduleAfterOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	e.ScheduleAfter(2*time.Hour, "b", func() { got = append(got, "b") })
	e.ScheduleAfter(1*time.Hour, "a", func() { got = append(got, "a") })
	e.ScheduleAfter(3*time.Hour, "c", func() { got = append(got, "c") })
	if err := e.Run(time.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAfter(time.Hour, "tie", func() { got = append(got, i) })
	}
	if err := e.Run(time.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine()
	var at time.Time
	e.ScheduleAfter(90*time.Minute, "probe", func() { at = e.Now() })
	if err := e.Run(time.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := Epoch.Add(90 * time.Minute)
	if !at.Equal(want) {
		t.Fatalf("event saw now=%v, want %v", at, want)
	}
}

func TestScheduleAtPastRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.ScheduleAt(Epoch.Add(-time.Second), "past", func() {}); err == nil {
		t.Fatal("scheduling in the past should error")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.ScheduleAfter(time.Hour, "x", func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel() = false on pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel() should report false")
	}
	if err := e.Run(time.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.ScheduleAfter(1*time.Hour, "in", func() { fired++ })
	e.ScheduleAfter(5*time.Hour, "out", func() { fired++ })
	if err := e.Run(Epoch.Add(2 * time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !e.Now().Equal(Epoch.Add(2 * time.Hour)) {
		t.Fatalf("clock = %v, want horizon", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunForAdvancesEvenWhenIdle(t *testing.T) {
	e := NewEngine()
	if err := e.RunFor(3 * time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := e.Since(Epoch); got != 3*time.Hour {
		t.Fatalf("elapsed = %v, want 3h", got)
	}
}

func TestStopAborts(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.ScheduleAfter(time.Minute, "a", func() { ran++; e.Stop() })
	e.ScheduleAfter(2*time.Minute, "b", func() { ran++ })
	if err := e.Run(time.Time{}); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestEveryTicksAndStops(t *testing.T) {
	e := NewEngine()
	var ticks []time.Time
	tk := e.Every(15*time.Minute, "tick", func(now time.Time) {
		ticks = append(ticks, now)
	})
	if err := e.Run(Epoch.Add(time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != 4 {
		t.Fatalf("ticks = %d, want 4", len(ticks))
	}
	tk.Stop()
	before := len(ticks)
	if err := e.Run(Epoch.Add(2 * time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ticks) != before {
		t.Fatalf("ticker fired after Stop: %d > %d", len(ticks), before)
	}
}

func TestRunUntilPredicate(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.ScheduleAfter(time.Duration(i+1)*time.Minute, "inc", func() { n++ })
	}
	ok := e.RunUntil(func() bool { return n >= 3 })
	if !ok || n != 3 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v, want n=3 ok=true", n, ok)
	}
}

func TestRunUntilUnsatisfiedDrains(t *testing.T) {
	e := NewEngine()
	n := 0
	e.ScheduleAfter(time.Minute, "inc", func() { n++ })
	if ok := e.RunUntil(func() bool { return n >= 5 }); ok {
		t.Fatal("RunUntil reported satisfied on drained queue")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Stream(42, "market")
	b := Stream(42, "market")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed same-name streams diverged")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := Stream(42, "market")
	b := Stream(42, "cloud")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 16 {
		t.Fatalf("streams look identical: %d/64 collisions", same)
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(7)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := g.Uniform(lo, hi)
		return v >= lo && (v < hi || hi == lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpNonNegative(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if g.Exp(2.5) < 0 {
			t.Fatal("Exp returned negative sample")
		}
	}
}

func TestRNGExpZeroMeanInfinite(t *testing.T) {
	g := NewRNG(7)
	v := g.Exp(0)
	if v < 1e300 {
		t.Fatalf("Exp(0) = %v, want +Inf", v)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormalAround(3, 0.5); v <= 0 {
			t.Fatalf("LogNormalAround produced %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(1)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose all elements: %v", seen)
	}
}

func TestNestedSchedulingDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 5 {
			e.ScheduleAfter(time.Minute, "recur", recur)
		}
	}
	e.ScheduleAfter(time.Minute, "recur", recur)
	if err := e.Run(time.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}
