package simclock

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Distinct simulation components draw
// from distinct named streams derived from one master seed, so adding a new
// consumer does not perturb the draws seen by existing ones.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded directly with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives a child stream from a parent seed and a stable name.
func Stream(seed int64, name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return NewRNG(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard-normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exp returns an exponentially distributed sample with the given mean.
// A non-positive mean yields +Inf (the event never happens).
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return math.Inf(1)
	}
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Float64()*(hi-lo)
}

// Normal returns a normal sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + g.r.NormFloat64()*stddev
}

// LogNormalAround returns a sample centred on mean with multiplicative
// noise sigma (in log space), useful for durations and prices that must
// stay positive.
func (g *RNG) LogNormalAround(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	return mean * math.Exp(g.r.NormFloat64()*sigma-sigma*sigma/2)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly random element of xs. It panics on an empty
// slice because callers must guard emptiness themselves (it is always a
// logic error here).
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}
