// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority event queue, cancellable timers, and
// seeded random-number streams.
//
// Everything in the SpotVerse reproduction — spot markets, instances,
// Lambda invocations, Galaxy jobs — advances on a single Engine. Events
// scheduled for the same instant fire in schedule order (FIFO), which keeps
// runs bit-for-bit reproducible for a given seed.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Epoch is the default start of simulated time. The concrete date is
// arbitrary; experiments only ever use durations relative to it.
var Epoch = time.Date(2024, time.March, 4, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("simclock: engine stopped")

// Event is a scheduled callback. The callback runs with the clock set to
// the event's due time.
type Event struct {
	at     time.Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once popped or cancelled
	cancel bool
	name   string
}

// At reports the simulated time the event fires.
func (e *Event) At() time.Time { return e.at }

// Name reports the debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was cancelled) is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e.cancel || e.index < 0 {
		return false
	}
	e.cancel = true
	return true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components run inside the event loop.
type Engine struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine starting at Epoch.
func NewEngine() *Engine {
	return NewEngineAt(Epoch)
}

// NewEngineAt returns an engine whose clock starts at the given instant.
func NewEngineAt(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now reports current simulated time.
func (e *Engine) Now() time.Time { return e.now }

// Since reports the simulated duration elapsed since t.
func (e *Engine) Since(t time.Time) time.Duration { return e.now.Sub(t) }

// Pending reports the number of events waiting in the queue, including
// cancelled events that have not been reaped yet.
func (e *Engine) Pending() int { return e.queue.Len() }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleAt registers fn to run at the absolute simulated instant t.
// Scheduling in the past is an error because it would reorder history.
func (e *Engine) ScheduleAt(t time.Time, name string, fn func()) (*Event, error) {
	if t.Before(e.now) {
		return nil, fmt.Errorf("simclock: schedule %q at %s before now %s", name, t, e.now)
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// ScheduleAfter registers fn to run d after the current instant. Negative
// delays are clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := e.ScheduleAt(e.now.Add(d), name, fn)
	if err != nil {
		// Unreachable: now+nonNegative is never before now.
		panic(err)
	}
	return ev
}

// Ticker repeatedly schedules fn every interval until the returned stop
// function is called. The first firing happens one interval from now.
type Ticker struct {
	stop bool
}

// Stop prevents future firings of the ticker.
func (t *Ticker) Stop() { t.stop = true }

// Every schedules fn to run every interval. fn receives the firing time.
func (e *Engine) Every(interval time.Duration, name string, fn func(now time.Time)) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stop {
			return
		}
		fn(e.now)
		if t.stop {
			return
		}
		e.ScheduleAfter(interval, name, tick)
	}
	e.ScheduleAfter(interval, name, tick)
	return t
}

// Step executes the next pending event, advancing the clock to its due
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		next, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the horizon passes.
// A zero horizon means run to drain. Run returns ErrStopped if Stop was
// called from inside an event.
func (e *Engine) Run(horizon time.Time) error {
	e.stopped = false
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if !horizon.IsZero() && next.at.After(horizon) {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	if e.stopped {
		return ErrStopped
	}
	if !horizon.IsZero() && e.now.Before(horizon) {
		e.now = horizon
	}
	return nil
}

// RunFor advances the clock by d, executing all events due in the window.
func (e *Engine) RunFor(d time.Duration) error {
	return e.Run(e.now.Add(d))
}

// RunUntil executes events until pred returns true (checked after every
// event) or the queue drains. It reports whether pred was satisfied.
func (e *Engine) RunUntil(pred func() bool) bool {
	if pred() {
		return true
	}
	for e.Step() {
		if pred() {
			return true
		}
	}
	return false
}

// Stop aborts a Run in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }
