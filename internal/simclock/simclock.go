// Package simclock provides a deterministic discrete-event simulation
// engine: a virtual clock, a priority event queue, cancellable timers, and
// seeded random-number streams.
//
// Everything in the SpotVerse reproduction — spot markets, instances,
// Lambda invocations, Galaxy jobs — advances on a single Engine. Events
// scheduled for the same instant fire in schedule order (FIFO), which keeps
// runs bit-for-bit reproducible for a given seed.
package simclock

import (
	"errors"
	"fmt"
	"time"
)

// Epoch is the default start of simulated time. The concrete date is
// arbitrary; experiments only ever use durations relative to it.
var Epoch = time.Date(2024, time.March, 4, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("simclock: engine stopped")

// Event is a scheduled callback. The callback runs with the clock set to
// the event's due time.
type Event struct {
	at     time.Time
	seq    uint64
	fn     func()
	cancel bool
	done   bool // popped for execution; Cancel is a no-op from then on
	name   string
	eng    *Engine
}

// At reports the simulated time the event fires.
func (e *Event) At() time.Time { return e.at }

// Name reports the debug label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was cancelled) is a no-op. Cancel reports whether the
// event was still pending.
//
// Cancelled events are deleted lazily: they stay in the queue until
// popped, but once they outnumber live events the engine compacts them
// away in one pass, so a workload that schedules and cancels millions of
// timers keeps the queue sized to its live events.
func (e *Event) Cancel() bool {
	if e.cancel || e.done {
		return false
	}
	e.cancel = true
	if e.eng != nil {
		e.eng.noteCancelled()
	}
	return true
}

// heapEntry keeps the ordering key inline with the queue slice so the
// comparator never chases an *Event pointer: at fleet scale the queue
// holds tens of thousands of entries and every sift comparison on a
// []*Event layout is a cache miss into a scattered Event allocation.
type heapEntry struct {
	atNs int64 // at.UnixNano(); simulated instants fit int64 nanoseconds
	seq  uint64
	ev   *Event
}

type eventQueue []heapEntry

// less is a total order over (time, seq): seq values are unique, so any
// valid binary heap of the same entries pops in the identical sequence.
//
//spotverse:hotpath
func (q eventQueue) less(i, j int) bool {
	if q[i].atNs != q[j].atNs {
		return q[i].atNs < q[j].atNs
	}
	return q[i].seq < q[j].seq
}

// The queue is a 4-ary heap: half the depth of a binary heap, and the
// four children of a node share cache lines. Heap shape never affects
// output — the comparator is a total order, so the pop sequence is the
// sorted sequence whatever the arity.

//spotverse:hotpath
func (q eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//spotverse:hotpath
func (q eventQueue) siftDown(i int) {
	n := len(q)
	for {
		least := i
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q.less(c, least) {
				least = c
			}
		}
		if least == i {
			return
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
}

func (e *Engine) heapPush(ent heapEntry) {
	e.queue = append(e.queue, ent)
	e.queue.siftUp(len(e.queue) - 1)
}

func (e *Engine) heapPop() *Event {
	q := e.queue
	top := q[0].ev
	n := len(q) - 1
	q[0] = q[n]
	q[n] = heapEntry{}
	e.queue = q[:n]
	e.queue.siftDown(0)
	return top
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components run inside the event loop.
type Engine struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	// cancelled counts queue entries whose Cancel ran but that have not
	// been reaped yet; compaction keeps it at most half the queue.
	cancelled int
}

// compactThreshold is the minimum queue size before cancelled-event
// compaction kicks in; below it the lazy-deletion garbage is noise.
const compactThreshold = 64

// NewEngine returns an engine starting at Epoch.
func NewEngine() *Engine {
	return NewEngineAt(Epoch)
}

// NewEngineAt returns an engine whose clock starts at the given instant.
func NewEngineAt(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now reports current simulated time.
func (e *Engine) Now() time.Time { return e.now }

// Since reports the simulated duration elapsed since t.
func (e *Engine) Since(t time.Time) time.Duration { return e.now.Sub(t) }

// Pending reports the number of live events waiting in the queue.
// Cancelled-but-unreaped entries are excluded: they will never fire, so
// callers polling Pending for "is there work left" see only real work.
func (e *Engine) Pending() int { return len(e.queue) - e.cancelled }

// noteCancelled books one lazily-deleted event and compacts the queue
// once cancelled entries outnumber live ones.
func (e *Engine) noteCancelled() {
	e.cancelled++
	if len(e.queue) >= compactThreshold && e.cancelled*2 > len(e.queue) {
		e.compact()
	}
}

// compact removes every cancelled entry from the queue in one pass and
// re-establishes the heap invariant. Pop order is unchanged: the heap
// comparator is a total order over (time, seq), so any valid heap of the
// same live events pops identically.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ent := range e.queue {
		if ent.ev.cancel {
			continue
		}
		live = append(live, ent)
	}
	// Zero the tail so dropped events are collectable.
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = heapEntry{}
	}
	e.queue = live
	// (len-2)/4 is the last node with a child in a 4-ary heap; the
	// leaves below it are already valid sub-heaps.
	for i := (len(e.queue) - 2) / 4; i >= 0; i-- {
		e.queue.siftDown(i)
	}
	e.cancelled = 0
}

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleAt registers fn to run at the absolute simulated instant t.
// Scheduling in the past is an error because it would reorder history.
func (e *Engine) ScheduleAt(t time.Time, name string, fn func()) (*Event, error) {
	if t.Before(e.now) {
		return nil, fmt.Errorf("simclock: schedule %q at %s before now %s", name, t, e.now)
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, name: name, eng: e}
	e.heapPush(heapEntry{atNs: t.UnixNano(), seq: e.seq, ev: ev})
	return ev, nil
}

// ScheduleAfter registers fn to run d after the current instant. Negative
// delays are clamped to zero.
func (e *Engine) ScheduleAfter(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev, err := e.ScheduleAt(e.now.Add(d), name, fn)
	if err != nil {
		// Unreachable: now+nonNegative is never before now.
		panic(err)
	}
	return ev
}

// Ticker repeatedly schedules fn every interval until the returned stop
// function is called. The first firing happens one interval from now.
type Ticker struct {
	stop bool
}

// Stop prevents future firings of the ticker.
func (t *Ticker) Stop() { t.stop = true }

// Every schedules fn to run every interval. fn receives the firing time.
func (e *Engine) Every(interval time.Duration, name string, fn func(now time.Time)) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stop {
			return
		}
		fn(e.now)
		if t.stop {
			return
		}
		e.ScheduleAfter(interval, name, tick)
	}
	e.ScheduleAfter(interval, name, tick)
	return t
}

// Step executes the next pending event, advancing the clock to its due
// time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := e.heapPop()
		if next.cancel {
			e.cancelled--
			continue
		}
		next.done = true
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the horizon passes.
// A zero horizon means run to drain. Run returns ErrStopped if Stop was
// called from inside an event.
func (e *Engine) Run(horizon time.Time) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0].ev
		if next.cancel {
			e.heapPop()
			e.cancelled--
			continue
		}
		if !horizon.IsZero() && next.at.After(horizon) {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	if e.stopped {
		return ErrStopped
	}
	if !horizon.IsZero() && e.now.Before(horizon) {
		e.now = horizon
	}
	return nil
}

// RunFor advances the clock by d, executing all events due in the window.
func (e *Engine) RunFor(d time.Duration) error {
	return e.Run(e.now.Add(d))
}

// RunUntil executes events until pred returns true (checked after every
// event) or the queue drains. It reports whether pred was satisfied.
func (e *Engine) RunUntil(pred func() bool) bool {
	if pred() {
		return true
	}
	for e.Step() {
		if pred() {
			return true
		}
	}
	return false
}

// Stop aborts a Run in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }
