package simclock

import (
	"testing"

	"spotverse/internal/raceflag"
)

// TestHeapOpsAllocFree is the runtime half of the //spotverse:hotpath
// gate on the 4-ary heap comparator and sifts: at fleet scale these run
// millions of times per simulated day, and a single allocation per sift
// would dominate the event loop.
func TestHeapOpsAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	q := make(eventQueue, 0, 64)
	for i := 63; i >= 0; i-- {
		q = append(q, heapEntry{atNs: int64(i), seq: uint64(i)})
	}
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = q.less(0, 1)
		q[len(q)-1] = heapEntry{atNs: 1 << 40, seq: 1 << 20}
		q.siftUp(len(q) - 1)
		q.siftDown(0)
	})
	if allocs != 0 {
		t.Fatalf("heap ops allocated %v per run, want 0", allocs)
	}
}
