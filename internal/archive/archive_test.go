package archive

import (
	"errors"
	"strings"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/report"
	"spotverse/internal/simclock"
)

// buildAdvisorCSV renders a small advisor archive straight from the
// market model, matching cmd/marketgen's format.
func buildAdvisorCSV(t *testing.T, days int) string {
	t.Helper()
	mkt := market.New(catalog.Default(), 42, simclock.Epoch)
	var rows [][]string
	for d := 0; d < days; d++ {
		at := simclock.Epoch.Add(time.Duration(d) * 24 * time.Hour)
		snap, err := mkt.AdvisorSnapshot(catalog.M5XLarge, at)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range snap {
			rows = append(rows, []string{
				string(e.Type), string(e.Region), at.Format("2006-01-02"),
				report.F(e.SpotPriceUSD, 5), report.F(e.OnDemandUSD, 5),
				report.F(e.InterruptionFrequency, 4),
				report.F(float64(e.StabilityScore), 0), report.F(float64(e.PlacementScore), 0),
			})
		}
	}
	var sb strings.Builder
	if err := report.CSV(&sb, []string{
		"type", "region", "date", "spot_usd", "ondemand_usd",
		"interruption_frequency", "stability_score", "placement_score",
	}, rows); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestLoadAdvisorRoundTrip(t *testing.T) {
	csvData := buildAdvisorCSV(t, 5)
	records, err := LoadAdvisor(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 5 * len(catalog.Default().OfferedRegions(catalog.M5XLarge))
	if len(records) != wantRows {
		t.Fatalf("records = %d, want %d", len(records), wantRows)
	}
	for _, r := range records {
		if r.SpotUSD <= 0 || r.SpotUSD >= r.OnDemandUSD {
			t.Fatalf("bad prices: %+v", r)
		}
		if r.StabilityScore < 1 || r.StabilityScore > 3 {
			t.Fatalf("bad stability: %+v", r)
		}
	}
}

func TestCheapestRegionOnMatchesTable1(t *testing.T) {
	records, err := LoadAdvisor(strings.NewReader(buildAdvisorCSV(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	region, price, err := CheapestRegionOn(records, catalog.M5XLarge, "2024-03-04")
	if err != nil {
		t.Fatal(err)
	}
	if region != "ca-central-1" {
		t.Fatalf("cheapest = %s (%v), want ca-central-1", region, price)
	}
	if _, _, err := CheapestRegionOn(records, catalog.M5XLarge, "1999-01-01"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestStabilityHistoryOrdered(t *testing.T) {
	records, err := LoadAdvisor(strings.NewReader(buildAdvisorCSV(t, 10)))
	if err != nil {
		t.Fatal(err)
	}
	hist := StabilityHistory(records, catalog.M5XLarge, "eu-north-1")
	if len(hist) != 10 {
		t.Fatalf("history = %d points", len(hist))
	}
	for _, s := range hist {
		if s != 3 {
			t.Fatalf("eu-north-1 stability = %v, want all 3", hist)
		}
	}
}

func TestRegionsAtScoreMatchesTable3(t *testing.T) {
	records, err := LoadAdvisor(strings.NewReader(buildAdvisorCSV(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	got := RegionsAtScore(records, catalog.M5XLarge, "2024-03-04", 6)
	want := map[catalog.Region]bool{"eu-north-1": true, "ap-northeast-3": true, "us-west-1": true, "eu-west-1": true}
	if len(got) != 4 {
		t.Fatalf("regions = %v", got)
	}
	for _, r := range got {
		if !want[r] {
			t.Fatalf("unexpected region %s in %v", r, got)
		}
	}
	// Price ascending.
	for i := 1; i < len(got); i++ {
		pi := priceOf(records, got[i-1])
		pj := priceOf(records, got[i])
		if pi > pj {
			t.Fatalf("not price-sorted: %v", got)
		}
	}
}

func priceOf(records []AdvisorRecord, region catalog.Region) float64 {
	for _, r := range records {
		if r.Region == region {
			return r.SpotUSD
		}
	}
	return 0
}

func TestLoadPrices(t *testing.T) {
	csvData := "type,az,date,usd_per_hour\nm5.xlarge,ca-central-1a,2024-03-04,0.05280\n"
	records, err := LoadPrices(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].USDPerHour != 0.0528 || records[0].AZ != "ca-central-1a" {
		t.Fatalf("records = %+v", records)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := LoadPrices(strings.NewReader("a,b,c,d\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := LoadAdvisor(strings.NewReader("oops\n")); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := LoadPrices(strings.NewReader("type,az,date,usd_per_hour\n")); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadNumbersRejected(t *testing.T) {
	bad := "type,az,date,usd_per_hour\nm5.xlarge,x,2024-03-04,not-a-number\n"
	if _, err := LoadPrices(strings.NewReader(bad)); err == nil {
		t.Fatal("bad number accepted")
	}
}
