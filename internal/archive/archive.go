// Package archive reads the CSV market datasets emitted by cmd/marketgen
// back into queryable form — a SpotLake-style archive service (the paper
// builds on SpotLake's dataset for its metric analysis). It lets offline
// tooling answer the questions the Optimizer answers online: cheapest
// regions, stability histories, score trajectories.
package archive

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"spotverse/internal/catalog"
)

// Errors returned by the loaders.
var (
	ErrBadHeader = errors.New("archive: unexpected CSV header")
	ErrEmpty     = errors.New("archive: no records")
)

// PriceRecord is one row of spot_prices.csv.
type PriceRecord struct {
	Type       catalog.InstanceType
	AZ         catalog.AZ
	Date       string
	USDPerHour float64
}

// AdvisorRecord is one row of advisor.csv.
type AdvisorRecord struct {
	Type                  catalog.InstanceType
	Region                catalog.Region
	Date                  string
	SpotUSD               float64
	OnDemandUSD           float64
	InterruptionFrequency float64
	StabilityScore        int
	PlacementScore        int
}

// CombinedScore is the Optimizer's quantity.
func (r AdvisorRecord) CombinedScore() int { return r.StabilityScore + r.PlacementScore }

// Archive is a loaded dataset.
type Archive struct {
	Prices  []PriceRecord
	Advisor []AdvisorRecord
}

var priceHeader = []string{"type", "az", "date", "usd_per_hour"}

// LoadPrices parses a spot_prices.csv stream.
func LoadPrices(r io.Reader) ([]PriceRecord, error) {
	rows, err := readCSV(r, priceHeader)
	if err != nil {
		return nil, err
	}
	out := make([]PriceRecord, 0, len(rows))
	for i, row := range rows {
		usd, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("archive: prices row %d: %w", i+2, err)
		}
		out = append(out, PriceRecord{
			Type:       catalog.InstanceType(row[0]),
			AZ:         catalog.AZ(row[1]),
			Date:       row[2],
			USDPerHour: usd,
		})
	}
	if len(out) == 0 {
		return nil, ErrEmpty
	}
	return out, nil
}

var advisorHeader = []string{
	"type", "region", "date", "spot_usd", "ondemand_usd",
	"interruption_frequency", "stability_score", "placement_score",
}

// LoadAdvisor parses an advisor.csv stream.
func LoadAdvisor(r io.Reader) ([]AdvisorRecord, error) {
	rows, err := readCSV(r, advisorHeader)
	if err != nil {
		return nil, err
	}
	out := make([]AdvisorRecord, 0, len(rows))
	for i, row := range rows {
		rec := AdvisorRecord{
			Type:   catalog.InstanceType(row[0]),
			Region: catalog.Region(row[1]),
			Date:   row[2],
		}
		if rec.SpotUSD, err = strconv.ParseFloat(row[3], 64); err != nil {
			return nil, fmt.Errorf("archive: advisor row %d spot: %w", i+2, err)
		}
		if rec.OnDemandUSD, err = strconv.ParseFloat(row[4], 64); err != nil {
			return nil, fmt.Errorf("archive: advisor row %d ondemand: %w", i+2, err)
		}
		if rec.InterruptionFrequency, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("archive: advisor row %d frequency: %w", i+2, err)
		}
		if rec.StabilityScore, err = strconv.Atoi(row[6]); err != nil {
			return nil, fmt.Errorf("archive: advisor row %d stability: %w", i+2, err)
		}
		if rec.PlacementScore, err = strconv.Atoi(row[7]); err != nil {
			return nil, fmt.Errorf("archive: advisor row %d sps: %w", i+2, err)
		}
		out = append(out, rec)
	}
	if len(out) == 0 {
		return nil, ErrEmpty
	}
	return out, nil
}

func readCSV(r io.Reader, wantHeader []string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(wantHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("archive: header: %w", err)
	}
	for i, h := range wantHeader {
		if header[i] != h {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrBadHeader, i, header[i], h)
		}
	}
	var rows [][]string
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("archive: read: %w", err)
		}
		rows = append(rows, row)
	}
}

// CheapestRegionOn returns the region with the lowest spot price for the
// type on the given date.
func CheapestRegionOn(records []AdvisorRecord, t catalog.InstanceType, date string) (catalog.Region, float64, error) {
	var (
		best  catalog.Region
		price float64
		found bool
	)
	for _, r := range records {
		if r.Type != t || r.Date != date {
			continue
		}
		if !found || r.SpotUSD < price {
			best, price, found = r.Region, r.SpotUSD, true
		}
	}
	if !found {
		return "", 0, fmt.Errorf("%w: %s on %s", ErrEmpty, t, date)
	}
	return best, price, nil
}

// StabilityHistory returns the date-ordered stability scores of (t, r).
func StabilityHistory(records []AdvisorRecord, t catalog.InstanceType, region catalog.Region) []int {
	type dated struct {
		date  string
		score int
	}
	var ds []dated
	for _, r := range records {
		if r.Type == t && r.Region == region {
			ds = append(ds, dated{r.Date, r.StabilityScore})
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].date < ds[j].date })
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = d.score
	}
	return out
}

// RegionsAtScore returns the regions whose combined score equals score on
// the date, sorted by spot price ascending — the offline Table 3 query.
func RegionsAtScore(records []AdvisorRecord, t catalog.InstanceType, date string, score int) []catalog.Region {
	type cand struct {
		region catalog.Region
		price  float64
	}
	var cands []cand
	for _, r := range records {
		if r.Type == t && r.Date == date && r.CombinedScore() == score {
			cands = append(cands, cand{r.Region, r.SpotUSD})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].price != cands[j].price {
			return cands[i].price < cands[j].price
		}
		return cands[i].region < cands[j].region
	})
	out := make([]catalog.Region, len(cands))
	for i, c := range cands {
		out[i] = c.region
	}
	return out
}
