// Fixture: atomicmix flags plain access of variables that are accessed
// with sync/atomic elsewhere, and by-value copies of atomic-containing
// structs.
package a

import "sync/atomic"

type counter struct {
	hits  int64 // accessed via atomic.AddInt64 below
	cold  int64 // never touched atomically
	ready atomic.Bool
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1) // sanctioned
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits) // sanctioned
}

func (c *counter) raceyRead() int64 {
	return c.hits // want `plain access of hits, which is accessed with sync/atomic`
}

func (c *counter) raceyWrite() {
	c.hits = 0 // want `plain access of hits`
}

func (c *counter) fine() int64 {
	return c.cold // never atomic: fine
}

func construct() *counter {
	return &counter{hits: 0} // composite-literal key is construction: fine
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobal() int64 {
	return global // want `plain access of global`
}

type published struct {
	table atomic.Pointer[counter]
	name  string
}

func copyRecv(p published) string { // want `parameter of copyRecv copies published contains field table is atomic\.Pointer`
	return p.name
}

func copyAssign(p *published) {
	q := *p // want `assignment copies published contains field table is atomic\.Pointer`
	_ = q
}

func copyRange(ps []published) int {
	n := 0
	for _, p := range ps { // want `range variable copies published contains field table is atomic\.Pointer per iteration`
		n += len(p.name)
	}
	return n
}

func pointerUse(ps []*published) int { // pointers share, not copy: fine
	n := 0
	for _, p := range ps {
		n += len(p.name)
	}
	return n
}

func freshConstruct() published {
	return published{name: "x"} // construction, not a copy: fine
}

func suppressedRead(c *counter) int64 {
	//spotverse:allow atomicmix fixture proves atomicmix suppression
	return c.hits
}

// rawField is copied even though the atomic access is raw, not typed.
type rawHolder struct {
	n int64
}

func bumpRaw(h *rawHolder) {
	atomic.AddInt64(&h.n, 1)
}

func copyRaw(h *rawHolder) rawHolder {
	v := *h // want `assignment copies rawHolder contains field n, which is accessed with sync/atomic`
	return v
}
