// Fixture: a package outside the experiment/market/cloud subtrees is
// not in seedflow's scope — the same ad-hoc RNG wiring produces no
// findings here.
package outofscope

import "math/rand"

func consume(r *rand.Rand) int64 { return r.Int63() }

func adHoc(seed int64) int64 {
	return consume(rand.New(rand.NewSource(seed)))
}
