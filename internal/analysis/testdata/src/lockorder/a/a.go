// Fixture: lockorder flags lock classes acquired in both orders,
// including through interprocedural call chains, and stays quiet on a
// consistent global order.
package a

import "sync"

type account struct {
	mu      sync.Mutex
	balance int
}

type ledger struct {
	mu       sync.Mutex
	accounts []*account
}

// total takes ledger.mu before account.mu; audit takes them reversed.
// Both edges of the 2-cycle are reported, each at its acquisition site;
// the edge in total is suppressed here to prove a directive silences
// exactly one site while the reversed site still fires.
func (l *ledger) total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, a := range l.accounts {
		//spotverse:allow lockorder fixture proves lockorder suppression
		a.mu.Lock()
		n += a.balance
		a.mu.Unlock()
	}
	return n
}

func (l *ledger) audit(a *account) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock() // want `lockorder/a\.ledger\.mu acquired while holding lockorder/a\.account\.mu, but elsewhere the order is reversed`
	defer l.mu.Unlock()
	return a.balance
}

type registry struct {
	mu    sync.Mutex
	names map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

// Interprocedural cycle: refresh holds registry.mu and calls rebuild,
// which takes index.mu; lookup holds index.mu and calls size, which
// takes registry.mu.
func (r *registry) refresh(ix *index) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ix.rebuild() // want `lockorder/a\.index\.mu acquired while holding lockorder/a\.registry\.mu`
}

func (ix *index) rebuild() {
	ix.mu.Lock()
	ix.keys = ix.keys[:0]
	ix.mu.Unlock()
}

func (ix *index) lookup(r *registry) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return r.size() // want `lockorder/a\.registry\.mu acquired while holding lockorder/a\.index\.mu`
}

func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.names)
}

// Local mutexes have no stable class and are skipped.
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// Releasing before taking the next lock breaks the chain: no edge.
type stage struct {
	mu sync.Mutex
	n  int
}

type sink struct {
	mu sync.Mutex
	n  int
}

func handoff(s *stage, k *sink) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	k.mu.Lock()
	k.n = n
	k.mu.Unlock()
}

func handback(k *sink, s *stage) {
	k.mu.Lock()
	n := k.n
	k.mu.Unlock()
	s.mu.Lock()
	s.n = n
	s.mu.Unlock()
}
