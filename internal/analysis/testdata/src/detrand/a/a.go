// Fixture: detrand findings and suppressions in a non-allowlisted
// package.
package a

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func globalStream() int {
	rand.Seed(42)      // want `global math/rand\.Seed`
	x := rand.Intn(10) // want `global math/rand\.Intn`
	_ = rand.Float64() // want `global math/rand\.Float64`
	return x
}

func freshGenerators(seed int64) {
	_ = rand.New(rand.NewSource(seed)) // want `rand\.New with a non-constant seed`
	_ = rand.NewSource(seed)           // want `rand\.NewSource with a non-constant seed`
	_ = rand.New(rand.NewSource(42))   // constant seed: pinned at build time, allowed
}

const fixedSeed = 7

func constSeedIdent() *rand.Rand {
	return rand.New(rand.NewSource(fixedSeed)) // constant-typed ident: allowed
}

func suppressed() time.Time {
	//spotverse:allow detrand fixture proves the directive-above form suppresses
	t := time.Now()
	u := time.Now() //spotverse:allow detrand fixture proves the trailing form suppresses
	_ = u
	return t
}

func typeRefsAllowed(r *rand.Rand, s rand.Source) (int64, bool) {
	// Referencing math/rand types and using an injected generator is
	// fine; only the package-global stream and fresh seeds are banned.
	return r.Int63(), s == nil
}

func badDirectives() {
	//spotverse:allow detrand // want `needs a reason`
	_ = time.Now() // want `time\.Now reads the wall clock`
	//spotverse:allow nosuchanalyzer because reasons // want `unknown analyzer`
	_ = time.Now() // want `time\.Now reads the wall clock`
}
