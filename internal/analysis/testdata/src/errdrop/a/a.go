// Fixture: errdrop guards the durability layer — the real
// internal/durable package and any method on a Journal / Checkpoint /
// Manifest-named receiver.
package a

import (
	"fmt"

	"spotverse/internal/durable"
)

type WalJournal struct{ entries int }

func (j *WalJournal) Commit() error            { j.entries++; return nil }
func (j *WalJournal) Replay() (int, error)     { return j.entries, nil }
func (j *WalJournal) Size() int                { return j.entries }
func checkpointWrite(m durable.Manifest) error { _, _, err := durable.Decode(m.Encode()); return err }

func dropsBareCall(j *WalJournal) {
	j.Commit() // want `result of durable call discarded`
}

func dropsWithBlank(j *WalJournal) {
	_ = j.Commit() // want `error from durable call assigned to _`
}

func dropsSecondResult(j *WalJournal) int {
	n, _ := j.Replay() // want `error from durable call assigned to _`
	return n
}

func dropsInDefer(j *WalJournal) {
	defer j.Commit() // want `result of durable call discarded by defer`
}

func dropsRealDurable(st *durable.Store, m durable.Manifest) {
	st.Put("key", m, "us-east-1") // want `result of durable call discarded`
}

func handled(j *WalJournal, st *durable.Store, m durable.Manifest) error {
	if err := j.Commit(); err != nil {
		return err
	}
	if err := st.Put("key", m, "us-east-1"); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	return checkpointWrite(m)
}

func nonErrorMethodOK(j *WalJournal) {
	j.Size() // no error result: not a finding
	_ = j.Size()
}

func suppressedDrop(j *WalJournal) {
	//spotverse:allow errdrop fixture proves errdrop suppression
	j.Commit()
}
