// Fixture: hotpath enforces zero-allocation bodies for annotated
// functions, traverses module callees, prunes cold error branches, and
// validates the annotation grammar.
package a

import (
	"errors"
	"fmt"
)

type ring struct {
	buf  []int
	head int
}

// Clean warm path: index math, field access, append (amortized).
//
//spotverse:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
	r.head++
}

//spotverse:hotpath
func closureHot(n int) func() int {
	f := func() int { return n } // want `function literal allocates a closure`
	return f
}

//spotverse:hotpath
func makesThings(n int) []int {
	return make([]int, n) // want `make allocates`
}

//spotverse:hotpath
func newsThings() *ring {
	return new(ring) // want `new allocates`
}

//spotverse:hotpath
func literals(n int) []int {
	m := map[string]int{} // want `map literal allocates`
	_ = m
	p := &ring{} // want `&composite literal allocates`
	_ = p
	return []int{n} // want `slice literal allocates`
}

//spotverse:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//spotverse:hotpath
func constConcat() string {
	return "a" + "b" // constant-folded: fine
}

//spotverse:hotpath
func formats(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates`
}

//spotverse:hotpath
func converts(s string) []byte {
	return []byte(s) // want `string to byte/rune slice conversion allocates`
}

//spotverse:hotpath
func boxes(n int) {
	sink(n) // want `passing int to an interface parameter boxes the value`
}

//spotverse:hotpath
func pointerNoBox(r *ring) {
	sink(r) // pointers are iface-word sized: fine
}

func sink(v any) { _ = v }

// Cold-branch pruning: error paths may allocate.
//
//spotverse:hotpath
func coldError(v int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("negative input %d", v) // error path: fine
	}
	return v * 2, nil
}

// Callee traversal: allocation two calls down surfaces at the call site
// in the annotated function.
//
//spotverse:hotpath
func viaCallee(n int) int {
	return depth1(n) // want `call to depth1 allocates on the hot path: make allocates in depth2`
}

func depth1(n int) int { return depth2(n) }

func depth2(n int) int {
	s := make([]int, n)
	return len(s)
}

// Beyond hotpathDepth the traversal trusts the callee.
//
//spotverse:hotpath
func beyondDepth(n int) int {
	return hop1(n) // fine: the allocation is 4 calls down
}

func hop1(n int) int { return hop2(n) }
func hop2(n int) int { return hop3(n) }
func hop3(n int) int {
	s := make([]int, n)
	return len(s)
}

// An annotated callee is trusted: it is checked on its own.
//
//spotverse:hotpath
func trustsHotCallee(r *ring, v int) {
	r.push(v) // fine
}

// Cold branches prune inside callees too: a callee whose allocations
// all sit on error paths is clean.
//
//spotverse:hotpath
func coldCalleePath(v int) int {
	n, err := validate(v)
	if err != nil {
		return 0
	}
	return n
}

func validate(v int) (int, error) {
	if v < 0 {
		return 0, errors.New("negative") // error path in callee: fine
	}
	return v, nil
}

// Suppression: the closure is justified at its call site.
//
//spotverse:hotpath
func suppressedAlloc(n int) int {
	//spotverse:allow hotpath fixture proves hotpath suppression
	return depth1(n)
}

// Annotation grammar.

//spotverse:hotpath with arguments // want `spotverse:hotpath takes no arguments`
func badArgs() {}

var _ = 0 //spotverse:hotpath // want `spotverse:hotpath must be in the doc comment of a function declaration`

//spotverse:hotpath
func goStmt() {
	go func() {}() // want `go statement allocates a goroutine on the hot path`
}
