// Fixture: packages under spotverse/cmd/ are allowlisted for detrand —
// CLIs legitimately measure wall-clock time. No findings expected.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
