// Fixture: seedflow checks RNG arguments at call sites in the
// experiment/market/cloud subtrees. The fixture's import path places it
// inside spotverse/internal/experiment, so the analyzer is in scope.
package seedfix

import (
	"math/rand"

	"spotverse/internal/simclock"
)

type market struct{ rng *simclock.RNG }

func newMarket(rng *simclock.RNG) *market { return &market{rng: rng} }

func consume(r *rand.Rand) int64 { return r.Int63() }

func wiredFromStream(seed int64) *market {
	return newMarket(simclock.Stream(seed, "market")) // direct simclock call: derived
}

func wiredFromLocal(seed int64) *market {
	rng := simclock.Stream(seed, "market")
	return newMarket(rng) // local assigned from simclock: derived
}

func wiredFromHelper(seed int64) *market {
	return newMarket(namedStream(seed)) // same-package helper returning derived: ok
}

func namedStream(seed int64) *simclock.RNG {
	return simclock.Stream(seed, "helper")
}

func wiredFromParam(rng *simclock.RNG) *market {
	return newMarket(rng) // parameters are trusted; the caller is checked
}

type env struct{ rng *simclock.RNG }

func wiredFromField(e *env) *market {
	return newMarket(e.rng) // field reads are trusted
}

func adHocGenerator(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return consume(r) // want `RNG argument does not derive from the simclock seed hierarchy`
}

func inlineAdHoc() int64 {
	return consume(rand.New(rand.NewSource(99))) // want `RNG argument does not derive from the simclock seed hierarchy`
}

func suppressedAdHoc() int64 {
	//spotverse:allow seedflow fixture proves seedflow suppression
	return consume(rand.New(rand.NewSource(3)))
}
