// Fixture: goleak flags time.After in loops, goroutines with exit-free
// infinite loops, and unbuffered sends whose receiver may walk away.
package a

import (
	"context"
	"time"
)

func timerPerIteration(ch chan int) {
	for {
		select {
		case <-ch:
		case <-time.After(time.Second): // want `time\.After in a loop arms a new timer per iteration`
			return
		}
	}
}

func timerReused(ch chan int) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ch:
		case <-t.C: // fine: one timer, reused
			return
		}
	}
}

func afterOutsideLoop() {
	<-time.After(time.Second) // fine: single shot
}

func leakyWorker(jobs chan int) {
	go func() {
		for { // want `goroutine loop has no exit path`
			select {
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// breakLeavesSelectNotLoop is the classic bug: the plain break exits the
// select, not the for, so the goroutine never terminates.
func breakLeavesSelectNotLoop(done chan struct{}) {
	go func() {
		for { // want `goroutine loop has no exit path`
			select {
			case <-done:
				break
			default:
			}
		}
	}()
}

func cancellableWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return // fine: cancellation path
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func labeledBreakWorker(done chan struct{}) {
	go func() {
	loop:
		for { // fine: labeled break leaves the loop
			select {
			case <-done:
				break loop
			default:
			}
		}
	}()
}

func rangeWorker(jobs chan int) {
	go func() {
		for j := range jobs { // fine: terminates when jobs closes
			_ = j
		}
	}()
}

func namedLoop() {
	for { // body of spin; reported at the go statement below
	}
}

func launchNamed() {
	go namedLoop() // want `goroutine runs namedLoop, whose infinite loop has no exit path`
}

func abandonedResult() error {
	c := make(chan error)
	go func() {
		c <- work() // want `goroutine sends on unbuffered channel c, but the receive sits in a multi-way select`
	}()
	select {
	case err := <-c:
		return err
	case <-time.After(time.Second):
		return nil // receiver gave up; sender now blocks forever
	}
}

func bufferedResult() error {
	c := make(chan error, 1)
	go func() {
		c <- work() // fine: buffered, the send never blocks
	}()
	select {
	case err := <-c:
		return err
	case <-time.After(time.Second):
		return nil
	}
}

func guaranteedReceive() error {
	c := make(chan error)
	go func() {
		c <- work() // fine: the receive below always runs
	}()
	return <-c
}

func neverReceived() {
	c := make(chan int)
	go func() {
		c <- 1 // want `goroutine sends on unbuffered channel c with no receive in the launching function`
	}()
}

func handedOff() {
	c := make(chan int)
	go func() {
		c <- 1 // fine: the channel escapes to consume, which owns the receive
	}()
	consume(c)
}

func work() error   { return nil }
func consume(<-chan int) {}

func suppressedLeak() {
	go func() {
		//spotverse:allow goleak fixture proves goleak suppression
		for {
		}
	}()
}
