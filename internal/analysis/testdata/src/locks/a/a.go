// Fixture: locks flags by-value receivers and parameters of
// lock-holding structs, including transitive containment.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	counters map[string]*counter
	c        counter // transitively holds the lock
}

type embedder struct {
	sync.RWMutex
	name string
}

func (c counter) Get() int { // want `receiver of Get passes lock by value`
	return c.n
}

func (c *counter) Inc() { // pointer receiver: fine
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func snapshot(r registry) int { // want `parameter of snapshot passes lock by value`
	return len(r.counters)
}

func rename(e embedder, name string) { // want `parameter of rename passes lock by value`
	e.name = name
}

func wait(wg sync.WaitGroup) { // want `parameter of wait passes lock by value`
	wg.Wait()
}

func byPointer(r *registry, wg *sync.WaitGroup) { // pointers share, not copy: fine
	_ = r
	wg.Wait()
}

func plainStruct(s struct{ a, b int }) int { // no lock: fine
	return s.a + s.b
}

//spotverse:allow locks fixture proves locks suppression
func suppressedCopy(c counter) int {
	return c.n
}
