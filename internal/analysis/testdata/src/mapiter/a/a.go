// Fixture: mapiter findings and the collect-and-sort exemption.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func printsInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
}

func writesInMapOrder(w io.Writer, m map[string]int) {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `WriteString inside map iteration`
	}
	_, _ = io.WriteString(w, sb.String())
}

type history struct{ names []string }

func (h *history) Add(name string) { h.names = append(h.names, name) }

func accumulatesInMapOrder(h *history, m map[string]int) {
	for k := range m {
		h.Add(k) // want `Add inside map iteration`
	}
}

func firstMatchWins(m map[string]string, want string) string {
	for k, v := range m {
		if v == want {
			return k // want `returning a map iteration variable`
		}
	}
	return ""
}

func collectedButNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys collects map entries but is used without sort`
	}
	return keys
}

func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectAndSortReverse(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	return keys
}

func pureAggregation(m map[string]int) int {
	// Order-independent folds over a map are fine.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapToMapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func suppressedSink(m map[string]int) {
	for k := range m {
		//spotverse:allow mapiter fixture proves suppression of a sink finding
		fmt.Println(k)
	}
}
