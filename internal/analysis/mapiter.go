package analysis

import (
	"go/ast"
	"go/types"
)

// MapIter flags `range` over a map when the loop body leaks iteration
// order into something observable. Go randomizes map order per run, so
// any of these turns into flaky output or flaky control flow:
//
//   - writing inside the body to an io.Writer or builder (Write*,
//     fmt.Fprint*), or feeding fmt print/format functions
//   - accumulating into an ordered sink (method names like Add,
//     MustAddRow) — e.g. appending datasets to a history in map order
//   - returning a value that mentions the iteration variables (the
//     "first match wins" pattern — which match wins depends on the run)
//   - collecting keys/values into a slice that is used after the loop
//     without an intervening sort.* / slices.Sort* call
//
// The canonical fix — collect keys, sort, then iterate the sorted
// slice — is recognized and exempt.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration whose order leaks into output, returned values, or unsorted collected slices; " +
		"collect-and-sort before rendering or selecting",
	Run: runMapIter,
}

// orderedSinkMethods are method names that accumulate into an ordered
// structure, where call order is observable.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Add": true, "MustAdd": true, "AddRow": true, "MustAddRow": true,
}

// fmtPrintFuncs are the fmt package functions whose output depends on
// call order (Errorf excluded: constructing an error value inside a loop
// is not itself ordered output; returning it is caught by the
// return-of-range-variable rule).
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypeOf(rs.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, body, rs)
				return true
			})
		})
	}
	return nil
}

func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)

	// Slices the body appends to, and whether each is sorted after the
	// loop. A sorted collection exempts its own appends; the other sink
	// rules still apply to the rest of the body.
	appended := map[types.Object]*ast.Ident{}
	inspectShallow(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(lhs)
		if obj == nil {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isAppendTo(pass, call, obj) {
			appended[obj] = lhs
		}
		return true
	})

	inspectShallow(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pkgCall(pass, n, "fmt"); ok && fmtPrintFuncs[name] {
				pass.Reportf(n.Pos(), "fmt.%s inside map iteration emits in map order; collect and sort keys first", name)
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderedSinkMethods[sel.Sel.Name] && isMethodCall(pass, sel) {
				pass.Reportf(n.Pos(), "%s inside map iteration accumulates in map order; collect and sort keys first", sel.Sel.Name)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObject(pass, res, keyObj) || usesObject(pass, res, valObj) {
					pass.Reportf(n.Pos(), "returning a map iteration variable selects an arbitrary entry; iterate sorted keys")
					return true
				}
			}
		}
		return true
	})

	for obj, id := range appended {
		if sortedAfter(pass, funcBody, rs, obj) {
			continue
		}
		if usedAfter(pass, funcBody, rs, obj) {
			pass.Reportf(id.Pos(), "%s collects map entries but is used without sort.* after the loop", obj.Name())
		}
	}
}

// rangeVarObj resolves a range clause variable to its object, skipping
// the blank identifier.
func rangeVarObj(pass *Pass, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

// isMethodCall reports whether sel selects a method (not a package
// function or a field of function type on a package name).
func isMethodCall(pass *Pass, sel *ast.SelectorExpr) bool {
	if id, ok := sel.X.(*ast.Ident); ok && pkgPathOf(pass, id) != "" {
		return false
	}
	return true
}

// sortedAfter reports whether obj appears, after the loop, inside a call
// into package sort or slices (sort.Strings(keys),
// sort.Sort(sort.Reverse(sort.IntSlice(keys))), slices.Sort(keys), …).
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	afterLoop(funcBody, rs, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path := calleePkgPath(pass, call)
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// usedAfter reports whether obj is referenced after the loop at all.
func usedAfter(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	afterLoop(funcBody, rs, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// afterLoop walks the nodes of the enclosing function positioned after
// the range statement ends.
func afterLoop(funcBody *ast.BlockStmt, rs *ast.RangeStmt, fn func(ast.Node) bool) {
	end := rs.End()
	ast.Inspect(funcBody, func(n ast.Node) bool {
		switch {
		case n == nil:
			return false
		case n.End() <= end:
			return false // entirely before or inside the loop
		case n.Pos() > end:
			return fn(n) // entirely after the loop
		default:
			return true // spans the loop (e.g. the function body): descend
		}
	})
}
