// Package analysis is the determinism lint suite behind spotverse-lint.
//
// Every reproducibility guarantee this repository makes — byte-identical
// `-exp all` output at any -parallel level, exactly-once journal replay,
// reproducible chaos sweeps — rests on three conventions: all randomness
// flows through internal/simclock, all time comes from the simulated
// clock, and no output path depends on Go's randomized map iteration
// order. This package turns those conventions into machine-checked
// invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, Reportf) so the analyzers port mechanically if that
// module ever becomes available here. The build environment for this
// repository is fully offline — no module proxy — so the framework is a
// self-contained reimplementation on the standard library: packages are
// loaded with `go list -export` and type-checked through
// go/importer.ForCompiler export-data lookup (see load.go).
//
// Findings can be suppressed, one line at a time, with a directive
// comment on the line above (or trailing on the same line as) the
// finding:
//
//	//spotverse:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one, or one naming an
// unknown analyzer, is itself reported as a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. It mirrors the x/tools type of the
// same name: Run inspects a fully type-checked package through its Pass
// and reports findings via pass.Reportf.
//
// Exactly one of Run and RunModule is set. Run is the per-package shape
// every determinism analyzer uses; RunModule receives every loaded
// package at once, for interprocedural analyses (lockorder's
// mutex-acquisition graph, hotpath's callee traversal) whose facts cross
// package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in output, in -only selections, and
	// in //spotverse:allow directives. It must be a single lowercase
	// word.
	Name string
	// Doc is a one-paragraph description shown by `spotverse-lint -list`.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
	// RunModule performs the check over all loaded packages at once.
	RunModule func(*ModulePass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil if unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(expr)
}

// ObjectOf returns the object an identifier denotes (definition or use),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the canonical file:line:col form consumed by editors.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// ModulePass carries every loaded package through one module-level
// analyzer. Pkgs is in the loader's deterministic (sorted import path)
// order.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags  *[]Diagnostic
	passes map[*Package]*Pass
}

// Pass returns the per-package view of pkg, sharing this module pass's
// diagnostic sink; module analyzers use it for type queries and
// position-resolved reporting.
func (mp *ModulePass) Pass(pkg *Package) *Pass {
	if p, ok := mp.passes[pkg]; ok {
		return p
	}
	p := &Pass{
		Analyzer:  mp.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		diags:     mp.diags,
	}
	mp.passes[pkg] = p
	return p
}

// Suppression is one well-formed //spotverse:allow directive, as
// recorded by RunDetailed for machine-readable lint reports. Used
// reports whether the directive actually suppressed at least one
// finding in this run — an unused directive is stale but not an error.
type Suppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

// Run applies each analyzer to each loaded package and returns the
// surviving findings: suppressed ones are dropped, malformed suppression
// directives are added (see suppress.go), and the result is sorted by
// position for stable output.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunDetailed(pkgs, analyzers)
	return diags, err
}

// RunDetailed is Run plus the suppression inventory: every well-formed
// //spotverse:allow directive seen in the analyzed files, with whether
// it fired. The -json output mode archives both.
func RunDetailed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Suppression, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Pkgs:     pkgs,
			diags:    &diags,
			passes:   map[*Package]*Pass{},
		}
		if err := a.RunModule(mp); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	// Directives may name any suite analyzer, not just the ones running
	// (e.g. a single-analyzer fixture run still accepts cross-analyzer
	// suppressions).
	known := map[string]bool{}
	for _, a := range Suite() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	var sups []Suppression
	for _, pkg := range pkgs {
		kept, used := filterSuppressed(pkg.Fset, pkg.Files, diagsInPkg(diags, pkg), known)
		out = append(out, kept...)
		sups = append(sups, used...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		if sups[i].Line != sups[j].Line {
			return sups[i].Line < sups[j].Line
		}
		return sups[i].Analyzer < sups[j].Analyzer
	})
	return out, sups, nil
}

// diagsInPkg selects the diagnostics whose position falls in one of the
// package's files.
func diagsInPkg(diags []Diagnostic, pkg *Package) []Diagnostic {
	files := make(map[string]bool, len(pkg.Files))
	for _, f := range pkg.Files {
		files[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	var out []Diagnostic
	for _, d := range diags {
		if files[d.Position.Filename] {
			out = append(out, d)
		}
	}
	return out
}
