package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids discarding errors returned by the durability layer:
// functions and methods of internal/durable, and methods on types whose
// name involves Journal, Checkpoint, or Manifest. These errors are the
// only signal that exactly-once replay or a checkpoint write went wrong;
// swallowing one converts a recoverable fault into silent data loss
// three experiments later.
//
// A finding is a bare call statement, a `go`/`defer` of such a call, or
// an assignment that puts `_` in an error position.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "errors from journal, checkpoint, and durable-manifest methods must be handled, " +
		"not assigned to _ or dropped in a bare call",
	Run: runErrDrop,
}

const durablePath = modulePath + "/internal/durable"

// durableReceiverNames mark receiver or package-level types whose
// methods guard durability even outside internal/durable.
var durableReceiverNames = []string{"Journal", "Checkpoint", "Manifest"}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				reportDroppedCall(pass, stmt.X, "result of durable call discarded")
			case *ast.GoStmt:
				reportDroppedCall(pass, stmt.Call, "result of durable call discarded by go statement")
			case *ast.DeferStmt:
				reportDroppedCall(pass, stmt.Call, "result of durable call discarded by defer")
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// reportDroppedCall flags expr when it is a durable call returning an
// error whose results are not consumed at all.
func reportDroppedCall(pass *Pass, expr ast.Expr, msg string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if isDurableCall(pass, call) && returnsError(pass, call) {
		pass.Reportf(call.Pos(), "%s; handle the error", msg)
	}
}

// checkAssign flags `_`-discarded error positions of durable calls:
// `_, _ = store.SyncReplicas(p)` or `_ = j.Commit()`.
func checkAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isDurableCall(pass, call) {
		return
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	results := sig.Results()
	for i, lhs := range as.Lhs {
		if i >= results.Len() {
			break
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(id.Pos(), "error from durable call assigned to _; handle it")
		}
	}
}

// isDurableCall reports whether the call targets the durability layer.
func isDurableCall(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == durablePath {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := namedType(recv.Type())
	if named == nil {
		return false
	}
	name := named.Obj().Name()
	for _, marker := range durableReceiverNames {
		if strings.Contains(strings.ToLower(name), strings.ToLower(marker)) {
			return true
		}
	}
	return false
}

// callSignature resolves the signature of the called function, or nil.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	if fn, ok := calleeObject(pass, call).(*types.Func); ok {
		return fn.Type().(*types.Signature)
	}
	return nil
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	sig := callSignature(pass, call)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
