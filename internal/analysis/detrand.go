package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand forbids ambient sources of nondeterminism: wall-clock reads
// and the process-global math/rand stream. Simulation code must take
// time from simclock.Engine and randomness from named simclock streams,
// or every seed-reproducible experiment guarantee dissolves.
//
// Findings:
//   - time.Now / time.Since / time.Until and the wall-clock wait family
//     (Sleep, After, AfterFunc, Tick, NewTimer, NewTicker)
//   - any global math/rand function (rand.Intn, rand.Float64, rand.Seed,
//     …) — these share one process-wide, order-sensitive stream
//   - rand.NewSource with a non-constant seed, and rand.New over it —
//     a fresh generator whose seed is not pinned by the build
//
// Allowlist: internal/simclock (the one sanctioned wrapper) and cmd/
// (CLIs legitimately measure wall-clock for profiling and UX).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and global math/rand outside internal/simclock and cmd/; " +
		"simulation code draws time from the engine and randomness from named simclock streams",
	Run: runDetRand,
}

// detrandAllowedPrefixes root the package subtrees exempt from detrand.
var detrandAllowedPrefixes = []string{
	simclockPath,
	modulePath + "/cmd",
}

// forbiddenTimeFuncs are the package-level time functions that read or
// wait on the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runDetRand(pass *Pass) error {
	for _, prefix := range detrandAllowedPrefixes {
		if hasPathPrefix(pass.Pkg.Path(), prefix) {
			return nil
		}
	}
	// NewSource calls already reported as part of an enclosing rand.New
	// finding (visited first in the walk) are not reported twice.
	claimed := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgCall(pass, call, timePath); ok && forbiddenTimeFuncs[name] {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; use the simclock.Engine", name)
				return true
			}
			name, ok := pkgCall(pass, call, mathRandPath)
			if !ok {
				return true
			}
			switch name {
			case "New":
				if len(call.Args) == 1 && !constantSource(pass, call.Args[0]) {
					pass.Reportf(call.Pos(), "rand.New with a non-constant seed; derive streams via simclock.Stream")
					if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
						claimed[inner] = true
					}
				}
			case "NewSource":
				if len(call.Args) == 1 && !isConstExpr(pass, call.Args[0]) && !claimed[call] {
					pass.Reportf(call.Pos(), "rand.NewSource with a non-constant seed; derive streams via simclock.Stream")
				}
			default:
				// Only functions share the global stream; referencing
				// types (rand.Rand, rand.Source) is fine.
				if fn, ok := pass.ObjectOf(selIdent(call)).(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(call.Pos(), "global math/rand.%s uses the process-wide stream; use a named simclock stream", name)
				}
			}
			return true
		})
	}
	return nil
}

// selIdent returns the selected identifier of a pkg.Name call, or nil.
func selIdent(call *ast.CallExpr) *ast.Ident {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel
	}
	return nil
}

// constantSource reports whether expr is rand.NewSource(<constant>): the
// one rand.New shape whose output is pinned at build time.
func constantSource(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := pkgCall(pass, call, mathRandPath)
	if !ok || name != "NewSource" || len(call.Args) != 1 {
		return false
	}
	return isConstExpr(pass, call.Args[0])
}

// isConstExpr reports whether the type checker evaluated expr to a
// constant.
func isConstExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	return ok && tv.Value != nil
}
