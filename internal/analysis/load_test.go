package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spotverse/internal/analysis"
)

// writeModule materialises a throwaway module on disk so Load exercises
// the real `go list -export` pipeline: build constraints, vendor
// resolution, and export-data compilation, all offline.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadGenerics: type parameters, constraint interfaces, generic
// methods, and instantiations all type-check through the offline
// importer, and the analyzers traverse generic bodies — a hotpath
// annotation inside a generic function still finds its allocation.
func TestLoadGenerics(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/generics\n\ngo 1.22\n",
		"g.go": `package g

type Number interface{ ~int | ~float64 }

func Sum[T Number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

type Stack[T any] struct{ items []T }

func (s *Stack[T]) Push(v T) { s.items = append(s.items, v) }

//spotverse:hotpath
func Grow[T any](n int) []T {
	return make([]T, n)
}

var _ = Sum([]int{1, 2})
`,
	})
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "example.com/generics" {
		t.Fatalf("loaded %d packages, want the generics module", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analysis.HotPath})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "make allocates") {
		t.Fatalf("hotpath over generic body: got %v, want one make-allocates finding", diags)
	}
}

// TestLoadBuildTags: `go list` applies build constraints, so a file
// gated behind an inactive tag never reaches the parser. Both gated
// files declare the same constant — loading both would be a duplicate
// declaration type error.
func TestLoadBuildTags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/tagged\n\ngo 1.22\n",
		"on.go": `//go:build !spotverse_special

package tagged

const Mode = "default"
`,
		"off.go": `//go:build spotverse_special

package tagged

const Mode = "special"
`,
	})
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if got := len(pkgs[0].Files); got != 1 {
		t.Fatalf("loaded %d files, want only the active build-tag side", got)
	}
	if obj := pkgs[0].Types.Scope().Lookup("Mode"); obj == nil {
		t.Fatal("constant from the active file is missing")
	}
}

// TestLoadVendoredExport: a dependency resolved through vendor/ is
// compiled to export data by the (cgo-free, fully offline) toolchain
// and imported from the build cache; the vendored package itself is
// DepOnly and never becomes an analysis target.
func TestLoadVendoredExport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":             "module example.com/app\n\ngo 1.22\n\nrequire example.com/dep v1.0.0\n",
		"vendor/modules.txt": "# example.com/dep v1.0.0\n## explicit; go 1.22\nexample.com/dep\n",
		"vendor/example.com/dep/dep.go": `package dep

func Answer() int { return 42 }

type Widget struct{ N int }
`,
		"app.go": `package app

import "example.com/dep"

func Use() int {
	w := dep.Widget{N: dep.Answer()}
	return w.N
}
`,
	})
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "example.com/app" {
		t.Fatalf("targets %v, want only example.com/app (vendored dep is export data, not a target)", paths)
	}
	if _, err := analysis.Run(pkgs, analysis.Suite()); err != nil {
		t.Fatalf("suite over vendored-import package: %v", err)
	}
}
