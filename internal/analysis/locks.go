package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Locks extends vet's copylocks to declaration sites: a function or
// method must not take a lock-holding struct by value — receiver or
// parameter — because every call then copies the lock, and the copy
// guards nothing. vet flags the copies it can see at assignment sites;
// this analyzer flags the signature that invites them.
//
// A type holds a lock if it is, embeds, or transitively contains a field
// of a sync struct type (Mutex, RWMutex, WaitGroup, Once, Cond, Pool,
// Map), including through arrays.
var Locks = &Analyzer{
	Name: "locks",
	Doc: "functions and methods must take lock-holding structs by pointer; " +
		"a by-value receiver or parameter copies the lock at every call",
	Run: runLocks,
}

func runLocks(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			check := func(fl *ast.FieldList, kind string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					t := pass.TypeOf(field.Type)
					if t == nil {
						continue
					}
					if path := lockPath(t, nil); path != "" {
						pass.Reportf(field.Pos(), "%s of %s passes lock by value: %s", kind, decl.Name.Name, path)
					}
				}
			}
			check(decl.Recv, "receiver")
			check(decl.Type.Params, "parameter")
			return true
		})
	}
	return nil
}

// syncLockTypes are the sync structs that must never be copied.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// lockPath returns a human-readable path to the first lock found inside
// t ("Config contains sync.Mutex" style), or "" if t holds no lock. A
// pointer stops the search: pointed-to locks are shared, not copied.
func lockPath(t types.Type, seen []*types.Named) string {
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		for _, s := range seen {
			if s == tt {
				return ""
			}
		}
		if inner := lockPath(tt.Underlying(), append(seen, tt)); inner != "" {
			return fmt.Sprintf("%s contains %s", obj.Name(), inner)
		}
		return ""
	case *types.Alias:
		return lockPath(types.Unalias(tt), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			if inner := lockPath(f.Type(), seen); inner != "" {
				if f.Embedded() {
					return inner
				}
				return fmt.Sprintf("field %s is %s", f.Name(), inner)
			}
		}
		return ""
	case *types.Array:
		return lockPath(tt.Elem(), seen)
	default:
		return ""
	}
}
