package analysis

import (
	"fmt"
	"sort"
)

// Suite returns the full lint suite in display order: the determinism
// generation (detrand, mapiter, seedflow, errdrop, locks) followed by
// the concurrency/hot-path generation (lockorder, goleak, atomicmix,
// hotpath).
func Suite() []*Analyzer {
	return []*Analyzer{DetRand, MapIter, SeedFlow, ErrDrop, Locks, LockOrder, GoLeak, AtomicMix, HotPath}
}

// Select returns the named analyzers from the suite, preserving suite
// order. An unknown name is an error so typos in -only fail loudly.
func Select(names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Suite() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("analysis: unknown analyzers %v", unknown)
	}
	return out, nil
}
